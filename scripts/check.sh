#!/usr/bin/env bash
# Full verification matrix:
#   1. Release build + full ctest (the tier-1 gate), run twice with
#      CIT_NUM_THREADS=1 and =4 — results must agree (the determinism
#      tests inside the suite check bitwise identity in-process too) —
#      then once per forced kernel backend (CIT_KERNEL=scalar and
#      CIT_KERNEL=simd) so both dispatch arms pass the whole suite.
#   2. Focused gates: kernel backends (the adversarial GEMM/conv shape
#      matrix and pack-allocation tests at 1 and 4 threads, a
#      micro_substrates smoke run, and the committed BENCH_math.json
#      showing the SIMD microkernel buying >= 1.4x blocked_1t at n=256
#      over both the in-run scalar arm and the pre-SIMD committed
#      figure, skipping thread-clamped 4t ratios), observability
#      (bitwise-identical curves with
#      telemetry on/off at 1 and 4 threads, trace/snapshot JSON parses),
#      checkpoint/resume (container corruption fuzz plus the kill-at-k
#      bitwise-resume tests for every trainer), inference (bitwise
#      backtests with the graph-free no-grad path on vs. off at 1 and 4
#      threads, plus a bench_infer smoke run emitting nograd_speedup),
#      compiled forward (bitwise backtests with plan replay on vs.
#      off at 1 and 4 threads, staleness/fusion/eviction structure, and
#      the committed compiled_speedup >= 1.25 / nograd_speedup >= 1.5
#      ratios in BENCH_infer.json), serving (adversarial client
#      matrix + hot-swap soak at 1 and 4 workers, then the citd binary
#      end-to-end against a scripted Unix-socket client), and batching
#      (bench_serve smoke plus the committed >= 1.5x high-load
#      batched-over-unbatched throughput ratio in BENCH_serve.json).
#   3. ASan and UBSan builds + full ctest at smoke scale (CIT_FAST=1) —
#      this reruns the checkpoint fuzz under ASan, so corrupt-length
#      allocations and parser overreads trip immediately.
#   4. TSan build running the thread-pool / determinism / parallel-rollout
#      tests with CIT_OVERSUBSCRIBE=1 so real multi-thread interleavings
#      are exercised even on small hosts, plus a bench_train smoke run.
#
# Usage: scripts/check.sh [--quick]
#   --quick skips the sanitizer builds (step 1 only).
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

run() { echo "+ $*"; "$@"; }

echo "=== Release build + ctest (1 and 4 threads) ==="
run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
run cmake --build build -j"$(nproc)"
(cd build && run env CIT_NUM_THREADS=1 ctest --output-on-failure -j2)
(cd build && run env CIT_NUM_THREADS=4 ctest --output-on-failure -j2)
# Both dispatch arms must pass the entire suite: forced-scalar proves the
# reference backend still carries every bitwise contract, forced-simd
# proves the microkernels do too (on a scalar-only build kSimd clamps to
# kScalar, so this run degrades to a harmless repeat).
(cd build && run env CIT_KERNEL=scalar CIT_NUM_THREADS=4 \
    ctest --output-on-failure -j2)
(cd build && run env CIT_KERNEL=simd CIT_NUM_THREADS=4 \
    ctest --output-on-failure -j2)

echo "=== kernel-backend gate (dispatch matrix + committed SIMD ratio) ==="
# test_kernels runs the adversarial GEMM/conv shape matrix (prime and tail
# dims straddling every microkernel boundary), per-backend bitwise thread
# invariance, simd-vs-scalar agreement, the pack-buffer steady-state
# allocation check, and the byte-accounting formula pins.
(cd build && run env CIT_NUM_THREADS=1 ./tests/test_kernels)
(cd build && run env CIT_NUM_THREADS=4 ./tests/test_kernels)
run cmake --build build -j"$(nproc)" --target micro_substrates
run ./build/bench/micro_substrates /tmp/BENCH_math_smoke.json
run grep -q '"kernel_backend"' /tmp/BENCH_math_smoke.json
run grep -q '"simd_isa"' /tmp/BENCH_math_smoke.json
run grep -q '"scalar_1t"' /tmp/BENCH_math_smoke.json
run grep -q '"threads_effective_4t"' /tmp/BENCH_math_smoke.json
# The committed benchmark must show the SIMD microkernel buying >= 1.4x
# single-thread blocked GEMM throughput at n=256 over both the same-run
# forced-scalar arm and the last pre-SIMD committed figure (57.103
# GFLOP/s, the PR-7 blocked kernel). 4t/1t ratios are only meaningful
# when the pool really ran 4 workers, so clamped rows are skipped.
run python3 - <<'EOF'
import json
with open("BENCH_math.json") as f:
    bench = json.load(f)
assert bench["kernel_backend"] == "simd", (
    "commit BENCH_math.json from a SIMD-capable build: %s" % bench)
for row in bench["gemm_gflops"]:
    assert row["clamped"] == (row["threads_effective_4t"] < 4), row
    if not row["clamped"]:
        assert float(row["blocked_4t"]) > 0, row
conv = bench["conv_gflops"]
assert conv["clamped"] == (conv["threads_effective_4t"] < 4), conv
n256 = next(r for r in bench["gemm_gflops"] if r["n"] == 256)
simd_gain = float(n256["blocked_1t"]) / float(n256["scalar_1t"])
vs_committed = float(n256["blocked_1t"]) / 57.103
assert simd_gain >= 1.4, f"simd vs scalar at n=256: {simd_gain} < 1.4"
assert vs_committed >= 1.4, f"vs pre-SIMD 57.103: {vs_committed} < 1.4"
print(f"n=256 blocked_1t {n256['blocked_1t']}: {simd_gain:.2f}x over "
      f"scalar_1t, {vs_committed:.2f}x over pre-SIMD committed OK")
EOF

echo "=== observability gate (bitwise curves with telemetry on/off) ==="
# test_obs proves training curves are bitwise identical with telemetry off
# vs. fully on (spans + trace + snapshots) and that the emitted trace /
# snapshot JSON parses; run it serial and parallel.
(cd build && run env CIT_NUM_THREADS=1 ./tests/test_obs)
(cd build && run env CIT_NUM_THREADS=4 ./tests/test_obs)

echo "=== checkpoint/resume gate (container fuzz + kill-at-k resume) ==="
(cd build && run ctest --output-on-failure \
    -R 'Checkpoint|TrainProgress|OptimizerState|EnvCursor|Serialize|AtomicWrite')

echo "=== inference gate (graph-free path bitwise + bench ratio) ==="
# test_inference proves every agent's backtest is bitwise identical with the
# no-grad fast path on vs. forced off (CIT_NOGRAD=0 semantics), and that
# guarded ops build no graph; run it serial and parallel.
(cd build && run env CIT_NUM_THREADS=1 ./tests/test_inference)
(cd build && run env CIT_NUM_THREADS=4 ./tests/test_inference)
run cmake --build build -j"$(nproc)" --target bench_infer
run ./build/bench/bench_infer /tmp/BENCH_infer_smoke.json
# The bench must emit the gated headline ratios (check their presence here;
# the >= 1.5x / >= 1.25x bars are asserted on the committed
# BENCH_infer.json, not on this smoke run, which may sit on a loaded CI
# host).
run grep -q '"nograd_speedup"' /tmp/BENCH_infer_smoke.json
run grep -q '"compiled_speedup"' /tmp/BENCH_infer_smoke.json

echo "=== compiled-forward gate (plan replay bitwise + committed ratio) ==="
# test_plan proves every agent's backtest is bitwise identical with plan
# replay on vs. forced off (CIT_COMPILE=0 semantics) at 1 and 4 pool
# threads, that parameter mutations (optimizer steps, checkpoint reloads)
# invalidate stale plans, and that fusion/eviction/kill-switch behave; run
# it serial and parallel.
(cd build && run env CIT_NUM_THREADS=1 ./tests/test_plan)
(cd build && run env CIT_NUM_THREADS=4 ./tests/test_plan)
# The committed benchmark must show plan replay buying at least 1.25x
# single-thread decision throughput over the interpreted graph-free path
# (the nograd >= 1.5x bar below it is asserted the same way). Only
# unclamped ratios are gated: the 1-thread arms can never be clamped, and
# the _4t ratios are skipped when the pool was clamped below the requested
# thread count (speedup_4t_clamped), since those arms did not actually run
# multi-threaded.
run python3 - <<'EOF'
import json
with open("BENCH_infer.json") as f:
    bench = json.load(f)
for row in bench["infer"]:
    assert row["clamped"] == (row["threads_effective"] < row["threads"]), row
    if row["threads"] == 1:
        assert not row["clamped"], f"a 1-thread arm claims to be clamped: {row}"
for key, bar in (("compiled_speedup", 1.25), ("nograd_speedup", 1.5)):
    value = float(bench[key])
    assert value >= bar, f"{key} {value} < {bar}"
    print(f"{key} {value} >= {bar} OK")
if bench["speedup_4t_clamped"]:
    print("speedup_4t ratios clamped on the benching host; not gated")
else:
    for key, bar in (("compiled_speedup_4t", 1.25), ("nograd_speedup_4t", 1.5)):
        value = float(bench[key])
        assert value >= bar, f"{key} {value} < {bar}"
        print(f"{key} {value} >= {bar} OK")
EOF

echo "=== data-plane gate (sources, scenarios, sweep smoke) ==="
# test_source proves PanelView reads and whole backtests are bitwise
# identical through InMemorySource, that StreamingCsvSource matches the
# in-memory panel across chunk sizes / prefetch arms while honoring its
# resident budget, and that SimulatorSource is access-order free; run it
# serial and parallel. test_scenarios pins every stress preset's
# semantics plus the fixed-seed agent orderings.
(cd build && run env CIT_NUM_THREADS=1 ./tests/test_source)
(cd build && run env CIT_NUM_THREADS=4 ./tests/test_source)
(cd build && run env CIT_NUM_THREADS=1 ./tests/test_scenarios)
(cd build && run env CIT_NUM_THREADS=4 ./tests/test_scenarios)
# Sweep smoke: the sharded (scenario x agent x seed) driver must emit one
# valid cit.sweep.v1 JSON document, and the report must be byte-identical
# at 1 and 4 pool threads (cells are written to pre-sized slots, so thread
# count cannot reorder or perturb anything).
run cmake --build build -j"$(nproc)" --target sweep
run env CIT_NUM_THREADS=1 ./build/examples/sweep \
    --scenarios 'baseline;flash_crash:depth=0.25;liquidity_hole:cost_mult=8' \
    --agents OLMAR,CRP,Market --seeds 0,1 --out /tmp/sweep_check_1t.json
run env CIT_NUM_THREADS=4 ./build/examples/sweep \
    --scenarios 'baseline;flash_crash:depth=0.25;liquidity_hole:cost_mult=8' \
    --agents OLMAR,CRP,Market --seeds 0,1 --out /tmp/sweep_check_4t.json
run cmp /tmp/sweep_check_1t.json /tmp/sweep_check_4t.json
run python3 - <<'EOF'
import json
with open("/tmp/sweep_check_1t.json") as f:
    report = json.load(f)
assert report["schema"] == "cit.sweep.v1", report.get("schema")
assert len(report["scenarios"]) == 3, report["scenarios"]
assert len(report["cells"]) == 3 * 3 * 2, len(report["cells"])
agents = {c["agent"] for c in report["cells"]}
assert agents == {"OLMAR", "CRP", "Market"}, agents
for cell in report["cells"]:
    for key in ("ar", "sharpe", "max_drawdown", "final_wealth", "turnover"):
        float(cell[key])  # present and numeric
summaries = {s["agent"] for s in report["summary"]}
assert summaries == agents, summaries
print("sweep report schema + %d cells OK" % len(report["cells"]))
EOF

echo "=== serving gate (daemon soak + citd end-to-end smoke) ==="
# test_serve runs the adversarial client matrix and the hot-swap soak
# (4 concurrent clients, bitwise serve-vs-library, swap mid-soak) at 1
# and 4 workers; repeat at 1 and 4 kernel threads.
(cd build && run env CIT_NUM_THREADS=1 ./tests/test_serve)
(cd build && run env CIT_NUM_THREADS=4 ./tests/test_serve)
# End-to-end: the real daemon binary against a scripted client — ping,
# decide, checkpoint hot-swap (to the daemon's own saved init, so the
# post-swap decision must be bitwise identical), protocol error, stats.
run cmake --build build -j"$(nproc)" --target citd
CITD_SOCK=/tmp/citd_check.sock
CITD_INIT=/tmp/citd_check_init.bin
rm -f "$CITD_SOCK" "$CITD_INIT"
./build/examples/citd --socket "$CITD_SOCK" --workers 2 --assets 4 \
    --window 8 --policies 2 --save-init "$CITD_INIT" &
CITD_PID=$!
trap 'kill "$CITD_PID" 2>/dev/null || true' EXIT
run python3 - "$CITD_SOCK" "$CITD_INIT" <<'EOF'
import socket, sys, time
sock_path, init_path = sys.argv[1], sys.argv[2]
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
for _ in range(100):
    try:
        s.connect(sock_path)
        break
    except OSError:
        time.sleep(0.1)
else:
    sys.exit("citd did not come up")
f = s.makefile("rw")
def ask(line):
    f.write(line + "\n"); f.flush()
    return f.readline().strip()
assert ask("ping") == "ok pong 0"
prices = " ".join("%.17g" % (10.0 + d * 0.01 + a)
                  for d in range(8) for a in range(4))
first = ask("decide 8 4 " + prices)
assert first.startswith("ok 0 ") and len(first.split()) == 2 + 4, first
assert ask("swap " + init_path) == "ok swapped 1"
second = ask("decide 8 4 " + prices)
assert second.startswith("ok 1 "), second
assert second.split()[2:] == first.split()[2:], (first, second)
assert ask("frobnicate").startswith("err proto")
stats = ask("stats")
assert '"serve.decides"' in stats and '"wall_us"' in stats, stats
print("citd end-to-end smoke OK")
EOF
kill "$CITD_PID"; wait "$CITD_PID" 2>/dev/null || true
trap - EXIT

echo "=== batching gate (bench_serve smoke + committed ratio) ==="
# Smoke run: the bench must complete (every request answered, no drops)
# and emit the per-load latency/throughput keys. The >= 1.5x bar is
# asserted on the committed BENCH_serve.json, not on this smoke run.
run cmake --build build -j"$(nproc)" --target bench_serve
run ./build/bench/bench_serve /tmp/BENCH_serve_smoke.json --smoke
run grep -q '"p50_us"' /tmp/BENCH_serve_smoke.json
run grep -q '"p99_us"' /tmp/BENCH_serve_smoke.json
run grep -q '"throughput_rps"' /tmp/BENCH_serve_smoke.json
run grep -q '"high_load_throughput_gain"' /tmp/BENCH_serve_smoke.json
# The committed benchmark must show batching buying at least 1.5x
# throughput over the single-request path at the highest offered load.
run python3 - <<'EOF'
import json
with open("BENCH_serve.json") as f:
    bench = json.load(f)
for load in bench["loads"]:
    for arm in ("unbatched", "batched"):
        for key in ("p50_us", "p99_us", "throughput_rps"):
            assert float(load[arm][key]) > 0, (load["load"], arm, key)
gain = float(bench["high_load_throughput_gain"])
assert gain >= 1.5, f"high_load_throughput_gain {gain} < 1.5"
print(f"high_load_throughput_gain {gain} >= 1.5 OK")
EOF

if [[ "$QUICK" == "1" ]]; then
  echo "--quick: skipping sanitizer builds"
  exit 0
fi

for SAN in address undefined; do
  echo "=== ${SAN} sanitizer build + ctest (CIT_FAST=1) ==="
  run cmake -B "build-${SAN}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCIT_SANITIZE="${SAN}"
  run cmake --build "build-${SAN}" -j"$(nproc)"
  (cd "build-${SAN}" && run env CIT_FAST=1 ctest --output-on-failure -j2)
done

echo "=== thread sanitizer build + threading/rollout tests ==="
run cmake -B build-thread -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCIT_SANITIZE=thread
run cmake --build build-thread -j"$(nproc)" --target test_threading \
    test_rollout test_inference test_plan test_serve test_kernels \
    test_source test_scenarios
# CIT_OVERSUBSCRIBE lifts the hardware clamp so the pool really spawns the
# requested workers: TSan then sees genuine cross-thread interleavings of
# the rollout pipeline even on a 1-core container. test_inference rides
# along so the grad-mode thread-local, the NoGradAllowed atomic, and the
# pool's lock-free inline-dispatch check are raced against real workers;
# test_plan rides along so plan replays (fused sweeps, slab writes, the
# CompileAllowed atomic, the recording thread-local) are raced the same
# way; the serve daemon tests ride along so worker threads, the swap
# mutex + generation counter, and per-replica plan ownership are raced
# under real concurrent clients; test_kernels' KernelDispatch suite rides
# along so the SIMD microkernels, the pack thread-locals, and the backend
# atomic see genuine 4-worker interleavings (its 1-vs-4-thread bitwise
# checks are only real under the lifted clamp); the Source/Scenario
# threaded suites ride along so the StreamingCsvSource LRU + prefetch
# worker, the ScenarioSource row memo, and concurrent PanelView rings are
# raced against real workers.
(cd build-thread && run env CIT_FAST=1 CIT_OVERSUBSCRIBE=1 CIT_NUM_THREADS=4 \
    ctest --output-on-failure \
    -R 'ThreadPool|Determinism|RngSplit|RolloutRunner|RolloutDeterminism|InferenceIdentity|GradMode\.|Arena\.|Compiled|ArenaStats\.|Serve|PlanOwner|KernelDispatch|Source|Scenario|Sweep')

echo "=== CIT_OBS=OFF build (instrumentation compiles out) ==="
run cmake -B build-noobs -S . -DCMAKE_BUILD_TYPE=Release -DCIT_OBS=OFF
run cmake --build build-noobs -j"$(nproc)" --target test_obs
(cd build-noobs && run ./tests/test_obs)

echo "=== bench_train smoke (JSON emission) ==="
run cmake --build build -j"$(nproc)" --target bench_train
run ./build/bench/bench_train /tmp/BENCH_train_smoke.json
# The bench must report the telemetry overhead alongside the thread table,
# and the streaming-ingest arm's throughput + memory telemetry.
run grep -q '"telemetry_overhead_pct"' /tmp/BENCH_train_smoke.json
run grep -q '"streaming_ingest"' /tmp/BENCH_train_smoke.json
run grep -q '"rows_per_sec"' /tmp/BENCH_train_smoke.json
run grep -q '"peak_resident_bytes"' /tmp/BENCH_train_smoke.json
# The committed benchmark must carry the ingest arm and show its peak
# resident chunk memory within budget + one in-flight chunk (the hard
# bound the streaming source guarantees during an eviction window).
run python3 - <<'EOF'
import json
with open("BENCH_train.json") as f:
    bench = json.load(f)
ingest = bench["streaming_ingest"]
assert float(ingest["rows_per_sec"]) > 0, ingest
assert float(ingest["rows_per_sec_inmemory"]) > 0, ingest
chunk_bytes = 8 * ingest["chunk_days"] * ingest["assets"]
bound = ingest["budget_bytes"] + chunk_bytes
assert ingest["peak_resident_bytes"] <= bound, (
    f"peak {ingest['peak_resident_bytes']} > budget+chunk {bound}")
print(f"streaming ingest {ingest['rows_per_sec']} rows/s, "
      f"peak {ingest['peak_resident_bytes']} <= {bound} OK")
EOF

echo "ALL CHECKS PASSED"
