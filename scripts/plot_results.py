#!/usr/bin/env python3
"""Plot the CSV series emitted by the exp_fig* bench binaries.

Usage:
    ./build/bench/exp_fig4_cumret > fig4.csv
    python3 scripts/plot_results.py fig4.csv --out fig4.png

The bench binaries print lines of the form "series,day,value" (with some
human-readable header/footer lines, which this script skips). Each distinct
series becomes one line on the plot; series names are "<market>.<model>",
and one figure is produced per market.
"""

import argparse
import collections
import sys

def parse_series(path):
    series = collections.defaultdict(list)
    with open(path) as f:
        for line in f:
            parts = line.strip().split(",")
            if len(parts) != 3:
                continue
            name, x, y = parts
            try:
                series[name].append((float(x), float(y)))
            except ValueError:
                continue  # header line
    return series


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv", help="output of an exp_fig* binary")
    parser.add_argument("--out", default=None,
                        help="output image path (default: <csv>.png)")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    series = parse_series(args.csv)
    if not series:
        sys.exit(f"no series found in {args.csv}")

    markets = sorted({name.split(".", 1)[0] for name in series})
    fig, axes = plt.subplots(1, len(markets),
                             figsize=(6 * len(markets), 4.5), squeeze=False)
    for ax, market in zip(axes[0], markets):
        for name in sorted(series):
            if not name.startswith(market + "."):
                continue
            label = name.split(".", 1)[1]
            pts = series[name]
            ax.plot([p[0] for p in pts], [p[1] for p in pts],
                    label=label, linewidth=1.2)
        ax.set_title(market)
        ax.set_xlabel("day / checkpoint")
        ax.legend(fontsize=7)
        ax.grid(alpha=0.3)
    out = args.out or args.csv + ".png"
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
