#include "math/tensor.h"

#include <gtest/gtest.h>

#include "math/rng.h"

namespace cit::math {
namespace {

TEST(Tensor, ZeroInitializedConstruction) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  for (int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Tensor, FactoryFunctions) {
  EXPECT_FLOAT_EQ(Tensor::Ones({3})[1], 1.0f);
  EXPECT_FLOAT_EQ(Tensor::Full({2}, 7.5f)[0], 7.5f);
  EXPECT_FLOAT_EQ(Tensor::Scalar(2.5f).Item(), 2.5f);
  Tensor a = Tensor::Arange(4);
  EXPECT_FLOAT_EQ(a[3], 3.0f);
}

TEST(Tensor, MultiDimIndexing) {
  Tensor t({2, 3, 4});
  t.At({1, 2, 3}) = 5.0f;
  EXPECT_FLOAT_EQ(t[1 * 12 + 2 * 4 + 3], 5.0f);
  EXPECT_FLOAT_EQ(t.At({1, 2, 3}), 5.0f);
}

TEST(Tensor, NegativeDimLookup) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  EXPECT_FLOAT_EQ(r.At({2, 1}), 6.0f);
}

TEST(Tensor, Transpose2D) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor tt = t.Transpose2D();
  EXPECT_EQ(tt.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(tt.At({0, 1}), 4.0f);
  EXPECT_FLOAT_EQ(tt.At({2, 0}), 3.0f);
}

TEST(Tensor, SliceMiddleAxis) {
  Tensor t({2, 3, 2});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i);
  Tensor s = t.Slice(1, 1, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2, 2}));
  EXPECT_FLOAT_EQ(s.At({0, 0, 0}), t.At({0, 1, 0}));
  EXPECT_FLOAT_EQ(s.At({1, 1, 1}), t.At({1, 2, 1}));
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {4, 5, 6});
  EXPECT_TRUE(TensorEquals(a.Add(b), Tensor({3}, {5, 7, 9})));
  EXPECT_TRUE(TensorEquals(b.Sub(a), Tensor({3}, {3, 3, 3})));
  EXPECT_TRUE(TensorEquals(a.Mul(b), Tensor({3}, {4, 10, 18})));
  EXPECT_TRUE(TensorAllClose(b.Div(a), Tensor({3}, {4, 2.5f, 2})));
  EXPECT_TRUE(TensorEquals(a.AddScalar(1), Tensor({3}, {2, 3, 4})));
  EXPECT_TRUE(TensorEquals(a.MulScalar(2), Tensor({3}, {2, 4, 6})));
}

TEST(Tensor, Reductions) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.Sum(), 10.0f);
  EXPECT_FLOAT_EQ(t.Mean(), 2.5f);
  EXPECT_FLOAT_EQ(t.Max(), 4.0f);
  EXPECT_FLOAT_EQ(t.Min(), 1.0f);
}

TEST(Tensor, SumAxisRemovesAxis) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor rows = t.SumAxis(1);
  EXPECT_EQ(rows.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(rows[0], 6.0f);
  EXPECT_FLOAT_EQ(rows[1], 15.0f);
  Tensor cols = t.SumAxis(0);
  EXPECT_EQ(cols.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(cols[2], 9.0f);
  Tensor mean = t.MeanAxis(0);
  EXPECT_FLOAT_EQ(mean[0], 2.5f);
}

TEST(Tensor, MatMulKnownResult) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = Tensor::MatMul(a, b);
  EXPECT_TRUE(TensorEquals(c, Tensor({2, 2}, {58, 64, 139, 154})));
}

TEST(Tensor, MatMulAgainstNaiveReference) {
  Rng rng(3);
  Tensor a = Tensor::Uniform({5, 7}, rng, -1, 1);
  Tensor b = Tensor::Uniform({7, 4}, rng, -1, 1);
  Tensor c = Tensor::MatMul(a, b);
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      float acc = 0.0f;
      for (int64_t k = 0; k < 7; ++k) acc += a.At({i, k}) * b.At({k, j});
      EXPECT_NEAR(c.At({i, j}), acc, 1e-4f);
    }
  }
}

TEST(Tensor, DeepCopySemantics) {
  Tensor a({2}, {1, 2});
  Tensor b = a;
  b[0] = 99.0f;
  EXPECT_FLOAT_EQ(a[0], 1.0f);
}

TEST(Rng, Determinism) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[rng.UniformInt(7)];
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, DirichletOnSimplex) {
  Rng rng(11);
  for (double alpha : {0.3, 1.0, 5.0}) {
    auto w = rng.Dirichlet(6, alpha);
    double total = 0.0;
    for (double v : w) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Rng, GammaMeanMatchesShape) {
  Rng rng(13);
  const double shape = 2.5;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gamma(shape);
  EXPECT_NEAR(sum / n, shape, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(1);
  Rng b = a.Fork();
  // The fork should not replay the parent's stream.
  EXPECT_NE(a.NextU64(), b.NextU64());
}

// ---- Copy-on-write storage sharing -----------------------------------------

TEST(TensorCow, CopySharesStorageUntilFirstWrite) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b = a;
  EXPECT_TRUE(a.SharesStorageWith(b));
  b[0] = 9.0f;  // mutable access detaches b
  EXPECT_FALSE(a.SharesStorageWith(b));
  EXPECT_FLOAT_EQ(a[0], 1.0f);
  EXPECT_FLOAT_EQ(b[0], 9.0f);
}

TEST(TensorCow, ReshapeThenMutateDoesNotAliasOriginal) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  EXPECT_TRUE(r.SharesStorageWith(t));
  r[5] = -1.0f;
  EXPECT_FALSE(r.SharesStorageWith(t));
  EXPECT_TRUE(TensorEquals(t, Tensor({2, 3}, {1, 2, 3, 4, 5, 6})));
  EXPECT_TRUE(TensorEquals(r, Tensor({3, 2}, {1, 2, 3, 4, 5, -1})));
}

TEST(TensorCow, WriteToParentDoesNotChangeReshapeView) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  Tensor v = t.Reshape({4});
  t[0] = 7.0f;  // parent detaches; the view keeps the old data
  const Tensor& cv = v;
  EXPECT_FLOAT_EQ(cv[0], 1.0f);
  EXPECT_FLOAT_EQ(t[0], 7.0f);
}

TEST(TensorCow, OuterSliceIsViewAndWriteDetaches) {
  Tensor t({4, 2});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i);
  Tensor s = t.Slice(0, 1, 2);
  EXPECT_TRUE(s.SharesStorageWith(t));
  const Tensor& cs = s;
  EXPECT_FLOAT_EQ(cs[0], t.At({1, 0}));
  s.Fill(0.0f);
  EXPECT_FALSE(s.SharesStorageWith(t));
  EXPECT_FLOAT_EQ(t.At({1, 0}), 2.0f);  // parent untouched
  EXPECT_FLOAT_EQ(cs[0], 0.0f);
}

TEST(TensorCow, InPlaceOpOnSharedHandleDetaches) {
  Tensor a({3}, {1, 2, 3});
  Tensor b = a;
  b.MulScalarInPlace(2.0f);
  EXPECT_FLOAT_EQ(a[1], 2.0f);
  EXPECT_FLOAT_EQ(b[1], 4.0f);
  EXPECT_FALSE(a.SharesStorageWith(b));
}

TEST(TensorCow, ConstReadsNeverDetach) {
  Tensor a({2}, {1, 2});
  Tensor b = a;
  const Tensor& ca = a;
  const Tensor& cb = b;
  EXPECT_FLOAT_EQ(ca[0] + cb[1], 3.0f);
  EXPECT_FLOAT_EQ(ca.Sum(), cb.Sum());
  EXPECT_TRUE(a.SharesStorageWith(b));  // reads kept the sharing intact
}

}  // namespace
}  // namespace cit::math
