#include "signal/analysis.h"

#include <cmath>

#include <gtest/gtest.h>

#include "market/simulator.h"
#include "math/rng.h"
#include "olps/strategies.h"

namespace cit::signal {
namespace {

std::vector<double> Ar1Series(double phi, double vol, int64_t n,
                              uint64_t seed) {
  math::Rng rng(seed);
  std::vector<double> x(n);
  double state = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    state = phi * state + vol * rng.Normal();
    x[t] = state;
  }
  return x;
}

TEST(Autocorrelation, WhiteNoiseNearZero) {
  math::Rng rng(1);
  std::vector<double> x(4000);
  for (auto& v : x) v = rng.Normal();
  EXPECT_NEAR(Autocorrelation(x, 1), 0.0, 0.05);
  EXPECT_NEAR(Autocorrelation(x, 5), 0.0, 0.05);
}

TEST(Autocorrelation, Ar1MatchesPhi) {
  const auto x = Ar1Series(0.7, 1.0, 8000, 2);
  EXPECT_NEAR(Autocorrelation(x, 1), 0.7, 0.05);
  EXPECT_NEAR(Autocorrelation(x, 2), 0.49, 0.07);
}

TEST(Autocorrelation, LagZeroIsOne) {
  const auto x = Ar1Series(0.5, 1.0, 100, 3);
  EXPECT_NEAR(Autocorrelation(x, 0), 1.0, 1e-12);
}

TEST(Autocorrelation, DegenerateInputs) {
  EXPECT_EQ(Autocorrelation({1.0, 2.0}, 5), 0.0);
  EXPECT_EQ(Autocorrelation({3.0, 3.0, 3.0, 3.0}, 1), 0.0);
}

TEST(VarianceRatio, WhiteNoiseNearOne) {
  math::Rng rng(4);
  std::vector<double> r(6000);
  for (auto& v : r) v = rng.Normal();
  EXPECT_NEAR(VarianceRatio(r, 5), 1.0, 0.1);
}

TEST(VarianceRatio, MomentumAboveOneReversionBelow) {
  // Positively autocorrelated returns -> VR > 1.
  const auto momentum = Ar1Series(0.5, 1.0, 6000, 5);
  EXPECT_GT(VarianceRatio(momentum, 5), 1.3);
  // Negatively autocorrelated returns -> VR < 1.
  const auto reversion = Ar1Series(-0.5, 1.0, 6000, 6);
  EXPECT_LT(VarianceRatio(reversion, 5), 0.8);
}

TEST(VarianceRatio, SimulatedMarketShowsMomentumStructure) {
  // The generator's AR(1) return components must show up as VR(q) > 1 —
  // this is the planted multi-horizon structure the paper's method feeds
  // on, validated with an independent statistic.
  market::MarketConfig cfg;
  cfg.num_assets = 6;
  cfg.train_days = 1500;
  cfg.test_days = 0;
  cfg.seed = 77;
  auto panel = market::SimulateMarket(cfg);
  double vr5 = 0.0, vr20 = 0.0;
  for (int64_t i = 0; i < panel.num_assets(); ++i) {
    std::vector<double> rets;
    for (int64_t t = 1; t < panel.num_days(); ++t) {
      rets.push_back(std::log(panel.PriceRelative(t, i)));
    }
    vr5 += VarianceRatio(rets, 5);
    vr20 += VarianceRatio(rets, 20);
  }
  vr5 /= panel.num_assets();
  vr20 /= panel.num_assets();
  EXPECT_GT(vr5, 1.02);
  EXPECT_GT(vr20, 1.05);
}

TEST(RollingVolatility, ConstantSeriesIsZero) {
  const std::vector<double> x(50, 3.0);
  const auto vol = RollingVolatility(x, 10);
  EXPECT_NEAR(vol.back(), 0.0, 1e-12);
}

TEST(RollingVolatility, TracksRegimeChange) {
  math::Rng rng(7);
  std::vector<double> x;
  for (int t = 0; t < 200; ++t) x.push_back(0.01 * rng.Normal());
  for (int t = 0; t < 200; ++t) x.push_back(0.05 * rng.Normal());
  const auto vol = RollingVolatility(x, 50);
  EXPECT_GT(vol.back(), 2.0 * vol[190]);
}

TEST(AnnualizedVolatilityTest, ScalesWithSqrtTime) {
  math::Rng rng(8);
  std::vector<double> r(5000);
  for (auto& v : r) v = 0.01 * rng.Normal();
  EXPECT_NEAR(AnnualizedVolatility(r), 0.01 * std::sqrt(252.0), 0.01);
}

TEST(BandEnergy, FractionsSumToOne) {
  const auto x = Ar1Series(0.9, 1.0, 256, 9);
  const auto energy = BandEnergyFractions(x, 4);
  double total = 0.0;
  for (double e : energy) {
    EXPECT_GE(e, 0.0);
    total += e;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(BandEnergy, SmoothSignalConcentratesInLowBand) {
  std::vector<double> x(128);
  for (int i = 0; i < 128; ++i) x[i] = std::sin(2.0 * M_PI * i / 128.0);
  const auto energy = BandEnergyFractions(x, 3);
  EXPECT_GT(energy[0], 0.8);
}

}  // namespace
}  // namespace cit::signal

namespace cit::olps {
namespace {

market::PricePanel MomentumPanel(uint64_t seed) {
  math::Rng rng(seed);
  market::PricePanel panel(220, 3);
  std::vector<double> price(3, 100.0);
  std::vector<double> drift = {0.004, -0.002, 0.0005};
  for (int64_t t = 0; t < 220; ++t) {
    for (int64_t i = 0; i < 3; ++i) {
      if (t > 0) price[i] *= std::exp(drift[i] + 0.008 * rng.Normal());
      panel.SetClose(t, i, price[i]);
    }
  }
  panel.set_train_end(150);
  return panel;
}

TEST(LogOptimal, FindsDominantAsset) {
  // Relatives where asset 0 always grows 1% and others always lose.
  std::vector<std::vector<double>> rel(50, {1.01, 0.995, 0.99});
  const auto b = LogOptimalPortfolio(rel, {}, 200);
  EXPECT_GT(b[0], 0.95);
}

TEST(LogOptimal, StaysOnSimplex) {
  math::Rng rng(3);
  std::vector<std::vector<double>> rel;
  for (int t = 0; t < 30; ++t) {
    rel.push_back({1.0 + 0.01 * rng.Normal(), 1.0 + 0.01 * rng.Normal()});
  }
  const auto b = LogOptimalPortfolio(rel, {}, 100);
  EXPECT_NEAR(b[0] + b[1], 1.0, 1e-9);
  EXPECT_GE(b[0], 0.0);
  EXPECT_GE(b[1], 0.0);
}

TEST(BestStockStrategy, PicksTheTrendingAsset) {
  auto panel = MomentumPanel(11);
  BestStock bs(30);
  bs.Reset();
  bs.DecideWeights(panel, 100);
  const auto w = bs.DecideWeights(panel, 120);
  EXPECT_NEAR(w[0], 1.0, 1e-12);
}

TEST(FollowTheLeaderStrategy, ConvergesTowardHindsightWinner) {
  auto panel = MomentumPanel(12);
  FollowTheLeader ftl;
  ftl.Reset();
  std::vector<double> w;
  for (int64_t day = 50; day < 140; ++day) {
    w = ftl.DecideWeights(panel, day);
  }
  EXPECT_GT(w[0], 0.5);
}

TEST(CornStrategy, FeasibleOnSimulatedMarket) {
  market::MarketConfig cfg;
  cfg.num_assets = 4;
  cfg.train_days = 150;
  cfg.test_days = 60;
  cfg.seed = 13;
  auto panel = market::SimulateMarket(cfg);
  Corn corn(5, 0.1);
  corn.Reset();
  for (int64_t day = 30; day < 180; day += 3) {
    const auto w = corn.DecideWeights(panel, day);
    double total = 0.0;
    for (double v : w) {
      EXPECT_GE(v, -1e-9);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

}  // namespace
}  // namespace cit::olps
