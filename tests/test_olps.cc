#include <cmath>

#include <gtest/gtest.h>

#include "env/backtest.h"
#include "market/simulator.h"
#include "math/rng.h"
#include "olps/simplex.h"
#include "olps/strategies.h"

namespace cit::olps {
namespace {

market::PricePanel DriftPanel(int64_t days, std::vector<double> drifts,
                              uint64_t seed, double vol = 0.01) {
  math::Rng rng(seed);
  const int64_t m = static_cast<int64_t>(drifts.size());
  market::PricePanel panel(days, m);
  std::vector<double> price(m, 100.0);
  for (int64_t t = 0; t < days; ++t) {
    for (int64_t i = 0; i < m; ++i) {
      if (t > 0) price[i] *= std::exp(drifts[i] + vol * rng.Normal());
      panel.SetClose(t, i, price[i]);
    }
  }
  panel.set_train_end(days / 2);
  return panel;
}

// ---- Simplex projection -----------------------------------------------------

TEST(SimplexProjection, AlreadyOnSimplexIsFixedPoint) {
  const std::vector<double> w = {0.2, 0.5, 0.3};
  const auto p = ProjectToSimplex(w);
  for (size_t i = 0; i < w.size(); ++i) EXPECT_NEAR(p[i], w[i], 1e-12);
}

TEST(SimplexProjection, KnownProjection) {
  // Projecting (1, 0.5) onto the simplex: theta = 0.25 -> (0.75, 0.25).
  const auto p = ProjectToSimplex({1.0, 0.5});
  EXPECT_NEAR(p[0], 0.75, 1e-12);
  EXPECT_NEAR(p[1], 0.25, 1e-12);
}

TEST(SimplexProjection, RandomInputsAreFeasible) {
  math::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> y(8);
    for (auto& v : y) v = rng.Normal(0.0, 3.0);
    const auto p = ProjectToSimplex(y);
    double total = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(SimplexProjection, IsActuallyTheClosestPoint) {
  // Compare against brute-force search over a fine simplex grid (3 assets).
  math::Rng rng(2);
  std::vector<double> y = {rng.Normal(), rng.Normal(), rng.Normal()};
  const auto p = ProjectToSimplex(y);
  auto dist2 = [&](double a, double b, double c) {
    return (a - y[0]) * (a - y[0]) + (b - y[1]) * (b - y[1]) +
           (c - y[2]) * (c - y[2]);
  };
  const double best = dist2(p[0], p[1], p[2]);
  const int grid = 60;
  for (int i = 0; i <= grid; ++i) {
    for (int j = 0; j + i <= grid; ++j) {
      const double a = static_cast<double>(i) / grid;
      const double b = static_cast<double>(j) / grid;
      const double c = 1.0 - a - b;
      EXPECT_GE(dist2(a, b, c) + 1e-9, best);
    }
  }
}

TEST(SimplexProjection, ANormIdentityMatchesEuclidean) {
  std::vector<double> y = {0.9, -0.2, 0.5};
  std::vector<double> eye = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  const auto a = ProjectToSimplexANorm(y, eye, 300);
  const auto e = ProjectToSimplex(y);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(a[i], e[i], 1e-4);
}

// ---- Strategy behaviours ----------------------------------------------------

TEST(Crp, AlwaysUniform) {
  auto panel = DriftPanel(60, {0.002, -0.002, 0.0}, 3);
  Crp crp;
  crp.Reset();
  for (int64_t day = 10; day < 20; ++day) {
    const auto w = crp.DecideWeights(panel, day);
    for (double v : w) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
  }
}

TEST(BuyAndHold, ZeroTurnoverUnderDrift) {
  auto panel = DriftPanel(60, {0.003, -0.003}, 4);
  BuyAndHold bah;
  bah.Reset();
  env::EnvConfig cfg;
  cfg.window = 4;
  cfg.transaction_cost = 1.0;  // any turnover would destroy wealth
  const auto result = env::RunBacktest(bah, panel, cfg);
  // Wealth must equal the equal-weight index despite the brutal cost rate.
  const auto idx = panel.IndexLevels(cfg.window);
  EXPECT_NEAR(result.wealth.back(), idx.back(), 1e-6);
}

TEST(Eg, TiltsTowardRecentWinner) {
  auto panel = DriftPanel(80, {0.01, -0.01}, 5, 0.001);
  Eg eg(0.5);
  eg.Reset();
  std::vector<double> w;
  for (int64_t day = 5; day < 40; ++day) w = eg.DecideWeights(panel, day);
  EXPECT_GT(w[0], w[1]);
}

TEST(Eg, WeightsStayOnSimplex) {
  auto panel = DriftPanel(80, {0.002, -0.001, 0.0005}, 6);
  Eg eg;
  eg.Reset();
  for (int64_t day = 5; day < 70; ++day) {
    const auto w = eg.DecideWeights(panel, day);
    double total = 0.0;
    for (double v : w) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Olmar, BuysTheDipOnMeanRevertingPrices) {
  // Price of asset 0 dropped far below its moving average -> OLMAR should
  // overweight it (predicted relative is high).
  market::PricePanel panel(20, 2);
  for (int64_t t = 0; t < 20; ++t) {
    panel.SetClose(t, 0, t == 19 ? 70.0 : 100.0);  // crashed today
    panel.SetClose(t, 1, 100.0);
  }
  Olmar olmar(5, 10.0);
  olmar.Reset();
  olmar.DecideWeights(panel, 18);  // initialization call
  const auto w = olmar.DecideWeights(panel, 19);
  EXPECT_GT(w[0], 0.9);
}

TEST(Pamr, SheddsTheRecentWinnerOnReversion) {
  market::PricePanel panel(20, 2);
  for (int64_t t = 0; t < 20; ++t) {
    panel.SetClose(t, 0, 100.0 * std::pow(1.05, t));  // strong riser
    panel.SetClose(t, 1, 100.0);
  }
  Pamr pamr(0.5);
  pamr.Reset();
  pamr.DecideWeights(panel, 18);
  const auto w = pamr.DecideWeights(panel, 19);
  // Mean reversion bets against the riser.
  EXPECT_LT(w[0], w[1]);
}

TEST(Rmr, PredictsWithRobustMedian) {
  market::PricePanel panel(20, 2);
  for (int64_t t = 0; t < 20; ++t) {
    panel.SetClose(t, 0, t == 19 ? 60.0 : 100.0);
    panel.SetClose(t, 1, 100.0);
  }
  Rmr rmr(5, 5.0);
  rmr.Reset();
  rmr.DecideWeights(panel, 18);
  const auto w = rmr.DecideWeights(panel, 19);
  EXPECT_GT(w[0], 0.9);
}

TEST(Ons, ProducesFeasiblePortfolios) {
  auto panel = DriftPanel(90, {0.001, -0.001, 0.0, 0.0005}, 7);
  Ons ons;
  ons.Reset();
  for (int64_t day = 5; day < 80; ++day) {
    const auto w = ons.DecideWeights(panel, day);
    double total = 0.0;
    for (double v : w) {
      EXPECT_GE(v, -1e-8);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST(Up, WealthWeightedPoolingFavorsWinners) {
  auto panel = DriftPanel(120, {0.01, -0.01}, 8, 0.002);
  Up up(300, 11);
  up.Reset();
  std::vector<double> w;
  for (int64_t day = 5; day < 100; ++day) {
    w = up.DecideWeights(panel, day);
  }
  EXPECT_GT(w[0], 0.6);
}

TEST(Anticor, FeasibleAndReactive) {
  auto panel = DriftPanel(120, {0.001, -0.001, 0.0}, 9);
  Anticor anticor(8);
  anticor.Reset();
  for (int64_t day = 5; day < 100; ++day) {
    const auto w = anticor.DecideWeights(panel, day);
    double total = 0.0;
    for (double v : w) {
      EXPECT_GE(v, -1e-9);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

// All strategies must produce simplex-feasible weights on a realistic
// simulated market (parameterized sweep).
class StrategyFeasibility
    : public ::testing::TestWithParam<int> {};

TEST_P(StrategyFeasibility, SimplexFeasibleOnSimulatedMarket) {
  market::MarketConfig cfg;
  cfg.num_assets = 5;
  cfg.train_days = 150;
  cfg.test_days = 50;
  cfg.seed = 17;
  auto panel = market::SimulateMarket(cfg);

  std::unique_ptr<env::TradingAgent> agent;
  switch (GetParam()) {
    case 0: agent = std::make_unique<Crp>(); break;
    case 1: agent = std::make_unique<Eg>(); break;
    case 2: agent = std::make_unique<Ons>(); break;
    case 3: agent = std::make_unique<Up>(100, 3); break;
    case 4: agent = std::make_unique<Olmar>(); break;
    case 5: agent = std::make_unique<Pamr>(); break;
    case 6: agent = std::make_unique<Rmr>(); break;
    case 7: agent = std::make_unique<Anticor>(); break;
    case 8: agent = std::make_unique<BuyAndHold>(); break;
  }
  env::EnvConfig env_cfg;
  env_cfg.window = 8;
  const auto result = env::RunBacktest(*agent, panel, env_cfg);
  EXPECT_GT(result.wealth.back(), 0.0);
  for (double v : result.wealth) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyFeasibility,
                         ::testing::Range(0, 9));

}  // namespace
}  // namespace cit::olps
