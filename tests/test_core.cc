#include <chrono>
#include <cmath>

#include <gtest/gtest.h>

#include "core/actor.h"
#include "core/backbone.h"
#include "core/config.h"
#include "core/critic.h"
#include "core/trader.h"
#include "env/backtest.h"
#include "market/simulator.h"
#include "rl/features.h"

namespace cit::core {
namespace {

CrossInsightConfig TinyConfig(int64_t n = 3) {
  CrossInsightConfig cfg;
  cfg.num_policies = n;
  cfg.window = 8;
  cfg.feature_dim = 4;
  cfg.tcn_blocks = 1;
  cfg.head_hidden = 8;
  cfg.critic_hidden = 12;
  cfg.train_steps = 10;
  cfg.rollout_len = 5;
  cfg.seed = 3;
  return cfg;
}

market::PricePanel SmallPanel(uint64_t seed = 21) {
  market::MarketConfig cfg;
  cfg.num_assets = 4;
  cfg.train_days = 150;
  cfg.test_days = 60;
  cfg.seed = seed;
  return market::SimulateMarket(cfg);
}

TEST(Backbone, AllVariantsProducePerAssetFeatures) {
  math::Rng rng(1);
  for (BackboneKind kind :
       {BackboneKind::kTcnAttention, BackboneKind::kGruAttention,
        BackboneKind::kGru, BackboneKind::kMlp}) {
    ActorBackbone backbone(kind, 4, 8, 4, 1, 3, rng);
    Var out = backbone.Forward(
        Var::Constant(Tensor::Uniform({4, 1, 8}, rng, -1, 1)));
    EXPECT_EQ(out.shape(), (math::Shape{4, 4}))
        << BackboneKindName(kind);
    EXPECT_GT(backbone.NumParams(), 0);
  }
}

TEST(Backbone, AttentionVariantExposesAttentionMatrix) {
  math::Rng rng(2);
  ActorBackbone backbone(BackboneKind::kTcnAttention, 3, 8, 4, 1, 3, rng);
  Var attn;
  backbone.Forward(Var::Constant(Tensor::Uniform({3, 1, 8}, rng, -1, 1)),
                   &attn);
  ASSERT_TRUE(attn.defined());
  EXPECT_EQ(attn.shape(), (math::Shape{3, 3}));
}

TEST(HorizonActorTest, MeanShapeAndIdDiversity) {
  CrossInsightConfig cfg = TinyConfig(3);
  math::Rng rng(4);
  HorizonActor a0(cfg, 4, 0, rng);
  HorizonActor a1(cfg, 4, 1, rng);
  Tensor band = Tensor::Uniform({4, 1, 8}, rng, -1, 1);
  std::vector<double> prev(4, 0.25);
  Var m0 = a0.Forward(band, prev);
  Var m1 = a1.Forward(band, prev);
  EXPECT_EQ(m0.shape(), (math::Shape{4}));
  // Different parameter draws + different IDs: outputs should differ.
  EXPECT_FALSE(math::TensorAllClose(m0.value(), m1.value(), 1e-6f));
}

TEST(CrossInsightActorTest, ConsumesPreDecisions) {
  CrossInsightConfig cfg = TinyConfig(2);
  math::Rng rng(5);
  CrossInsightActor actor(cfg, 4, rng);
  Tensor market = Tensor::Uniform({4, 1, 8}, rng, -1, 1);
  Tensor pre({8});
  for (int64_t i = 0; i < 8; ++i) pre[i] = 0.125f;
  Var mean = actor.Forward(market, pre);
  EXPECT_EQ(mean.shape(), (math::Shape{4}));
  // Changing a pre-decision changes the output.
  Tensor pre2 = pre;
  pre2[0] = 0.9f;
  Var mean2 = actor.Forward(market, pre2);
  EXPECT_FALSE(math::TensorAllClose(mean.value(), mean2.value(), 1e-7f));
}

TEST(CentralizedCriticTest, SensitiveToEveryInputBlock) {
  CrossInsightConfig cfg = TinyConfig(2);
  math::Rng rng(6);
  CentralizedCritic critic(cfg, 4, rng);
  Tensor market = Tensor::Uniform({8 * 4}, rng, -1, 1);
  Tensor pre = Tensor::Full({8}, 0.125f);
  Tensor action = Tensor::Full({4}, 0.25f);
  const float q0 = critic.Forward(market, pre, action).value().Item();

  Tensor market2 = market;
  market2[0] += 1.0f;
  EXPECT_NE(critic.Forward(market2, pre, action).value().Item(), q0);
  Tensor pre2 = pre;
  pre2[0] += 0.5f;
  EXPECT_NE(critic.Forward(market, pre2, action).value().Item(), q0);
  Tensor action2 = action;
  action2[0] += 0.5f;
  EXPECT_NE(critic.Forward(market, pre, action2).value().Item(), q0);
}

TEST(CounterfactualMechanism, BaselineEqualsQWhenActionIsMean) {
  // If the executed pre-decision already equals the Gaussian-mean action,
  // the counterfactual baseline must equal Q, i.e. A^k = 0 (Eq. 8).
  CrossInsightConfig cfg = TinyConfig(2);
  math::Rng rng(7);
  CentralizedCritic critic(cfg, 4, rng);
  Tensor market = Tensor::Uniform({8 * 4}, rng, -1, 1);
  Tensor pre = Tensor::Full({8}, 0.125f);
  Tensor action = Tensor::Full({4}, 0.25f);
  const float q = critic.Forward(market, pre, action).value().Item();
  // Replacing slot 0 with identical weights changes nothing.
  const float b = critic.Forward(market, pre, action).value().Item();
  EXPECT_FLOAT_EQ(q - b, 0.0f);
}

TEST(Trader, A2cDegenerateModeRuns) {
  auto panel = SmallPanel();
  CrossInsightConfig cfg = TinyConfig(0);  // no horizon policies
  CrossInsightTrader trader(panel.num_assets(), cfg);
  const auto curve = trader.Train(panel, 4);
  EXPECT_FALSE(curve.empty());
  const auto result = env::RunTestBacktest(trader, panel, cfg.window);
  EXPECT_GT(result.wealth.back(), 0.0);
}

TEST(Trader, TrainBacktestAllCreditModes) {
  auto panel = SmallPanel();
  for (CreditMode mode : {CreditMode::kCounterfactual, CreditMode::kSharedQ,
                          CreditMode::kDecCritic}) {
    CrossInsightConfig cfg = TinyConfig(2);
    cfg.credit = mode;
    CrossInsightTrader trader(panel.num_assets(), cfg);
    const auto curve = trader.Train(panel, 4);
    EXPECT_FALSE(curve.empty()) << CreditModeName(mode);
    const auto result = env::RunTestBacktest(trader, panel, cfg.window);
    EXPECT_GT(result.wealth.back(), 0.0) << CreditModeName(mode);
  }
}

TEST(Trader, AllBackboneVariantsTrain) {
  auto panel = SmallPanel();
  for (BackboneKind kind :
       {BackboneKind::kTcnAttention, BackboneKind::kGruAttention,
        BackboneKind::kGru, BackboneKind::kMlp}) {
    CrossInsightConfig cfg = TinyConfig(2);
    cfg.backbone = kind;
    cfg.train_steps = 4;
    CrossInsightTrader trader(panel.num_assets(), cfg);
    trader.Train(panel, 2);
    const auto result = env::RunTestBacktest(trader, panel, cfg.window);
    EXPECT_GT(result.wealth.back(), 0.0) << BackboneKindName(kind);
  }
}

TEST(Trader, PolicyAgentsTradeTheirOwnHorizon) {
  auto panel = SmallPanel();
  CrossInsightConfig cfg = TinyConfig(3);
  CrossInsightTrader trader(panel.num_assets(), cfg);
  trader.Train(panel, 2);
  for (int64_t k = 0; k < 3; ++k) {
    auto agent = trader.MakePolicyAgent(k);
    const auto result = env::RunTestBacktest(*agent, panel, cfg.window);
    EXPECT_GT(result.wealth.back(), 0.0) << "policy " << k;
  }
}

TEST(Trader, DeterministicBacktestGivenSeed) {
  auto panel = SmallPanel();
  auto run = [&] {
    CrossInsightConfig cfg = TinyConfig(2);
    CrossInsightTrader trader(panel.num_assets(), cfg);
    trader.Train(panel, 2);
    return env::RunTestBacktest(trader, panel, cfg.window).wealth.back();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Trader, DecideWeightsOnSimplex) {
  auto panel = SmallPanel();
  CrossInsightConfig cfg = TinyConfig(2);
  CrossInsightTrader trader(panel.num_assets(), cfg);
  trader.Reset();
  const auto w = trader.DecideWeights(panel, panel.train_end() + 3);
  EXPECT_TRUE(env::IsValidPortfolio(w));
}

TEST(Trader, CounterfactualLearnsPlantedBandSignal) {
  // A market whose only predictable structure is a slow mean-reverting
  // component: training should not diverge and the learning curve should
  // not collapse (loose sanity check on the full training loop).
  auto panel = SmallPanel(33);
  CrossInsightConfig cfg = TinyConfig(3);
  cfg.train_steps = 30;
  CrossInsightTrader trader(panel.num_assets(), cfg);
  const auto curve = trader.Train(panel, 6);
  for (double v : curve) EXPECT_TRUE(std::isfinite(v));
  EXPECT_EQ(trader.last_advantages().size(), 3u);
}

}  // namespace
}  // namespace cit::core
