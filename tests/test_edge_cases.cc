// Edge-case and failure-injection tests across modules.
#include <cmath>

#include <gtest/gtest.h>

#include "core/trader.h"
#include "env/portfolio_env.h"
#include "market/simulator.h"
#include "math/autograd.h"
#include "math/rng.h"
#include "olps/strategies.h"
#include "rl/features.h"

namespace cit {
namespace {

using ag::Var;
using math::Tensor;

// ---- Autograd edge cases ----------------------------------------------------

TEST(AutogradEdge, ConcatManyParts) {
  Var a = Var::Param(Tensor({1, 2}, {1, 2}));
  Var b = Var::Param(Tensor({1, 3}, {3, 4, 5}));
  Var c = Var::Param(Tensor({1, 1}, {6}));
  Var out = ag::Concat({a, b, c}, 1);
  EXPECT_EQ(out.shape(), (math::Shape{1, 6}));
  ag::Sum(ag::Square(out)).Backward();
  EXPECT_FLOAT_EQ(a.grad()[1], 4.0f);   // 2*2
  EXPECT_FLOAT_EQ(b.grad()[2], 10.0f);  // 2*5
  EXPECT_FLOAT_EQ(c.grad()[0], 12.0f);  // 2*6
}

TEST(AutogradEdge, PermuteIdentityIsNoOp) {
  math::Rng rng(1);
  Tensor t = Tensor::Uniform({2, 3, 4}, rng, -1, 1);
  Var a = Var::Constant(t);
  EXPECT_TRUE(math::TensorEquals(ag::Permute(a, {0, 1, 2}).value(), t));
}

TEST(AutogradEdge, DoublePermuteRoundTrips) {
  math::Rng rng(2);
  Tensor t = Tensor::Uniform({2, 3, 4}, rng, -1, 1);
  Var a = Var::Constant(t);
  Var p = ag::Permute(ag::Permute(a, {2, 0, 1}), {1, 2, 0});
  EXPECT_TRUE(math::TensorEquals(p.value(), t));
}

TEST(AutogradEdge, BackwardTwiceAccumulates) {
  Var a = Var::Param(Tensor::Scalar(3.0f));
  Var out1 = ag::Square(a);
  out1.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 6.0f);
  Var out2 = ag::Square(a);
  out2.Backward();  // accumulates without ZeroGrad
  EXPECT_FLOAT_EQ(a.grad()[0], 12.0f);
}

TEST(AutogradEdge, DiamondGraphGradient) {
  // f = (a*a) + (a*a): both paths through the same parent.
  Var a = Var::Param(Tensor::Scalar(2.0f));
  Var sq = ag::Square(a);
  ag::Add(sq, sq).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 8.0f);  // 2 * 2a
}

TEST(AutogradEdge, SliceThenConcatReconstructs) {
  math::Rng rng(3);
  Tensor t = Tensor::Uniform({4, 6}, rng, -1, 1);
  Var a = Var::Constant(t);
  Var left = ag::Slice(a, 1, 0, 2);
  Var right = ag::Slice(a, 1, 2, 4);
  EXPECT_TRUE(
      math::TensorEquals(ag::Concat({left, right}, 1).value(), t));
}

TEST(AutogradEdge, ExpOfLogIsIdentityGradient) {
  Var a = Var::Param(Tensor({3}, {0.5f, 1.5f, 2.5f}));
  ag::Sum(ag::Exp(ag::Log(a))).Backward();
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(a.grad()[i], 1.0f, 1e-5f);
}

// ---- Env edge cases ----------------------------------------------------------

market::PricePanel TinyPanel() {
  market::MarketConfig cfg;
  cfg.num_assets = 3;
  cfg.train_days = 60;
  cfg.test_days = 20;
  cfg.seed = 4;
  return market::SimulateMarket(cfg);
}

TEST(EnvEdge, FullConcentrationPortfolioIsLegal) {
  auto panel = TinyPanel();
  env::EnvConfig cfg;
  cfg.window = 4;
  env::PortfolioEnv env(&panel, cfg);
  const env::StepResult r = env.Step({1.0, 0.0, 0.0});
  EXPECT_TRUE(std::isfinite(r.reward));
  EXPECT_NEAR(env.previous_weights()[1], 0.0, 1e-12);
}

TEST(EnvEdge, ResetAtOutOfRangeDies) {
  auto panel = TinyPanel();
  env::EnvConfig cfg;
  cfg.window = 4;
  env::PortfolioEnv env(&panel, cfg);
  EXPECT_DEATH(env.ResetAt(1), "");                      // before window
  EXPECT_DEATH(env.ResetAt(panel.num_days() + 5), "");   // past end
}

TEST(EnvEdge, DoneExactlyAtEndDay) {
  auto panel = TinyPanel();
  env::EnvConfig cfg;
  cfg.window = 4;
  cfg.start_day = panel.num_days() - 3;
  env::PortfolioEnv env(&panel, cfg);
  int steps = 0;
  const std::vector<double> u(3, 1.0 / 3.0);
  while (!env.done()) {
    env.Step(u);
    ++steps;
  }
  EXPECT_EQ(steps, 2);
  EXPECT_EQ(env.current_day(), panel.num_days() - 1);
}

// ---- Features edge cases -----------------------------------------------------

TEST(FeaturesEdge, WindowAtEarliestValidDay) {
  auto panel = TinyPanel();
  const int64_t window = 8;
  // day = window - 1 is the first day with a full window.
  Tensor t = rl::NormalizedWindow(panel, window - 1, window);
  EXPECT_EQ(t.dim(2), window);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(t[i]));
  }
}

TEST(FeaturesEdge, SingleBandEqualsFullWindow) {
  auto panel = TinyPanel();
  Tensor full = rl::NormalizedWindow(panel, 20, 8);
  const auto bands = rl::HorizonBandWindows(panel, 20, 8, 1);
  ASSERT_EQ(bands.size(), 1u);
  EXPECT_TRUE(math::TensorAllClose(bands[0], full, 1e-5f));
}

// ---- Strategy edge cases -----------------------------------------------------

TEST(StrategyEdge, OlmarHandlesFlatPrices) {
  market::PricePanel panel(30, 2);
  for (int64_t t = 0; t < 30; ++t) {
    panel.SetClose(t, 0, 100.0);
    panel.SetClose(t, 1, 100.0);
  }
  olps::Olmar olmar;
  olmar.Reset();
  olmar.DecideWeights(panel, 10);
  const auto w = olmar.DecideWeights(panel, 11);  // denom == 0 path
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-9);
}

TEST(StrategyEdge, AnticorBeforeWarmupKeepsWeights) {
  auto panel = TinyPanel();
  olps::Anticor anticor(8);
  anticor.Reset();
  anticor.DecideWeights(panel, 10);
  const auto w = anticor.DecideWeights(panel, 11);  // day < 2w
  for (double v : w) EXPECT_NEAR(v, 1.0 / 3.0, 1e-9);
}

TEST(StrategyEdge, SingleAssetMarketIsAlwaysFullyInvested) {
  market::PricePanel panel(40, 1);
  math::Rng rng(5);
  double p = 100.0;
  for (int64_t t = 0; t < 40; ++t) {
    if (t > 0) p *= std::exp(0.01 * rng.Normal());
    panel.SetClose(t, 0, p);
  }
  olps::Eg eg;
  eg.Reset();
  for (int64_t day = 5; day < 30; ++day) {
    const auto w = eg.DecideWeights(panel, day);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_NEAR(w[0], 1.0, 1e-9);
  }
}

// ---- Trader edge cases -------------------------------------------------------

TEST(TraderEdge, SinglePolicyConfigurationWorks) {
  auto panel = TinyPanel();
  core::CrossInsightConfig cfg;
  cfg.num_policies = 1;  // degenerate band split (the raw window)
  cfg.window = 8;
  cfg.feature_dim = 4;
  cfg.tcn_blocks = 1;
  cfg.head_hidden = 8;
  cfg.critic_hidden = 8;
  cfg.train_steps = 4;
  cfg.rollout_len = 4;
  core::CrossInsightTrader trader(panel.num_assets(), cfg);
  trader.Train(panel);
  trader.Reset();
  const auto w = trader.DecideWeights(panel, panel.train_end() + 2);
  EXPECT_TRUE(env::IsValidPortfolio(w));
}

TEST(TraderEdge, WindowLargerThanCriticDaysClamps) {
  auto panel = TinyPanel();
  core::CrossInsightConfig cfg;
  cfg.num_policies = 2;
  cfg.window = 6;
  cfg.critic_market_days = 100;  // clamped to window
  cfg.feature_dim = 4;
  cfg.tcn_blocks = 1;
  cfg.head_hidden = 8;
  cfg.critic_hidden = 8;
  cfg.train_steps = 3;
  cfg.rollout_len = 3;
  core::CrossInsightTrader trader(panel.num_assets(), cfg);
  trader.Train(panel);  // would CHECK-fail on shape mismatch if unclamped
  SUCCEED();
}

}  // namespace
}  // namespace cit
