#include <cmath>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/attention.h"
#include "nn/conv.h"
#include "nn/gru.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace cit::nn {
namespace {

using ag::Var;
using cit::testing::ExpectGradientsMatch;
using math::Rng;
using math::Tensor;

std::vector<Var> AllParams(const Module& m) { return ParamVars(m); }

TEST(Linear, OutputShapeAndBias) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  Var x = Var::Constant(Tensor::Ones({2, 4}));
  Var y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (math::Shape{2, 3}));
  Var xv = Var::Constant(Tensor::Ones({4}));
  EXPECT_EQ(layer.Forward(xv).shape(), (math::Shape{3}));
}

TEST(Linear, GradCheckThroughLayer) {
  Rng rng(2);
  Linear layer(3, 2, rng);
  Var x = Var::Constant(Tensor::Uniform({2, 3}, rng, -1, 1));
  ExpectGradientsMatch(
      [&] { return ag::Sum(ag::Square(layer.Forward(x))); },
      AllParams(layer));
}

TEST(Mlp, ParameterCountAndNames) {
  Rng rng(3);
  Mlp mlp({5, 7, 2}, rng);
  // (5*7 + 7) + (7*2 + 2) = 42 + 16 = 58
  EXPECT_EQ(mlp.NumParams(), 58);
  auto params = mlp.Parameters();
  EXPECT_EQ(params[0].name, "layer0.weight");
  EXPECT_EQ(params.back().name, "layer1.bias");
}

TEST(Mlp, GradCheckEndToEnd) {
  Rng rng(4);
  Mlp mlp({3, 4, 1}, rng);
  Var x = Var::Constant(Tensor::Uniform({3}, rng, -1, 1));
  ExpectGradientsMatch([&] { return ag::Sum(mlp.Forward(x)); },
                       AllParams(mlp));
}

TEST(CausalConv1dLayer, ShapeAndGradCheck) {
  Rng rng(5);
  CausalConv1d conv(2, 3, 3, 2, rng);
  Var x = Var::Constant(Tensor::Uniform({2, 2, 6}, rng, -1, 1));
  Var y = conv.Forward(x);
  EXPECT_EQ(y.shape(), (math::Shape{2, 3, 6}));
  ExpectGradientsMatch(
      [&] { return ag::Sum(ag::Square(conv.Forward(x))); },
      AllParams(conv));
}

TEST(Tcn, ReceptiveFieldGrowsWithBlocks) {
  // With 2 blocks (dilations 1,2; two k=3 convs each) the receptive field
  // is 1 + 2*(2)*1 + 2*(2)*2 = 13; an input change beyond it cannot affect
  // the last output.
  Rng rng(6);
  Tcn tcn(1, 4, 2, 3, rng);
  Tensor x = Tensor::Uniform({1, 1, 20}, rng, -1, 1);
  Tensor y1 = tcn.Forward(Var::Constant(x)).value();
  Tensor x2 = x;
  x2.At({0, 0, 0}) += 10.0f;  // day 0: outside RF of the last step
  Tensor y2 = tcn.Forward(Var::Constant(x2)).value();
  const int64_t last = 19;
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(y1.At({0, c, last}), y2.At({0, c, last}));
  }
  // But a recent change does.
  Tensor x3 = x;
  x3.At({0, 0, 19}) += 10.0f;
  Tensor y3 = tcn.Forward(Var::Constant(x3)).value();
  bool changed = false;
  for (int64_t c = 0; c < 4; ++c) {
    changed |= y1.At({0, c, last}) != y3.At({0, c, last});
  }
  EXPECT_TRUE(changed);
}

TEST(Tcn, GradCheckSmall) {
  Rng rng(7);
  Tcn tcn(1, 2, 1, 2, rng);
  Var x = Var::Constant(Tensor::Uniform({2, 1, 5}, rng, -1, 1));
  ExpectGradientsMatch(
      [&] { return ag::Mean(ag::Square(tcn.Forward(x))); },
      AllParams(tcn), /*eps=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/4e-3f);
}

TEST(GruCell, StateShapeAndUpdateGateBounds) {
  Rng rng(8);
  GruCell cell(3, 4, rng);
  Var x = Var::Constant(Tensor::Uniform({2, 3}, rng, -1, 1));
  Var h = Var::Constant(Tensor::Zeros({2, 4}));
  Var h2 = cell.Forward(x, h);
  EXPECT_EQ(h2.shape(), (math::Shape{2, 4}));
  // GRU output is a convex mix of h (0) and tanh candidate: within (-1, 1).
  for (int64_t i = 0; i < h2.numel(); ++i) {
    EXPECT_LT(std::fabs(h2.value()[i]), 1.0f);
  }
}

TEST(Gru, SequenceLastMatchesForwardLast) {
  Rng rng(9);
  Gru gru(2, 3, rng);
  Var x = Var::Constant(Tensor::Uniform({2, 2, 5}, rng, -1, 1));
  Tensor seq = gru.ForwardSequence(x).value();
  Tensor last = gru.ForwardLast(x).value();
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t f = 0; f < 3; ++f) {
      EXPECT_FLOAT_EQ(seq.At({b, f, 4}), last.At({b, f}));
    }
  }
}

TEST(Gru, GradCheckThroughTime) {
  Rng rng(10);
  Gru gru(1, 2, rng);
  Var x = Var::Constant(Tensor::Uniform({1, 1, 4}, rng, -1, 1));
  ExpectGradientsMatch(
      [&] { return ag::Sum(ag::Square(gru.ForwardLast(x))); },
      AllParams(gru), /*eps=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/4e-3f);
}

TEST(SpatialAttention, RowStochasticAttentionMatrix) {
  Rng rng(11);
  SpatialAttention attn(4, 3, 5, rng);
  Var x = Var::Constant(Tensor::Uniform({4, 3, 5}, rng, -1, 1));
  Var s;
  Var y = attn.Forward(x, &s);
  EXPECT_EQ(y.shape(), (math::Shape{4, 3, 5}));
  ASSERT_TRUE(s.defined());
  for (int64_t r = 0; r < 4; ++r) {
    float total = 0.0f;
    for (int64_t c = 0; c < 4; ++c) {
      const float v = s.value().At({r, c});
      EXPECT_GE(v, 0.0f);
      total += v;
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(SpatialAttention, GradCheck) {
  Rng rng(12);
  SpatialAttention attn(3, 2, 4, rng);
  Var x = Var::Constant(Tensor::Uniform({3, 2, 4}, rng, -1, 1));
  ExpectGradientsMatch(
      [&] { return ag::Mean(ag::Square(attn.Forward(x))); },
      AllParams(attn), /*eps=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/4e-3f);
}

// ---- Optimizers -------------------------------------------------------------

TEST(Sgd, ConvergesOnQuadratic) {
  Var w = Var::Param(Tensor::Scalar(5.0f));
  Sgd sgd({w}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    sgd.ZeroGrad();
    ag::Square(ag::AddScalar(w, -3.0f)).Backward();
    sgd.Step();
  }
  EXPECT_NEAR(w.value().Item(), 3.0f, 1e-3f);
}

TEST(SgdMomentum, FasterThanPlainOnIllConditioned) {
  auto run = [](float momentum) {
    Var a = Var::Param(Tensor::Scalar(4.0f));
    Var b = Var::Param(Tensor::Scalar(4.0f));
    Sgd sgd({a, b}, 0.02f, momentum);
    for (int i = 0; i < 100; ++i) {
      sgd.ZeroGrad();
      // f = a^2 + 20 b^2
      ag::Add(ag::Square(a), ag::MulScalar(ag::Square(b), 20.0f))
          .Backward();
      sgd.Step();
    }
    return std::fabs(a.value().Item()) + std::fabs(b.value().Item());
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(Adam, ConvergesOnRosenbrockish) {
  Var x = Var::Param(Tensor::Scalar(-1.0f));
  Var y = Var::Param(Tensor::Scalar(1.5f));
  Adam adam({x, y}, 0.05f);
  for (int i = 0; i < 800; ++i) {
    adam.ZeroGrad();
    // (1-x)^2 + 5 (y - x^2)^2
    Var t1 = ag::Square(ag::AddScalar(ag::Neg(x), 1.0f));
    Var t2 = ag::MulScalar(ag::Square(ag::Sub(y, ag::Square(x))), 5.0f);
    ag::Add(t1, t2).Backward();
    adam.Step();
  }
  EXPECT_NEAR(x.value().Item(), 1.0f, 0.05f);
  EXPECT_NEAR(y.value().Item(), 1.0f, 0.1f);
}

TEST(Adam, WeightDecayShrinksUnusedParams) {
  Var used = Var::Param(Tensor::Scalar(1.0f));
  Var unused = Var::Param(Tensor::Scalar(1.0f));
  Adam adam({used, unused}, 0.01f, 0.9f, 0.999f, 1e-8f, 0.1f);
  for (int i = 0; i < 50; ++i) {
    adam.ZeroGrad();
    ag::Square(ag::AddScalar(used, -1.0f)).Backward();
    adam.Step();
  }
  // Decoupled decay applies only to parameters that received gradients.
  EXPECT_LT(used.value().Item(), 1.0f);
  EXPECT_FLOAT_EQ(unused.value().Item(), 1.0f);
}

TEST(Optimizer, ClipGradNormScalesLargeGradients) {
  Var w = Var::Param(Tensor({2}, {0.0f, 0.0f}));
  Sgd sgd({w}, 1.0f);
  sgd.ZeroGrad();
  ag::Sum(ag::MulScalar(w, 300.0f)).Backward();  // grad = (300, 300)
  const float norm = sgd.ClipGradNorm(1.0f);
  EXPECT_NEAR(norm, 300.0f * std::sqrt(2.0f), 1e-2f);
  const Tensor& g = w.grad();
  EXPECT_NEAR(std::sqrt(g[0] * g[0] + g[1] * g[1]), 1.0f, 1e-5f);
}

TEST(Optimizer, ClipGradNormDetachesSharedGradStorage) {
  // Regression: a gradient installed via AccumGrad shares the caller's
  // tensor storage (COW handle copy). Clipping must detach before scaling
  // in place — never rescale the caller's tensor through the shared view.
  Var w = Var::Param(Tensor({2}, {0.0f, 0.0f}));
  Tensor g({2}, {30.0f, 40.0f});  // norm 50
  ag::AccumGrad(w.node().get(), g);
  Sgd sgd({w}, 1.0f);
  const float norm = sgd.ClipGradNorm(1.0f);
  EXPECT_NEAR(norm, 50.0f, 1e-4f);
  EXPECT_NEAR(w.grad()[0], 30.0f / 50.0f, 1e-6f);
  EXPECT_NEAR(w.grad()[1], 40.0f / 50.0f, 1e-6f);
  // The tensor the gradient was accumulated from is untouched.
  EXPECT_FLOAT_EQ(g[0], 30.0f);
  EXPECT_FLOAT_EQ(g[1], 40.0f);
}

TEST(ParamUtilDeathTest, SoftUpdateRejectsShapeMismatch) {
  Rng rng(31);
  // Same number of parameter tensors, different shapes: blending the
  // buffers would read out of bounds, so the shape check must fire.
  Mlp src({4, 8, 2}, rng);
  Mlp dst({4, 9, 2}, rng);
  EXPECT_DEATH(SoftUpdateParameters(src, &dst, 0.5f), "shape");
}

TEST(ParamUtil, CopyAndSoftUpdate) {
  Rng rng(13);
  Linear a(2, 2, rng), b(2, 2, rng);
  CopyParameters(a, &b);
  EXPECT_TRUE(math::TensorEquals(a.Parameters()[0].var.value(),
                                 b.Parameters()[0].var.value()));
  // Perturb a, then soft-update b toward it.
  a.Parameters()[0].var.mutable_value()[0] += 1.0f;
  const float before = b.Parameters()[0].var.value()[0];
  SoftUpdateParameters(a, &b, 0.5f);
  const float after = b.Parameters()[0].var.value()[0];
  EXPECT_NEAR(after - before, 0.5f, 1e-6f);
}

TEST(ParamUtil, CopyNeverAliasesSourceStorage) {
  // Regression for COW aliasing: CopyParameters must materialize a private
  // buffer per target tensor. If it merely copied the COW handle, an
  // optimizer-style in-place write to the source (which detaches the
  // *source* handle, or worse, writes through a shared buffer) could leak
  // into the target net — a target network silently tracking its source.
  Rng rng(32);
  Mlp src({3, 4, 2}, rng);
  Mlp dst({3, 4, 2}, rng);
  CopyParameters(src, &dst);
  auto from = src.Parameters();
  auto to = dst.Parameters();
  ASSERT_EQ(from.size(), to.size());
  for (size_t i = 0; i < from.size(); ++i) {
    EXPECT_FALSE(
        from[i].var.value().SharesStorageWith(to[i].var.value()))
        << "param " << i << " aliases its source after CopyParameters";
  }
  // Mutate every source parameter the way an optimizer step does (through
  // mutable_value) and check the copies are bitwise unchanged.
  std::vector<Tensor> snapshot;
  for (auto& p : to) snapshot.push_back(p.var.value());
  for (auto& p : src.Parameters()) {
    Tensor& w = p.var.mutable_value();
    for (int64_t j = 0; j < w.numel(); ++j) w[j] += 1.0f;
  }
  for (size_t i = 0; i < to.size(); ++i) {
    EXPECT_TRUE(math::TensorEquals(snapshot[i], to[i].var.value()))
        << "param " << i << " changed when its source was mutated";
  }
}

TEST(SpatialAttention, GradCheckThroughAttentionMatrix) {
  // The diagnostics output (the row-softmax attention matrix) shares the
  // graph with the mixed output; differentiating a loss that reads *both*
  // exercises the score path (w1/w2/w3) and the mixing path (vs/bs) with
  // non-degenerate gradients.
  Rng rng(33);
  SpatialAttention attn(3, 2, 4, rng);
  Var x = Var::Constant(Tensor::Uniform({3, 2, 4}, rng, -1, 1));
  ExpectGradientsMatch(
      [&] {
        Var s;
        Var y = attn.Forward(x, &s);
        return ag::Add(ag::Mean(ag::Square(y)),
                       ag::Mean(ag::Square(s)));
      },
      AllParams(attn), /*eps=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/4e-3f);
}

TEST(Init, XavierBoundsRespected) {
  Rng rng(14);
  Tensor w = XavierUniform({100, 100}, 100, 100, rng);
  const float bound = std::sqrt(6.0f / 200.0f);
  EXPECT_LE(w.Max(), bound);
  EXPECT_GE(w.Min(), -bound);
}

TEST(Init, KaimingVarianceApproximatelyCorrect) {
  Rng rng(15);
  Tensor w = KaimingNormal({200, 50}, 50, rng);
  double sq = 0.0;
  for (int64_t i = 0; i < w.numel(); ++i) sq += w[i] * w[i];
  EXPECT_NEAR(sq / w.numel(), 2.0 / 50.0, 0.01);
}

}  // namespace
}  // namespace cit::nn
