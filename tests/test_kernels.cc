// Adversarial coverage of the kernel dispatch seam (math/kernels.h +
// math/simd.h + kernels_simd.cc):
//
//  - a GEMM/conv shape matrix of prime and tail dimensions that straddle
//    every microkernel boundary (kGemmMr rows, kGemmNr columns, kGemmKc
//    depth), plus q==0 / r==0 / p==0, 1x1, and large-aspect shapes;
//  - per-backend bitwise self-consistency across 1 and 4 pool threads
//    (scripts/check.sh reruns these under TSan with CIT_OVERSUBSCRIBE=1 so
//    the 4-thread arm is real even on a 1-core host);
//  - simd-vs-scalar agreement: 0 ULP on the non-FMA arms the contract
//    promises exact (plain elementwise ops, FusedElemwise chains), a
//    documented tolerance on the FMA arms (MatMul, Axpy, conv-via-im2col);
//  - the packed-panel buffer staying allocation-free in steady state
//    (kernels.gemm_pack_allocs);
//  - the kernels.gemm_bytes / conv_bytes traffic formulas, pinned against
//    closed forms computed from the block structure.
#include <cmath>
#include <cstring>
#include <iterator>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "math/kernels.h"
#include "math/rng.h"
#include "obs/telemetry.h"

namespace cit {
namespace {

using math::Rng;
namespace kn = math::kernels;

// FMA arms (one extra rounding per fused multiply-add vs. the scalar
// backend's round-twice multiply-add): per-element tolerance scaled by the
// result's magnitude. The reduction lengths in the matrix are <= 300, so
// the accumulated difference is orders of magnitude below this bound;
// exceeding it means a real dispatch bug, not rounding.
constexpr float kFmaArmTol = 1e-4f;

bool NearFma(float got, float ref) {
  if (std::isnan(got) || std::isnan(ref)) return false;
  return std::fabs(got - ref) <= kFmaArmTol * std::max(1.0f, std::fabs(ref));
}

class BackendGuard {
 public:
  explicit BackendGuard(kn::Backend b) : saved_(kn::SetBackend(b)) {}
  ~BackendGuard() { kn::SetBackend(saved_); }

 private:
  kn::Backend saved_;
};

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n)
      : saved_(ThreadPool::Global().num_threads()) {
    ThreadPool::Global().SetNumThreads(n);
  }
  ~ThreadCountGuard() { ThreadPool::Global().SetNumThreads(saved_); }

 private:
  int saved_;
};

class TelemetryGuard {
 public:
  explicit TelemetryGuard(bool on) : saved_(obs::Enabled()) {
    obs::SetEnabled(on);
  }
  ~TelemetryGuard() { obs::SetEnabled(saved_); }

 private:
  bool saved_;
};

std::vector<kn::Backend> AllBackends() {
  std::vector<kn::Backend> v{kn::Backend::kScalar};
  if (kn::SimdAvailable()) v.push_back(kn::Backend::kSimd);
  return v;
}

const char* Name(kn::Backend b) {
  return b == kn::Backend::kScalar ? "scalar" : "simd";
}

struct GemmShape {
  int64_t p, q, r;
};

// Every microkernel boundary gets a non-multiple: p around kGemmMr (4),
// r around kGemmNr (32), q around kGemmKc (256); primes everywhere else.
const GemmShape kGemmShapes[] = {
    {1, 1, 1},
    {5, 7, 13},                                      // all below tile sizes
    {3, 31, 33},                                     // one-column nr tail
    {7, 257, 31},                                    // one-element kc tail
    {kn::kGemmMr + 1, kn::kGemmKc + 1, kn::kGemmNr + 1},
    {64, 64, 64},                                    // exact multiples
    {1, 300, 2},                                     // wide-and-flat aspect
    {200, 1, 37},                                    // q == 1
    {0, 8, 8},                                       // empty output rows
    {8, 0, 8},                                       // empty reduction
    {8, 8, 0},                                       // empty output cols
};

std::vector<float> RunGemm(const GemmShape& s, kn::Backend b, int threads) {
  BackendGuard bg(b);
  ThreadCountGuard tg(threads);
  Rng rng(91 + s.p * 7 + s.q * 3 + s.r);
  std::vector<float> a(static_cast<size_t>(s.p * s.q));
  std::vector<float> bm(static_cast<size_t>(s.q * s.r));
  for (float& v : a) v = rng.Uniform(-1.0f, 1.0f);
  for (float& v : bm) v = rng.Uniform(-1.0f, 1.0f);
  // Sentinel fill: q == 0 must still zero the output.
  std::vector<float> c(static_cast<size_t>(s.p * s.r), 7.25f);
  kn::MatMul(a.data(), bm.data(), c.data(), s.p, s.q, s.r);
  return c;
}

TEST(KernelDispatch, SetBackendRoundTripAndClamp) {
  const kn::Backend original = kn::ActiveBackend();
  const kn::Backend prev = kn::SetBackend(kn::Backend::kScalar);
  EXPECT_EQ(prev, original);
  EXPECT_EQ(kn::ActiveBackend(), kn::Backend::kScalar);
  kn::SetBackend(kn::Backend::kSimd);
  if (kn::SimdAvailable()) {
    EXPECT_EQ(kn::ActiveBackend(), kn::Backend::kSimd);
    EXPECT_STRNE(kn::SimdIsaName(), "none");
  } else {
    // Forcing simd on a scalar-only build clamps back to scalar.
    EXPECT_EQ(kn::ActiveBackend(), kn::Backend::kScalar);
    EXPECT_STREQ(kn::SimdIsaName(), "none");
  }
  kn::SetBackend(original);
}

TEST(KernelDispatch, GemmBitwiseThreadInvariantPerBackend) {
  for (kn::Backend b : AllBackends()) {
    for (const GemmShape& s : kGemmShapes) {
      const std::vector<float> c1 = RunGemm(s, b, 1);
      const std::vector<float> c4 = RunGemm(s, b, 4);
      ASSERT_EQ(c1.size(), c4.size());
      ASSERT_TRUE(c1.empty() ||
                  std::memcmp(c1.data(), c4.data(),
                              c1.size() * sizeof(float)) == 0)
          << Name(b) << " GEMM " << s.p << "x" << s.q << "x" << s.r
          << " differs between 1 and 4 threads";
    }
  }
}

TEST(KernelDispatch, GemmSimdMatchesScalarWithinTolerance) {
  if (!kn::SimdAvailable()) GTEST_SKIP() << "no SIMD path compiled";
  for (const GemmShape& s : kGemmShapes) {
    const std::vector<float> ref = RunGemm(s, kn::Backend::kScalar, 1);
    const std::vector<float> got = RunGemm(s, kn::Backend::kSimd, 1);
    ASSERT_EQ(ref.size(), got.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_TRUE(NearFma(got[i], ref[i]))
          << "GEMM " << s.p << "x" << s.q << "x" << s.r << " at " << i
          << ": simd " << got[i] << " vs scalar " << ref[i];
    }
    // Degenerate reductions produce exact zeros on both backends.
    if (s.q == 0) {
      for (float v : got) ASSERT_EQ(v, 0.0f);
    }
  }
}

// ---- Elementwise: the 0-ULP arms -------------------------------------------

TEST(KernelDispatch, ElementwiseSimdBitwiseEqualsScalar) {
  if (!kn::SimdAvailable()) GTEST_SKIP() << "no SIMD path compiled";
  // Crosses the parallel grain with an odd tail so vector blocks, scalar
  // tails, and chunk boundaries all land mid-array.
  const int64_t n = kn::kElementwiseGrain * 2 + 17;
  Rng rng(17);
  std::vector<float> a(n), b(n);
  for (float& v : a) v = rng.Uniform(-3.0f, 3.0f);
  for (float& v : b) {
    v = rng.Uniform(0.5f, 2.0f) * (rng.Uniform(0.0f, 1.0f) < 0.5f ? -1 : 1);
  }

  using Fn = void (*)(const float*, const float*, float*, int64_t);
  struct Arm {
    const char* name;
    Fn fn;
  };
  const Arm arms[] = {{"Add", kn::Add},
                      {"Sub", kn::Sub},
                      {"Mul", kn::Mul},
                      {"Div", kn::Div}};
  for (const Arm& arm : arms) {
    std::vector<float> ref(n), got(n);
    {
      BackendGuard g(kn::Backend::kScalar);
      arm.fn(a.data(), b.data(), ref.data(), n);
    }
    {
      BackendGuard g(kn::Backend::kSimd);
      arm.fn(a.data(), b.data(), got.data(), n);
    }
    ASSERT_EQ(std::memcmp(ref.data(), got.data(), n * sizeof(float)), 0)
        << arm.name << " is not 0-ULP between backends";
  }

  // Scalar-parameter and in-place arms.
  for (int variant = 0; variant < 5; ++variant) {
    std::vector<float> ref = a, got = a;
    auto run = [&](std::vector<float>& dst) {
      switch (variant) {
        case 0: kn::AddScalar(dst.data(), 1.5f, dst.data(), n); break;
        case 1: kn::MulScalar(dst.data(), -0.75f, dst.data(), n); break;
        case 2: kn::AddInto(dst.data(), b.data(), n); break;
        case 3: kn::SubInto(dst.data(), b.data(), n); break;
        case 4: kn::ScaleInto(dst.data(), 1.0f / 3.0f, n); break;
      }
    };
    {
      BackendGuard g(kn::Backend::kScalar);
      run(ref);
    }
    {
      BackendGuard g(kn::Backend::kSimd);
      run(got);
    }
    ASSERT_EQ(std::memcmp(ref.data(), got.data(), n * sizeof(float)), 0)
        << "in-place variant " << variant << " is not 0-ULP";
  }
}

TEST(KernelDispatch, AxpyFmaToleranceAndThreadInvariance) {
  const int64_t n = kn::kElementwiseGrain * 2 + 5;
  Rng rng(29);
  std::vector<float> x(n), y0(n);
  for (float& v : x) v = rng.Uniform(-2.0f, 2.0f);
  for (float& v : y0) v = rng.Uniform(-2.0f, 2.0f);
  const float alpha = 0.37f;

  auto run = [&](kn::Backend b, int threads) {
    BackendGuard bg(b);
    ThreadCountGuard tg(threads);
    std::vector<float> y = y0;
    kn::Axpy(alpha, x.data(), y.data(), n);
    return y;
  };
  for (kn::Backend b : AllBackends()) {
    const std::vector<float> y1 = run(b, 1);
    const std::vector<float> y4 = run(b, 4);
    // The simd arm's scalar tail uses fmaf, matching the vector lanes, so
    // chunk boundaries moving the vector/tail split cannot change values.
    ASSERT_EQ(std::memcmp(y1.data(), y4.data(), n * sizeof(float)), 0)
        << Name(b) << " Axpy differs between 1 and 4 threads";
  }
  if (kn::SimdAvailable()) {
    const std::vector<float> ref = run(kn::Backend::kScalar, 1);
    const std::vector<float> got = run(kn::Backend::kSimd, 1);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(NearFma(got[i], ref[i])) << "Axpy at " << i;
    }
  }
}

// ---- FusedElemwise ---------------------------------------------------------

TEST(KernelDispatch, FusedElemwiseExactChainBitwise) {
  using kn::ElemOp;
  using kn::ElemOpKind;
  const int64_t n = kn::kElementwiseGrain + 31;
  Rng rng(41);
  std::vector<float> in(n);
  for (float& v : in) v = rng.Uniform(-2.0f, 2.0f);
  // Every bit-exact vectorizable op in one chain.
  const ElemOp ops[] = {{ElemOpKind::kSquare, 0, 0},
                        {ElemOpKind::kMulScalar, 0.5f, 0},
                        {ElemOpKind::kAddScalar, -0.25f, 0},
                        {ElemOpKind::kClamp, -0.5f, 0.5f},
                        {ElemOpKind::kAbs, 0, 0},
                        {ElemOpKind::kRelu, 0, 0},
                        {ElemOpKind::kSqrt, 0, 0}};
  const int count = static_cast<int>(std::size(ops));

  // Reference: the scalar ElemApply chain, element by element — the same
  // formula the interpreted autodiff forward evaluates.
  std::vector<float> manual(n);
  for (int64_t i = 0; i < n; ++i) {
    float v = in[i];
    for (int o = 0; o < count; ++o) v = kn::ElemApply(ops[o], v);
    manual[i] = v;
  }
  for (kn::Backend b : AllBackends()) {
    BackendGuard g(b);
    for (int threads : {1, 4}) {
      ThreadCountGuard tg(threads);
      std::vector<float> out(n);
      kn::FusedElemwise(in.data(), out.data(), n, ops, count);
      ASSERT_EQ(std::memcmp(manual.data(), out.data(), n * sizeof(float)), 0)
          << Name(b) << " fused sweep at " << threads
          << " threads deviates from the ElemApply chain";
    }
  }
}

TEST(KernelDispatch, FusedElemwiseLibmChainStaysScalarExact) {
  using kn::ElemOp;
  using kn::ElemOpKind;
  const int64_t n = 4097;
  Rng rng(43);
  std::vector<float> in(n);
  for (float& v : in) v = rng.Uniform(-1.0f, 1.0f);
  // exp/log force the scalar ElemApply sweep even on the simd backend, so
  // the two backends must agree bitwise.
  const ElemOp ops[] = {{ElemOpKind::kMulScalar, 0.25f, 0},
                        {ElemOpKind::kExp, 0, 0},
                        {ElemOpKind::kAddScalar, 1.0f, 0},
                        {ElemOpKind::kLog, 0, 0}};
  const int count = static_cast<int>(std::size(ops));
  std::vector<float> ref(n), got(n);
  {
    BackendGuard g(kn::Backend::kScalar);
    kn::FusedElemwise(in.data(), ref.data(), n, ops, count);
  }
  {
    BackendGuard g(kn::Backend::kSimd);  // clamps to scalar if unavailable
    kn::FusedElemwise(in.data(), got.data(), n, ops, count);
  }
  ASSERT_EQ(std::memcmp(ref.data(), got.data(), n * sizeof(float)), 0);
}

// ---- Conv ------------------------------------------------------------------

struct ConvShape {
  int64_t batch, cin, cout, len, k, dilation;
};

// First two take the direct path, rest the im2col+GEMM path (the gate is
// 2*cout*cin*k*len >= 2^16 && len >= 8); prime len exercises GEMM tails,
// the dilation-7 case zero-pads most of a tap's range.
const ConvShape kConvShapes[] = {
    {1, 2, 3, 6, 2, 1},       // direct
    {1, 1, 2, 5, 3, 7},       // direct; shift >= len on two taps
    {2, 8, 16, 127, 3, 3},    // im2col, prime len
    {1, 5, 29, 64, 4, 2},     // im2col, prime cout
    {3, 4, 16, 257, 1, 1},    // im2col, k == 1
};

std::vector<float> RunConv(const ConvShape& s, kn::Backend b, int threads) {
  BackendGuard bg(b);
  ThreadCountGuard tg(threads);
  Rng rng(53 + s.cin + s.cout + s.len);
  std::vector<float> x(static_cast<size_t>(s.batch * s.cin * s.len));
  std::vector<float> w(static_cast<size_t>(s.cout * s.cin * s.k));
  std::vector<float> bias(static_cast<size_t>(s.cout));
  for (float& v : x) v = rng.Uniform(-1.0f, 1.0f);
  for (float& v : w) v = rng.Uniform(-1.0f, 1.0f);
  for (float& v : bias) v = rng.Uniform(-1.0f, 1.0f);
  std::vector<float> out(static_cast<size_t>(s.batch * s.cout * s.len));
  kn::CausalConv1dForward(x.data(), w.data(), bias.data(), out.data(),
                          s.batch, s.cin, s.cout, s.len, s.k, s.dilation);
  return out;
}

TEST(KernelDispatch, ConvBitwiseThreadInvariantPerBackend) {
  for (kn::Backend b : AllBackends()) {
    for (const ConvShape& s : kConvShapes) {
      const std::vector<float> o1 = RunConv(s, b, 1);
      const std::vector<float> o4 = RunConv(s, b, 4);
      ASSERT_EQ(std::memcmp(o1.data(), o4.data(), o1.size() * sizeof(float)),
                0)
          << Name(b) << " conv len=" << s.len
          << " differs between 1 and 4 threads";
    }
  }
}

TEST(KernelDispatch, ConvSimdMatchesScalarWithinTolerance) {
  if (!kn::SimdAvailable()) GTEST_SKIP() << "no SIMD path compiled";
  for (const ConvShape& s : kConvShapes) {
    const std::vector<float> ref = RunConv(s, kn::Backend::kScalar, 1);
    const std::vector<float> got = RunConv(s, kn::Backend::kSimd, 1);
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_TRUE(NearFma(got[i], ref[i]))
          << "conv len=" << s.len << " at " << i << ": simd " << got[i]
          << " vs scalar " << ref[i];
    }
  }
}

// ---- Packed-panel buffer: allocation-free steady state ---------------------

TEST(GemmPack, SteadyStateAllocationFree) {
#ifdef CIT_OBS_DISABLED
  GTEST_SKIP() << "CIT_OBS=OFF build: counters compile out";
#endif
  TelemetryGuard telemetry(true);
  ThreadCountGuard tg(1);  // inline path: only this thread packs
  auto& allocs =
      obs::Registry::Global().GetCounter("kernels.gemm_pack_allocs");
  // Warm up: this thread's panel is allocated at most once, ever.
  RunGemm({64, 64, 64}, kn::ActiveBackend(), 1);
  const uint64_t after_warmup = allocs.Total();
  for (int round = 0; round < 10; ++round) {
    for (const GemmShape& s : kGemmShapes) {
      RunGemm(s, kn::ActiveBackend(), 1);
    }
  }
  EXPECT_EQ(allocs.Total(), after_warmup)
      << "GEMM allocated a pack panel after warmup — the hot loop must be "
         "allocation-free in steady state";
}

// ---- Byte-accounting formulas ----------------------------------------------

TEST(KernelObs, GemmBytesFormula) {
#ifdef CIT_OBS_DISABLED
  GTEST_SKIP() << "CIT_OBS=OFF build: counters compile out";
#endif
  TelemetryGuard telemetry(true);
  ThreadCountGuard tg(1);
  obs::Registry::Global().ResetAll();
  const int64_t p = 50, q = 300, r = 40;
  RunGemm({p, q, r}, kn::ActiveBackend(), 1);
  // Blocked-traffic closed form (see CountGemmBlocked in kernels.cc):
  // C memset + B pack reads + padded panel writes + A stream per column
  // panel + C read-modify-write per depth block.
  const int64_t nj = (r + kn::kGemmNr - 1) / kn::kGemmNr;  // 2
  const int64_t nk = (q + kn::kGemmKc - 1) / kn::kGemmKc;  // 2
  const int64_t expected =
      4 * (p * r + q * r + nj * q * kn::kGemmNr + nj * p * q +
           2 * nk * p * r);
  EXPECT_EQ(obs::Registry::Global().GetCounter("kernels.gemm_bytes").Total(),
            static_cast<uint64_t>(expected));
  EXPECT_EQ(obs::Registry::Global().GetCounter("kernels.gemm_flops").Total(),
            static_cast<uint64_t>(2 * p * q * r));
}

TEST(KernelObs, GemmTransBBytesFormula) {
#ifdef CIT_OBS_DISABLED
  GTEST_SKIP() << "CIT_OBS=OFF build: counters compile out";
#endif
  TelemetryGuard telemetry(true);
  ThreadCountGuard tg(1);
  const int64_t p = 9, q = 21, r = 14;
  Rng rng(59);
  std::vector<float> a(static_cast<size_t>(p * q)),
      bT(static_cast<size_t>(r * q)), c(static_cast<size_t>(p * r));
  for (float& v : a) v = rng.Uniform(-1.0f, 1.0f);
  for (float& v : bT) v = rng.Uniform(-1.0f, 1.0f);
  obs::Registry::Global().ResetAll();
  kn::MatMulTransB(a.data(), bT.data(), c.data(), p, q, r);
  // bT streamed fully per output row; a re-read once per 4-column group
  // plus once per tail column; C stored once.
  const int64_t groups = r / 4 + r % 4;  // 3 + 2
  const int64_t expected = 4 * (p * q * groups + p * q * r + p * r);
  EXPECT_EQ(obs::Registry::Global().GetCounter("kernels.gemm_bytes").Total(),
            static_cast<uint64_t>(expected));
}

TEST(KernelObs, ConvBytesFormulaBothPaths) {
#ifdef CIT_OBS_DISABLED
  GTEST_SKIP() << "CIT_OBS=OFF build: counters compile out";
#endif
  TelemetryGuard telemetry(true);
  ThreadCountGuard tg(1);
  for (const ConvShape& s : {ConvShape{1, 2, 3, 6, 2, 1},      // direct
                             ConvShape{2, 8, 16, 127, 3, 3}})  // im2col
  {
    const bool im2col = 2 * s.cout * s.cin * s.k * s.len >= (1 << 16) &&
                        s.len >= 8;
    obs::Registry::Global().ResetAll();
    RunConv(s, kn::ActiveBackend(), 1);
    int64_t taps = 0;  // post-pad tap coverage, shared by both formulas
    for (int64_t kk = 0; kk < s.k; ++kk) {
      taps += std::max<int64_t>(0, s.len - (s.k - 1 - kk) * s.dilation);
    }
    const int64_t bias_traffic = 2 * s.cout * s.len;
    const int64_t per_batch =
        im2col
            ? s.cin * taps + s.cin * s.k * s.len + bias_traffic
            : s.cout * s.len + s.cout * s.cin * s.k +
                  3 * s.cout * s.cin * taps + bias_traffic;
    EXPECT_EQ(
        obs::Registry::Global().GetCounter("kernels.conv_bytes").Total(),
        static_cast<uint64_t>(4 * s.batch * per_batch))
        << (im2col ? "im2col" : "direct") << " path, len=" << s.len;
    // The lowered GEMM books its own traffic under kernels.gemm_bytes —
    // present exactly when the im2col path ran.
    const uint64_t gemm_calls =
        obs::Registry::Global().GetCounter("kernels.gemm_calls").Total();
    EXPECT_EQ(gemm_calls, static_cast<uint64_t>(im2col ? s.batch : 0));
  }
}

}  // namespace
}  // namespace cit
