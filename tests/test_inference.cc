// Grad-mode / inference-path tests. The contract under test: NoGradGuard is
// purely a performance mode. Every number an agent produces — backtest
// wealth curves, training curves, decided weights — must be bitwise
// identical whether the guards are honored (default) or disabled via the
// ag::SetNoGradAllowed kill switch (the same switch CIT_NOGRAD=0 flips).
// Plus structural tests for the graph-free Var representation, mixed-mode
// constant lifting, guard nesting, and the per-thread buffer arena.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/trader.h"
#include "env/backtest.h"
#include "gradcheck.h"
#include "market/simulator.h"
#include "math/autograd.h"
#include "math/rng.h"
#include "math/tensor.h"
#include "rl/a2c.h"
#include "rl/ddpg.h"
#include "rl/deeptrader.h"
#include "rl/eiie.h"
#include "rl/ppo.h"
#include "rl/sarl.h"

namespace cit {
namespace {

using math::Tensor;

// Restores the process-wide kill switch no matter how a test exits, so a
// failing assertion cannot leak grad-on mode into later tests.
class NoGradAllowedScope {
 public:
  explicit NoGradAllowedScope(bool allowed) : prev_(ag::NoGradAllowed()) {
    ag::SetNoGradAllowed(allowed);
  }
  ~NoGradAllowedScope() { ag::SetNoGradAllowed(prev_); }

 private:
  bool prev_;
};

market::PricePanel SmallPanel(uint64_t seed = 7) {
  market::MarketConfig cfg;
  cfg.num_assets = 4;
  cfg.train_days = 120;
  cfg.test_days = 30;
  cfg.seed = seed;
  return market::SimulateMarket(cfg);
}

rl::RlTrainConfig TinyRlConfig() {
  rl::RlTrainConfig cfg;
  cfg.window = 8;
  cfg.train_steps = 4;
  cfg.rollout_len = 4;
  cfg.hidden = 8;
  return cfg;
}

// Runs `make_agent` through train + test-split backtest twice — once with
// the guards honored, once with them disabled process-wide — and asserts
// every observable number is bitwise identical.
template <typename MakeAgent>
void ExpectInferenceModeIsPureSpeed(const market::PricePanel& panel,
                                    MakeAgent make_agent) {
  std::vector<double> curve_on, curve_off;
  env::BacktestResult res_on, res_off;
  {
    NoGradAllowedScope scope(true);
    auto agent = make_agent();
    curve_on = agent->Train(panel, /*curve_points=*/4);
    res_on = env::RunTestBacktest(*agent, panel, /*window=*/8);
  }
  {
    NoGradAllowedScope scope(false);
    auto agent = make_agent();
    curve_off = agent->Train(panel, /*curve_points=*/4);
    res_off = env::RunTestBacktest(*agent, panel, /*window=*/8);
  }
  ASSERT_EQ(curve_on.size(), curve_off.size());
  for (size_t i = 0; i < curve_on.size(); ++i) {
    EXPECT_EQ(curve_on[i], curve_off[i]) << "training curve point " << i;
  }
  ASSERT_EQ(res_on.wealth.size(), res_off.wealth.size());
  for (size_t i = 0; i < res_on.wealth.size(); ++i) {
    EXPECT_EQ(res_on.wealth[i], res_off.wealth[i]) << "wealth step " << i;
  }
  ASSERT_EQ(res_on.daily_returns.size(), res_off.daily_returns.size());
  for (size_t i = 0; i < res_on.daily_returns.size(); ++i) {
    EXPECT_EQ(res_on.daily_returns[i], res_off.daily_returns[i])
        << "return step " << i;
  }
  EXPECT_EQ(res_on.turnover, res_off.turnover);
  EXPECT_EQ(res_on.repaired_steps, res_off.repaired_steps);
}

// ---- Bitwise identity, per agent -------------------------------------------

TEST(InferenceIdentity, CrossInsightTrader) {
  auto panel = SmallPanel();
  core::CrossInsightConfig cfg;
  cfg.num_policies = 2;
  cfg.window = 8;
  cfg.feature_dim = 4;
  cfg.tcn_blocks = 1;
  cfg.head_hidden = 8;
  cfg.critic_hidden = 8;
  cfg.train_steps = 4;
  cfg.rollout_len = 4;
  cfg.rollouts_per_update = 2;
  ExpectInferenceModeIsPureSpeed(panel, [&] {
    return std::make_unique<core::CrossInsightTrader>(panel.num_assets(),
                                                      cfg);
  });
}

TEST(InferenceIdentity, Ddpg) {
  auto panel = SmallPanel();
  rl::DdpgAgent::DdpgConfig cfg;
  static_cast<rl::RlTrainConfig&>(cfg) = TinyRlConfig();
  cfg.train_steps = 8;
  cfg.warmup_steps = 8;
  cfg.batch_size = 4;
  ExpectInferenceModeIsPureSpeed(panel, [&] {
    return std::make_unique<rl::DdpgAgent>(panel.num_assets(), cfg);
  });
}

TEST(InferenceIdentity, A2c) {
  auto panel = SmallPanel();
  ExpectInferenceModeIsPureSpeed(panel, [&] {
    return std::make_unique<rl::A2cAgent>(panel.num_assets(),
                                          TinyRlConfig());
  });
}

TEST(InferenceIdentity, Ppo) {
  auto panel = SmallPanel();
  rl::PpoAgent::PpoConfig cfg;
  static_cast<rl::RlTrainConfig&>(cfg) = TinyRlConfig();
  cfg.epochs = 2;
  ExpectInferenceModeIsPureSpeed(panel, [&] {
    return std::make_unique<rl::PpoAgent>(panel.num_assets(), cfg);
  });
}

TEST(InferenceIdentity, Sarl) {
  auto panel = SmallPanel();
  ExpectInferenceModeIsPureSpeed(panel, [&] {
    return std::make_unique<rl::SarlAgent>(panel.num_assets(),
                                           TinyRlConfig());
  });
}

TEST(InferenceIdentity, Eiie) {
  auto panel = SmallPanel();
  rl::EiieAgent::EiieConfig cfg;
  cfg.window = 8;
  cfg.train_steps = 4;
  cfg.segment_len = 4;
  cfg.conv_channels = 4;
  ExpectInferenceModeIsPureSpeed(panel, [&] {
    return std::make_unique<rl::EiieAgent>(panel.num_assets(), cfg);
  });
}

TEST(InferenceIdentity, DeepTrader) {
  auto panel = SmallPanel();
  rl::DeepTraderAgent::DeepTraderConfig cfg;
  cfg.window = 8;
  cfg.train_steps = 4;
  cfg.segment_len = 4;
  cfg.conv_channels = 4;
  cfg.hidden = 8;
  ExpectInferenceModeIsPureSpeed(panel, [&] {
    return std::make_unique<rl::DeepTraderAgent>(panel.num_assets(), cfg);
  });
}

// ---- Graph-free Var structure ----------------------------------------------

TEST(GradMode, OpsUnderGuardBuildNoGraph) {
  ag::Var a = ag::Var::Param(Tensor::Scalar(2.0f));
  ag::NoGradGuard no_grad;
  EXPECT_FALSE(ag::GradEnabled());
  ag::Var y = ag::Mul(ag::Square(a), a);
  ASSERT_TRUE(y.defined());
  EXPECT_EQ(y.node(), nullptr);
  EXPECT_FALSE(y.requires_grad());
  EXPECT_FLOAT_EQ(y.value().Item(), 8.0f);
  // Params themselves keep their node (they are leaves, not op outputs):
  // leaving the guard must find them exactly as they were.
  EXPECT_NE(a.node(), nullptr);
}

TEST(GradModeDeathTest, BackwardOnGraphFreeVarDies) {
  ag::Var a = ag::Var::Param(Tensor::Scalar(2.0f));
  ag::Var y;
  {
    ag::NoGradGuard no_grad;
    y = ag::Square(a);
  }
  EXPECT_DEATH(y.Backward(), "graph-free");
}

TEST(GradMode, GuardDoesNotChangeForwardValues) {
  math::Rng rng(3);
  Tensor x = Tensor::Uniform({4, 5}, rng, -2, 2);
  ag::Var taped = ag::Softmax(ag::Var::Param(x));
  Tensor free_value;
  {
    ag::NoGradGuard no_grad;
    free_value = ag::Softmax(ag::Var::Constant(x)).value();
  }
  for (int64_t i = 0; i < free_value.numel(); ++i) {
    EXPECT_EQ(taped.value()[i], free_value[i]) << "element " << i;
  }
}

TEST(GradMode, MixedModeConstantsLiftIntoLaterGraphs) {
  // A value computed graph-free re-enters a taped graph as a constant leaf;
  // gradients must flow to the taped parameters exactly as if the constant
  // had been built with Var::Constant directly.
  math::Rng rng(9);
  Tensor raw = Tensor::Uniform({5}, rng, -1, 1);
  ag::Var detached;
  {
    ag::NoGradGuard no_grad;
    detached = ag::Softmax(ag::Var::Constant(raw));
  }
  ASSERT_EQ(detached.node(), nullptr);
  ag::Var w = ag::Var::Param(Tensor::Ones({5}));
  cit::testing::ExpectGradientsMatch(
      [&] { return ag::Sum(ag::Square(ag::Mul(w, detached))); }, {w});
}

TEST(GradMode, GuardsNestAndRestore) {
  EXPECT_TRUE(ag::GradEnabled());
  {
    ag::NoGradGuard outer;
    EXPECT_FALSE(ag::GradEnabled());
    {
      ag::NoGradGuard inner;
      EXPECT_FALSE(ag::GradEnabled());
    }
    EXPECT_FALSE(ag::GradEnabled());
  }
  EXPECT_TRUE(ag::GradEnabled());
}

TEST(GradMode, KillSwitchForcesGradsOnEverywhere) {
  NoGradAllowedScope scope(false);
  ag::NoGradGuard no_grad;
  EXPECT_TRUE(ag::GradEnabled());
  ag::Var a = ag::Var::Param(Tensor::Scalar(3.0f));
  ag::Var y = ag::Square(a);
  ASSERT_NE(y.node(), nullptr);  // graph built despite the guard
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 6.0f);
}

// ---- Buffer arena -----------------------------------------------------------

TEST(Arena, RepeatedGuardedForwardsRecycleBuffers) {
  math::Rng rng(4);
  const Tensor x = Tensor::Uniform({16, 16}, rng, -1, 1);
  // Warm the pool with one guarded pass, then measure reuse on later ones.
  {
    ag::NoGradGuard no_grad;
    (void)ag::Softmax(ag::MatMul(ag::Var::Constant(x),
                                 ag::Var::Constant(x)));
  }
  const int64_t before = math::ArenaReuseCount();
  for (int rep = 0; rep < 3; ++rep) {
    ag::NoGradGuard no_grad;
    (void)ag::Softmax(ag::MatMul(ag::Var::Constant(x),
                                 ag::Var::Constant(x)));
  }
  EXPECT_GT(math::ArenaReuseCount(), before);
}

TEST(Arena, NoRecyclingOutsideGuards) {
  const int64_t before = math::ArenaReuseCount();
  math::Rng rng(5);
  for (int rep = 0; rep < 3; ++rep) {
    Tensor x = Tensor::Uniform({16, 16}, rng, -1, 1);
    ag::Var y = ag::Softmax(ag::Var::Param(x));
    y = ag::Sum(y);
  }
  EXPECT_EQ(math::ArenaReuseCount(), before);
}

}  // namespace
}  // namespace cit
