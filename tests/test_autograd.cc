#include "math/autograd.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "math/rng.h"

namespace cit::ag {
namespace {

using cit::testing::ExpectGradientsMatch;
using math::Rng;
using math::Shape;
using math::Tensor;

Tensor RandTensor(Shape shape, uint64_t seed, float lo = -1.0f,
                  float hi = 1.0f) {
  Rng rng(seed);
  return Tensor::Uniform(std::move(shape), rng, lo, hi);
}

TEST(AutogradBasics, ForwardValuesAndBackwardOnScalar) {
  Var a = Var::Param(Tensor::Scalar(3.0f));
  Var b = Var::Param(Tensor::Scalar(4.0f));
  Var c = Add(Mul(a, b), Square(a));  // 3*4 + 9 = 21
  EXPECT_FLOAT_EQ(c.value().Item(), 21.0f);
  c.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f + 6.0f);  // b + 2a
  EXPECT_FLOAT_EQ(b.grad()[0], 3.0f);
}

TEST(AutogradBasics, GradAccumulatesAcrossMultipleUses) {
  Var a = Var::Param(Tensor::Scalar(2.0f));
  Var out = Add(a, a);  // uses a twice
  out.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
}

TEST(AutogradBasics, DetachBlocksGradientFlow) {
  Var a = Var::Param(Tensor::Scalar(2.0f));
  Var out = Mul(a.Detach(), a);  // d/da should be a.detach() = 2, not 4
  out.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
}

TEST(AutogradBasics, ConstantNodesGetNoGradient) {
  Var a = Var::Constant(Tensor::Scalar(5.0f));
  Var b = Var::Param(Tensor::Scalar(2.0f));
  Var out = Mul(a, b);
  out.Backward();
  EXPECT_FALSE(a.has_grad());
  EXPECT_TRUE(b.has_grad());
}

TEST(AutogradBasics, ZeroGradClearsAccumulation) {
  Var a = Var::Param(Tensor::Scalar(1.0f));
  Var out = MulScalar(a, 3.0f);
  out.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 3.0f);
  a.ZeroGrad();
  EXPECT_FALSE(a.has_grad());
}

// ---- Per-op gradient checks -------------------------------------------------

TEST(GradCheck, AddSameShape) {
  Var a = Var::Param(RandTensor({3, 2}, 1));
  Var b = Var::Param(RandTensor({3, 2}, 2));
  ExpectGradientsMatch([&] { return Sum(Mul(Add(a, b), Add(a, b))); },
                       {a, b});
}

TEST(GradCheck, AddBiasBroadcast) {
  Var a = Var::Param(RandTensor({4, 3}, 3));
  Var bias = Var::Param(RandTensor({3}, 4));
  ExpectGradientsMatch([&] { return Sum(Square(Add(a, bias))); },
                       {a, bias});
}

TEST(GradCheck, AddScalarBroadcast) {
  Var a = Var::Param(RandTensor({5}, 5));
  Var s = Var::Param(Tensor::Scalar(0.7f));
  ExpectGradientsMatch([&] { return Sum(Square(Add(a, s))); }, {a, s});
}

TEST(GradCheck, SubAndNeg) {
  Var a = Var::Param(RandTensor({4}, 6));
  Var b = Var::Param(RandTensor({4}, 7));
  ExpectGradientsMatch([&] { return Sum(Square(Sub(Neg(a), b))); },
                       {a, b});
}

TEST(GradCheck, MulAndDivSameShape) {
  Var a = Var::Param(RandTensor({3, 3}, 8, 0.5f, 1.5f));
  Var b = Var::Param(RandTensor({3, 3}, 9, 0.5f, 1.5f));
  ExpectGradientsMatch([&] { return Sum(Div(Mul(a, b), Add(b, b))); },
                       {a, b});
}

TEST(GradCheck, DivByScalarTensor) {
  Var a = Var::Param(RandTensor({4}, 10, 0.5f, 1.5f));
  Var s = Var::Param(Tensor::Scalar(2.0f));
  ExpectGradientsMatch([&] { return Sum(Div(a, s)); }, {a, s});
}

TEST(GradCheck, MatMul) {
  Var a = Var::Param(RandTensor({3, 4}, 11));
  Var b = Var::Param(RandTensor({4, 2}, 12));
  ExpectGradientsMatch([&] { return Sum(Square(MatMul(a, b))); }, {a, b});
}

TEST(GradCheck, TransposeComposesWithMatMul) {
  Var a = Var::Param(RandTensor({3, 4}, 13));
  ExpectGradientsMatch(
      [&] { return Sum(MatMul(a, Transpose(a))); }, {a});
}

TEST(GradCheck, UnaryOps) {
  Var a = Var::Param(RandTensor({6}, 14, 0.2f, 1.2f));
  ExpectGradientsMatch([&] { return Sum(Exp(a)); }, {a});
  ExpectGradientsMatch([&] { return Sum(Log(a)); }, {a});
  ExpectGradientsMatch([&] { return Sum(Tanh(a)); }, {a});
  ExpectGradientsMatch([&] { return Sum(Sigmoid(a)); }, {a});
  ExpectGradientsMatch([&] { return Sum(Sqrt(a)); }, {a});
  ExpectGradientsMatch([&] { return Sum(Square(a)); }, {a});
}

TEST(GradCheck, ReluSubgradient) {
  // Values away from the kink so finite differences are valid.
  Var a = Var::Param(Tensor({4}, {-0.8f, -0.3f, 0.4f, 0.9f}));
  ExpectGradientsMatch([&] { return Sum(Square(Relu(a))); }, {a});
}

TEST(GradCheck, AbsAwayFromZero) {
  Var a = Var::Param(Tensor({4}, {-0.8f, -0.3f, 0.4f, 0.9f}));
  ExpectGradientsMatch([&] { return Sum(Abs(a)); }, {a});
}

TEST(GradCheck, MinMaxElementwise) {
  Var a = Var::Param(Tensor({3}, {0.1f, 0.9f, -0.5f}));
  Var b = Var::Param(Tensor({3}, {0.6f, 0.2f, -0.1f}));
  ExpectGradientsMatch([&] { return Sum(Min(a, b)); }, {a, b});
  ExpectGradientsMatch([&] { return Sum(Max(a, b)); }, {a, b});
}

TEST(GradCheck, ClampInterior) {
  Var a = Var::Param(Tensor({4}, {-2.0f, -0.2f, 0.3f, 2.5f}));
  // eps small enough that no element crosses the clamp boundary.
  ExpectGradientsMatch([&] { return Sum(Square(Clamp(a, -1.0f, 1.0f))); },
                       {a}, /*eps=*/1e-2f);
}

TEST(GradCheck, SumMeanAxes) {
  Var a = Var::Param(RandTensor({3, 4, 2}, 15));
  ExpectGradientsMatch([&] { return Sum(Square(SumAxis(a, 1))); }, {a});
  ExpectGradientsMatch([&] { return Sum(Square(MeanAxis(a, 0))); }, {a});
  ExpectGradientsMatch([&] { return Mean(Square(a)); }, {a});
}

TEST(GradCheck, ReshapePermute) {
  Var a = Var::Param(RandTensor({2, 3, 4}, 16));
  ExpectGradientsMatch(
      [&] { return Sum(Square(Reshape(a, {4, 6}))); }, {a});
  ExpectGradientsMatch(
      [&] { return Sum(Square(Permute(a, {2, 0, 1}))); }, {a});
}

TEST(GradCheck, ConcatSlice) {
  Var a = Var::Param(RandTensor({2, 3}, 17));
  Var b = Var::Param(RandTensor({2, 2}, 18));
  ExpectGradientsMatch(
      [&] { return Sum(Square(Concat({a, b}, 1))); }, {a, b});
  ExpectGradientsMatch(
      [&] { return Sum(Square(Slice(a, 1, 1, 2))); }, {a});
}

TEST(GradCheck, SoftmaxAndLogSoftmax) {
  Var a = Var::Param(RandTensor({2, 5}, 19));
  Var target = Var::Constant(RandTensor({2, 5}, 20, 0.0f, 1.0f));
  ExpectGradientsMatch(
      [&] { return Sum(Mul(Softmax(a), target)); }, {a});
  ExpectGradientsMatch(
      [&] { return Sum(Mul(LogSoftmax(a), target)); }, {a});
}

TEST(GradCheck, SoftmaxLogSoftmaxComposition) {
  // Negative entropy sum(softmax(a) * log_softmax(a)): the two branches
  // share the input, so backward must accumulate through both softmax
  // Jacobians at once — a composition the per-op checks above never hit.
  Var a = Var::Param(RandTensor({2, 5}, 24));
  ExpectGradientsMatch(
      [&] { return Sum(Mul(Softmax(a), LogSoftmax(a))); }, {a});
}

TEST(LogDomain, PositiveInputsUnaffectedByDomainCheck) {
  // Regression companion to the debug-build domain check: well-formed
  // positive inputs must pass through with exact values and gradients.
  Var a = Var::Param(RandTensor({3, 4}, 25, 0.1f, 3.0f));
  Var y = Log(a);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(y.value()[i], std::log(a.value()[i]));
  }
  ExpectGradientsMatch([&] { return Sum(Log(a)); }, {a});
}

#ifndef NDEBUG
TEST(LogDomainDeathTest, NonPositiveOrNonFiniteInputDiesInDebug) {
  // ag::Log's contract is "caller guarantees positive input"; debug builds
  // promote silent NaN/-inf propagation into an immediate failure at the
  // offending op.
  EXPECT_DEATH(Log(Var::Param(Tensor::Scalar(-1.0f))),
               "finite and positive");
  EXPECT_DEATH(Log(Var::Param(Tensor::Scalar(0.0f))),
               "finite and positive");
  EXPECT_DEATH(
      Log(Var::Param(Tensor::Scalar(
          std::numeric_limits<float>::quiet_NaN()))),
      "finite and positive");
}
#endif

TEST(GradCheck, CausalConv1d) {
  Var x = Var::Param(RandTensor({2, 3, 6}, 21));
  Var w = Var::Param(RandTensor({4, 3, 3}, 22));
  Var b = Var::Param(RandTensor({4}, 23));
  ExpectGradientsMatch(
      [&] { return Sum(Square(CausalConv1d(x, w, b, 1))); }, {x, w, b});
  ExpectGradientsMatch(
      [&] { return Sum(Square(CausalConv1d(x, w, b, 2))); }, {x, w, b});
}

TEST(GradCheck, CausalConv1dDilatedNoBias) {
  // dilation > 1 with the bias leg absent (Var{} sentinel).
  Var x = Var::Param(RandTensor({2, 3, 8}, 31));
  Var w = Var::Param(RandTensor({4, 3, 3}, 32));
  ExpectGradientsMatch(
      [&] { return Sum(Square(CausalConv1d(x, w, Var(), 3))); }, {x, w});
}

TEST(GradCheck, PermuteNonTrivialOrders) {
  Var a = Var::Param(RandTensor({2, 3, 4}, 33));
  ExpectGradientsMatch(
      [&] { return Sum(Square(Permute(a, {1, 2, 0}))); }, {a});
  ExpectGradientsMatch(
      [&] { return Sum(Square(Permute(a, {2, 1, 0}))); }, {a});
}

TEST(Conv1dSemantics, CausalityNoFutureLeak) {
  // Changing a future input must not change past outputs.
  Rng rng(42);
  Tensor x = Tensor::Uniform({1, 1, 8}, rng, -1, 1);
  Tensor w = Tensor::Uniform({1, 1, 3}, rng, -1, 1);
  Var vx = Var::Constant(x);
  Var vw = Var::Constant(w);
  Tensor out1 = CausalConv1d(vx, vw, Var(), 1).value();
  Tensor x2 = x;
  x2.At({0, 0, 7}) += 5.0f;  // perturb the last sample
  Tensor out2 =
      CausalConv1d(Var::Constant(x2), vw, Var(), 1).value();
  for (int64_t t = 0; t < 7; ++t) {
    EXPECT_FLOAT_EQ(out1.At({0, 0, t}), out2.At({0, 0, t})) << t;
  }
  EXPECT_NE(out1.At({0, 0, 7}), out2.At({0, 0, 7}));
}

TEST(Conv1dSemantics, IdentityKernelReproducesInput) {
  // Kernel [0, 0, 1] with dilation 1 means "current sample only".
  Rng rng(1);
  Tensor x = Tensor::Uniform({1, 1, 5}, rng, -1, 1);
  Tensor w({1, 1, 3});
  w.At({0, 0, 2}) = 1.0f;
  Tensor out =
      CausalConv1d(Var::Constant(x), Var::Constant(w), Var(), 1).value();
  EXPECT_TRUE(math::TensorAllClose(out, x, 1e-6f));
}

TEST(SoftmaxSemantics, RowsSumToOne) {
  Var a = Var::Constant(RandTensor({3, 7}, 24, -5.0f, 5.0f));
  Tensor s = Softmax(a).value();
  for (int64_t r = 0; r < 3; ++r) {
    float total = 0.0f;
    for (int64_t c = 0; c < 7; ++c) total += s.At({r, c});
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxSemantics, NumericallyStableForLargeInputs) {
  Var a = Var::Constant(Tensor({1, 3}, {1000.0f, 1001.0f, 999.0f}));
  Tensor s = Softmax(a).value();
  EXPECT_TRUE(std::isfinite(s[0]));
  EXPECT_GT(s.At({0, 1}), s.At({0, 0}));
}

TEST(GradCheck, WholeSmallNetwork) {
  // Two-layer tanh MLP end-to-end.
  Rng rng(77);
  Var w1 = Var::Param(Tensor::Uniform({4, 8}, rng, -0.5f, 0.5f));
  Var b1 = Var::Param(Tensor::Zeros({8}));
  Var w2 = Var::Param(Tensor::Uniform({8, 1}, rng, -0.5f, 0.5f));
  Var x = Var::Constant(Tensor::Uniform({2, 4}, rng, -1, 1));
  ExpectGradientsMatch(
      [&] {
        return Sum(MatMul(Tanh(Add(MatMul(x, w1), b1)), w2));
      },
      {w1, b1, w2});
}

}  // namespace
}  // namespace cit::ag
