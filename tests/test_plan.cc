// Compiled-forward (trace-and-replay) tests. The contract under test:
// plan::CompiledFn is purely a performance mode. Every weight an agent
// decides must be bitwise identical whether plans replay (default) or the
// plan::SetCompileAllowed kill switch forces the interpreted path (the
// same switch CIT_COMPILE=0 flips) — at any thread count, and across
// parameter mutations (training steps, checkpoint reloads), which must
// invalidate cached plans rather than replay stale ones. Plus structural
// tests for the shape-keyed LRU cache, elementwise-chain fusion, and
// coexistence with taped training.
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/config.h"
#include "core/trader.h"
#include "env/backtest.h"
#include "market/simulator.h"
#include "math/autograd.h"
#include "math/plan.h"
#include "math/rng.h"
#include "math/tensor.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "obs/telemetry.h"
#include "rl/a2c.h"
#include "rl/ddpg.h"
#include "rl/deeptrader.h"
#include "rl/eiie.h"
#include "rl/ppo.h"
#include "rl/sarl.h"

namespace cit {
namespace {

using math::Tensor;

// Restores the process-wide kill switch no matter how a test exits, so a
// failing assertion cannot leak compile-off mode into later tests.
class CompileAllowedScope {
 public:
  explicit CompileAllowedScope(bool allowed)
      : prev_(plan::CompileAllowed()) {
    plan::SetCompileAllowed(allowed);
  }
  ~CompileAllowedScope() { plan::SetCompileAllowed(prev_); }

 private:
  bool prev_;
};

// Pins the kernel thread count for a test body (clamped by the pool's
// max_threads on small hosts; the determinism contract makes the clamp
// observationally irrelevant).
class ThreadCountScope {
 public:
  explicit ThreadCountScope(int n)
      : prev_(ThreadPool::Global().num_threads()) {
    ThreadPool::Global().SetNumThreads(n);
  }
  ~ThreadCountScope() { ThreadPool::Global().SetNumThreads(prev_); }

 private:
  int prev_;
};

market::PricePanel SmallPanel(uint64_t seed = 7) {
  market::MarketConfig cfg;
  cfg.num_assets = 4;
  cfg.train_days = 120;
  cfg.test_days = 30;
  cfg.seed = seed;
  return market::SimulateMarket(cfg);
}

rl::RlTrainConfig TinyRlConfig() {
  rl::RlTrainConfig cfg;
  cfg.window = 8;
  cfg.train_steps = 4;
  cfg.rollout_len = 4;
  cfg.hidden = 8;
  return cfg;
}

core::CrossInsightConfig TinyCitConfig() {
  core::CrossInsightConfig cfg;
  cfg.num_policies = 2;
  cfg.window = 8;
  cfg.feature_dim = 4;
  cfg.tcn_blocks = 1;
  cfg.head_hidden = 8;
  cfg.critic_hidden = 8;
  cfg.train_steps = 4;
  cfg.rollout_len = 4;
  cfg.rollouts_per_update = 2;
  return cfg;
}

// Runs `make_agent` through train + test-split backtest twice — once with
// compiled replay live, once with the kill switch forcing the interpreted
// path — and asserts every observable number is bitwise identical. Repeats
// at 1 and 4 kernel threads (replayed steps call the same deterministic
// kernels as the interpreted path, so the thread count must not matter).
template <typename MakeAgent>
void ExpectCompiledIsPureSpeed(const market::PricePanel& panel,
                               MakeAgent make_agent) {
  for (int threads : {1, 4}) {
    ThreadCountScope pool(threads);
    std::vector<double> curve_on, curve_off;
    env::BacktestResult res_on, res_off;
    {
      CompileAllowedScope scope(true);
      auto agent = make_agent();
      curve_on = agent->Train(panel, /*curve_points=*/4);
      res_on = env::RunTestBacktest(*agent, panel, /*window=*/8);
    }
    {
      CompileAllowedScope scope(false);
      auto agent = make_agent();
      curve_off = agent->Train(panel, /*curve_points=*/4);
      res_off = env::RunTestBacktest(*agent, panel, /*window=*/8);
    }
    ASSERT_EQ(curve_on.size(), curve_off.size()) << "threads " << threads;
    for (size_t i = 0; i < curve_on.size(); ++i) {
      EXPECT_EQ(curve_on[i], curve_off[i])
          << "curve point " << i << ", threads " << threads;
    }
    ASSERT_EQ(res_on.wealth.size(), res_off.wealth.size())
        << "threads " << threads;
    for (size_t i = 0; i < res_on.wealth.size(); ++i) {
      EXPECT_EQ(res_on.wealth[i], res_off.wealth[i])
          << "wealth step " << i << ", threads " << threads;
    }
    ASSERT_EQ(res_on.daily_returns.size(), res_off.daily_returns.size());
    for (size_t i = 0; i < res_on.daily_returns.size(); ++i) {
      EXPECT_EQ(res_on.daily_returns[i], res_off.daily_returns[i])
          << "return step " << i << ", threads " << threads;
    }
    EXPECT_EQ(res_on.turnover, res_off.turnover) << "threads " << threads;
    EXPECT_EQ(res_on.repaired_steps, res_off.repaired_steps);
  }
}

// ---- Bitwise identity, per agent -------------------------------------------

TEST(CompiledIdentity, CrossInsightTrader) {
  auto panel = SmallPanel();
  auto cfg = TinyCitConfig();
  ExpectCompiledIsPureSpeed(panel, [&] {
    return std::make_unique<core::CrossInsightTrader>(panel.num_assets(),
                                                      cfg);
  });
}

TEST(CompiledIdentity, A2c) {
  auto panel = SmallPanel();
  ExpectCompiledIsPureSpeed(panel, [&] {
    return std::make_unique<rl::A2cAgent>(panel.num_assets(),
                                          TinyRlConfig());
  });
}

TEST(CompiledIdentity, Sarl) {
  auto panel = SmallPanel();
  ExpectCompiledIsPureSpeed(panel, [&] {
    return std::make_unique<rl::SarlAgent>(panel.num_assets(),
                                           TinyRlConfig());
  });
}

TEST(CompiledIdentity, Ppo) {
  auto panel = SmallPanel();
  rl::PpoAgent::PpoConfig cfg;
  static_cast<rl::RlTrainConfig&>(cfg) = TinyRlConfig();
  cfg.epochs = 2;
  ExpectCompiledIsPureSpeed(panel, [&] {
    return std::make_unique<rl::PpoAgent>(panel.num_assets(), cfg);
  });
}

TEST(CompiledIdentity, Ddpg) {
  auto panel = SmallPanel();
  rl::DdpgAgent::DdpgConfig cfg;
  static_cast<rl::RlTrainConfig&>(cfg) = TinyRlConfig();
  cfg.train_steps = 8;
  cfg.warmup_steps = 8;
  cfg.batch_size = 4;
  ExpectCompiledIsPureSpeed(panel, [&] {
    return std::make_unique<rl::DdpgAgent>(panel.num_assets(), cfg);
  });
}

TEST(CompiledIdentity, Eiie) {
  auto panel = SmallPanel();
  rl::EiieAgent::EiieConfig cfg;
  cfg.window = 8;
  cfg.train_steps = 4;
  cfg.segment_len = 4;
  cfg.conv_channels = 4;
  ExpectCompiledIsPureSpeed(panel, [&] {
    return std::make_unique<rl::EiieAgent>(panel.num_assets(), cfg);
  });
}

TEST(CompiledIdentity, DeepTrader) {
  auto panel = SmallPanel();
  rl::DeepTraderAgent::DeepTraderConfig cfg;
  cfg.window = 8;
  cfg.train_steps = 4;
  cfg.segment_len = 4;
  cfg.conv_channels = 4;
  cfg.hidden = 8;
  ExpectCompiledIsPureSpeed(panel, [&] {
    return std::make_unique<rl::DeepTraderAgent>(panel.num_assets(), cfg);
  });
}

// The compiled path must actually replay during a backtest — otherwise the
// identity tests above would pass vacuously via the interpreted fallback.
TEST(CompiledIdentity, BacktestActuallyReplays) {
  auto panel = SmallPanel();
  CompileAllowedScope scope(true);
  obs::SetEnabled(true);
  obs::Registry::Global().ResetAll();
  core::CrossInsightTrader trader(panel.num_assets(), TinyCitConfig());
  trader.Train(panel, /*curve_points=*/4);
  (void)env::RunTestBacktest(trader, panel, /*window=*/8);
  obs::SetEnabled(false);
  const uint64_t hits =
      obs::Registry::Global().GetCounter("plan.hits").Total();
  const uint64_t misses =
      obs::Registry::Global().GetCounter("plan.misses").Total();
  const uint64_t poisoned =
      obs::Registry::Global().GetCounter("plan.poisoned").Total();
  EXPECT_GT(misses, 0u);   // each policy's first day records
  EXPECT_GT(hits, misses); // every later day replays
  EXPECT_EQ(poisoned, 0u); // every op in the forward is replayable
}

// ---- Parameter-version staleness -------------------------------------------

// A training step between two DecideWeights calls mutates every parameter;
// a stale plan replaying the pre-step weights would diverge from the
// interpreted twin on the second decide.
TEST(CompiledStaleness, TrainStepBetweenDecides) {
  auto panel = SmallPanel();
  rl::PpoAgent::PpoConfig cfg;
  static_cast<rl::RlTrainConfig&>(cfg) = TinyRlConfig();
  cfg.epochs = 2;
  const int64_t day = panel.train_end() + 2;
  auto run = [&](bool compiled) {
    CompileAllowedScope scope(compiled);
    rl::PpoAgent agent(panel.num_assets(), cfg);
    agent.Train(panel, /*curve_points=*/4);
    std::vector<std::vector<double>> decided;
    decided.push_back(agent.DecideWeights(panel, day));      // records
    decided.push_back(agent.DecideWeights(panel, day + 1));  // replays
    agent.Train(panel, /*curve_points=*/4);  // mutates every parameter
    decided.push_back(agent.DecideWeights(panel, day));      // must re-record
    decided.push_back(agent.DecideWeights(panel, day + 1));
    return decided;
  };
  const auto on = run(true);
  const auto off = run(false);
  ASSERT_EQ(on.size(), off.size());
  for (size_t i = 0; i < on.size(); ++i) {
    ASSERT_EQ(on[i].size(), off[i].size());
    for (size_t j = 0; j < on[i].size(); ++j) {
      EXPECT_EQ(on[i][j], off[i][j]) << "decide " << i << " weight " << j;
    }
  }
}

// Checkpoint hot-swap: restoring older weights over a live agent is a
// parameter mutation like any other — plans recorded after training must
// not replay against the restored parameters.
TEST(CompiledStaleness, CheckpointReloadBetweenDecides) {
  auto panel = SmallPanel();
  rl::PpoAgent::PpoConfig cfg;
  static_cast<rl::RlTrainConfig&>(cfg) = TinyRlConfig();
  cfg.epochs = 2;
  const int64_t day = panel.train_end() + 2;
  auto run = [&](bool compiled, const std::string& ckpt) {
    CompileAllowedScope scope(compiled);
    rl::PpoAgent agent(panel.num_assets(), cfg);
    agent.Train(panel, /*curve_points=*/4);
    std::vector<std::vector<double>> decided;
    decided.push_back(agent.DecideWeights(panel, day));  // plan v1 records
    EXPECT_TRUE(agent.SaveCheckpoint(ckpt).ok()) << ckpt;
    agent.Train(panel, /*curve_points=*/4);
    decided.push_back(agent.DecideWeights(panel, day));  // plan v2
    EXPECT_TRUE(agent.LoadCheckpoint(ckpt).ok()) << ckpt;
    decided.push_back(agent.DecideWeights(panel, day));  // back on v1 params
    return decided;
  };
  const std::string dir = ::testing::TempDir();
  const auto on = run(true, dir + "/plan_ckpt_on.bin");
  const auto off = run(false, dir + "/plan_ckpt_off.bin");
  ASSERT_EQ(on.size(), off.size());
  for (size_t i = 0; i < on.size(); ++i) {
    ASSERT_EQ(on[i].size(), off[i].size());
    for (size_t j = 0; j < on[i].size(); ++j) {
      EXPECT_EQ(on[i][j], off[i][j]) << "decide " << i << " weight " << j;
    }
  }
}

// Structural counterpart of the two tests above: mutating a bound
// parameter through Var::mutable_value invalidates exactly once, then the
// re-recorded plan replays again.
TEST(CompiledStaleness, MutationInvalidatesOnceThenReplays) {
  ag::Var w = ag::Var::Param(Tensor::Full({8}, 0.5f));
  Tensor x = Tensor::Full({8}, 2.0f);
  plan::CompiledFn fn;
  auto forward = [&] {
    return ag::Softmax(ag::Mul(ag::Var::Constant(x), w));
  };
  ag::NoGradGuard no_grad;
  (void)fn.Run({&x}, forward);  // miss: records
  (void)fn.Run({&x}, forward);  // hit: replays
  EXPECT_EQ(fn.stats().misses, 1);
  EXPECT_EQ(fn.stats().hits, 1);

  w.mutable_value()[0] = 1.25f;  // the mutation funnel optimizers go through
  Tensor after_mutation = fn.Run({&x}, forward);
  EXPECT_EQ(fn.stats().invalidations, 1);
  EXPECT_EQ(fn.stats().misses, 2);  // re-recorded
  Tensor interpreted = forward().value();
  for (int64_t i = 0; i < interpreted.numel(); ++i) {
    EXPECT_EQ(after_mutation[i], interpreted[i]) << "element " << i;
  }
  (void)fn.Run({&x}, forward);
  EXPECT_EQ(fn.stats().hits, 2);  // replays once more, no further churn
}

// ---- Shape-keyed cache -------------------------------------------------------

TEST(CompiledCache, DistinctShapesGetDistinctPlans) {
  plan::CompiledFn fn;
  ag::NoGradGuard no_grad;
  for (int64_t n : {4, 8, 4, 8}) {
    Tensor x = Tensor::Full({n}, 1.0f / static_cast<float>(n));
    Tensor y = fn.Run(
        {&x}, [&] { return ag::Softmax(ag::Var::Constant(x)); });
    ASSERT_EQ(y.numel(), n);
  }
  EXPECT_EQ(fn.stats().misses, 2);  // one record per distinct shape
  EXPECT_EQ(fn.stats().hits, 2);    // both revisits replay
  EXPECT_EQ(fn.stats().entries, 2);
}

TEST(CompiledCache, LruEvictionBeyondCapacity) {
  plan::CompiledFn fn;
  ag::NoGradGuard no_grad;
  auto run_len = [&](int64_t n) {
    Tensor x = Tensor::Full({n}, 1.0f);
    (void)fn.Run({&x},
                 [&] { return ag::Relu(ag::Var::Constant(x)); });
  };
  const int64_t total = plan::CompiledFn::kMaxEntries + 3;
  for (int64_t n = 1; n <= total; ++n) run_len(n);
  EXPECT_EQ(fn.stats().misses, total);
  EXPECT_EQ(fn.stats().evictions, 3);
  EXPECT_EQ(fn.stats().entries, plan::CompiledFn::kMaxEntries);
  // The oldest shapes were evicted; re-running one re-records instead of
  // replaying a dropped plan.
  run_len(1);
  EXPECT_EQ(fn.stats().misses, total + 1);
}

// misses splits by cause: a never-seen shape is a cold compile, a
// re-record of an LRU-dropped key is an evicted miss — the signal that the
// shape working set (e.g. a serving mix of batch sizes) exceeds capacity.
TEST(CompiledCache, MissSplitDistinguishesColdFromEvicted) {
  plan::CompiledFn fn;
  ag::NoGradGuard no_grad;
  auto run_len = [&](int64_t n) {
    Tensor x = Tensor::Full({n}, 1.0f);
    (void)fn.Run({&x},
                 [&] { return ag::Relu(ag::Var::Constant(x)); });
  };
  const int64_t total = plan::CompiledFn::kMaxEntries + 3;
  for (int64_t n = 1; n <= total; ++n) run_len(n);
  // Every shape so far was new.
  EXPECT_EQ(fn.stats().misses_cold, total);
  EXPECT_EQ(fn.stats().misses_evicted, 0);
  // Shapes 1..3 were evicted (LRU); re-running them re-records as evicted
  // misses, then thrashes three more entries out — re-running those is
  // again evicted, never cold.
  for (int64_t n = 1; n <= 3; ++n) run_len(n);
  EXPECT_EQ(fn.stats().misses_cold, total);
  EXPECT_EQ(fn.stats().misses_evicted, 3);
  EXPECT_EQ(fn.stats().misses, total + 3);
  // A genuinely new shape still counts cold.
  run_len(total + 1);
  EXPECT_EQ(fn.stats().misses_cold, total + 1);
  EXPECT_EQ(fn.stats().misses_evicted, 3);
  // The split never includes invalidation re-records (the cold + evicted
  // sum accounts for every miss in this parameter-free run).
  EXPECT_EQ(fn.stats().misses,
            fn.stats().misses_cold + fn.stats().misses_evicted);
}

// SetCapacity widens the LRU so a shape working set that would thrash the
// default 8 entries (the serving batcher's live batch sizes) replays.
TEST(CompiledCache, WidenedCapacityStopsThrash) {
  plan::CompiledFn fn;
  fn.SetCapacity(32);
  ag::NoGradGuard no_grad;
  auto run_len = [&](int64_t n) {
    Tensor x = Tensor::Full({n}, 1.0f);
    (void)fn.Run({&x},
                 [&] { return ag::Relu(ag::Var::Constant(x)); });
  };
  const int64_t shapes = plan::CompiledFn::kMaxEntries + 3;  // > default cap
  for (int round = 0; round < 3; ++round) {
    for (int64_t n = 1; n <= shapes; ++n) run_len(n);
  }
  EXPECT_EQ(fn.stats().misses, shapes);  // one record per shape, ever
  EXPECT_EQ(fn.stats().misses_cold, shapes);
  EXPECT_EQ(fn.stats().misses_evicted, 0);
  EXPECT_EQ(fn.stats().evictions, 0);
  EXPECT_EQ(fn.stats().hits, 2 * shapes);
  EXPECT_EQ(fn.stats().entries, shapes);
}

// ---- Elementwise fusion ------------------------------------------------------

TEST(CompiledFusion, FusedChainMatchesInterpreted) {
  math::Rng rng(11);
  Tensor x = Tensor::Uniform({64}, rng, -2, 2);
  // Four single-use elementwise links collapse into the producer's sweep.
  auto forward = [&] {
    return ag::Sigmoid(
        ag::Exp(ag::MulScalar(ag::Square(ag::Var::Constant(x)), -0.5f)));
  };
  plan::CompiledFn fn;
  ag::NoGradGuard no_grad;
  (void)fn.Run({&x}, forward);
  EXPECT_GT(fn.stats().fused_ops, 0);
  Tensor replayed = fn.Run({&x}, forward);
  EXPECT_EQ(fn.stats().hits, 1);
  Tensor interpreted = forward().value();
  for (int64_t i = 0; i < interpreted.numel(); ++i) {
    EXPECT_EQ(replayed[i], interpreted[i]) << "element " << i;
  }
}

// A value consumed twice must NOT be folded into its consumer: the chain
// head stays materialized so the second consumer can read it.
TEST(CompiledFusion, SharedIntermediateStaysMaterialized) {
  math::Rng rng(12);
  Tensor x = Tensor::Uniform({32}, rng, -1, 1);
  auto forward = [&] {
    ag::Var shared = ag::Tanh(ag::Var::Constant(x));  // two consumers
    return ag::Add(ag::Exp(shared), ag::Square(shared));
  };
  plan::CompiledFn fn;
  ag::NoGradGuard no_grad;
  (void)fn.Run({&x}, forward);
  Tensor replayed = fn.Run({&x}, forward);
  Tensor interpreted = forward().value();
  for (int64_t i = 0; i < interpreted.numel(); ++i) {
    EXPECT_EQ(replayed[i], interpreted[i]) << "element " << i;
  }
}

// ---- Coexistence with taped training ----------------------------------------

// Compiled inference and taped training interleave on one parameter set:
// replays never see stale weights, and the tape built between replays
// produces the same gradients as an uncompiled process.
TEST(CompiledMixed, InferenceReplaysBesideTapedTraining) {
  math::Rng rng(13);
  nn::Mlp net({6, 8, 3}, rng);
  nn::Adam opt(nn::ParamVars(net), 0.05f, 0.9f, 0.999f, 1e-8f, 0.0f);
  Tensor x = Tensor::Uniform({6}, rng, -1, 1);
  plan::CompiledFn fn;
  auto infer = [&] {
    ag::NoGradGuard no_grad;
    return fn.Run({&x},
                  [&] { return net.Forward(ag::Var::Constant(x)); });
  };
  auto train_step = [&] {
    opt.ZeroGrad();
    ag::Var loss = ag::Sum(ag::Square(net.Forward(ag::Var::Constant(x))));
    loss.Backward();
    opt.Step();
  };
  std::vector<Tensor> compiled;
  compiled.push_back(infer());  // records
  compiled.push_back(infer());  // replays
  train_step();
  compiled.push_back(infer());  // invalidated -> re-records
  compiled.push_back(infer());  // replays the new plan
  EXPECT_EQ(fn.stats().invalidations, 1);
  EXPECT_EQ(fn.stats().misses, 2);
  EXPECT_EQ(fn.stats().hits, 2);

  // Interpreted twin: fresh net with the same seed, same sequence.
  math::Rng rng2(13);
  nn::Mlp net2({6, 8, 3}, rng2);
  nn::Adam opt2(nn::ParamVars(net2), 0.05f, 0.9f, 0.999f, 1e-8f, 0.0f);
  Tensor x2 = Tensor::Uniform({6}, rng2, -1, 1);
  auto infer2 = [&] {
    ag::NoGradGuard no_grad;
    return net2.Forward(ag::Var::Constant(x2)).value();
  };
  auto train_step2 = [&] {
    opt2.ZeroGrad();
    ag::Var loss =
        ag::Sum(ag::Square(net2.Forward(ag::Var::Constant(x2))));
    loss.Backward();
    opt2.Step();
  };
  std::vector<Tensor> interpreted;
  interpreted.push_back(infer2());
  interpreted.push_back(infer2());
  train_step2();
  interpreted.push_back(infer2());
  interpreted.push_back(infer2());
  ASSERT_EQ(compiled.size(), interpreted.size());
  for (size_t c = 0; c < compiled.size(); ++c) {
    ASSERT_EQ(compiled[c].numel(), interpreted[c].numel());
    for (int64_t i = 0; i < compiled[c].numel(); ++i) {
      EXPECT_EQ(compiled[c][i], interpreted[c][i])
          << "call " << c << " element " << i;
    }
  }
}

// Recording is grad-mode-agnostic: a plan recorded while the tape is live
// (no NoGradGuard) replays the same values, and the recording pass's own
// graph still backpropagates.
TEST(CompiledMixed, RecordsUnderGradMode) {
  ag::Var w = ag::Var::Param(Tensor::Full({4}, 2.0f));
  Tensor x = Tensor::Full({4}, 3.0f);
  plan::CompiledFn fn;
  Tensor first =
      fn.Run({&x}, [&] { return ag::Mul(ag::Var::Constant(x), w); });
  EXPECT_EQ(fn.stats().misses, 1);
  Tensor second =
      fn.Run({&x}, [&] { return ag::Mul(ag::Var::Constant(x), w); });
  EXPECT_EQ(fn.stats().hits, 1);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(first[i], 6.0f);
    EXPECT_EQ(second[i], 6.0f);
  }
  // The tape from an uncompiled forward still differentiates w.
  ag::Var loss = ag::Sum(ag::Mul(ag::Var::Constant(x), w));
  loss.Backward();
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(w.grad()[i], 3.0f);
}

// ---- Kill switch -------------------------------------------------------------

TEST(CompiledKillSwitch, DisallowedRunsInterpreted) {
  CompileAllowedScope scope(false);
  Tensor x = Tensor::Full({8}, 1.0f);
  plan::CompiledFn fn;
  ag::NoGradGuard no_grad;
  for (int rep = 0; rep < 3; ++rep) {
    Tensor y =
        fn.Run({&x}, [&] { return ag::Softmax(ag::Var::Constant(x)); });
    for (int64_t i = 0; i < y.numel(); ++i) {
      EXPECT_EQ(y[i], 0.125f) << "element " << i;
    }
  }
  EXPECT_EQ(fn.stats().fallbacks, 3);
  EXPECT_EQ(fn.stats().misses, 0);
  EXPECT_EQ(fn.stats().hits, 0);
  EXPECT_EQ(fn.stats().entries, 0);
}

TEST(CompiledKillSwitch, ReenablingCompilesAgain) {
  Tensor x = Tensor::Full({8}, 1.0f);
  plan::CompiledFn fn;
  ag::NoGradGuard no_grad;
  {
    CompileAllowedScope off(false);
    (void)fn.Run({&x}, [&] { return ag::Relu(ag::Var::Constant(x)); });
    EXPECT_EQ(fn.stats().fallbacks, 1);
  }
  CompileAllowedScope on(true);
  (void)fn.Run({&x}, [&] { return ag::Relu(ag::Var::Constant(x)); });
  (void)fn.Run({&x}, [&] { return ag::Relu(ag::Var::Constant(x)); });
  EXPECT_EQ(fn.stats().misses, 1);
  EXPECT_EQ(fn.stats().hits, 1);
}

// ---- Arena telemetry (obs wiring) -------------------------------------------

TEST(ArenaStats, GuardedForwardsReportHitsAndBytes) {
  obs::SetEnabled(true);
  obs::Registry::Global().ResetAll();
  math::Rng rng(4);
  const Tensor x = Tensor::Uniform({16, 16}, rng, -1, 1);
  for (int rep = 0; rep < 3; ++rep) {
    ag::NoGradGuard no_grad;
    (void)ag::Softmax(
        ag::MatMul(ag::Var::Constant(x), ag::Var::Constant(x)));
  }
  obs::SetEnabled(false);
  const uint64_t hits =
      obs::Registry::Global().GetCounter("arena.hits").Total();
  const uint64_t misses =
      obs::Registry::Global().GetCounter("arena.misses").Total();
  const uint64_t reused =
      obs::Registry::Global().GetCounter("arena.reused_bytes").Total();
  const uint64_t fresh =
      obs::Registry::Global().GetCounter("arena.fresh_bytes").Total();
  EXPECT_GT(misses, 0u);  // first pass allocates fresh
  EXPECT_GT(hits, 0u);    // later passes recycle
  EXPECT_GT(reused, 0u);
  EXPECT_GT(fresh, 0u);
  // The same events are visible without telemetry via the thread-local
  // accessor (always on, used by bench output).
  const math::ArenaStats now = math::ArenaStatsNow();
  EXPECT_GE(now.hits, static_cast<int64_t>(hits));
  EXPECT_GE(now.misses, static_cast<int64_t>(misses));
  EXPECT_GE(now.reused_bytes, static_cast<int64_t>(reused));
  EXPECT_GE(now.fresh_bytes, static_cast<int64_t>(fresh));
}

// ---- Single-owner enforcement ------------------------------------------------

// The contract: a CompiledFn belongs to the first thread that runs it on
// the compiled path (plans and stats are not synchronized), and Clear()
// releases the pin so a new thread may adopt it — the handoff the serving
// daemon's replica-per-worker design relies on.

TEST(PlanOwner, SameThreadReuseIsFineAndClearReleasesThePin) {
  plan::CompiledFn fn;
  Tensor x = Tensor::Full({8}, 1.0f);
  auto forward = [&] { return ag::Relu(ag::Var::Constant(x)); };
  {
    ag::NoGradGuard no_grad;
    (void)fn.Run({&x}, forward);
    (void)fn.Run({&x}, forward);  // same thread: replay, no complaint
  }
  EXPECT_EQ(fn.stats().hits, 1);
  fn.Clear();
  // After Clear() a different thread may adopt the (now empty) cache.
  std::thread adopter([&] {
    ag::NoGradGuard no_grad;
    (void)fn.Run({&x}, forward);
    (void)fn.Run({&x}, forward);
  });
  adopter.join();
  // Clear() dropped the plans (the adopter re-recorded) but kept the
  // lifetime stats: one replay before the handoff, one after.
  EXPECT_EQ(fn.stats().hits, 2);
  EXPECT_EQ(fn.stats().misses, 2);
}

TEST(PlanOwnerDeathTest, CrossThreadUseAbortsInDebugBuilds) {
#ifdef NDEBUG
  GTEST_SKIP() << "single-owner enforcement is compiled out under NDEBUG";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  plan::CompiledFn fn;
  Tensor x = Tensor::Full({8}, 1.0f);
  auto forward = [&] { return ag::Relu(ag::Var::Constant(x)); };
  {
    ag::NoGradGuard no_grad;
    (void)fn.Run({&x}, forward);  // pins fn to this thread
  }
  EXPECT_DEATH(
      {
        std::thread second([&] {
          ag::NoGradGuard no_grad;
          (void)fn.Run({&x}, forward);
        });
        second.join();
      },
      "second thread");
#endif
}

}  // namespace
}  // namespace cit
