// Scenario transform semantics + the expected-ordering suite: each stress
// preset must hurt exactly the strategy class it is designed to hurt, at
// fixed seeds (DESIGN.md §11).
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "env/backtest.h"
#include "market/scenario.h"
#include "market/simulator.h"
#include "market/source.h"
#include "olps/strategies.h"

namespace cit::market {
namespace {

MarketConfig ScenarioMarket(uint64_t seed = 11) {
  MarketConfig cfg;
  cfg.name = "scenario-test";
  cfg.num_assets = 6;
  cfg.train_days = 200;
  cfg.test_days = 100;
  cfg.seed = seed;
  return cfg;
}

// Decorates `base` with a parsed stack; aborts the test on parse errors.
std::unique_ptr<ScenarioSource> MakeStack(PanelSource* base,
                                          const std::string& text) {
  auto parsed = ParseScenarioStack(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  auto made = ScenarioSource::Make(base, std::move(parsed).value());
  EXPECT_TRUE(made.ok()) << made.status().message();
  return std::move(made).value();
}

// ---- Parsing / registry ----------------------------------------------------

TEST(Scenario, ParseFormatsRoundTrip) {
  auto parsed = ParseScenarioStack(
      "flash_crash:depth=0.4,ramp_days=3|halt|regime_flip:day=220");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const auto stack = std::move(parsed).value();
  ASSERT_EQ(stack.size(), 3u);
  EXPECT_EQ(stack[0].name, "flash_crash");
  EXPECT_EQ(stack[0].params.at("depth"), 0.4);
  EXPECT_EQ(stack[1].name, "halt");
  EXPECT_TRUE(stack[1].params.empty());
  EXPECT_EQ(FormatScenarioStack(stack),
            "flash_crash:depth=0.4,ramp_days=3|halt|regime_flip:day=220");
  // Empty text = empty stack, not an error.
  auto empty = ParseScenarioStack("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(Scenario, ParseAndFactoryRejectBadInput) {
  EXPECT_FALSE(ParseScenarioStack("flash_crash:depth").ok());
  EXPECT_FALSE(ParseScenarioStack("flash_crash:depth=abc").ok());
  EXPECT_FALSE(ParseScenarioStack("|flash_crash").ok());
  ScenarioSpec unknown{"no_such_preset", {}};
  EXPECT_FALSE(MakeScenarioTransform(unknown).ok());
  ScenarioSpec typo{"flash_crash", {{"dpeth", 0.4}}};
  EXPECT_FALSE(MakeScenarioTransform(typo).ok());  // unknown parameter
  ScenarioSpec bad{"flash_crash", {{"depth", 1.5}}};
  EXPECT_FALSE(MakeScenarioTransform(bad).ok());  // out of range
  const auto names = RegisteredScenarioNames();
  EXPECT_EQ(names.size(), 5u);
}

// ---- Transform semantics ---------------------------------------------------

TEST(Scenario, FlashCrashScalesAffectedAssetsOnly) {
  const PricePanel panel = SimulateMarket(ScenarioMarket());
  InMemorySource base(&panel);
  // Permanent 30% crash on half the assets, instant (1-day ramp), at an
  // absolute day.
  auto source = MakeStack(
      &base, "flash_crash:day=210,depth=0.3,assets_frac=0.5");
  PanelView view(source.get());
  const int64_t affected = 3;  // round(0.5 * 6)
  for (int64_t t = 0; t < panel.num_days(); ++t) {
    for (int64_t i = 0; i < panel.num_assets(); ++i) {
      const double expect = (t >= 210 && i < affected)
                                ? panel.Close(t, i) * 0.7
                                : panel.Close(t, i);
      ASSERT_DOUBLE_EQ(view.Close(t, i), expect) << "day " << t;
    }
  }
}

TEST(Scenario, FlashCrashRecoveryReturnsToInputPath) {
  const PricePanel panel = SimulateMarket(ScenarioMarket());
  InMemorySource base(&panel);
  auto source = MakeStack(
      &base,
      "flash_crash:day=210,depth=0.3,ramp_days=2,recover_days=5,"
      "assets_frac=0.5");
  PanelView view(source.get());
  // Mid-ramp: half depth on day 210, full depth on day 211.
  EXPECT_DOUBLE_EQ(view.Close(210, 0), panel.Close(210, 0) * (1.0 - 0.15));
  EXPECT_DOUBLE_EQ(view.Close(211, 0), panel.Close(211, 0) * 0.7);
  // Fully recovered 5 days past the bottom, and ever after.
  EXPECT_EQ(view.Close(216, 0), panel.Close(216, 0));
  EXPECT_EQ(view.Close(260, 0), panel.Close(260, 0));
}

TEST(Scenario, CorrelationBreakdownFullCompressEqualizesCumReturns) {
  const PricePanel panel = SimulateMarket(ScenarioMarket());
  InMemorySource base(&panel);
  auto source =
      MakeStack(&base, "correlation_breakdown:day=200,compress=1");
  PanelView view(source.get());
  for (int64_t t = 201; t < panel.num_days(); t += 13) {
    const double r0 = view.Close(t, 0) / view.Close(200, 0);
    for (int64_t i = 1; i < panel.num_assets(); ++i) {
      const double ri = view.Close(t, i) / view.Close(200, i);
      EXPECT_NEAR(ri / r0, 1.0, 1e-9) << "day " << t << " asset " << i;
    }
  }
}

TEST(Scenario, HaltFreezesQuotesAndRelativesStayExactlyOne) {
  const PricePanel panel = SimulateMarket(ScenarioMarket());
  InMemorySource base(&panel);
  auto source = MakeStack(&base, "halt:day=210,length=20,assets=2");
  PanelView view(source.get());
  for (int64_t t = 210; t < 230; ++t) {
    for (int64_t i = 0; i < 2; ++i) {
      EXPECT_EQ(view.Close(t, i), panel.Close(209, i));
      EXPECT_EQ(view.PriceRelative(t, i), 1.0);
    }
    EXPECT_EQ(view.Close(t, 3), panel.Close(t, 3));  // others untouched
  }
  // Un-halts afterwards; the re-opening jump is a normal finite relative.
  EXPECT_EQ(view.Close(230, 0), panel.Close(230, 0));
  EXPECT_TRUE(std::isfinite(view.PriceRelative(230, 0)));
}

TEST(Scenario, ZeroedHaltNeverEmitsInfOrNanThroughTheEnv) {
  const PricePanel panel = SimulateMarket(ScenarioMarket());
  InMemorySource base(&panel);
  // Zeroed quotes (the pathological feed) plus delisting to the end.
  auto source =
      MakeStack(&base, "halt:day=220,length=0,assets=2,zero=1");
  PanelView view(source.get());
  for (int64_t t = 219; t < panel.num_days(); ++t) {
    for (int64_t i = 0; i < panel.num_assets(); ++i) {
      EXPECT_TRUE(std::isfinite(view.PriceRelative(t, i)));
    }
  }
  olps::Crp agent;
  const auto result = env::RunTestBacktest(agent, view, 16);
  for (double w : result.wealth) {
    ASSERT_TRUE(std::isfinite(w));
    ASSERT_GT(w, 0.0);
  }
}

TEST(Scenario, RegimeFlipReflectsAroundPivot) {
  const PricePanel panel = SimulateMarket(ScenarioMarket());
  InMemorySource base(&panel);
  auto source = MakeStack(&base, "regime_flip:day=230");
  PanelView view(source.get());
  for (int64_t t = 0; t <= 230; ++t) {
    EXPECT_EQ(view.Close(t, 0), panel.Close(t, 0));
  }
  for (int64_t t = 231; t < panel.num_days(); t += 7) {
    const double pivot = panel.Close(230, 2);
    EXPECT_DOUBLE_EQ(view.Close(t, 2), pivot * pivot / panel.Close(t, 2));
  }
}

TEST(Scenario, LiquidityHoleWidensCostsOnlyInsideWindow) {
  const PricePanel panel = SimulateMarket(ScenarioMarket());
  InMemorySource base(&panel);
  auto source = MakeStack(
      &base, "liquidity_hole:test_offset=10,length=40,cost_mult=8");
  const int64_t start = panel.train_end() + 10;
  EXPECT_EQ(source->CostMultiplier(start - 1), 1.0);
  EXPECT_EQ(source->CostMultiplier(start), 8.0);
  EXPECT_EQ(source->CostMultiplier(start + 39), 8.0);
  EXPECT_EQ(source->CostMultiplier(start + 40), 1.0);
  // Prices are untouched.
  PanelView view(source.get());
  for (int64_t t = 0; t < panel.num_days(); t += 11) {
    EXPECT_EQ(view.Close(t, 0), panel.Close(t, 0));
  }
}

TEST(Scenario, StacksComposeInOrderAndChunksAreAccessOrderFree) {
  const PricePanel panel = SimulateMarket(ScenarioMarket());
  InMemorySource base(&panel);
  const std::string stack =
      "flash_crash:day=210,depth=0.3,assets_frac=0.5|regime_flip:day=230";
  auto forward = MakeStack(&base, stack);
  auto backward = MakeStack(&base, stack);
  // Different fetch orders over two independent decorations must agree.
  const int64_t chunks = forward->num_chunks();
  std::vector<std::shared_ptr<const PanelChunk>> fwd, bwd;
  for (int64_t c = 0; c < chunks; ++c) fwd.push_back(forward->FetchChunk(c));
  for (int64_t c = chunks - 1; c >= 0; --c) {
    bwd.push_back(backward->FetchChunk(c));
  }
  PanelView va(forward.get());
  // Composition check at one hand-computed point: crash first, then the
  // flip pivots on the *crashed* price.
  const double crashed_230 = panel.Close(230, 0) * 0.7;
  const double crashed_240 = panel.Close(240, 0) * 0.7;
  EXPECT_DOUBLE_EQ(va.Close(240, 0),
                   crashed_230 * crashed_230 / crashed_240);
  for (int64_t c = 0; c < chunks; ++c) {
    const auto& a = fwd[static_cast<size_t>(c)];
    const auto& b = bwd[static_cast<size_t>(chunks - 1 - c)];
    ASSERT_EQ(a->num_days, b->num_days);
    for (int64_t r = 0; r < a->num_days * a->num_assets; ++r) {
      ASSERT_EQ(a->data[r], b->data[r]) << "chunk " << c;
    }
  }
}

// ---- Expected orderings (fixed seeds) --------------------------------------
// Each preset must hurt the strategy class it targets. These pin the
// *direction* of the effect, not magnitudes.

TEST(ScenarioOrdering, PostJumpContinuationBreaksMeanReversion) {
  // A permanent multi-day slide: OLMAR keeps buying the dip that never
  // retraces, so it must land below both the market and CRP, and below
  // its own no-crash self.
  const PricePanel panel = SimulateMarket(ScenarioMarket(11));
  InMemorySource base(&panel);
  auto crash = MakeStack(
      &base,
      "flash_crash:test_offset=15,depth=0.45,ramp_days=6,assets_frac=0.5");
  PanelView crashed(crash.get());

  olps::Olmar olmar_plain, olmar_crashed;
  olps::BuyAndHold market_agent;
  olps::Crp crp_agent;
  const double olmar_no_crash =
      env::RunTestBacktest(olmar_plain, PanelView(&base), 16)
          .wealth.back();
  const double olmar = env::RunTestBacktest(olmar_crashed, crashed, 16)
                           .wealth.back();
  const double market =
      env::RunTestBacktest(market_agent, crashed, 16).wealth.back();
  const double crp = env::RunTestBacktest(crp_agent, crashed, 16)
                         .wealth.back();
  EXPECT_LT(olmar, market);
  EXPECT_LT(olmar, crp);
  EXPECT_LT(olmar, olmar_no_crash);
}

TEST(ScenarioOrdering, RegimeFlipBreaksMomentum) {
  // Late-test flip: past winners give back their run-up and BestStock's
  // 30-day trailing window stays contaminated with pre-flip data for the
  // rest of the run, so momentum chases stale winners. The flip must cost
  // it relative to its own no-flip self. (Note it need NOT land below
  // buy-and-hold: inversion crushes the market's own pre-flip gains too,
  // so momentum-vs-market ordering under a flip is seed noise.)
  const PricePanel panel = SimulateMarket(ScenarioMarket(11));
  InMemorySource base(&panel);
  auto flip = MakeStack(&base, "regime_flip:test_offset=60");
  PanelView flipped(flip.get());
  olps::BestStock momentum, momentum_plain;
  olps::BuyAndHold market_plain;
  const double best =
      env::RunTestBacktest(momentum, flipped, 16).wealth.back();
  const double best_plain =
      env::RunTestBacktest(momentum_plain, PanelView(&base), 16)
          .wealth.back();
  const double market_no_flip =
      env::RunTestBacktest(market_plain, PanelView(&base), 16)
          .wealth.back();
  // Precondition: momentum actually had an edge to break on this panel.
  ASSERT_GT(best_plain, market_no_flip);
  EXPECT_LT(best, best_plain);
}

TEST(ScenarioOrdering, LiquidityHoleSparesBuyAndHoldBitwise) {
  // Buy-and-hold trades once, before the hole opens; widened costs inside
  // the window change nothing for it — bitwise nothing — while a churning
  // reverter pays through the nose.
  const PricePanel panel = SimulateMarket(ScenarioMarket(11));
  InMemorySource base(&panel);
  auto hole = MakeStack(
      &base, "liquidity_hole:test_offset=5,length=60,cost_mult=25");
  PanelView holed(hole.get());

  olps::BuyAndHold bnh_plain, bnh_holed;
  const auto plain = env::RunTestBacktest(bnh_plain, PanelView(&base), 16);
  const auto under = env::RunTestBacktest(bnh_holed, holed, 16);
  ASSERT_EQ(plain.wealth.size(), under.wealth.size());
  for (size_t i = 0; i < plain.wealth.size(); ++i) {
    EXPECT_EQ(plain.wealth[i], under.wealth[i]);
  }

  olps::Olmar olmar_plain, olmar_holed;
  const double churner_plain =
      env::RunTestBacktest(olmar_plain, PanelView(&base), 16).wealth.back();
  const double churner_holed =
      env::RunTestBacktest(olmar_holed, holed, 16).wealth.back();
  EXPECT_LT(churner_holed, churner_plain);
}

TEST(ScenarioOrdering, CorrelationBreakdownShrinksCrossSectionalEdge) {
  // With dispersion compressed toward the market path, every
  // cross-sectional bet converges to the market: CRP's wealth must end
  // closer to buy-and-hold's than on the untouched panel.
  const PricePanel panel = SimulateMarket(ScenarioMarket(11));
  InMemorySource base(&panel);
  auto crushed = MakeStack(
      &base, "correlation_breakdown:test_offset=0,compress=0.97");
  PanelView view(crushed.get());

  olps::Crp crp_a, crp_b;
  olps::BuyAndHold bnh_a, bnh_b;
  const double crp_plain =
      env::RunTestBacktest(crp_a, PanelView(&base), 16).wealth.back();
  const double bnh_plain =
      env::RunTestBacktest(bnh_a, PanelView(&base), 16).wealth.back();
  const double crp_crushed =
      env::RunTestBacktest(crp_b, view, 16).wealth.back();
  const double bnh_crushed =
      env::RunTestBacktest(bnh_b, view, 16).wealth.back();
  EXPECT_LT(std::abs(crp_crushed - bnh_crushed),
            std::abs(crp_plain - bnh_plain));
}

}  // namespace
}  // namespace cit::market
