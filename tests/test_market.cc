#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "market/csv.h"
#include "market/panel.h"
#include "market/simulator.h"
#include "signal/filters.h"

namespace cit::market {
namespace {

TEST(PricePanel, BasicAccessors) {
  PricePanel p(5, 2);
  p.SetClose(3, 1, 42.0);
  EXPECT_EQ(p.num_days(), 5);
  EXPECT_EQ(p.num_assets(), 2);
  EXPECT_EQ(p.Close(3, 1), 42.0);
}

TEST(PricePanel, PriceRelative) {
  PricePanel p(3, 1);
  p.SetClose(0, 0, 100.0);
  p.SetClose(1, 0, 110.0);
  p.SetClose(2, 0, 99.0);
  EXPECT_NEAR(p.PriceRelative(1, 0), 1.1, 1e-12);
  EXPECT_NEAR(p.PriceRelative(2, 0), 0.9, 1e-12);
}

// Regression: a zeroed quote (halted day), a NaN cell, or a delisting
// used to feed a division by zero / non-finite relative into the env.
// The halted convention parks capital: the relative is exactly 1.0 on
// both transitions (into and out of the bad day), never Inf or NaN.
TEST(PricePanel, PriceRelativeHaltedDaysAreExactlyOne) {
  PricePanel p(5, 1);
  p.SetClose(0, 0, 100.0);
  p.SetClose(1, 0, 0.0);  // halted / zeroed quote
  p.SetClose(2, 0, 120.0);
  p.SetClose(3, 0, std::nan(""));  // missing cell
  p.SetClose(4, 0, 90.0);
  EXPECT_EQ(p.PriceRelative(1, 0), 1.0);
  EXPECT_EQ(p.PriceRelative(2, 0), 1.0);
  EXPECT_EQ(p.PriceRelative(3, 0), 1.0);
  EXPECT_EQ(p.PriceRelative(4, 0), 1.0);
  // A frozen (stale) quote is exactly 1.0 too: IEEE guarantees p/p == 1.
  PricePanel q(2, 1);
  q.SetClose(0, 0, 37.123456789);
  q.SetClose(1, 0, 37.123456789);
  EXPECT_EQ(q.PriceRelative(1, 0), 1.0);
  // Negative prices are treated as missing, not divided through.
  PricePanel r(2, 1);
  r.SetClose(0, 0, -5.0);
  r.SetClose(1, 0, 10.0);
  EXPECT_EQ(r.PriceRelative(1, 0), 1.0);
}

TEST(PricePanel, IndexLevelsEqualWeightBuyAndHold) {
  PricePanel p(3, 2);
  p.SetClose(0, 0, 100.0);
  p.SetClose(0, 1, 50.0);
  p.SetClose(1, 0, 110.0);  // +10%
  p.SetClose(1, 1, 55.0);   // +10%
  p.SetClose(2, 0, 110.0);
  p.SetClose(2, 1, 44.0);   // -20% vs day 0 basis 50 -> 0.88
  const auto idx = p.IndexLevels(0);
  EXPECT_NEAR(idx[0], 1.0, 1e-12);
  EXPECT_NEAR(idx[1], 1.1, 1e-12);
  EXPECT_NEAR(idx[2], (1.1 + 0.88) / 2.0, 1e-12);
}

TEST(PricePanel, SliceDaysPreservesPricesAndSplit) {
  PricePanel p(10, 2);
  for (int64_t t = 0; t < 10; ++t) {
    p.SetClose(t, 0, 100.0 + t);
    p.SetClose(t, 1, 200.0 + t);
  }
  p.set_train_end(7);
  PricePanel s = p.SliceDays(2, 9);
  EXPECT_EQ(s.num_days(), 7);
  EXPECT_EQ(s.Close(0, 0), 102.0);
  EXPECT_EQ(s.train_end(), 5);
}

TEST(Simulator, DeterministicGivenSeed) {
  MarketConfig cfg;
  cfg.num_assets = 4;
  cfg.train_days = 100;
  cfg.test_days = 20;
  cfg.seed = 42;
  PricePanel a = SimulateMarket(cfg);
  PricePanel b = SimulateMarket(cfg);
  for (int64_t t = 0; t < a.num_days(); ++t) {
    for (int64_t i = 0; i < a.num_assets(); ++i) {
      EXPECT_EQ(a.Close(t, i), b.Close(t, i));
    }
  }
}

TEST(Simulator, PositivePricesAndSaneVolatility) {
  MarketConfig cfg;
  cfg.num_assets = 6;
  cfg.train_days = 400;
  cfg.test_days = 100;
  PricePanel p = SimulateMarket(cfg);
  double sq = 0.0;
  int64_t n = 0;
  for (int64_t t = 1; t < p.num_days(); ++t) {
    for (int64_t i = 0; i < p.num_assets(); ++i) {
      EXPECT_GT(p.Close(t, i), 0.0);
      const double r = std::log(p.PriceRelative(t, i));
      sq += r * r;
      ++n;
    }
  }
  const double daily_vol = std::sqrt(sq / n);
  // Annualized vol should be in a realistic 10%-60% band.
  const double annual = daily_vol * std::sqrt(252.0);
  EXPECT_GT(annual, 0.10);
  EXPECT_LT(annual, 0.60);
}

TEST(Simulator, AssetsAreCorrelatedThroughMarketFactor) {
  MarketConfig cfg;
  cfg.num_assets = 6;
  cfg.train_days = 600;
  cfg.test_days = 0;
  PricePanel p = SimulateMarket(cfg);
  // Average pairwise return correlation should be clearly positive.
  std::vector<std::vector<double>> rets(cfg.num_assets);
  for (int64_t i = 0; i < cfg.num_assets; ++i) {
    for (int64_t t = 1; t < p.num_days(); ++t) {
      rets[i].push_back(std::log(p.PriceRelative(t, i)));
    }
  }
  double corr_sum = 0.0;
  int pairs = 0;
  for (int64_t i = 0; i < cfg.num_assets; ++i) {
    for (int64_t j = i + 1; j < cfg.num_assets; ++j) {
      corr_sum += signal::PearsonCorrelation(rets[i], rets[j]);
      ++pairs;
    }
  }
  EXPECT_GT(corr_sum / pairs, 0.15);
}

TEST(Simulator, ForcedBearTailDepressesReturns) {
  MarketConfig cfg;
  cfg.num_assets = 8;
  cfg.train_days = 300;
  cfg.test_days = 200;
  cfg.forced_bear_tail = 100;
  cfg.bear_drift = -3e-3;
  cfg.seed = 9;
  PricePanel p = SimulateMarket(cfg);
  const auto idx = p.IndexLevels(0);
  const double tail_ret =
      idx.back() / idx[p.num_days() - cfg.forced_bear_tail] - 1.0;
  EXPECT_LT(tail_ret, 0.0);
}

TEST(Simulator, PresetsMatchSplitLayout) {
  for (const MarketConfig& cfg :
       {UsMarketConfig(), HkMarketConfig(), ChinaMarketConfig()}) {
    PricePanel p = SimulateMarket(cfg);
    EXPECT_EQ(p.num_days(), cfg.num_days());
    EXPECT_EQ(p.train_end(), cfg.train_days);
    EXPECT_GT(p.num_assets(), 0);
    EXPECT_EQ(p.name(), cfg.name);
  }
}

TEST(Csv, RoundTripPreservesPanel) {
  MarketConfig cfg;
  cfg.num_assets = 3;
  cfg.train_days = 30;
  cfg.test_days = 10;
  PricePanel p = SimulateMarket(cfg);
  const std::string path = ::testing::TempDir() + "/panel_roundtrip.csv";
  ASSERT_TRUE(SavePanelCsv(p, path).ok());
  auto loaded = LoadPanelCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const PricePanel& q = loaded.value();
  ASSERT_EQ(q.num_days(), p.num_days());
  ASSERT_EQ(q.num_assets(), p.num_assets());
  EXPECT_EQ(q.train_end(), p.train_end());
  for (int64_t t = 0; t < p.num_days(); ++t) {
    for (int64_t i = 0; i < p.num_assets(); ++i) {
      EXPECT_NEAR(q.Close(t, i), p.Close(t, i),
                  1e-6 * p.Close(t, i));
    }
  }
  std::remove(path.c_str());
}

TEST(Csv, LoadRejectsMissingFile) {
  auto r = LoadPanelCsv("/nonexistent/panel.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(Csv, LoadRejectsNonPositivePrice) {
  const std::string path = ::testing::TempDir() + "/bad_panel.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("day,A0\n0,100\n1,-5\n", f);
  fclose(f);
  auto r = LoadPanelCsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Csv, LoadRejectsRaggedRows) {
  const std::string path = ::testing::TempDir() + "/ragged_panel.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("day,A0,A1\n0,100,200\n1,100\n", f);
  fclose(f);
  auto r = LoadPanelCsv(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

// ---- malformed-CSV matrix (regressions for the LoadPanelCsv parsing
// fixes: CRLF \r stripping, full-cell numeric parses, NaN rejection,
// #train_end validation) ----

namespace {
std::string WriteCsv(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + "/" + name;
  FILE* f = fopen(path.c_str(), "w");
  fputs(body.c_str(), f);
  fclose(f);
  return path;
}
}  // namespace

TEST(Csv, CrlfFileParsesCleanly) {
  // Pre-fix, getline left '\r' on every line: the last asset was named
  // "B\r" and the last cell of each row parsed only up to the '\r' via a
  // partial strtod — or, with strict parsing, failed outright.
  const std::string path = WriteCsv(
      "crlf_panel.csv",
      "#train_end=2\r\nday,A,B\r\n0,100,200\r\n1,110,190\r\n2,105,195\r\n");
  auto r = LoadPanelCsv(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const PricePanel& p = r.value();
  EXPECT_EQ(p.num_days(), 3);
  EXPECT_EQ(p.train_end(), 2);
  ASSERT_EQ(p.asset_names().size(), 2u);
  EXPECT_EQ(p.asset_names()[1], "B");  // no trailing '\r'
  EXPECT_EQ(p.Close(2, 1), 195.0);
  std::remove(path.c_str());
}

TEST(Csv, LoadRejectsJunkCell) {
  // "12abc" used to silently parse as 12 (only `end == begin` was checked).
  const std::string path =
      WriteCsv("junk_cell.csv", "day,A\n0,100\n1,12abc\n");
  auto r = LoadPanelCsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Csv, LoadRejectsEmptyCell) {
  const std::string path =
      WriteCsv("empty_cell.csv", "day,A,B\n0,100,200\n1,,190\n");
  auto r = LoadPanelCsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Csv, LoadRejectsNanPrice) {
  // strtod accepts "nan", and NaN <= 0.0 is false — pre-fix a NaN price
  // sailed straight into the panel and poisoned every downstream metric.
  const std::string path = WriteCsv("nan_cell.csv", "day,A\n0,100\n1,nan\n");
  auto r = LoadPanelCsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Csv, LoadRejectsMissingColumn) {
  // Row with one price short of the header (a "missing column" row).
  const std::string path =
      WriteCsv("missing_col.csv", "day,A,B,C\n0,1,2,3\n1,1,2\n");
  auto r = LoadPanelCsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Csv, LoadRejectsTrainEndOutOfRange) {
  for (const char* header : {"#train_end=999\n", "#train_end=-3\n"}) {
    const std::string path = WriteCsv(
        "bad_train_end.csv", std::string(header) + "day,A\n0,100\n1,110\n");
    auto r = LoadPanelCsv(path);
    EXPECT_FALSE(r.ok()) << header;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    std::remove(path.c_str());
  }
}

TEST(Csv, LoadRejectsMalformedTrainEnd) {
  // atoll("abc") was a silent 0; now the header must parse completely.
  const std::string path = WriteCsv(
      "junk_train_end.csv", "#train_end=abc\nday,A\n0,100\n1,110\n");
  auto r = LoadPanelCsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(StatusResult, BasicBehaviour) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status err = Status::InvalidArgument("bad");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.ToString(), "InvalidArgument: bad");
  Result<int> value(7);
  EXPECT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 7);
  Result<int> failed(Status::NotFound("x"));
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace cit::market
