// Determinism contract of the parallel rollout pipeline: training curves
// must be bitwise identical for any CIT_NUM_THREADS. Exercises the
// counter-split RNG streams, the RolloutRunner scheduling, and all three
// on-policy trainers (CIT, A2C, PPO) end to end.
#include <atomic>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/config.h"
#include "core/trader.h"
#include "market/simulator.h"
#include "math/rng.h"
#include "rl/a2c.h"
#include "rl/config.h"
#include "rl/ppo.h"
#include "rl/rollout.h"

namespace cit {
namespace {

// Restores the global pool's thread count when a test scope exits.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n)
      : saved_(ThreadPool::Global().num_threads()) {
    ThreadPool::Global().SetNumThreads(n);
  }
  ~ThreadCountGuard() { ThreadPool::Global().SetNumThreads(saved_); }

 private:
  int saved_;
};

market::PricePanel TinyPanel(uint64_t seed = 21) {
  market::MarketConfig cfg;
  cfg.num_assets = 4;
  cfg.train_days = 80;
  cfg.test_days = 30;
  cfg.seed = seed;
  return market::SimulateMarket(cfg);
}

// ---- Counter-split RNG streams ----------------------------------------------

TEST(RngSplit, SameCoordinatesReproduceTheStream) {
  math::Rng a = math::Rng::Split(7, 11, 3);
  math::Rng b = math::Rng::Split(7, 11, 3);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngSplit, DistinctCoordinatesGiveDistinctStreams) {
  // Streams from nearby (step, slot) coordinates must not collide or
  // overlap in their prefixes.
  std::vector<uint64_t> firsts;
  for (uint64_t step = 0; step < 8; ++step) {
    for (uint64_t slot = 0; slot < 8; ++slot) {
      firsts.push_back(math::Rng::Split(1, step, slot).NextU64());
    }
  }
  for (size_t i = 0; i < firsts.size(); ++i) {
    for (size_t j = i + 1; j < firsts.size(); ++j) {
      ASSERT_NE(firsts[i], firsts[j]) << i << " vs " << j;
    }
  }
  // And the seed matters.
  ASSERT_NE(math::Rng::Split(1, 0, 0).NextU64(),
            math::Rng::Split(2, 0, 0).NextU64());
}

TEST(RngSplit, StreamDoesNotDependOnCallOrder) {
  // Drawing slot 5's stream before slot 2's must not change either: the
  // split is a pure function of (seed, step, slot).
  const uint64_t early = math::Rng::Split(9, 4, 5).NextU64();
  math::Rng::Split(9, 4, 2).NextU64();
  EXPECT_EQ(math::Rng::Split(9, 4, 5).NextU64(), early);
}

// ---- RolloutRunner scheduling -----------------------------------------------

TEST(RolloutRunner, RunsEverySlotExactlyOnceWithItsOwnStream) {
  ThreadCountGuard guard(4);
  const int64_t kSlots = 9;
  rl::RolloutRunner runner(/*seed=*/5, kSlots);
  EXPECT_EQ(runner.num_slots(), kSlots);
  std::vector<std::atomic<int>> counts(kSlots);
  std::vector<uint64_t> draws(kSlots, 0);
  runner.Collect(/*step=*/3, [&](int64_t slot, math::Rng& rng) {
    counts[slot]++;
    draws[slot] = rng.NextU64();  // per-slot storage: no synchronization
  });
  for (int64_t s = 0; s < kSlots; ++s) {
    EXPECT_EQ(counts[s].load(), 1) << s;
    EXPECT_EQ(draws[s],
              math::Rng::Split(5, 3, static_cast<uint64_t>(s)).NextU64())
        << s;
  }
}

TEST(RolloutRunner, ForEachSlotCoversAllSlots) {
  ThreadCountGuard guard(2);
  rl::RolloutRunner runner(/*seed=*/1, /*num_slots=*/6);
  std::vector<std::atomic<int>> counts(6);
  runner.ForEachSlot([&](int64_t slot) { counts[slot]++; });
  for (int64_t s = 0; s < 6; ++s) EXPECT_EQ(counts[s].load(), 1) << s;
}

// ---- Bitwise thread-count invariance of full training runs ------------------
//
// Each trainer runs from an identical fresh state under 1, 2, and 4 pool
// threads; learning curves must match bit for bit (EXPECT_EQ on doubles,
// no tolerance). On hosts where the clamp caps the pool below the
// requested count the variants collapse, which still validates the
// contract trivially; multi-core hosts exercise real interleavings.

std::vector<double> TrainCitCurve(int n_threads) {
  ThreadCountGuard guard(n_threads);
  auto panel = TinyPanel();
  core::CrossInsightConfig cfg;
  cfg.num_policies = 2;
  cfg.window = 8;
  cfg.feature_dim = 4;
  cfg.tcn_blocks = 1;
  cfg.head_hidden = 8;
  cfg.critic_hidden = 12;
  cfg.train_steps = 4;
  cfg.rollout_len = 6;
  cfg.rollouts_per_update = 3;
  cfg.seed = 3;
  core::CrossInsightTrader trader(panel.num_assets(), cfg);
  return trader.Train(panel, 4);
}

TEST(RolloutDeterminism, CitTrainingCurveBitwiseInvariant) {
  const std::vector<double> base = TrainCitCurve(1);
  ASSERT_FALSE(base.empty());
  for (double v : base) ASSERT_TRUE(std::isfinite(v));
  for (int threads : {2, 4}) {
    const std::vector<double> curve = TrainCitCurve(threads);
    ASSERT_EQ(curve.size(), base.size()) << threads << " threads";
    for (size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(curve[i], base[i])
          << threads << " threads, checkpoint " << i;
    }
  }
}

std::vector<double> TrainA2cCurve(int n_threads) {
  ThreadCountGuard guard(n_threads);
  auto panel = TinyPanel();
  rl::RlTrainConfig cfg;
  cfg.window = 8;
  cfg.hidden = 12;
  cfg.train_steps = 6;
  cfg.rollout_len = 6;
  cfg.rollouts_per_update = 3;
  cfg.seed = 5;
  rl::A2cAgent agent(panel.num_assets(), cfg);
  return agent.Train(panel, 3);
}

TEST(RolloutDeterminism, A2cTrainingCurveBitwiseInvariant) {
  const std::vector<double> base = TrainA2cCurve(1);
  ASSERT_FALSE(base.empty());
  for (int threads : {2, 4}) {
    const std::vector<double> curve = TrainA2cCurve(threads);
    ASSERT_EQ(curve.size(), base.size()) << threads << " threads";
    for (size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(curve[i], base[i])
          << threads << " threads, checkpoint " << i;
    }
  }
}

std::vector<double> TrainPpoCurve(int n_threads) {
  ThreadCountGuard guard(n_threads);
  auto panel = TinyPanel();
  rl::PpoAgent::PpoConfig cfg;
  cfg.window = 8;
  cfg.hidden = 12;
  cfg.train_steps = 4;
  cfg.rollout_len = 6;
  cfg.rollouts_per_update = 3;
  cfg.epochs = 2;
  cfg.seed = 7;
  rl::PpoAgent agent(panel.num_assets(), cfg);
  return agent.Train(panel, 2);
}

TEST(RolloutDeterminism, PpoTrainingCurveBitwiseInvariant) {
  const std::vector<double> base = TrainPpoCurve(1);
  ASSERT_FALSE(base.empty());
  for (int threads : {2, 4}) {
    const std::vector<double> curve = TrainPpoCurve(threads);
    ASSERT_EQ(curve.size(), base.size()) << threads << " threads";
    for (size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(curve[i], base[i])
          << threads << " threads, checkpoint " << i;
    }
  }
}

// Fan-out changes the minibatch, never the validity: K > 1 still trains
// to finite curves and a usable policy.
TEST(RolloutDeterminism, MultiRolloutTrainingStaysFinite) {
  auto panel = TinyPanel(33);
  core::CrossInsightConfig cfg;
  cfg.num_policies = 2;
  cfg.window = 8;
  cfg.feature_dim = 4;
  cfg.tcn_blocks = 1;
  cfg.head_hidden = 8;
  cfg.critic_hidden = 12;
  cfg.train_steps = 6;
  cfg.rollout_len = 5;
  cfg.rollouts_per_update = 4;
  cfg.seed = 11;
  core::CrossInsightTrader trader(panel.num_assets(), cfg);
  const auto curve = trader.Train(panel, 3);
  ASSERT_FALSE(curve.empty());
  for (double v : curve) EXPECT_TRUE(std::isfinite(v));
  EXPECT_EQ(trader.last_advantages().size(), 2u);
  const auto result = env::RunTestBacktest(trader, panel, cfg.window);
  EXPECT_GT(result.wealth.back(), 0.0);
  EXPECT_EQ(result.repaired_steps, 0);
}

}  // namespace
}  // namespace cit
