// Parameterized property sweeps over module invariants (TEST_P suites).
#include <cmath>

#include <gtest/gtest.h>

#include "env/metrics.h"
#include "env/portfolio_env.h"
#include "market/simulator.h"
#include "math/autograd.h"
#include "math/rng.h"
#include "olps/simplex.h"
#include "rl/gaussian_policy.h"
#include "rl/returns.h"
#include "signal/wavelet.h"

namespace cit {
namespace {

// ---- DWT: perfect reconstruction and band-sum identity for every length.
class DwtLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(DwtLengthSweep, ReconstructionAndBandSum) {
  const int n = GetParam();
  math::Rng rng(n);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.Normal();
  const auto y = signal::HaarReconstruct(signal::HaarDecompose(x, 3));
  ASSERT_EQ(y.size(), x.size());
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-9);

  for (int bands = 2; bands <= 4; ++bands) {
    const auto split = signal::SplitHorizonBands(x, bands);
    for (size_t i = 0; i < x.size(); ++i) {
      double total = 0.0;
      for (const auto& b : split) total += b[i];
      EXPECT_NEAR(total, x[i], 1e-9) << "len=" << n << " bands=" << bands;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, DwtLengthSweep,
                         ::testing::Values(2, 3, 5, 8, 11, 16, 24, 33, 48,
                                           64, 100));

// ---- Env: wealth accounting identity across random trading sequences.
class EnvAccountingSweep : public ::testing::TestWithParam<int> {};

TEST_P(EnvAccountingSweep, WealthEqualsProductOfNetReturns) {
  market::MarketConfig cfg;
  cfg.num_assets = 4;
  cfg.train_days = 80;
  cfg.test_days = 40;
  cfg.seed = 100 + GetParam();
  auto panel = market::SimulateMarket(cfg);
  env::EnvConfig env_cfg;
  env_cfg.window = 6;
  env_cfg.transaction_cost = 0.002;
  env::PortfolioEnv env(&panel, env_cfg);
  math::Rng rng(GetParam());
  double product = 1.0;
  while (!env.done()) {
    const env::StepResult r = env.Step(rng.Dirichlet(4, 0.7));
    product *= std::exp(r.reward);
    // Net return decomposes into gross growth times cost factor.
    EXPECT_NEAR(std::exp(r.reward), r.portfolio_return * (1.0 - r.cost),
                1e-9);
  }
  EXPECT_NEAR(env.wealth(), product, 1e-9);
  // Held weights always remain a simplex point.
  EXPECT_TRUE(env::IsValidPortfolio(env.previous_weights(), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvAccountingSweep, ::testing::Range(0, 8));

// ---- Simplex projection feasibility across dimensions.
class SimplexDimSweep : public ::testing::TestWithParam<int> {};

TEST_P(SimplexDimSweep, ProjectionFeasibleAndIdempotent) {
  const int dim = GetParam();
  math::Rng rng(dim * 7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> y(dim);
    for (auto& v : y) v = rng.Normal(0.0, 2.0);
    const auto p = olps::ProjectToSimplex(y);
    double total = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Projecting a simplex point is the identity.
    const auto p2 = olps::ProjectToSimplex(p);
    for (int i = 0; i < dim; ++i) EXPECT_NEAR(p2[i], p[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SimplexDimSweep,
                         ::testing::Values(1, 2, 3, 5, 10, 40, 100));

// ---- Softmax: simplex output and shift invariance for many sizes.
class SoftmaxSweep : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxSweep, SimplexAndShiftInvariance) {
  const int n = GetParam();
  math::Rng rng(n * 3 + 1);
  math::Tensor raw = math::Tensor::Uniform({n}, rng, -4.0f, 4.0f);
  const auto w = rl::SoftmaxWeights(raw);
  double total = 0.0;
  for (double v : w) {
    EXPECT_GT(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  const auto w2 = rl::SoftmaxWeights(raw.AddScalar(17.5f));
  for (int i = 0; i < n; ++i) EXPECT_NEAR(w2[i], w[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SoftmaxSweep,
                         ::testing::Values(1, 2, 4, 9, 20, 45, 80));

// ---- Lambda returns: constant-reward closed form for (gamma, lambda).
class LambdaReturnSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LambdaReturnSweep, ConstantRewardClosedForm) {
  const double gamma = std::get<0>(GetParam());
  const double lambda = std::get<1>(GetParam());
  // With r == c and V == v for all states, each n-step return is
  // G^(n) = c (1-gamma^n)/(1-gamma) + gamma^n v; the lambda mixture must
  // stay inside [min_n G, max_n G].
  const int len = 6, n_max = 4;
  const double c = 0.5, v = 2.0;
  std::vector<double> rewards(len, c);
  std::vector<double> values(len + 1, v);
  const auto y = rl::LambdaReturns(rewards, values, gamma, lambda, n_max);
  double g_min = 1e18, g_max = -1e18;
  for (int n = 1; n <= n_max; ++n) {
    const double g =
        c * (1.0 - std::pow(gamma, n)) / (1.0 - gamma) +
        std::pow(gamma, n) * v;
    g_min = std::min(g_min, g);
    g_max = std::max(g_max, g);
  }
  // Interior targets (far from trajectory end) obey the bound exactly.
  EXPECT_GE(y[0], g_min - 1e-9);
  EXPECT_LE(y[0], g_max + 1e-9);
  EXPECT_GE(y[1], g_min - 1e-9);
  EXPECT_LE(y[1], g_max + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    GammaLambda, LambdaReturnSweep,
    ::testing::Combine(::testing::Values(0.9, 0.99),
                       ::testing::Values(0.0, 0.5, 0.9, 1.0)));

// ---- Metrics invariants over random wealth curves.
class MetricsSweep : public ::testing::TestWithParam<int> {};

TEST_P(MetricsSweep, DrawdownBoundsAndScaleInvariance) {
  math::Rng rng(GetParam() + 41);
  std::vector<double> wealth = {1.0};
  for (int t = 0; t < 120; ++t) {
    wealth.push_back(wealth.back() *
                     std::exp(rng.Normal(0.0005, 0.015)));
  }
  const auto m = env::ComputeMetrics(wealth);
  EXPECT_GE(m.max_drawdown, 0.0);
  EXPECT_LE(m.max_drawdown, 1.0);
  // Metrics are invariant to rescaling the wealth curve.
  std::vector<double> scaled = wealth;
  for (double& v : scaled) v *= 37.0;
  const auto ms = env::ComputeMetrics(scaled);
  EXPECT_NEAR(ms.accumulative_return, m.accumulative_return, 1e-9);
  EXPECT_NEAR(ms.sharpe_ratio, m.sharpe_ratio, 1e-9);
  EXPECT_NEAR(ms.max_drawdown, m.max_drawdown, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsSweep, ::testing::Range(0, 6));

// ---- Autograd: softmax gradient rows sum to zero for any size (the
// softmax Jacobian annihilates constant vectors).
class SoftmaxGradSweep : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxGradSweep, GradientOrthogonalToConstants) {
  const int n = GetParam();
  math::Rng rng(n + 5);
  ag::Var x = ag::Var::Param(math::Tensor::Uniform({n}, rng, -2, 2));
  ag::Var target =
      ag::Var::Constant(math::Tensor::Uniform({n}, rng, 0, 1));
  ag::Sum(ag::Mul(ag::Softmax(x), target)).Backward();
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += x.grad()[i];
  EXPECT_NEAR(total, 0.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SoftmaxGradSweep,
                         ::testing::Values(2, 3, 8, 33));

// ---- Gaussian policy: deterministic softmax weights are invariant to the
// log_std, and sampling respects the simplex for many dimensions.
class GaussianPolicySweep : public ::testing::TestWithParam<int> {};

TEST_P(GaussianPolicySweep, SamplesOnSimplex) {
  const int m = GetParam();
  math::Rng rng(m * 11 + 3);
  ag::Var mean =
      ag::Var::Constant(math::Tensor::Uniform({m}, rng, -1, 1));
  ag::Var log_std = ag::Var::Constant(math::Tensor::Full({m}, -0.5f));
  for (int trial = 0; trial < 5; ++trial) {
    const auto a = rl::SampleGaussianSimplex(mean, log_std, &rng);
    EXPECT_TRUE(env::IsValidPortfolio(a.weights, 1e-9));
    EXPECT_TRUE(std::isfinite(a.log_prob.value().Item()));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, GaussianPolicySweep,
                         ::testing::Values(2, 5, 20, 80));

}  // namespace
}  // namespace cit
