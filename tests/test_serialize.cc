#include "nn/serialize.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/trader.h"
#include "env/backtest.h"
#include "market/simulator.h"
#include "nn/checkpoint.h"
#include "nn/conv.h"
#include "nn/layers.h"

namespace cit::nn {
namespace {

using math::Rng;
using math::Tensor;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::vector<uint8_t> bytes;
  EXPECT_TRUE(ReadFileBytes(path, &bytes).ok()) << path;
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Every stored weight of `m`, flattened, for before/after comparisons.
std::vector<float> FlatWeights(const Module& m) {
  std::vector<float> out;
  for (const auto& p : m.Parameters()) {
    const Tensor& t = p.var.value();
    out.insert(out.end(), t.data(), t.data() + t.numel());
  }
  return out;
}

TEST(Serialize, RoundTripRestoresExactWeights) {
  Rng rng(1);
  Mlp a({4, 8, 2}, rng);
  Mlp b({4, 8, 2}, rng);  // different init
  const std::string path = TempPath("mlp_roundtrip.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ASSERT_TRUE(LoadParameters(&b, path).ok());
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(math::TensorEquals(pa[i].var.value(), pb[i].var.value()))
        << pa[i].name;
  }
  std::remove(path.c_str());
}

TEST(Serialize, LoadedNetworkComputesIdenticalOutputs) {
  Rng rng(2);
  CausalConv1d a(2, 3, 3, 1, rng);
  CausalConv1d b(2, 3, 3, 1, rng);
  const std::string path = TempPath("conv_roundtrip.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ASSERT_TRUE(LoadParameters(&b, path).ok());
  Tensor x = Tensor::Uniform({1, 2, 6}, rng, -1, 1);
  EXPECT_TRUE(math::TensorEquals(
      a.Forward(ag::Var::Constant(x)).value(),
      b.Forward(ag::Var::Constant(x)).value()));
  std::remove(path.c_str());
}

TEST(Serialize, RejectsArchitectureMismatch) {
  Rng rng(3);
  Mlp a({4, 8, 2}, rng);
  Mlp wrong_shape({4, 9, 2}, rng);
  Mlp wrong_depth({4, 8, 3, 2}, rng);
  const std::string path = TempPath("mlp_mismatch.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  EXPECT_FALSE(LoadParameters(&wrong_shape, path).ok());
  EXPECT_FALSE(LoadParameters(&wrong_depth, path).ok());
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbageFile) {
  const std::string path = TempPath("garbage.bin");
  FILE* f = fopen(path.c_str(), "w");
  fputs("this is not a weights file", f);
  fclose(f);
  Rng rng(4);
  Mlp m({2, 2}, rng);
  const Status status = LoadParameters(&m, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsTruncatedHeader) {
  Rng rng(6);
  Mlp a({4, 8, 2}, rng);
  Mlp b({4, 8, 2}, rng);
  const std::string path = TempPath("truncated_header.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  const std::vector<uint8_t> full = ReadAll(path);
  const std::vector<float> before = FlatWeights(b);

  // Cut mid-way through the parameter count, right after the magic: the
  // loader must report truncation, not a bogus count mismatch, and must
  // not touch the target module.
  WriteAll(path, std::vector<uint8_t>(full.begin(), full.begin() + 6 + 4));
  const Status status = LoadParameters(&b, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("truncated"), std::string::npos)
      << status.message();
  EXPECT_EQ(FlatWeights(b), before);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsNonFiniteWeights) {
  Rng rng(7);
  Mlp a({4, 8, 2}, rng);
  Mlp b({4, 8, 2}, rng);
  const std::string path = TempPath("nan_weights.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  std::vector<uint8_t> bytes = ReadAll(path);
  // The file ends with the last tensor's float payload; poison its final
  // element.
  const float nan = std::nanf("");
  std::memcpy(bytes.data() + bytes.size() - sizeof(float), &nan, sizeof(nan));
  WriteAll(path, bytes);

  const std::vector<float> before = FlatWeights(b);
  const Status status = LoadParameters(&b, path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("non-finite"), std::string::npos)
      << status.message();
  EXPECT_EQ(FlatWeights(b), before);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsTrailingBytes) {
  Rng rng(8);
  Mlp a({4, 8, 2}, rng);
  Mlp b({4, 8, 2}, rng);
  const std::string path = TempPath("trailing_bytes.bin");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes.push_back(0x5a);
  WriteAll(path, bytes);

  const std::vector<float> before = FlatWeights(b);
  const Status status = LoadParameters(&b, path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("trailing"), std::string::npos)
      << status.message();
  EXPECT_EQ(FlatWeights(b), before);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileIsIoError) {
  Rng rng(5);
  Mlp m({2, 2}, rng);
  EXPECT_EQ(LoadParameters(&m, "/nonexistent/weights.bin").code(),
            StatusCode::kIoError);
}

TEST(Serialize, TrainedTraderRoundTripsThroughDisk) {
  market::MarketConfig mcfg;
  mcfg.num_assets = 4;
  mcfg.train_days = 150;
  mcfg.test_days = 60;
  mcfg.seed = 8;
  auto panel = market::SimulateMarket(mcfg);

  core::CrossInsightConfig cfg;
  cfg.num_policies = 2;
  cfg.window = 8;
  cfg.feature_dim = 4;
  cfg.tcn_blocks = 1;
  cfg.head_hidden = 8;
  cfg.critic_hidden = 8;
  cfg.train_steps = 8;
  cfg.rollout_len = 4;
  cfg.seed = 3;
  core::CrossInsightTrader trained(panel.num_assets(), cfg);
  trained.Train(panel);
  const std::string path = TempPath("trader.bin");
  ASSERT_TRUE(trained.SaveModel(path).ok());

  core::CrossInsightTrader fresh(panel.num_assets(), cfg);
  ASSERT_TRUE(fresh.LoadModel(path).ok());
  const auto r1 = env::RunTestBacktest(trained, panel, cfg.window);
  const auto r2 = env::RunTestBacktest(fresh, panel, cfg.window);
  ASSERT_EQ(r1.wealth.size(), r2.wealth.size());
  for (size_t t = 0; t < r1.wealth.size(); ++t) {
    EXPECT_DOUBLE_EQ(r1.wealth[t], r2.wealth[t]);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cit::nn
