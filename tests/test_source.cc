// Data-plane gates (DESIGN.md §11): every source implementation must be
// bitwise interchangeable with the in-memory panel path, for any chunk
// size, any access order, any prefetch setting, and any thread count.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "env/backtest.h"
#include "market/csv.h"
#include "market/panel.h"
#include "market/sim_source.h"
#include "market/simulator.h"
#include "market/source.h"
#include "market/streaming_csv.h"
#include "olps/strategies.h"

namespace cit::market {
namespace {

MarketConfig SmallConfig(uint64_t seed = 21) {
  MarketConfig cfg;
  cfg.name = "source-test";
  cfg.num_assets = 5;
  cfg.train_days = 180;
  cfg.test_days = 70;
  cfg.seed = seed;
  return cfg;
}

std::string WriteTempCsv(const PricePanel& panel, const char* tag) {
  std::string path = ::testing::TempDir() + "cit_source_" + tag + ".csv";
  const Status s = SavePanelCsv(panel, path);
  EXPECT_TRUE(s.ok()) << s.message();
  return path;
}

// ---- PanelView over InMemorySource: the bitwise anchor ---------------------

TEST(Source, ViewReadsEqualPanelReadsExactly) {
  const PricePanel panel = SimulateMarket(SmallConfig());
  InMemorySource source(&panel);
  PanelView view(&source);
  EXPECT_EQ(view.num_days(), panel.num_days());
  EXPECT_EQ(view.num_assets(), panel.num_assets());
  EXPECT_EQ(view.train_end(), panel.train_end());
  EXPECT_EQ(view.name(), panel.name());
  for (int64_t t = 0; t < panel.num_days(); ++t) {
    for (int64_t i = 0; i < panel.num_assets(); ++i) {
      EXPECT_EQ(view.Close(t, i), panel.Close(t, i));
      if (t > 0) {
        EXPECT_EQ(view.PriceRelative(t, i), panel.PriceRelative(t, i));
      }
    }
  }
}

TEST(Source, SourceIdsAreDistinctAndNonZero) {
  const PricePanel panel = SimulateMarket(SmallConfig());
  InMemorySource a(&panel);
  InMemorySource b(&panel);
  EXPECT_NE(a.source_id(), 0u);
  EXPECT_NE(b.source_id(), 0u);
  EXPECT_NE(a.source_id(), b.source_id());
  // The implicit panel adapter allocates a fresh id per conversion.
  PanelView va(panel);
  PanelView vb(panel);
  EXPECT_NE(va.source_id(), vb.source_id());
}

TEST(Source, MaterializeRoundTripsThePanel) {
  const PricePanel panel = SimulateMarket(SmallConfig());
  InMemorySource source(&panel);
  const PricePanel copy = PanelView(&source).Materialize();
  ASSERT_EQ(copy.num_days(), panel.num_days());
  ASSERT_EQ(copy.num_assets(), panel.num_assets());
  EXPECT_EQ(copy.train_end(), panel.train_end());
  for (int64_t t = 0; t < panel.num_days(); ++t) {
    for (int64_t i = 0; i < panel.num_assets(); ++i) {
      EXPECT_EQ(copy.Close(t, i), panel.Close(t, i));
    }
  }
}

// The refactor's core gate: a backtest through InMemorySource is bitwise
// identical to the pre-data-plane panel path, at 1 and 4 threads.
TEST(Source, BacktestThroughViewBitwiseEqualsPanelPathAnyThreads) {
  const PricePanel panel = SimulateMarket(SmallConfig());
  for (int threads : {1, 4}) {
    ThreadPool::Global().SetNumThreads(threads);
    olps::Olmar direct_agent;
    const auto direct = env::RunTestBacktest(direct_agent, panel, 16);
    InMemorySource source(&panel);
    olps::Olmar view_agent;
    const auto viewed =
        env::RunTestBacktest(view_agent, PanelView(&source), 16);
    ASSERT_EQ(direct.wealth.size(), viewed.wealth.size());
    for (size_t i = 0; i < direct.wealth.size(); ++i) {
      EXPECT_EQ(direct.wealth[i], viewed.wealth[i]) << "step " << i;
    }
    EXPECT_EQ(direct.turnover, viewed.turnover);
  }
  ThreadPool::Global().SetNumThreads(1);
}

// ---- StreamingCsvSource ----------------------------------------------------

TEST(Source, StreamingCsvBitwiseEqualsInMemoryAcrossChunkSizes) {
  const PricePanel panel = SimulateMarket(SmallConfig(31));
  const std::string path = WriteTempCsv(panel, "chunks");
  // Chunk sizes: degenerate (1 day), prime (misaligned with everything),
  // and whole-panel; prefetch on and off. All must read back the exact
  // bytes LoadPanelCsv produces.
  auto loaded = LoadPanelCsv(path);
  ASSERT_TRUE(loaded.ok());
  const PricePanel reference = std::move(loaded).value();
  for (int64_t chunk_days : {int64_t{1}, int64_t{17}, panel.num_days()}) {
    for (bool prefetch : {false, true}) {
      StreamingCsvOptions options;
      options.chunk_days = chunk_days;
      options.max_resident_chunks = 3;
      options.prefetch = prefetch;
      auto opened = StreamingCsvSource::Open(path, options);
      ASSERT_TRUE(opened.ok()) << opened.status().message();
      auto source = std::move(opened).value();
      PanelView view(source.get());
      ASSERT_EQ(view.num_days(), reference.num_days());
      ASSERT_EQ(view.train_end(), reference.train_end());
      for (int64_t t = 0; t < reference.num_days(); ++t) {
        for (int64_t i = 0; i < reference.num_assets(); ++i) {
          ASSERT_EQ(view.Close(t, i), reference.Close(t, i))
              << "chunk_days=" << chunk_days << " prefetch=" << prefetch
              << " day=" << t << " asset=" << i;
        }
      }
    }
  }
}

TEST(Source, StreamingCsvBacktestBitwiseEqualsPanelUnderChunkBudget) {
  const PricePanel sim = SimulateMarket(SmallConfig(32));
  const std::string path = WriteTempCsv(sim, "backtest");
  // The gate is streaming ingest vs in-memory ingest of the same file
  // (SavePanelCsv rounds to 10 digits, so the simulated panel itself is
  // not the reference — the file is).
  auto loaded = LoadPanelCsv(path);
  ASSERT_TRUE(loaded.ok());
  const PricePanel panel = std::move(loaded).value();
  olps::Olmar direct_agent;
  const auto direct = env::RunTestBacktest(direct_agent, panel, 16);
  StreamingCsvOptions options;
  options.chunk_days = 32;
  options.max_resident_chunks = 2;  // far less than the panel
  auto opened = StreamingCsvSource::Open(path, options);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  auto source = std::move(opened).value();
  olps::Olmar streamed_agent;
  const auto streamed =
      env::RunTestBacktest(streamed_agent, PanelView(source.get()), 16);
  ASSERT_EQ(direct.wealth.size(), streamed.wealth.size());
  for (size_t i = 0; i < direct.wealth.size(); ++i) {
    EXPECT_EQ(direct.wealth[i], streamed.wealth[i]) << "step " << i;
  }
}

TEST(Source, StreamingCsvHonorsResidentBudget) {
  const PricePanel panel = SimulateMarket(SmallConfig(33));
  const std::string path = WriteTempCsv(panel, "budget");
  StreamingCsvOptions options;
  options.chunk_days = 16;
  options.max_resident_chunks = 2;
  options.prefetch = false;
  auto opened = StreamingCsvSource::Open(path, options);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  auto source = std::move(opened).value();
  // Sweep every chunk twice; the LRU must keep residency at the budget.
  for (int pass = 0; pass < 2; ++pass) {
    for (int64_t c = 0; c < source->num_chunks(); ++c) {
      (void)source->FetchChunk(c);
    }
  }
  EXPECT_LE(source->resident_bytes(), source->budget_bytes());
  // Transient overshoot is bounded by one in-flight chunk.
  const int64_t chunk_bytes =
      options.chunk_days * panel.num_assets() *
      static_cast<int64_t>(sizeof(double));
  EXPECT_LE(source->peak_resident_bytes(),
            source->budget_bytes() + chunk_bytes);
  EXPECT_GT(source->chunk_loads(), source->num_chunks());  // re-loads hit
}

TEST(Source, StreamingCsvOpenRejectsBadFiles) {
  const std::string path = ::testing::TempDir() + "cit_source_bad.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("date,A,B\n2020-01-01,1.0,2.0\n2020-01-02,1.0,-3.0\n", f);
  std::fclose(f);
  auto opened = StreamingCsvSource::Open(path);
  EXPECT_FALSE(opened.ok());  // negative price must fail at Open
  auto missing = StreamingCsvSource::Open(path + ".nope");
  EXPECT_FALSE(missing.ok());
}

// Shared source, one private view per thread: equal reads, no races
// (exercised under TSan by check.sh).
TEST(SourceThreaded, ConcurrentViewsOverSharedStreamingSourceAgree) {
  const PricePanel panel = SimulateMarket(SmallConfig(34));
  const std::string path = WriteTempCsv(panel, "threads");
  StreamingCsvOptions options;
  options.chunk_days = 8;
  options.max_resident_chunks = 2;
  auto opened = StreamingCsvSource::Open(path, options);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  auto source = std::move(opened).value();
  constexpr int kThreads = 4;
  std::vector<double> sums(kThreads, 0.0);
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      PanelView view(source.get());  // private ring per thread
      double sum = 0.0;
      // Different traversal order per thread.
      for (int64_t t = 0; t < view.num_days(); ++t) {
        const int64_t day =
            (w % 2 == 0) ? t : view.num_days() - 1 - t;
        for (int64_t i = 0; i < view.num_assets(); ++i) {
          sum += view.Close(day, i);
        }
      }
      sums[static_cast<size_t>(w)] = sum;
    });
  }
  for (auto& t : workers) t.join();
  for (int w = 1; w < kThreads; ++w) EXPECT_EQ(sums[0], sums[w]);
}

// ---- SimulatorSource -------------------------------------------------------

TEST(Source, SimulatorSourceBitwiseEqualsSimulateMarket) {
  const MarketConfig cfg = SmallConfig(35);
  const PricePanel reference = SimulateMarket(cfg);
  for (int64_t chunk_days : {int64_t{1}, int64_t{13}, int64_t{512}}) {
    SimulatorSource source(cfg, chunk_days);
    PanelView view(&source);
    ASSERT_EQ(view.num_days(), reference.num_days());
    for (int64_t t = 0; t < reference.num_days(); ++t) {
      for (int64_t i = 0; i < reference.num_assets(); ++i) {
        ASSERT_EQ(view.Close(t, i), reference.Close(t, i))
            << "chunk_days=" << chunk_days << " day=" << t;
      }
    }
  }
}

TEST(Source, SimulatorSourceIndependentOfAccessOrder) {
  const MarketConfig cfg = SmallConfig(36);
  const PricePanel reference = SimulateMarket(cfg);
  SimulatorSource source(cfg, /*chunk_days=*/16);
  // Fetch chunks back to front — the checkpoint chain must produce the
  // same days as forward generation.
  for (int64_t c = source.num_chunks() - 1; c >= 0; --c) {
    const auto chunk = source.FetchChunk(c);
    for (int64_t t = chunk->start_day;
         t < chunk->start_day + chunk->num_days; ++t) {
      for (int64_t i = 0; i < reference.num_assets(); ++i) {
        ASSERT_EQ(chunk->At(t, i), reference.Close(t, i))
            << "chunk=" << c << " day=" << t;
      }
    }
  }
}

TEST(SourceThreaded, SimulatorSourceConcurrentFetchesAgree) {
  const MarketConfig cfg = SmallConfig(37);
  const PricePanel reference = SimulateMarket(cfg);
  SimulatorSource source(cfg, /*chunk_days=*/8);
  constexpr int kThreads = 4;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int64_t step = 0; step < source.num_chunks(); ++step) {
        // Stride the chunk order differently per thread.
        const int64_t c =
            (step * (w + 1) + w) % source.num_chunks();
        const auto chunk = source.FetchChunk(c);
        for (int64_t t = chunk->start_day;
             t < chunk->start_day + chunk->num_days; ++t) {
          for (int64_t i = 0; i < reference.num_assets(); ++i) {
            if (chunk->At(t, i) != reference.Close(t, i)) {
              ++failures[static_cast<size_t>(w)];
            }
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  for (int w = 0; w < kThreads; ++w) EXPECT_EQ(failures[w], 0);
}

}  // namespace
}  // namespace cit::market
