#ifndef CIT_TESTS_GRADCHECK_H_
#define CIT_TESTS_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "math/autograd.h"

namespace cit::testing {

// Verifies reverse-mode gradients against central finite differences.
// `build` must rebuild the graph from the current parameter values and
// return the scalar output. Works in float32, so tolerances are loose-ish
// by design.
inline void ExpectGradientsMatch(const std::function<ag::Var()>& build,
                                 std::vector<ag::Var> params,
                                 float eps = 1e-2f, float rtol = 5e-2f,
                                 float atol = 2e-3f) {
  ag::Var out = build();
  for (auto& p : params) p.ZeroGrad();
  out = build();
  out.Backward();

  for (size_t pi = 0; pi < params.size(); ++pi) {
    ag::Var& p = params[pi];
    ASSERT_TRUE(p.requires_grad());
    const math::Tensor analytic =
        p.has_grad() ? p.grad()
                     : math::Tensor::Zeros(p.value().shape());
    for (int64_t j = 0; j < p.numel(); ++j) {
      const float original = p.value()[j];
      p.mutable_value()[j] = original + eps;
      const float plus = build().value().Item();
      p.mutable_value()[j] = original - eps;
      const float minus = build().value().Item();
      p.mutable_value()[j] = original;
      const float numeric = (plus - minus) / (2.0f * eps);
      const float got = analytic[j];
      const float tol = atol + rtol * std::fabs(numeric);
      EXPECT_NEAR(got, numeric, tol)
          << "param " << pi << " element " << j;
    }
  }
}

}  // namespace cit::testing

#endif  // CIT_TESTS_GRADCHECK_H_
