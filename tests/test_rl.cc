#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "env/backtest.h"
#include "gradcheck.h"
#include "math/rng.h"
#include "market/simulator.h"
#include "rl/a2c.h"
#include "rl/ddpg.h"
#include "rl/deeptrader.h"
#include "rl/eiie.h"
#include "rl/features.h"
#include "rl/gaussian_policy.h"
#include "rl/ppo.h"
#include "rl/returns.h"
#include "rl/sarl.h"

namespace cit::rl {
namespace {

// ---- Returns ----------------------------------------------------------------

TEST(Returns, DiscountedReturnsKnownValues) {
  const auto g = DiscountedReturns({1.0, 2.0, 3.0}, 0.5, 4.0);
  // g2 = 3 + 0.5*4 = 5; g1 = 2 + 0.5*5 = 4.5; g0 = 1 + 0.5*4.5 = 3.25
  EXPECT_NEAR(g[2], 5.0, 1e-12);
  EXPECT_NEAR(g[1], 4.5, 1e-12);
  EXPECT_NEAR(g[0], 3.25, 1e-12);
}

TEST(Returns, LambdaZeroIsOneStepTd) {
  const std::vector<double> r = {1.0, 2.0, 3.0};
  const std::vector<double> v = {10.0, 11.0, 12.0, 13.0};
  const auto y = LambdaReturns(r, v, 0.9, 0.0, 5);
  for (size_t t = 0; t < r.size(); ++t) {
    EXPECT_NEAR(y[t], r[t] + 0.9 * v[t + 1], 1e-9) << t;
  }
}

TEST(Returns, LambdaOneIsNMaxStepReturn) {
  const std::vector<double> r = {1.0, 1.0, 1.0, 1.0};
  const std::vector<double> v = {0.0, 0.0, 0.0, 0.0, 5.0};
  const auto y = LambdaReturns(r, v, 1.0, 1.0, 2);
  // With lambda=1 only G^(n_max)=G^(2) contributes: r_t + r_{t+1} + V_{t+2}.
  EXPECT_NEAR(y[0], 1.0 + 1.0 + 0.0, 1e-9);
  EXPECT_NEAR(y[2], 1.0 + 1.0 + 5.0, 1e-9);
  // Past the end, bootstraps with the final value.
  EXPECT_NEAR(y[3], 1.0 + 5.0, 1e-9);
}

TEST(Returns, LambdaMixtureIsConvexCombination) {
  const std::vector<double> r = {0.5, -0.2, 0.9};
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const auto y_mid = LambdaReturns(r, v, 0.95, 0.5, 3);
  const auto y_lo = LambdaReturns(r, v, 0.95, 0.0, 3);
  const auto y_hi = LambdaReturns(r, v, 0.95, 1.0, 3);
  for (size_t t = 0; t < r.size(); ++t) {
    const double lo = std::min(y_lo[t], y_hi[t]) - 1e-9;
    const double hi = std::max(y_lo[t], y_hi[t]) + 1e-9;
    EXPECT_GE(y_mid[t], lo);
    EXPECT_LE(y_mid[t], hi);
  }
}

// Literal transcription of the truncated forward view (Eq. 6-7): for each
// t, build every G^(n) incrementally and mix. O(T*n_max) — the reference
// the production O(T) backward recursion must reproduce.
std::vector<double> LambdaReturnsBruteForce(const std::vector<double>& rewards,
                                            const std::vector<double>& values,
                                            double gamma, double lambda,
                                            int64_t n_max) {
  const int64_t len = static_cast<int64_t>(rewards.size());
  std::vector<double> targets(len, 0.0);
  for (int64_t t = 0; t < len; ++t) {
    double reward_sum = 0.0;
    double discount = 1.0;
    double mix = 0.0;
    double lambda_pow = 1.0;  // lambda^{n-1}
    for (int64_t n = 1; n <= n_max; ++n) {
      const int64_t step = t + n - 1;
      if (step < len) {
        reward_sum += discount * rewards[step];
        discount *= gamma;
      }
      const int64_t boot = std::min<int64_t>(t + n, len);
      const double g_n = reward_sum + discount * values[boot];
      if (n < n_max) {
        mix += (1.0 - lambda) * lambda_pow * g_n;
        lambda_pow *= lambda;
      } else {
        mix += lambda_pow * g_n;
      }
    }
    targets[t] = mix;
  }
  return targets;
}

TEST(Returns, LambdaReturnsMatchesBruteForceForward) {
  math::Rng rng(20260806);
  const double gammas[] = {0.0, 0.3, 0.6, 0.9, 1.0};
  const double lambdas[] = {0.0, 0.25, 0.5, 0.9, 1.0};
  for (int trial = 0; trial < 200; ++trial) {
    const int64_t len = 1 + rng.UniformInt(24);
    const int64_t n_max = 1 + rng.UniformInt(2 * len);  // straddles len
    const double gamma = gammas[rng.UniformInt(5)];
    const double lambda = lambdas[rng.UniformInt(5)];
    std::vector<double> rewards(len);
    std::vector<double> values(len + 1);
    for (auto& r : rewards) r = rng.Normal() * 2.0;
    for (auto& v : values) v = rng.Normal() * 3.0;
    const auto fast = LambdaReturns(rewards, values, gamma, lambda, n_max);
    const auto ref =
        LambdaReturnsBruteForce(rewards, values, gamma, lambda, n_max);
    ASSERT_EQ(fast.size(), ref.size());
    for (int64_t t = 0; t < len; ++t) {
      EXPECT_NEAR(fast[t], ref[t], 1e-8 * (1.0 + std::abs(ref[t])))
          << "trial=" << trial << " t=" << t << " len=" << len
          << " n_max=" << n_max << " gamma=" << gamma
          << " lambda=" << lambda;
    }
  }
}

TEST(Returns, GaeMatchesManualComputation) {
  const std::vector<double> r = {1.0, 0.0};
  const std::vector<double> v = {0.5, 0.2, 0.1};
  const auto a = GaeAdvantages(r, v, 0.9, 0.8);
  const double d1 = 0.0 + 0.9 * 0.1 - 0.2;
  const double d0 = 1.0 + 0.9 * 0.2 - 0.5;
  EXPECT_NEAR(a[1], d1, 1e-12);
  EXPECT_NEAR(a[0], d0 + 0.9 * 0.8 * d1, 1e-12);
}

// ---- Gaussian simplex policy ------------------------------------------------

TEST(GaussianPolicy, DeterministicActionIsSoftmaxOfMean) {
  ag::Var mean = ag::Var::Constant(math::Tensor({3}, {1.0f, 2.0f, 0.0f}));
  ag::Var log_std = ag::Var::Constant(math::Tensor::Zeros({3}));
  GaussianAction a = SampleGaussianSimplex(mean, log_std, nullptr);
  EXPECT_GT(a.weights[1], a.weights[0]);
  EXPECT_GT(a.weights[0], a.weights[2]);
  double total = 0.0;
  for (double w : a.weights) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GaussianPolicy, LogProbMatchesAnalyticDensity) {
  ag::Var mean = ag::Var::Constant(math::Tensor({2}, {0.5f, -0.5f}));
  ag::Var log_std = ag::Var::Constant(math::Tensor({2}, {0.0f, 0.7f}));
  math::Tensor raw({2}, {1.0f, 0.0f});
  const float lp = GaussianLogProb(mean, log_std, raw).value().Item();
  auto norm_lp = [](float x, float mu, float sigma) {
    const float z = (x - mu) / sigma;
    return -0.5f * z * z - std::log(sigma) -
           0.5f * std::log(2.0f * static_cast<float>(M_PI));
  };
  const float expected =
      norm_lp(1.0f, 0.5f, 1.0f) + norm_lp(0.0f, -0.5f, std::exp(0.7f));
  EXPECT_NEAR(lp, expected, 1e-4f);
}

TEST(GaussianPolicy, LogProbGradientMovesMeanTowardAction) {
  ag::Var mean = ag::Var::Param(math::Tensor::Zeros({2}));
  ag::Var log_std = ag::Var::Constant(math::Tensor::Zeros({2}));
  math::Tensor raw({2}, {1.0f, -1.0f});
  GaussianLogProb(mean, log_std, raw).Backward();
  // d logp / d mu = (raw - mu) / sigma^2 = raw here.
  EXPECT_NEAR(mean.grad()[0], 1.0f, 1e-5f);
  EXPECT_NEAR(mean.grad()[1], -1.0f, 1e-5f);
}

TEST(GaussianPolicy, EntropyGrowsWithLogStd) {
  ag::Var small = ag::Var::Constant(math::Tensor::Full({3}, -1.0f));
  ag::Var big = ag::Var::Constant(math::Tensor::Full({3}, 0.5f));
  EXPECT_LT(GaussianEntropy(small).value().Item(),
            GaussianEntropy(big).value().Item());
}

TEST(GaussianPolicy, SampledActionsAverageNearSoftmaxMean) {
  math::Rng rng(3);
  ag::Var mean = ag::Var::Constant(math::Tensor({2}, {1.0f, 0.0f}));
  ag::Var log_std = ag::Var::Constant(math::Tensor::Full({2}, -2.0f));
  double acc = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    acc += SampleGaussianSimplex(mean, log_std, &rng).weights[0];
  }
  const double det = SampleGaussianSimplex(mean, log_std, nullptr).weights[0];
  EXPECT_NEAR(acc / n, det, 0.05);
}

TEST(GaussianPolicy, CollapsedLogStdKeepsLogProbAndGradsFinite) {
  // exp(log_std) underflows to exactly 0 in float below log_std ~ -87.3.
  // Pre-clamp, the z-score divided by zero: an Inf log-prob whose backward
  // pass NaN'd every policy gradient. The clamp keeps both sides finite.
  ag::Var mean = ag::Var::Param(math::Tensor({2}, {0.1f, -0.1f}));
  ag::Var log_std = ag::Var::Param(math::Tensor::Full({2}, -200.0f));
  math::Tensor raw({2}, {0.3f, -0.2f});
  ag::Var lp = GaussianLogProb(mean, log_std, raw);
  EXPECT_TRUE(std::isfinite(lp.value().Item()));
  lp.Backward();
  for (int64_t j = 0; j < 2; ++j) {
    EXPECT_TRUE(std::isfinite(mean.grad()[j])) << j;
    EXPECT_TRUE(std::isfinite(log_std.grad()[j])) << j;
  }
  // Sampling with a collapsed std must also produce a finite log-prob
  // (pre-clamp: raw == mean exactly, then z = 0/0 = NaN).
  math::Rng rng(17);
  const GaussianAction a = SampleGaussianSimplex(mean, log_std, &rng);
  EXPECT_TRUE(std::isfinite(a.log_prob.value().Item()));
}

TEST(GaussianPolicy, ExplodedLogStdKeepsLogProbAndGradsFinite) {
  // The mirror failure: exp(log_std) overflows to +Inf above ~88.7, and
  // the backward pass multiplied a zero local gradient by that Inf (0 *
  // Inf = NaN). The upper clamp caps std at a large finite value.
  ag::Var mean = ag::Var::Param(math::Tensor({2}, {0.5f, -0.5f}));
  ag::Var log_std = ag::Var::Param(math::Tensor::Full({2}, 200.0f));
  math::Tensor raw({2}, {1.0f, 0.0f});
  ag::Var lp = GaussianLogProb(mean, log_std, raw);
  EXPECT_TRUE(std::isfinite(lp.value().Item()));
  lp.Backward();
  for (int64_t j = 0; j < 2; ++j) {
    EXPECT_TRUE(std::isfinite(mean.grad()[j])) << j;
    EXPECT_TRUE(std::isfinite(log_std.grad()[j])) << j;
  }
}

TEST(GaussianPolicy, GradcheckAtExtremeButUncollapsedLogStd) {
  // Inside the clamp's identity interval the gradients must still match
  // finite differences, even at stds far from the usual ~e^0 regime.
  for (const float ls : {-4.0f, 3.0f}) {
    ag::Var mean = ag::Var::Param(math::Tensor({2}, {0.1f, -0.1f}));
    ag::Var log_std = ag::Var::Param(math::Tensor::Full({2}, ls));
    math::Tensor raw({2}, {0.12f, -0.11f});
    cit::testing::ExpectGradientsMatch(
        [&] { return GaussianLogProb(mean, log_std, raw); },
        {mean, log_std}, /*eps=*/5e-3f);
  }
}

// ---- Features ---------------------------------------------------------------

market::PricePanel SmallPanel() {
  market::MarketConfig cfg;
  cfg.num_assets = 4;
  cfg.train_days = 160;
  cfg.test_days = 60;
  cfg.seed = 77;
  return market::SimulateMarket(cfg);
}

TEST(Features, NormalizedWindowAnchorsAtCurrentDay) {
  auto panel = SmallPanel();
  const int64_t day = 50, window = 8;
  math::Tensor w = NormalizedWindow(panel, day, window);
  EXPECT_EQ(w.shape(), (math::Shape{4, 1, window}));
  // Last element is scale * (p/p - 1) = 0.
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(w.At({i, 0, window - 1}), 0.0f);
  }
}

TEST(Features, BandWindowsSumToNormalizedWindow) {
  auto panel = SmallPanel();
  const int64_t day = 60, window = 16;
  math::Tensor full = NormalizedWindow(panel, day, window);
  const auto bands = HorizonBandWindows(panel, day, window, 3);
  ASSERT_EQ(bands.size(), 3u);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t k = 0; k < window; ++k) {
      float total = 0.0f;
      for (const auto& b : bands) total += b.At({i, 0, k});
      EXPECT_NEAR(total, full.At({i, 0, k}), 1e-4f);
    }
  }
}

TEST(Features, OneHot) {
  math::Tensor t = OneHot(2, 5);
  EXPECT_FLOAT_EQ(t[2], 1.0f);
  EXPECT_FLOAT_EQ(t.Sum(), 1.0f);
}

// ---- Agent smoke tests (tiny budgets) ---------------------------------------

RlTrainConfig TinyConfig() {
  RlTrainConfig cfg;
  cfg.window = 8;
  cfg.train_steps = 12;
  cfg.rollout_len = 6;
  cfg.hidden = 8;
  cfg.seed = 5;
  return cfg;
}

TEST(A2c, TrainAndBacktestProducesFiniteWealth) {
  auto panel = SmallPanel();
  A2cAgent agent(panel.num_assets(), TinyConfig());
  const auto curve = agent.Train(panel, 4);
  EXPECT_FALSE(curve.empty());
  const auto result = env::RunTestBacktest(agent, panel, 8);
  EXPECT_TRUE(std::isfinite(result.wealth.back()));
  EXPECT_GT(result.wealth.back(), 0.0);
}

TEST(Ppo, TrainAndBacktest) {
  auto panel = SmallPanel();
  PpoAgent::PpoConfig cfg;
  static_cast<RlTrainConfig&>(cfg) = TinyConfig();
  cfg.epochs = 2;
  PpoAgent agent(panel.num_assets(), cfg);
  agent.Train(panel, 4);
  const auto result = env::RunTestBacktest(agent, panel, 8);
  EXPECT_GT(result.wealth.back(), 0.0);
}

TEST(Ddpg, TrainAndBacktest) {
  auto panel = SmallPanel();
  DdpgAgent::DdpgConfig cfg;
  static_cast<RlTrainConfig&>(cfg) = TinyConfig();
  cfg.train_steps = 40;
  cfg.warmup_steps = 10;
  cfg.batch_size = 8;
  DdpgAgent agent(panel.num_assets(), cfg);
  agent.Train(panel, 4);
  const auto result = env::RunTestBacktest(agent, panel, 8);
  EXPECT_GT(result.wealth.back(), 0.0);
}

TEST(Eiie, LearnsPlantedWinnerAsset) {
  // One asset strongly outperforms; after training EIIE should overweight
  // it at test time.
  math::Rng rng(9);
  market::PricePanel panel(240, 3);
  std::vector<double> price(3, 100.0);
  for (int64_t t = 0; t < 240; ++t) {
    for (int64_t i = 0; i < 3; ++i) {
      const double drift = (i == 1) ? 0.004 : -0.002;
      if (t > 0) price[i] *= std::exp(drift + 0.005 * rng.Normal());
      panel.SetClose(t, i, price[i]);
    }
  }
  panel.set_train_end(200);
  EiieAgent::EiieConfig cfg;
  static_cast<RlTrainConfig&>(cfg) = TinyConfig();
  cfg.train_steps = 150;
  EiieAgent agent(3, cfg);
  agent.Train(panel, 4);
  agent.Reset();
  const auto w = agent.DecideWeights(panel, 210);
  EXPECT_GT(w[1], 0.34);  // beats uniform weight on the winner
}

TEST(Sarl, PredictorLearnsMomentumSignal) {
  // Strong per-asset momentum: predictor should separate the trending-up
  // asset from the trending-down one.
  math::Rng rng(10);
  market::PricePanel panel(300, 2);
  double p0 = 100.0, p1 = 100.0;
  for (int64_t t = 0; t < 300; ++t) {
    if (t > 0) {
      p0 *= std::exp(0.004 + 0.002 * rng.Normal());
      p1 *= std::exp(-0.004 + 0.002 * rng.Normal());
    }
    panel.SetClose(t, 0, p0);
    panel.SetClose(t, 1, p1);
  }
  panel.set_train_end(260);
  RlTrainConfig cfg = TinyConfig();
  cfg.train_steps = 30;
  SarlAgent agent(2, cfg);
  agent.Train(panel, 4);
  const math::Tensor preds = agent.PredictMovement(panel, 270);
  EXPECT_GT(preds[0], preds[1]);
}

TEST(DeepTrader, RiskAppetiteIsBoundedAndWealthFinite) {
  auto panel = SmallPanel();
  DeepTraderAgent::DeepTraderConfig cfg;
  static_cast<RlTrainConfig&>(cfg) = TinyConfig();
  cfg.train_steps = 30;
  DeepTraderAgent agent(panel.num_assets(), cfg);
  agent.Train(panel, 4);
  const double rho = agent.RiskAppetite(panel, panel.train_end() + 5);
  EXPECT_GT(rho, 0.0);
  EXPECT_LT(rho, 1.0);
  const auto result = env::RunTestBacktest(agent, panel, 8);
  EXPECT_GT(result.wealth.back(), 0.0);
}

}  // namespace
}  // namespace cit::rl
