#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "env/backtest.h"
#include "market/simulator.h"
#include "math/rng.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rl/a2c.h"

namespace cit {
namespace {

// Restores the previous telemetry-enabled state on scope exit so a failing
// assertion cannot leak an enabled flag into later tests.
class TelemetryGuard {
 public:
  explicit TelemetryGuard(bool on) : saved_(obs::Enabled()) {
    obs::SetEnabled(on);
  }
  ~TelemetryGuard() { obs::SetEnabled(saved_); }

 private:
  bool saved_;
};

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n)
      : saved_(ThreadPool::Global().num_threads()) {
    ThreadPool::Global().SetNumThreads(n);
  }
  ~ThreadCountGuard() { ThreadPool::Global().SetNumThreads(saved_); }

 private:
  int saved_;
};

// Minimal strict JSON validator — enough to prove the snapshot lines and
// the chrome://tracing document are well-formed without a JSON library.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool Number() {
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    std::strtod(begin, &end);
    if (end == begin) return false;
    pos_ += static_cast<size_t>(end - begin);
    return true;
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\\') {
        pos_ += 2;  // escaped char (\uXXXX hex digits pass as plain chars)
        continue;
      }
      ++pos_;
      if (c == '"') return true;
    }
    return false;  // unterminated
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Value() {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot read " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---- Instruments ------------------------------------------------------------

TEST(Obs, DisabledTelemetryIsNoop) {
  // Default state: compiled in but runtime-disabled (or compiled out
  // entirely) — no instrument may record anything.
  ASSERT_FALSE(obs::Enabled());
  auto& c = obs::Registry::Global().GetCounter("test.noop_counter");
  auto& g = obs::Registry::Global().GetGauge("test.noop_gauge");
  auto& h = obs::Registry::Global().GetHistogram("test.noop_hist");
  c.Reset();
  g.Reset();
  h.Reset();
  c.Add(42);
  g.Set(3.5);
  h.Record(1000);
  EXPECT_EQ(c.Total(), 0u);
  EXPECT_FALSE(g.ever_set());
  EXPECT_EQ(h.Get().count, 0u);
}

TEST(Obs, CounterAccumulatesAcrossPoolThreads) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with CIT_OBS=OFF";
  TelemetryGuard telemetry(true);
  ThreadCountGuard threads(4);
  auto& c = obs::Registry::Global().GetCounter("test.sharded_counter");
  c.Reset();
  constexpr int64_t kN = 10000;
  ThreadPool::Global().ParallelFor(0, kN, /*grain=*/64,
                                   [&](int64_t lo, int64_t hi) {
                                     for (int64_t i = lo; i < hi; ++i) {
                                       c.Add(1);
                                     }
                                   });
  // Per-thread shards must merge back to the exact total.
  EXPECT_EQ(c.Total(), static_cast<uint64_t>(kN));
}

TEST(Obs, GaugeStoresLastValueAndResets) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with CIT_OBS=OFF";
  TelemetryGuard telemetry(true);
  auto& g = obs::Registry::Global().GetGauge("test.gauge");
  g.Reset();
  EXPECT_FALSE(g.ever_set());
  g.Set(1.25);
  g.Set(-7.5);
  EXPECT_TRUE(g.ever_set());
  EXPECT_EQ(g.Get(), -7.5);
  g.Reset();
  EXPECT_FALSE(g.ever_set());
}

TEST(Obs, HistogramBucketsMeanAndQuantiles) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with CIT_OBS=OFF";
  TelemetryGuard telemetry(true);
  auto& h = obs::Registry::Global().GetHistogram("test.hist");
  h.Reset();
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 1000ull}) h.Record(v);
  const auto snap = h.Get();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1006u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_NEAR(snap.Mean(), 1006.0 / 5.0, 1e-12);
  // Median sample is 2, which lands in the [2, 4) bucket: upper bound 4.
  EXPECT_LE(snap.ApproxQuantile(0.5), 4u);
  // The top sample (1000) lands in [512, 1024).
  EXPECT_GE(snap.ApproxQuantile(1.0), 1000u);
  EXPECT_LE(snap.ApproxQuantile(1.0), 1024u);
}

TEST(Obs, RegistryReturnsStableReferences) {
  auto& a = obs::Registry::Global().GetCounter("test.stable");
  auto& b = obs::Registry::Global().GetCounter("test.stable");
  EXPECT_EQ(&a, &b);
}

// ---- Snapshots and traces ---------------------------------------------------

TEST(Obs, SnapshotJsonIsWellFormed) {
  const std::string json = obs::Registry::Global().SnapshotJson();
  JsonValidator v(json);
  EXPECT_TRUE(v.Valid()) << json;
  EXPECT_NE(json.find("\"ts_us\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_us\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// Pulls the integer value of `"key":<digits>` out of a snapshot line;
// fails the test if the field is missing or not a bare integer.
uint64_t JsonU64Field(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << json;
  if (at == std::string::npos) return 0;
  size_t i = at + needle.size();
  uint64_t v = 0;
  bool any = false;
  while (i < json.size() && json[i] >= '0' && json[i] <= '9') {
    v = v * 10 + static_cast<uint64_t>(json[i] - '0');
    ++i;
    any = true;
  }
  EXPECT_TRUE(any) << key << " is not an integer in " << json;
  return v;
}

// Snapshots carry both clocks: ts_us from steady_clock (durations) and
// wall_us from system_clock (cross-process correlation). wall_us must be
// a plausible Unix-epoch stamp, and both must be monotone across two
// snapshots taken in order.
TEST(Obs, SnapshotStampsBothClocks) {
  const std::string first = obs::Registry::Global().SnapshotJson();
  const std::string second = obs::Registry::Global().SnapshotJson();
  const uint64_t ts1 = JsonU64Field(first, "ts_us");
  const uint64_t ts2 = JsonU64Field(second, "ts_us");
  const uint64_t wall1 = JsonU64Field(first, "wall_us");
  const uint64_t wall2 = JsonU64Field(second, "wall_us");
  // 2023-11-14 in microseconds; anything smaller means the stamp is not
  // wall time (e.g. a steady_clock value leaked into the field).
  EXPECT_GT(wall1, uint64_t{1700000000} * 1000000) << first;
  EXPECT_GE(ts2, ts1);
  EXPECT_GE(wall2, wall1);
  // And the two clocks are not the same source.
  EXPECT_NE(wall1, ts1);
}

TEST(Obs, SnapshotJsonReportsRecordedValues) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with CIT_OBS=OFF";
  TelemetryGuard telemetry(true);
  CIT_OBS_COUNT("test.snap_counter", 3);
  CIT_OBS_COUNT("test.snap_counter", 4);
  CIT_OBS_GAUGE("test.snap_gauge", 2.5);
  const std::string json = obs::Registry::Global().SnapshotJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"test.snap_counter\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.snap_gauge\":2.5"), std::string::npos) << json;
}

TEST(Obs, TraceWriterProducesValidChromeTracingJson) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with CIT_OBS=OFF";
  TelemetryGuard telemetry(true);
  const std::string path = ::testing::TempDir() + "/trace_unit.json";
  std::remove(path.c_str());
  obs::TraceWriter::Global().Start();
  for (int i = 0; i < 3; ++i) {
    CIT_OBS_SPAN("test.trace_span");
  }
  ASSERT_TRUE(obs::TraceWriter::Global().Stop(path));
  const std::string json = ReadFileOrDie(path);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("test.trace_span"), std::string::npos);
}

TEST(Obs, TelemetrySessionWritesSnapshotLines) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "CIT_OBS=OFF: TelemetrySession is inert";
  }
  const std::string path = ::testing::TempDir() + "/metrics_lines.jsonl";
  std::remove(path.c_str());
  {
    obs::TelemetryConfig cfg;
    cfg.enabled = true;
    cfg.metrics_path = path;
    cfg.snapshot_every = 1;
    obs::TelemetrySession session(cfg);
    session.Tick(0);
    session.Tick(1);
  }  // dtor appends the final snapshot
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_TRUE(JsonValidator(line).Valid()) << line;
    // Every archived line is stamped with both clocks (schema contract).
    EXPECT_GT(JsonU64Field(line, "wall_us"), uint64_t{1700000000} * 1000000);
    JsonU64Field(line, "ts_us");
  }
  EXPECT_GE(lines, 3);
  EXPECT_FALSE(obs::Enabled()) << "session must restore the disabled state";
}

// ---- End-to-end instrumentation ---------------------------------------------

market::PricePanel ObsPanel() {
  market::MarketConfig cfg;
  cfg.num_assets = 3;
  cfg.train_days = 80;
  cfg.test_days = 30;
  cfg.seed = 9;
  return market::SimulateMarket(cfg);
}

rl::RlTrainConfig ObsTrainConfig() {
  rl::RlTrainConfig cfg;
  cfg.window = 8;
  cfg.train_steps = 24;
  cfg.rollout_len = 8;
  cfg.hidden = 16;
  cfg.seed = 5;
  return cfg;
}

TEST(Obs, SnapshotCoversInstrumentedSubsystems) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with CIT_OBS=OFF";
  TelemetryGuard telemetry(true);
  obs::Registry::Global().ResetAll();
  auto panel = ObsPanel();
  rl::A2cAgent agent(3, ObsTrainConfig());
  agent.Train(panel);
  env::RunTestBacktest(agent, panel, 8);
  const std::string json = obs::Registry::Global().SnapshotJson();
  EXPECT_TRUE(JsonValidator(json).Valid());
  for (const char* key :
       {"kernels.gemm_calls", "kernels.gemm_flops", "env.steps",
        "rollout.slots", "backtest.steps", "backtest.turnover",
        "train.update", "train.rollout", "train.actor_loss",
        "train.critic_grad_norm"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << "snapshot missing " << key;
  }
}

TEST(Obs, BacktestRepairedStepsCounterMatchesResult) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with CIT_OBS=OFF";
  TelemetryGuard telemetry(true);
  auto& repaired =
      obs::Registry::Global().GetCounter("backtest.repaired_steps");
  repaired.Reset();

  // Diverged policy: NaN weights on every other decision.
  class NanAgent : public env::TradingAgent {
   public:
    std::string name() const override { return "nan"; }
    std::vector<double> DecideWeights(const market::PanelView& panel,
                                      int64_t) override {
      ++calls_;
      if (calls_ % 2 == 0) {
        return std::vector<double>(panel.num_assets(), std::nan(""));
      }
      return std::vector<double>(panel.num_assets(),
                                 1.0 / panel.num_assets());
    }
    void Reset() override { calls_ = 0; }

   private:
    int64_t calls_ = 0;
  };

  auto panel = ObsPanel();
  NanAgent agent;
  env::EnvConfig cfg;
  cfg.window = 8;
  const env::BacktestResult result = env::RunBacktest(agent, panel, cfg);
  ASSERT_GT(result.repaired_steps, 0);
  EXPECT_EQ(repaired.Total(),
            static_cast<uint64_t>(result.repaired_steps));
}

// The observability contract: telemetry observes, it never perturbs.
// Training curves and backtest wealth must be bitwise identical with
// telemetry off and fully on (spans + trace + snapshots), serial and
// parallel alike.
TEST(Obs, TrainingCurveBitwiseIdenticalWithTelemetryOnAndOff) {
  auto panel = ObsPanel();
  const std::string trace_path = ::testing::TempDir() + "/curve_trace.json";
  const std::string metrics_path =
      ::testing::TempDir() + "/curve_metrics.jsonl";

  auto run = [&](bool telemetry_on) {
    rl::RlTrainConfig cfg = ObsTrainConfig();
    if (telemetry_on) {
      cfg.telemetry.enabled = true;
      cfg.telemetry.trace_path = trace_path;
      cfg.telemetry.metrics_path = metrics_path;
      cfg.telemetry.snapshot_every = 6;
    }
    rl::A2cAgent agent(3, cfg);
    std::vector<double> curve = agent.Train(panel);
    const env::BacktestResult bt = env::RunTestBacktest(agent, panel, 8);
    curve.push_back(bt.wealth.back());
    curve.push_back(bt.turnover);
    return curve;
  };

  for (const int threads : {1, 4}) {
    ThreadCountGuard guard(threads);
    std::remove(trace_path.c_str());
    std::remove(metrics_path.c_str());
    const std::vector<double> off = run(false);
    const std::vector<double> on = run(true);
    ASSERT_EQ(off.size(), on.size());
    for (size_t i = 0; i < off.size(); ++i) {
      EXPECT_EQ(off[i], on[i]) << "threads=" << threads << " i=" << i;
    }
    // The observed run must also have produced parseable artifacts
    // (compiled out, the session is inert and writes nothing).
    if (obs::kCompiledIn) {
      const std::string trace = ReadFileOrDie(trace_path);
      EXPECT_TRUE(JsonValidator(trace).Valid());
      std::ifstream metrics(metrics_path);
      ASSERT_TRUE(static_cast<bool>(metrics));
      std::string line;
      int lines = 0;
      while (std::getline(metrics, line)) {
        if (line.empty()) continue;
        ++lines;
        EXPECT_TRUE(JsonValidator(line).Valid()) << line;
      }
      EXPECT_GE(lines, 1);
    }
  }
  EXPECT_FALSE(obs::Enabled());
}

}  // namespace
}  // namespace cit
