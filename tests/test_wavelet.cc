#include "signal/wavelet.h"

#include <cmath>

#include <gtest/gtest.h>

#include "math/rng.h"
#include "signal/filters.h"

namespace cit::signal {
namespace {

std::vector<double> RandomSignal(int64_t n, uint64_t seed) {
  math::Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.Normal();
  return x;
}

TEST(HaarDwt, SingleLevelKnownCoefficients) {
  const std::vector<double> x = {1.0, 3.0, 2.0, 6.0};
  DwtCoeffs c = HaarDecompose(x, 1);
  const double s = std::sqrt(2.0);
  ASSERT_EQ(c.approx.size(), 2u);
  EXPECT_NEAR(c.approx[0], 4.0 / s * 1.0, 1e-12);  // (1+3)/sqrt2
  EXPECT_NEAR(c.approx[1], 8.0 / s, 1e-12);        // (2+6)/sqrt2
  EXPECT_NEAR(c.details[0][0], -2.0 / s, 1e-12);   // (1-3)/sqrt2
  EXPECT_NEAR(c.details[0][1], -4.0 / s, 1e-12);
}

TEST(HaarDwt, PerfectReconstructionEvenLength) {
  const auto x = RandomSignal(64, 1);
  for (int64_t levels = 1; levels <= 5; ++levels) {
    const auto y = HaarReconstruct(HaarDecompose(x, levels));
    ASSERT_EQ(y.size(), x.size());
    for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-10);
  }
}

TEST(HaarDwt, PerfectReconstructionOddLengths) {
  for (int64_t n : {3, 7, 13, 31, 57}) {
    const auto x = RandomSignal(n, n);
    const auto y = HaarReconstruct(HaarDecompose(x, 3));
    ASSERT_EQ(y.size(), x.size());
    for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-10);
  }
}

TEST(HaarDwt, RoundtripPropertyOddAndPrimeLengths) {
  // Property sweep: every odd/prime length times every level count up to
  // (and past) the maximum effective depth must reconstruct exactly. Odd
  // levels exercise the pad-with-last-sample path at every scale.
  for (int64_t n : {1, 2, 3, 5, 7, 11, 17, 19, 23, 29, 37, 41, 53, 61, 97}) {
    const auto x = RandomSignal(n, 1000 + static_cast<uint64_t>(n));
    for (int64_t levels = 1; levels <= 8; ++levels) {
      const DwtCoeffs c = HaarDecompose(x, levels);
      const auto y = HaarReconstruct(c);
      ASSERT_EQ(y.size(), x.size()) << "n=" << n << " L=" << levels;
      for (size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(y[i], x[i], 1e-9)
            << "n=" << n << " L=" << levels << " i=" << i;
      }
    }
  }
}

TEST(HaarDwt, ParsevalEnergyConservation) {
  const auto x = RandomSignal(32, 5);
  DwtCoeffs c = HaarDecompose(x, 3);
  double energy_x = 0.0;
  for (double v : x) energy_x += v * v;
  double energy_c = 0.0;
  for (double v : c.approx) energy_c += v * v;
  for (const auto& level : c.details) {
    for (double v : level) energy_c += v * v;
  }
  EXPECT_NEAR(energy_x, energy_c, 1e-9);
}

TEST(HaarDwt, Linearity) {
  const auto x = RandomSignal(16, 7);
  const auto y = RandomSignal(16, 8);
  std::vector<double> z(16);
  for (int i = 0; i < 16; ++i) z[i] = 2.0 * x[i] - 3.0 * y[i];
  DwtCoeffs cx = HaarDecompose(x, 2);
  DwtCoeffs cy = HaarDecompose(y, 2);
  DwtCoeffs cz = HaarDecompose(z, 2);
  for (size_t i = 0; i < cz.approx.size(); ++i) {
    EXPECT_NEAR(cz.approx[i], 2.0 * cx.approx[i] - 3.0 * cy.approx[i],
                1e-9);
  }
}

TEST(HaarDwt, ConstantSignalIsPureApproximation) {
  std::vector<double> x(16, 3.0);
  DwtCoeffs c = HaarDecompose(x, 3);
  for (const auto& level : c.details) {
    for (double v : level) EXPECT_NEAR(v, 0.0, 1e-12);
  }
  const auto low = ReconstructBand(c, 0);
  for (double v : low) EXPECT_NEAR(v, 3.0, 1e-12);
}

TEST(HorizonBands, SumToOriginalSignal) {
  const auto x = RandomSignal(48, 9);
  for (int64_t bands : {1, 2, 3, 5}) {
    const auto split = SplitHorizonBands(x, bands);
    ASSERT_EQ(static_cast<int64_t>(split.size()), bands);
    for (size_t i = 0; i < x.size(); ++i) {
      double total = 0.0;
      for (const auto& b : split) total += b[i];
      EXPECT_NEAR(total, x[i], 1e-9) << "bands=" << bands << " i=" << i;
    }
  }
}

TEST(HorizonBands, LowBandIsSmootherThanHighBand) {
  // Roughness = mean squared first difference. The approximation band must
  // be smoother than the finest detail band for a noisy signal.
  const auto x = RandomSignal(64, 10);
  const auto split = SplitHorizonBands(x, 3);
  auto roughness = [](const std::vector<double>& v) {
    double s = 0.0;
    for (size_t i = 1; i < v.size(); ++i) {
      s += (v[i] - v[i - 1]) * (v[i] - v[i - 1]);
    }
    return s / static_cast<double>(v.size() - 1);
  };
  EXPECT_LT(roughness(split[0]), roughness(split[2]));
}

TEST(HorizonBands, SeparatesSlowAndFastSinusoids) {
  // A slow + fast sinusoid mixture: band 0 should correlate with the slow
  // component, the last band with the fast one.
  const int64_t n = 64;
  std::vector<double> slow(n), fast(n), mix(n);
  for (int64_t i = 0; i < n; ++i) {
    slow[i] = std::sin(2.0 * M_PI * i / 32.0);
    fast[i] = 0.5 * std::cos(M_PI * i);  // Nyquist-rate alternation
    mix[i] = slow[i] + fast[i];
  }
  const auto split = SplitHorizonBands(mix, 4);
  EXPECT_GT(PearsonCorrelation(split[0], slow), 0.8);
  EXPECT_GT(PearsonCorrelation(split[3], fast), 0.8);
}

TEST(HorizonBands, TooShortSignalYieldsZeroSurplusBands) {
  std::vector<double> x = {1.0, 2.0};  // only 1 level possible
  const auto split = SplitHorizonBands(x, 4);
  ASSERT_EQ(split.size(), 4u);
  // Bands beyond the effective depth are all-zero; the sum identity holds.
  for (size_t i = 0; i < x.size(); ++i) {
    double total = 0.0;
    for (const auto& b : split) total += b[i];
    EXPECT_NEAR(total, x[i], 1e-9);
  }
  for (double v : split[3]) EXPECT_EQ(v, 0.0);
}

TEST(WaveletDenoise, RemovesSmallDetailsKeepsTrend) {
  // Trend plus tiny noise: denoising with a threshold above the noise level
  // should reduce distance to the clean trend.
  const int64_t n = 64;
  math::Rng rng(11);
  std::vector<double> trend(n), noisy(n);
  for (int64_t i = 0; i < n; ++i) {
    trend[i] = 0.1 * static_cast<double>(i);
    noisy[i] = trend[i] + 0.01 * rng.Normal();
  }
  const auto denoised = WaveletDenoise(noisy, 3, 0.05);
  double err_noisy = 0.0, err_denoised = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    err_noisy += std::fabs(noisy[i] - trend[i]);
    err_denoised += std::fabs(denoised[i] - trend[i]);
  }
  EXPECT_LT(err_denoised, err_noisy * 1.05);
}

TEST(Filters, SimpleMovingAverageWarmupAndSteadyState) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  const auto ma = SimpleMovingAverage(x, 3);
  EXPECT_NEAR(ma[0], 1.0, 1e-12);
  EXPECT_NEAR(ma[1], 1.5, 1e-12);
  EXPECT_NEAR(ma[2], 2.0, 1e-12);
  EXPECT_NEAR(ma[4], 4.0, 1e-12);
}

TEST(Filters, EmaFirstValueAndConvergence) {
  std::vector<double> x(50, 10.0);
  x[0] = 0.0;
  const auto ema = ExponentialMovingAverage(x, 0.3);
  EXPECT_NEAR(ema[0], 0.0, 1e-12);
  EXPECT_NEAR(ema[49], 10.0, 1e-4);
}

TEST(Filters, L1MedianOfSymmetricPointsIsCenter) {
  std::vector<std::vector<double>> pts = {
      {1.0, 0.0}, {-1.0, 0.0}, {0.0, 1.0}, {0.0, -1.0}};
  const auto med = L1Median(pts);
  EXPECT_NEAR(med[0], 0.0, 1e-6);
  EXPECT_NEAR(med[1], 0.0, 1e-6);
}

TEST(Filters, L1MedianRobustToOutlier) {
  // Coordinate-wise mean is dragged by the outlier; L1 median is not.
  std::vector<std::vector<double>> pts = {
      {0.0}, {0.1}, {-0.1}, {0.05}, {100.0}};
  const auto med = L1Median(pts);
  EXPECT_LT(std::fabs(med[0]), 1.0);
}

TEST(Filters, PearsonCorrelationEdgeCases) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  std::vector<double> c = {4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
  std::vector<double> flat = {5, 5, 5, 5};
  EXPECT_EQ(PearsonCorrelation(a, flat), 0.0);
}

}  // namespace
}  // namespace cit::signal
