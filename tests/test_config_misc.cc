// Coverage for configuration plumbing, naming helpers, and module
// parameter bookkeeping.
#include <cstdlib>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/env_config.h"
#include "core/backbone.h"
#include "core/config.h"
#include "nn/conv.h"
#include "nn/gru.h"
#include "nn/layers.h"

namespace cit {
namespace {

TEST(ConfigNames, BackboneKindNames) {
  EXPECT_STREQ(core::BackboneKindName(core::BackboneKind::kTcnAttention),
               "ours");
  EXPECT_STREQ(core::BackboneKindName(core::BackboneKind::kGruAttention),
               "ours(GRU)");
  EXPECT_STREQ(core::BackboneKindName(core::BackboneKind::kGru), "GRU");
  EXPECT_STREQ(core::BackboneKindName(core::BackboneKind::kMlp), "MLP");
}

TEST(ConfigNames, CreditModeNames) {
  EXPECT_STREQ(core::CreditModeName(core::CreditMode::kCounterfactual),
               "counterfactual");
  EXPECT_STREQ(core::CreditModeName(core::CreditMode::kSharedQ),
               "shared-Q");
  EXPECT_STREQ(core::CreditModeName(core::CreditMode::kDecCritic),
               "dec-critic");
}

TEST(RunScaleConfig, SeedAndStepScalesAreConsistent) {
  // Whatever the ambient scale, the helpers must return sane values.
  EXPECT_GE(ScaledSeeds(), 1);
  EXPECT_LE(ScaledSeeds(), 5);
  EXPECT_GT(ScaledStepFactor(), 0.0);
}

TEST(ModuleBookkeeping, LinearParamCount) {
  math::Rng rng(1);
  nn::Linear with_bias(7, 3, rng);
  EXPECT_EQ(with_bias.NumParams(), 7 * 3 + 3);
  nn::Linear without_bias(7, 3, rng, /*bias=*/false);
  EXPECT_EQ(without_bias.NumParams(), 7 * 3);
}

TEST(ModuleBookkeeping, ConvParamCount) {
  math::Rng rng(2);
  nn::CausalConv1d conv(2, 5, 3, 1, rng);
  EXPECT_EQ(conv.NumParams(), 5 * 2 * 3 + 5);
}

TEST(ModuleBookkeeping, GruCellParamCount) {
  math::Rng rng(3);
  nn::GruCell cell(4, 6, rng);
  // Three input projections with bias + three hidden projections without.
  EXPECT_EQ(cell.NumParams(), 3 * (4 * 6 + 6) + 3 * (6 * 6));
}

TEST(ModuleBookkeeping, ParameterNamesAreUniqueInBackbone) {
  math::Rng rng(4);
  core::ActorBackbone backbone(core::BackboneKind::kTcnAttention, 4, 8, 4,
                               2, 3, rng);
  auto params = backbone.Parameters();
  std::set<std::string> names;
  for (const auto& p : params) {
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate " << p.name;
  }
  EXPECT_EQ(names.size(), params.size());
}

TEST(ModuleBookkeeping, BackboneVariantsHaveDifferentParamCounts) {
  math::Rng rng(5);
  core::ActorBackbone tcn(core::BackboneKind::kTcnAttention, 4, 8, 4, 2, 3,
                          rng);
  core::ActorBackbone gru(core::BackboneKind::kGru, 4, 8, 4, 2, 3, rng);
  core::ActorBackbone mlp(core::BackboneKind::kMlp, 4, 8, 4, 2, 3, rng);
  EXPECT_NE(tcn.NumParams(), gru.NumParams());
  EXPECT_NE(gru.NumParams(), mlp.NumParams());
  EXPECT_GT(tcn.NumParams(), 0);
}

TEST(ConfigDefaults, CrossInsightConfigMatchesPaperConstants) {
  core::CrossInsightConfig cfg;
  EXPECT_EQ(cfg.num_policies, 5);   // the paper's best setting (Table IV)
  EXPECT_EQ(cfg.n_step, 5);         // "maximum n for n-step return is 5"
  EXPECT_DOUBLE_EQ(cfg.weight_decay, 1e-5);  // paper's L2 regularizer
  EXPECT_EQ(cfg.credit, core::CreditMode::kCounterfactual);
  EXPECT_EQ(cfg.backbone, core::BackboneKind::kTcnAttention);
}

}  // namespace
}  // namespace cit
