// Crash-safe checkpoint/resume contract. Three layers are exercised:
//
//  1. The CITC1 container itself: atomic round trips, and rejection of
//     every corruption class (bad magic, truncation, trailing bytes,
//     duplicate sections, bit flips) with a clean Status.
//  2. Optimizer/meta/progress sections: bitwise state round trips and
//     validate-then-commit loading that leaves the target untouched on
//     any error.
//  3. The flagship guarantee: a training run killed at update k and
//     resumed from its checkpoint produces a learning curve and final
//     weights bitwise identical to the uninterrupted run — across
//     different CIT_NUM_THREADS on either side of the kill.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/config.h"
#include "core/trader.h"
#include "env/portfolio_env.h"
#include "market/simulator.h"
#include "math/autograd.h"
#include "math/rng.h"
#include "nn/checkpoint.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "obs/telemetry.h"
#include "rl/a2c.h"
#include "rl/config.h"
#include "rl/ddpg.h"
#include "rl/ppo.h"
#include "rl/rollout.h"

namespace cit {
namespace {

using math::Rng;
using math::Tensor;

// Restores the global pool's thread count when a test scope exits.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n)
      : saved_(ThreadPool::Global().num_threads()) {
    ThreadPool::Global().SetNumThreads(n);
  }
  ~ThreadCountGuard() { ThreadPool::Global().SetNumThreads(saved_); }

 private:
  int saved_;
};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

market::PricePanel TinyPanel(uint64_t seed = 21) {
  market::MarketConfig cfg;
  cfg.num_assets = 4;
  cfg.train_days = 80;
  cfg.test_days = 30;
  cfg.seed = seed;
  return market::SimulateMarket(cfg);
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::vector<uint8_t> bytes;
  EXPECT_TRUE(nn::ReadFileBytes(path, &bytes).ok()) << path;
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ---- Container round trips and rejection ------------------------------------

TEST(CheckpointContainer, RoundTripSections) {
  nn::CheckpointWriter writer;
  writer.AddSection("alpha", {1, 2, 3, 4});
  writer.AddSection("empty", {});
  const std::string path = TempPath("container_roundtrip.ckpt");
  ASSERT_TRUE(writer.WriteAtomic(path).ok());

  auto opened = nn::CheckpointReader::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  const nn::CheckpointReader& ckpt = opened.value();
  EXPECT_TRUE(ckpt.HasSection("alpha"));
  EXPECT_TRUE(ckpt.HasSection("empty"));
  EXPECT_FALSE(ckpt.HasSection("beta"));

  auto section = ckpt.Section("alpha");
  ASSERT_TRUE(section.ok());
  nn::ByteReader r = section.value();
  EXPECT_EQ(r.remaining(), 4u);
  uint8_t payload[4];
  r.Bytes(payload, sizeof(payload));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(payload[0], 1);
  EXPECT_EQ(payload[3], 4);

  auto missing = ckpt.Section("beta");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(CheckpointContainer, MissingFileIsIoError) {
  auto opened = nn::CheckpointReader::Open("/nonexistent/state.ckpt");
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIoError);
}

TEST(CheckpointContainer, RejectsBadMagic) {
  const std::string path = TempPath("bad_magic.ckpt");
  WriteAll(path, {'n', 'o', 't', ' ', 'a', ' ', 'c', 'k', 'p', 't'});
  auto opened = nn::CheckpointReader::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(opened.status().message().find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointContainer, RejectsEveryTruncation) {
  nn::CheckpointWriter writer;
  writer.AddSection("one", {10, 20, 30});
  writer.AddSection("two", {40, 50, 60, 70, 80});
  const std::string path = TempPath("truncated.ckpt");
  ASSERT_TRUE(writer.WriteAtomic(path).ok());
  const std::vector<uint8_t> full = ReadAll(path);

  // Any strict prefix must be rejected: the section count pins how much
  // data the container promises.
  for (size_t len = 0; len < full.size(); ++len) {
    WriteAll(path, std::vector<uint8_t>(full.begin(), full.begin() + len));
    auto opened = nn::CheckpointReader::Open(path);
    ASSERT_FALSE(opened.ok()) << "prefix of " << len << " bytes accepted";
    ASSERT_EQ(opened.status().code(), StatusCode::kInvalidArgument) << len;
  }
  std::remove(path.c_str());
}

TEST(CheckpointContainer, RejectsTrailingBytes) {
  nn::CheckpointWriter writer;
  writer.AddSection("one", {1, 2, 3});
  const std::string path = TempPath("trailing.ckpt");
  ASSERT_TRUE(writer.WriteAtomic(path).ok());
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes.push_back(0);
  WriteAll(path, bytes);
  auto opened = nn::CheckpointReader::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("trailing"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointContainer, RejectsDuplicateSections) {
  nn::CheckpointWriter writer;
  writer.AddSection("dup", {1});
  writer.AddSection("dup", {2});
  const std::string path = TempPath("duplicate.ckpt");
  ASSERT_TRUE(writer.WriteAtomic(path).ok());
  auto opened = nn::CheckpointReader::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("duplicate"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointContainer, RejectsEmptySectionNameOnWrite) {
  nn::CheckpointWriter writer;
  writer.AddSection("", {1});
  const std::string path = TempPath("empty_name.ckpt");
  const Status status = writer.WriteAtomic(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// ---- Meta section -----------------------------------------------------------

TEST(CheckpointMetaSection, MatchPassesEveryMismatchFails) {
  nn::CheckpointMeta meta;
  meta.trainer = "A2C";
  meta.num_assets = 4;
  meta.seed = 9;
  meta.arch_tag = 12;
  nn::ByteWriter w;
  nn::AppendMeta(meta, &w);

  {
    nn::ByteReader r(w.bytes());
    EXPECT_TRUE(nn::ValidateMeta(&r, meta).ok());
  }
  const auto expect_reject = [&](nn::CheckpointMeta expected,
                                 const char* needle) {
    nn::ByteReader r(w.bytes());
    const Status status = nn::ValidateMeta(&r, expected);
    ASSERT_FALSE(status.ok()) << needle;
    EXPECT_NE(status.message().find(needle), std::string::npos)
        << status.message();
  };
  nn::CheckpointMeta wrong = meta;
  wrong.trainer = "PPO";
  expect_reject(wrong, "trainer");
  wrong = meta;
  wrong.num_assets = 5;
  expect_reject(wrong, "asset");
  wrong = meta;
  wrong.seed = 10;
  expect_reject(wrong, "seed");
  wrong = meta;
  wrong.arch_tag = 13;
  expect_reject(wrong, "architecture");
}

// ---- Training progress section ----------------------------------------------

TEST(TrainProgressSection, RoundTripAndValidation) {
  rl::TrainProgress progress;
  progress.next_update = 7;
  progress.curve = {0.25, -0.5, 1.75};
  progress.curve_acc = 0.125;
  progress.curve_n = 3;
  nn::ByteWriter w;
  rl::AppendTrainProgress(progress, &w);

  nn::ByteReader r(w.bytes());
  rl::TrainProgress back;
  ASSERT_TRUE(rl::ParseTrainProgress(&r, &back).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.next_update, 7);
  EXPECT_EQ(back.curve, progress.curve);
  EXPECT_EQ(back.curve_acc, 0.125);
  EXPECT_EQ(back.curve_n, 3);

  // A negative update counter is structurally valid bytes but semantic
  // nonsense; the parser must reject it.
  nn::ByteWriter bad;
  bad.I64(-1);
  bad.DoubleVec({});
  bad.F64(0.0);
  bad.I64(0);
  nn::ByteReader br(bad.bytes());
  rl::TrainProgress scratch;
  EXPECT_FALSE(rl::ParseTrainProgress(&br, &scratch).ok());
}

// ---- Optimizer state sections -----------------------------------------------

// One optimizer step over a tiny Mlp so Adam/SGD slots are populated.
void PopulateGradsAndStep(nn::Mlp* mlp, nn::Optimizer* opt, uint64_t seed) {
  Rng rng(seed);
  Tensor x = Tensor::Uniform({4}, rng, -1, 1);
  ag::Var loss = ag::Sum(ag::Square(mlp->Forward(ag::Var::Constant(x))));
  opt->ZeroGrad();
  loss.Backward();
  opt->Step();
}

std::vector<uint8_t> OptimizerStateBytes(const nn::Optimizer& opt) {
  nn::ByteWriter w;
  opt.SaveState(&w);
  return w.bytes();
}

TEST(OptimizerState, AdamRoundTripIsBitwise) {
  Rng rng(11);
  nn::Mlp a({4, 8, 2}, rng);
  nn::Mlp b({4, 8, 2}, rng);  // twin architecture, different init
  nn::Adam oa(nn::ParamVars(a), 1e-2f);
  nn::Adam ob(nn::ParamVars(b), 1e-2f);
  PopulateGradsAndStep(&a, &oa, 1);
  PopulateGradsAndStep(&a, &oa, 2);

  const std::vector<uint8_t> state = OptimizerStateBytes(oa);
  nn::ByteReader r(state);
  ASSERT_TRUE(ob.LoadState(&r).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(OptimizerStateBytes(ob), state);
}

TEST(OptimizerState, FreshAdamAbsentSlotsRoundTrip) {
  Rng rng(12);
  nn::Mlp a({4, 8, 2}, rng);
  nn::Mlp b({4, 8, 2}, rng);
  nn::Adam oa(nn::ParamVars(a), 1e-2f);
  nn::Adam ob(nn::ParamVars(b), 1e-2f);
  // Never stepped: every moment slot is lazily uninitialized and must
  // round-trip as absent.
  const std::vector<uint8_t> state = OptimizerStateBytes(oa);
  nn::ByteReader r(state);
  ASSERT_TRUE(ob.LoadState(&r).ok());
  EXPECT_EQ(OptimizerStateBytes(ob), state);
}

TEST(OptimizerState, SgdMomentumRoundTrip) {
  Rng rng(13);
  nn::Mlp a({4, 8, 2}, rng);
  nn::Mlp b({4, 8, 2}, rng);
  nn::Sgd oa(nn::ParamVars(a), 1e-2f, /*momentum=*/0.9f);
  nn::Sgd ob(nn::ParamVars(b), 1e-2f, /*momentum=*/0.9f);
  PopulateGradsAndStep(&a, &oa, 3);

  const std::vector<uint8_t> state = OptimizerStateBytes(oa);
  nn::ByteReader r(state);
  ASSERT_TRUE(ob.LoadState(&r).ok());
  EXPECT_EQ(OptimizerStateBytes(ob), state);
}

TEST(OptimizerState, RejectsShapeMismatchWithoutCommitting) {
  Rng rng(14);
  nn::Mlp a({4, 8, 2}, rng);
  nn::Mlp b({4, 9, 2}, rng);  // same tensor count, different shapes
  nn::Adam oa(nn::ParamVars(a), 1e-2f);
  nn::Adam ob(nn::ParamVars(b), 1e-2f);
  PopulateGradsAndStep(&a, &oa, 4);
  const std::vector<uint8_t> before = OptimizerStateBytes(ob);

  const std::vector<uint8_t> foreign = OptimizerStateBytes(oa);
  nn::ByteReader r(foreign);
  const Status status = ob.LoadState(&r);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("shape"), std::string::npos)
      << status.message();
  // Failed loads must leave the optimizer untouched.
  EXPECT_EQ(OptimizerStateBytes(ob), before);
}

TEST(OptimizerState, RejectsNonFiniteSlotValue) {
  ag::Var param = ag::Var::Param(Tensor::Full({2}, 0.5f));
  nn::Adam opt({param}, 1e-2f);
  ag::Var loss = ag::Sum(ag::Square(param));
  loss.Backward();
  opt.Step();

  // Layout: i64 t, u64 slot count, u8 present flag, u64 ndim, i64 dim,
  // then the first moment's floats.
  std::vector<uint8_t> state = OptimizerStateBytes(opt);
  const size_t float_off = 8 + 8 + 1 + 8 + 8;
  ASSERT_GE(state.size(), float_off + sizeof(float));
  const float nan = std::nanf("");
  std::memcpy(state.data() + float_off, &nan, sizeof(nan));

  nn::ByteReader r(state);
  nn::Optimizer::StagedState staged;
  const Status status = opt.ParseState(&r, &staged);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("non-finite"), std::string::npos)
      << status.message();
}

TEST(OptimizerState, RejectsNegativeStepCounter) {
  ag::Var param = ag::Var::Param(Tensor::Full({2}, 0.5f));
  nn::Adam opt({param}, 1e-2f);
  nn::ByteWriter w;
  w.I64(-3);  // step counter can never be negative
  w.U64(1);   // m slots: one, absent
  w.U8(0);
  w.U64(1);   // v slots: one, absent
  w.U8(0);
  nn::ByteReader r(w.bytes());
  nn::Optimizer::StagedState staged;
  EXPECT_FALSE(opt.ParseState(&r, &staged).ok());
}

// ---- Env cursor -------------------------------------------------------------

TEST(EnvCursor, RoundTripAndValidation) {
  auto panel = TinyPanel();
  env::EnvConfig cfg;
  cfg.window = 8;
  env::PortfolioEnv env(&panel, cfg);
  env.Reset();
  const std::vector<double> weights(4, 0.25);
  for (int i = 0; i < 3; ++i) env.Step(weights);

  const env::PortfolioEnv::EnvCursor cursor = env.Cursor();
  for (int i = 0; i < 2; ++i) env.Step(weights);
  ASSERT_NE(env.current_day(), cursor.day);
  ASSERT_TRUE(env.RestoreCursor(cursor).ok());
  EXPECT_EQ(env.current_day(), cursor.day);
  EXPECT_EQ(env.wealth(), cursor.wealth);
  EXPECT_EQ(env.previous_weights(), cursor.held);

  // Invalid cursors are rejected and leave the env untouched.
  const int64_t day_before = env.current_day();
  env::PortfolioEnv::EnvCursor bad = cursor;
  bad.day = cfg.window - 1;  // before the first full window
  EXPECT_FALSE(env.RestoreCursor(bad).ok());
  bad = cursor;
  bad.wealth = -1.0;
  EXPECT_FALSE(env.RestoreCursor(bad).ok());
  bad = cursor;
  bad.held = {0.5, 0.5};  // wrong asset count
  EXPECT_FALSE(env.RestoreCursor(bad).ok());
  bad = cursor;
  bad.held = {2.0, -1.0, 0.0, 0.0};  // not a valid portfolio
  EXPECT_FALSE(env.RestoreCursor(bad).ok());
  EXPECT_EQ(env.current_day(), day_before);
}

// ---- Trainer-level identity checks ------------------------------------------

rl::RlTrainConfig TinyA2cConfig() {
  rl::RlTrainConfig cfg;
  cfg.window = 8;
  cfg.hidden = 12;
  cfg.train_steps = 6;
  cfg.rollout_len = 6;
  cfg.rollouts_per_update = 3;
  cfg.seed = 5;
  return cfg;
}

TEST(CheckpointIdentity, WrongTrainerSeedOrArchIsRejected) {
  auto panel = TinyPanel();
  const std::string path = TempPath("identity.ckpt");
  rl::A2cAgent source(panel.num_assets(), TinyA2cConfig());
  ASSERT_TRUE(source.SaveCheckpoint(path).ok());

  {  // Same hyper-parameters, different algorithm.
    rl::PpoAgent::PpoConfig cfg;
    static_cast<rl::RlTrainConfig&>(cfg) = TinyA2cConfig();
    rl::PpoAgent wrong(panel.num_assets(), cfg);
    const Status status = wrong.LoadCheckpoint(path);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("trainer"), std::string::npos);
  }
  {  // Different seed: the resumed RNG streams would diverge silently.
    rl::RlTrainConfig cfg = TinyA2cConfig();
    cfg.seed = 6;
    rl::A2cAgent wrong(panel.num_assets(), cfg);
    EXPECT_FALSE(wrong.LoadCheckpoint(path).ok());
  }
  {  // Different architecture.
    rl::RlTrainConfig cfg = TinyA2cConfig();
    cfg.hidden = 16;
    rl::A2cAgent wrong(panel.num_assets(), cfg);
    EXPECT_FALSE(wrong.LoadCheckpoint(path).ok());
  }
  std::remove(path.c_str());
}

// ---- Corruption fuzz --------------------------------------------------------

TEST(CheckpointFuzz, BitFlipsAreAlwaysRejectedAndNeverCommit) {
  ThreadCountGuard guard(2);
  const std::string good_path = TempPath("fuzz_good.ckpt");
  const std::string bad_path = TempPath("fuzz_bad.ckpt");
  auto panel = TinyPanel();
  rl::RlTrainConfig cfg = TinyA2cConfig();
  cfg.train_steps = 2;
  rl::A2cAgent agent(panel.num_assets(), cfg);
  agent.Train(panel, 2);
  ASSERT_TRUE(agent.SaveCheckpoint(good_path).ok());
  const std::vector<uint8_t> good = ReadAll(good_path);
  ASSERT_FALSE(good.empty());

  // Flip one bit of every byte (rotating which bit): the per-section CRC
  // plus structural validation must reject every variant cleanly.
  std::vector<uint8_t> mutated = good;
  for (size_t i = 0; i < good.size(); ++i) {
    mutated[i] = good[i] ^ static_cast<uint8_t>(1u << (i % 8));
    WriteAll(bad_path, mutated);
    const Status status = agent.LoadCheckpoint(bad_path);
    ASSERT_FALSE(status.ok()) << "bit flip at byte " << i << " accepted";
    mutated[i] = good[i];
  }

  // None of the thousands of failed loads may have committed anything:
  // re-serializing the agent reproduces the original file bit for bit.
  const std::string resaved = TempPath("fuzz_resaved.ckpt");
  ASSERT_TRUE(agent.SaveCheckpoint(resaved).ok());
  EXPECT_EQ(ReadAll(resaved), good);

  // And the pristine file still loads.
  EXPECT_TRUE(agent.LoadCheckpoint(good_path).ok());
  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
  std::remove(resaved.c_str());
}

TEST(CheckpointFuzz, TruncationsAreAlwaysRejectedAndNeverCommit) {
  ThreadCountGuard guard(2);
  const std::string good_path = TempPath("trunc_good.ckpt");
  const std::string bad_path = TempPath("trunc_bad.ckpt");
  auto panel = TinyPanel();
  rl::RlTrainConfig cfg = TinyA2cConfig();
  cfg.train_steps = 2;
  rl::A2cAgent agent(panel.num_assets(), cfg);
  agent.Train(panel, 2);
  ASSERT_TRUE(agent.SaveCheckpoint(good_path).ok());
  const std::vector<uint8_t> good = ReadAll(good_path);

  for (size_t len = 0; len < good.size(); len += 7) {
    WriteAll(bad_path, std::vector<uint8_t>(good.begin(), good.begin() + len));
    const Status status = agent.LoadCheckpoint(bad_path);
    ASSERT_FALSE(status.ok()) << "prefix of " << len << " bytes accepted";
  }
  const std::string resaved = TempPath("trunc_resaved.ckpt");
  ASSERT_TRUE(agent.SaveCheckpoint(resaved).ok());
  EXPECT_EQ(ReadAll(resaved), good);
  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
  std::remove(resaved.c_str());
}

// ---- Kill-at-k bitwise resume -----------------------------------------------
//
// The flagship guarantee: a run that checkpoints at update k and a fresh
// process that resumes from that checkpoint must together reproduce the
// uninterrupted run exactly — same learning curve, same final weights and
// optimizer moments (compared as serialized checkpoint bytes). The three
// phases deliberately run under different thread counts, so the guarantee
// is exercised across CIT_NUM_THREADS on either side of the kill.

template <typename Agent, typename Config>
void ExpectKillResumeBitwise(const market::PricePanel& panel,
                             const Config& base_cfg, int64_t curve_points,
                             int64_t checkpoint_at, const std::string& tag) {
  const std::string mid_ckpt = TempPath(tag + "_mid.ckpt");
  const std::string base_state = TempPath(tag + "_base.ckpt");
  const std::string resumed_state = TempPath(tag + "_resumed.ckpt");

  // Uninterrupted reference run.
  std::vector<double> base_curve;
  std::vector<uint8_t> base_bytes;
  {
    ThreadCountGuard guard(1);
    Agent agent(panel.num_assets(), base_cfg);
    base_curve = agent.Train(panel, curve_points);
    ASSERT_TRUE(agent.SaveCheckpoint(base_state).ok());
    base_bytes = ReadAll(base_state);
  }
  ASSERT_FALSE(base_curve.empty());
  for (double v : base_curve) ASSERT_TRUE(std::isfinite(v));

  // The "killed" run: identical config, but it leaves its state at update
  // `checkpoint_at` behind. It also runs to completion, which doubles as
  // the check that writing checkpoints never perturbs training.
  {
    ThreadCountGuard guard(2);
    Config cfg = base_cfg;
    cfg.checkpoint_every = checkpoint_at;
    cfg.checkpoint_path = mid_ckpt;
    Agent agent(panel.num_assets(), cfg);
    const std::vector<double> curve = agent.Train(panel, curve_points);
    ASSERT_EQ(curve.size(), base_curve.size());
    for (size_t i = 0; i < curve.size(); ++i) {
      EXPECT_EQ(curve[i], base_curve[i]) << tag << " checkpointed run, " << i;
    }
  }

  // A fresh process resumes from the mid-run checkpoint.
  {
    ThreadCountGuard guard(4);
    Config cfg = base_cfg;
    cfg.resume_from = mid_ckpt;
    Agent agent(panel.num_assets(), cfg);
    const std::vector<double> curve = agent.Train(panel, curve_points);
    ASSERT_EQ(curve.size(), base_curve.size());
    for (size_t i = 0; i < curve.size(); ++i) {
      EXPECT_EQ(curve[i], base_curve[i]) << tag << " resumed run, " << i;
    }
    ASSERT_TRUE(agent.SaveCheckpoint(resumed_state).ok());
    EXPECT_EQ(ReadAll(resumed_state), base_bytes)
        << tag << ": resumed final state differs from uninterrupted run";
  }
  std::remove(mid_ckpt.c_str());
  std::remove(base_state.c_str());
  std::remove(resumed_state.c_str());
}

TEST(CheckpointResume, CitKillResumeBitwise) {
  auto panel = TinyPanel();
  core::CrossInsightConfig cfg;
  cfg.num_policies = 2;
  cfg.window = 8;
  cfg.feature_dim = 4;
  cfg.tcn_blocks = 1;
  cfg.head_hidden = 8;
  cfg.critic_hidden = 12;
  cfg.train_steps = 4;
  cfg.rollout_len = 6;
  cfg.rollouts_per_update = 3;
  cfg.seed = 3;
  ExpectKillResumeBitwise<core::CrossInsightTrader>(
      panel, cfg, /*curve_points=*/4, /*checkpoint_at=*/3, "cit");
}

TEST(CheckpointResume, A2cKillResumeBitwise) {
  auto panel = TinyPanel();
  ExpectKillResumeBitwise<rl::A2cAgent>(panel, TinyA2cConfig(),
                                        /*curve_points=*/3,
                                        /*checkpoint_at=*/4, "a2c");
}

TEST(CheckpointResume, PpoKillResumeBitwise) {
  auto panel = TinyPanel();
  rl::PpoAgent::PpoConfig cfg;
  static_cast<rl::RlTrainConfig&>(cfg) = TinyA2cConfig();
  cfg.train_steps = 4;
  cfg.epochs = 2;
  cfg.seed = 7;
  ExpectKillResumeBitwise<rl::PpoAgent>(panel, cfg, /*curve_points=*/2,
                                        /*checkpoint_at=*/3, "ppo");
}

TEST(CheckpointResume, DdpgKillResumeBitwise) {
  // DDPG is the hard case: on top of the shared sections its checkpoint
  // must capture the sequential RNG, the replay buffer, and the env
  // cursor for the resumed run to walk the same trajectory.
  auto panel = TinyPanel();
  rl::DdpgAgent::DdpgConfig cfg;
  static_cast<rl::RlTrainConfig&>(cfg) = TinyA2cConfig();
  cfg.train_steps = 40;
  cfg.warmup_steps = 10;
  cfg.batch_size = 8;
  cfg.seed = 9;
  ExpectKillResumeBitwise<rl::DdpgAgent>(panel, cfg, /*curve_points=*/4,
                                         /*checkpoint_at=*/30, "ddpg");
}

// ---- Directory durability of the atomic writer -------------------------------

// Restores the obs runtime switch no matter how the test exits.
class TelemetryEnabledScope {
 public:
  TelemetryEnabledScope() : prev_(obs::Enabled()) { obs::SetEnabled(true); }
  ~TelemetryEnabledScope() { obs::SetEnabled(prev_); }

 private:
  bool prev_;
};

// A bad parent-directory path must surface as an error from the write
// path, and the post-rename directory-fsync stage specifically must report
// its own failures (it used to swallow them) and count them.
TEST(AtomicWrite, BadParentDirectorySurfacesErrorAndCounts) {
  TelemetryEnabledScope telemetry;
  obs::Registry::Global().ResetAll();
  obs::Counter& errors =
      obs::Registry::Global().GetCounter("checkpoint.dir_fsync_errors");

  const char payload[] = "x";
  const std::string missing_dir = TempPath("no_such_ckpt_dir") + "/w.bin";
  EXPECT_FALSE(nn::AtomicWriteFile(missing_dir, payload, 1).ok());

  // The fsync stage itself: parent missing, and parent-is-a-regular-file
  // (ENOTDIR). Both must yield IoError, not silent success.
  const Status gone = nn::FsyncParentDir(missing_dir);
  EXPECT_EQ(gone.code(), StatusCode::kIoError);
  EXPECT_NE(gone.message().find("parent directory"), std::string::npos);
  const std::string plain_file = TempPath("ckpt_fsync_plain_file");
  WriteAll(plain_file, {0x1});
  const Status notdir = nn::FsyncParentDir(plain_file + "/child.bin");
  EXPECT_EQ(notdir.code(), StatusCode::kIoError);
  EXPECT_EQ(errors.Total(), 2u);

  // The happy path is unaffected and counts nothing.
  const std::string good = TempPath("ckpt_fsync_good.bin");
  EXPECT_TRUE(nn::AtomicWriteFile(good, payload, 1).ok());
  EXPECT_EQ(errors.Total(), 2u);
}

}  // namespace
}  // namespace cit
