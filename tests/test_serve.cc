// Serving daemon tests, in three layers:
//
//  1. Protocol: the pure parse/format layer — every malformed request
//     class yields a typed error, and "%.17g" weight formatting round
//     trips doubles bitwise (the property the soak gate rests on).
//  2. Adversarial clients against a stub model: malformed and oversized
//     lines, abrupt disconnects mid-response, half-open connections, slow
//     writers and non-reading pipeliners hitting the deadline. Every case
//     must end in a protocol error or a clean drop — never a stall, never
//     a crash — and the server must keep serving fresh clients after.
//  3. The flagship soak: concurrent clients streaming decisions through
//     the real CrossInsightTrader while a checkpoint hot-swap lands
//     mid-soak. Zero dropped or corrupt responses, and every weight
//     vector bitwise identical to DecideWeights called directly on the
//     same inputs — before and after the swap, keyed by the generation
//     each response carries.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/env_config.h"
#include "core/config.h"
#include "core/trader.h"
#include "market/panel.h"
#include "obs/telemetry.h"
#include "serve/cit_model.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace cit {
namespace {

bool Fast() { return GetRunScale() == RunScale::kFast; }

std::string SockPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---- Protocol ----------------------------------------------------------------

TEST(ServeProtocol, ParsesEveryCommand) {
  EXPECT_EQ(serve::ParseRequest("ping").kind, serve::Request::kPing);
  EXPECT_EQ(serve::ParseRequest("stats").kind, serve::Request::kStats);

  const serve::Request swap = serve::ParseRequest("swap /tmp/w.bin");
  EXPECT_EQ(swap.kind, serve::Request::kSwap);
  EXPECT_EQ(swap.path, "/tmp/w.bin");

  const serve::Request d = serve::ParseRequest("decide 2 3 1 2 3 4 5 6\r");
  ASSERT_EQ(d.kind, serve::Request::kDecide);
  EXPECT_EQ(d.rows, 2);
  EXPECT_EQ(d.cols, 3);
  ASSERT_EQ(d.prices.size(), 6u);
  EXPECT_EQ(d.prices[0], 1.0);
  EXPECT_EQ(d.prices[5], 6.0);
}

TEST(ServeProtocol, EveryMalformedRequestIsTypedNotFatal) {
  struct Case {
    const char* line;
    const char* code;
  };
  const Case cases[] = {
      {"", "proto"},
      {"   ", "proto"},
      {"frobnicate", "proto"},
      {"ping now", "proto"},
      {"stats --all", "proto"},
      {"swap", "proto"},
      {"swap a b", "proto"},
      {"decide", "proto"},
      {"decide 2", "proto"},
      {"decide x 2 1 2 3 4", "proto"},
      {"decide 2 2 1 2 3", "proto"},        // too few prices
      {"decide 2 2 1 2 3 4 5", "proto"},    // too many prices
      {"decide 2 2 1 2 3 4x", "proto"},     // trailing junk in a number
      {"decide -2 2 1 2 3 4", "proto"},
      {"decide 0 2", "proto"},
      {"decide 99999999999999999999 2 1", "proto"},  // i64 overflow
      {"decide 2097152 2097152 1", "input"},         // cell-limit breach
      {"decide 1 2 1 0", "input"},                   // non-positive price
      {"decide 1 2 1 -3", "input"},
      // Spellings strtod would have accepted but the wire grammar never
      // meant: non-finite words, hex floats, locale-ish commas, dangling
      // exponents, doubled signs, and out-of-double-range magnitudes.
      // These are malformed tokens (proto), not plausible-but-invalid
      // market data (input).
      {"decide 1 2 1 nan", "proto"},
      {"decide 1 2 1 inf", "proto"},
      {"decide 1 2 1 infinity", "proto"},
      {"decide 1 2 1 1,5", "proto"},
      {"decide 1 2 1 0x1p3", "proto"},
      {"decide 1 2 1 1e", "proto"},
      {"decide 1 2 1 ++1", "proto"},
      {"decide 1 2 1 1e309", "proto"},
  };
  for (const Case& c : cases) {
    const serve::Request r = serve::ParseRequest(c.line);
    EXPECT_EQ(r.kind, serve::Request::kBad) << "\"" << c.line << "\"";
    EXPECT_EQ(r.error_code, c.code) << "\"" << c.line << "\"";
    EXPECT_FALSE(r.error.empty());
  }
}

TEST(ServeProtocol, WeightFormattingRoundTripsBitwise) {
  const std::vector<double> weights = {
      1.0 / 3.0,  0.1,        M_PI,          1e-308, 5e-324 /* denormal */,
      0.25,       1.0 - 1e-16, 0.123456789012345678};
  const std::string line = serve::FormatDecideResponse(7, weights);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  uint64_t gen = 0;
  std::vector<double> parsed;
  ASSERT_TRUE(serve::ParseDecideResponse(
      std::string_view(line).substr(0, line.size() - 1), &gen, &parsed));
  EXPECT_EQ(gen, 7u);
  ASSERT_EQ(parsed.size(), weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_EQ(std::memcmp(&parsed[i], &weights[i], sizeof(double)), 0)
        << "weight " << i << " did not round trip bitwise";
  }
}

// ---- Test client -------------------------------------------------------------

// A deliberately simple blocking client with an explicit receive timeout:
// the tests, not the client, decide how patient to be.
class Client {
 public:
  explicit Client(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() { Close(); }

  bool ok() const { return fd_ >= 0; }

  bool Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads until '\n' (stripped) or timeout/EOF. Returns false on both
  // failures; eof() distinguishes them.
  bool RecvLine(std::string* line, int timeout_ms = 5000) {
    for (;;) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      pollfd p{fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, timeout_ms);
      if (rc == 0) return false;  // timeout
      if (rc < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) {
        eof_ = true;
        return false;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        eof_ = true;  // reset etc.: the peer is gone
        return false;
      }
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  // Blocks until the server closes this connection (drop detection).
  bool WaitForClose(int timeout_ms) {
    std::string line;
    while (RecvLine(&line, timeout_ms)) {
    }
    return eof_;
  }

  bool eof() const { return eof_; }
  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string buf_;
  bool eof_ = false;
};

std::string DecideLine(int64_t rows, int64_t cols,
                       const std::vector<double>& prices) {
  std::string line = "decide " + std::to_string(rows) + " " +
                     std::to_string(cols);
  for (double p : prices) {
    line.push_back(' ');
    serve::AppendDouble(&line, p);
  }
  line.push_back('\n');
  return line;
}

// ---- Stub model for daemon-behavior tests ------------------------------------

// Deterministic, instant, and swap-aware: weights are the last row
// normalized to sum 1, shifted by a bias read from the weights file (a
// single ASCII double). Missing/unparseable files must fail the load.
class StubModel : public serve::ServedModel {
 public:
  explicit StubModel(int64_t assets) : assets_(assets) {}

  int64_t num_assets() const override { return assets_; }
  int64_t min_days() const override { return 1; }

  Result<std::vector<double>> Decide(
      const market::PricePanel& panel) override {
    const int64_t last = panel.num_days() - 1;
    double sum = 0;
    for (int64_t a = 0; a < assets_; ++a) sum += panel.Close(last, a);
    std::vector<double> w(static_cast<size_t>(assets_));
    for (int64_t a = 0; a < assets_; ++a) {
      w[static_cast<size_t>(a)] = panel.Close(last, a) / sum + bias_;
    }
    return w;
  }

  Status LoadWeights(const std::string& path) override {
    FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) return Status::IoError("cannot open " + path);
    double bias = 0;
    const int got = std::fscanf(f, "%lf", &bias);
    std::fclose(f);
    if (got != 1) return Status::IoError("not a stub weights file: " + path);
    bias_ = bias;
    return Status::OK();
  }

 private:
  int64_t assets_;
  double bias_ = 0;
};

serve::ModelFactory StubFactory(int64_t assets) {
  return [assets] { return std::make_unique<StubModel>(assets); };
}

void WriteTextFile(const std::string& path, const std::string& text) {
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr) << path;
  std::fputs(text.c_str(), f);
  std::fclose(f);
}

// ---- Daemon behavior ---------------------------------------------------------

TEST(ServeDaemon, StartRejectsBadConfigAndFailedFactory) {
  {
    serve::ServerConfig cfg;  // empty socket path
    serve::Server server(cfg, StubFactory(2));
    EXPECT_FALSE(server.Start().ok());
  }
  {
    serve::ServerConfig cfg;
    cfg.socket_path = SockPath("serve_nofactory.sock");
    cfg.workers = 2;
    serve::Server server(cfg, [] {
      return std::unique_ptr<serve::ServedModel>();  // factory fails
    });
    EXPECT_FALSE(server.Start().ok());
    EXPECT_FALSE(server.running());
  }
}

TEST(ServeDaemon, PingDecideStatsAndErrorsOnOneConnection) {
  serve::ServerConfig cfg;
  cfg.socket_path = SockPath("serve_basic.sock");
  serve::Server server(cfg, StubFactory(2));
  ASSERT_TRUE(server.Start().ok());

  Client c(cfg.socket_path);
  ASSERT_TRUE(c.ok());
  std::string line;

  ASSERT_TRUE(c.Send("ping\n"));
  ASSERT_TRUE(c.RecvLine(&line));
  EXPECT_EQ(line, "ok pong 0");

  // A protocol error answers with err and keeps the connection usable.
  ASSERT_TRUE(c.Send("what\n"));
  ASSERT_TRUE(c.RecvLine(&line));
  EXPECT_EQ(line.rfind("err proto", 0), 0u) << line;

  // An input error likewise (wrong asset count for the model).
  ASSERT_TRUE(c.Send(DecideLine(1, 3, {1, 2, 3})));
  ASSERT_TRUE(c.RecvLine(&line));
  EXPECT_EQ(line.rfind("err input", 0), 0u) << line;

  ASSERT_TRUE(c.Send(DecideLine(1, 2, {1.0, 3.0})));
  ASSERT_TRUE(c.RecvLine(&line));
  uint64_t gen = 99;
  std::vector<double> w;
  ASSERT_TRUE(serve::ParseDecideResponse(line, &gen, &w)) << line;
  EXPECT_EQ(gen, 0u);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], 0.25);
  EXPECT_EQ(w[1], 0.75);

  // stats is one line of registry JSON.
  ASSERT_TRUE(c.Send("stats\n"));
  ASSERT_TRUE(c.RecvLine(&line));
  EXPECT_NE(line.find("\"counters\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"wall_us\""), std::string::npos) << line;

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(ServeDaemon, PipelinedRequestsAnswerInOrder) {
  serve::ServerConfig cfg;
  cfg.socket_path = SockPath("serve_pipeline.sock");
  serve::Server server(cfg, StubFactory(2));
  ASSERT_TRUE(server.Start().ok());

  Client c(cfg.socket_path);
  ASSERT_TRUE(c.ok());
  std::string burst;
  const int kN = 32;
  for (int i = 0; i < kN; ++i) {
    burst += DecideLine(1, 2, {1.0, 1.0 + i});
  }
  burst += "ping\n";
  ASSERT_TRUE(c.Send(burst));
  std::string line;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(c.RecvLine(&line)) << "response " << i;
    uint64_t gen;
    std::vector<double> w;
    ASSERT_TRUE(serve::ParseDecideResponse(line, &gen, &w)) << line;
    ASSERT_EQ(w.size(), 2u);
    EXPECT_EQ(w[0], 1.0 / (2.0 + i)) << "response " << i;
  }
  ASSERT_TRUE(c.RecvLine(&line));
  EXPECT_EQ(line, "ok pong 0");
}

TEST(ServeDaemon, FourClientsShareOneWorkerWithoutStalling) {
  serve::ServerConfig cfg;
  cfg.socket_path = SockPath("serve_mux.sock");
  cfg.workers = 1;  // multiplexing, not one-connection-at-a-time
  serve::Server server(cfg, StubFactory(2));
  ASSERT_TRUE(server.Start().ok());

  // All four connect and hold their connections open; requests interleave.
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<Client>(cfg.socket_path));
    ASSERT_TRUE(clients.back()->ok());
  }
  for (int round = 0; round < 3; ++round) {
    for (auto& c : clients) ASSERT_TRUE(c->Send("ping\n"));
    for (auto& c : clients) {
      std::string line;
      ASSERT_TRUE(c->RecvLine(&line)) << "a held connection starved another";
      EXPECT_EQ(line, "ok pong 0");
    }
  }
}

TEST(ServeDaemon, OversizedLineGetsErrorThenClose) {
  serve::ServerConfig cfg;
  cfg.socket_path = SockPath("serve_oversize.sock");
  cfg.max_line = 256;
  serve::Server server(cfg, StubFactory(2));
  ASSERT_TRUE(server.Start().ok());

  Client c(cfg.socket_path);
  ASSERT_TRUE(c.ok());
  // Feed an endless unterminated line; the server must cut it off at the
  // cap with a typed error, never buffer without bound.
  const std::string junk(1024, 'a');
  ASSERT_TRUE(c.Send(junk));
  std::string line;
  ASSERT_TRUE(c.RecvLine(&line));
  EXPECT_EQ(line.rfind("err oversized", 0), 0u) << line;
  EXPECT_TRUE(c.WaitForClose(2000));

  // And a complete-but-huge line is refused the same way.
  Client c2(cfg.socket_path);
  ASSERT_TRUE(c2.ok());
  ASSERT_TRUE(c2.Send(junk.substr(0, 300) + "\n"));
  ASSERT_TRUE(c2.RecvLine(&line));
  EXPECT_EQ(line.rfind("err oversized", 0), 0u) << line;

  // The server still serves fresh clients.
  Client c3(cfg.socket_path);
  ASSERT_TRUE(c3.ok());
  ASSERT_TRUE(c3.Send("ping\n"));
  ASSERT_TRUE(c3.RecvLine(&line));
  EXPECT_EQ(line, "ok pong 0");
}

TEST(ServeDaemon, AbruptDisconnectsNeverKillTheServer) {
  serve::ServerConfig cfg;
  cfg.socket_path = SockPath("serve_abrupt.sock");
  serve::Server server(cfg, StubFactory(2));
  ASSERT_TRUE(server.Start().ok());

  // Vanish mid-request, vanish right after a burst of requests (responses
  // hit a closed peer: EPIPE path), and vanish with an empty connection.
  {
    Client c(cfg.socket_path);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.Send("decide 1 2 1"));  // no newline: partial request
    c.Close();
  }
  {
    Client c(cfg.socket_path);
    ASSERT_TRUE(c.ok());
    std::string burst;
    for (int i = 0; i < 64; ++i) burst += DecideLine(1, 2, {1.0, 2.0});
    ASSERT_TRUE(c.Send(burst));
    c.Close();  // responses are now in flight toward a dead peer
  }
  {
    Client c(cfg.socket_path);
    ASSERT_TRUE(c.ok());
    c.Close();
  }

  // A client that half-closes after sending still gets all its answers.
  {
    Client c(cfg.socket_path);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.Send("ping\nping\n"));
    c.ShutdownWrite();
    std::string line;
    ASSERT_TRUE(c.RecvLine(&line));
    EXPECT_EQ(line, "ok pong 0");
    ASSERT_TRUE(c.RecvLine(&line));
    EXPECT_EQ(line, "ok pong 0");
    EXPECT_TRUE(c.WaitForClose(2000));
  }

  Client after(cfg.socket_path);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after.Send("ping\n"));
  std::string line;
  ASSERT_TRUE(after.RecvLine(&line));
  EXPECT_EQ(line, "ok pong 0");
}

TEST(ServeDaemon, HalfOpenConnectionIsDroppedAfterIdleTimeout) {
  serve::ServerConfig cfg;
  cfg.socket_path = SockPath("serve_idle.sock");
  cfg.idle_timeout_ms = 100;
  serve::Server server(cfg, StubFactory(2));
  ASSERT_TRUE(server.Start().ok());

  Client silent(cfg.socket_path);
  ASSERT_TRUE(silent.ok());
  EXPECT_TRUE(silent.WaitForClose(3000)) << "half-open connection not dropped";

  // An active client on the same server is not idle-dropped while talking.
  Client active(cfg.socket_path);
  ASSERT_TRUE(active.ok());
  std::string line;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(active.Send("ping\n"));
    ASSERT_TRUE(active.RecvLine(&line));
    EXPECT_EQ(line, "ok pong 0");
  }
}

TEST(ServeDaemon, StalledPartialRequestHitsTheDeadline) {
  serve::ServerConfig cfg;
  cfg.socket_path = SockPath("serve_stall.sock");
  cfg.request_deadline_ms = 100;
  cfg.idle_timeout_ms = 0;  // isolate the deadline path
  serve::Server server(cfg, StubFactory(2));
  ASSERT_TRUE(server.Start().ok());

  Client c(cfg.socket_path);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.Send("decide 1 2 1.0"));  // never sends the newline
  EXPECT_TRUE(c.WaitForClose(3000)) << "stalled request not deadline-dropped";
}

TEST(ServeDaemon, NonReadingPipelinerIsDroppedNotWaitedOn) {
  serve::ServerConfig cfg;
  cfg.socket_path = SockPath("serve_slowread.sock");
  cfg.request_deadline_ms = 150;
  cfg.idle_timeout_ms = 0;
  cfg.sndbuf_bytes = 2048;  // shrink the kernel buffer so backpressure bites
  serve::Server server(cfg, StubFactory(64));
  ASSERT_TRUE(server.Start().ok());

  Client c(cfg.socket_path);
  ASSERT_TRUE(c.ok());
  // Hundreds of decides, each answering ~1.3 KB, with the client never
  // reading: the server's flush must hit EAGAIN, stop progressing, and
  // drop the connection at the deadline instead of blocking its worker.
  std::vector<double> prices(64);
  for (int i = 0; i < 64; ++i) prices[static_cast<size_t>(i)] = 1.0 + i;
  const std::string req = DecideLine(1, 64, prices);
  std::string burst;
  for (int i = 0; i < 400; ++i) burst += req;
  (void)c.Send(burst);  // may itself fail once the server drops us — fine
  // Genuinely refuse to read past the deadline: the moment this client
  // reads, the flush would progress and legitimately reset the clock.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_TRUE(c.WaitForClose(5000)) << "write-stalled peer not dropped";

  // The worker survived and serves the next client promptly.
  Client after(cfg.socket_path);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after.Send("ping\n"));
  std::string line;
  ASSERT_TRUE(after.RecvLine(&line));
  EXPECT_EQ(line, "ok pong 0");
}

TEST(ServeDaemon, SwapValidatesBeforeCommitting) {
  serve::ServerConfig cfg;
  cfg.socket_path = SockPath("serve_swapfail.sock");
  serve::Server server(cfg, StubFactory(2));
  ASSERT_TRUE(server.Start().ok());

  Client c(cfg.socket_path);
  ASSERT_TRUE(c.ok());
  std::string line;

  // A bad path is rejected; the generation must not advance.
  ASSERT_TRUE(c.Send("swap " + SockPath("no_such_weights.bin") + "\n"));
  ASSERT_TRUE(c.RecvLine(&line));
  EXPECT_EQ(line.rfind("err model", 0), 0u) << line;
  EXPECT_EQ(server.generation(), 0u);

  // A good stub weights file commits and bumps the generation; decisions
  // pick up the new bias.
  const std::string wpath = SockPath("stub_weights.txt");
  WriteTextFile(wpath, "0.5\n");
  ASSERT_TRUE(c.Send("swap " + wpath + "\n"));
  ASSERT_TRUE(c.RecvLine(&line));
  EXPECT_EQ(line, "ok swapped 1");
  EXPECT_EQ(server.generation(), 1u);

  ASSERT_TRUE(c.Send(DecideLine(1, 2, {1.0, 3.0})));
  ASSERT_TRUE(c.RecvLine(&line));
  uint64_t gen;
  std::vector<double> w;
  ASSERT_TRUE(serve::ParseDecideResponse(line, &gen, &w)) << line;
  EXPECT_EQ(gen, 1u);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], 0.75);  // 0.25 + bias
  EXPECT_EQ(w[1], 1.25);
}

// ---- The bitwise hot-swap soak ----------------------------------------------

core::CrossInsightConfig SoakConfig() {
  core::CrossInsightConfig cfg;
  cfg.num_policies = 2;
  cfg.window = 8;
  cfg.feature_dim = 4;
  cfg.tcn_blocks = 1;
  cfg.head_hidden = 8;
  cfg.critic_hidden = 8;
  return cfg;
}

// A deterministic positive price window, distinct per `variant`.
market::PricePanel SoakWindow(int64_t rows, int64_t assets, int variant) {
  market::PricePanel panel(rows, assets);
  for (int64_t d = 0; d < rows; ++d) {
    for (int64_t a = 0; a < assets; ++a) {
      const double t = static_cast<double>(d + 1) +
                       0.37 * static_cast<double>(variant);
      panel.SetClose(d, a,
                     10.0 + static_cast<double>(a) +
                         std::sin(t * (1.0 + 0.1 * static_cast<double>(a))));
    }
  }
  panel.set_train_end(rows);
  return panel;
}

// What the daemon must reproduce bitwise: a stateless decision from a
// library-held trader on the same window.
std::vector<double> LibraryDecide(core::CrossInsightTrader& trader,
                                  const market::PricePanel& panel) {
  trader.ClearFeatureCache();
  trader.Reset();
  return trader.DecideWeights(panel, panel.num_days() - 1);
}

TEST(ServeSoak, ConcurrentDecidesBitwiseAcrossHotSwap) {
  const int64_t kAssets = 4;
  const int kWindows = 5;
  const int requests_per_client = Fast() ? 6 : 16;
  const int kPostSwap = 5;
  const core::CrossInsightConfig cfg = SoakConfig();

  // Two distinct checkpoints: A (seed 11) serves first, B (seed 22) is
  // hot-swapped in mid-soak.
  const std::string model_a = SockPath("soak_model_a.bin");
  const std::string model_b = SockPath("soak_model_b.bin");
  {
    core::CrossInsightConfig seeded = cfg;
    seeded.seed = 11;
    core::CrossInsightTrader a(kAssets, seeded);
    ASSERT_TRUE(a.SaveModel(model_a).ok());
    seeded.seed = 22;
    core::CrossInsightTrader b(kAssets, seeded);
    ASSERT_TRUE(b.SaveModel(model_b).ok());
  }

  // Reference decisions for every window under both generations, computed
  // directly through the library.
  std::vector<market::PricePanel> windows;
  for (int k = 0; k < kWindows; ++k) {
    windows.push_back(SoakWindow(cfg.window, kAssets, k));
  }
  std::vector<std::vector<double>> expect_a, expect_b;
  {
    core::CrossInsightTrader ref(kAssets, cfg);
    ASSERT_TRUE(ref.LoadModel(model_a).ok());
    for (const auto& w : windows) expect_a.push_back(LibraryDecide(ref, w));
    ASSERT_TRUE(ref.LoadModel(model_b).ok());
    for (const auto& w : windows) expect_b.push_back(LibraryDecide(ref, w));
  }
  // The two checkpoints must actually disagree, or the swap gate is vacuous.
  ASSERT_NE(expect_a[0], expect_b[0]);

  for (const int workers : {1, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    serve::ServerConfig scfg;
    scfg.socket_path = SockPath("serve_soak.sock");
    scfg.workers = workers;
    serve::Server server(scfg, serve::MakeCitModelFactory(kAssets, cfg, model_a));
    ASSERT_TRUE(server.Start().ok());

    std::atomic<bool> swapped{false};
    std::atomic<int> failures{0};

    auto client_main = [&](int id) {
      Client c(scfg.socket_path);
      if (!c.ok()) {
        ++failures;
        return;
      }
      auto one_request = [&](int i, bool require_gen1) {
        const int k = (id * 31 + i) % kWindows;
        std::vector<double> prices;
        for (int64_t d = 0; d < cfg.window; ++d) {
          for (int64_t a = 0; a < kAssets; ++a) {
            prices.push_back(windows[static_cast<size_t>(k)].Close(d, a));
          }
        }
        std::string line;
        if (!c.Send(DecideLine(cfg.window, kAssets, prices)) ||
            !c.RecvLine(&line, 30000)) {
          ADD_FAILURE() << "client " << id << ": dropped response " << i;
          ++failures;
          return;
        }
        uint64_t gen = 0;
        std::vector<double> got;
        if (!serve::ParseDecideResponse(line, &gen, &got)) {
          ADD_FAILURE() << "client " << id << ": corrupt response: " << line;
          ++failures;
          return;
        }
        if (require_gen1 && gen != 1) {
          ADD_FAILURE() << "client " << id << ": post-swap response still at"
                        << " generation " << gen;
          ++failures;
          return;
        }
        const std::vector<double>& want =
            gen == 0 ? expect_a[static_cast<size_t>(k)]
                     : expect_b[static_cast<size_t>(k)];
        if (got.size() != want.size()) {
          ADD_FAILURE() << "client " << id << ": weight count mismatch";
          ++failures;
          return;
        }
        for (size_t j = 0; j < want.size(); ++j) {
          if (std::memcmp(&got[j], &want[j], sizeof(double)) != 0) {
            ADD_FAILURE() << "client " << id << ": weight " << j
                          << " not bitwise identical to DecideWeights (gen "
                          << gen << ", window " << k << ")";
            ++failures;
            return;
          }
        }
      };
      for (int i = 0; i < requests_per_client; ++i) {
        one_request(i, /*require_gen1=*/false);
      }
      // Wait until the swap has been acknowledged, then every further
      // response must carry the new generation — and still match bitwise.
      while (!swapped.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      for (int i = 0; i < kPostSwap; ++i) {
        one_request(requests_per_client + i, /*require_gen1=*/true);
      }
    };

    std::vector<std::thread> clients;
    for (int id = 0; id < 4; ++id) clients.emplace_back(client_main, id);

    // Land the swap mid-soak, from its own connection.
    {
      Client admin(scfg.socket_path);
      ASSERT_TRUE(admin.ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ASSERT_TRUE(admin.Send("swap " + model_b + "\n"));
      std::string line;
      ASSERT_TRUE(admin.RecvLine(&line, 30000));
      EXPECT_EQ(line, "ok swapped 1");
    }
    swapped.store(true, std::memory_order_release);

    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(server.generation(), 1u);
    server.Stop();
  }
}

// ---- Request batching --------------------------------------------------------

// Flattens a panel into the row-major price list DecideLine expects.
std::vector<double> PanelPrices(const market::PricePanel& panel) {
  std::vector<double> prices;
  prices.reserve(static_cast<size_t>(panel.num_days() * panel.num_assets()));
  for (int64_t d = 0; d < panel.num_days(); ++d) {
    for (int64_t a = 0; a < panel.num_assets(); ++a) {
      prices.push_back(panel.Close(d, a));
    }
  }
  return prices;
}

// Four different-sized decide requests pipelined in one write must
// coalesce into one batched forward, de-interleave back in request order,
// and every response must be bitwise identical to the library's
// DecideWeights on that panel alone. A trailing ping must not overtake the
// still-queued decides.
TEST(ServeBatch, PipelinedMixedSizePanelsBatchBitwiseAndInOrder) {
  const int64_t kAssets = 4;
  const core::CrossInsightConfig cfg = SoakConfig();
  const int64_t row_counts[] = {cfg.window, cfg.window + 1, cfg.window + 3,
                                cfg.window + 5};

  std::vector<market::PricePanel> panels;
  std::vector<std::vector<double>> expect;
  {
    core::CrossInsightTrader ref(kAssets, cfg);  // same seeded init as served
    for (int k = 0; k < 4; ++k) {
      panels.push_back(SoakWindow(row_counts[k], kAssets, k));
      expect.push_back(LibraryDecide(ref, panels.back()));
    }
  }

  serve::ServerConfig scfg;
  scfg.socket_path = SockPath("serve_batch.sock");
  scfg.workers = 1;
  scfg.max_batch = 4;
  scfg.batch_window_us = 500000;  // partial batches wait; full ones don't
  serve::Server server(scfg, serve::MakeCitModelFactory(kAssets, cfg, ""));
  ASSERT_TRUE(server.Start().ok());

  obs::SetEnabled(true);

  // The burst almost always lands in one read and batches as 4; if the
  // kernel splits delivery so the first decide arrives alone, it takes the
  // lone-request fast path and the batch shrinks. Retry until a genuinely
  // batched forward (k >= 2) was observed; correctness is asserted on
  // every attempt either way.
  bool saw_batch = false;
  for (int attempt = 0; attempt < 5 && !saw_batch; ++attempt) {
    obs::Registry::Global().ResetAll();
    Client c(scfg.socket_path);
    ASSERT_TRUE(c.ok());
    std::string burst;
    for (int k = 0; k < 4; ++k) {
      burst += DecideLine(panels[static_cast<size_t>(k)].num_days(), kAssets,
                          PanelPrices(panels[static_cast<size_t>(k)]));
    }
    burst += "ping\n";
    ASSERT_TRUE(c.Send(burst));

    std::string line;
    for (int k = 0; k < 4; ++k) {
      ASSERT_TRUE(c.RecvLine(&line, 10000)) << "response " << k;
      uint64_t gen = 99;
      std::vector<double> got;
      ASSERT_TRUE(serve::ParseDecideResponse(line, &gen, &got)) << line;
      EXPECT_EQ(gen, 0u);
      const std::vector<double>& want = expect[static_cast<size_t>(k)];
      ASSERT_EQ(got.size(), want.size()) << "response " << k;
      for (size_t j = 0; j < want.size(); ++j) {
        EXPECT_EQ(std::memcmp(&got[j], &want[j], sizeof(double)), 0)
            << "response " << k << " weight " << j
            << " not bitwise identical to DecideWeights";
      }
    }
    // The ping was pipelined after the decides and must answer last.
    ASSERT_TRUE(c.RecvLine(&line, 10000));
    EXPECT_EQ(line, "ok pong 0");
    saw_batch = obs::Registry::Global()
                    .GetCounter("serve.batched_requests")
                    .Total() > 0;
  }
  obs::SetEnabled(false);
  EXPECT_TRUE(saw_batch)
      << "five pipelined bursts never coalesced into a batched forward";
  server.Stop();
}

// Inline replies interleaved with decides that are genuinely parked in the
// batching window must still come back in per-connection request order:
// decide, pong, decide, pong — the pongs are ready instantly but queue
// behind the pending decide slots instead of overtaking them.
TEST(ServeBatch, InlineRepliesNeverOvertakeQueuedDecides) {
  const int64_t kAssets = 4;
  const core::CrossInsightConfig cfg = SoakConfig();
  market::PricePanel panel = SoakWindow(cfg.window, kAssets, 1);
  std::vector<double> want;
  {
    core::CrossInsightTrader ref(kAssets, cfg);
    want = LibraryDecide(ref, panel);
  }

  serve::ServerConfig scfg;
  scfg.socket_path = SockPath("serve_batch_order.sock");
  scfg.workers = 1;
  scfg.max_batch = 8;          // two decides are a partial batch...
  scfg.batch_window_us = 100000;  // ...that waits in the window
  serve::Server server(scfg, serve::MakeCitModelFactory(kAssets, cfg, ""));
  ASSERT_TRUE(server.Start().ok());

  Client c(scfg.socket_path);
  ASSERT_TRUE(c.ok());
  const std::string decide =
      DecideLine(panel.num_days(), kAssets, PanelPrices(panel));
  ASSERT_TRUE(c.Send(decide + "ping\n" + decide + "ping\n"));

  std::string line;
  for (int k = 0; k < 2; ++k) {
    ASSERT_TRUE(c.RecvLine(&line, 10000)) << "decide " << k;
    uint64_t gen = 99;
    std::vector<double> got;
    ASSERT_TRUE(serve::ParseDecideResponse(line, &gen, &got))
        << "out of order at " << k << ": " << line;
    ASSERT_EQ(got.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(std::memcmp(&got[j], &want[j], sizeof(double)), 0)
          << "decide " << k << " weight " << j << " not bitwise identical";
    }
    ASSERT_TRUE(c.RecvLine(&line, 10000)) << "pong " << k;
    EXPECT_EQ(line, "ok pong 0") << "out of order at pong " << k;
  }
  server.Stop();
}

// The adversarial concurrent case: four clients submit different-sized
// panels that land inside one batching window, so one DecideBatch stacks
// heterogeneous requests. Every client must get back exactly its own
// decision, bitwise identical to the library on its own panel — at one
// worker (all four share a batch) and four (batches form per worker).
// Also exercised under TSan via the check.sh matrix ('Serve' filter).
TEST(ServeBatch, ConcurrentMixedSizeClientsDeinterleaveBitwise) {
  const int64_t kAssets = 4;
  const int kClients = 4;
  const int requests_per_client = Fast() ? 4 : 10;
  const core::CrossInsightConfig cfg = SoakConfig();

  std::vector<market::PricePanel> panels;
  std::vector<std::vector<double>> expect;
  {
    core::CrossInsightTrader ref(kAssets, cfg);
    for (int id = 0; id < kClients; ++id) {
      // One distinct window length per client: 8, 9, 11, 13 rows.
      const int64_t rows = cfg.window + (id == 0 ? 0 : 2 * id - 1);
      panels.push_back(SoakWindow(rows, kAssets, 100 + id));
      expect.push_back(LibraryDecide(ref, panels.back()));
    }
  }

  for (const int workers : {1, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    serve::ServerConfig scfg;
    scfg.socket_path = SockPath("serve_batch_mixed.sock");
    scfg.workers = workers;
    scfg.max_batch = 4;
    scfg.batch_window_us = 20000;  // wide enough for arrivals to coalesce
    serve::Server server(scfg, serve::MakeCitModelFactory(kAssets, cfg, ""));
    ASSERT_TRUE(server.Start().ok());

    std::atomic<int> failures{0};
    auto client_main = [&](int id) {
      Client c(scfg.socket_path);
      if (!c.ok()) {
        ++failures;
        return;
      }
      const market::PricePanel& panel = panels[static_cast<size_t>(id)];
      const std::vector<double>& want = expect[static_cast<size_t>(id)];
      const std::string req =
          DecideLine(panel.num_days(), kAssets, PanelPrices(panel));
      for (int i = 0; i < requests_per_client; ++i) {
        std::string line;
        if (!c.Send(req) || !c.RecvLine(&line, 30000)) {
          ADD_FAILURE() << "client " << id << ": dropped response " << i;
          ++failures;
          return;
        }
        uint64_t gen = 99;
        std::vector<double> got;
        if (!serve::ParseDecideResponse(line, &gen, &got) ||
            got.size() != want.size()) {
          ADD_FAILURE() << "client " << id << ": corrupt response: " << line;
          ++failures;
          return;
        }
        for (size_t j = 0; j < want.size(); ++j) {
          if (std::memcmp(&got[j], &want[j], sizeof(double)) != 0) {
            ADD_FAILURE() << "client " << id << ": request " << i
                          << " weight " << j
                          << " is not its own decision (de-interleave bug?)";
            ++failures;
            return;
          }
        }
      }
    };

    std::vector<std::thread> clients;
    for (int id = 0; id < kClients; ++id) clients.emplace_back(client_main, id);
    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0);
    server.Stop();
  }
}

// max_batch=1 must behave exactly like the pre-batching daemon: every
// decide takes the single-request path, pipelined bursts still answer in
// order, and nothing waits on a window.
TEST(ServeBatch, MaxBatchOneDisablesBatching) {
  serve::ServerConfig cfg;
  cfg.socket_path = SockPath("serve_batch_off.sock");
  cfg.max_batch = 1;
  cfg.batch_window_us = 1000000;  // must be irrelevant at max_batch=1
  serve::Server server(cfg, StubFactory(2));
  ASSERT_TRUE(server.Start().ok());

  obs::SetEnabled(true);
  obs::Registry::Global().ResetAll();
  Client c(cfg.socket_path);
  ASSERT_TRUE(c.ok());
  std::string burst;
  const int kN = 8;
  for (int i = 0; i < kN; ++i) burst += DecideLine(1, 2, {1.0, 1.0 + i});
  ASSERT_TRUE(c.Send(burst));
  std::string line;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(c.RecvLine(&line)) << "response " << i;
    uint64_t gen;
    std::vector<double> w;
    ASSERT_TRUE(serve::ParseDecideResponse(line, &gen, &w)) << line;
    ASSERT_EQ(w.size(), 2u);
    EXPECT_EQ(w[0], 1.0 / (2.0 + i)) << "response " << i;
  }
  EXPECT_EQ(
      obs::Registry::Global().GetCounter("serve.batched_requests").Total(),
      0u);
  obs::SetEnabled(false);
  server.Stop();
}

}  // namespace
}  // namespace cit
