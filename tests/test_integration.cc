// Cross-module integration tests: no-lookahead guarantees for every agent,
// end-to-end pipeline determinism, and learning on planted signals.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/trader.h"
#include "env/backtest.h"
#include "market/csv.h"
#include "market/simulator.h"
#include "math/rng.h"
#include "olps/strategies.h"
#include "rl/a2c.h"
#include "rl/eiie.h"

namespace cit {
namespace {

market::PricePanel BasePanel(uint64_t seed = 5) {
  market::MarketConfig cfg;
  cfg.num_assets = 5;
  cfg.train_days = 200;
  cfg.test_days = 80;
  cfg.seed = seed;
  return market::SimulateMarket(cfg);
}

// Perturbs every close strictly after `day`.
market::PricePanel PerturbFuture(const market::PricePanel& panel,
                                 int64_t day) {
  market::PricePanel out = panel;
  math::Rng rng(99);
  for (int64_t t = day + 1; t < panel.num_days(); ++t) {
    for (int64_t i = 0; i < panel.num_assets(); ++i) {
      out.SetClose(t, i, panel.Close(t, i) * (1.0 + 0.3 * rng.Uniform()));
    }
  }
  return out;
}

// An agent must make identical decisions at `day` whether or not the
// future beyond `day` differs — otherwise it is peeking ahead.
void ExpectNoLookahead(env::TradingAgent& agent,
                       const market::PricePanel& panel, int64_t day) {
  const market::PricePanel perturbed = PerturbFuture(panel, day);
  agent.Reset();
  std::vector<double> w1;
  for (int64_t d = day - 5; d <= day; ++d) {
    w1 = agent.DecideWeights(panel, d);
  }
  agent.Reset();
  std::vector<double> w2;
  for (int64_t d = day - 5; d <= day; ++d) {
    w2 = agent.DecideWeights(perturbed, d);
  }
  ASSERT_EQ(w1.size(), w2.size());
  for (size_t i = 0; i < w1.size(); ++i) {
    EXPECT_NEAR(w1[i], w2[i], 1e-12) << "asset " << i;
  }
}

TEST(NoLookahead, OnlineBaselines) {
  auto panel = BasePanel();
  const int64_t day = 150;
  olps::Crp crp;
  ExpectNoLookahead(crp, panel, day);
  olps::Eg eg;
  ExpectNoLookahead(eg, panel, day);
  olps::Ons ons;
  ExpectNoLookahead(ons, panel, day);
  olps::Up up(50, 3);
  ExpectNoLookahead(up, panel, day);
  olps::Olmar olmar;
  ExpectNoLookahead(olmar, panel, day);
  olps::Pamr pamr;
  ExpectNoLookahead(pamr, panel, day);
  olps::Rmr rmr;
  ExpectNoLookahead(rmr, panel, day);
  olps::Anticor anticor;
  ExpectNoLookahead(anticor, panel, day);
  olps::BuyAndHold bah;
  ExpectNoLookahead(bah, panel, day);
}

TEST(NoLookahead, TrainedRlAgentsAtDecisionTime) {
  auto panel = BasePanel();
  rl::RlTrainConfig cfg;
  cfg.window = 8;
  cfg.train_steps = 5;
  cfg.rollout_len = 4;
  cfg.hidden = 8;
  rl::A2cAgent a2c(panel.num_assets(), cfg);
  a2c.Train(panel);
  ExpectNoLookahead(a2c, panel, 150);
}

TEST(NoLookahead, CrossInsightTraderAtDecisionTime) {
  auto panel = BasePanel();
  core::CrossInsightConfig cfg;
  cfg.num_policies = 2;
  cfg.window = 8;
  cfg.feature_dim = 4;
  cfg.tcn_blocks = 1;
  cfg.head_hidden = 8;
  cfg.critic_hidden = 8;
  cfg.train_steps = 5;
  cfg.rollout_len = 4;
  core::CrossInsightTrader trader(panel.num_assets(), cfg);
  trader.Train(panel);
  ExpectNoLookahead(trader, panel, 150);
}

TEST(Pipeline, CsvRoundTripYieldsIdenticalBacktests) {
  auto panel = BasePanel();
  const std::string path = ::testing::TempDir() + "/pipeline_panel.csv";
  ASSERT_TRUE(market::SavePanelCsv(panel, path).ok());
  auto loaded = market::LoadPanelCsv(path);
  ASSERT_TRUE(loaded.ok());
  olps::Eg eg1, eg2;
  const auto r1 = env::RunTestBacktest(eg1, panel, 8);
  const auto r2 = env::RunTestBacktest(eg2, loaded.value(), 8);
  ASSERT_EQ(r1.wealth.size(), r2.wealth.size());
  for (size_t t = 0; t < r1.wealth.size(); ++t) {
    EXPECT_NEAR(r1.wealth[t], r2.wealth[t], 1e-7);
  }
}

TEST(Learning, EiieBeatsUniformOnStrongMomentumMarket) {
  // A market with persistent per-asset drifts: a trained scorer should
  // beat the uniform portfolio on the test split.
  math::Rng rng(12);
  const int64_t m = 4, days = 400;
  market::PricePanel panel(days, m);
  std::vector<double> price(m, 100.0);
  std::vector<double> drift = {0.003, -0.003, 0.001, -0.001};
  for (int64_t t = 0; t < days; ++t) {
    for (int64_t i = 0; i < m; ++i) {
      if (t > 0) price[i] *= std::exp(drift[i] + 0.004 * rng.Normal());
      panel.SetClose(t, i, price[i]);
    }
  }
  panel.set_train_end(320);

  rl::EiieAgent::EiieConfig cfg;
  cfg.window = 12;
  cfg.train_steps = 250;
  cfg.hidden = 8;
  cfg.seed = 4;
  rl::EiieAgent agent(m, cfg);
  agent.Train(panel);
  const auto trained = env::RunTestBacktest(agent, panel, cfg.window);
  olps::Crp crp;
  const auto uniform = env::RunTestBacktest(crp, panel, cfg.window);
  EXPECT_GT(trained.wealth.back(), uniform.wealth.back());
}

TEST(Learning, CitTrainingImprovesRewardOnPlantedSignal) {
  // On a market with predictable multi-horizon structure, the learning
  // curve's second half should on average beat the first half.
  market::MarketConfig mcfg;
  mcfg.num_assets = 5;
  mcfg.train_days = 300;
  mcfg.test_days = 60;
  mcfg.seed = 31;
  // Strengthen the predictable components.
  mcfg.long_vol = 0.008;
  mcfg.mid_vol = 0.008;
  mcfg.idio_vol = 0.004;
  auto panel = market::SimulateMarket(mcfg);

  core::CrossInsightConfig cfg;
  cfg.num_policies = 3;
  cfg.window = 16;
  cfg.feature_dim = 4;
  cfg.tcn_blocks = 1;
  cfg.head_hidden = 16;
  cfg.critic_hidden = 16;
  cfg.train_steps = 120;
  cfg.rollout_len = 8;
  cfg.seed = 2;
  core::CrossInsightTrader trader(panel.num_assets(), cfg);
  const auto curve = trader.Train(panel, 10);
  ASSERT_GE(curve.size(), 4u);
  double first = 0.0, second = 0.0;
  const size_t half = curve.size() / 2;
  for (size_t i = 0; i < half; ++i) first += curve[i];
  for (size_t i = half; i < curve.size(); ++i) second += curve[i];
  first /= half;
  second /= curve.size() - half;
  // Loose: allow noise, but training must not collapse.
  EXPECT_GT(second, first - 0.05);
}

TEST(Pipeline, TradersWithDifferentSeedsDiffer) {
  auto panel = BasePanel();
  auto run = [&](uint64_t seed) {
    core::CrossInsightConfig cfg;
    cfg.num_policies = 2;
    cfg.window = 8;
    cfg.feature_dim = 4;
    cfg.tcn_blocks = 1;
    cfg.head_hidden = 8;
    cfg.critic_hidden = 8;
    cfg.train_steps = 8;
    cfg.rollout_len = 4;
    cfg.seed = seed;
    core::CrossInsightTrader trader(panel.num_assets(), cfg);
    trader.Train(panel);
    return env::RunTestBacktest(trader, panel, cfg.window).wealth.back();
  };
  EXPECT_NE(run(1), run(2));
}

}  // namespace
}  // namespace cit
