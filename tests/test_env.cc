#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "env/backtest.h"
#include "env/metrics.h"
#include "env/portfolio_env.h"
#include "market/panel.h"
#include "market/simulator.h"
#include "math/rng.h"

namespace cit::env {
namespace {

market::PricePanel MakePanel(int64_t days, int64_t assets, uint64_t seed) {
  math::Rng rng(seed);
  market::PricePanel panel(days, assets);
  std::vector<double> price(assets, 100.0);
  for (int64_t t = 0; t < days; ++t) {
    for (int64_t i = 0; i < assets; ++i) {
      if (t > 0) price[i] *= std::exp(rng.Normal(0.0002, 0.01));
      panel.SetClose(t, i, price[i]);
    }
  }
  panel.set_train_end(days * 2 / 3);
  return panel;
}

// ---- Metrics ----------------------------------------------------------------

TEST(Metrics, DailyReturnsKnownValues) {
  const std::vector<double> wealth = {1.0, 1.1, 0.99};
  const auto r = DailyReturns(wealth);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_NEAR(r[0], 0.1, 1e-12);
  EXPECT_NEAR(r[1], 0.99 / 1.1 - 1.0, 1e-12);
}

TEST(Metrics, MaxDrawdownKnownCurve) {
  // Peak 2.0, trough 1.0 -> MDD = 0.5.
  const std::vector<double> wealth = {1.0, 2.0, 1.5, 1.0, 1.8};
  EXPECT_NEAR(MaxDrawdown(wealth), 0.5, 1e-12);
}

TEST(Metrics, MonotoneCurveHasZeroDrawdown) {
  EXPECT_EQ(MaxDrawdown({1.0, 1.1, 1.2, 1.5}), 0.0);
}

TEST(Metrics, AccumulativeReturnMatchesEndpoints) {
  const std::vector<double> wealth = {1.0, 1.05, 1.2};
  EXPECT_NEAR(ComputeMetrics(wealth).accumulative_return, 0.2, 1e-12);
}

TEST(Metrics, SharpeSignMatchesDrift) {
  std::vector<double> up = {1.0}, down = {1.0};
  math::Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    up.push_back(up.back() * std::exp(0.002 + 0.01 * rng.Normal()));
    down.push_back(down.back() * std::exp(-0.002 + 0.01 * rng.Normal()));
  }
  EXPECT_GT(ComputeMetrics(up).sharpe_ratio, 0.0);
  EXPECT_LT(ComputeMetrics(down).sharpe_ratio, 0.0);
}

TEST(Metrics, ConstantCurveHasZeroSharpe) {
  const std::vector<double> wealth(10, 1.0);
  const auto m = ComputeMetrics(wealth);
  EXPECT_EQ(m.sharpe_ratio, 0.0);
  EXPECT_EQ(m.accumulative_return, 0.0);
}

TEST(Metrics, ZeroVarianceGrowthCurveHasZeroSharpe) {
  // Doubling every day: every daily return is exactly 1.0, so the return
  // variance is exactly zero while the mean is large. The unguarded Sharpe
  // divided mean by std == 0 and emitted +Inf here (the constant-curve case
  // has mean == 0 too and hides the bug behind 0/0). Convention: zero-vol
  // series report Sharpe = 0 and a finite zero vol.
  const auto m = ComputeMetrics({1.0, 2.0, 4.0, 8.0});
  EXPECT_EQ(m.sharpe_ratio, 0.0);
  EXPECT_EQ(m.annualized_vol, 0.0);
  EXPECT_TRUE(std::isfinite(m.sharpe_ratio));
  EXPECT_NEAR(m.accumulative_return, 7.0, 1e-12);
  EXPECT_TRUE(std::isfinite(m.annualized_return));
  EXPECT_TRUE(std::isfinite(m.calmar_ratio));
}

TEST(Metrics, TwoPointZeroVolCurveHasZeroSharpe) {
  // Shortest legal curve with a nonzero move: the single return has
  // (n-1 == 0)-guarded variance 0, another mean/0 Sharpe trap.
  const auto m = ComputeMetrics({1.0, 1.07});
  EXPECT_EQ(m.sharpe_ratio, 0.0);
  EXPECT_EQ(m.annualized_vol, 0.0);
  EXPECT_TRUE(std::isfinite(m.annualized_return));
}

TEST(Metrics, TwoPointCurveAnnualizationStaysBounded) {
  // The shortest legal curve: one daily move. Unguarded annualization
  // raises 1.05 to the 252nd power (~2e5) and poisons Calmar; the
  // one-month floor caps extrapolation at ~12x the horizon.
  const auto m = ComputeMetrics({1.0, 1.05});
  EXPECT_TRUE(std::isfinite(m.annualized_return));
  EXPECT_GT(m.annualized_return, 0.0);
  EXPECT_LT(m.annualized_return, std::pow(1.05, 12.1) - 1.0);
  EXPECT_TRUE(std::isfinite(m.calmar_ratio));
  // A large single-day loss must not annualize below -100%.
  const auto loss = ComputeMetrics({1.0, 0.4});
  EXPECT_TRUE(std::isfinite(loss.annualized_return));
  EXPECT_GT(loss.annualized_return, -1.0);
  EXPECT_LT(loss.annualized_return, 0.0);
  EXPECT_TRUE(std::isfinite(loss.calmar_ratio));
  EXPECT_LT(loss.calmar_ratio, 0.0);
}

TEST(Metrics, FlatCurveHasZeroRatesAndRatios) {
  const auto m = ComputeMetrics(std::vector<double>(5, 2.5));
  EXPECT_EQ(m.accumulative_return, 0.0);
  EXPECT_NEAR(m.annualized_return, 0.0, 1e-12);
  EXPECT_EQ(m.annualized_vol, 0.0);
  EXPECT_EQ(m.max_drawdown, 0.0);
  EXPECT_NEAR(m.calmar_ratio, 0.0, 1e-10);
}

TEST(Metrics, AllLossCurveStaysFinite) {
  // Steady decay to ~0.5% of the start: every metric must stay finite
  // and the annualized rate must stay above total loss (-100%).
  std::vector<double> wealth = {1.0};
  for (int i = 0; i < 40; ++i) wealth.push_back(wealth.back() * 0.875);
  const auto m = ComputeMetrics(wealth);
  EXPECT_TRUE(std::isfinite(m.annualized_return));
  EXPECT_GT(m.annualized_return, -1.0);
  EXPECT_LT(m.annualized_return, 0.0);
  EXPECT_LT(m.sharpe_ratio, 0.0);
  EXPECT_TRUE(std::isfinite(m.calmar_ratio));
  EXPECT_GT(m.max_drawdown, 0.99);
}

// ---- Simplex helpers --------------------------------------------------------

TEST(Simplex, IsValidPortfolio) {
  EXPECT_TRUE(IsValidPortfolio({0.5, 0.5}));
  EXPECT_TRUE(IsValidPortfolio({1.0, 0.0}));
  EXPECT_FALSE(IsValidPortfolio({0.7, 0.7}));
  EXPECT_FALSE(IsValidPortfolio({-0.1, 1.1}));
}

TEST(Simplex, NormalizeToSimplexHandlesDegenerateInput) {
  auto w = NormalizeToSimplex({0.0, 0.0, 0.0});
  for (double v : w) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
  auto w2 = NormalizeToSimplex({2.0, 2.0});
  EXPECT_NEAR(w2[0], 0.5, 1e-12);
  // Negative and NaN entries are clipped to zero.
  auto w3 = NormalizeToSimplex({-1.0, 3.0});
  EXPECT_NEAR(w3[0], 0.0, 1e-12);
  EXPECT_NEAR(w3[1], 1.0, 1e-12);
}

TEST(Simplex, NormalizeToSimplexHandlesNonFiniteSums) {
  // An infinite entry (or finite entries whose sum overflows) must fall
  // back to uniform weights, not emit zeros or NaNs from x/inf.
  const double huge = std::numeric_limits<double>::max();
  for (const auto& bad :
       {std::vector<double>{std::numeric_limits<double>::infinity(), 1.0},
        std::vector<double>{huge, huge},
        std::vector<double>{std::nan(""), std::nan("")}}) {
    const auto w = NormalizeToSimplex(bad);
    ASSERT_EQ(w.size(), bad.size());
    double sum = 0.0;
    for (double v : w) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

// ---- PortfolioEnv -----------------------------------------------------------

TEST(PortfolioEnv, WealthTelescopesWithoutCosts) {
  auto panel = MakePanel(100, 4, 1);
  EnvConfig cfg;
  cfg.window = 8;
  cfg.transaction_cost = 0.0;
  PortfolioEnv env(&panel, cfg);
  math::Rng rng(2);
  double product = 1.0;
  while (!env.done()) {
    auto w = rng.Dirichlet(4, 1.0);
    const StepResult r = env.Step(w);
    product *= r.portfolio_return;
    EXPECT_NEAR(std::exp(r.reward), r.portfolio_return, 1e-9);
  }
  EXPECT_NEAR(env.wealth(), product, 1e-9);
}

TEST(PortfolioEnv, UniformBuyAndHoldMatchesIndexWhenCostFree) {
  auto panel = MakePanel(60, 3, 4);
  EnvConfig cfg;
  cfg.window = 4;
  cfg.transaction_cost = 0.0;
  PortfolioEnv env(&panel, cfg);
  // Rebalancing to the drifted holdings = buy and hold.
  while (!env.done()) {
    env.Step(env.previous_weights());
  }
  const auto index = panel.IndexLevels(cfg.window);
  EXPECT_NEAR(env.wealth(), index.back(), 1e-9);
}

TEST(PortfolioEnv, TransactionCostsReduceWealth) {
  auto panel = MakePanel(80, 4, 5);
  EnvConfig cheap_cfg;
  cheap_cfg.window = 8;
  cheap_cfg.transaction_cost = 0.0;
  EnvConfig costly_cfg = cheap_cfg;
  costly_cfg.transaction_cost = 0.01;
  PortfolioEnv cheap(&panel, cheap_cfg);
  PortfolioEnv costly(&panel, costly_cfg);
  math::Rng rng(6);
  while (!cheap.done()) {
    auto w = rng.Dirichlet(4, 0.5);  // high-turnover trading
    cheap.Step(w);
    costly.Step(w);
  }
  EXPECT_LT(costly.wealth(), cheap.wealth());
}

TEST(PortfolioEnv, HeldWeightsDriftWithPrices) {
  market::PricePanel panel(10, 2);
  for (int64_t t = 0; t < 10; ++t) {
    panel.SetClose(t, 0, 100.0 * (1 << t));  // doubles every day
    panel.SetClose(t, 1, 100.0);
  }
  EnvConfig cfg;
  cfg.window = 2;
  cfg.transaction_cost = 0.0;
  PortfolioEnv env(&panel, cfg);
  env.Step({0.5, 0.5});
  // Asset 0 doubled, so it now holds 2/3 of wealth.
  EXPECT_NEAR(env.previous_weights()[0], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(env.previous_weights()[1], 1.0 / 3.0, 1e-9);
}

TEST(PortfolioEnv, RejectsOffSimplexAction) {
  auto panel = MakePanel(30, 2, 7);
  EnvConfig cfg;
  cfg.window = 4;
  PortfolioEnv env(&panel, cfg);
  EXPECT_DEATH(env.Step({0.9, 0.9}), "simplex");
}

TEST(PortfolioEnv, WindowContentsMatchPanel) {
  auto panel = MakePanel(40, 3, 8);
  EnvConfig cfg;
  cfg.window = 6;
  PortfolioEnv env(&panel, cfg);
  const auto window = env.PriceWindow();
  ASSERT_EQ(window.size(), 6u * 3u);
  // Last row of the window is the current day's closes.
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(window[5 * 3 + i], panel.Close(env.current_day(), i));
  }
}

// ---- Backtester -------------------------------------------------------------

class UniformAgent : public TradingAgent {
 public:
  std::string name() const override { return "uniform"; }
  std::vector<double> DecideWeights(const market::PanelView& panel,
                                    int64_t) override {
    return std::vector<double>(panel.num_assets(),
                               1.0 / panel.num_assets());
  }
};

TEST(Backtest, WealthCurveConsistentWithMetrics) {
  auto panel = MakePanel(120, 4, 9);
  UniformAgent agent;
  EnvConfig cfg;
  cfg.window = 8;
  const BacktestResult result = RunBacktest(agent, panel, cfg);
  EXPECT_EQ(result.wealth.size(), result.daily_returns.size() + 1);
  EXPECT_NEAR(result.metrics.accumulative_return,
              result.wealth.back() - 1.0, 1e-12);
  // Returns recompute the wealth curve.
  double w = 1.0;
  for (size_t t = 0; t < result.daily_returns.size(); ++t) {
    w *= 1.0 + result.daily_returns[t];
  }
  EXPECT_NEAR(w, result.wealth.back(), 1e-9);
}

TEST(Backtest, TestSplitStartsAtTrainEnd) {
  auto panel = MakePanel(150, 3, 10);
  UniformAgent agent;
  const BacktestResult result = RunTestBacktest(agent, panel, 8);
  EXPECT_EQ(result.days.front(), panel.train_end());
  EXPECT_EQ(result.days.back(), panel.num_days() - 1);
}

// Emits NaN weights on every odd decision (a diverged policy); valid
// uniform weights otherwise.
class NanEveryOtherAgent : public TradingAgent {
 public:
  std::string name() const override { return "nan-agent"; }
  std::vector<double> DecideWeights(const market::PanelView& panel,
                                    int64_t) override {
    ++calls_;
    if (calls_ % 2 == 0) {
      return std::vector<double>(panel.num_assets(), std::nan(""));
    }
    return std::vector<double>(panel.num_assets(),
                               1.0 / panel.num_assets());
  }
  void Reset() override { calls_ = 0; }

 private:
  int64_t calls_ = 0;
};

TEST(Backtest, RepairsInvalidAgentActionsInsteadOfAborting) {
  auto panel = MakePanel(120, 4, 11);
  NanEveryOtherAgent agent;
  EnvConfig cfg;
  cfg.window = 8;
  // Must complete without CHECK-aborting, repairing the NaN actions onto
  // the simplex and counting them.
  const BacktestResult result = RunBacktest(agent, panel, cfg);
  EXPECT_GT(result.repaired_steps, 0);
  EXPECT_LT(result.repaired_steps,
            static_cast<int64_t>(result.daily_returns.size()));
  for (double w : result.wealth) {
    EXPECT_TRUE(std::isfinite(w));
    EXPECT_GT(w, 0.0);
  }
  EXPECT_TRUE(std::isfinite(result.metrics.sharpe_ratio));
}

// Always moves everything into asset 0, whatever it holds.
class AllInFirstAssetAgent : public TradingAgent {
 public:
  std::string name() const override { return "all-in-first"; }
  std::vector<double> DecideWeights(const market::PanelView& panel,
                                    int64_t) override {
    std::vector<double> w(panel.num_assets(), 0.0);
    w[0] = 1.0;
    return w;
  }
};

TEST(Backtest, ClosedFormTwoAssetCostAccounting) {
  // Hand-checkable panel: asset 0 is flat until day 2, then gains 10% on
  // each of days 3 and 4; asset 1 never moves. Agent goes all-in on
  // asset 0 every step.
  //
  //   step day 2->3: held starts uniform {0.5, 0.5}, target {1, 0}
  //     turnover    = |1-0.5| + |0-0.5| = 1.0
  //     cost_factor = 1 - tc = 0.99
  //     growth      = 1.1,  net = 1.1 * 0.99
  //   step day 3->4: holdings already {1, 0}, target {1, 0}
  //     turnover = 0, growth = net = 1.1
  //
  // so wealth = 1.1 * 0.99 * 1.1 and total turnover = 1.0 exactly.
  market::PricePanel panel(5, 2);
  const double p0[] = {100.0, 100.0, 100.0, 110.0, 121.0};
  for (int64_t t = 0; t < 5; ++t) {
    panel.SetClose(t, 0, p0[t]);
    panel.SetClose(t, 1, 100.0);
  }
  AllInFirstAssetAgent agent;
  EnvConfig cfg;
  cfg.window = 2;
  cfg.transaction_cost = 0.01;
  const BacktestResult result = RunBacktest(agent, panel, cfg);
  ASSERT_EQ(result.wealth.size(), 3u);
  EXPECT_EQ(result.repaired_steps, 0);
  EXPECT_NEAR(result.wealth[1], 1.1 * 0.99, 1e-12);
  EXPECT_NEAR(result.wealth[2], 1.1 * 0.99 * 1.1, 1e-12);
  EXPECT_NEAR(result.turnover, 1.0, 1e-12);
  ASSERT_EQ(result.daily_returns.size(), 2u);
  EXPECT_NEAR(result.daily_returns[0], 1.1 * 0.99 - 1.0, 1e-12);
  EXPECT_NEAR(result.daily_returns[1], 0.1, 1e-12);

  // The same run without costs keeps the full gross growth; the cost run
  // loses exactly tc * turnover of the first step's wealth.
  EnvConfig free_cfg = cfg;
  free_cfg.transaction_cost = 0.0;
  const BacktestResult free_run = RunBacktest(agent, panel, free_cfg);
  EXPECT_NEAR(free_run.wealth.back(), 1.1 * 1.1, 1e-12);
  EXPECT_NEAR(free_run.turnover, result.turnover, 1e-12);
}

TEST(Backtest, TurnoverAccumulatesOverRebalancing) {
  // A rebalancing agent on a drifting panel must rack up turnover; the
  // total is the sum over steps of per-step |target - held| mass.
  auto panel = MakePanel(80, 4, 13);
  UniformAgent agent;
  EnvConfig cfg;
  cfg.window = 8;
  const BacktestResult result = RunBacktest(agent, panel, cfg);
  EXPECT_GT(result.turnover, 0.0);
  // Each step moves at most the whole portfolio (2.0 in L1 mass).
  EXPECT_LE(result.turnover,
            2.0 * static_cast<double>(result.daily_returns.size()));
}

TEST(Backtest, WellBehavedAgentHasNoRepairs) {
  auto panel = MakePanel(100, 3, 12);
  UniformAgent agent;
  EnvConfig cfg;
  cfg.window = 8;
  EXPECT_EQ(RunBacktest(agent, panel, cfg).repaired_steps, 0);
}

}  // namespace
}  // namespace cit::env
