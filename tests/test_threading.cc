// Thread-pool correctness plus the determinism contract of math/kernels.h:
// every kernel must produce bitwise-identical results for any thread count.
// These are the tests scripts/check.sh runs under TSan.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "math/autograd.h"
#include "math/kernels.h"
#include "math/rng.h"
#include "math/tensor.h"

namespace cit {
namespace {

using math::Rng;
using math::Shape;
using math::Tensor;

// Restores the global pool's thread count when a test scope exits, so test
// order never leaks thread-count state.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : saved_(ThreadPool::Global().num_threads()) {
    ThreadPool::Global().SetNumThreads(n);
  }
  ~ThreadCountGuard() { ThreadPool::Global().SetNumThreads(saved_); }

 private:
  int saved_;
};

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard(4);
  std::vector<int> counts(10000, 0);
  ThreadPool::Global().ParallelFor(0, 10000, 16, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) counts[static_cast<size_t>(i)] += 1;
  });
  for (int c : counts) ASSERT_EQ(c, 1);
}

TEST(ThreadPool, SmallRangeRunsInline) {
  ThreadCountGuard guard(4);
  int calls = 0;  // deliberately unsynchronized: must run on this thread only
  ThreadPool::Global().ParallelFor(0, 10, 1000, [&](int64_t lo, int64_t hi) {
    calls += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(calls, 10);
}

TEST(ThreadPool, NestedParallelForDegradesToSerial) {
  ThreadCountGuard guard(4);
  std::vector<int> counts(4096, 0);
  ThreadPool::Global().ParallelFor(0, 4, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      // Runs inside a parallel region, so it must execute inline.
      ThreadPool::Global().ParallelFor(
          0, 1024, 1, [&, o](int64_t ilo, int64_t ihi) {
            for (int64_t i = ilo; i < ihi; ++i) {
              counts[static_cast<size_t>(o * 1024 + i)] += 1;
            }
          });
    }
  });
  for (int c : counts) ASSERT_EQ(c, 1);
}

TEST(ThreadPool, SetNumThreadsGrowsBeyondInitial) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  pool.SetNumThreads(4);
  // Requests above hardware_concurrency are clamped (oversubscription is
  // strictly slower and, by the determinism contract, result-invariant).
  EXPECT_EQ(pool.num_threads(), std::min(4, pool.max_threads()));
  std::vector<int> counts(20000, 0);
  pool.ParallelFor(0, 20000, 16, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) counts[static_cast<size_t>(i)] += 1;
  });
  for (int c : counts) ASSERT_EQ(c, 1);
}

// ---- Bitwise determinism across thread counts ------------------------------

template <typename F>
Tensor RunWithThreads(int n_threads, F compute) {
  ThreadCountGuard guard(n_threads);
  return compute();
}

TEST(Determinism, MatMulBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(1);
  // Odd sizes exercise the micro-kernel's row and column tails.
  Tensor a = Tensor::Uniform({173, 211}, rng, -1, 1);
  Tensor b = Tensor::Uniform({211, 97}, rng, -1, 1);
  auto compute = [&] {
    Tensor c({173, 97});
    math::kernels::MatMul(a.data(), b.data(), c.data(), 173, 211, 97);
    return c;
  };
  const Tensor c1 = RunWithThreads(1, compute);
  for (int t : {2, 4}) {
    const Tensor ct = RunWithThreads(t, compute);
    ASSERT_TRUE(math::TensorEquals(c1, ct)) << t << " threads";
  }
}

TEST(Determinism, MatMulTransposedVariantsBitwiseIdentical) {
  Rng rng(2);
  Tensor g = Tensor::Uniform({150, 130}, rng, -1, 1);
  Tensor b = Tensor::Uniform({170, 130}, rng, -1, 1);  // bT layout [r, q]
  Tensor a = Tensor::Uniform({150, 170}, rng, -1, 1);
  auto trans_b = [&] {
    Tensor c({150, 170});
    math::kernels::MatMulTransB(g.data(), b.data(), c.data(), 150, 130, 170);
    return c;
  };
  auto trans_a = [&] {
    Tensor c({170, 130});
    math::kernels::MatMulTransA(a.data(), g.data(), c.data(), 150, 170, 130);
    return c;
  };
  ASSERT_TRUE(math::TensorEquals(RunWithThreads(1, trans_b),
                                 RunWithThreads(4, trans_b)));
  ASSERT_TRUE(math::TensorEquals(RunWithThreads(1, trans_a),
                                 RunWithThreads(4, trans_a)));
}

TEST(Determinism, CausalConvBitwiseIdenticalBothPaths) {
  Rng rng(3);
  // Large shape takes the im2col+GEMM path, small one the direct loop.
  struct Case {
    int64_t batch, cin, cout, len, k, dilation;
  };
  for (const Case& c : {Case{4, 16, 32, 256, 3, 2}, Case{1, 2, 3, 6, 2, 1}}) {
    Tensor x = Tensor::Uniform({c.batch, c.cin, c.len}, rng, -1, 1);
    Tensor w = Tensor::Uniform({c.cout, c.cin, c.k}, rng, -1, 1);
    Tensor bias = Tensor::Uniform({c.cout}, rng, -1, 1);
    auto compute = [&] {
      Tensor out({c.batch, c.cout, c.len});
      math::kernels::CausalConv1dForward(x.data(), w.data(), bias.data(),
                                         out.data(), c.batch, c.cin, c.cout,
                                         c.len, c.k, c.dilation);
      return out;
    };
    ASSERT_TRUE(math::TensorEquals(RunWithThreads(1, compute),
                                   RunWithThreads(4, compute)))
        << "len=" << c.len;
  }
}

TEST(Determinism, ElementwiseAndSoftmaxBitwiseIdentical) {
  Rng rng(4);
  Tensor x = Tensor::Uniform({100000}, rng, -3, 3);  // above the grain
  auto mapped = [&] {
    Tensor out({100000});
    math::kernels::Map(x.data(), out.data(), 100000,
                       [](float v) { return std::exp(v) * 0.5f + v * v; });
    return out;
  };
  ASSERT_TRUE(math::TensorEquals(RunWithThreads(1, mapped),
                                 RunWithThreads(4, mapped)));

  Tensor s = Tensor::Uniform({512, 80}, rng, -5, 5);
  auto softmaxed = [&] {
    Tensor out = s;
    math::kernels::SoftmaxLastAxis(out.data(), 512, 80);
    return out;
  };
  ASSERT_TRUE(math::TensorEquals(RunWithThreads(1, softmaxed),
                                 RunWithThreads(4, softmaxed)));
}

TEST(Determinism, TrainingStepGradientsBitwiseIdentical) {
  // A forward/backward pass big enough that MatMul, softmax, and the
  // elementwise kernels all cross their parallel thresholds.
  auto grads = [&](int n_threads) {
    ThreadCountGuard guard(n_threads);
    Rng rng(5);
    ag::Var x = ag::Var::Param(Tensor::Uniform({64, 512}, rng, -1, 1));
    ag::Var w = ag::Var::Param(Tensor::Uniform({512, 64}, rng, -1, 1));
    ag::Sum(ag::Square(ag::Softmax(ag::MatMul(x, w)))).Backward();
    return std::make_pair(x.grad(), w.grad());
  };
  const auto g1 = grads(1);
  const auto g4 = grads(4);
  ASSERT_TRUE(math::TensorEquals(g1.first, g4.first));
  ASSERT_TRUE(math::TensorEquals(g1.second, g4.second));
}

}  // namespace
}  // namespace cit
