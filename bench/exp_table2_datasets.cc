// Reproduces Table II: statistics of the three market datasets. Prints both
// the paper's real-data statistics and the synthetic-substitute statistics
// generated at the current run scale (see DESIGN.md for the substitution).
#include <cstdio>

#include "common/env_config.h"
#include <cmath>

#include "exp_common.h"
#include "signal/analysis.h"

int main() {
  using namespace cit;
  std::printf("Table II: statistics of datasets\n");
  std::printf("%-14s %10s %12s %12s\n", "Dataset", "Assets", "TrainDays",
              "TestDays");
  std::printf("--- paper (Yahoo Finance, 2009-01..2022-12) ---\n");
  std::printf("%-14s %10d %12s %12s\n", "U.S. market", 80,
              "2009-01..20-06", "2020-07..22-12");
  std::printf("%-14s %10d %12s %12s\n", "H.K. market", 45,
              "2009-01..20-06", "2020-07..21-07");
  std::printf("%-14s %10d %12s %12s\n", "China market", 34,
              "2009-01..20-06", "2020-07..21-07");

  const char* scale = GetRunScale() == RunScale::kFull
                          ? "CIT_FULL (paper-scale)"
                          : (GetRunScale() == RunScale::kFast
                                 ? "CIT_FAST (smoke)"
                                 : "default (reduced)");
  std::printf("--- this run: synthetic substitute, scale = %s ---\n", scale);
  for (const auto& cfg : bench::AllMarketConfigs()) {
    const auto& panel = bench::PanelFor(cfg);
    std::printf("%-14s %10lld %12lld %12lld\n", cfg.name.c_str(),
                static_cast<long long>(panel.num_assets()),
                static_cast<long long>(panel.train_end()),
                static_cast<long long>(panel.num_days() -
                                       panel.train_end()));
  }

  // Structural diagnostics: annualized vol, multi-horizon momentum
  // (variance ratios > 1), and how price variance distributes across DWT
  // bands — the planted structure the cross-insight trader exploits.
  std::printf("--- structure diagnostics (asset averages) ---\n");
  std::printf("%-8s %8s %8s %8s %26s\n", "Dataset", "AnnVol", "VR(5)",
              "VR(20)", "band energy (low..high)");
  for (const auto& cfg : bench::AllMarketConfigs()) {
    const auto& panel = bench::PanelFor(cfg);
    double vol = 0.0, vr5 = 0.0, vr20 = 0.0;
    std::vector<double> energy(3, 0.0);
    for (int64_t i = 0; i < panel.num_assets(); ++i) {
      std::vector<double> rets;
      for (int64_t t = 1; t < panel.num_days(); ++t) {
        rets.push_back(std::log(panel.PriceRelative(t, i)));
      }
      vol += signal::AnnualizedVolatility(rets);
      vr5 += signal::VarianceRatio(rets, 5);
      vr20 += signal::VarianceRatio(rets, 20);
      const auto e = signal::BandEnergyFractions(rets, 3);
      for (int b = 0; b < 3; ++b) energy[b] += e[b];
    }
    const double m = static_cast<double>(panel.num_assets());
    std::printf("%-8s %8.3f %8.3f %8.3f       %.2f / %.2f / %.2f\n",
                cfg.name.c_str(), vol / m, vr5 / m, vr20 / m,
                energy[0] / m, energy[1] / m, energy[2] / m);
  }
  return 0;
}
