// Reproduces Table IV: performance vs. the number of horizon-specific
// policies (A2C = 0 policies, then 2..5). Shape to compare with the paper:
// monotone improvement as the decomposition granularity grows.
#include <cstdio>

#include "common/env_config.h"
#include "exp_common.h"

int main() {
  using namespace cit;
  std::printf(
      "Table IV: performance vs number of horizon-specific policies\n");
  for (const auto& market_cfg : bench::AllMarketConfigs()) {
    const auto& panel = bench::PanelFor(market_cfg);
    bench::PrintMetricsHeader(market_cfg.name + " market");
    for (int64_t n : {0, 2, 3, 4, 5}) {
      const int seeds = ScaledSeeds();
      bench::MetricTriple sum;
      for (int s = 0; s < seeds; ++s) {
        core::CrossInsightConfig cfg = bench::BaseCitConfig(1000 + 31 * s);
        cfg.num_policies = n;
        const auto result = bench::RunCit(cfg, panel);
        sum.ar += result.metrics.accumulative_return;
        sum.sr += result.metrics.sharpe_ratio;
        sum.cr += result.metrics.calmar_ratio;
      }
      sum.ar /= seeds;
      sum.sr /= seeds;
      sum.cr /= seeds;
      bench::PrintMetricsRow(
          n == 0 ? "A2C" : (std::to_string(n) + " policies"), sum);
    }
  }
  return 0;
}
