#ifndef CIT_BENCH_EXP_COMMON_H_
#define CIT_BENCH_EXP_COMMON_H_

#include <string>
#include <vector>

#include "core/config.h"
#include "env/backtest.h"
#include "market/panel.h"
#include "market/simulator.h"
#include "rl/config.h"

namespace cit::bench {

// The three paper markets at the current run scale (CIT_FAST / CIT_FULL).
std::vector<market::MarketConfig> AllMarketConfigs();

// Simulates (and caches per process) the panel for a market config.
const market::PricePanel& PanelFor(const market::MarketConfig& config);

// Model identifiers used across experiment binaries; order matches the
// rows of the paper's Table III.
inline const std::vector<std::string> kOnlineModels = {
    "OLMAR", "CRP", "ONS", "UP", "EG"};
inline const std::vector<std::string> kRlModels = {
    "EIIE", "A2C", "DDPG", "PPO", "SARL", "DeepTrader", "Ours"};

// Trains (for RL models) and backtests `model` on the panel's test split.
// If `curve` is non-null it receives the training learning curve (empty for
// online models). Deterministic given `seed`.
env::BacktestResult RunModel(const std::string& model,
                             const market::PricePanel& panel, uint64_t seed,
                             std::vector<double>* curve = nullptr);

// Backtest of the equal-weight buy-and-hold market portfolio.
env::BacktestResult RunMarketBaseline(const market::PricePanel& panel);

// AR/SR/CR averaged over ScaledSeeds() runs of `model`.
struct MetricTriple {
  double ar = 0.0;
  double sr = 0.0;
  double cr = 0.0;
};
MetricTriple AverageOverSeeds(const std::string& model,
                              const market::PricePanel& panel);

// The shared base RL config at the current run scale.
rl::RlTrainConfig BaseRlConfig(uint64_t seed);
// The cross-insight trader config at the current run scale.
core::CrossInsightConfig BaseCitConfig(uint64_t seed);

// Trains a cross-insight trader with an explicit config and backtests it.
env::BacktestResult RunCit(const core::CrossInsightConfig& config,
                           const market::PricePanel& panel,
                           std::vector<double>* curve = nullptr);

// ---- Table / series printing ------------------------------------------------

// Prints "name  AR  SR  CR" rows for one market section.
void PrintMetricsHeader(const std::string& title);
void PrintMetricsRow(const std::string& name, const MetricTriple& m);

// Prints a day-indexed series block in CSV-ish form, subsampled to at most
// `max_points` points: "label,day,value".
void PrintSeries(const std::string& label, const std::vector<int64_t>& days,
                 const std::vector<double>& values, int64_t max_points = 60);

}  // namespace cit::bench

#endif  // CIT_BENCH_EXP_COMMON_H_
