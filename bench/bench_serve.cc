// Serving-daemon latency/throughput benchmark, emitted as machine-readable
// JSON (BENCH_serve.json) so serving-path regressions are diffable across
// commits.
//
// An in-process serve::Server fronts the real CrossInsightTrader over its
// Unix socket; client threads drive the decide line protocol at several
// offered loads (clients x pipeline depth). Every load level runs twice:
//
//   unbatched — max_batch=1: every request takes the single-request
//               Decide path, exactly the pre-batching daemon;
//   batched   — max_batch=8 with a small batching window: pending decides
//               coalesce into one DecideWeightsBatch forward and the
//               stacked outputs de-interleave back per connection.
//
// Per load level the report carries p50/p99 request latency and completed
// throughput for both arms; the headline "high_load_throughput_gain" is
// the batched/unbatched throughput ratio at the highest offered load,
// gated by scripts/check.sh at >= 1.5x. Responses are bitwise identical
// across the arms (tests/test_serve.cc asserts batched == library), so the
// ratio isolates what batching amortizes: per-op replay dispatch and
// per-request plan bookkeeping, which dominate at serving-shaped model
// sizes.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "market/panel.h"
#include "serve/cit_model.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using namespace cit;
using Clock = std::chrono::steady_clock;

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

// Serving-shaped model: short window, narrow features, several policies —
// the regime where per-op dispatch is a real fraction of each decision and
// batching has something to amortize (same rationale as bench_infer). The
// backbone is the paper's "ours (GRU)" variant: the GRU encoder unrolls
// one op-chain per timestep, so stacking requests amortizes its dispatch
// fully, while the spatial-attention stage still runs per request inside
// the batch (it mixes across assets, not across requests) and keeps the
// per-block slice/de-interleave machinery in the measured path.
core::CrossInsightConfig ServeConfig() {
  core::CrossInsightConfig cfg;
  cfg.num_policies = 6;
  cfg.window = 6;
  cfg.feature_dim = 2;
  cfg.head_hidden = 8;
  cfg.critic_hidden = 8;
  cfg.seed = 23;
  cfg.backbone = core::BackboneKind::kGruAttention;
  return cfg;
}

// A deterministic positive price window (distinct per variant).
std::string MakeDecideLine(int64_t rows, int64_t assets, int variant) {
  std::string line =
      "decide " + std::to_string(rows) + " " + std::to_string(assets);
  for (int64_t d = 0; d < rows; ++d) {
    for (int64_t a = 0; a < assets; ++a) {
      const double t =
          static_cast<double>(d + 1) + 0.37 * static_cast<double>(variant);
      const double p = 10.0 + static_cast<double>(a) +
                       0.5 * (t * (1.0 + 0.1 * static_cast<double>(a)) -
                              static_cast<double>(static_cast<int64_t>(
                                  t * (1.0 + 0.1 * static_cast<double>(a)))));
      line.push_back(' ');
      serve::AppendDouble(&line, p);
    }
  }
  line.push_back('\n');
  return line;
}

// Minimal blocking line client (mirrors the test harness client).
class Client {
 public:
  explicit Client(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  bool Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool RecvLine(std::string* line, int timeout_ms = 30000) {
    for (;;) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      pollfd p{fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, timeout_ms);
      if (rc <= 0) {
        if (rc < 0 && errno == EINTR) continue;
        return false;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

struct Load {
  const char* name;
  int clients;  // concurrent connections
  int depth;    // pipelined requests in flight per connection
};

struct ArmResult {
  double p50_us = 0;
  double p99_us = 0;
  double throughput_rps = 0;
  bool ok = true;
};

double Percentile(std::vector<int64_t>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return static_cast<double>(v[std::min(idx, v.size() - 1)]);
}

// Drives one arm at one load: each client keeps `depth` requests in
// flight (responses on one connection come back in request order, so the
// oldest outstanding send timestamp matches the next response).
ArmResult RunArm(const std::string& socket_path, const Load& load,
                 int64_t requests_per_client, int64_t rows, int64_t assets) {
  std::vector<std::vector<int64_t>> latencies(
      static_cast<size_t>(load.clients));
  std::vector<std::thread> threads;
  std::vector<char> failed(static_cast<size_t>(load.clients), 0);

  const int64_t t0 = NowUs();
  for (int id = 0; id < load.clients; ++id) {
    threads.emplace_back([&, id] {
      Client c(socket_path);
      if (!c.ok()) {
        failed[static_cast<size_t>(id)] = 1;
        return;
      }
      const std::string req = MakeDecideLine(rows, assets, id);
      std::vector<int64_t>& lat = latencies[static_cast<size_t>(id)];
      lat.reserve(static_cast<size_t>(requests_per_client));
      std::vector<int64_t> sent_at;  // FIFO of outstanding send stamps
      size_t head = 0;
      int64_t submitted = 0, completed = 0;
      std::string line;
      while (completed < requests_per_client) {
        while (submitted < requests_per_client &&
               submitted - completed < load.depth) {
          sent_at.push_back(NowUs());
          if (!c.Send(req)) {
            failed[static_cast<size_t>(id)] = 1;
            return;
          }
          ++submitted;
        }
        if (!c.RecvLine(&line) || line.rfind("ok ", 0) != 0) {
          failed[static_cast<size_t>(id)] = 1;
          return;
        }
        lat.push_back(NowUs() - sent_at[head++]);
        ++completed;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s = static_cast<double>(NowUs() - t0) / 1e6;

  ArmResult r;
  std::vector<int64_t> all;
  for (int id = 0; id < load.clients; ++id) {
    if (failed[static_cast<size_t>(id)]) r.ok = false;
    all.insert(all.end(), latencies[static_cast<size_t>(id)].begin(),
               latencies[static_cast<size_t>(id)].end());
  }
  r.p50_us = Percentile(all, 0.50);
  r.p99_us = Percentile(all, 0.99);
  r.throughput_rps = static_cast<double>(all.size()) / elapsed_s;
  return r;
}

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string Fmt3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const int64_t kAssets = 4;
  const core::CrossInsightConfig cfg = ServeConfig();
  const int64_t rows = cfg.window;
  const int64_t requests_per_client = smoke ? 200 : 1500;
  const int64_t warmup_requests = smoke ? 32 : 128;

  const Load loads[] = {
      {"low", 1, 1},    // one request/response client: the p50 floor
      {"mid", 2, 4},    // light concurrency, shallow pipelines
      {"high", 4, 16},  // saturating: queues stay at/above max_batch
  };

  struct ArmConfig {
    const char* name;
    int max_batch;
    int64_t batch_window_us;
  };
  const ArmConfig arms[] = {
      {"unbatched", 1, 0},
      {"batched", 8, 200},
  };

  // One server per arm (batching policy is a Start-time config), reused
  // across all loads of that arm so plans stay warm between levels.
  struct Row {
    ArmResult res[2];  // indexed like `arms`
  };
  Row rows_out[3];
  bool all_ok = true;

  for (int a = 0; a < 2; ++a) {
    serve::ServerConfig scfg;
    scfg.socket_path = "/tmp/bench_serve_" + std::to_string(::getpid()) +
                       "_" + arms[a].name + ".sock";
    scfg.workers = 1;  // one replica: the batching win, not parallelism
    scfg.max_batch = arms[a].max_batch;
    scfg.batch_window_us = arms[a].batch_window_us;
    serve::Server server(scfg,
                         serve::MakeCitModelFactory(kAssets, cfg, ""));
    if (!server.Start().ok()) {
      std::fprintf(stderr, "error: server start failed (%s arm)\n",
                   arms[a].name);
      return 1;
    }
    // Warm-up: fault in code paths and record the compiled plans (single
    // and stacked shapes) so the timed arms measure steady-state replay.
    (void)RunArm(scfg.socket_path, Load{"warm", 2, 8}, warmup_requests,
                 rows, kAssets);
    for (int l = 0; l < 3; ++l) {
      const ArmResult r = RunArm(scfg.socket_path, loads[l],
                                 requests_per_client, rows, kAssets);
      rows_out[l].res[a] = r;
      all_ok = all_ok && r.ok;
      std::printf("serve %-9s load=%-4s (%dx%d)  p50 %8sus  p99 %8sus  "
                  "%10s req/s%s\n",
                  arms[a].name, loads[l].name, loads[l].clients,
                  loads[l].depth, Fmt(r.p50_us).c_str(),
                  Fmt(r.p99_us).c_str(), Fmt(r.throughput_rps).c_str(),
                  r.ok ? "" : "  [FAILED]");
    }
    server.Stop();
  }

  const double high_gain =
      rows_out[2].res[1].throughput_rps / rows_out[2].res[0].throughput_rps;
  std::printf("high-load throughput gain (batched/unbatched): %sx\n",
              Fmt3(high_gain).c_str());
  if (!all_ok) {
    std::fprintf(stderr, "error: some requests failed\n");
    return 1;
  }

  std::ostringstream js;
  js << "{\n";
  js << "  \"host\": {\"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << "},\n";
  js << "  \"config\": {\"num_policies\": " << cfg.num_policies
     << ", \"window\": " << cfg.window << ", \"num_assets\": " << kAssets
     << ", \"workers\": 1, \"max_batch\": 8, \"batch_window_us\": 200"
     << ", \"requests_per_client\": " << requests_per_client
     << ", \"smoke\": " << (smoke ? "true" : "false") << "},\n";
  js << "  \"loads\": [\n";
  for (int l = 0; l < 3; ++l) {
    js << "    {\"load\": \"" << loads[l].name << "\""
       << ", \"clients\": " << loads[l].clients
       << ", \"depth\": " << loads[l].depth << ",\n";
    for (int a = 0; a < 2; ++a) {
      const ArmResult& r = rows_out[l].res[a];
      js << "     \"" << arms[a].name << "\": {\"p50_us\": " << Fmt(r.p50_us)
         << ", \"p99_us\": " << Fmt(r.p99_us)
         << ", \"throughput_rps\": " << Fmt(r.throughput_rps) << "},\n";
    }
    js << "     \"throughput_gain\": "
       << Fmt3(rows_out[l].res[1].throughput_rps /
               rows_out[l].res[0].throughput_rps)
       << "}" << (l + 1 < 3 ? "," : "") << "\n";
  }
  js << "  ],\n";
  js << "  \"high_load_throughput_gain\": " << Fmt3(high_gain) << ",\n";
  js << "  \"note\": \"In-process citd over its Unix socket, one worker "
        "replica. Arms differ only in batching config (unbatched "
        "max_batch=1 vs batched max_batch=8, 200us window); responses are "
        "bitwise identical across arms (tests/test_serve.cc). Loads are "
        "clients x pipeline depth; latency is send-to-response per "
        "request. high_load_throughput_gain is the batched/unbatched "
        "throughput ratio at the highest load (check.sh gates >= 1.5); "
        "the low-load arms share the single-request path, so their p50s "
        "track each other by construction.\"\n";
  js << "}\n";

  std::ofstream out(out_path);
  out << js.str();
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
