// Rollout-collection benchmark, emitted as machine-readable JSON
// (BENCH_train.json) so training-throughput regressions are diffable
// across commits:
//
//  - wall time of a fixed CIT training run (K rollouts per update fanned
//    out by RolloutRunner) at 1/2/4 pool threads, with env-steps/sec;
//  - a pure RolloutRunner fan-out microbench (per-slot busy work with no
//    optimizer phase) isolating the scheduling overhead and scaling.
//
// Thread counts are set in-process via ThreadPool::SetNumThreads, so one
// run produces the whole table regardless of CIT_NUM_THREADS. On hosts
// whose hardware clamp caps the pool (e.g. a 1-core container), higher
// rows collapse onto the clamped count; the JSON records the bound.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/env_config.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "core/trader.h"
#include "market/csv.h"
#include "market/simulator.h"
#include "market/source.h"
#include "market/streaming_csv.h"
#include "math/kernels.h"
#include "math/rng.h"
#include "math/tensor.h"
#include "obs/telemetry.h"
#include "rl/rollout.h"

namespace {

using namespace cit;
using Clock = std::chrono::steady_clock;

double Now() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

core::CrossInsightConfig BenchConfig() {
  core::CrossInsightConfig cfg;
  cfg.num_policies = 3;
  cfg.window = 16;
  cfg.train_steps = 12;
  cfg.rollout_len = 8;
  cfg.rollouts_per_update = 4;
  cfg.seed = 17;
  return cfg;
}

struct TrainRow {
  int threads_requested = 0;
  int threads_effective = 0;
  double seconds = 0.0;
  double env_steps_per_sec = 0.0;
};

TrainRow BenchTrainRun(const market::PricePanel& panel, int threads,
                       bool telemetry = false) {
  auto& pool = ThreadPool::Global();
  pool.SetNumThreads(threads);
  core::CrossInsightConfig cfg = BenchConfig();
  // Runtime-enabled telemetry (spans, counters, gauges recording; no trace
  // or snapshot files) vs. the default disabled state. The numeric work is
  // identical either way — telemetry only observes.
  cfg.telemetry.enabled = telemetry;
  // Fresh trader per thread count: identical initial params and identical
  // (seed, step, slot) streams, so every row does the same numeric work.
  core::CrossInsightTrader trader(panel.num_assets(), cfg);
  const double t0 = Now();
  trader.Train(panel, /*curve_points=*/4);
  TrainRow row;
  row.threads_requested = threads;
  row.threads_effective = pool.num_threads();
  row.seconds = Now() - t0;
  const double env_steps = static_cast<double>(cfg.train_steps) *
                           cfg.rollouts_per_update * cfg.rollout_len;
  row.env_steps_per_sec = env_steps / row.seconds;
  return row;
}

struct FanoutRow {
  int threads_requested = 0;
  int threads_effective = 0;
  double seconds = 0.0;
};

// Pure fan-out: K slots of fixed serial busy work (a small GEMM chain per
// slot, run with the nested-region serial path like real rollout slots),
// no gradient reduction. Isolates RolloutRunner + pool overhead.
FanoutRow BenchFanout(int threads) {
  auto& pool = ThreadPool::Global();
  pool.SetNumThreads(threads);
  const int64_t kSlots = 8;
  const int64_t n = 96;
  math::Rng rng(5);
  const math::Tensor a = math::Tensor::Uniform({n, n}, rng, -1, 1);
  const math::Tensor b = math::Tensor::Uniform({n, n}, rng, -1, 1);
  rl::RolloutRunner runner(/*seed=*/1, kSlots);
  std::vector<float> sinks(kSlots, 0.0f);
  const double t0 = Now();
  for (int64_t step = 0; step < 40; ++step) {
    runner.Collect(step, [&](int64_t slot, math::Rng& slot_rng) {
      math::Tensor c({n, n});
      for (int rep = 0; rep < 4; ++rep) {
        math::kernels::MatMul(a.data(), b.data(), c.data(), n, n, n);
      }
      sinks[slot] = c.data()[slot_rng.UniformInt(n * n)];
    });
  }
  FanoutRow row;
  row.threads_requested = threads;
  row.threads_effective = pool.num_threads();
  row.seconds = Now() - t0;
  // Keep the sinks observable so the work cannot be optimized away.
  double guard = 0.0;
  for (float v : sinks) guard += v;
  if (guard == 12345.678) std::printf("~");
  return row;
}

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

struct IngestRow {
  int64_t days = 0;
  int64_t assets = 0;
  int64_t chunk_days = 0;
  int64_t max_resident_chunks = 0;
  bool prefetch = false;
  double rows_per_sec = 0.0;
  double rows_per_sec_inmemory = 0.0;
  int64_t peak_resident_bytes = 0;
  int64_t budget_bytes = 0;
  int64_t chunk_loads = 0;
  int64_t chunk_hits = 0;
};

// Streaming-ingest arm: a long CSV panel scanned front to back through a
// StreamingCsvSource under a small resident-chunk budget, versus the same
// scan over the fully-loaded panel. Reports throughput (rows/s, one row =
// one day of closes) and the peak resident chunk bytes, which the check
// gate holds against the configured budget.
IngestRow BenchStreamingIngest() {
  market::MarketConfig mcfg;
  mcfg.name = "ingest-bench";
  mcfg.num_assets = 16;
  mcfg.train_days = 3600;
  mcfg.test_days = 400;
  mcfg.seed = 29;
  const market::PricePanel panel = market::SimulateMarket(mcfg);
  const std::string csv_path = "/tmp/bench_train_ingest.csv";
  if (!market::SavePanelCsv(panel, csv_path).ok()) {
    std::fprintf(stderr, "error: could not write %s\n", csv_path.c_str());
    std::exit(1);
  }

  IngestRow row;
  row.days = panel.num_days();
  row.assets = panel.num_assets();
  row.chunk_days = 128;
  row.max_resident_chunks = 3;
  row.prefetch = true;

  // A full sequential scan touching every cell, as a windowed consumer
  // (backtest-style) would. The sink keeps the reads observable.
  const auto scan = [](const market::PanelView& v) {
    double sink = 0.0;
    for (int64_t d = 0; d < v.num_days(); ++d) {
      v.Hint(d, std::min<int64_t>(d + 256, v.num_days() - 1));
      for (int64_t a = 0; a < v.num_assets(); ++a) sink += v.Close(d, a);
    }
    return sink;
  };

  market::StreamingCsvOptions opts;
  opts.chunk_days = row.chunk_days;
  opts.max_resident_chunks = row.max_resident_chunks;
  opts.prefetch = row.prefetch;
  auto opened = market::StreamingCsvSource::Open(csv_path, opts);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().message().c_str());
    std::exit(1);
  }
  std::unique_ptr<market::StreamingCsvSource> streaming =
      std::move(opened).value();
  double t0 = Now();
  const double streamed_sink = scan(market::PanelView(streaming.get()));
  const double streaming_s = Now() - t0;
  row.rows_per_sec = static_cast<double>(row.days) / streaming_s;
  row.peak_resident_bytes = streaming->peak_resident_bytes();
  row.budget_bytes = streaming->budget_bytes();
  row.chunk_loads = streaming->chunk_loads();
  row.chunk_hits = streaming->chunk_hits();

  // In-memory baseline over the same file (CSV round-trip is lossy at
  // precision(10), so the comparable panel is the reloaded one).
  auto loaded = market::LoadPanelCsv(csv_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().message().c_str());
    std::exit(1);
  }
  const market::PricePanel reloaded = std::move(loaded).value();
  market::InMemorySource in_memory(&reloaded);
  t0 = Now();
  const double memory_sink = scan(market::PanelView(&in_memory));
  row.rows_per_sec_inmemory = static_cast<double>(row.days) / (Now() - t0);
  if (streamed_sink != memory_sink) {
    std::fprintf(stderr, "error: streamed scan diverged from in-memory\n");
    std::exit(1);
  }
  std::remove(csv_path.c_str());
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_train.json";

  market::MarketConfig mcfg;
  mcfg.num_assets = 8;
  mcfg.train_days = 140;
  mcfg.test_days = 20;
  const market::PricePanel panel = market::SimulateMarket(mcfg);

  const core::CrossInsightConfig cfg = BenchConfig();
  std::vector<TrainRow> train_rows;
  std::vector<FanoutRow> fanout_rows;
  for (int threads : {1, 2, 4}) {
    train_rows.push_back(BenchTrainRun(panel, threads));
    const TrainRow& r = train_rows.back();
    std::printf(
        "train  threads=%d (effective %d)  %ss  %s env-steps/s\n",
        r.threads_requested, r.threads_effective, Fmt(r.seconds).c_str(),
        Fmt(r.env_steps_per_sec).c_str());
  }
  for (int threads : {1, 2, 4}) {
    fanout_rows.push_back(BenchFanout(threads));
    const FanoutRow& r = fanout_rows.back();
    std::printf("fanout threads=%d (effective %d)  %ss\n",
                r.threads_requested, r.threads_effective,
                Fmt(r.seconds).c_str());
  }
  // Telemetry overhead at 1 thread: the same training run with every
  // instrumentation site recording vs. runtime-disabled. Best-of-3 per
  // side so a stray scheduler hiccup does not dominate the short run. The
  // acceptance bar is <= 2% when enabled (see DESIGN.md "Observability").
  double telemetry_off_s = 1e300;
  double telemetry_on_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    telemetry_off_s =
        std::min(telemetry_off_s, BenchTrainRun(panel, 1, false).seconds);
    telemetry_on_s =
        std::min(telemetry_on_s, BenchTrainRun(panel, 1, true).seconds);
  }
  const double telemetry_overhead_pct =
      (telemetry_on_s - telemetry_off_s) / telemetry_off_s * 100.0;
  std::printf("telemetry overhead (1 thread): off=%ss on=%ss -> %s%%%s\n",
              Fmt(telemetry_off_s).c_str(), Fmt(telemetry_on_s).c_str(),
              Fmt(telemetry_overhead_pct).c_str(),
              obs::kCompiledIn ? "" : " (compiled out)");
  ThreadPool::Global().SetNumThreads(1);

  const IngestRow ingest = BenchStreamingIngest();
  std::printf(
      "ingest %lld days x %lld assets  streaming %s rows/s "
      "(in-memory %s rows/s)  peak resident %lld / budget %lld bytes  "
      "%lld loads %lld hits\n",
      static_cast<long long>(ingest.days),
      static_cast<long long>(ingest.assets),
      Fmt(ingest.rows_per_sec).c_str(),
      Fmt(ingest.rows_per_sec_inmemory).c_str(),
      static_cast<long long>(ingest.peak_resident_bytes),
      static_cast<long long>(ingest.budget_bytes),
      static_cast<long long>(ingest.chunk_loads),
      static_cast<long long>(ingest.chunk_hits));

  std::ostringstream js;
  js << "{\n";
  js << "  \"host\": {\"hardware_concurrency\": "
     << std::thread::hardware_concurrency()
     << ", \"default_threads\": " << cit::NumThreads() << "},\n";
  js << "  \"config\": {\"train_steps\": " << cfg.train_steps
     << ", \"rollouts_per_update\": " << cfg.rollouts_per_update
     << ", \"rollout_len\": " << cfg.rollout_len
     << ", \"num_policies\": " << cfg.num_policies
     << ", \"num_assets\": " << panel.num_assets() << "},\n";
  js << "  \"train\": [\n";
  for (size_t i = 0; i < train_rows.size(); ++i) {
    const TrainRow& r = train_rows[i];
    js << "    {\"threads\": " << r.threads_requested
       << ", \"threads_effective\": " << r.threads_effective
       << ", \"seconds\": " << Fmt(r.seconds)
       << ", \"env_steps_per_sec\": " << Fmt(r.env_steps_per_sec) << "}"
       << (i + 1 < train_rows.size() ? "," : "") << "\n";
  }
  js << "  ],\n";
  js << "  \"rollout_fanout\": [\n";
  for (size_t i = 0; i < fanout_rows.size(); ++i) {
    const FanoutRow& r = fanout_rows[i];
    js << "    {\"threads\": " << r.threads_requested
       << ", \"threads_effective\": " << r.threads_effective
       << ", \"seconds\": " << Fmt(r.seconds) << "}"
       << (i + 1 < fanout_rows.size() ? "," : "") << "\n";
  }
  js << "  ],\n";
  js << "  \"telemetry\": {\"compiled_in\": "
     << (obs::kCompiledIn ? "true" : "false")
     << ", \"seconds_off\": " << Fmt(telemetry_off_s)
     << ", \"seconds_on\": " << Fmt(telemetry_on_s)
     << ", \"telemetry_overhead_pct\": " << Fmt(telemetry_overhead_pct)
     << "},\n";
  js << "  \"streaming_ingest\": {\"days\": " << ingest.days
     << ", \"assets\": " << ingest.assets
     << ", \"chunk_days\": " << ingest.chunk_days
     << ", \"max_resident_chunks\": " << ingest.max_resident_chunks
     << ", \"prefetch\": " << (ingest.prefetch ? "true" : "false")
     << ", \"rows_per_sec\": " << Fmt(ingest.rows_per_sec)
     << ", \"rows_per_sec_inmemory\": " << Fmt(ingest.rows_per_sec_inmemory)
     << ", \"peak_resident_bytes\": " << ingest.peak_resident_bytes
     << ", \"budget_bytes\": " << ingest.budget_bytes
     << ", \"chunk_loads\": " << ingest.chunk_loads
     << ", \"chunk_hits\": " << ingest.chunk_hits << "},\n";
  js << "  \"note\": \"Rollout collection fans K=rollouts_per_update slots "
        "out over the pool; curves are bitwise thread-count-invariant, so "
        "rows differ only in wall time. threads_effective reflects the "
        "min(hardware_concurrency, 64) clamp: on a 1-core host all rows "
        "collapse to 1 thread and record the serial bound.\"\n";
  js << "}\n";

  std::ofstream out(out_path);
  out << js.str();
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
