// Reproduces Fig. 6: daily returns of each horizon policy on the H.K.
// market (the paper renders these as color strips; we print the series and
// per-policy volatility). Shape to compare: the short-horizon policy's
// daily returns are the most volatile, long-horizon the most stable.
#include <cmath>
#include <cstdio>

#include "core/trader.h"
#include "env/backtest.h"
#include "exp_common.h"

int main() {
  using namespace cit;
  std::printf("Fig 6: daily return of the different policies (CSV)\n");
  std::printf("series,day,daily_return\n");
  const auto market_cfg = market::HkMarketConfig();
  const auto& panel = bench::PanelFor(market_cfg);

  core::CrossInsightConfig cfg = bench::BaseCitConfig(1000);
  cfg.num_policies = 3;
  core::CrossInsightTrader trader(panel.num_assets(), cfg);
  trader.Train(panel);

  struct Row {
    std::string name;
    double vol;
  };
  std::vector<Row> vols;
  for (int64_t k = 0; k < cfg.num_policies; ++k) {
    auto agent = trader.MakePolicyAgent(k);
    const auto result = env::RunTestBacktest(*agent, panel, cfg.window);
    const int64_t label = cfg.num_policies - k;  // 1 = short ... 3 = long
    std::vector<int64_t> days(result.days.begin() + 1, result.days.end());
    bench::PrintSeries("HK.policy" + std::to_string(label), days,
                       result.daily_returns);
    double sq = 0.0, mean = 0.0;
    for (double r : result.daily_returns) mean += r;
    mean /= result.daily_returns.size();
    for (double r : result.daily_returns) sq += (r - mean) * (r - mean);
    vols.push_back({"policy" + std::to_string(label),
                    std::sqrt(sq / result.daily_returns.size())});
  }
  std::printf("\nDaily-return volatility per policy "
              "(short should exceed long):\n");
  for (const auto& row : vols) {
    std::printf("%-10s stddev=%.5f\n", row.name.c_str(), row.vol);
  }
  return 0;
}
