// Reproduces Fig. 8: learning curves (average training reward) of the
// counterfactual mechanism vs. the shared-Q variant vs. decentralized
// critics, on the three markets. Shape to compare with the paper: the
// counterfactual curve dominates shared-Q, and Dec-critic is the weakest.
#include <cstdio>

#include "exp_common.h"

int main() {
  using namespace cit;
  std::printf("Fig 8: learning curves per credit-assignment mode (CSV)\n");
  std::printf("series,checkpoint,avg_reward\n");
  const struct {
    core::CreditMode mode;
    const char* label;
  } kModes[] = {
      {core::CreditMode::kCounterfactual, "counterfactual"},
      {core::CreditMode::kSharedQ, "shared-Q"},
      {core::CreditMode::kDecCritic, "dec-critic"},
  };
  for (const auto& market_cfg : bench::AllMarketConfigs()) {
    const auto& panel = bench::PanelFor(market_cfg);
    std::printf("\n# %s market\n", market_cfg.name.c_str());
    struct Summary {
      const char* label;
      double final_avg;
    };
    std::vector<Summary> summaries;
    for (const auto& mode : kModes) {
      core::CrossInsightConfig cfg = bench::BaseCitConfig(1000);
      cfg.credit = mode.mode;
      std::vector<double> curve;
      bench::RunCit(cfg, panel, &curve);
      std::vector<int64_t> checkpoints(curve.size());
      for (size_t i = 0; i < curve.size(); ++i) {
        checkpoints[i] = static_cast<int64_t>(i + 1);
      }
      bench::PrintSeries(market_cfg.name + "." + mode.label, checkpoints,
                         curve);
      double tail = 0.0;
      const size_t tail_n = std::max<size_t>(1, curve.size() / 4);
      for (size_t i = curve.size() - tail_n; i < curve.size(); ++i) {
        tail += curve[i];
      }
      summaries.push_back({mode.label, tail / tail_n});
    }
    std::printf("# final-quarter average reward:");
    for (const auto& s : summaries) {
      std::printf("  %s=%.4f", s.label, s.final_avg);
    }
    std::printf("\n");
  }
  return 0;
}
