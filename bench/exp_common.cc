#include "exp_common.h"

#include <cstdio>
#include <map>

#include "common/check.h"
#include "common/env_config.h"
#include "core/trader.h"
#include "olps/strategies.h"
#include "rl/a2c.h"
#include "rl/ddpg.h"
#include "rl/deeptrader.h"
#include "rl/eiie.h"
#include "rl/ppo.h"
#include "rl/sarl.h"

namespace cit::bench {

std::vector<market::MarketConfig> AllMarketConfigs() {
  return {market::UsMarketConfig(), market::HkMarketConfig(),
          market::ChinaMarketConfig()};
}

const market::PricePanel& PanelFor(const market::MarketConfig& config) {
  static std::map<std::string, market::PricePanel>& cache =
      *new std::map<std::string, market::PricePanel>();
  auto it = cache.find(config.name);
  if (it == cache.end()) {
    it = cache.emplace(config.name, market::SimulateMarket(config)).first;
  }
  return it->second;
}

rl::RlTrainConfig BaseRlConfig(uint64_t seed) {
  rl::RlTrainConfig cfg;
  cfg.window = 24;
  cfg.hidden = 32;
  cfg.train_steps =
      static_cast<int64_t>(300 * ScaledStepFactor());
  cfg.rollout_len = 16;
  cfg.seed = seed;
  return cfg;
}

core::CrossInsightConfig BaseCitConfig(uint64_t seed) {
  core::CrossInsightConfig cfg;
  cfg.window = 24;
  cfg.train_steps =
      static_cast<int64_t>(400 * ScaledStepFactor());
  cfg.rollout_len = 16;
  cfg.seed = seed;
  return cfg;
}

env::BacktestResult RunCit(const core::CrossInsightConfig& config,
                           const market::PricePanel& panel,
                           std::vector<double>* curve) {
  core::CrossInsightTrader trader(panel.num_assets(), config);
  std::vector<double> c = trader.Train(panel);
  if (curve != nullptr) *curve = std::move(c);
  return env::RunTestBacktest(trader, panel, config.window,
                              config.transaction_cost);
}

env::BacktestResult RunMarketBaseline(const market::PricePanel& panel) {
  olps::BuyAndHold bah;
  return env::RunTestBacktest(bah, panel, /*window=*/24);
}

env::BacktestResult RunModel(const std::string& model,
                             const market::PricePanel& panel, uint64_t seed,
                             std::vector<double>* curve) {
  if (curve != nullptr) curve->clear();
  const int64_t window = 24;
  // ---- Online-learning models (no training phase) ----
  if (model == "OLMAR") {
    olps::Olmar agent;
    return env::RunTestBacktest(agent, panel, window);
  }
  if (model == "CRP") {
    olps::Crp agent;
    return env::RunTestBacktest(agent, panel, window);
  }
  if (model == "ONS") {
    olps::Ons agent;
    return env::RunTestBacktest(agent, panel, window);
  }
  if (model == "UP") {
    olps::Up agent(300, seed);
    return env::RunTestBacktest(agent, panel, window);
  }
  if (model == "EG") {
    olps::Eg agent;
    return env::RunTestBacktest(agent, panel, window);
  }
  if (model == "PAMR") {
    olps::Pamr agent;
    return env::RunTestBacktest(agent, panel, window);
  }
  if (model == "RMR") {
    olps::Rmr agent;
    return env::RunTestBacktest(agent, panel, window);
  }
  if (model == "Anticor") {
    olps::Anticor agent;
    return env::RunTestBacktest(agent, panel, window);
  }
  if (model == "Market") {
    return RunMarketBaseline(panel);
  }

  // ---- Deep-RL models ----
  if (model == "A2C") {
    rl::A2cAgent agent(panel.num_assets(), BaseRlConfig(seed));
    auto c = agent.Train(panel);
    if (curve != nullptr) *curve = std::move(c);
    return env::RunTestBacktest(agent, panel, window);
  }
  if (model == "PPO") {
    rl::PpoAgent::PpoConfig cfg;
    static_cast<rl::RlTrainConfig&>(cfg) = BaseRlConfig(seed);
    cfg.train_steps = cfg.train_steps / 2;  // 4 epochs/rollout inside
    rl::PpoAgent agent(panel.num_assets(), cfg);
    auto c = agent.Train(panel);
    if (curve != nullptr) *curve = std::move(c);
    return env::RunTestBacktest(agent, panel, window);
  }
  if (model == "DDPG") {
    rl::DdpgAgent::DdpgConfig cfg;
    static_cast<rl::RlTrainConfig&>(cfg) = BaseRlConfig(seed);
    cfg.train_steps *= 2;  // replay steps are cheaper than rollout steps
    rl::DdpgAgent agent(panel.num_assets(), cfg);
    auto c = agent.Train(panel);
    if (curve != nullptr) *curve = std::move(c);
    return env::RunTestBacktest(agent, panel, window);
  }
  if (model == "EIIE") {
    rl::EiieAgent::EiieConfig cfg;
    static_cast<rl::RlTrainConfig&>(cfg) = BaseRlConfig(seed);
    rl::EiieAgent agent(panel.num_assets(), cfg);
    auto c = agent.Train(panel);
    if (curve != nullptr) *curve = std::move(c);
    return env::RunTestBacktest(agent, panel, window);
  }
  if (model == "SARL") {
    rl::SarlAgent agent(panel.num_assets(), BaseRlConfig(seed));
    auto c = agent.Train(panel);
    if (curve != nullptr) *curve = std::move(c);
    return env::RunTestBacktest(agent, panel, window);
  }
  if (model == "DeepTrader") {
    rl::DeepTraderAgent::DeepTraderConfig cfg;
    static_cast<rl::RlTrainConfig&>(cfg) = BaseRlConfig(seed);
    rl::DeepTraderAgent agent(panel.num_assets(), cfg);
    auto c = agent.Train(panel);
    if (curve != nullptr) *curve = std::move(c);
    return env::RunTestBacktest(agent, panel, window);
  }
  if (model == "Ours") {
    core::CrossInsightConfig cfg = BaseCitConfig(seed);
    return RunCit(cfg, panel, curve);
  }
  CIT_CHECK_MSG(false, ("unknown model: " + model).c_str());
  return {};
}

MetricTriple AverageOverSeeds(const std::string& model,
                              const market::PricePanel& panel) {
  const int seeds = ScaledSeeds();
  MetricTriple sum;
  for (int s = 0; s < seeds; ++s) {
    const auto result = RunModel(model, panel, 1000 + 31 * s);
    sum.ar += result.metrics.accumulative_return;
    sum.sr += result.metrics.sharpe_ratio;
    sum.cr += result.metrics.calmar_ratio;
  }
  sum.ar /= seeds;
  sum.sr /= seeds;
  sum.cr /= seeds;
  return sum;
}

void PrintMetricsHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-12s %8s %8s %8s\n", "Model", "AR", "SR", "CR");
}

void PrintMetricsRow(const std::string& name, const MetricTriple& m) {
  std::printf("%-12s %8.3f %8.3f %8.3f\n", name.c_str(), m.ar, m.sr, m.cr);
}

void PrintSeries(const std::string& label, const std::vector<int64_t>& days,
                 const std::vector<double>& values, int64_t max_points) {
  CIT_CHECK_EQ(days.size(), values.size());
  const int64_t n = static_cast<int64_t>(values.size());
  const int64_t stride = std::max<int64_t>(1, n / max_points);
  for (int64_t i = 0; i < n; i += stride) {
    std::printf("%s,%lld,%.5f\n", label.c_str(),
                static_cast<long long>(days[i]), values[i]);
  }
  if ((n - 1) % stride != 0) {
    std::printf("%s,%lld,%.5f\n", label.c_str(),
                static_cast<long long>(days[n - 1]), values[n - 1]);
  }
}

}  // namespace cit::bench
