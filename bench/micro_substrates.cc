// Micro-benchmarks of the math substrate, emitted as machine-readable JSON
// (BENCH_math.json) so perf regressions are diffable across commits:
//
//  - GEMM GFLOP/s at 64/256/1024 — a seed-style naive triple loop ("before")
//    vs the blocked kernel ("after") at 1 and 4 threads, plus a forced
//    scalar-backend arm so the SIMD microkernel's gain is visible in the
//    same run (kernels::SetBackend, restored afterwards);
//  - causal dilated conv throughput, naive direct loop vs the fused
//    im2col+GEMM kernel;
//  - wall-time of one small CIT training epoch (the end-to-end number all
//    the kernel work ultimately serves).
//
// Thread counts are set in-process via ThreadPool::SetNumThreads, so one run
// produces the whole table regardless of CIT_NUM_THREADS. SetNumThreads
// clamps to the hardware (unless CIT_OVERSUBSCRIBE=1), so every 4t arm
// records threads_effective_4t and a clamped_4t flag; consumers
// (scripts/check.sh) must skip ratio gates on clamped arms instead of
// reading a 1-thread number as a 4-thread one.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/env_config.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "core/trader.h"
#include "market/simulator.h"
#include "math/kernels.h"
#include "math/rng.h"
#include "math/tensor.h"

namespace {

using namespace cit;
using Clock = std::chrono::steady_clock;

double Now() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

// Runs `body` repeatedly until ~0.25 s of wall time has accumulated and
// returns the best observed seconds-per-call (least-noise estimator).
template <typename F>
double BestSecondsPerCall(F body) {
  double best = 1e30;
  double spent = 0.0;
  int calls = 0;
  while (spent < 0.25 || calls < 3) {
    const double t0 = Now();
    body();
    const double dt = Now() - t0;
    best = std::min(best, dt);
    spent += dt;
    ++calls;
    if (calls >= 10000) break;
  }
  return best;
}

// The seed's MatMul inner loop (i-k-j with a zero-skip on a[i,k]), kept
// verbatim as the "before" reference.
void NaiveMatMul(const float* a, const float* b, float* c, int64_t p,
                 int64_t q, int64_t r) {
  for (int64_t i = 0; i < p; ++i) {
    float* crow = c + i * r;
    for (int64_t j = 0; j < r; ++j) crow[j] = 0.0f;
    for (int64_t k = 0; k < q; ++k) {
      const float av = a[i * q + k];
      if (av == 0.0f) continue;
      const float* brow = b + k * r;
      for (int64_t j = 0; j < r; ++j) crow[j] += av * brow[j];
    }
  }
}

// The seed's causal-conv loop, "before" reference for the conv kernel.
void NaiveCausalConv(const float* x, const float* w, const float* bias,
                     float* out, int64_t batch, int64_t cin, int64_t cout,
                     int64_t len, int64_t k, int64_t dilation) {
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t co = 0; co < cout; ++co) {
      for (int64_t t = 0; t < len; ++t) {
        float acc = bias ? bias[co] : 0.0f;
        for (int64_t ci = 0; ci < cin; ++ci) {
          for (int64_t kk = 0; kk < k; ++kk) {
            const int64_t src = t - (k - 1 - kk) * dilation;
            if (src < 0) continue;
            acc += x[(b * cin + ci) * len + src] *
                   w[(co * cin + ci) * k + kk];
          }
        }
        out[(b * cout + co) * len + t] = acc;
      }
    }
  }
}

struct GemmRow {
  int64_t n;
  double naive_gflops;
  double scalar_1t_gflops;  // blocked kernel, scalar backend forced
  double blocked_1t_gflops;  // blocked kernel, active (default) backend
  double blocked_4t_gflops;
  int threads_effective_4t;
  bool clamped_4t() const { return threads_effective_4t < 4; }
};

GemmRow BenchGemm(int64_t n) {
  math::Rng rng(42 + n);
  math::Tensor a = math::Tensor::Uniform({n, n}, rng, -1, 1);
  math::Tensor b = math::Tensor::Uniform({n, n}, rng, -1, 1);
  math::Tensor c({n, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const double flops = 2.0 * static_cast<double>(n) * n * n;

  auto& pool = ThreadPool::Global();
  GemmRow row;
  row.n = n;
  const double t_naive =
      BestSecondsPerCall([&] { NaiveMatMul(pa, pb, pc, n, n, n); });
  row.naive_gflops = flops / t_naive * 1e-9;
  pool.SetNumThreads(1);
  {
    // Forced-scalar arm: same blocked loop structure, dispatch pinned to
    // the scalar microkernel, so blocked_1t / scalar_1t isolates the SIMD
    // gain from the blocking/packing gain.
    const math::kernels::Backend prev =
        math::kernels::SetBackend(math::kernels::Backend::kScalar);
    const double ts = BestSecondsPerCall(
        [&] { math::kernels::MatMul(pa, pb, pc, n, n, n); });
    row.scalar_1t_gflops = flops / ts * 1e-9;
    math::kernels::SetBackend(prev);
  }
  const double t1 =
      BestSecondsPerCall([&] { math::kernels::MatMul(pa, pb, pc, n, n, n); });
  row.blocked_1t_gflops = flops / t1 * 1e-9;
  pool.SetNumThreads(4);
  row.threads_effective_4t = pool.num_threads();
  const double t4 =
      BestSecondsPerCall([&] { math::kernels::MatMul(pa, pb, pc, n, n, n); });
  row.blocked_4t_gflops = flops / t4 * 1e-9;
  pool.SetNumThreads(1);
  return row;
}

struct ConvResult {
  int64_t batch = 8, cin = 16, cout = 32, len = 256, k = 3, dilation = 2;
  double naive_gflops;
  double fused_1t_gflops;
  double fused_4t_gflops;
  int threads_effective_4t;
  bool clamped_4t() const { return threads_effective_4t < 4; }
};

ConvResult BenchConv() {
  ConvResult r;
  math::Rng rng(7);
  math::Tensor x = math::Tensor::Uniform({r.batch, r.cin, r.len}, rng, -1, 1);
  math::Tensor w =
      math::Tensor::Uniform({r.cout, r.cin, r.k}, rng, -1, 1);
  math::Tensor bias = math::Tensor::Uniform({r.cout}, rng, -1, 1);
  math::Tensor out({r.batch, r.cout, r.len});
  const float* px = x.data();
  const float* pw = w.data();
  const float* pbias = bias.data();
  float* po = out.data();
  const double flops = 2.0 * static_cast<double>(r.batch) * r.cout * r.cin *
                       r.k * r.len;

  auto& pool = ThreadPool::Global();
  const double t_naive = BestSecondsPerCall([&] {
    NaiveCausalConv(px, pw, pbias, po, r.batch, r.cin, r.cout, r.len, r.k,
                    r.dilation);
  });
  r.naive_gflops = flops / t_naive * 1e-9;
  pool.SetNumThreads(1);
  const double t1 = BestSecondsPerCall([&] {
    math::kernels::CausalConv1dForward(px, pw, pbias, po, r.batch, r.cin,
                                       r.cout, r.len, r.k, r.dilation);
  });
  r.fused_1t_gflops = flops / t1 * 1e-9;
  pool.SetNumThreads(4);
  r.threads_effective_4t = pool.num_threads();
  const double t4 = BestSecondsPerCall([&] {
    math::kernels::CausalConv1dForward(px, pw, pbias, po, r.batch, r.cin,
                                       r.cout, r.len, r.k, r.dilation);
  });
  r.fused_4t_gflops = flops / t4 * 1e-9;
  pool.SetNumThreads(1);
  return r;
}

// One small end-to-end training run: the number every kernel improvement
// has to show up in.
double BenchTrainEpochSeconds(int64_t* out_steps) {
  market::MarketConfig mcfg;
  mcfg.num_assets = 8;
  mcfg.train_days = 120;
  mcfg.test_days = 20;
  const market::PricePanel panel = market::SimulateMarket(mcfg);

  core::CrossInsightConfig cfg;
  cfg.num_policies = 3;
  cfg.train_steps = 25;
  cfg.rollout_len = 8;
  *out_steps = cfg.train_steps;

  core::CrossInsightTrader trader(panel.num_assets(), cfg);
  const double t0 = Now();
  trader.Train(panel, /*curve_points=*/5);
  return Now() - t0;
}

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_math.json";

  std::printf("kernel backend: %s (isa %s)\n",
              math::kernels::ActiveBackend() ==
                      math::kernels::Backend::kSimd
                  ? "simd"
                  : "scalar",
              math::kernels::SimdIsaName());
  std::vector<GemmRow> gemm;
  for (int64_t n : {64, 256, 1024}) {
    gemm.push_back(BenchGemm(n));
    std::printf("gemm n=%-5lld naive %8s  scalar(1t) %8s  blocked(1t) %8s"
                "  blocked(%dt) %8s%s  GFLOP/s\n",
                static_cast<long long>(gemm.back().n),
                Fmt(gemm.back().naive_gflops).c_str(),
                Fmt(gemm.back().scalar_1t_gflops).c_str(),
                Fmt(gemm.back().blocked_1t_gflops).c_str(),
                gemm.back().threads_effective_4t,
                Fmt(gemm.back().blocked_4t_gflops).c_str(),
                gemm.back().clamped_4t() ? " [clamped]" : "");
  }
  const ConvResult conv = BenchConv();
  std::printf("conv  %lldx%lldx%lld len=%lld k=%lld d=%lld  naive %8s  "
              "fused(1t) %8s  fused(%dt) %8s%s  GFLOP/s\n",
              static_cast<long long>(conv.batch),
              static_cast<long long>(conv.cin),
              static_cast<long long>(conv.cout),
              static_cast<long long>(conv.len),
              static_cast<long long>(conv.k),
              static_cast<long long>(conv.dilation),
              Fmt(conv.naive_gflops).c_str(),
              Fmt(conv.fused_1t_gflops).c_str(), conv.threads_effective_4t,
              Fmt(conv.fused_4t_gflops).c_str(),
              conv.clamped_4t() ? " [clamped]" : "");

  int64_t train_steps = 0;
  const double train_secs = BenchTrainEpochSeconds(&train_steps);
  std::printf("train epoch (%lld rollouts): %s s\n",
              static_cast<long long>(train_steps), Fmt(train_secs).c_str());

  std::ostringstream js;
  js << "{\n";
  js << "  \"host\": {\"hardware_concurrency\": "
     << std::thread::hardware_concurrency()
     << ", \"default_threads\": " << cit::NumThreads() << "},\n";
  js << "  \"kernel_backend\": \""
     << (math::kernels::ActiveBackend() == math::kernels::Backend::kSimd
             ? "simd"
             : "scalar")
     << "\",\n";
  js << "  \"simd_isa\": \"" << math::kernels::SimdIsaName() << "\",\n";
  js << "  \"gemm_gflops\": [\n";
  for (size_t i = 0; i < gemm.size(); ++i) {
    const GemmRow& g = gemm[i];
    js << "    {\"n\": " << g.n << ", \"naive\": " << Fmt(g.naive_gflops)
       << ", \"scalar_1t\": " << Fmt(g.scalar_1t_gflops)
       << ", \"blocked_1t\": " << Fmt(g.blocked_1t_gflops)
       << ", \"blocked_4t\": " << Fmt(g.blocked_4t_gflops)
       << ", \"threads_effective_4t\": " << g.threads_effective_4t
       << ", \"clamped\": " << (g.clamped_4t() ? "true" : "false")
       << ", \"speedup_1t_vs_naive\": "
       << Fmt(g.blocked_1t_gflops / g.naive_gflops)
       << ", \"simd_speedup_1t\": "
       << Fmt(g.blocked_1t_gflops / g.scalar_1t_gflops) << "}"
       << (i + 1 < gemm.size() ? "," : "") << "\n";
  }
  js << "  ],\n";
  js << "  \"conv_gflops\": {\"batch\": " << conv.batch
     << ", \"cin\": " << conv.cin << ", \"cout\": " << conv.cout
     << ", \"len\": " << conv.len << ", \"k\": " << conv.k
     << ", \"dilation\": " << conv.dilation
     << ", \"naive\": " << Fmt(conv.naive_gflops)
     << ", \"fused_1t\": " << Fmt(conv.fused_1t_gflops)
     << ", \"fused_4t\": " << Fmt(conv.fused_4t_gflops)
     << ", \"threads_effective_4t\": " << conv.threads_effective_4t
     << ", \"clamped\": " << (conv.clamped_4t() ? "true" : "false")
     << "},\n";
  js << "  \"train_epoch\": {\"rollouts\": " << train_steps
     << ", \"seconds\": " << Fmt(train_secs) << "},\n";
  js << "  \"note\": \"naive = the seed's i-k-j MatMul loop compiled with "
        "the current flags; the seed build itself (plain -O3, no "
        "-march=native) measures lower still. scalar_1t pins the blocked "
        "kernel to the scalar backend (kernels::SetBackend); blocked_* use "
        "the backend reported in kernel_backend, so simd_speedup_1t "
        "isolates the microkernel gain. 4t arms record "
        "threads_effective_4t; when SetNumThreads was clamped by "
        "hardware_concurrency the row carries clamped=true and 4t/1t "
        "ratios are meaningless — gates must skip them.\"\n";
  js << "}\n";

  std::ofstream out(out_path);
  out << js.str();
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
