// Micro-benchmarks of the substrate layers (google-benchmark): tensor
// kernels, autodiff overhead, DWT decomposition, environment stepping, and
// full actor forward/backward passes.
#include <benchmark/benchmark.h>

#include "core/actor.h"
#include "core/critic.h"
#include "env/portfolio_env.h"
#include "market/simulator.h"
#include "math/autograd.h"
#include "math/rng.h"
#include "nn/optimizer.h"
#include "rl/features.h"
#include "signal/wavelet.h"

namespace {

using namespace cit;

void BM_TensorMatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  math::Rng rng(1);
  math::Tensor a = math::Tensor::Uniform({n, n}, rng, -1, 1);
  math::Tensor b = math::Tensor::Uniform({n, n}, rng, -1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::Tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_AutogradMatMulBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  math::Rng rng(2);
  ag::Var a = ag::Var::Param(math::Tensor::Uniform({n, n}, rng, -1, 1));
  ag::Var b = ag::Var::Param(math::Tensor::Uniform({n, n}, rng, -1, 1));
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    ag::Sum(ag::MatMul(a, b)).Backward();
  }
}
BENCHMARK(BM_AutogradMatMulBackward)->Arg(32)->Arg(64);

void BM_HaarDecompose(benchmark::State& state) {
  const int64_t n = state.range(0);
  math::Rng rng(3);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::HaarDecompose(x, 4));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HaarDecompose)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SplitHorizonBands(benchmark::State& state) {
  math::Rng rng(4);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        signal::SplitHorizonBands(x, state.range(0)));
  }
}
BENCHMARK(BM_SplitHorizonBands)->Arg(2)->Arg(5);

const market::PricePanel& BenchPanel() {
  static const market::PricePanel& panel = [] {
    market::MarketConfig cfg;
    cfg.num_assets = 20;
    cfg.train_days = 600;
    cfg.test_days = 200;
    return *new market::PricePanel(market::SimulateMarket(cfg));
  }();
  return panel;
}

void BM_EnvStep(benchmark::State& state) {
  const auto& panel = BenchPanel();
  env::EnvConfig cfg;
  cfg.window = 24;
  env::PortfolioEnv env(&panel, cfg);
  const std::vector<double> uniform(panel.num_assets(),
                                    1.0 / panel.num_assets());
  for (auto _ : state) {
    if (env.done()) env.Reset();
    benchmark::DoNotOptimize(env.Step(uniform));
  }
}
BENCHMARK(BM_EnvStep);

void BM_BandFeatureExtraction(benchmark::State& state) {
  const auto& panel = BenchPanel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rl::HorizonBandWindows(panel, 100, 24, state.range(0)));
  }
}
BENCHMARK(BM_BandFeatureExtraction)->Arg(2)->Arg(5);

core::CrossInsightConfig BenchActorConfig() {
  core::CrossInsightConfig cfg;
  cfg.num_policies = 5;
  cfg.window = 24;
  return cfg;
}

void BM_HorizonActorForward(benchmark::State& state) {
  const auto& panel = BenchPanel();
  auto cfg = BenchActorConfig();
  math::Rng rng(5);
  core::HorizonActor actor(cfg, panel.num_assets(), 0, rng);
  const auto bands =
      rl::HorizonBandWindows(panel, 100, cfg.window, cfg.num_policies);
  const std::vector<double> prev(panel.num_assets(),
                                 1.0 / panel.num_assets());
  for (auto _ : state) {
    benchmark::DoNotOptimize(actor.Forward(bands[0], prev));
  }
}
BENCHMARK(BM_HorizonActorForward);

void BM_HorizonActorForwardBackward(benchmark::State& state) {
  const auto& panel = BenchPanel();
  auto cfg = BenchActorConfig();
  math::Rng rng(6);
  core::HorizonActor actor(cfg, panel.num_assets(), 0, rng);
  nn::Adam opt(nn::ParamVars(actor), 1e-3f);
  const auto bands =
      rl::HorizonBandWindows(panel, 100, cfg.window, cfg.num_policies);
  const std::vector<double> prev(panel.num_assets(),
                                 1.0 / panel.num_assets());
  for (auto _ : state) {
    opt.ZeroGrad();
    ag::Sum(ag::Square(actor.Forward(bands[0], prev))).Backward();
    opt.Step();
  }
}
BENCHMARK(BM_HorizonActorForwardBackward);

void BM_CentralizedCriticForward(benchmark::State& state) {
  const auto& panel = BenchPanel();
  auto cfg = BenchActorConfig();
  math::Rng rng(7);
  core::CentralizedCritic critic(cfg, panel.num_assets(), rng);
  math::Tensor market = math::Tensor::Uniform(
      {cfg.critic_market_days * panel.num_assets()}, rng, -1, 1);
  math::Tensor pre = math::Tensor::Full(
      {cfg.num_policies * panel.num_assets()},
      1.0f / panel.num_assets());
  math::Tensor action = math::Tensor::Full({panel.num_assets()},
                                           1.0f / panel.num_assets());
  for (auto _ : state) {
    benchmark::DoNotOptimize(critic.Forward(market, pre, action));
  }
}
BENCHMARK(BM_CentralizedCriticForward);

}  // namespace

BENCHMARK_MAIN();
