// Reproduces Table III: AR/SR/CR of every baseline, the cross-insight
// trader ("Ours"), and the market index on the three markets' test splits.
// Shapes to compare with the paper: Ours > DeepTrader/SARL > PPO/DDPG/A2C >
// online methods; OLMAR loses money; Ours beats the market in all three.
#include <cstdio>

#include "exp_common.h"

int main() {
  using namespace cit;
  std::printf("Table III: performance comparison (paper Table III)\n");
  for (const auto& market_cfg : bench::AllMarketConfigs()) {
    const auto& panel = bench::PanelFor(market_cfg);
    bench::PrintMetricsHeader(market_cfg.name + " market");
    for (const auto& model : bench::kOnlineModels) {
      bench::PrintMetricsRow(model, bench::AverageOverSeeds(model, panel));
    }
    for (const auto& model : bench::kRlModels) {
      bench::PrintMetricsRow(model, bench::AverageOverSeeds(model, panel));
    }
    bench::PrintMetricsRow("Market",
                           bench::AverageOverSeeds("Market", panel));
  }
  std::printf(
      "\n(extended baselines, not in the paper's Table III)\n");
  for (const auto& market_cfg : bench::AllMarketConfigs()) {
    const auto& panel = bench::PanelFor(market_cfg);
    bench::PrintMetricsHeader(market_cfg.name + " market (extended)");
    for (const char* model : {"PAMR", "RMR", "Anticor"}) {
      bench::PrintMetricsRow(model, bench::AverageOverSeeds(model, panel));
    }
  }
  return 0;
}
