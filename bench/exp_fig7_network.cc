// Reproduces Fig. 7: accumulative return of the actor with different neural
// network structures — MLP, GRU, ours(GRU) = GRU + spatial attention, and
// ours = TCN + spatial attention. Shape to compare with the paper:
// ours > ours(GRU) > GRU > MLP (attention matters most, TCN > GRU).
#include <cstdio>

#include "common/env_config.h"
#include "exp_common.h"

int main() {
  using namespace cit;
  std::printf("Fig 7: actor network-structure ablation\n");
  const struct {
    core::BackboneKind kind;
    const char* label;
  } kVariants[] = {
      {core::BackboneKind::kMlp, "MLP"},
      {core::BackboneKind::kGru, "GRU"},
      {core::BackboneKind::kGruAttention, "ours(GRU)"},
      {core::BackboneKind::kTcnAttention, "ours"},
  };
  for (const auto& market_cfg : bench::AllMarketConfigs()) {
    const auto& panel = bench::PanelFor(market_cfg);
    bench::PrintMetricsHeader(market_cfg.name + " market");
    for (const auto& variant : kVariants) {
      const int seeds = ScaledSeeds();
      bench::MetricTriple sum;
      for (int s = 0; s < seeds; ++s) {
        core::CrossInsightConfig cfg = bench::BaseCitConfig(1000 + 31 * s);
        cfg.backbone = variant.kind;
        const auto result = bench::RunCit(cfg, panel);
        sum.ar += result.metrics.accumulative_return;
        sum.sr += result.metrics.sharpe_ratio;
        sum.cr += result.metrics.calmar_ratio;
      }
      sum.ar /= seeds;
      sum.sr /= seeds;
      sum.cr /= seeds;
      bench::PrintMetricsRow(variant.label, sum);
    }
  }
  return 0;
}
