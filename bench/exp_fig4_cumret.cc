// Reproduces Fig. 4: cumulative return vs. trading day for every compared
// model plus the market index, on the three test splits. Output is CSV:
// "market.model,day,wealth" — plot wealth against day to recover the figure.
// (OLMAR is discarded as in the paper, due to its poor performance.)
#include <cstdio>

#include "exp_common.h"

int main() {
  using namespace cit;
  std::printf("Fig 4: accumulative return during the test period (CSV)\n");
  std::printf("series,day,wealth\n");
  const std::vector<std::string> models = {
      "CRP", "ONS", "UP",   "EG",         "EIIE", "A2C",
      "DDPG", "PPO", "SARL", "DeepTrader", "Ours", "Market"};
  for (const auto& market_cfg : bench::AllMarketConfigs()) {
    const auto& panel = bench::PanelFor(market_cfg);
    for (const auto& model : models) {
      const auto result = bench::RunModel(model, panel, 1000);
      bench::PrintSeries(market_cfg.name + "." + model, result.days,
                         result.wealth);
    }
  }
  return 0;
}
