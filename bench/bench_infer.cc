// Inference-throughput benchmark, emitted as machine-readable JSON
// (BENCH_infer.json) so inference-path regressions are diffable across
// commits:
//
//  - backtest-style decision throughput (DecideWeights steps/sec) for a
//    trained cross-insight trader at 1 and 4 pool threads, in three modes:
//      grad      — tape construction forced with ag::SetNoGradAllowed(false)
//                  (the switch CIT_NOGRAD=0 flips), plans disabled;
//      nograd    — graph-free interpreted forward, plans disabled with
//                  plan::SetCompileAllowed(false) (CIT_COMPILE=0);
//      compiled  — graph-free with plan replay live (the default serving
//                  configuration): each decision replays a recorded
//                  ExecPlan over slab-allocated intermediates.
//  - the headline "nograd_speedup" ratio at 1 thread (nograd over grad
//    steps/sec), gated by scripts/check.sh at >= 1.5x;
//  - the headline "compiled_speedup" ratio at 1 thread (compiled over
//    nograd steps/sec), gated by scripts/check.sh at >= 1.25x.
//
// Decisions are bitwise identical in all three modes (tests/
// test_inference.cc and tests/test_plan.cc assert this); the arms differ
// only in tape/graph bookkeeping and op-dispatch overhead, so each ratio
// isolates exactly what the corresponding subsystem removes.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/env_config.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "core/trader.h"
#include "market/simulator.h"
#include "math/autograd.h"
#include "math/plan.h"
#include "math/tensor.h"
#include "obs/telemetry.h"

namespace {

using namespace cit;
using Clock = std::chrono::steady_clock;

double Now() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

core::CrossInsightConfig InferConfig() {
  core::CrossInsightConfig cfg;
  // Latency-shaped model: short window and narrow features, many
  // policies. This is the serving regime the inference path targets —
  // per-op tensors are small, so graph/tape bookkeeping (node + closure +
  // parents allocations per op) and per-op dispatch (shape checks, output
  // allocation, hook tests) are a real fraction of each decision. Wide
  // models amortize that overhead into large conv/GEMM kernels and the
  // modes converge (see the note emitted below). No training beyond a
  // token warm-up: decision quality is irrelevant to a throughput bench.
  cfg.num_policies = 6;
  cfg.window = 6;
  cfg.feature_dim = 2;
  cfg.head_hidden = 8;
  cfg.critic_hidden = 8;
  cfg.train_steps = 1;
  cfg.rollout_len = 2;
  cfg.seed = 23;
  return cfg;
}

// grad: tape forced on, plans off. nograd: graph-free interpreted.
// compiled: graph-free with plan replay (the default serving mode).
enum class Mode { kGrad, kNoGrad, kCompiled };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kGrad: return "grad";
    case Mode::kNoGrad: return "nograd";
    default: return "compiled";
  }
}

struct InferRow {
  int threads_requested = 0;
  int threads_effective = 0;
  Mode mode = Mode::kGrad;
  double seconds = 0.0;
  double steps_per_sec = 0.0;

  // The pool clamps to the hardware (unless CIT_OVERSUBSCRIBE=1), so on a
  // small host a "4-thread" arm may actually run with fewer workers. Such
  // arms are marked instead of silently posing as multi-threaded numbers,
  // and ratios built on them must not be gated (check.sh skips them).
  bool clamped() const { return threads_effective < threads_requested; }
};

InferRow BenchDecide(core::CrossInsightTrader& trader,
                     const market::PricePanel& panel, int threads,
                     Mode mode, int64_t repeats) {
  auto& pool = ThreadPool::Global();
  pool.SetNumThreads(threads);
  ag::SetNoGradAllowed(mode != Mode::kGrad);
  plan::SetCompileAllowed(mode == Mode::kCompiled);
  const int64_t lo = panel.train_end();
  const int64_t hi = panel.num_days() - 1;
  trader.Reset();
  // Warm-up sweep: faults in code paths, fills the buffer arena, and (in
  // compiled mode) records the per-shape plans, so the timed sweeps
  // measure steady state — pure replay, zero recordings.
  for (int64_t day = lo; day < hi; ++day) trader.DecideWeights(panel, day);
  int64_t steps = 0;
  const double t0 = Now();
  for (int64_t rep = 0; rep < repeats; ++rep) {
    trader.Reset();
    for (int64_t day = lo; day < hi; ++day) {
      trader.DecideWeights(panel, day);
      ++steps;
    }
  }
  InferRow row;
  row.threads_requested = threads;
  row.threads_effective = pool.num_threads();
  row.mode = mode;
  row.seconds = Now() - t0;
  row.steps_per_sec = static_cast<double>(steps) / row.seconds;
  ag::SetNoGradAllowed(true);
  plan::SetCompileAllowed(true);
  return row;
}

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_infer.json";

  market::MarketConfig mcfg;
  mcfg.num_assets = 4;
  mcfg.train_days = 160;
  mcfg.test_days = 60;
  const market::PricePanel panel = market::SimulateMarket(mcfg);

  const core::CrossInsightConfig cfg = InferConfig();
  core::CrossInsightTrader trader(panel.num_assets(), cfg);
  trader.Train(panel, /*curve_points=*/1);

  // Count plan traffic across the whole run (recordings happen in the
  // compiled warm-up sweeps; the timed sweeps are pure replays).
  obs::SetEnabled(true);
  obs::Registry::Global().ResetAll();

  const int64_t repeats = 6;
  const Mode kModes[] = {Mode::kGrad, Mode::kNoGrad, Mode::kCompiled};
  std::vector<InferRow> rows;
  for (int threads : {1, 4}) {
    for (Mode mode : kModes) {
      // Best-of-3 per cell so a stray scheduler hiccup cannot flip the
      // gated ratios on a short run.
      InferRow best;
      best.steps_per_sec = -1.0;
      for (int rep = 0; rep < 3; ++rep) {
        InferRow r = BenchDecide(trader, panel, threads, mode, repeats);
        if (r.steps_per_sec > best.steps_per_sec) best = r;
      }
      rows.push_back(best);
      std::printf("infer threads=%d (effective %d%s) %-8s %ss  %s steps/s\n",
                  best.threads_requested, best.threads_effective,
                  best.clamped() ? ", CLAMPED" : "", ModeName(best.mode),
                  Fmt(best.seconds).c_str(), Fmt(best.steps_per_sec).c_str());
    }
  }
  ThreadPool::Global().SetNumThreads(1);
  obs::SetEnabled(false);
  const auto plan_count = [](const char* name) {
    return obs::Registry::Global().GetCounter(name).Total();
  };
  const uint64_t plan_hits = plan_count("plan.hits");
  const uint64_t plan_misses = plan_count("plan.misses");
  const uint64_t plan_fused = plan_count("plan.fused_ops");

  // Headline ratios at 1 thread; row layout is 3 modes per thread count.
  const double nograd_1t = rows[1].steps_per_sec / rows[0].steps_per_sec;
  const double nograd_4t = rows[4].steps_per_sec / rows[3].steps_per_sec;
  const double compiled_1t = rows[2].steps_per_sec / rows[1].steps_per_sec;
  const double compiled_4t = rows[5].steps_per_sec / rows[4].steps_per_sec;
  const bool clamped_4t = rows[3].clamped() || rows[4].clamped() ||
                          rows[5].clamped();
  if (clamped_4t) {
    std::printf("warning: the %d-thread arms ran with %d effective "
                "thread(s) on this host; their ratios are marked clamped "
                "and are not comparable across hosts\n",
                rows[3].threads_requested, rows[3].threads_effective);
  }
  std::printf("nograd speedup:   %sx at 1 thread, %sx at %d threads\n",
              Fmt(nograd_1t).c_str(), Fmt(nograd_4t).c_str(),
              rows[3].threads_requested);
  std::printf("compiled speedup: %sx at 1 thread, %sx at %d threads "
              "(plan hits %llu, misses %llu, fused ops %llu)\n",
              Fmt(compiled_1t).c_str(), Fmt(compiled_4t).c_str(),
              rows[3].threads_requested,
              static_cast<unsigned long long>(plan_hits),
              static_cast<unsigned long long>(plan_misses),
              static_cast<unsigned long long>(plan_fused));

  std::ostringstream js;
  js << "{\n";
  js << "  \"host\": {\"hardware_concurrency\": "
     << std::thread::hardware_concurrency()
     << ", \"default_threads\": " << cit::NumThreads() << "},\n";
  js << "  \"config\": {\"num_policies\": " << cfg.num_policies
     << ", \"window\": " << cfg.window
     << ", \"num_assets\": " << panel.num_assets()
     << ", \"test_days\": " << (panel.num_days() - panel.train_end())
     << ", \"repeats\": " << repeats << "},\n";
  js << "  \"infer\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const InferRow& r = rows[i];
    js << "    {\"threads\": " << r.threads_requested
       << ", \"threads_effective\": " << r.threads_effective
       << ", \"clamped\": " << (r.clamped() ? "true" : "false")
       << ", \"mode\": \"" << ModeName(r.mode) << "\""
       << ", \"seconds\": " << Fmt(r.seconds)
       << ", \"steps_per_sec\": " << Fmt(r.steps_per_sec) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  js << "  ],\n";
  js << "  \"nograd_speedup\": " << Fmt(nograd_1t) << ",\n";
  js << "  \"nograd_speedup_4t\": " << Fmt(nograd_4t) << ",\n";
  js << "  \"compiled_speedup\": " << Fmt(compiled_1t) << ",\n";
  js << "  \"compiled_speedup_4t\": " << Fmt(compiled_4t) << ",\n";
  js << "  \"speedup_4t_clamped\": " << (clamped_4t ? "true" : "false")
     << ",\n";
  js << "  \"plan\": {\"hits\": " << plan_hits
     << ", \"misses\": " << plan_misses
     << ", \"fused_ops\": " << plan_fused << "},\n";
  js << "  \"note\": \"DecideWeights sweep over the test split; all three "
        "modes run the identical call sites and produce bitwise identical "
        "weights. grad forces tape construction via ag::SetNoGradAllowed("
        "false) (CIT_NOGRAD=0); nograd is the graph-free interpreted "
        "forward with plans disabled (CIT_COMPILE=0); compiled replays "
        "recorded ExecPlans (the default). nograd_speedup is the 1-thread "
        "nograd/grad steps-per-sec ratio (check.sh gates >= 1.5); "
        "compiled_speedup is the 1-thread compiled/nograd ratio (check.sh "
        "gates >= 1.25). Arms whose pool was clamped below the requested "
        "thread count carry clamped=true; their _4t ratios "
        "(speedup_4t_clamped) are informational only, never gated.\"\n";
  js << "}\n";

  std::ofstream out(out_path);
  out << js.str();
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
