// Inference-throughput benchmark, emitted as machine-readable JSON
// (BENCH_infer.json) so inference-path regressions are diffable across
// commits:
//
//  - backtest-style decision throughput (DecideWeights steps/sec) for a
//    trained cross-insight trader, grad-on vs grad-off, at 1 and 4 pool
//    threads. Grad-on is forced with ag::SetNoGradAllowed(false) — the
//    same switch CIT_NOGRAD=0 flips — which routes the identical call
//    sites through full tape construction;
//  - the headline "nograd_speedup" ratio at 1 thread (steps/sec grad-off
//    over grad-on), the number scripts/check.sh gates on (>= 1.5x).
//
// Decisions are bitwise identical in both modes (tests/test_inference.cc
// asserts this); the two arms differ only in graph/tape bookkeeping, so
// the ratio isolates exactly what NoGradGuard removes.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/env_config.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "core/trader.h"
#include "market/simulator.h"
#include "math/autograd.h"
#include "math/tensor.h"

namespace {

using namespace cit;
using Clock = std::chrono::steady_clock;

double Now() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

core::CrossInsightConfig InferConfig() {
  core::CrossInsightConfig cfg;
  // Latency-shaped model: short window and narrow features, many
  // policies. This is the serving regime the inference path targets —
  // per-op tensors are small, so graph/tape bookkeeping (node + closure +
  // parents allocations per op) is a real fraction of each decision. Wide
  // models amortize that overhead into large conv/GEMM kernels and both
  // modes converge (see the note emitted below). No training beyond a
  // token warm-up: decision quality is irrelevant to a throughput bench.
  cfg.num_policies = 6;
  cfg.window = 6;
  cfg.feature_dim = 2;
  cfg.head_hidden = 8;
  cfg.critic_hidden = 8;
  cfg.train_steps = 1;
  cfg.rollout_len = 2;
  cfg.seed = 23;
  return cfg;
}

struct InferRow {
  int threads_requested = 0;
  int threads_effective = 0;
  bool nograd = false;
  double seconds = 0.0;
  double steps_per_sec = 0.0;
};

InferRow BenchDecide(core::CrossInsightTrader& trader,
                     const market::PricePanel& panel, int threads,
                     bool nograd, int64_t repeats) {
  auto& pool = ThreadPool::Global();
  pool.SetNumThreads(threads);
  ag::SetNoGradAllowed(nograd);
  const int64_t lo = panel.train_end();
  const int64_t hi = panel.num_days() - 1;
  trader.Reset();
  // Warm-up sweep: faults in code paths and fills the buffer arena so the
  // timed sweeps measure steady state.
  for (int64_t day = lo; day < hi; ++day) trader.DecideWeights(panel, day);
  int64_t steps = 0;
  const double t0 = Now();
  for (int64_t rep = 0; rep < repeats; ++rep) {
    trader.Reset();
    for (int64_t day = lo; day < hi; ++day) {
      trader.DecideWeights(panel, day);
      ++steps;
    }
  }
  InferRow row;
  row.threads_requested = threads;
  row.threads_effective = pool.num_threads();
  row.nograd = nograd;
  row.seconds = Now() - t0;
  row.steps_per_sec = static_cast<double>(steps) / row.seconds;
  ag::SetNoGradAllowed(true);
  return row;
}

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_infer.json";

  market::MarketConfig mcfg;
  mcfg.num_assets = 4;
  mcfg.train_days = 160;
  mcfg.test_days = 60;
  const market::PricePanel panel = market::SimulateMarket(mcfg);

  const core::CrossInsightConfig cfg = InferConfig();
  core::CrossInsightTrader trader(panel.num_assets(), cfg);
  trader.Train(panel, /*curve_points=*/1);

  const int64_t repeats = 6;
  std::vector<InferRow> rows;
  for (int threads : {1, 4}) {
    for (bool nograd : {false, true}) {
      // Best-of-3 per cell so a stray scheduler hiccup cannot flip the
      // gated ratio on a short run.
      InferRow best;
      best.steps_per_sec = -1.0;
      for (int rep = 0; rep < 3; ++rep) {
        InferRow r = BenchDecide(trader, panel, threads, nograd, repeats);
        if (r.steps_per_sec > best.steps_per_sec) best = r;
      }
      rows.push_back(best);
      std::printf("infer threads=%d (effective %d) %-8s %ss  %s steps/s\n",
                  best.threads_requested, best.threads_effective,
                  best.nograd ? "grad-off" : "grad-on",
                  Fmt(best.seconds).c_str(),
                  Fmt(best.steps_per_sec).c_str());
    }
  }
  ThreadPool::Global().SetNumThreads(1);

  // Headline ratio at 1 thread: rows[0] is grad-on, rows[1] grad-off.
  const double speedup_1t = rows[1].steps_per_sec / rows[0].steps_per_sec;
  const double speedup_4t = rows[3].steps_per_sec / rows[2].steps_per_sec;
  std::printf("nograd speedup: %sx at 1 thread, %sx at %d threads\n",
              Fmt(speedup_1t).c_str(), Fmt(speedup_4t).c_str(),
              rows[2].threads_requested);

  std::ostringstream js;
  js << "{\n";
  js << "  \"host\": {\"hardware_concurrency\": "
     << std::thread::hardware_concurrency()
     << ", \"default_threads\": " << cit::NumThreads() << "},\n";
  js << "  \"config\": {\"num_policies\": " << cfg.num_policies
     << ", \"window\": " << cfg.window
     << ", \"num_assets\": " << panel.num_assets()
     << ", \"test_days\": " << (panel.num_days() - panel.train_end())
     << ", \"repeats\": " << repeats << "},\n";
  js << "  \"infer\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const InferRow& r = rows[i];
    js << "    {\"threads\": " << r.threads_requested
       << ", \"threads_effective\": " << r.threads_effective
       << ", \"mode\": \"" << (r.nograd ? "nograd" : "grad") << "\""
       << ", \"seconds\": " << Fmt(r.seconds)
       << ", \"steps_per_sec\": " << Fmt(r.steps_per_sec) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  js << "  ],\n";
  js << "  \"nograd_speedup\": " << Fmt(speedup_1t) << ",\n";
  js << "  \"nograd_speedup_4t\": " << Fmt(speedup_4t) << ",\n";
  js << "  \"note\": \"DecideWeights sweep over the test split; grad-on is "
        "forced via ag::SetNoGradAllowed(false) (CIT_NOGRAD=0), so both "
        "modes run the identical guarded call sites and produce bitwise "
        "identical weights. nograd_speedup is the 1-thread steps/sec ratio "
        "grad-off / grad-on; check.sh gates on >= 1.5.\"\n";
  js << "}\n";

  std::ofstream out(out_path);
  out << js.str();
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
