// Reproduces Fig. 5: cumulative return of each individual horizon policy,
// the fused cross-insight policy, and the market index on the H.K. market.
// Policies 1..3 trade the short, middle, and long-term horizons. Shape to
// compare: fused > each individual policy; the short-horizon policy is the
// weakest; all policies exhibit distinct curves.
#include <cstdio>

#include "core/trader.h"
#include "env/backtest.h"
#include "exp_common.h"

int main() {
  using namespace cit;
  std::printf("Fig 5: accumulative return of different policies (CSV)\n");
  std::printf("series,day,wealth\n");
  const auto market_cfg = market::HkMarketConfig();
  const auto& panel = bench::PanelFor(market_cfg);

  core::CrossInsightConfig cfg = bench::BaseCitConfig(1000);
  cfg.num_policies = 3;
  core::CrossInsightTrader trader(panel.num_assets(), cfg);
  trader.Train(panel);

  // Fused decision.
  const auto fused = env::RunTestBacktest(trader, panel, cfg.window);
  bench::PrintSeries("HK.fused", fused.days, fused.wealth);
  // Individual horizon policies. The trader orders band 0 = longest
  // horizon; the paper labels policy 1 as short-term, so invert the index
  // for display.
  for (int64_t k = 0; k < cfg.num_policies; ++k) {
    auto agent = trader.MakePolicyAgent(k);
    const auto result = env::RunTestBacktest(*agent, panel, cfg.window);
    const int64_t label = cfg.num_policies - k;  // 1 = short ... 3 = long
    bench::PrintSeries("HK.policy" + std::to_string(label), result.days,
                       result.wealth);
  }
  const auto index = bench::RunMarketBaseline(panel);
  bench::PrintSeries("HK.HSI-index", index.days, index.wealth);
  return 0;
}
