#ifndef CIT_OLPS_SIMPLEX_H_
#define CIT_OLPS_SIMPLEX_H_

#include <vector>

namespace cit::olps {

// Euclidean projection of `y` onto the probability simplex
// {w : w_i >= 0, sum w_i = 1} (Duchi et al. 2008, O(n log n)).
std::vector<double> ProjectToSimplex(const std::vector<double>& y);

// Projection onto the simplex in the norm induced by symmetric positive
// definite matrix `a` (row-major n x n): argmin_w (w-y)^T A (w-y).
// Used by the ONS baseline. Solved by projected gradient descent; `iters`
// controls accuracy.
std::vector<double> ProjectToSimplexANorm(const std::vector<double>& y,
                                          const std::vector<double>& a,
                                          int iters = 100);

}  // namespace cit::olps

#endif  // CIT_OLPS_SIMPLEX_H_
