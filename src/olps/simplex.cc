#include "olps/simplex.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cit::olps {

std::vector<double> ProjectToSimplex(const std::vector<double>& y) {
  const size_t n = y.size();
  CIT_CHECK_GT(n, 0u);
  std::vector<double> sorted = y;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double cumsum = 0.0;
  double theta = 0.0;
  int64_t rho = 0;
  for (size_t j = 0; j < n; ++j) {
    cumsum += sorted[j];
    const double candidate =
        (cumsum - 1.0) / static_cast<double>(j + 1);
    if (sorted[j] - candidate > 0.0) {
      rho = static_cast<int64_t>(j + 1);
      theta = candidate;
    }
  }
  CIT_CHECK_GT(rho, 0);
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) w[i] = std::max(0.0, y[i] - theta);
  return w;
}

std::vector<double> ProjectToSimplexANorm(const std::vector<double>& y,
                                          const std::vector<double>& a,
                                          int iters) {
  const size_t n = y.size();
  CIT_CHECK_EQ(a.size(), n * n);
  // Lipschitz constant estimate: row-sum norm of A.
  double lips = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (size_t j = 0; j < n; ++j) row += std::fabs(a[i * n + j]);
    lips = std::max(lips, row);
  }
  const double step = lips > 0.0 ? 1.0 / (2.0 * lips) : 0.5;

  std::vector<double> w = ProjectToSimplex(y);
  std::vector<double> grad(n);
  for (int it = 0; it < iters; ++it) {
    // grad = 2 A (w - y)
    for (size_t i = 0; i < n; ++i) {
      double g = 0.0;
      for (size_t j = 0; j < n; ++j) g += a[i * n + j] * (w[j] - y[j]);
      grad[i] = 2.0 * g;
    }
    std::vector<double> next(n);
    for (size_t i = 0; i < n; ++i) next[i] = w[i] - step * grad[i];
    next = ProjectToSimplex(next);
    double shift = 0.0;
    for (size_t i = 0; i < n; ++i) shift += std::fabs(next[i] - w[i]);
    w = std::move(next);
    if (shift < 1e-12) break;
  }
  return w;
}

}  // namespace cit::olps
