#ifndef CIT_OLPS_STRATEGIES_H_
#define CIT_OLPS_STRATEGIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "env/backtest.h"
#include "market/source.h"
#include "math/rng.h"

namespace cit::olps {

// Base for online portfolio-selection strategies. Subclasses implement
// Rebalance() which sees the panel up to `day` (inclusive) and the weights
// played at the previous period; the base class handles first-call
// initialization to the uniform portfolio.
class OlpsStrategy : public env::TradingAgent {
 public:
  void Reset() override;

  using env::TradingAgent::DecideWeights;
  std::vector<double> DecideWeights(const market::PanelView& panel,
                                    int64_t day) final;

 protected:
  // Next-period weights; `last_weights` is what was played last period and
  // `last_relatives` the realized price relatives since then (empty on the
  // first call after the initial uniform period).
  virtual std::vector<double> Rebalance(
      const market::PanelView& panel, int64_t day,
      const std::vector<double>& last_weights,
      const std::vector<double>& last_relatives) = 0;

 private:
  bool initialized_ = false;
  int64_t last_day_ = -1;
  std::vector<double> last_weights_;
};

// Market baseline: equal-dollar buy and hold from the first decision day;
// weights drift with prices thereafter (zero turnover).
class BuyAndHold : public env::TradingAgent {
 public:
  std::string name() const override { return "Market"; }
  void Reset() override { start_day_ = -1; }
  using env::TradingAgent::DecideWeights;
  std::vector<double> DecideWeights(const market::PanelView& panel,
                                    int64_t day) override;

 private:
  int64_t start_day_ = -1;
};

// Constant rebalanced portfolio (Cover & Gluss): rebalance to the uniform
// portfolio every period.
class Crp : public OlpsStrategy {
 public:
  std::string name() const override { return "CRP"; }

 protected:
  std::vector<double> Rebalance(const market::PanelView&, int64_t,
                                const std::vector<double>&,
                                const std::vector<double>&) override;
};

// Exponential gradient (Helmbold et al. 1998):
//   w_i <- w_i * exp(eta * x_i / (w.x)) / Z.
class Eg : public OlpsStrategy {
 public:
  explicit Eg(double eta = 0.05) : eta_(eta) {}
  std::string name() const override { return "EG"; }

 protected:
  std::vector<double> Rebalance(const market::PanelView&, int64_t,
                                const std::vector<double>& last_weights,
                                const std::vector<double>& last_relatives)
      override;

 private:
  double eta_;
};

// Online Newton step (Agarwal et al. 2006) with L2-regularized second-order
// updates and projection in the A-norm.
class Ons : public OlpsStrategy {
 public:
  Ons(double eta = 0.0, double beta = 1.0, double delta = 0.125);
  std::string name() const override { return "ONS"; }
  void Reset() override;

 protected:
  std::vector<double> Rebalance(const market::PanelView&, int64_t,
                                const std::vector<double>& last_weights,
                                const std::vector<double>& last_relatives)
      override;

 private:
  double eta_;
  double beta_;
  double delta_;
  std::vector<double> a_;  // n x n accumulated Hessian + I
  std::vector<double> b_;  // accumulated scaled gradients
  bool state_ready_ = false;
};

// Cover's universal portfolio, approximated by wealth-weighting `samples`
// CRP managers drawn uniformly from the simplex (Dirichlet(1)), the
// standard Monte-Carlo implementation.
class Up : public OlpsStrategy {
 public:
  explicit Up(int64_t samples = 500, uint64_t seed = 99);
  std::string name() const override { return "UP"; }
  void Reset() override;

 protected:
  std::vector<double> Rebalance(const market::PanelView&, int64_t,
                                const std::vector<double>&,
                                const std::vector<double>& last_relatives)
      override;

 private:
  int64_t samples_;
  uint64_t seed_;
  std::vector<std::vector<double>> managers_;  // [samples][assets]
  std::vector<double> manager_wealth_;
};

// Online moving-average reversion (Li & Hoi 2012), OLMAR-1:
// predicted relative from a w-day moving average, passive-aggressive step
// toward expected return >= epsilon.
class Olmar : public OlpsStrategy {
 public:
  Olmar(int64_t ma_window = 5, double epsilon = 10.0)
      : ma_window_(ma_window), epsilon_(epsilon) {}
  std::string name() const override { return "OLMAR"; }

 protected:
  std::vector<double> Rebalance(const market::PanelView& panel, int64_t day,
                                const std::vector<double>& last_weights,
                                const std::vector<double>&) override;

 private:
  int64_t ma_window_;
  double epsilon_;
};

// Passive-aggressive mean reversion (Li et al. 2012), PAMR-0.
class Pamr : public OlpsStrategy {
 public:
  explicit Pamr(double epsilon = 0.5) : epsilon_(epsilon) {}
  std::string name() const override { return "PAMR"; }

 protected:
  std::vector<double> Rebalance(const market::PanelView&, int64_t,
                                const std::vector<double>& last_weights,
                                const std::vector<double>& last_relatives)
      override;

 private:
  double epsilon_;
};

// Robust median reversion (Huang et al. 2013): OLMAR with the moving-average
// price estimate replaced by the L1-median of the trailing window.
class Rmr : public OlpsStrategy {
 public:
  Rmr(int64_t window = 5, double epsilon = 5.0)
      : window_(window), epsilon_(epsilon) {}
  std::string name() const override { return "RMR"; }

 protected:
  std::vector<double> Rebalance(const market::PanelView& panel, int64_t day,
                                const std::vector<double>& last_weights,
                                const std::vector<double>&) override;

 private:
  int64_t window_;
  double epsilon_;
};

// Anti-correlation (Borodin et al. 2004): transfers wealth between assets
// based on lagged cross-correlations over two adjacent windows.
class Anticor : public OlpsStrategy {
 public:
  explicit Anticor(int64_t window = 8) : window_(window) {}
  std::string name() const override { return "Anticor"; }

 protected:
  std::vector<double> Rebalance(const market::PanelView& panel, int64_t day,
                                const std::vector<double>& last_weights,
                                const std::vector<double>&) override;

 private:
  int64_t window_;
};

// Correlation-driven nonparametric learning (Li et al. 2011, CORN): finds
// historical windows correlated with the current market window (Pearson
// corr >= `rho` over the concatenated per-asset relatives) and plays the
// log-optimal portfolio over the days that followed those windows.
class Corn : public OlpsStrategy {
 public:
  Corn(int64_t window = 5, double rho = 0.2, int64_t opt_iters = 60)
      : window_(window), rho_(rho), opt_iters_(opt_iters) {}
  std::string name() const override { return "CORN"; }

 protected:
  std::vector<double> Rebalance(const market::PanelView& panel, int64_t day,
                                const std::vector<double>& last_weights,
                                const std::vector<double>&) override;

 private:
  int64_t window_;
  double rho_;
  int64_t opt_iters_;
};

// Naive momentum: all wealth on the asset with the best cumulative return
// over the trailing window.
class BestStock : public OlpsStrategy {
 public:
  explicit BestStock(int64_t window = 30) : window_(window) {}
  std::string name() const override { return "BestStock"; }

 protected:
  std::vector<double> Rebalance(const market::PanelView& panel, int64_t day,
                                const std::vector<double>&,
                                const std::vector<double>&) override;

 private:
  int64_t window_;
};

// Follow-the-leader: plays the best constant rebalanced portfolio in
// hindsight over all data seen so far (the online analogue of BCRP),
// found by projected gradient ascent on the log-wealth objective.
class FollowTheLeader : public OlpsStrategy {
 public:
  explicit FollowTheLeader(int64_t opt_iters = 40)
      : opt_iters_(opt_iters) {}
  std::string name() const override { return "FTL"; }

 protected:
  std::vector<double> Rebalance(const market::PanelView& panel, int64_t day,
                                const std::vector<double>& last_weights,
                                const std::vector<double>&) override;

 private:
  int64_t opt_iters_;
};

// Maximizes sum_t log(b . x_t) over the simplex for the given price-relative
// rows via projected gradient ascent; `start` is the initial point (uniform
// when empty). Exposed for CORN/FTL and for tests.
std::vector<double> LogOptimalPortfolio(
    const std::vector<std::vector<double>>& relatives,
    std::vector<double> start, int64_t iters);

}  // namespace cit::olps

#endif  // CIT_OLPS_STRATEGIES_H_
