#include "olps/strategies.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "olps/simplex.h"
#include "signal/analysis.h"
#include "signal/filters.h"

namespace cit::olps {
namespace {

std::vector<double> Uniform(int64_t n) {
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double MeanOf(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

}  // namespace

void OlpsStrategy::Reset() {
  initialized_ = false;
  last_day_ = -1;
  last_weights_.clear();
}

std::vector<double> OlpsStrategy::DecideWeights(
    const market::PanelView& panel, int64_t day) {
  const int64_t m = panel.num_assets();
  if (!initialized_) {
    initialized_ = true;
    last_day_ = day;
    last_weights_ = Uniform(m);
    return last_weights_;
  }
  // Realized relatives since the previous decision (normally one day).
  std::vector<double> relatives(m, 1.0);
  for (int64_t d = last_day_ + 1; d <= day; ++d) {
    for (int64_t i = 0; i < m; ++i) {
      relatives[i] *= panel.PriceRelative(d, i);
    }
  }
  std::vector<double> next = Rebalance(panel, day, last_weights_, relatives);
  CIT_CHECK_EQ(static_cast<int64_t>(next.size()), m);
  last_day_ = day;
  last_weights_ = next;
  return next;
}

std::vector<double> BuyAndHold::DecideWeights(
    const market::PanelView& panel, int64_t day) {
  const int64_t m = panel.num_assets();
  if (start_day_ < 0) start_day_ = day;
  // Equal dollars invested at start_day_, held since: weight proportional
  // to each asset's price growth.
  std::vector<double> w(m);
  for (int64_t i = 0; i < m; ++i) {
    w[i] = panel.Close(day, i) / panel.Close(start_day_, i);
  }
  return env::NormalizeToSimplex(std::move(w));
}

std::vector<double> Crp::Rebalance(const market::PanelView& panel, int64_t,
                                   const std::vector<double>&,
                                   const std::vector<double>&) {
  return Uniform(panel.num_assets());
}

std::vector<double> Eg::Rebalance(const market::PanelView&, int64_t,
                                  const std::vector<double>& last_weights,
                                  const std::vector<double>& x) {
  const double denom = std::max(Dot(last_weights, x), 1e-12);
  std::vector<double> w(last_weights.size());
  double total = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    w[i] = last_weights[i] * std::exp(eta_ * x[i] / denom);
    total += w[i];
  }
  for (double& v : w) v /= total;
  return w;
}

Ons::Ons(double eta, double beta, double delta)
    : eta_(eta), beta_(beta), delta_(delta) {}

void Ons::Reset() {
  OlpsStrategy::Reset();
  a_.clear();
  b_.clear();
  state_ready_ = false;
}

std::vector<double> Ons::Rebalance(const market::PanelView& panel, int64_t,
                                   const std::vector<double>& last_weights,
                                   const std::vector<double>& x) {
  const int64_t m = panel.num_assets();
  if (!state_ready_) {
    a_.assign(m * m, 0.0);
    for (int64_t i = 0; i < m; ++i) a_[i * m + i] = 1.0;  // A = I
    b_.assign(m, 0.0);
    state_ready_ = true;
  }
  // grad of log(w.x) at the played weights.
  const double px = std::max(Dot(last_weights, x), 1e-12);
  std::vector<double> grad(m);
  for (int64_t i = 0; i < m; ++i) grad[i] = x[i] / px;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      a_[i * m + j] += grad[i] * grad[j];
    }
  }
  for (int64_t i = 0; i < m; ++i) {
    b_[i] += (1.0 + 1.0 / beta_) * grad[i];
  }
  // Solve A y = delta * b by Gaussian elimination (A is SPD, small).
  std::vector<double> lhs = a_;
  std::vector<double> y = b_;
  for (double& v : y) v *= delta_;
  for (int64_t col = 0; col < m; ++col) {
    // Partial pivot.
    int64_t pivot = col;
    for (int64_t r = col + 1; r < m; ++r) {
      if (std::fabs(lhs[r * m + col]) > std::fabs(lhs[pivot * m + col])) {
        pivot = r;
      }
    }
    if (pivot != col) {
      for (int64_t c = 0; c < m; ++c) {
        std::swap(lhs[col * m + c], lhs[pivot * m + c]);
      }
      std::swap(y[col], y[pivot]);
    }
    const double diag = lhs[col * m + col];
    CIT_CHECK_GT(std::fabs(diag), 1e-14);
    for (int64_t r = col + 1; r < m; ++r) {
      const double factor = lhs[r * m + col] / diag;
      if (factor == 0.0) continue;
      for (int64_t c = col; c < m; ++c) {
        lhs[r * m + c] -= factor * lhs[col * m + c];
      }
      y[r] -= factor * y[col];
    }
  }
  for (int64_t r = m - 1; r >= 0; --r) {
    double s = y[r];
    for (int64_t c = r + 1; c < m; ++c) s -= lhs[r * m + c] * y[c];
    y[r] = s / lhs[r * m + r];
  }
  // Mix with uniform (the eta smoothing) then project in the A-norm.
  std::vector<double> target(m);
  for (int64_t i = 0; i < m; ++i) {
    target[i] = (1.0 - eta_) * y[i] + eta_ / static_cast<double>(m);
  }
  return ProjectToSimplexANorm(target, a_);
}

Up::Up(int64_t samples, uint64_t seed) : samples_(samples), seed_(seed) {}

void Up::Reset() {
  OlpsStrategy::Reset();
  managers_.clear();
  manager_wealth_.clear();
}

std::vector<double> Up::Rebalance(const market::PanelView& panel, int64_t,
                                  const std::vector<double>&,
                                  const std::vector<double>& x) {
  const int64_t m = panel.num_assets();
  if (managers_.empty()) {
    math::Rng rng(seed_);
    managers_.reserve(samples_);
    for (int64_t s = 0; s < samples_; ++s) {
      managers_.push_back(rng.Dirichlet(static_cast<int>(m), 1.0));
    }
    manager_wealth_.assign(samples_, 1.0);
  }
  // Update each CRP manager's wealth with the realized relatives, then
  // pool managers' portfolios weighted by wealth.
  std::vector<double> pooled(m, 0.0);
  double total = 0.0;
  for (int64_t s = 0; s < samples_; ++s) {
    manager_wealth_[s] *= Dot(managers_[s], x);
    total += manager_wealth_[s];
  }
  CIT_CHECK_GT(total, 0.0);
  for (int64_t s = 0; s < samples_; ++s) {
    const double w = manager_wealth_[s] / total;
    for (int64_t i = 0; i < m; ++i) pooled[i] += w * managers_[s][i];
  }
  return env::NormalizeToSimplex(std::move(pooled));
}

std::vector<double> Olmar::Rebalance(const market::PanelView& panel,
                                     int64_t day,
                                     const std::vector<double>& last_weights,
                                     const std::vector<double>&) {
  const int64_t m = panel.num_assets();
  // Predicted next relative: MA_w(p) / p_day (moving-average reversion).
  std::vector<double> xpred(m);
  const int64_t w0 = std::max<int64_t>(1, day - ma_window_ + 1);
  for (int64_t i = 0; i < m; ++i) {
    double ma = 0.0;
    int64_t count = 0;
    for (int64_t d = w0; d <= day; ++d) {
      ma += panel.Close(d, i);
      ++count;
    }
    ma /= static_cast<double>(count);
    xpred[i] = ma / panel.Close(day, i);
  }
  const double xbar = MeanOf(xpred);
  double denom = 0.0;
  for (double v : xpred) denom += (v - xbar) * (v - xbar);
  double tau = 0.0;
  if (denom > 1e-12) {
    tau = std::max(0.0, (epsilon_ - Dot(last_weights, xpred)) / denom);
  }
  std::vector<double> w = last_weights;
  for (int64_t i = 0; i < m; ++i) w[i] += tau * (xpred[i] - xbar);
  return ProjectToSimplex(w);
}

std::vector<double> Pamr::Rebalance(const market::PanelView&, int64_t,
                                    const std::vector<double>& last_weights,
                                    const std::vector<double>& x) {
  const size_t m = x.size();
  const double xbar = MeanOf(x);
  double denom = 0.0;
  for (double v : x) denom += (v - xbar) * (v - xbar);
  const double loss = std::max(0.0, Dot(last_weights, x) - epsilon_);
  const double tau = denom > 1e-12 ? loss / denom : 0.0;
  std::vector<double> w = last_weights;
  for (size_t i = 0; i < m; ++i) w[i] -= tau * (x[i] - xbar);
  return ProjectToSimplex(w);
}

std::vector<double> Rmr::Rebalance(const market::PanelView& panel,
                                   int64_t day,
                                   const std::vector<double>& last_weights,
                                   const std::vector<double>&) {
  const int64_t m = panel.num_assets();
  // Robust price estimate: L1-median of the trailing window of price
  // vectors, normalized per asset by today's price.
  const int64_t w0 = std::max<int64_t>(0, day - window_ + 1);
  std::vector<std::vector<double>> points;
  for (int64_t d = w0; d <= day; ++d) {
    std::vector<double> p(m);
    for (int64_t i = 0; i < m; ++i) p[i] = panel.Close(d, i);
    points.push_back(std::move(p));
  }
  const std::vector<double> median = signal::L1Median(points);
  std::vector<double> xpred(m);
  for (int64_t i = 0; i < m; ++i) {
    xpred[i] = median[i] / panel.Close(day, i);
  }
  const double xbar = MeanOf(xpred);
  double denom = 0.0;
  for (double v : xpred) denom += (v - xbar) * (v - xbar);
  double tau = 0.0;
  if (denom > 1e-12) {
    tau = std::max(0.0, (epsilon_ - Dot(last_weights, xpred)) / denom);
  }
  std::vector<double> w = last_weights;
  for (int64_t i = 0; i < m; ++i) w[i] += tau * (xpred[i] - xbar);
  return ProjectToSimplex(w);
}

std::vector<double> Anticor::Rebalance(const market::PanelView& panel,
                                       int64_t day,
                                       const std::vector<double>& last_weights,
                                       const std::vector<double>&) {
  const int64_t m = panel.num_assets();
  const int64_t w = window_;
  if (day < 2 * w) return last_weights;

  // Log returns over the two adjacent windows.
  auto log_returns = [&](int64_t start) {
    std::vector<std::vector<double>> lr(m, std::vector<double>(w));
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t k = 0; k < w; ++k) {
        lr[i][k] = std::log(panel.PriceRelative(start + k, i));
      }
    }
    return lr;
  };
  const auto lx1 = log_returns(day - 2 * w + 1);
  const auto lx2 = log_returns(day - w + 1);

  std::vector<double> mu2(m);
  for (int64_t i = 0; i < m; ++i) mu2[i] = MeanOf(lx2[i]);

  // Cross-correlation between window-1 returns of i and window-2 of j.
  std::vector<double> mcorr(m * m, 0.0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      mcorr[i * m + j] = signal::PearsonCorrelation(lx1[i], lx2[j]);
    }
  }

  // Claims: transfer from i to j when i outperformed j in window 2 and
  // M_ij > 0; add self anti-correlation boosts.
  std::vector<double> claims(m * m, 0.0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      if (i == j) continue;
      if (mu2[i] > mu2[j] && mcorr[i * m + j] > 0.0) {
        claims[i * m + j] = mcorr[i * m + j] +
                            std::max(0.0, -mcorr[i * m + i]) +
                            std::max(0.0, -mcorr[j * m + j]);
      }
    }
  }

  std::vector<double> next = last_weights;
  for (int64_t i = 0; i < m; ++i) {
    double claim_total = 0.0;
    for (int64_t j = 0; j < m; ++j) claim_total += claims[i * m + j];
    if (claim_total <= 0.0) continue;
    for (int64_t j = 0; j < m; ++j) {
      const double transfer =
          last_weights[i] * claims[i * m + j] / claim_total;
      next[i] -= transfer;
      next[j] += transfer;
    }
  }
  return env::NormalizeToSimplex(std::move(next));
}

std::vector<double> LogOptimalPortfolio(
    const std::vector<std::vector<double>>& relatives,
    std::vector<double> start, int64_t iters) {
  CIT_CHECK(!relatives.empty());
  const size_t m = relatives[0].size();
  std::vector<double> b =
      start.empty() ? std::vector<double>(m, 1.0 / m) : std::move(start);
  // Relatives hover near 1, so per-day gradients are ~1 with differences of
  // a few percent; a unit step with simplex projection converges quickly
  // and cannot diverge (the projection bounds each move).
  const double step = 1.0;
  std::vector<double> grad(m);
  for (int64_t it = 0; it < iters; ++it) {
    std::fill(grad.begin(), grad.end(), 0.0);
    for (const auto& x : relatives) {
      const double bx = std::max(Dot(b, x), 1e-9);
      for (size_t i = 0; i < m; ++i) grad[i] += x[i] / bx;
    }
    for (size_t i = 0; i < m; ++i) {
      b[i] += step * grad[i] / static_cast<double>(relatives.size());
    }
    b = ProjectToSimplex(b);
  }
  return b;
}

std::vector<double> Corn::Rebalance(const market::PanelView& panel,
                                    int64_t day,
                                    const std::vector<double>& last_weights,
                                    const std::vector<double>&) {
  const int64_t m = panel.num_assets();
  const int64_t w = window_;
  if (day < 2 * w + 2) return last_weights;

  // Flattened relative window ending at `end` (inclusive), w days.
  auto window_vec = [&](int64_t end) {
    std::vector<double> v;
    v.reserve(w * m);
    for (int64_t d = end - w + 1; d <= end; ++d) {
      for (int64_t i = 0; i < m; ++i) v.push_back(panel.PriceRelative(d, i));
    }
    return v;
  };
  const std::vector<double> current = window_vec(day);

  std::vector<std::vector<double>> similar_next_days;
  for (int64_t tau = w + 1; tau < day; ++tau) {
    // Window preceding day tau, so the day that followed (tau) is the
    // outcome sample.
    const std::vector<double> hist = window_vec(tau - 1);
    if (signal::PearsonCorrelation(current, hist) >= rho_) {
      std::vector<double> x(m);
      for (int64_t i = 0; i < m; ++i) x[i] = panel.PriceRelative(tau, i);
      similar_next_days.push_back(std::move(x));
    }
  }
  if (similar_next_days.empty()) return Uniform(m);
  return LogOptimalPortfolio(similar_next_days, {}, opt_iters_);
}

std::vector<double> BestStock::Rebalance(const market::PanelView& panel,
                                         int64_t day,
                                         const std::vector<double>&,
                                         const std::vector<double>&) {
  const int64_t m = panel.num_assets();
  const int64_t start = std::max<int64_t>(0, day - window_);
  int64_t best = 0;
  double best_growth = -1.0;
  for (int64_t i = 0; i < m; ++i) {
    const double growth = panel.Close(day, i) / panel.Close(start, i);
    if (growth > best_growth) {
      best_growth = growth;
      best = i;
    }
  }
  std::vector<double> b(m, 0.0);
  b[best] = 1.0;
  return b;
}

std::vector<double> FollowTheLeader::Rebalance(
    const market::PanelView& panel, int64_t day,
    const std::vector<double>& last_weights, const std::vector<double>&) {
  const int64_t m = panel.num_assets();
  std::vector<std::vector<double>> history;
  history.reserve(day);
  for (int64_t d = 1; d <= day; ++d) {
    std::vector<double> x(m);
    for (int64_t i = 0; i < m; ++i) x[i] = panel.PriceRelative(d, i);
    history.push_back(std::move(x));
  }
  if (history.empty()) return Uniform(m);
  // Warm-start from the previous portfolio for fast convergence.
  return LogOptimalPortfolio(history, last_weights, opt_iters_);
}

}  // namespace cit::olps
