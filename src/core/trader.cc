#include "core/trader.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>
#include <shared_mutex>

#include "common/check.h"
#include "env/portfolio_env.h"
#include "obs/telemetry.h"
#include "rl/features.h"
#include "rl/gaussian_policy.h"
#include "nn/serialize.h"
#include "rl/returns.h"
#include "rl/rollout.h"

namespace cit::core {
namespace {

using rl::GaussianAction;
using rl::SampleGaussianSimplex;
using rl::SoftmaxWeights;

Tensor WeightsTensor(const std::vector<double>& w) {
  Tensor t({static_cast<int64_t>(w.size())});
  for (size_t i = 0; i < w.size(); ++i) t[i] = static_cast<float>(w[i]);
  return t;
}

Tensor ConcatWeights(const std::vector<std::vector<double>>& all,
                     int64_t m) {
  Tensor t({static_cast<int64_t>(all.size()) * m});
  int64_t pos = 0;
  for (const auto& w : all) {
    for (double v : w) t[pos++] = static_cast<float>(v);
  }
  return t;
}

// Replaces slot k of a [n*m] pre-decision tensor with `weights`.
Tensor ReplaceSlot(const Tensor& pre, int64_t k, int64_t m,
                   const std::vector<double>& weights) {
  Tensor out = pre;
  for (int64_t i = 0; i < m; ++i) {
    out[k * m + i] = static_cast<float>(weights[i]);
  }
  return out;
}

}  // namespace

CrossInsightTrader::CrossInsightTrader(int64_t num_assets,
                                       const CrossInsightConfig& config)
    : num_assets_(num_assets), config_(config), rng_(config.seed) {
  CIT_CHECK_GE(config_.num_policies, 0);
  config_.critic_market_days =
      std::min(config_.critic_market_days, config_.window);
  for (int64_t k = 0; k < config_.num_policies; ++k) {
    actors_.push_back(
        std::make_unique<HorizonActor>(config_, num_assets_, k, rng_));
  }
  cross_actor_ =
      std::make_unique<CrossInsightActor>(config_, num_assets_, rng_);

  std::vector<Var> actor_params;
  for (auto& a : actors_) {
    for (auto& v : nn::ParamVars(*a)) actor_params.push_back(v);
  }
  for (auto& v : nn::ParamVars(*cross_actor_)) actor_params.push_back(v);
  actor_opt_ = std::make_unique<nn::Adam>(
      std::move(actor_params), static_cast<float>(config_.lr), 0.9f, 0.999f,
      1e-8f, static_cast<float>(config_.weight_decay));

  std::vector<Var> critic_params;
  if (config_.credit == CreditMode::kDecCritic) {
    for (int64_t k = 0; k < config_.num_policies + 1; ++k) {
      dec_critics_.push_back(std::make_unique<DecentralizedCritic>(
          config_, num_assets_, rng_));
      for (auto& v : nn::ParamVars(*dec_critics_.back())) {
        critic_params.push_back(v);
      }
    }
  } else {
    critic_ = std::make_unique<CentralizedCritic>(config_, num_assets_,
                                                  rng_);
    critic_params = nn::ParamVars(*critic_);
  }
  critic_opt_ = std::make_unique<nn::Adam>(
      std::move(critic_params), static_cast<float>(config_.lr), 0.9f,
      0.999f, 1e-8f, static_cast<float>(config_.weight_decay));
  actor_plans_ = std::vector<plan::CompiledFn>(config_.num_policies);
  actor_batch_plans_ = std::vector<plan::CompiledFn>(config_.num_policies);
  // The batch caches see one shape key per live batch size (1..max_batch,
  // typically), per policy — widen them so mixed batch sizes don't churn
  // hot plans through the default 8 slots.
  constexpr int64_t kBatchPlanCapacity = 32;
  for (auto& p : actor_batch_plans_) p.SetCapacity(kBatchPlanCapacity);
  cross_batch_plan_.SetCapacity(kBatchPlanCapacity);
  Reset();
}

void CrossInsightTrader::ClearFeatureCache() {
  std::unique_lock<std::shared_mutex> lock(feature_mu_);
  feature_cache_.clear();
  cached_source_ = 0;
}

void CrossInsightTrader::Reset() {
  held_actions_.assign(
      std::max<int64_t>(config_.num_policies, 1),
      std::vector<double>(num_assets_,
                          1.0 / static_cast<double>(num_assets_)));
}

CrossInsightTrader::DayFeatures CrossInsightTrader::ComputeFeatures(
    const market::PanelView& panel, int64_t day) const {
  // Critic inputs use the trailing `critic_market_days` of the window.
  const int64_t cd = std::min(config_.critic_market_days, config_.window);
  auto critic_view = [&](const Tensor& window) {
    return window.Slice(/*axis=*/2, config_.window - cd, cd)
        .Reshape({cd * num_assets_});
  };

  DayFeatures features;
  features.market = rl::NormalizedWindow(panel, day, config_.window);
  features.market_flat = critic_view(features.market);
  if (config_.num_policies > 0) {
    features.bands = rl::HorizonBandWindows(panel, day, config_.window,
                                            config_.num_policies);
    for (const auto& band : features.bands) {
      features.band_flats.push_back(critic_view(band));
    }
  }
  return features;
}

const CrossInsightTrader::DayFeatures& CrossInsightTrader::FeaturesAt(
    const market::PanelView& panel, int64_t day) {
  const uint64_t source = panel.source_id();
  {
    std::shared_lock<std::shared_mutex> lock(feature_mu_);
    if (cached_source_ == source) {
      auto it = feature_cache_.find(day);
      if (it != feature_cache_.end()) return it->second;
    }
  }
  // Compute outside any lock so concurrent rollout slots that miss on
  // different days don't serialize. Features are a pure function of
  // (source, day), so two slots racing on the same day just compute equal
  // values; try_emplace keeps whichever landed first.
  DayFeatures features = ComputeFeatures(panel, day);
  std::unique_lock<std::shared_mutex> lock(feature_mu_);
  if (cached_source_ != source) {
    feature_cache_.clear();
    cached_source_ = source;
  }
  return feature_cache_.try_emplace(day, std::move(features)).first->second;
}

Tensor CrossInsightTrader::ActorMean(
    int64_t k, const Tensor& band, const std::vector<double>& prev_action) {
  Tensor prev({num_assets_, 1});
  for (int64_t i = 0; i < num_assets_; ++i) {
    prev.At({i, 0}) = static_cast<float>(prev_action[i]);
  }
  return actor_plans_[k].Run(
      {&band, &prev}, [&] { return actors_[k]->Forward(band, prev); });
}

std::vector<double> CrossInsightTrader::PolicyWeights(
    const market::PricePanel& panel, int64_t day, int64_t k,
    const std::vector<double>& prev_action) {
  market::InMemorySource source(&panel);
  return PolicyWeights(market::PanelView(&source), day, k, prev_action);
}

std::vector<double> CrossInsightTrader::PolicyWeights(
    const market::PanelView& panel, int64_t day, int64_t k,
    const std::vector<double>& prev_action) {
  CIT_CHECK(k >= 0 && k < config_.num_policies);
  ag::NoGradGuard no_grad;
  const DayFeatures& f = FeaturesAt(panel, day);
  return SoftmaxWeights(ActorMean(k, f.bands[k], prev_action));
}

std::vector<double> CrossInsightTrader::DecideWeights(
    const market::PanelView& panel, int64_t day) {
  ag::NoGradGuard no_grad;
  const DayFeatures& f = FeaturesAt(panel, day);
  const int64_t n = config_.num_policies;
  std::vector<std::vector<double>> pre(n);
  for (int64_t k = 0; k < n; ++k) {
    pre[k] = SoftmaxWeights(ActorMean(k, f.bands[k], held_actions_[k]));
    held_actions_[k] = pre[k];
  }
  Tensor pre_dec = n > 0 ? ConcatWeights(pre, num_assets_) : Tensor({0});
  auto cross_forward = [&] {
    return cross_actor_->Forward(f.market, pre_dec);
  };
  // pre_dec only feeds the forward when there are horizon policies; with
  // n == 0 it is an empty placeholder and must not be bound as an input.
  Tensor cross_mean =
      n > 0 ? cross_plan_.Run({&f.market, &pre_dec}, cross_forward)
            : cross_plan_.Run({&f.market}, cross_forward);
  return SoftmaxWeights(cross_mean);
}

std::vector<std::vector<double>> CrossInsightTrader::DecideWeightsBatch(
    const std::vector<const market::PricePanel*>& panels) {
  // Each panel gets a fresh source (and source id) for the duration of
  // the call; the views borrow the panels, so nothing is copied.
  std::vector<std::unique_ptr<market::InMemorySource>> sources;
  std::vector<market::PanelView> views;
  sources.reserve(panels.size());
  views.reserve(panels.size());
  for (const market::PricePanel* p : panels) {
    sources.push_back(std::make_unique<market::InMemorySource>(p));
    views.emplace_back(sources.back().get());
  }
  return DecideWeightsBatch(views);
}

std::vector<std::vector<double>> CrossInsightTrader::DecideWeightsBatch(
    const std::vector<market::PanelView>& panels) {
  const int64_t batch = static_cast<int64_t>(panels.size());
  std::vector<std::vector<double>> out(batch);
  if (batch == 0) return out;
  ag::NoGradGuard no_grad;
  const int64_t m = num_assets_;
  const int64_t n = config_.num_policies;
  const int64_t z = config_.window;
  // Request panels are short-lived (the daemon builds one per request), so
  // the source-keyed FeaturesAt cache is skipped on purpose.
  std::vector<DayFeatures> feats;
  feats.reserve(static_cast<size_t>(batch));
  for (const market::PanelView& p : panels) {
    feats.push_back(ComputeFeatures(p, p.num_days() - 1));
  }
  auto stack_windows = [&](auto&& window_of) {
    Tensor stacked({batch * m, 1, z});
    for (int64_t b = 0; b < batch; ++b) {
      std::memcpy(stacked.data() + b * m * z, window_of(b).data(),
                  static_cast<size_t>(m * z) * sizeof(float));
    }
    return stacked;
  };
  // Uniform previous actions, as Reset() hands DecideWeights: the serving
  // contract is one stateless decision per request.
  Tensor prev_stack({batch * m, 1});
  const float uniform = static_cast<float>(1.0 / static_cast<double>(m));
  for (int64_t i = 0; i < batch * m; ++i) prev_stack[i] = uniform;

  // pre[b][k] — each policy's pre-decision weights per request.
  std::vector<std::vector<std::vector<double>>> pre(
      static_cast<size_t>(batch));
  for (int64_t k = 0; k < n; ++k) {
    Tensor band_stack =
        stack_windows([&](int64_t b) -> const Tensor& {
          return feats[b].bands[k];
        });
    Tensor mean = actor_batch_plans_[k].Run(
        {&band_stack, &prev_stack}, [&] {
          return actors_[k]->ForwardBatch(batch, band_stack, prev_stack);
        });
    for (int64_t b = 0; b < batch; ++b) {
      pre[b].push_back(rl::SoftmaxWeightsRange(mean, b * m, m));
    }
  }
  // Back-to-back per-request [n*m] blocks, each laid out exactly like
  // ConcatWeights builds the single-request pre-decision tensor.
  Tensor pre_stack = n > 0 ? Tensor({batch * n * m}) : Tensor({0});
  for (int64_t b = 0; b < batch; ++b) {
    int64_t pos = b * n * m;
    for (int64_t k = 0; k < n; ++k) {
      for (double v : pre[b][static_cast<size_t>(k)]) {
        pre_stack[pos++] = static_cast<float>(v);
      }
    }
  }
  Tensor market_stack = stack_windows(
      [&](int64_t b) -> const Tensor& { return feats[b].market; });
  auto cross_forward = [&] {
    return cross_actor_->ForwardBatch(batch, market_stack, pre_stack);
  };
  Tensor cross_mean =
      n > 0
          ? cross_batch_plan_.Run({&market_stack, &pre_stack}, cross_forward)
          : cross_batch_plan_.Run({&market_stack}, cross_forward);
  for (int64_t b = 0; b < batch; ++b) {
    out[b] = rl::SoftmaxWeightsRange(cross_mean, b * m, m);
  }
  return out;
}

namespace {

// Everything remembered about one rollout step for the update phase.
struct StepRecord {
  std::vector<Var> horizon_logp;           // n
  Var cross_logp;
  std::vector<std::vector<double>> pre;    // executed pre-decisions [n][m]
  std::vector<std::vector<double>> mu;     // Gaussian-mean weights  [n][m]
  Tensor pre_dec;                          // [n*m]
  std::vector<double> action;              // executed final weights [m]
  std::vector<double> cross_mu;            // cross-policy mean weights [m]
  int64_t day = 0;
  double reward = 0.0;
};

// Everything one rollout slot produces during a parallel phase. Slots are
// fully independent (own env clone, own RNG stream, own autograd graphs);
// the serial reduction walks them in slot order so gradients accumulate
// identically for any thread count.
struct SlotData {
  std::vector<StepRecord> rollout;
  std::vector<double> rewards;
  Tensor boot_pre;                  // [n*m] deterministic bootstrap means
  std::vector<double> boot_action;
  int64_t boot_day = -1;
  std::vector<std::vector<double>> targets;      // [num_critics][len]
  std::vector<std::vector<double>> horizon_adv;  // [n][len]
  std::vector<double> cross_adv;                 // [len]
};

}  // namespace

std::vector<double> CrossInsightTrader::Train(
    const market::PricePanel& panel, int64_t curve_points) {
  market::InMemorySource source(&panel);
  return Train(market::PanelView(&source), curve_points);
}

std::vector<double> CrossInsightTrader::Train(
    const market::PanelView& panel, int64_t curve_points) {
  const int64_t n = config_.num_policies;
  CIT_CHECK_GT(panel.train_end(),
               config_.window + config_.rollout_len + 2);
  env::EnvConfig env_config;
  env_config.window = config_.window;
  env_config.transaction_cost = config_.transaction_cost;
  env_config.end_day = panel.train_end() - 1;
  env::PortfolioEnv env(panel, env_config);

  const int64_t curve_every =
      std::max<int64_t>(1, config_.train_steps / curve_points);
  const float ent_coef = static_cast<float>(config_.entropy_coef);
  const bool dec = config_.credit == CreditMode::kDecCritic;
  const int64_t num_critics = dec ? n + 1 : 1;
  const int64_t num_slots =
      std::max<int64_t>(1, config_.rollouts_per_update);
  const float inv_slots = 1.0f / static_cast<float>(num_slots);
  // Per-update rollout fan-out. Each slot's stream is Split(seed, step,
  // slot), so a slot's trajectory is a pure function of (params, step,
  // slot) — never of which worker thread ran it or in what order.
  rl::RolloutRunner runner(config_.seed, num_slots);

  // Resuming restores weights, Adam moments, and progress_; because the
  // rollout streams are counter-split, continuing from update k replays
  // exactly the trajectories the uninterrupted run would have collected.
  if (!config_.resume_from.empty()) {
    const Status resume = LoadCheckpoint(config_.resume_from);
    CIT_CHECK_MSG(resume.ok(), resume.message().c_str());
  } else {
    progress_ = {};
  }
  runner.set_next_step(progress_.next_update);

  // Scopes this run's telemetry: flips the runtime flag, starts/stops the
  // trace, and appends periodic snapshot lines. Observational only — the
  // curve is bitwise identical with telemetry on or off.
  obs::TelemetrySession telemetry(config_.telemetry);

  auto mean_of = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  auto standardize = [](std::vector<double>* adv) {
    double mean = 0.0;
    for (double v : *adv) mean += v;
    mean /= adv->size();
    double var = 0.0;
    for (double v : *adv) var += (v - mean) * (v - mean);
    const double stddev = std::sqrt(var / adv->size());
    if (stddev < 1e-8) return;
    for (double& v : *adv) v /= stddev;
  };

  while (runner.next_step() < config_.train_steps) {
    CIT_OBS_SPAN("train.update");
    const int64_t step = runner.next_step();
    const int64_t lo = env.earliest_start();
    const int64_t hi = env.end_day() - config_.rollout_len - 1;
    std::vector<SlotData> slots(num_slots);

    // ---- Parallel rollout collection (forward passes only: params are
    // read, never written; each slot owns its env clone, RNG stream, and
    // retained policy-gradient graphs) ----
    {
    CIT_OBS_SPAN("train.rollout");
    runner.Collect([&](int64_t slot, math::Rng& rng) {
      SlotData& sd = slots[slot];
      env::PortfolioEnv senv = env.CloneAt(
          lo + rng.UniformInt(std::max<int64_t>(1, hi - lo)));
      std::vector<std::vector<double>> held(
          std::max<int64_t>(n, 1),
          std::vector<double>(num_assets_,
                              1.0 / static_cast<double>(num_assets_)));
      while (static_cast<int64_t>(sd.rollout.size()) < config_.rollout_len &&
             !senv.done()) {
        const int64_t day = senv.current_day();
        const DayFeatures& f = FeaturesAt(panel, day);
        StepRecord rec;
        rec.day = day;
        rec.pre.resize(n);
        rec.mu.resize(n);
        for (int64_t k = 0; k < n; ++k) {
          Var mean = actors_[k]->Forward(f.bands[k], held[k]);
          GaussianAction act =
              SampleGaussianSimplex(mean, actors_[k]->log_std(), &rng);
          rec.pre[k] = act.weights;
          rec.mu[k] = SoftmaxWeights(mean.value());
          rec.horizon_logp.push_back(act.log_prob);
          held[k] = act.weights;
        }
        rec.pre_dec = n > 0 ? ConcatWeights(rec.pre, num_assets_)
                            : Tensor({0});
        Var cross_mean = cross_actor_->Forward(f.market, rec.pre_dec);
        GaussianAction cross_act = SampleGaussianSimplex(
            cross_mean, cross_actor_->log_std(), &rng);
        rec.cross_logp = cross_act.log_prob;
        rec.action = cross_act.weights;
        rec.cross_mu = SoftmaxWeights(cross_mean.value());
        const env::StepResult sr = senv.Step(rec.action);
        rec.reward = sr.reward * config_.reward_scale;
        sd.rewards.push_back(rec.reward);
        sd.rollout.push_back(std::move(rec));
      }
      const int64_t len = static_cast<int64_t>(sd.rollout.size());

      // Everything below reads forwards as detached numbers (bootstrap
      // means, critic targets), so it runs graph-free; the sampled taped
      // forwards above already captured what the actor update needs.
      ag::NoGradGuard no_grad;

      // Bootstrap actions at the post-rollout state (deterministic means).
      sd.boot_pre = Tensor({std::max<int64_t>(n, 0) * num_assets_});
      if (!senv.done()) {
        sd.boot_day = senv.current_day();
        const DayFeatures& f = FeaturesAt(panel, sd.boot_day);
        std::vector<std::vector<double>> pre(n);
        for (int64_t k = 0; k < n; ++k) {
          Var mean = actors_[k]->Forward(f.bands[k], held[k]);
          pre[k] = SoftmaxWeights(mean.value());
        }
        if (n > 0) sd.boot_pre = ConcatWeights(pre, num_assets_);
        Var cm = cross_actor_->Forward(f.market, sd.boot_pre);
        sd.boot_action = SoftmaxWeights(cm.value());
      }

      // ---- Critic targets (Eq. 6-7) from the pre-update critic ----
      sd.targets.resize(num_critics);
      for (int64_t c = 0; c < num_critics; ++c) {
        std::vector<double> values(len + 1, 0.0);
        for (int64_t t = 0; t < len; ++t) {
          const StepRecord& rec = sd.rollout[t];
          const DayFeatures& f = FeaturesAt(panel, rec.day);
          Var q;
          if (dec) {
            if (c < n) {
              q = dec_critics_[c]->Forward(f.band_flats[c],
                                           WeightsTensor(rec.pre[c]));
            } else {
              q = dec_critics_[c]->Forward(f.market_flat,
                                           WeightsTensor(rec.action));
            }
          } else {
            q = critic_->Forward(f.market_flat, rec.pre_dec,
                                 WeightsTensor(rec.action));
          }
          values[t] = q.value().Item();
        }
        if (sd.boot_day >= 0) {
          const DayFeatures& f = FeaturesAt(panel, sd.boot_day);
          Var q;
          if (dec) {
            if (c < n) {
              std::vector<double> own(
                  sd.boot_pre.data() + c * num_assets_,
                  sd.boot_pre.data() + (c + 1) * num_assets_);
              q = dec_critics_[c]->Forward(f.band_flats[c],
                                           WeightsTensor(own));
            } else {
              q = dec_critics_[c]->Forward(f.market_flat,
                                           WeightsTensor(sd.boot_action));
            }
          } else {
            q = critic_->Forward(f.market_flat, sd.boot_pre,
                                 WeightsTensor(sd.boot_action));
          }
          values[len] = q.value().Item();
        }
        sd.targets[c] = rl::LambdaReturns(sd.rewards, values, config_.gamma,
                                          config_.lambda, config_.n_step);
      }
    });
    }

    // ---- Critic update: per-slot losses reduced in slot order ----
    {
    CIT_OBS_SPAN("train.critic_update");
    critic_opt_->ZeroGrad();
    for (const SlotData& sd : slots) {
      const int64_t len = static_cast<int64_t>(sd.rollout.size());
      if (len == 0) continue;
      Var critic_loss = Var::Constant(Tensor::Scalar(0.0f));
      for (int64_t t = 0; t < len; ++t) {
        const StepRecord& rec = sd.rollout[t];
        const DayFeatures& f = FeaturesAt(panel, rec.day);
        if (dec) {
          for (int64_t c = 0; c < num_critics; ++c) {
            Var q = (c < n)
                        ? dec_critics_[c]->Forward(
                              f.band_flats[c], WeightsTensor(rec.pre[c]))
                        : dec_critics_[c]->Forward(
                              f.market_flat, WeightsTensor(rec.action));
            critic_loss = ag::Add(
                critic_loss,
                ag::Square(ag::AddScalar(
                    q, -static_cast<float>(sd.targets[c][t]))));
          }
        } else {
          Var q = critic_->Forward(f.market_flat, rec.pre_dec,
                                   WeightsTensor(rec.action));
          critic_loss = ag::Add(
              critic_loss,
              ag::Square(ag::AddScalar(
                  q, -static_cast<float>(sd.targets[0][t]))));
        }
      }
      critic_loss = ag::MulScalar(
          critic_loss, inv_slots / static_cast<float>(len));
      critic_loss.Backward();
      CIT_OBS_GAUGE("train.critic_loss", critic_loss.value().Item());
    }
    [[maybe_unused]] const float critic_gn = critic_opt_->ClipGradNorm(5.0f);
    CIT_OBS_GAUGE("train.critic_grad_norm", critic_gn);
    critic_opt_->Step();
    }

    // ---- Advantages from the updated critic (parallel, forward-only;
    // detached scalars, so no graphs survive this phase) ----
    {
    CIT_OBS_SPAN("train.advantages");
    runner.ForEachSlot([&](int64_t slot) {
      // Forward-only phase: every critic read below lands in a double.
      ag::NoGradGuard no_grad;
      SlotData& sd = slots[slot];
      const int64_t len = static_cast<int64_t>(sd.rollout.size());
      std::vector<double> q_joint(len, 0.0);
      std::vector<std::vector<double>> q_dec(num_critics,
                                             std::vector<double>(len, 0.0));
      std::vector<std::vector<double>> baselines(
          n, std::vector<double>(len, 0.0));
      std::vector<double> cross_baseline(len, 0.0);
      for (int64_t t = 0; t < len; ++t) {
        const StepRecord& rec = sd.rollout[t];
        const DayFeatures& f = FeaturesAt(panel, rec.day);
        if (dec) {
          for (int64_t c = 0; c < num_critics; ++c) {
            Var q = (c < n)
                        ? dec_critics_[c]->Forward(
                              f.band_flats[c], WeightsTensor(rec.pre[c]))
                        : dec_critics_[c]->Forward(
                              f.market_flat, WeightsTensor(rec.action));
            q_dec[c][t] = q.value().Item();
          }
          cross_baseline[t] =
              dec_critics_[num_critics - 1]
                  ->Forward(f.market_flat, WeightsTensor(rec.cross_mu))
                  .value()
                  .Item();
        } else {
          q_joint[t] = critic_
                           ->Forward(f.market_flat, rec.pre_dec,
                                     WeightsTensor(rec.action))
                           .value()
                           .Item();
          // Counterfactual baseline for the cross-insight policy itself:
          // the executed trade action replaced by the Gaussian-mean action.
          // State-dependent but independent of the sampled action, so it
          // reduces variance without biasing Eq. (3)'s gradient.
          cross_baseline[t] = critic_
                                  ->Forward(f.market_flat, rec.pre_dec,
                                            WeightsTensor(rec.cross_mu))
                                  .value()
                                  .Item();
          if (config_.credit == CreditMode::kCounterfactual) {
            for (int64_t k = 0; k < n; ++k) {
              // Counterfactual baseline B^k (Eq. 8): policy k's
              // pre-decision replaced by its Gaussian-mean action.
              Tensor cf =
                  ReplaceSlot(rec.pre_dec, k, num_assets_, rec.mu[k]);
              baselines[k][t] = critic_
                                    ->Forward(f.market_flat, cf,
                                              WeightsTensor(rec.action))
                                    .value()
                                    .Item();
            }
          }
        }
      }
      // Constant (state-independent) baseline for Q-weighted terms: the
      // slot's rollout mean. Reduces variance without biasing the gradient.
      auto slot_mean = [len](const std::vector<double>& v) {
        double s = 0.0;
        for (double x : v) s += x;
        return len == 0 ? 0.0 : s / static_cast<double>(len);
      };
      std::vector<double> dec_means(num_critics, 0.0);
      for (int64_t c = 0; c < num_critics; ++c) {
        dec_means[c] = slot_mean(q_dec[c]);
      }

      // Per-policy advantage series; optionally standardized across the
      // slot's rollout (a state-independent rescaling that equalizes
      // learning speed between the horizon and cross-insight policies).
      sd.horizon_adv.assign(n, std::vector<double>(len, 0.0));
      sd.cross_adv.assign(len, 0.0);
      for (int64_t t = 0; t < len; ++t) {
        for (int64_t k = 0; k < n; ++k) {
          switch (config_.credit) {
            case CreditMode::kCounterfactual:
              sd.horizon_adv[k][t] = q_joint[t] - baselines[k][t];
              break;
            case CreditMode::kSharedQ:
              // The ablation's "same Q-value for every policy": the raw
              // Q, no per-policy baseline — Fig. 8's comparison variant.
              sd.horizon_adv[k][t] = q_joint[t];
              break;
            case CreditMode::kDecCritic:
              sd.horizon_adv[k][t] = q_dec[k][t] - dec_means[k];
              break;
          }
        }
        if (config_.credit == CreditMode::kSharedQ) {
          sd.cross_adv[t] = q_joint[t];  // same Q for the cross policy too
        } else {
          sd.cross_adv[t] =
              dec ? q_dec[num_critics - 1][t] - cross_baseline[t]
                  : q_joint[t] - cross_baseline[t];
        }
      }
      if (config_.normalize_advantages && len > 0) {
        for (auto& adv : sd.horizon_adv) standardize(&adv);
        standardize(&sd.cross_adv);
      }
    });
    }

    // ---- Actor update: per-slot losses reduced in slot order ----
    {
    CIT_OBS_SPAN("train.actor_update");
    last_advantages_.assign(n, 0.0);
    actor_opt_->ZeroGrad();
    critic_opt_->ZeroGrad();
    for (SlotData& sd : slots) {
      const int64_t len = static_cast<int64_t>(sd.rollout.size());
      if (len == 0) continue;
      Var actor_loss = Var::Constant(Tensor::Scalar(0.0f));
      for (int64_t t = 0; t < len; ++t) {
        StepRecord& rec = sd.rollout[t];
        for (int64_t k = 0; k < n; ++k) {
          last_advantages_[k] +=
              sd.horizon_adv[k][t] /
              static_cast<double>(len * num_slots);
          actor_loss = ag::Sub(
              actor_loss,
              ag::MulScalar(rec.horizon_logp[k],
                            static_cast<float>(sd.horizon_adv[k][t])));
        }
        actor_loss = ag::Sub(
            actor_loss,
            ag::MulScalar(rec.cross_logp,
                          static_cast<float>(sd.cross_adv[t])));
      }
      // Entropy regularization on every policy's exploration scale; per
      // slot it contributes ent_coef/num_slots, ent_coef per update total.
      Var entropy = rl::GaussianEntropy(cross_actor_->log_std());
      for (int64_t k = 0; k < n; ++k) {
        entropy =
            ag::Add(entropy, rl::GaussianEntropy(actors_[k]->log_std()));
      }
      actor_loss = ag::Sub(
          actor_loss,
          ag::MulScalar(entropy, ent_coef * static_cast<float>(len)));
      actor_loss = ag::MulScalar(
          actor_loss, inv_slots / static_cast<float>(len));
      actor_loss.Backward();
      CIT_OBS_GAUGE("train.actor_loss", actor_loss.value().Item());
    }
    [[maybe_unused]] const float actor_gn = actor_opt_->ClipGradNorm(5.0f);
    CIT_OBS_GAUGE("train.actor_grad_norm", actor_gn);
    actor_opt_->Step();
    }

    double step_reward = 0.0;
    for (const SlotData& sd : slots) step_reward += mean_of(sd.rewards);
    CIT_OBS_GAUGE("train.reward",
                  step_reward / static_cast<double>(num_slots));
    progress_.curve_acc += step_reward / static_cast<double>(num_slots);
    ++progress_.curve_n;
    if ((step + 1) % curve_every == 0) {
      progress_.curve.push_back(progress_.curve_acc /
                                static_cast<double>(progress_.curve_n));
      progress_.curve_acc = 0.0;
      progress_.curve_n = 0;
    }
    progress_.next_update = step + 1;
    if (config_.checkpoint_every > 0 && !config_.checkpoint_path.empty() &&
        (step + 1) % config_.checkpoint_every == 0) {
      CIT_OBS_SPAN("train.checkpoint");
      const Status saved = SaveCheckpoint(config_.checkpoint_path);
      CIT_CHECK_MSG(saved.ok(), saved.message().c_str());
    }
    telemetry.Tick(step);
  }
  std::vector<double> curve = std::move(progress_.curve);
  progress_ = {};
  Reset();
  return curve;
}

namespace {

// Trades one horizon policy's pre-decision alone (Figs. 5-6).
class SinglePolicyAgent : public env::TradingAgent {
 public:
  SinglePolicyAgent(CrossInsightTrader* parent, int64_t k)
      : parent_(parent), k_(k) {
    Reset();
  }

  std::string name() const override {
    return "policy-" + std::to_string(k_ + 1);
  }

  void Reset() override {
    prev_.assign(parent_->num_assets(),
                 1.0 / static_cast<double>(parent_->num_assets()));
  }

  using env::TradingAgent::DecideWeights;
  std::vector<double> DecideWeights(const market::PanelView& panel,
                                    int64_t day) override {
    prev_ = parent_->PolicyWeights(panel, day, k_, prev_);
    return prev_;
  }

 private:
  CrossInsightTrader* parent_;
  int64_t k_;
  std::vector<double> prev_;
};

}  // namespace

std::unique_ptr<env::TradingAgent> CrossInsightTrader::MakePolicyAgent(
    int64_t k) {
  CIT_CHECK(k >= 0 && k < config_.num_policies);
  return std::make_unique<SinglePolicyAgent>(this, k);
}

nn::ModuleGroup CrossInsightTrader::AllModules() const {
  nn::ModuleGroup group;
  for (size_t k = 0; k < actors_.size(); ++k) {
    group.Add("actor" + std::to_string(k) + ".", actors_[k].get());
  }
  group.Add("cross.", cross_actor_.get());
  if (critic_ != nullptr) group.Add("critic.", critic_.get());
  for (size_t k = 0; k < dec_critics_.size(); ++k) {
    group.Add("dec_critic" + std::to_string(k) + ".",
              dec_critics_[k].get());
  }
  return group;
}

Status CrossInsightTrader::SaveModel(const std::string& path) const {
  nn::ModuleGroup all = AllModules();
  return nn::SaveParameters(all, path);
}

Status CrossInsightTrader::LoadModel(const std::string& path) {
  nn::ModuleGroup all = AllModules();
  const Status status = nn::LoadParameters(&all, path);
  if (status.ok()) {
    std::unique_lock<std::shared_mutex> lock(feature_mu_);
    feature_cache_.clear();
  }
  return status;
}

namespace {

nn::CheckpointMeta TraderMeta(int64_t num_assets,
                              const CrossInsightConfig& config) {
  nn::CheckpointMeta meta;
  meta.trainer = "CIT";
  meta.num_assets = num_assets;
  meta.seed = config.seed;
  meta.arch_tag = config.num_policies;
  return meta;
}

}  // namespace

Status CrossInsightTrader::SaveCheckpoint(const std::string& path) const {
  nn::ModuleGroup all = AllModules();
  rl::TrainerCheckpointParts parts;
  parts.meta = TraderMeta(num_assets_, config_);
  parts.modules = &all;
  parts.opt_actor = actor_opt_.get();
  parts.opt_critic = critic_opt_.get();
  // SaveTrainerCheckpoint only reads through the non-const pointers.
  parts.progress = const_cast<rl::TrainProgress*>(&progress_);
  return rl::SaveTrainerCheckpoint(parts, path);
}

Status CrossInsightTrader::LoadCheckpoint(const std::string& path) {
  nn::ModuleGroup all = AllModules();
  rl::TrainerCheckpointParts parts;
  parts.meta = TraderMeta(num_assets_, config_);
  parts.modules = &all;
  parts.opt_actor = actor_opt_.get();
  parts.opt_critic = critic_opt_.get();
  parts.progress = &progress_;
  if (Status s = rl::LoadTrainerCheckpoint(parts, path); !s.ok()) return s;
  std::unique_lock<std::shared_mutex> lock(feature_mu_);
  feature_cache_.clear();
  return Status::OK();
}

}  // namespace cit::core
