#include "core/backbone.h"

#include "common/check.h"
#include "obs/telemetry.h"

namespace cit::core {

const char* BackboneKindName(BackboneKind kind) {
  switch (kind) {
    case BackboneKind::kTcnAttention:
      return "ours";
    case BackboneKind::kGruAttention:
      return "ours(GRU)";
    case BackboneKind::kGru:
      return "GRU";
    case BackboneKind::kMlp:
      return "MLP";
  }
  return "?";
}

const char* CreditModeName(CreditMode mode) {
  switch (mode) {
    case CreditMode::kCounterfactual:
      return "counterfactual";
    case CreditMode::kSharedQ:
      return "shared-Q";
    case CreditMode::kDecCritic:
      return "dec-critic";
  }
  return "?";
}

ActorBackbone::ActorBackbone(BackboneKind kind, int64_t num_assets,
                             int64_t window, int64_t feature_dim,
                             int64_t tcn_blocks, int64_t kernel_size,
                             Rng& rng)
    : kind_(kind),
      num_assets_(num_assets),
      window_(window),
      feature_dim_(feature_dim) {
  switch (kind_) {
    case BackboneKind::kTcnAttention:
      tcn_ = std::make_unique<nn::Tcn>(1, feature_dim, tcn_blocks,
                                       kernel_size, rng);
      attention_ = std::make_unique<nn::SpatialAttention>(
          num_assets, feature_dim, window, rng);
      break;
    case BackboneKind::kGruAttention:
      gru_ = std::make_unique<nn::Gru>(1, feature_dim, rng);
      attention_ = std::make_unique<nn::SpatialAttention>(
          num_assets, feature_dim, window, rng);
      break;
    case BackboneKind::kGru:
      gru_ = std::make_unique<nn::Gru>(1, feature_dim, rng);
      break;
    case BackboneKind::kMlp:
      mlp_ = std::make_unique<nn::Mlp>(
          std::vector<int64_t>{num_assets * window, num_assets * feature_dim,
                               num_assets * feature_dim},
          rng);
      break;
  }
}

Var ActorBackbone::Forward(const Var& x, Var* attention_out) const {
  // The forward-pass side of the env-step vs forward split (rollout.slot
  // minus env.step time is dominated by these calls).
  CIT_OBS_SPAN("backbone.forward");
  CIT_OBS_COUNT("backbone.forward_calls", 1);
  CIT_CHECK_EQ(x.value().ndim(), 3);
  CIT_CHECK_EQ(x.value().dim(0), num_assets_);
  CIT_CHECK_EQ(x.value().dim(2), window_);
  switch (kind_) {
    case BackboneKind::kTcnAttention: {
      Var h = tcn_->Forward(x);                         // [m, f, z]
      h = attention_->Forward(h, attention_out);        // [m, f, z]
      return ag::Reshape(ag::Slice(h, /*axis=*/2, window_ - 1, 1),
                         {num_assets_, feature_dim_});
    }
    case BackboneKind::kGruAttention: {
      Var h = gru_->ForwardSequence(x);                 // [m, f, z]
      h = attention_->Forward(h, attention_out);
      return ag::Reshape(ag::Slice(h, /*axis=*/2, window_ - 1, 1),
                         {num_assets_, feature_dim_});
    }
    case BackboneKind::kGru:
      return gru_->ForwardLast(x);                      // [m, f]
    case BackboneKind::kMlp: {
      Var flat = ag::Reshape(x, {num_assets_ * window_});
      Var h = mlp_->Forward(flat);
      return ag::Reshape(h, {num_assets_, feature_dim_});
    }
  }
  CIT_CHECK(false);
  return Var();
}

Var ActorBackbone::ForwardBatch(int64_t batch, const Var& x) const {
  if (batch == 1) return Forward(x);
  CIT_OBS_SPAN("backbone.forward");
  CIT_OBS_COUNT("backbone.forward_calls", 1);
  CIT_CHECK_EQ(x.value().ndim(), 3);
  CIT_CHECK_EQ(x.value().dim(0), batch * num_assets_);
  CIT_CHECK_EQ(x.value().dim(2), window_);
  switch (kind_) {
    case BackboneKind::kTcnAttention:
    case BackboneKind::kGruAttention: {
      // Conv taps and GRU steps read one axis-0 row at a time, so the
      // stacked encode is row-for-row the same arithmetic as per-request
      // encodes — one kernel launch instead of `batch`.
      Var h = kind_ == BackboneKind::kTcnAttention
                  ? tcn_->Forward(x)
                  : gru_->ForwardSequence(x);           // [B*m, f, z]
      std::vector<Var> blocks;
      blocks.reserve(static_cast<size_t>(batch));
      for (int64_t b = 0; b < batch; ++b) {
        Var hb = ag::Slice(h, /*axis=*/0, b * num_assets_, num_assets_);
        blocks.push_back(attention_->Forward(hb));
      }
      Var mixed = ag::Concat(blocks, /*axis=*/0);       // [B*m, f, z]
      return ag::Reshape(ag::Slice(mixed, /*axis=*/2, window_ - 1, 1),
                         {batch * num_assets_, feature_dim_});
    }
    case BackboneKind::kGru:
      return gru_->ForwardLast(x);                      // [B*m, f]
    case BackboneKind::kMlp: {
      // The MLP flattens per request, so the batch maps onto the Linear
      // batch dimension directly.
      Var flat = ag::Reshape(x, {batch, num_assets_ * window_});
      Var h = mlp_->Forward(flat);                      // [B, m*f]
      return ag::Reshape(h, {batch * num_assets_, feature_dim_});
    }
  }
  CIT_CHECK(false);
  return Var();
}

void ActorBackbone::CollectParameters(
    const std::string& prefix, std::vector<nn::NamedParam>* out) const {
  if (tcn_) tcn_->CollectParameters(prefix + "tcn.", out);
  if (gru_) gru_->CollectParameters(prefix + "gru.", out);
  if (attention_) attention_->CollectParameters(prefix + "attn.", out);
  if (mlp_) mlp_->CollectParameters(prefix + "mlp.", out);
}

}  // namespace cit::core
