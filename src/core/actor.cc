#include "core/actor.h"

#include "common/check.h"
#include "rl/features.h"

namespace cit::core {

HorizonActor::HorizonActor(const CrossInsightConfig& config,
                           int64_t num_assets, int64_t policy_id, Rng& rng)
    : num_assets_(num_assets),
      num_policies_(config.num_policies),
      policy_id_(policy_id),
      backbone_(config.backbone, num_assets, config.window,
                config.feature_dim, config.tcn_blocks, config.kernel_size,
                rng),
      score_bound_(static_cast<float>(config.score_bound)),
      head_({config.feature_dim + 1 + config.num_policies,
             config.head_hidden, 1},
            rng),
      log_std_(Var::Param(Tensor::Full({num_assets},
                                       config.init_log_std))) {}

Var HorizonActor::Forward(const Tensor& band_window,
                          const std::vector<double>& prev_action,
                          Var* attention_out) const {
  CIT_CHECK_EQ(static_cast<int64_t>(prev_action.size()), num_assets_);
  Tensor prev({num_assets_, 1});
  for (int64_t i = 0; i < num_assets_; ++i) {
    prev.At({i, 0}) = static_cast<float>(prev_action[i]);
  }
  return Forward(band_window, prev, attention_out);
}

Var HorizonActor::Forward(const Tensor& band_window, const Tensor& prev,
                          Var* attention_out) const {
  CIT_CHECK_EQ(prev.numel(), num_assets_);
  Var features =
      backbone_.Forward(Var::Constant(band_window), attention_out);
  // Per-asset state rows [m, f + 1 + n]: the asset's encoded features
  // (already cross-asset-mixed by the attention layer), its previously
  // executed weight, and the policy's one-hot ID. The head is shared
  // across assets (an "identical evaluator"), so the policy learns
  // relational rules rather than memorizing asset identities.
  Tensor id_rows({num_assets_, num_policies_});
  for (int64_t i = 0; i < num_assets_; ++i) {
    id_rows.At({i, policy_id_}) = 1.0f;
  }
  Var state = ag::Concat(
      {features, Var::Constant(prev), Var::Constant(id_rows)},
      /*axis=*/1);
  Var scores = ag::Reshape(head_.Forward(state), {num_assets_});
  return ag::MulScalar(ag::Tanh(ag::MulScalar(scores, 1.0f / score_bound_)),
                       score_bound_);
}

Var HorizonActor::ForwardBatch(int64_t batch, const Tensor& band_windows,
                               const Tensor& prev) const {
  CIT_CHECK_EQ(prev.numel(), batch * num_assets_);
  Var features = backbone_.ForwardBatch(batch, Var::Constant(band_windows));
  // Same per-asset state rows as Forward, tiled across the batch: the
  // one-hot ID block repeats per request, so every row matches the row the
  // unbatched forward would build for that request.
  Tensor id_rows({batch * num_assets_, num_policies_});
  for (int64_t i = 0; i < batch * num_assets_; ++i) {
    id_rows.At({i, policy_id_}) = 1.0f;
  }
  Var state = ag::Concat(
      {features, Var::Constant(prev), Var::Constant(id_rows)},
      /*axis=*/1);
  Var scores = ag::Reshape(head_.Forward(state), {batch * num_assets_});
  return ag::MulScalar(ag::Tanh(ag::MulScalar(scores, 1.0f / score_bound_)),
                       score_bound_);
}

void HorizonActor::CollectParameters(
    const std::string& prefix, std::vector<nn::NamedParam>* out) const {
  backbone_.CollectParameters(prefix + "backbone.", out);
  head_.CollectParameters(prefix + "head.", out);
  out->push_back({prefix + "log_std", log_std_});
}

CrossInsightActor::CrossInsightActor(const CrossInsightConfig& config,
                                     int64_t num_assets, Rng& rng)
    : num_assets_(num_assets),
      num_policies_(config.num_policies),
      backbone_(config.backbone, num_assets, config.window,
                config.feature_dim, config.tcn_blocks, config.kernel_size,
                rng),
      score_bound_(static_cast<float>(config.score_bound)),
      head_({config.feature_dim + config.num_policies,
             config.head_hidden, 1},
            rng),
      log_std_(Var::Param(Tensor::Full({num_assets},
                                       config.init_log_std))) {}

Var CrossInsightActor::Forward(const Tensor& market_window,
                               const Tensor& pre_decisions) const {
  CIT_CHECK_EQ(pre_decisions.numel(), num_policies_ * num_assets_);
  Var features = backbone_.Forward(Var::Constant(market_window));
  // Per-asset state rows [m, f + n]: the asset's market features plus the
  // weight each horizon policy pre-assigned to this asset. The shared head
  // fuses the horizon insights per asset.
  Var state = features;
  if (num_policies_ > 0) {
    // [n*m] -> [m, n] via reshape+transpose rather than a raw scatter
    // loop: expressed as ops, the rearrangement stays visible to the
    // plan recorder, so compiled replays rebind pre_decisions instead of
    // baking the first call's values. Values are identical either way.
    Var pre_rows = ag::Transpose(ag::Reshape(
        Var::Constant(pre_decisions), {num_policies_, num_assets_}));
    state = ag::Concat({features, pre_rows}, /*axis=*/1);
  }
  Var scores = ag::Reshape(head_.Forward(state), {num_assets_});
  return ag::MulScalar(ag::Tanh(ag::MulScalar(scores, 1.0f / score_bound_)),
                       score_bound_);
}

Var CrossInsightActor::ForwardBatch(int64_t batch,
                                    const Tensor& market_windows,
                                    const Tensor& pre_decisions) const {
  CIT_CHECK_EQ(pre_decisions.numel(), batch * num_policies_ * num_assets_);
  Var features = backbone_.ForwardBatch(batch, Var::Constant(market_windows));
  Var state = features;
  if (num_policies_ > 0) {
    // Per-request [n*m] -> [m, n] (the Forward reshape+transpose), batched
    // as one permute: [B, n, m] -> [B, m, n] -> rows [B*m, n]. Pure data
    // movement, so each request block carries exactly the values its
    // unbatched transpose would.
    Var pre_rows = ag::Reshape(
        ag::Permute(ag::Reshape(Var::Constant(pre_decisions),
                                {batch, num_policies_, num_assets_}),
                    {0, 2, 1}),
        {batch * num_assets_, num_policies_});
    state = ag::Concat({features, pre_rows}, /*axis=*/1);
  }
  Var scores = ag::Reshape(head_.Forward(state), {batch * num_assets_});
  return ag::MulScalar(ag::Tanh(ag::MulScalar(scores, 1.0f / score_bound_)),
                       score_bound_);
}

void CrossInsightActor::CollectParameters(
    const std::string& prefix, std::vector<nn::NamedParam>* out) const {
  backbone_.CollectParameters(prefix + "backbone.", out);
  head_.CollectParameters(prefix + "head.", out);
  out->push_back({prefix + "log_std", log_std_});
}

}  // namespace cit::core
