#ifndef CIT_CORE_ACTOR_H_
#define CIT_CORE_ACTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/backbone.h"
#include "core/config.h"
#include "nn/layers.h"

namespace cit::core {

// A horizon-specific policy (paper Fig. 3(a)): its backbone encodes the
// policy's own DWT band of the price window; the encoded per-asset features
// are concatenated with the policy's one-hot ID (diversity) and the action
// executed at the previous time step (smoothness), then mapped by an MLP
// head to the Gaussian mean over pre-softmax action scores.
class HorizonActor : public nn::Module {
 public:
  HorizonActor(const CrossInsightConfig& config, int64_t num_assets,
               int64_t policy_id, Rng& rng);

  // band_window: [m, 1, z] tensor of this policy's horizon sub-series;
  // prev_action: previously executed weights of this policy ([m]).
  // Returns the Gaussian mean over R^m.
  Var Forward(const Tensor& band_window,
              const std::vector<double>& prev_action,
              Var* attention_out = nullptr) const;

  // Same forward with the previous action already materialized as an
  // [m, 1] tensor. This is the compiled-inference entry point: the caller
  // passes `prev` to plan::CompiledFn::Run as a varying input, so replays
  // rebind it instead of baking the first call's weights into the plan.
  Var Forward(const Tensor& band_window, const Tensor& prev,
              Var* attention_out = nullptr) const;

  // Batched serving entry point: `band_windows` stacks `batch` requests'
  // band windows along axis 0 ([batch * m, 1, z]), `prev` their previous
  // actions ([batch * m, 1]). Returns the stacked Gaussian means
  // ([batch * m]); row block b is bitwise identical to Forward on request
  // b's own window and action.
  Var ForwardBatch(int64_t batch, const Tensor& band_windows,
                   const Tensor& prev) const;

  const Var& log_std() const { return log_std_; }
  int64_t policy_id() const { return policy_id_; }

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParam>* out) const override;

 private:
  int64_t num_assets_;
  int64_t num_policies_;
  int64_t policy_id_;
  ActorBackbone backbone_;
  float score_bound_;
  nn::Mlp head_;
  Var log_std_;
};

// The cross-insight policy (paper Sec. IV-B1): makes the final trade
// decision from the horizon policies' pre-decisions plus market features
// extracted from the original (un-decomposed) price series.
class CrossInsightActor : public nn::Module {
 public:
  CrossInsightActor(const CrossInsightConfig& config, int64_t num_assets,
                    Rng& rng);

  // market_window: [m, 1, z] of the original normalized prices;
  // pre_decisions: concatenated pre-decision weights of all n policies
  // ([n*m]; empty when num_policies == 0, the A2C degenerate mode).
  Var Forward(const Tensor& market_window,
              const Tensor& pre_decisions) const;

  // Batched serving entry point: axis-0-stacked market windows
  // ([batch * m, 1, z]) and back-to-back per-request pre-decision blocks
  // ([batch * n * m]). Returns stacked final means ([batch * m]), each row
  // block bitwise identical to Forward on that request alone.
  Var ForwardBatch(int64_t batch, const Tensor& market_windows,
                   const Tensor& pre_decisions) const;

  const Var& log_std() const { return log_std_; }

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParam>* out) const override;

 private:
  int64_t num_assets_;
  int64_t num_policies_;
  ActorBackbone backbone_;
  float score_bound_;
  nn::Mlp head_;
  Var log_std_;
};

}  // namespace cit::core

#endif  // CIT_CORE_ACTOR_H_
