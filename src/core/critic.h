#ifndef CIT_CORE_CRITIC_H_
#define CIT_CORE_CRITIC_H_

#include <string>
#include <vector>

#include "core/backbone.h"
#include "core/config.h"
#include "nn/layers.h"

namespace cit::core {

// The centralized critic (paper Sec. IV-B3): a two-layer fully-connected
// network over the concatenation of (i) the flattened original price window
// of all assets (the overall market state), (ii) every horizon policy's
// pre-decision, (iii) the trade action taken by the cross-insight policy,
// and (iv) the policy IDs. It estimates the joint state-action value Q used
// both for TD(lambda) targets and for the counterfactual baselines.
class CentralizedCritic : public nn::Module {
 public:
  CentralizedCritic(const CrossInsightConfig& config, int64_t num_assets,
                    Rng& rng);

  // market_flat: [window * m]; pre_decisions: [n * m] (empty when n == 0);
  // final_action: executed cross-insight weights [m]. Returns scalar Q.
  Var Forward(const Tensor& market_flat, const Tensor& pre_decisions,
              const Tensor& final_action) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParam>* out) const override;

 private:
  int64_t num_assets_;
  int64_t num_policies_;
  Tensor ids_;  // constant policy-ID encoding appended to every input
  nn::Mlp net_;
};

// A decentralized critic for the Dec-critic ablation (Fig. 8): one value
// network per policy, receiving only that policy's own observation and its
// executed action.
class DecentralizedCritic : public nn::Module {
 public:
  DecentralizedCritic(const CrossInsightConfig& config, int64_t num_assets,
                      Rng& rng);

  // own_flat: the policy's own flattened observation [window * m];
  // own_action: the policy's executed weights [m]. Returns scalar Q_k.
  Var Forward(const Tensor& own_flat, const Tensor& own_action) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParam>* out) const override;

 private:
  nn::Mlp net_;
};

}  // namespace cit::core

#endif  // CIT_CORE_CRITIC_H_
