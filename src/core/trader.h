#ifndef CIT_CORE_TRADER_H_
#define CIT_CORE_TRADER_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/actor.h"
#include "core/config.h"
#include "common/status.h"
#include "core/critic.h"
#include "env/backtest.h"
#include "market/source.h"
#include "math/plan.h"
#include "math/rng.h"
#include "nn/checkpoint.h"
#include "nn/optimizer.h"
#include "rl/rollout.h"

namespace cit::core {

// The cross-insight trader: n horizon-specific policies fed with DWT bands
// of the price window, a cross-insight policy fusing their pre-decisions,
// a centralized TD(lambda) critic, and the counterfactual credit-assignment
// mechanism (paper Sec. IV). Implements env::TradingAgent so the common
// backtester evaluates it alongside every baseline.
class CrossInsightTrader : public env::TradingAgent {
 public:
  CrossInsightTrader(int64_t num_assets, const CrossInsightConfig& config);

  // Trains on the panel's training split; returns the learning curve
  // (average scaled reward per rollout, bucketed into `curve_points`
  // checkpoints — the series plotted in Fig. 8).
  std::vector<double> Train(const market::PanelView& panel,
                            int64_t curve_points = 20);
  std::vector<double> Train(const market::PricePanel& panel,
                            int64_t curve_points = 20);

  std::string name() const override { return "CIT"; }
  void Reset() override;
  using env::TradingAgent::DecideWeights;
  std::vector<double> DecideWeights(const market::PanelView& panel,
                                    int64_t day) override;

  // Stateless batched decision for the serving path: decides every panel
  // at its own last day with uniform previous actions — exactly the
  // semantics of Reset() + DecideWeights(panel, num_days() - 1) per panel
  // — through one axis-0-stacked forward per policy, so N concurrent
  // requests pay one plan replay each instead of N. Each returned weight
  // vector is bitwise identical to the corresponding single-panel call.
  // Bypasses the source-keyed feature cache and mutates no execution
  // state (held actions, feature cache); it does drive its own
  // CompiledFn caches, so the single-owner thread contract still applies.
  std::vector<std::vector<double>> DecideWeightsBatch(
      const std::vector<market::PanelView>& panels);
  std::vector<std::vector<double>> DecideWeightsBatch(
      const std::vector<const market::PricePanel*>& panels);

  // Drops the per-day feature cache. The cache invalidates by the view's
  // source id — ids are allocated from a process-wide monotonic counter
  // and never recycled, so a fresh source (even at a recycled address)
  // always misses. Calling this is therefore only needed to release
  // memory, not for correctness.
  void ClearFeatureCache();

  // An agent that trades policy k's pre-decision alone (deterministic),
  // used for the per-policy analysis of Figs. 5-6. The returned agent
  // borrows this trader, which must outlive it.
  std::unique_ptr<env::TradingAgent> MakePolicyAgent(int64_t k);

  // Deterministic pre-decision weights of policy k at `day`.
  std::vector<double> PolicyWeights(const market::PanelView& panel,
                                    int64_t day, int64_t k,
                                    const std::vector<double>& prev_action);
  std::vector<double> PolicyWeights(const market::PricePanel& panel,
                                    int64_t day, int64_t k,
                                    const std::vector<double>& prev_action);

  // Persists / restores all trained weights (actors + critics). Loading
  // requires a trader constructed with an identical config and asset count.
  Status SaveModel(const std::string& path) const;
  Status LoadModel(const std::string& path);

  // Full crash-safe training state (weights + both Adam states + training
  // progress), written atomically. Train() calls this periodically when
  // config.checkpoint_every > 0 and restores from config.resume_from; a
  // resumed run is bitwise identical to the uninterrupted one. Loading is
  // transactional: on any error the trader is unchanged.
  Status SaveCheckpoint(const std::string& path) const;
  Status LoadCheckpoint(const std::string& path);

  const CrossInsightConfig& config() const { return config_; }
  int64_t num_assets() const { return num_assets_; }

  // Counterfactual advantages computed at the most recent training update
  // (diagnostics/tests).
  const std::vector<double>& last_advantages() const {
    return last_advantages_;
  }

 private:
  struct DayFeatures {
    std::vector<Tensor> bands;  // n tensors [m, 1, z]
    Tensor market;              // [m, 1, z]
    Tensor market_flat;         // [z * m]
    std::vector<Tensor> band_flats;  // n tensors [z * m]
  };

  // Thread-safe: parallel rollout slots hit the same days concurrently.
  // Lookups take a shared lock; a miss computes outside any lock (features
  // are a pure function of (panel, day)) and inserts under a unique lock.
  const DayFeatures& FeaturesAt(const market::PanelView& panel,
                                int64_t day);

  DayFeatures ComputeFeatures(const market::PanelView& panel,
                              int64_t day) const;

  // Deterministic Gaussian mean of policy k for (band, prev_action),
  // served through the policy's compiled plan: the first call per input
  // shape records the forward, later calls replay it allocation-free.
  // Shared by DecideWeights and PolicyWeights so both paths hit the same
  // plan cache.
  Tensor ActorMean(int64_t k, const Tensor& band,
                   const std::vector<double>& prev_action);

  // All networks flattened under stable name prefixes — the parameter set
  // for SaveModel/LoadModel and checkpoints.
  nn::ModuleGroup AllModules() const;

  int64_t num_assets_;
  CrossInsightConfig config_;
  math::Rng rng_;

  std::vector<std::unique_ptr<HorizonActor>> actors_;
  std::unique_ptr<CrossInsightActor> cross_actor_;
  std::unique_ptr<CentralizedCritic> critic_;
  std::vector<std::unique_ptr<DecentralizedCritic>> dec_critics_;  // n+1

  std::unique_ptr<nn::Adam> actor_opt_;
  std::unique_ptr<nn::Adam> critic_opt_;

  // Execution state (previous action per horizon policy).
  std::vector<std::vector<double>> held_actions_;

  // Compiled-forward caches for the deterministic inference path: one per
  // horizon policy plus one for the cross-insight policy. Parameter
  // staleness is handled inside the plans (per-parameter version
  // snapshots), so training between backtests just re-records.
  std::vector<plan::CompiledFn> actor_plans_;
  plan::CompiledFn cross_plan_;

  // Separate compiled caches for the batched serving path: batch size is
  // part of the input-shape key, so a serving mix of batch sizes would
  // thrash the 8-entry single-request caches above. These get a widened
  // capacity (one live key per batch size per policy) and keep the
  // single-request plans untouched.
  std::vector<plan::CompiledFn> actor_batch_plans_;
  plan::CompiledFn cross_batch_plan_;

  // In-flight training progress; checkpointed and restored on resume.
  rl::TrainProgress progress_;

  // Per-day feature cache, keyed by day; invalidated when the view's
  // source id changes (ids are monotonic and never recycled, so this is
  // immune to address reuse). Guarded by feature_mu_; value references
  // stay stable across inserts (unordered_map never moves mapped values),
  // so returned references outlive the lock.
  mutable std::shared_mutex feature_mu_;
  uint64_t cached_source_ = 0;  // 0 = no source cached
  std::unordered_map<int64_t, DayFeatures> feature_cache_;

  std::vector<double> last_advantages_;
};

}  // namespace cit::core

#endif  // CIT_CORE_TRADER_H_
