#ifndef CIT_CORE_BACKBONE_H_
#define CIT_CORE_BACKBONE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "nn/attention.h"
#include "nn/conv.h"
#include "nn/gru.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace cit::core {

using ag::Var;
using math::Rng;
using math::Tensor;

// The actor feature extractor (paper Fig. 3(b)): a temporal encoder (TCN or
// GRU) over each asset's horizon sub-series, optionally followed by the
// spatial attention layer with residual mixing, reduced to per-asset
// features at the last time step. Variants implement the Fig. 7 ablation.
class ActorBackbone : public nn::Module {
 public:
  ActorBackbone(BackboneKind kind, int64_t num_assets, int64_t window,
                int64_t feature_dim, int64_t tcn_blocks, int64_t kernel_size,
                Rng& rng);

  // x: [num_assets, 1, window] -> per-asset features [num_assets, f].
  // If attention_out != nullptr and this variant has spatial attention, it
  // receives the [m, m] attention matrix.
  Var Forward(const Var& x, Var* attention_out = nullptr) const;

  // Batched variant for serving: x stacks `batch` independent request
  // windows along axis 0 ([batch * num_assets, 1, window]) and the result
  // stacks their feature rows the same way ([batch * num_assets, f]). The
  // temporal encoders are per-row, so they run once over the whole stack;
  // spatial attention mixes across the asset axis, so it runs per request
  // block (contiguous axis-0 slices — O(1) views). Every output row is
  // bitwise identical to Forward on that request's own window.
  Var ForwardBatch(int64_t batch, const Var& x) const;

  int64_t feature_dim() const { return feature_dim_; }
  BackboneKind kind() const { return kind_; }

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParam>* out) const override;

 private:
  BackboneKind kind_;
  int64_t num_assets_;
  int64_t window_;
  int64_t feature_dim_;
  std::unique_ptr<nn::Tcn> tcn_;
  std::unique_ptr<nn::Gru> gru_;
  std::unique_ptr<nn::SpatialAttention> attention_;
  std::unique_ptr<nn::Mlp> mlp_;
};

}  // namespace cit::core

#endif  // CIT_CORE_BACKBONE_H_
