#include "core/critic.h"

#include "common/check.h"

namespace cit::core {

CentralizedCritic::CentralizedCritic(const CrossInsightConfig& config,
                                     int64_t num_assets, Rng& rng)
    : num_assets_(num_assets),
      num_policies_(config.num_policies),
      ids_({std::max<int64_t>(config.num_policies, 1)}),
      net_({config.critic_market_days * num_assets +
                config.num_policies * num_assets + num_assets +
                std::max<int64_t>(config.num_policies, 1),
            config.critic_hidden, config.critic_hidden, 1},
           rng) {
  // Normalized policy-ID vector {1..n}/n (constant input, kept for parity
  // with the paper's critic-input description).
  const int64_t n = ids_.numel();
  for (int64_t k = 0; k < n; ++k) {
    ids_[k] = static_cast<float>(k + 1) / static_cast<float>(n);
  }
}

Var CentralizedCritic::Forward(const Tensor& market_flat,
                               const Tensor& pre_decisions,
                               const Tensor& final_action) const {
  CIT_CHECK_EQ(pre_decisions.numel(), num_policies_ * num_assets_);
  CIT_CHECK_EQ(final_action.numel(), num_assets_);
  std::vector<Var> parts;
  parts.push_back(Var::Constant(market_flat));
  if (num_policies_ > 0) parts.push_back(Var::Constant(pre_decisions));
  parts.push_back(Var::Constant(final_action));
  parts.push_back(Var::Constant(ids_));
  return net_.Forward(ag::Concat(parts, /*axis=*/0));
}

void CentralizedCritic::CollectParameters(
    const std::string& prefix, std::vector<nn::NamedParam>* out) const {
  net_.CollectParameters(prefix + "net.", out);
}

DecentralizedCritic::DecentralizedCritic(const CrossInsightConfig& config,
                                         int64_t num_assets, Rng& rng)
    : net_({config.critic_market_days * num_assets + num_assets,
            config.critic_hidden, 1},
           rng) {}

Var DecentralizedCritic::Forward(const Tensor& own_flat,
                                 const Tensor& own_action) const {
  return net_.Forward(ag::Concat(
      {Var::Constant(own_flat), Var::Constant(own_action)}, /*axis=*/0));
}

void DecentralizedCritic::CollectParameters(
    const std::string& prefix, std::vector<nn::NamedParam>* out) const {
  net_.CollectParameters(prefix + "net.", out);
}

}  // namespace cit::core
