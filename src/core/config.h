#ifndef CIT_CORE_CONFIG_H_
#define CIT_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "obs/telemetry.h"

namespace cit::core {

// Which temporal/spatial encoder the actors use (Fig. 7 ablation).
enum class BackboneKind {
  kTcnAttention,  // the paper's design: TCN + spatial attention ("ours")
  kGruAttention,  // GRU + spatial attention ("ours (GRU)")
  kGru,           // plain GRU, no asset-correlation modeling
  kMlp,           // plain MLP on the flattened window
};

// How per-policy training signals are derived from the critic (Fig. 8
// ablation).
enum class CreditMode {
  kCounterfactual,  // paper Eq. (8): A^k = Q(x, a~) - Q(x, (a~^-k, mu^k))
  kSharedQ,         // all policies optimized with the same Q-value
  kDecCritic,       // decentralized critics, one per policy
};

const char* BackboneKindName(BackboneKind kind);
const char* CreditModeName(CreditMode mode);

// Hyper-parameters of the cross-insight trader. Defaults are scaled for the
// single-core CPU budget; the paper's GPU setting (50k steps, lr 1e-4) is
// reachable via train_steps/lr.
struct CrossInsightConfig {
  // num_policies == n, the number of horizon-specific policies; 0 makes the
  // framework degenerate into plain A2C (Table IV's first row).
  int64_t num_policies = 5;
  int64_t window = 24;        // z, the observed price-window length
  int64_t feature_dim = 6;    // f, per-asset hidden features
  int64_t tcn_blocks = 2;
  int64_t kernel_size = 3;
  int64_t head_hidden = 24;   // policy-head MLP width
  // Pre-softmax action scores are squashed to (-score_bound, score_bound)
  // by a scaled tanh. Unbounded scores let softmax saturate onto a single
  // asset early in training, killing the policy gradient (weights become
  // insensitive to the Gaussian sample); bounding keeps learning alive.
  double score_bound = 2.5;
  int64_t critic_hidden = 48;
  // Trailing days of the price window fed to the critic as the market
  // state. A compact market summary keeps the critic sensitive to the
  // action/pre-decision slots, which the counterfactual baselines need.
  int64_t critic_market_days = 8;
  // Standardize policy-gradient weights per policy across each rollout
  // (state-independent rescaling). Off by default: with the counterfactual
  // baselines the raw advantage scale is already well-conditioned.
  bool normalize_advantages = false;
  BackboneKind backbone = BackboneKind::kTcnAttention;
  CreditMode credit = CreditMode::kCounterfactual;

  // Prices are exogenous, so a short effective horizon carries the
  // credit signal; the counterfactual baseline cancels most of the
  // remaining future-noise variance.
  double gamma = 0.6;
  double lambda = 0.9;        // TD(lambda) mixing weight, Eq. (6)
  int64_t n_step = 5;         // paper: "maximum n for n-step return is 5"
  double lr = 2e-3;
  double weight_decay = 1e-5; // paper: L2 regularizer 1e-5
  int64_t train_steps = 400;  // optimizer updates (rollouts)
  int64_t rollout_len = 16;
  // Independent rollouts collected per optimizer update (gradient
  // minibatch). Collection fans out across the thread pool; results are
  // reduced in slot order, so curves are invariant to CIT_NUM_THREADS.
  int64_t rollouts_per_update = 1;
  double entropy_coef = 0.01;
  double reward_scale = 100.0;
  double transaction_cost = 1e-3;
  float init_log_std = -1.0f;
  uint64_t seed = 1;

  // Crash-safe checkpointing (see DESIGN.md "Checkpointing"). Every
  // `checkpoint_every` updates the full training state is written
  // atomically to `checkpoint_path`; 0 disables. A non-empty `resume_from`
  // makes Train() restore that checkpoint and continue — bitwise identical
  // to the uninterrupted run, at any CIT_NUM_THREADS.
  int64_t checkpoint_every = 0;
  std::string checkpoint_path;
  std::string resume_from;

  // Telemetry for this run (see DESIGN.md "Observability"): phase timings,
  // loss/grad-norm gauges, optional trace + snapshot files. Off by default;
  // CIT_TELEMETRY / CIT_TRACE / CIT_METRICS override at runtime. Purely
  // observational — curves are bitwise identical with it on or off.
  obs::TelemetryConfig telemetry;
};

}  // namespace cit::core

#endif  // CIT_CORE_CONFIG_H_
