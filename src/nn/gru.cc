#include "nn/gru.h"

#include "common/check.h"

namespace cit::nn {

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : hidden_size_(hidden_size),
      xz_(input_size, hidden_size, rng),
      hz_(hidden_size, hidden_size, rng, /*bias=*/false),
      xr_(input_size, hidden_size, rng),
      hr_(hidden_size, hidden_size, rng, /*bias=*/false),
      xc_(input_size, hidden_size, rng),
      hc_(hidden_size, hidden_size, rng, /*bias=*/false) {}

Var GruCell::Forward(const Var& x, const Var& h) const {
  Var z = ag::Sigmoid(ag::Add(xz_.Forward(x), hz_.Forward(h)));
  Var r = ag::Sigmoid(ag::Add(xr_.Forward(x), hr_.Forward(h)));
  Var c = ag::Tanh(ag::Add(xc_.Forward(x), hc_.Forward(ag::Mul(r, h))));
  // h' = h + z * (c - h)
  return ag::Add(h, ag::Mul(z, ag::Sub(c, h)));
}

void GruCell::CollectParameters(const std::string& prefix,
                                std::vector<NamedParam>* out) const {
  xz_.CollectParameters(prefix + "xz.", out);
  hz_.CollectParameters(prefix + "hz.", out);
  xr_.CollectParameters(prefix + "xr.", out);
  hr_.CollectParameters(prefix + "hr.", out);
  xc_.CollectParameters(prefix + "xc.", out);
  hc_.CollectParameters(prefix + "hc.", out);
}

Gru::Gru(int64_t input_size, int64_t hidden_size, Rng& rng)
    : cell_(input_size, hidden_size, rng) {}

Var Gru::ForwardSequence(const Var& x) const {
  CIT_CHECK_EQ(x.value().ndim(), 3);
  const int64_t batch = x.value().dim(0);
  const int64_t length = x.value().dim(2);
  const int64_t hidden = cell_.hidden_size();
  Var h = Var::Constant(Tensor::Zeros({batch, hidden}));
  std::vector<Var> steps;
  steps.reserve(length);
  for (int64_t t = 0; t < length; ++t) {
    // x_t: [batch, input, 1] -> [batch, input]
    Var xt = ag::Reshape(ag::Slice(x, /*axis=*/2, t, 1),
                         {batch, x.value().dim(1)});
    h = cell_.Forward(xt, h);
    steps.push_back(ag::Reshape(h, {batch, hidden, 1}));
  }
  return ag::Concat(steps, /*axis=*/2);
}

Var Gru::ForwardLast(const Var& x) const {
  CIT_CHECK_EQ(x.value().ndim(), 3);
  const int64_t batch = x.value().dim(0);
  const int64_t length = x.value().dim(2);
  Var h = Var::Constant(Tensor::Zeros({batch, cell_.hidden_size()}));
  for (int64_t t = 0; t < length; ++t) {
    Var xt = ag::Reshape(ag::Slice(x, /*axis=*/2, t, 1),
                         {batch, x.value().dim(1)});
    h = cell_.Forward(xt, h);
  }
  return h;
}

void Gru::CollectParameters(const std::string& prefix,
                            std::vector<NamedParam>* out) const {
  cell_.CollectParameters(prefix + "cell.", out);
}

}  // namespace cit::nn
