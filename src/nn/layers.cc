#include "nn/layers.h"

#include <cmath>

#include "common/check.h"

namespace cit::nn {

Tensor XavierUniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng) {
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Uniform(std::move(shape), rng, -a, a);
}

Tensor KaimingNormal(Shape shape, int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::Randn(std::move(shape), rng, stddev);
}

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = Var::Param(
      XavierUniform({in_features, out_features}, in_features, out_features,
                    rng));
  if (bias) bias_ = Var::Param(Tensor::Zeros({out_features}));
}

Var Linear::Forward(const Var& x) const {
  const bool vector_input = x.value().ndim() == 1;
  Var h = vector_input ? ag::Reshape(x, {1, in_features_}) : x;
  CIT_CHECK_EQ(h.value().dim(-1), in_features_);
  Var y = ag::MatMul(h, weight_);
  if (bias_.defined()) y = ag::Add(y, bias_);
  if (vector_input) y = ag::Reshape(y, {out_features_});
  return y;
}

void Linear::CollectParameters(const std::string& prefix,
                               std::vector<NamedParam>* out) const {
  out->push_back({prefix + "weight", weight_});
  if (bias_.defined()) out->push_back({prefix + "bias", bias_});
}

Mlp::Mlp(const std::vector<int64_t>& sizes, Rng& rng) {
  CIT_CHECK_GE(sizes.size(), 2u);
  layers_.reserve(sizes.size() - 1);
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    layers_.emplace_back(sizes[i], sizes[i + 1], rng);
  }
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = ag::Relu(h);
  }
  return h;
}

void Mlp::CollectParameters(const std::string& prefix,
                            std::vector<NamedParam>* out) const {
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].CollectParameters(
        prefix + "layer" + std::to_string(i) + ".", out);
  }
}

}  // namespace cit::nn
