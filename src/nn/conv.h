#ifndef CIT_NN_CONV_H_
#define CIT_NN_CONV_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace cit::nn {

// Causal dilated 1-D convolution layer (the TCN building block).
class CausalConv1d : public Module {
 public:
  CausalConv1d(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
               int64_t dilation, Rng& rng);

  // x: [batch, in_channels, length] -> [batch, out_channels, length].
  Var Forward(const Var& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) const override;

 private:
  int64_t dilation_;
  Var weight_;  // [out, in, k]
  Var bias_;    // [out]
};

// One temporal block: two causal convolutions with ReLU, plus a residual
// connection (1x1 conv on the skip path when channel counts differ).
class TemporalBlock : public Module {
 public:
  TemporalBlock(int64_t in_channels, int64_t out_channels,
                int64_t kernel_size, int64_t dilation, Rng& rng);

  Var Forward(const Var& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) const override;

 private:
  bool need_projection_;
  CausalConv1d conv1_;
  CausalConv1d conv2_;
  std::vector<CausalConv1d> projection_;  // 0 or 1 element
};

// Temporal convolution network: a stack of TemporalBlocks with dilations
// 1, 2, 4, ... giving an effective receptive field that grows exponentially
// with depth (Yu & Koltun 2016), as used by the paper's actor backbone.
class Tcn : public Module {
 public:
  Tcn(int64_t in_channels, int64_t hidden_channels, int64_t num_blocks,
      int64_t kernel_size, Rng& rng);

  // x: [batch, in_channels, length] -> [batch, hidden_channels, length].
  Var Forward(const Var& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) const override;

  int64_t hidden_channels() const { return hidden_channels_; }

 private:
  int64_t hidden_channels_;
  std::vector<TemporalBlock> blocks_;
};

}  // namespace cit::nn

#endif  // CIT_NN_CONV_H_
