#ifndef CIT_NN_GRU_H_
#define CIT_NN_GRU_H_

#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace cit::nn {

// Gated recurrent unit cell (Cho et al. 2014), built from autodiff ops:
//   z = sigmoid(x Wz + h Uz + bz)
//   r = sigmoid(x Wr + h Ur + br)
//   c = tanh(x Wc + (r*h) Uc + bc)
//   h' = (1-z)*h + z*c
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  // x: [batch, input], h: [batch, hidden] -> [batch, hidden].
  Var Forward(const Var& x, const Var& h) const;

  int64_t hidden_size() const { return hidden_size_; }

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) const override;

 private:
  int64_t hidden_size_;
  Linear xz_, hz_;  // update gate
  Linear xr_, hr_;  // reset gate
  Linear xc_, hc_;  // candidate
};

// Unrolled GRU over a [batch, channels, length] sequence (channel-time
// layout shared with Tcn so the two are drop-in interchangeable in the
// actor backbone ablation).
class Gru : public Module {
 public:
  Gru(int64_t input_size, int64_t hidden_size, Rng& rng);

  // x: [batch, input, length] -> hidden states [batch, hidden, length].
  Var ForwardSequence(const Var& x) const;

  // x: [batch, input, length] -> final hidden state [batch, hidden].
  Var ForwardLast(const Var& x) const;

  int64_t hidden_size() const { return cell_.hidden_size(); }

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) const override;

 private:
  GruCell cell_;
};

}  // namespace cit::nn

#endif  // CIT_NN_GRU_H_
