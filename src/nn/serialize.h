#ifndef CIT_NN_SERIALIZE_H_
#define CIT_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace cit::nn {

// Saves every named parameter of `module` to a simple binary container:
//   magic "CITW1\n", then per parameter: name line, ndim, dims, float data.
// Parameter order and names must match on load (they are derived from the
// module structure, so any identically-configured module matches).
Status SaveParameters(const Module& module, const std::string& path);

// Loads parameters saved by SaveParameters into `module`. Fails without
// modifying anything if a name, count, or shape mismatches.
Status LoadParameters(Module* module, const std::string& path);

}  // namespace cit::nn

#endif  // CIT_NN_SERIALIZE_H_
