#ifndef CIT_NN_SERIALIZE_H_
#define CIT_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace cit::nn {

// Saves every named parameter of `module` to a simple binary container:
//   magic "CITW1\n", then per parameter: name line, ndim, dims, float data.
// Parameter order and names must match on load (they are derived from the
// module structure, so any identically-configured module matches). The
// file is written atomically (tmp + fsync + rename), so a crash mid-save
// never corrupts an existing weights file.
//
// For full training state (optimizer moments, update index, RNG) use the
// checkpoint container in nn/checkpoint.h instead; this format carries
// weights only.
Status SaveParameters(const Module& module, const std::string& path);

// Loads parameters saved by SaveParameters into `module`. Everything is
// parsed and validated into staging first — name, count, or shape
// mismatches, truncation, non-finite values, and trailing bytes all fail
// without modifying the module.
Status LoadParameters(Module* module, const std::string& path);

}  // namespace cit::nn

#endif  // CIT_NN_SERIALIZE_H_
