#include "nn/attention.h"

#include "common/check.h"

namespace cit::nn {

SpatialAttention::SpatialAttention(int64_t num_assets, int64_t features,
                                   int64_t length, Rng& rng)
    : num_assets_(num_assets), features_(features), length_(length) {
  w1_ = Var::Param(XavierUniform({length, 1}, length, 1, rng));
  w2_ = Var::Param(XavierUniform({features, length}, features, length, rng));
  w3_ = Var::Param(XavierUniform({features, 1}, features, 1, rng));
  vs_ = Var::Param(
      XavierUniform({num_assets, num_assets}, num_assets, num_assets, rng));
  bs_ = Var::Param(Tensor::Zeros({num_assets, num_assets}));
}

Var SpatialAttention::Forward(const Var& x, Var* attention_out) const {
  CIT_CHECK_EQ(x.value().ndim(), 3);
  CIT_CHECK_EQ(x.value().dim(0), num_assets_);
  CIT_CHECK_EQ(x.value().dim(1), features_);
  CIT_CHECK_EQ(x.value().dim(2), length_);

  // lhs = (X w1) W2: contract time, then expand back over time.
  Var x_mf = ag::Reshape(ag::MatMul(
                             ag::Reshape(x, {num_assets_ * features_, length_}),
                             w1_),
                         {num_assets_, features_});           // [m, f]
  Var lhs = ag::MatMul(x_mf, w2_);                            // [m, z]

  // rhs = w3 X: contract features.
  Var x_zf = ag::Reshape(ag::Permute(x, {0, 2, 1}),
                         {num_assets_ * length_, features_});
  Var rhs = ag::Reshape(ag::MatMul(x_zf, w3_),
                        {num_assets_, length_});              // [m, z]

  Var m = ag::MatMul(lhs, ag::Transpose(rhs));                // [m, m]
  Var s = ag::MatMul(vs_, ag::Sigmoid(ag::Add(m, bs_)));      // Eq. (4)
  Var s_norm = ag::Softmax(s);                                // Eq. (5), rows
  if (attention_out != nullptr) *attention_out = s_norm;

  // Residual mixing: H = S X + X (Eq. after (5)).
  Var x_flat = ag::Reshape(x, {num_assets_, features_ * length_});
  Var mixed = ag::Add(ag::MatMul(s_norm, x_flat), x_flat);
  return ag::Reshape(mixed, {num_assets_, features_, length_});
}

void SpatialAttention::CollectParameters(const std::string& prefix,
                                         std::vector<NamedParam>* out) const {
  out->push_back({prefix + "w1", w1_});
  out->push_back({prefix + "w2", w2_});
  out->push_back({prefix + "w3", w3_});
  out->push_back({prefix + "vs", vs_});
  out->push_back({prefix + "bs", bs_});
}

}  // namespace cit::nn
