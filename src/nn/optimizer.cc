#include "nn/optimizer.h"

#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"
#include "math/kernels.h"

namespace cit::nn {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (const auto& p : params_) {
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      total += static_cast<double>(g[i]) * g[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : params_) {
      if (!p.has_grad()) continue;
      // mutable_grad (not const_cast on grad()) so copy-on-write storage
      // detaches: a gradient whose buffer is shared with another tensor
      // view must not rescale that view too.
      p.mutable_grad().MulScalarInPlace(scale);
    }
  }
  return norm;
}

Status Optimizer::LoadState(ByteReader* in) {
  StagedState staged;
  if (Status s = ParseState(in, &staged); !s.ok()) return s;
  CommitState(std::move(staged));
  return Status::OK();
}

void Optimizer::AppendSlots(const std::vector<Tensor>& slots,
                            ByteWriter* out) const {
  out->U64(slots.size());
  for (const Tensor& t : slots) {
    // Lazily-initialized slots serialize as absent; a default Tensor has no
    // shape, so it cannot round-trip through TensorPayload.
    out->U8(t.empty() ? 0 : 1);
    if (!t.empty()) out->TensorPayload(t);
  }
}

Status Optimizer::ParseSlots(ByteReader* in, const char* what,
                             std::vector<Tensor>* staged) const {
  const uint64_t count = in->U64();
  if (!in->ok() || count != params_.size()) {
    return Status::InvalidArgument(std::string("optimizer ") + what +
                                   " slot count mismatch");
  }
  staged->clear();
  staged->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint8_t present = in->U8();
    if (!in->ok() || present > 1) {
      return Status::InvalidArgument(std::string("corrupt optimizer ") + what +
                                     " slot flag");
    }
    if (!present) {
      staged->emplace_back();
      continue;
    }
    Tensor t = in->TensorPayload();
    if (!in->ok()) {
      return Status::InvalidArgument(std::string("truncated optimizer ") +
                                     what + " slot");
    }
    if (!(t.shape() == params_[i].shape())) {
      return Status::InvalidArgument(std::string("optimizer ") + what +
                                     " slot shape mismatch");
    }
    for (int64_t j = 0; j < t.numel(); ++j) {
      if (!std::isfinite(t[j])) {
        return Status::InvalidArgument(std::string("non-finite optimizer ") +
                                       what + " slot value");
      }
    }
    staged->push_back(std::move(t));
  }
  return Status::OK();
}

Sgd::Sgd(std::vector<Var> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    Tensor& w = p.mutable_value();
    if (momentum_ > 0.0f) {
      if (velocity_[i].empty()) velocity_[i] = Tensor::Zeros(w.shape());
      Tensor& vel = velocity_[i];
      for (int64_t j = 0; j < w.numel(); ++j) {
        vel[j] = momentum_ * vel[j] + g[j];
        w[j] -= lr_ * vel[j];
      }
    } else {
      for (int64_t j = 0; j < w.numel(); ++j) w[j] -= lr_ * g[j];
    }
  }
}

void Sgd::SaveState(ByteWriter* out) const {
  out->I64(0);  // no step counter
  AppendSlots(velocity_, out);
}

Status Sgd::ParseState(ByteReader* in, StagedState* staged) const {
  staged->t = in->I64();
  if (!in->ok() || staged->t != 0) {
    return Status::InvalidArgument("corrupt SGD state header");
  }
  return ParseSlots(in, "velocity", &staged->slots_a);
}

void Sgd::CommitState(StagedState staged) {
  velocity_ = std::move(staged.slots_a);
}

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    Tensor& w = p.mutable_value();
    if (m_[i].empty()) {
      m_[i] = Tensor::Zeros(w.shape());
      v_[i] = Tensor::Zeros(w.shape());
    }
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (int64_t j = 0; j < w.numel(); ++j) {
      const float gj = g[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * gj;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * gj * gj;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      // Decoupled weight decay (AdamW) so decay strength is independent of
      // the adaptive step size.
      w[j] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) + weight_decay_ * w[j]);
    }
  }
}

void Adam::SaveState(ByteWriter* out) const {
  out->I64(t_);
  AppendSlots(m_, out);
  AppendSlots(v_, out);
}

Status Adam::ParseState(ByteReader* in, StagedState* staged) const {
  staged->t = in->I64();
  if (!in->ok() || staged->t < 0) {
    return Status::InvalidArgument("corrupt Adam state header");
  }
  if (Status s = ParseSlots(in, "m", &staged->slots_a); !s.ok()) return s;
  return ParseSlots(in, "v", &staged->slots_b);
}

void Adam::CommitState(StagedState staged) {
  t_ = staged.t;
  m_ = std::move(staged.slots_a);
  v_ = std::move(staged.slots_b);
}

void CopyParameters(const Module& src, Module* dst) {
  const auto from = src.Parameters();
  auto to = dst->Parameters();
  CIT_CHECK_EQ(from.size(), to.size());
  for (size_t i = 0; i < from.size(); ++i) {
    CIT_CHECK(from[i].var.shape() == to[i].var.shape());
    // Materialize a private buffer instead of assigning the COW handle: a
    // target network must never alias the source's storage, so that code
    // taking raw pointers into either side (optimizer steps, serialization)
    // can never observe writes through the other.
    const Tensor& s = from[i].var.value();
    Tensor copy(s.shape());
    math::kernels::Copy(s.data(), copy.data(), s.numel());
    to[i].var.mutable_value() = std::move(copy);
  }
}

void SoftUpdateParameters(const Module& src, Module* dst, float tau) {
  const auto from = src.Parameters();
  auto to = dst->Parameters();
  CIT_CHECK_EQ(from.size(), to.size());
  for (size_t i = 0; i < from.size(); ++i) {
    // Count equality alone is not enough: two nets can have the same number
    // of parameter tensors with different shapes, and blending mismatched
    // buffers would read out of bounds.
    CIT_CHECK(from[i].var.shape() == to[i].var.shape());
    Tensor& w = to[i].var.mutable_value();
    const Tensor& s = from[i].var.value();
    for (int64_t j = 0; j < w.numel(); ++j) {
      w[j] = tau * s[j] + (1.0f - tau) * w[j];
    }
  }
}

std::vector<Var> ParamVars(const Module& module) {
  std::vector<Var> out;
  for (auto& p : module.Parameters()) out.push_back(p.var);
  return out;
}

}  // namespace cit::nn
