#ifndef CIT_NN_LAYERS_H_
#define CIT_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace cit::nn {

// Fully-connected layer: y = x W + b, x is [batch, in] or [in].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  // x: [batch, in] -> [batch, out], or [in] -> [out].
  Var Forward(const Var& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Var weight_;  // [in, out]
  Var bias_;    // [out], undefined when bias = false
};

// A small multi-layer perceptron with ReLU activations between layers and a
// linear final layer, e.g. Mlp({128, 64, 16}) maps 128 -> 64 -> 16.
class Mlp : public Module {
 public:
  Mlp(const std::vector<int64_t>& sizes, Rng& rng);

  Var Forward(const Var& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) const override;

 private:
  std::vector<Linear> layers_;
};

}  // namespace cit::nn

#endif  // CIT_NN_LAYERS_H_
