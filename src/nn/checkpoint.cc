#include "nn/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>

#include "obs/telemetry.h"

namespace cit::nn {
namespace {

constexpr char kMagic[] = "CITC1\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;
constexpr size_t kMaxSectionName = 256;
// Per-tensor sanity bounds shared by every parser: real models in this
// repo are far below them, and corrupt length fields must never drive
// allocations.
constexpr uint64_t kMaxRank = 16;

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

// ---- CRC32 ------------------------------------------------------------------

uint32_t Crc32(const void* data, size_t size) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---- ByteWriter -------------------------------------------------------------

void ByteWriter::Raw(const void* data, size_t size) {
  if (size == 0) return;
  const auto* p = static_cast<const uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

void ByteWriter::U8(uint8_t v) { Raw(&v, sizeof(v)); }
void ByteWriter::U32(uint32_t v) { Raw(&v, sizeof(v)); }
void ByteWriter::U64(uint64_t v) { Raw(&v, sizeof(v)); }
void ByteWriter::I64(int64_t v) { Raw(&v, sizeof(v)); }
void ByteWriter::F32(float v) { Raw(&v, sizeof(v)); }
void ByteWriter::F64(double v) { Raw(&v, sizeof(v)); }

void ByteWriter::Str(const std::string& s) {
  U64(s.size());
  Raw(s.data(), s.size());
}

void ByteWriter::TensorPayload(const math::Tensor& t) {
  U64(static_cast<uint64_t>(t.ndim()));
  for (int64_t d : t.shape()) I64(d);
  Raw(t.data(), static_cast<size_t>(t.numel()) * sizeof(float));
}

void ByteWriter::DoubleVec(const std::vector<double>& v) {
  U64(v.size());
  Raw(v.data(), v.size() * sizeof(double));
}

// ---- ByteReader -------------------------------------------------------------

bool ByteReader::Take(void* out, size_t n) {
  if (n == 0) return ok_;
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    std::memset(out, 0, n);
    return false;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

uint8_t ByteReader::U8() {
  uint8_t v = 0;
  Take(&v, sizeof(v));
  return v;
}
uint32_t ByteReader::U32() {
  uint32_t v = 0;
  Take(&v, sizeof(v));
  return v;
}
uint64_t ByteReader::U64() {
  uint64_t v = 0;
  Take(&v, sizeof(v));
  return v;
}
int64_t ByteReader::I64() {
  int64_t v = 0;
  Take(&v, sizeof(v));
  return v;
}
float ByteReader::F32() {
  float v = 0;
  Take(&v, sizeof(v));
  return v;
}
double ByteReader::F64() {
  double v = 0;
  Take(&v, sizeof(v));
  return v;
}

void ByteReader::Bytes(void* out, size_t n) { Take(out, n); }

std::string ByteReader::Str(size_t max_len) {
  const uint64_t len = U64();
  if (!ok_ || len > max_len || len > remaining()) {
    ok_ = false;
    return std::string();
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return s;
}

math::Tensor ByteReader::TensorPayload() {
  const uint64_t ndim = U64();
  if (!ok_ || ndim > kMaxRank) {
    ok_ = false;
    return math::Tensor();
  }
  math::Shape shape(ndim);
  uint64_t numel = 1;
  // Each dim and the running product are capped at 2^30 before
  // multiplying, so the product can never wrap; the payload must also fit
  // in what is left of the span before anything is allocated.
  constexpr uint64_t kMaxNumel = uint64_t{1} << 30;
  for (auto& d : shape) {
    d = I64();
    if (!ok_ || d < 0 || static_cast<uint64_t>(d) > kMaxNumel) {
      ok_ = false;
      return math::Tensor();
    }
    numel *= static_cast<uint64_t>(d);
    if (numel > kMaxNumel || numel * sizeof(float) > remaining()) {
      ok_ = false;
      return math::Tensor();
    }
  }
  math::Tensor t(std::move(shape));
  Take(t.data(), static_cast<size_t>(numel) * sizeof(float));
  return t;
}

std::vector<double> ByteReader::DoubleVec() {
  const uint64_t len = U64();
  if (!ok_ || len * sizeof(double) > remaining()) {
    ok_ = false;
    return {};
  }
  std::vector<double> v(static_cast<size_t>(len));
  Take(v.data(), v.size() * sizeof(double));
  return v;
}

// ---- Atomic file I/O --------------------------------------------------------

Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(Errno("cannot open", tmp));
  const auto* p = static_cast<const uint8_t*>(data);
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, p + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::IoError(Errno("write failed on", tmp));
      ::close(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    written += static_cast<size_t>(n);
  }
  // Order matters: data must be durable before the rename publishes it,
  // and the directory entry must be durable before we report success.
  if (::fsync(fd) != 0) {
    const Status status = Status::IoError(Errno("fsync failed on", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError(Errno("close failed on", tmp));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status = Status::IoError(Errno("rename failed onto", path));
    ::unlink(tmp.c_str());
    return status;
  }
  // The rename has published the file; the directory entry itself must now
  // be made durable before success is reported. Failures here are real I/O
  // errors (a crash could roll the publish back), so they propagate into
  // the returned Status instead of being swallowed — a long-lived serving
  // process must never believe a checkpoint is durable when it is not.
  return FsyncParentDir(path);
}

Status FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd < 0) {
    CIT_OBS_COUNT("checkpoint.dir_fsync_errors", 1);
    return Status::IoError(
        Errno("cannot open parent directory for fsync of", path));
  }
  int rc;
  do {
    rc = ::fsync(dirfd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const Status status =
        Status::IoError(Errno("fsync failed on directory", dir));
    ::close(dirfd);
    CIT_OBS_COUNT("checkpoint.dir_fsync_errors", 1);
    return status;
  }
  ::close(dirfd);
  return Status::OK();
}

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0, std::ios::beg);
  out->assign(static_cast<size_t>(size), 0);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), size)) {
    return Status::IoError("read failed: " + path);
  }
  return Status::OK();
}

// ---- Checkpoint container ---------------------------------------------------

void CheckpointWriter::AddSection(const std::string& name,
                                  std::vector<uint8_t> payload) {
  sections_.emplace_back(name, std::move(payload));
}

Status CheckpointWriter::WriteAtomic(const std::string& path) const {
  ByteWriter w;
  w.Raw(kMagic, kMagicLen);
  w.U64(sections_.size());
  for (const auto& [name, payload] : sections_) {
    if (name.empty() || name.size() > kMaxSectionName) {
      return Status::InvalidArgument("bad section name: " + name);
    }
    w.Str(name);
    w.U64(payload.size());
    w.U32(Crc32(payload.data(), payload.size()));
    w.Raw(payload.data(), payload.size());
  }
  return AtomicWriteFile(path, w.bytes().data(), w.bytes().size());
}

Result<CheckpointReader> CheckpointReader::Open(const std::string& path) {
  std::vector<uint8_t> bytes;
  if (Status s = ReadFileBytes(path, &bytes); !s.ok()) return s;
  if (bytes.size() < kMagicLen ||
      std::memcmp(bytes.data(), kMagic, kMagicLen) != 0) {
    return Status::InvalidArgument("bad checkpoint magic in " + path);
  }
  ByteReader r(bytes.data() + kMagicLen, bytes.size() - kMagicLen);
  const uint64_t count = r.U64();
  if (!r.ok()) {
    return Status::InvalidArgument("truncated checkpoint header in " + path);
  }
  CheckpointReader reader;
  for (uint64_t i = 0; i < count; ++i) {
    const std::string name = r.Str(kMaxSectionName);
    const uint64_t payload_len = r.U64();
    const uint32_t crc = r.U32();
    if (!r.ok() || name.empty() || payload_len > r.remaining()) {
      return Status::InvalidArgument("corrupt section header in " + path);
    }
    std::vector<uint8_t> payload(static_cast<size_t>(payload_len));
    r.Bytes(payload.data(), payload.size());
    if (Crc32(payload.data(), payload.size()) != crc) {
      return Status::InvalidArgument("checksum mismatch in section '" +
                                     name + "' of " + path);
    }
    if (!reader.sections_.emplace(name, std::move(payload)).second) {
      return Status::InvalidArgument("duplicate section '" + name +
                                     "' in " + path);
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after last section in " +
                                   path);
  }
  return reader;
}

bool CheckpointReader::HasSection(const std::string& name) const {
  return sections_.count(name) > 0;
}

Result<ByteReader> CheckpointReader::Section(const std::string& name) const {
  const auto it = sections_.find(name);
  if (it == sections_.end()) {
    return Status::NotFound("checkpoint section '" + name + "' missing");
  }
  return ByteReader(it->second);
}

// ---- Module parameter blobs -------------------------------------------------

void AppendModuleParameters(const Module& module, ByteWriter* out) {
  const auto params = module.Parameters();
  out->U64(params.size());
  for (const auto& p : params) {
    out->Str(p.name);
    out->TensorPayload(p.var.value());
  }
}

Status ParseParameters(ByteReader* in, const Module& module,
                       std::vector<math::Tensor>* staged) {
  const auto params = module.Parameters();
  const uint64_t count = in->U64();
  if (!in->ok()) {
    return Status::InvalidArgument("truncated parameter header");
  }
  if (count != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: expected " +
        std::to_string(params.size()) + ", got " + std::to_string(count));
  }
  staged->clear();
  staged->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const std::string name = in->Str();
    if (!in->ok()) {
      return Status::InvalidArgument("corrupt parameter name");
    }
    if (name != params[i].name) {
      return Status::InvalidArgument("parameter name mismatch: expected " +
                                     params[i].name + ", got " + name);
    }
    math::Tensor t = in->TensorPayload();
    if (!in->ok()) {
      return Status::InvalidArgument("truncated parameter data for " + name);
    }
    if (t.shape() != params[i].var.value().shape()) {
      return Status::InvalidArgument("parameter shape mismatch for " + name);
    }
    const float* data = t.data();
    for (int64_t j = 0; j < t.numel(); ++j) {
      if (!std::isfinite(data[j])) {
        return Status::InvalidArgument("non-finite weight value in " + name);
      }
    }
    staged->push_back(std::move(t));
  }
  return Status::OK();
}

void CommitParameters(std::vector<math::Tensor> staged,
                      const Module& module) {
  auto params = module.Parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].var.mutable_value() = std::move(staged[i]);
  }
}

Status ReadModuleParameters(ByteReader* in, Module* module) {
  std::vector<math::Tensor> staged;
  if (Status s = ParseParameters(in, *module, &staged); !s.ok()) return s;
  CommitParameters(std::move(staged), *module);
  return Status::OK();
}

// ---- Meta section -----------------------------------------------------------

void AppendMeta(const CheckpointMeta& meta, ByteWriter* out) {
  out->Str(meta.trainer);
  out->I64(meta.num_assets);
  out->U64(meta.seed);
  out->I64(meta.arch_tag);
}

Status ValidateMeta(ByteReader* in, const CheckpointMeta& expected) {
  CheckpointMeta got;
  got.trainer = in->Str(64);
  got.num_assets = in->I64();
  got.seed = in->U64();
  got.arch_tag = in->I64();
  if (!in->ok() || !in->AtEnd()) {
    return Status::InvalidArgument("corrupt checkpoint meta section");
  }
  if (got.trainer != expected.trainer) {
    return Status::InvalidArgument("checkpoint is for trainer '" +
                                   got.trainer + "', expected '" +
                                   expected.trainer + "'");
  }
  if (got.num_assets != expected.num_assets) {
    return Status::InvalidArgument(
        "checkpoint asset count mismatch: saved " +
        std::to_string(got.num_assets) + ", expected " +
        std::to_string(expected.num_assets));
  }
  if (got.seed != expected.seed) {
    return Status::InvalidArgument("checkpoint seed mismatch: saved " +
                                   std::to_string(got.seed) +
                                   ", expected " +
                                   std::to_string(expected.seed));
  }
  if (got.arch_tag != expected.arch_tag) {
    return Status::InvalidArgument("checkpoint architecture mismatch");
  }
  return Status::OK();
}

// ---- Module grouping --------------------------------------------------------

ModuleGroup& ModuleGroup::Add(const std::string& prefix,
                              const Module* module) {
  entries_.push_back({prefix, module, ag::Var()});
  return *this;
}

ModuleGroup& ModuleGroup::AddVar(const std::string& name,
                                 const ag::Var& var) {
  entries_.push_back({name, nullptr, var});
  return *this;
}

void ModuleGroup::CollectParameters(const std::string& prefix,
                                    std::vector<NamedParam>* out) const {
  for (const auto& e : entries_) {
    if (e.module != nullptr) {
      e.module->CollectParameters(prefix + e.name, out);
    } else {
      out->push_back({prefix + e.name, e.var});
    }
  }
}

}  // namespace cit::nn
