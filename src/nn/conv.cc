#include "nn/conv.h"

namespace cit::nn {

CausalConv1d::CausalConv1d(int64_t in_channels, int64_t out_channels,
                           int64_t kernel_size, int64_t dilation, Rng& rng)
    : dilation_(dilation) {
  const int64_t fan_in = in_channels * kernel_size;
  weight_ = Var::Param(
      KaimingNormal({out_channels, in_channels, kernel_size}, fan_in, rng));
  bias_ = Var::Param(Tensor::Zeros({out_channels}));
}

Var CausalConv1d::Forward(const Var& x) const {
  return ag::CausalConv1d(x, weight_, bias_, dilation_);
}

void CausalConv1d::CollectParameters(const std::string& prefix,
                                     std::vector<NamedParam>* out) const {
  out->push_back({prefix + "weight", weight_});
  out->push_back({prefix + "bias", bias_});
}

TemporalBlock::TemporalBlock(int64_t in_channels, int64_t out_channels,
                             int64_t kernel_size, int64_t dilation, Rng& rng)
    : need_projection_(in_channels != out_channels),
      conv1_(in_channels, out_channels, kernel_size, dilation, rng),
      conv2_(out_channels, out_channels, kernel_size, dilation, rng) {
  if (need_projection_) {
    projection_.emplace_back(in_channels, out_channels, /*kernel_size=*/1,
                             /*dilation=*/1, rng);
  }
}

Var TemporalBlock::Forward(const Var& x) const {
  Var h = ag::Relu(conv1_.Forward(x));
  h = conv2_.Forward(h);
  Var skip = need_projection_ ? projection_[0].Forward(x) : x;
  return ag::Relu(ag::Add(h, skip));
}

void TemporalBlock::CollectParameters(const std::string& prefix,
                                      std::vector<NamedParam>* out) const {
  conv1_.CollectParameters(prefix + "conv1.", out);
  conv2_.CollectParameters(prefix + "conv2.", out);
  if (need_projection_) {
    projection_[0].CollectParameters(prefix + "proj.", out);
  }
}

Tcn::Tcn(int64_t in_channels, int64_t hidden_channels, int64_t num_blocks,
         int64_t kernel_size, Rng& rng)
    : hidden_channels_(hidden_channels) {
  int64_t dilation = 1;
  int64_t channels = in_channels;
  for (int64_t i = 0; i < num_blocks; ++i) {
    blocks_.emplace_back(channels, hidden_channels, kernel_size, dilation,
                         rng);
    channels = hidden_channels;
    dilation *= 2;
  }
}

Var Tcn::Forward(const Var& x) const {
  Var h = x;
  for (const auto& block : blocks_) h = block.Forward(h);
  return h;
}

void Tcn::CollectParameters(const std::string& prefix,
                            std::vector<NamedParam>* out) const {
  for (size_t i = 0; i < blocks_.size(); ++i) {
    blocks_[i].CollectParameters(
        prefix + "block" + std::to_string(i) + ".", out);
  }
}

}  // namespace cit::nn
