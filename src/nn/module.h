#ifndef CIT_NN_MODULE_H_
#define CIT_NN_MODULE_H_

#include <string>
#include <vector>

#include "math/autograd.h"

namespace cit::nn {

using ag::Var;
using math::Rng;
using math::Shape;
using math::Tensor;

// A named trainable parameter. Modules expose their parameters through
// Parameters() so that optimizers and serialization can enumerate them.
struct NamedParam {
  std::string name;
  Var var;
};

// Base class for neural-network building blocks. Modules are containers of
// parameters plus a forward computation expressed with cit::ag ops; there is
// no implicit registration magic — each module appends its own (and its
// children's, with a name prefix) parameters in Parameters().
class Module {
 public:
  virtual ~Module() = default;

  // Appends every trainable parameter, prefixing names with `prefix`.
  virtual void CollectParameters(const std::string& prefix,
                                 std::vector<NamedParam>* out) const = 0;

  // Convenience wrapper returning all parameters of this module tree.
  std::vector<NamedParam> Parameters() const {
    std::vector<NamedParam> out;
    CollectParameters("", &out);
    return out;
  }

  // Total number of scalar weights.
  int64_t NumParams() const {
    int64_t n = 0;
    for (const auto& p : Parameters()) n += p.var.numel();
    return n;
  }
};

// Copies parameter values from `src` into `dst`. The two modules must have
// identical architectures (same parameter count, names, and shapes).
void CopyParameters(const Module& src, Module* dst);

// Polyak averaging for target networks: dst = tau * src + (1 - tau) * dst.
void SoftUpdateParameters(const Module& src, Module* dst, float tau);

// ---- Initializers -----------------------------------------------------------

// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Tensor XavierUniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng);
// Kaiming normal for ReLU layers: N(0, sqrt(2 / fan_in)).
Tensor KaimingNormal(Shape shape, int64_t fan_in, Rng& rng);

}  // namespace cit::nn

#endif  // CIT_NN_MODULE_H_
