#ifndef CIT_NN_OPTIMIZER_H_
#define CIT_NN_OPTIMIZER_H_

#include <vector>

#include "math/autograd.h"
#include "nn/module.h"

namespace cit::nn {

// Base interface for gradient-descent optimizers over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  // Applies one update using the gradients currently accumulated on the
  // parameters; parameters without gradients are skipped.
  virtual void Step() = 0;

  // Clears accumulated gradients on all parameters.
  void ZeroGrad();

  // Rescales gradients so their global L2 norm is at most `max_norm`.
  // Returns the pre-clipping norm.
  float ClipGradNorm(float max_norm);

  const std::vector<Var>& params() const { return params_; }

 protected:
  std::vector<Var> params_;
};

// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float lr, float momentum = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

// Adam (Kingma & Ba 2015) with decoupled weight decay, matching the paper's
// training setup (Adam, lr 1e-4, weight decay 1e-5).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

// Collects the Vars from a module's named parameters.
std::vector<Var> ParamVars(const Module& module);

}  // namespace cit::nn

#endif  // CIT_NN_OPTIMIZER_H_
