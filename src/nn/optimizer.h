#ifndef CIT_NN_OPTIMIZER_H_
#define CIT_NN_OPTIMIZER_H_

#include <vector>

#include "common/status.h"
#include "math/autograd.h"
#include "nn/checkpoint.h"
#include "nn/module.h"

namespace cit::nn {

// Base interface for gradient-descent optimizers over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  // Applies one update using the gradients currently accumulated on the
  // parameters; parameters without gradients are skipped.
  virtual void Step() = 0;

  // Clears accumulated gradients on all parameters.
  void ZeroGrad();

  // Rescales gradients so their global L2 norm is at most `max_norm`.
  // Returns the pre-clipping norm.
  float ClipGradNorm(float max_norm);

  const std::vector<Var>& params() const { return params_; }

  // Checkpoint support. Serialized state: i64 step counter, then one or two
  // groups of per-parameter slot tensors (Adam: m then v; SGD: velocity),
  // each slot a u8 present flag + tensor payload (lazily-initialized slots
  // stay absent). Loading is staged: ParseState validates slot count,
  // shapes, and finiteness against `params_` without mutating anything, and
  // CommitState installs the result, so LoadState fails cleanly.
  struct StagedState {
    std::vector<Tensor> slots_a;
    std::vector<Tensor> slots_b;
    int64_t t = 0;
  };
  virtual void SaveState(ByteWriter* out) const = 0;
  virtual Status ParseState(ByteReader* in, StagedState* staged) const = 0;
  virtual void CommitState(StagedState staged) = 0;
  // ParseState + CommitState.
  Status LoadState(ByteReader* in);

 protected:
  // Shared slot-group (de)serialization for the SaveState/ParseState
  // implementations.
  void AppendSlots(const std::vector<Tensor>& slots, ByteWriter* out) const;
  Status ParseSlots(ByteReader* in, const char* what,
                    std::vector<Tensor>* staged) const;

  std::vector<Var> params_;
};

// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float lr, float momentum = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }

  void SaveState(ByteWriter* out) const override;
  Status ParseState(ByteReader* in, StagedState* staged) const override;
  void CommitState(StagedState staged) override;

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

// Adam (Kingma & Ba 2015) with decoupled weight decay, matching the paper's
// training setup (Adam, lr 1e-4, weight decay 1e-5).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  void SaveState(ByteWriter* out) const override;
  Status ParseState(ByteReader* in, StagedState* staged) const override;
  void CommitState(StagedState staged) override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

// Collects the Vars from a module's named parameters.
std::vector<Var> ParamVars(const Module& module);

}  // namespace cit::nn

#endif  // CIT_NN_OPTIMIZER_H_
