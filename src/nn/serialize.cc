#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include "nn/checkpoint.h"

namespace cit::nn {
namespace {

constexpr char kMagic[] = "CITW1\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;

}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  ByteWriter w;
  w.Raw(kMagic, kMagicLen);
  AppendModuleParameters(module, &w);
  return AtomicWriteFile(path, w.bytes().data(), w.bytes().size());
}

Status LoadParameters(Module* module, const std::string& path) {
  std::vector<uint8_t> bytes;
  if (Status s = ReadFileBytes(path, &bytes); !s.ok()) return s;
  if (bytes.size() < kMagicLen ||
      std::memcmp(bytes.data(), kMagic, kMagicLen) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  ByteReader r(bytes.data() + kMagicLen, bytes.size() - kMagicLen);
  // Parse everything into staging first (validating names, shapes, and
  // finiteness) so a malformed file leaves the module untouched.
  std::vector<math::Tensor> staged;
  if (Status s = ParseParameters(&r, *module, &staged); !s.ok()) {
    return Status(s.code(), s.message() + " in " + path);
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after last tensor in " +
                                   path);
  }
  CommitParameters(std::move(staged), *module);
  return Status::OK();
}

}  // namespace cit::nn
