#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <vector>

namespace cit::nn {
namespace {

constexpr char kMagic[] = "CITW1\n";

}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic) - 1);
  const auto params = module.Parameters();
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const uint64_t name_len = p.name.size();
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p.name.data(), static_cast<std::streamsize>(name_len));
    const auto& shape = p.var.value().shape();
    const uint64_t ndim = shape.size();
    out.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
    for (int64_t d : shape) {
      const int64_t dim = d;
      out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    const math::Tensor& value = p.var.value();
    out.write(reinterpret_cast<const char*>(value.data()),
              static_cast<std::streamsize>(value.numel() *
                                           static_cast<int64_t>(sizeof(float))));
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadParameters(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  char magic[sizeof(kMagic) - 1];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, sizeof(magic)) != kMagic) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  auto params = module->Parameters();
  if (count != params.size()) {
    return Status::InvalidArgument("parameter count mismatch in " + path);
  }

  // Parse everything into staging first so a malformed file leaves the
  // module untouched.
  std::vector<math::Tensor> staged;
  staged.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!in || name_len > 4096) {
      return Status::InvalidArgument("corrupt parameter name length");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (name != params[i].name) {
      return Status::InvalidArgument("parameter name mismatch: expected " +
                                     params[i].name + ", got " + name);
    }
    uint64_t ndim = 0;
    in.read(reinterpret_cast<char*>(&ndim), sizeof(ndim));
    if (!in || ndim > 16) {
      return Status::InvalidArgument("corrupt parameter rank");
    }
    math::Shape shape(ndim);
    for (auto& d : shape) {
      in.read(reinterpret_cast<char*>(&d), sizeof(d));
      if (!in || d < 0) return Status::InvalidArgument("corrupt dim");
    }
    if (shape != params[i].var.value().shape()) {
      return Status::InvalidArgument("parameter shape mismatch for " +
                                     name);
    }
    math::Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!in) return Status::InvalidArgument("truncated parameter data");
    staged.push_back(std::move(t));
  }
  for (uint64_t i = 0; i < count; ++i) {
    params[i].var.mutable_value() = std::move(staged[i]);
  }
  return Status::OK();
}

}  // namespace cit::nn
