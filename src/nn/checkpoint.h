#ifndef CIT_NN_CHECKPOINT_H_
#define CIT_NN_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "math/tensor.h"
#include "nn/module.h"

namespace cit::nn {

// Crash-safe checkpoint container ("CITC1"), plus the byte-stream helpers
// every serialization path in the repo builds on.
//
// Layout:
//   magic "CITC1\n"
//   u64 section_count
//   per section: u64 name_len, name bytes, u64 payload_len,
//                u32 crc32(payload), payload bytes
//
// Guarantees (see DESIGN.md "Checkpointing"):
//  - WriteAtomic never leaves a torn file at `path`: the container is
//    written to `path + ".tmp"`, fsync'd, renamed over `path`, and the
//    parent directory is fsync'd. A crash at any instant leaves either the
//    previous checkpoint or the new one.
//  - Open validates the magic, every section header, every section CRC32,
//    and that no bytes trail the last section before returning a reader,
//    so any torn, truncated, or bit-flipped file is rejected with a clean
//    Status — consumers never parse unverified bytes.

// ---- CRC32 ------------------------------------------------------------------

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `size` bytes.
uint32_t Crc32(const void* data, size_t size);

// ---- Byte-stream helpers ----------------------------------------------------

// Appends fixed-width little-endian primitives and length-prefixed
// composites to a growing byte buffer.
class ByteWriter {
 public:
  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v);
  void F32(float v);
  void F64(double v);
  void Raw(const void* data, size_t size);
  // u64 length + bytes.
  void Str(const std::string& s);
  // u64 ndim, i64 dims, raw float payload.
  void TensorPayload(const math::Tensor& t);
  // u64 length + f64 elements.
  void DoubleVec(const std::vector<double>& v);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

// Bounds-checked reads over a borrowed byte span. Any underflow or
// out-of-range length permanently fails the reader (`ok()` turns false and
// every subsequent read returns a zero value); callers validate `ok()` —
// and usually `AtEnd()` — once after parsing instead of after every field.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int64_t I64();
  float F32();
  double F64();
  // Raw bytes (zero-filled on underflow, like every other read).
  void Bytes(void* out, size_t n);
  // Rejects lengths above `max_len` (corrupt length fields must not drive
  // allocations).
  std::string Str(size_t max_len = 4096);
  // Validates rank <= 16, non-negative dims, and that the float payload
  // fits in the remaining bytes before allocating.
  math::Tensor TensorPayload();
  std::vector<double> DoubleVec();

 private:
  bool Take(void* out, size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---- Atomic file I/O --------------------------------------------------------

// Writes `size` bytes to `path` via tmp-file + fsync + rename + parent-
// directory fsync, so `path` always holds either its previous contents or
// the full new contents — never a torn write. Every stage's failure —
// including the post-rename directory fsync, without which the publish
// itself may not survive a crash — surfaces in the returned Status (and
// bumps the `checkpoint.dir_fsync_errors` obs counter for the directory
// stage); OK means the bytes and the rename are both durable.
Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size);

// The directory-durability step of AtomicWriteFile, exposed so its failure
// modes are directly testable: fsyncs the parent directory of `path`
// (EINTR-safe). A parent that cannot be opened as a directory or whose
// fsync fails yields IoError and bumps `checkpoint.dir_fsync_errors`.
Status FsyncParentDir(const std::string& path);

// Reads a whole file. Missing/unreadable files are IoError.
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

// ---- Checkpoint container ---------------------------------------------------

class CheckpointWriter {
 public:
  // Adds a named section (names must be unique; checked on write).
  void AddSection(const std::string& name, std::vector<uint8_t> payload);

  // Serializes the container and writes it atomically to `path`.
  Status WriteAtomic(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::vector<uint8_t>>> sections_;
};

class CheckpointReader {
 public:
  // Reads and fully validates a container: magic, section headers, CRC32
  // of every payload, no duplicate names, no trailing bytes. A failure
  // here is the only way corruption surfaces — sections handed out below
  // are already checksum-verified.
  static Result<CheckpointReader> Open(const std::string& path);

  bool HasSection(const std::string& name) const;
  // Reader over a section's payload (borrowed from this object, which must
  // outlive it). NotFound if absent.
  Result<ByteReader> Section(const std::string& name) const;

 private:
  std::map<std::string, std::vector<uint8_t>> sections_;
};

// ---- Module parameter blobs -------------------------------------------------

// Appends every named parameter of `module`: u64 count, then per parameter
// a name string, u64 ndim, i64 dims, raw float payload. This is also the
// body of the standalone CITW1 weights file (nn/serialize.h).
void AppendModuleParameters(const Module& module, ByteWriter* out);

// Parses a parameter blob, validating the count, every name, every shape,
// and that every value is finite against `module` — without touching the
// module. On success `staged` holds one tensor per parameter, in order.
Status ParseParameters(ByteReader* in, const Module& module,
                       std::vector<math::Tensor>* staged);

// Installs tensors staged by ParseParameters (infallible).
void CommitParameters(std::vector<math::Tensor> staged, const Module& module);

// ParseParameters + CommitParameters: fails without modifying `module`.
Status ReadModuleParameters(ByteReader* in, Module* module);

// ---- Meta section -----------------------------------------------------------

// Identity of the producer of a checkpoint; a resume validates it against
// the consuming trainer so a checkpoint never silently loads into the
// wrong trainer, asset universe, or architecture.
struct CheckpointMeta {
  std::string trainer;    // e.g. "CIT", "A2C", "PPO", "DDPG"
  int64_t num_assets = 0;
  uint64_t seed = 0;
  int64_t arch_tag = 0;   // trainer-specific (num_policies, hidden, ...)
};

void AppendMeta(const CheckpointMeta& meta, ByteWriter* out);
// Parses a meta section and checks every field against `expected`.
Status ValidateMeta(ByteReader* in, const CheckpointMeta& expected);

// ---- Module grouping --------------------------------------------------------

// Flattens several modules (each under a name prefix) plus bare named Vars
// into one Module view, so a trainer's whole parameter set serializes as a
// single blob. Borrows the modules; they must outlive the group.
class ModuleGroup : public Module {
 public:
  ModuleGroup& Add(const std::string& prefix, const Module* module);
  ModuleGroup& AddVar(const std::string& name, const ag::Var& var);

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) const override;

 private:
  struct Entry {
    std::string name;          // prefix (module) or full name (var)
    const Module* module;      // nullptr for a bare var
    ag::Var var;
  };
  std::vector<Entry> entries_;
};

}  // namespace cit::nn

#endif  // CIT_NN_CHECKPOINT_H_
