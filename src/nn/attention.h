#ifndef CIT_NN_ATTENTION_H_
#define CIT_NN_ATTENTION_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace cit::nn {

// Spatial attention over assets (paper Eq. (4)-(5), ASTGCN-style):
//   S = V_s . sigmoid( ((X w1) W2) (w3 X)^T + b_s ),   then row-softmax.
// X is [num_assets, features, length]; S is [num_assets, num_assets] and
// captures pairwise asset correlations. The module also applies the paper's
// residual combination H = S X + X.
class SpatialAttention : public Module {
 public:
  SpatialAttention(int64_t num_assets, int64_t features, int64_t length,
                   Rng& rng);

  // x: [num_assets, features, length] -> same shape, after attention mixing
  // plus residual. If `attention_out` is non-null it receives the row-softmax
  // attention matrix [num_assets, num_assets] (for diagnostics/tests).
  Var Forward(const Var& x, Var* attention_out = nullptr) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) const override;

 private:
  int64_t num_assets_;
  int64_t features_;
  int64_t length_;
  Var w1_;  // [length, 1]
  Var w2_;  // [features, length]
  Var w3_;  // [features, 1]
  Var vs_;  // [num_assets, num_assets]
  Var bs_;  // [num_assets, num_assets]
};

}  // namespace cit::nn

#endif  // CIT_NN_ATTENTION_H_
