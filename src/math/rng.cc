#include "math/rng.h"

#include <cmath>

#include "common/check.h"

namespace cit::math {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t n) {
  CIT_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x = NextU64();
  while (x >= limit) x = NextU64();
  return static_cast<int64_t>(x % un);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Gamma(double shape) {
  CIT_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    const double u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::Dirichlet(int k, double alpha) {
  CIT_CHECK_GT(k, 0);
  std::vector<double> out(k);
  double total = 0.0;
  for (int i = 0; i < k; ++i) {
    out[i] = Gamma(alpha);
    total += out[i];
  }
  if (total <= 0.0) {
    for (int i = 0; i < k; ++i) out[i] = 1.0 / k;
    return out;
  }
  for (int i = 0; i < k; ++i) out[i] /= total;
  return out;
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

Rng Rng::Split(uint64_t seed, uint64_t stream, uint64_t substream) {
  // Chain each word through a full SplitMix64 round so nearby
  // (seed, stream, substream) triples land on unrelated states; the final
  // output seeds the usual SplitMix64-based state expansion in Rng's ctor.
  uint64_t s = seed;
  s = SplitMix64(s) ^ stream;
  s = SplitMix64(s) ^ substream;
  return Rng(SplitMix64(s));
}

}  // namespace cit::math
