#ifndef CIT_MATH_KERNELS_H_
#define CIT_MATH_KERNELS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/thread_pool.h"

// The numeric inner loops behind Tensor and the autodiff ops, extracted into
// one unit so (a) every hot loop lives behind a seam future backends can
// replace, and (b) parallelism policy is decided in exactly one place.
//
// Determinism contract, per backend: every kernel produces
// bitwise-identical output for any thread count. Parallel kernels
// partition *output* elements across threads (each element is computed by
// exactly one thread, with a fixed per-element reduction order); no kernel
// ever splits a single element's reduction across threads. This holds for
// each dispatch backend independently: the scalar backend is the bitwise
// reference, and the SIMD backend matches it exactly on the non-FMA arms
// (plain elementwise add/sub/mul/div and scalar-parameter ops, plus any
// FusedElemwise chain) while the FMA arms (MatMul via the register-tiled
// microkernel, Axpy) may differ from scalar by the usual one-rounding-per-
// fma tolerance — but never between thread counts or runs within one
// backend.
namespace cit::math::kernels {

// Elements below which elementwise kernels stay serial: a fork/join costs
// more than streaming this many floats through one core.
inline constexpr int64_t kElementwiseGrain = 1 << 15;

// ---- Backend dispatch ------------------------------------------------------
// GEMM register-tile geometry, shared by the scalar and SIMD microkernels
// (and by tests building adversarial tail shapes around them): MR rows of A
// against an NR-wide packed panel of B, k blocked by KC so the packed panel
// (~KC*NR floats) stays L1-resident. NR is two 16-float AVX-512 vectors /
// four AVX2 vectors / eight NEON vectors wide.
inline constexpr int64_t kGemmMr = 4;
inline constexpr int64_t kGemmNr = 32;
inline constexpr int64_t kGemmKc = 256;

// Which implementation the hot kernels dispatch to. Selected once at
// startup: CIT_KERNEL=scalar or =simd forces a backend, unset picks the
// SIMD backend when the build compiled an ISA path (see math/simd.h) and
// the scalar backend otherwise. The choice is process-wide and uniform
// across all kernels, so A-vs-B comparisons inside one process (fused vs.
// unfused replay, compiled vs. interpreted, serve vs. library) always run
// both arms on the same backend.
enum class Backend { kScalar, kSimd };

// The backend every kernel currently dispatches to.
Backend ActiveBackend();
// Overrides the backend at runtime (tests and benches; not thread-safe
// against in-flight kernels — call it between kernel invocations only).
// kSimd is clamped to kScalar when no ISA path was compiled in. Returns
// the previously active backend so callers can restore it.
Backend SetBackend(Backend b);
// True when an explicit SIMD path was compiled (x86 with AVX2+FMA or
// AVX-512 — i.e. a -DCIT_NATIVE_ARCH=ON build on such a host — or aarch64
// NEON).
bool SimdAvailable();
// "avx512" | "avx2" | "neon" | "none" (the compiled ISA, independent of
// which backend is active).
const char* SimdIsaName();

// ---- Elementwise -----------------------------------------------------------
void Fill(float* dst, float v, int64_t n);
void Copy(const float* src, float* dst, int64_t n);
void Add(const float* a, const float* b, float* out, int64_t n);
void Sub(const float* a, const float* b, float* out, int64_t n);
void Mul(const float* a, const float* b, float* out, int64_t n);
void Div(const float* a, const float* b, float* out, int64_t n);
void AddScalar(const float* a, float v, float* out, int64_t n);
void MulScalar(const float* a, float v, float* out, int64_t n);
// dst += src, the gradient-accumulation primitive.
void AddInto(float* dst, const float* src, int64_t n);
void SubInto(float* dst, const float* src, int64_t n);
void ScaleInto(float* dst, float v, int64_t n);
// y += alpha * x.
void Axpy(float alpha, const float* x, float* y, int64_t n);

// Applies f elementwise; used by the autodiff unary ops. Parallel above
// kElementwiseGrain with the same partitioning as the named kernels.
template <typename F>
void Map(const float* in, float* out, int64_t n, F f) {
  ThreadPool::Global().ParallelFor(
      0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) out[i] = f(in[i]);
      });
}

// Binary variant: out[i] = f(a[i], b[i]).
template <typename F>
void Map2(const float* a, const float* b, float* out, int64_t n, F f) {
  ThreadPool::Global().ParallelFor(
      0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) out[i] = f(a[i], b[i]);
      });
}

// Ternary variant: out[i] = f(a[i], b[i], c[i]) — the shape of most
// backward passes (grad, input, output).
template <typename F>
void Map3(const float* a, const float* b, const float* c, float* out,
          int64_t n, F f) {
  ThreadPool::Global().ParallelFor(
      0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) out[i] = f(a[i], b[i], c[i]);
      });
}

// ---- Fused elementwise -----------------------------------------------------
// A tiny interpreted program over one float: the replayable form of the
// autodiff unary ops (math/plan.cc fuses adjacent chains into one sweep).
// ElemApply is the single source of truth for each op's scalar formula —
// the autodiff forward lambdas route through it too, so the interpreted
// path, an unfused replay, and a fused sweep all evaluate the identical
// expression (every op is either IEEE-exact or one libm call, and chaining
// float-returning calls rounds to float32 at each link exactly like a
// store/reload, so results are bitwise equal no matter how many ops fuse).
enum class ElemOpKind : uint8_t {
  kExp,
  kLog,
  kTanh,
  kSigmoid,
  kRelu,
  kSqrt,
  kSquare,
  kAbs,
  kClamp,      // p0 = lo, p1 = hi
  kAddScalar,  // p0 = addend
  kMulScalar,  // p0 = factor
};

struct ElemOp {
  ElemOpKind kind;
  float p0 = 0.0f;
  float p1 = 0.0f;
};

inline float ElemApply(const ElemOp& op, float x) {
  switch (op.kind) {
    case ElemOpKind::kExp: return std::exp(x);
    case ElemOpKind::kLog: return std::log(x);
    case ElemOpKind::kTanh: return std::tanh(x);
    case ElemOpKind::kSigmoid: return 1.0f / (1.0f + std::exp(-x));
    case ElemOpKind::kRelu: return x > 0.0f ? x : 0.0f;
    case ElemOpKind::kSqrt: return std::sqrt(x);
    case ElemOpKind::kSquare: return x * x;
    case ElemOpKind::kAbs: return std::fabs(x);
    case ElemOpKind::kClamp: return std::min(op.p1, std::max(op.p0, x));
    case ElemOpKind::kAddScalar: return x + op.p0;
    case ElemOpKind::kMulScalar: return x * op.p0;
  }
  return x;  // unreachable
}

// out[i] = ops[count-1](... ops[0](in[i])); one pass over the data.
void FusedElemwise(const float* in, float* out, int64_t n, const ElemOp* ops,
                   int count);

// ---- Reductions ------------------------------------------------------------
// Serial, double-accumulated full sum (deterministic by construction).
double Sum(const float* a, int64_t n);
// out[o, i] = sum_k x[o, k, i] for x viewed as [outer, axis_len, inner].
// `out` must be zero-initialized by the caller? No: it is overwritten.
void SumAxis(const float* x, float* out, int64_t outer, int64_t axis_len,
             int64_t inner);

// ---- Linear algebra --------------------------------------------------------
// c = a @ b with a:[p,q], b:[q,r], c:[p,r] (c overwritten). Cache-blocked
// with packed B panels and an MR x NR register tile; parallel over rows.
void MatMul(const float* a, const float* b, float* c, int64_t p, int64_t q,
            int64_t r);
// c = a @ b with b supplied transposed (bT:[r,q]): c[i,j] = <a_i, bT_j>.
// This is the backward pass's grad_a = g @ b^T without materializing b^T.
void MatMulTransB(const float* a, const float* bT, float* c, int64_t p,
                  int64_t q, int64_t r);
// c = a^T @ b with a:[p,q], b:[p,r], c:[q,r] (grad_b without transposing a).
void MatMulTransA(const float* a, const float* b, float* c, int64_t p,
                  int64_t q, int64_t r);
// out[c, r] = in[r, c] for in:[rows, cols]; blocked for cache friendliness.
void Transpose(const float* in, float* out, int64_t rows, int64_t cols);

// ---- Softmax family (in place over the last axis) --------------------------
void SoftmaxLastAxis(float* x, int64_t outer, int64_t n);
void LogSoftmaxLastAxis(float* x, int64_t outer, int64_t n);

// ---- Causal dilated 1-D convolution ----------------------------------------
// x:[batch, cin, len], w:[cout, cin, k], bias:[cout] or nullptr,
// out:[batch, cout, len] (overwritten). Left-pads implicitly with
// (k-1)*dilation zeros. Large problems take a fused im2col + GEMM path
// (reusing the blocked MatMul, hence its parallelism); small ones use a
// direct loop. The path choice depends only on shapes, so results stay
// deterministic across thread counts.
void CausalConv1dForward(const float* x, const float* w, const float* bias,
                         float* out, int64_t batch, int64_t cin, int64_t cout,
                         int64_t len, int64_t k, int64_t dilation);
// Accumulates into gx/gw/gb (callers pass zeroed or already-accumulated
// buffers); gb may be nullptr when the conv has no bias.
void CausalConv1dBackward(const float* x, const float* w, const float* gout,
                          float* gx, float* gw, float* gb, int64_t batch,
                          int64_t cin, int64_t cout, int64_t len, int64_t k,
                          int64_t dilation);

}  // namespace cit::math::kernels

#endif  // CIT_MATH_KERNELS_H_
