#include "math/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace cit::math {

int64_t Tensor::NumelOf(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    CIT_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(NumelOf(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  CIT_CHECK_EQ(NumelOf(shape_), static_cast<int64_t>(data_.size()));
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t(Shape{1});
  t.data_[0] = value;
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.Normal(0.0, stddev));
  return t;
}

Tensor Tensor::Uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.Uniform(lo, hi));
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t(Shape{n});
  for (int64_t i = 0; i < n; ++i) t.data_[i] = static_cast<float>(i);
  return t;
}

int64_t Tensor::dim(int64_t i) const {
  if (i < 0) i += ndim();
  CIT_CHECK(i >= 0 && i < ndim());
  return shape_[i];
}

float& Tensor::operator[](int64_t flat_index) {
  CIT_CHECK(flat_index >= 0 && flat_index < numel());
  return data_[flat_index];
}

float Tensor::operator[](int64_t flat_index) const {
  CIT_CHECK(flat_index >= 0 && flat_index < numel());
  return data_[flat_index];
}

int64_t Tensor::FlatIndex(std::initializer_list<int64_t> idx) const {
  CIT_CHECK_EQ(static_cast<int64_t>(idx.size()), ndim());
  int64_t flat = 0;
  int64_t axis = 0;
  for (int64_t i : idx) {
    CIT_CHECK(i >= 0 && i < shape_[axis]);
    flat = flat * shape_[axis] + i;
    ++axis;
  }
  return flat;
}

float& Tensor::At(std::initializer_list<int64_t> idx) {
  return data_[FlatIndex(idx)];
}

float Tensor::At(std::initializer_list<int64_t> idx) const {
  return data_[FlatIndex(idx)];
}

float Tensor::Item() const {
  CIT_CHECK_EQ(numel(), 1);
  return data_[0];
}

Tensor Tensor::Reshape(Shape new_shape) const {
  CIT_CHECK_EQ(NumelOf(new_shape), numel());
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::Transpose2D() const {
  CIT_CHECK_EQ(ndim(), 2);
  const int64_t rows = shape_[0];
  const int64_t cols = shape_[1];
  Tensor out(Shape{cols, rows});
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      out.data_[c * rows + r] = data_[r * cols + c];
    }
  }
  return out;
}

Tensor Tensor::Slice(int64_t axis, int64_t start, int64_t len) const {
  if (axis < 0) axis += ndim();
  CIT_CHECK(axis >= 0 && axis < ndim());
  CIT_CHECK(start >= 0 && len >= 0 && start + len <= shape_[axis]);
  Shape out_shape = shape_;
  out_shape[axis] = len;
  Tensor out(out_shape);
  // The tensor decomposes as [outer, shape[axis], inner].
  int64_t outer = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= shape_[i];
  int64_t inner = 1;
  for (int64_t i = axis + 1; i < ndim(); ++i) inner *= shape_[i];
  const int64_t in_step = shape_[axis] * inner;
  const int64_t out_step = len * inner;
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = data_.data() + o * in_step + start * inner;
    float* dst = out.data_.data() + o * out_step;
    std::copy(src, src + len * inner, dst);
  }
  return out;
}

namespace {

void CheckSameShape(const Tensor& a, const Tensor& b) {
  CIT_CHECK_MSG(a.shape() == b.shape(), "tensor shape mismatch");
}

}  // namespace

Tensor Tensor::Add(const Tensor& other) const {
  CheckSameShape(*this, other);
  Tensor out = *this;
  for (int64_t i = 0; i < numel(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Tensor Tensor::Sub(const Tensor& other) const {
  CheckSameShape(*this, other);
  Tensor out = *this;
  for (int64_t i = 0; i < numel(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Tensor Tensor::Mul(const Tensor& other) const {
  CheckSameShape(*this, other);
  Tensor out = *this;
  for (int64_t i = 0; i < numel(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Tensor Tensor::Div(const Tensor& other) const {
  CheckSameShape(*this, other);
  Tensor out = *this;
  for (int64_t i = 0; i < numel(); ++i) out.data_[i] /= other.data_[i];
  return out;
}

Tensor Tensor::AddScalar(float v) const {
  Tensor out = *this;
  for (auto& x : out.data_) x += v;
  return out;
}

Tensor Tensor::MulScalar(float v) const {
  Tensor out = *this;
  for (auto& x : out.data_) x *= v;
  return out;
}

void Tensor::AddInPlace(const Tensor& other) {
  CheckSameShape(*this, other);
  for (int64_t i = 0; i < numel(); ++i) data_[i] += other.data_[i];
}

void Tensor::SubInPlace(const Tensor& other) {
  CheckSameShape(*this, other);
  for (int64_t i = 0; i < numel(); ++i) data_[i] -= other.data_[i];
}

void Tensor::MulScalarInPlace(float v) {
  for (auto& x : data_) x *= v;
}

void Tensor::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

float Tensor::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::Mean() const {
  CIT_CHECK_GT(numel(), 0);
  return Sum() / static_cast<float>(numel());
}

float Tensor::Max() const {
  CIT_CHECK_GT(numel(), 0);
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::Min() const {
  CIT_CHECK_GT(numel(), 0);
  return *std::min_element(data_.begin(), data_.end());
}

Tensor Tensor::SumAxis(int64_t axis) const {
  if (axis < 0) axis += ndim();
  CIT_CHECK(axis >= 0 && axis < ndim());
  Shape out_shape;
  for (int64_t i = 0; i < ndim(); ++i) {
    if (i != axis) out_shape.push_back(shape_[i]);
  }
  if (out_shape.empty()) out_shape.push_back(1);
  Tensor out(out_shape);
  int64_t outer = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= shape_[i];
  int64_t inner = 1;
  for (int64_t i = axis + 1; i < ndim(); ++i) inner *= shape_[i];
  const int64_t axis_len = shape_[axis];
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t a = 0; a < axis_len; ++a) {
      const float* src = data_.data() + (o * axis_len + a) * inner;
      float* dst = out.data_.data() + o * inner;
      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  return out;
}

Tensor Tensor::MeanAxis(int64_t axis) const {
  if (axis < 0) axis += ndim();
  Tensor out = SumAxis(axis);
  out.MulScalarInPlace(1.0f / static_cast<float>(shape_[axis]));
  return out;
}

Tensor Tensor::MatMul(const Tensor& a, const Tensor& b) {
  CIT_CHECK_EQ(a.ndim(), 2);
  CIT_CHECK_EQ(b.ndim(), 2);
  const int64_t p = a.shape_[0];
  const int64_t q = a.shape_[1];
  CIT_CHECK_EQ(b.shape_[0], q);
  const int64_t r = b.shape_[1];
  Tensor out(Shape{p, r});
  // i-k-j ordering: streams through b and out rows contiguously.
  for (int64_t i = 0; i < p; ++i) {
    float* out_row = out.data_.data() + i * r;
    const float* a_row = a.data_.data() + i * q;
    for (int64_t k = 0; k < q; ++k) {
      const float aik = a_row[k];
      if (aik == 0.0f) continue;
      const float* b_row = b.data_.data() + k * r;
      for (int64_t j = 0; j < r; ++j) out_row[j] += aik * b_row[j];
    }
  }
  return out;
}

std::string Tensor::ToString(int64_t max_items) const {
  std::ostringstream os;
  os << "Tensor[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ",";
    os << shape_[i];
  }
  os << "]{";
  const int64_t n = std::min<int64_t>(numel(), max_items);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  if (numel() > n) os << ", ...";
  os << "}";
  return os.str();
}

bool TensorEquals(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() && a.vec() == b.vec();
}

bool TensorAllClose(const Tensor& a, const Tensor& b, float atol) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(a[i] - b[i]) > atol) return false;
  }
  return true;
}

}  // namespace cit::math
