#include "math/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/check.h"
#include "math/kernels.h"
#include "obs/telemetry.h"

namespace cit::math {

namespace detail {
namespace {

// Per-thread Storage freelist behind ArenaScope. Bounded so a burst of
// large temporaries cannot pin memory for the thread's lifetime.
constexpr int64_t kArenaMaxHeldFloats = int64_t{1} << 22;  // 16 MiB
constexpr size_t kArenaMaxPerSize = 64;     // parked objects per size class
constexpr size_t kArenaMaxSizeClasses = 64;  // distinct sizes tracked

thread_local int t_arena_depth = 0;      // >0 while inside an ArenaScope
thread_local bool t_pool_alive = false;  // false once the pool is destroyed
thread_local int64_t t_arena_reuse = 0;
thread_local int64_t t_arena_miss = 0;
thread_local int64_t t_arena_reused_bytes = 0;
thread_local int64_t t_arena_fresh_bytes = 0;

// Whole Storage objects are parked, not just their float buffers, so a
// reuse is pop + control block — no Storage reallocation, no vector move.
// Sizes are exact-match classes in a flat vector: an inference forward
// allocates the same few dozen shapes every step, so a short linear scan
// beats hashing (the previous unordered_map pool measured as a net loss).
struct SizeClass {
  int64_t n = 0;
  std::vector<Storage*> free_list;
};

struct BufferPool {
  std::vector<SizeClass> classes;
  int64_t held = 0;
  BufferPool() { t_pool_alive = true; }
  ~BufferPool() {
    t_pool_alive = false;
    for (SizeClass& c : classes)
      for (Storage* s : c.free_list) delete s;
  }
  SizeClass* Find(int64_t n) {
    for (SizeClass& c : classes)
      if (c.n == n) return &c;
    return nullptr;
  }
};

BufferPool& Pool() {
  thread_local BufferPool pool;
  return pool;
}

// shared_ptr deleter for arena-allocated Storage: parks the object in the
// destroying thread's freelist. Running on a different thread than the
// allocation is fine — each thread only ever touches its own pool.
void RecycleStorage(Storage* s) {
  if (t_pool_alive) {
    BufferPool& pool = Pool();
    const int64_t n = static_cast<int64_t>(s->data.size());
    if (n > 0 && pool.held + n <= kArenaMaxHeldFloats) {
      SizeClass* c = pool.Find(n);
      if (c == nullptr && pool.classes.size() < kArenaMaxSizeClasses) {
        pool.classes.push_back(SizeClass{n, {}});
        c = &pool.classes.back();
      }
      if (c != nullptr && c->free_list.size() < kArenaMaxPerSize) {
        c->free_list.push_back(s);
        pool.held += n;
        return;
      }
    }
  }
  delete s;
}

}  // namespace

std::shared_ptr<Storage> NewStorage(int64_t n, bool zero_fill) {
  if (t_arena_depth > 0) {
    BufferPool& pool = Pool();
    SizeClass* c = pool.Find(n);
    if (c != nullptr && !c->free_list.empty()) {
      Storage* s = c->free_list.back();
      c->free_list.pop_back();
      pool.held -= n;
      ++t_arena_reuse;
      t_arena_reused_bytes += n * static_cast<int64_t>(sizeof(float));
      CIT_OBS_COUNT("arena.hits", 1);
      CIT_OBS_COUNT("arena.reused_bytes",
                    n * static_cast<int64_t>(sizeof(float)));
      // Recycled buffers hold stale values; fresh ones are zero-initialized
      // by the vector, so only this path re-zeroes (and only when asked).
      if (zero_fill) std::fill(s->data.begin(), s->data.end(), 0.0f);
      return std::shared_ptr<Storage>(s, &RecycleStorage);
    }
    ++t_arena_miss;
    t_arena_fresh_bytes += n * static_cast<int64_t>(sizeof(float));
    CIT_OBS_COUNT("arena.misses", 1);
    CIT_OBS_COUNT("arena.fresh_bytes",
                  n * static_cast<int64_t>(sizeof(float)));
    // Fresh vectors are already zero-initialized; attach the recycling
    // deleter so this Storage enters the freelist when it dies.
    return std::shared_ptr<Storage>(new Storage(n), &RecycleStorage);
  }
  (void)zero_fill;  // fresh vectors are zero-initialized
  return std::make_shared<Storage>(n);
}

}  // namespace detail

ArenaScope::ArenaScope(bool enable) : enabled_(enable) {
  if (enabled_) ++detail::t_arena_depth;
}

ArenaScope::~ArenaScope() {
  if (enabled_) --detail::t_arena_depth;
}

int64_t ArenaReuseCount() { return detail::t_arena_reuse; }

ArenaStats ArenaStatsNow() {
  ArenaStats s;
  s.hits = detail::t_arena_reuse;
  s.misses = detail::t_arena_miss;
  s.reused_bytes = detail::t_arena_reused_bytes;
  s.fresh_bytes = detail::t_arena_fresh_bytes;
  return s;
}

int64_t Tensor::NumelOf(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    CIT_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)) {
  numel_ = NumelOf(shape_);
  storage_ = detail::NewStorage(numel_, /*zero_fill=*/true);
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)) {
  numel_ = NumelOf(shape_);
  CIT_CHECK_EQ(numel_, static_cast<int64_t>(data.size()));
  storage_ = std::make_shared<detail::Storage>(std::move(data));
}

Tensor::Tensor(std::shared_ptr<detail::Storage> storage, int64_t offset,
               Shape shape)
    : storage_(std::move(storage)), offset_(offset), shape_(std::move(shape)) {
  numel_ = NumelOf(shape_);
  CIT_CHECK_LE(offset_ + numel_,
               static_cast<int64_t>(storage_->data.size()));
}

void Tensor::EnsureUnique() {
  if (!storage_) return;
  // Sole owner: in-place writes cannot be observed elsewhere, even for a
  // view into a larger buffer (the parent handle is gone).
  if (storage_.use_count() == 1) return;
  // Every element is overwritten by the copy below, so skip the zero-fill.
  auto fresh = detail::NewStorage(numel_, /*zero_fill=*/false);
  kernels::Copy(storage_->data.data() + offset_, fresh->data.data(), numel_);
  storage_ = std::move(fresh);
  offset_ = 0;
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t(Shape{1});
  t.data()[0] = value;
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel_; ++i) {
    p[i] = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::Uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel_; ++i) {
    p[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t(Shape{n});
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(i);
  return t;
}

int64_t Tensor::dim(int64_t i) const {
  if (i < 0) i += ndim();
  CIT_CHECK(i >= 0 && i < ndim());
  return shape_[i];
}

float& Tensor::operator[](int64_t flat_index) {
  CIT_CHECK(flat_index >= 0 && flat_index < numel_);
  return data()[flat_index];
}

float Tensor::operator[](int64_t flat_index) const {
  CIT_CHECK(flat_index >= 0 && flat_index < numel_);
  return data()[flat_index];
}

int64_t Tensor::FlatIndex(std::initializer_list<int64_t> idx) const {
  CIT_CHECK_EQ(static_cast<int64_t>(idx.size()), ndim());
  int64_t flat = 0;
  int64_t axis = 0;
  for (int64_t i : idx) {
    CIT_CHECK(i >= 0 && i < shape_[axis]);
    flat = flat * shape_[axis] + i;
    ++axis;
  }
  return flat;
}

float& Tensor::At(std::initializer_list<int64_t> idx) {
  return data()[FlatIndex(idx)];
}

float Tensor::At(std::initializer_list<int64_t> idx) const {
  return data()[FlatIndex(idx)];
}

float Tensor::Item() const {
  CIT_CHECK_EQ(numel_, 1);
  return data()[0];
}

Tensor Tensor::Reshape(Shape new_shape) const {
  CIT_CHECK_EQ(NumelOf(new_shape), numel_);
  return Tensor(storage_, offset_, std::move(new_shape));
}

Tensor Tensor::Transpose2D() const {
  CIT_CHECK_EQ(ndim(), 2);
  Tensor out(Shape{shape_[1], shape_[0]});
  kernels::Transpose(data(), out.data(), shape_[0], shape_[1]);
  return out;
}

Tensor Tensor::Slice(int64_t axis, int64_t start, int64_t len) const {
  if (axis < 0) axis += ndim();
  CIT_CHECK(axis >= 0 && axis < ndim());
  CIT_CHECK(start >= 0 && len >= 0 && start + len <= shape_[axis]);
  Shape out_shape = shape_;
  out_shape[axis] = len;
  // The tensor decomposes as [outer, shape[axis], inner].
  int64_t outer = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= shape_[i];
  int64_t inner = 1;
  for (int64_t i = axis + 1; i < ndim(); ++i) inner *= shape_[i];
  if (outer == 1) {
    // Contiguous region: O(1) shared view.
    return Tensor(storage_, offset_ + start * inner, std::move(out_shape));
  }
  Tensor out(out_shape);
  const int64_t in_step = shape_[axis] * inner;
  const int64_t out_step = len * inner;
  const float* base = data();
  float* dst_base = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    kernels::Copy(base + o * in_step + start * inner, dst_base + o * out_step,
                  len * inner);
  }
  return out;
}

namespace {

void CheckSameShape(const Tensor& a, const Tensor& b) {
  CIT_CHECK_MSG(a.shape() == b.shape(), "tensor shape mismatch");
}

}  // namespace

Tensor Tensor::Add(const Tensor& other) const {
  CheckSameShape(*this, other);
  Tensor out(shape_);
  kernels::Add(data(), other.data(), out.data(), numel_);
  return out;
}

Tensor Tensor::Sub(const Tensor& other) const {
  CheckSameShape(*this, other);
  Tensor out(shape_);
  kernels::Sub(data(), other.data(), out.data(), numel_);
  return out;
}

Tensor Tensor::Mul(const Tensor& other) const {
  CheckSameShape(*this, other);
  Tensor out(shape_);
  kernels::Mul(data(), other.data(), out.data(), numel_);
  return out;
}

Tensor Tensor::Div(const Tensor& other) const {
  CheckSameShape(*this, other);
  Tensor out(shape_);
  kernels::Div(data(), other.data(), out.data(), numel_);
  return out;
}

Tensor Tensor::AddScalar(float v) const {
  Tensor out(shape_);
  kernels::AddScalar(data(), v, out.data(), numel_);
  return out;
}

Tensor Tensor::MulScalar(float v) const {
  Tensor out(shape_);
  kernels::MulScalar(data(), v, out.data(), numel_);
  return out;
}

void Tensor::AddInPlace(const Tensor& other) {
  CheckSameShape(*this, other);
  kernels::AddInto(data(), other.data(), numel_);
}

void Tensor::SubInPlace(const Tensor& other) {
  CheckSameShape(*this, other);
  kernels::SubInto(data(), other.data(), numel_);
}

void Tensor::MulScalarInPlace(float v) {
  kernels::ScaleInto(data(), v, numel_);
}

void Tensor::Fill(float v) {
  if (storage_ && storage_.use_count() > 1) {
    // Every element is overwritten: detach without copying the old values.
    storage_ = detail::NewStorage(numel_, /*zero_fill=*/false);
    offset_ = 0;
  }
  if (storage_) kernels::Fill(data(), v, numel_);
}

float Tensor::Sum() const {
  return static_cast<float>(kernels::Sum(data(), numel_));
}

float Tensor::Mean() const {
  CIT_CHECK_GT(numel_, 0);
  return Sum() / static_cast<float>(numel_);
}

float Tensor::Max() const {
  CIT_CHECK_GT(numel_, 0);
  const float* p = data();
  return *std::max_element(p, p + numel_);
}

float Tensor::Min() const {
  CIT_CHECK_GT(numel_, 0);
  const float* p = data();
  return *std::min_element(p, p + numel_);
}

Tensor Tensor::SumAxis(int64_t axis) const {
  if (axis < 0) axis += ndim();
  CIT_CHECK(axis >= 0 && axis < ndim());
  Shape out_shape;
  for (int64_t i = 0; i < ndim(); ++i) {
    if (i != axis) out_shape.push_back(shape_[i]);
  }
  if (out_shape.empty()) out_shape.push_back(1);
  Tensor out(out_shape);
  int64_t outer = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= shape_[i];
  int64_t inner = 1;
  for (int64_t i = axis + 1; i < ndim(); ++i) inner *= shape_[i];
  kernels::SumAxis(data(), out.data(), outer, shape_[axis], inner);
  return out;
}

Tensor Tensor::MeanAxis(int64_t axis) const {
  if (axis < 0) axis += ndim();
  Tensor out = SumAxis(axis);
  out.MulScalarInPlace(1.0f / static_cast<float>(shape_[axis]));
  return out;
}

Tensor Tensor::MatMul(const Tensor& a, const Tensor& b) {
  CIT_CHECK_EQ(a.ndim(), 2);
  CIT_CHECK_EQ(b.ndim(), 2);
  const int64_t p = a.shape_[0];
  const int64_t q = a.shape_[1];
  CIT_CHECK_EQ(b.shape_[0], q);
  const int64_t r = b.shape_[1];
  Tensor out(Shape{p, r});
  kernels::MatMul(a.data(), b.data(), out.data(), p, q, r);
  return out;
}

std::string Tensor::ToString(int64_t max_items) const {
  std::ostringstream os;
  os << "Tensor[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ",";
    os << shape_[i];
  }
  os << "]{";
  const int64_t n = std::min<int64_t>(numel_, max_items);
  const float* p = data();
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << p[i];
  }
  if (numel_ > n) os << ", ...";
  os << "}";
  return os.str();
}

bool TensorEquals(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (pa[i] != pb[i]) return false;
  }
  return true;
}

bool TensorAllClose(const Tensor& a, const Tensor& b, float atol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(pa[i] - pb[i]) > atol) return false;
  }
  return true;
}

}  // namespace cit::math
