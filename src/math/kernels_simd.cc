// Explicit-SIMD kernel backend: an FMA register-tiled GEMM microkernel and
// vectorized elementwise sweeps, one implementation per compiled ISA
// (AVX-512, AVX2+FMA, NEON — see the detection block in math/simd.h). The
// public kernels:: API dispatches here when Backend::kSimd is active;
// everything in this TU is serial over its range, with parallel chunking
// done by the caller so both backends see identical chunk boundaries.
//
// Numeric ground rules (they are what keeps the dispatch seam honest):
//  - Non-FMA arms (Add/Sub/Mul/Div/AddScalar/MulScalar, the exact
//    FusedElemwise chains) use one IEEE operation per element, so the
//    vector lanes and the scalar tail produce bit-identical results — and
//    bit-identical to the scalar backend.
//  - FMA arms (GemmTile, Axpy) fuse the multiply-add. Scalar tails use
//    std::fmaf, the same single-rounding operation as the vector lanes, so
//    a chunk boundary moving an element between vector body and tail can
//    never change its value (thread-count invariance), while values differ
//    from the scalar backend by at most one rounding per fma.
//  - FusedElemwise chains containing a libm op (exp/log/tanh/sigmoid) are
//    rejected by FusedChainExact and stay on the scalar ElemApply sweep:
//    a vector approximation would break the fused == unfused bitwise
//    identity that plan fusion (math/plan.cc) is tested against.
#include "math/simd.h"

#include <cmath>
#include <cstring>

#if defined(CIT_SIMD_AVX512) || defined(CIT_SIMD_AVX2)
#include <immintrin.h>
#elif defined(CIT_SIMD_NEON)
#include <arm_neon.h>
#endif

// GCC PR 105593: min/max/sqrt AVX-512 intrinsics expand through
// _mm512_undefined_ps and trip a spurious -Wmaybe-uninitialized under
// -Wall. The pass-through operand is by definition unread; silence the
// false positive for this TU only.
#if defined(CIT_SIMD_AVX512) && defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace cit::math::kernels::simd {

#if defined(CIT_SIMD_AVX512) || defined(CIT_SIMD_AVX2) || \
    defined(CIT_SIMD_NEON)

bool Available() { return true; }

// ---- Minimal vector wrapper (one width per ISA) ----------------------------
// Min/Max follow the x86 min_ps/max_ps convention the scalar kernels'
// std::min/std::max expressions reduce to: Max(a, b) = a > b ? a : b and
// Min(a, b) = a < b ? a : b, returning b when the compare is unordered.

#if defined(CIT_SIMD_AVX512)

const char* IsaName() { return "avx512"; }
using VF = __m512;
constexpr int64_t kLanes = 16;
inline VF VLoad(const float* p) { return _mm512_loadu_ps(p); }
inline void VStore(float* p, VF v) { _mm512_storeu_ps(p, v); }
inline VF VSet1(float v) { return _mm512_set1_ps(v); }
inline VF VAdd(VF a, VF b) { return _mm512_add_ps(a, b); }
inline VF VSub(VF a, VF b) { return _mm512_sub_ps(a, b); }
inline VF VMul(VF a, VF b) { return _mm512_mul_ps(a, b); }
inline VF VDiv(VF a, VF b) { return _mm512_div_ps(a, b); }
inline VF VMin(VF a, VF b) { return _mm512_min_ps(a, b); }
inline VF VMax(VF a, VF b) { return _mm512_max_ps(a, b); }
inline VF VSqrt(VF a) { return _mm512_sqrt_ps(a); }
inline VF VAbs(VF a) {
  // Explicit sign-mask clear: same result as _mm512_abs_ps, but avoids the
  // _mm512_undefined_ps-based intrinsic GCC flags under -Wall.
  return _mm512_castsi512_ps(_mm512_and_si512(
      _mm512_castps_si512(a), _mm512_set1_epi32(0x7fffffff)));
}
inline VF VFma(VF a, VF b, VF c) { return _mm512_fmadd_ps(a, b, c); }

#elif defined(CIT_SIMD_AVX2)

const char* IsaName() { return "avx2"; }
using VF = __m256;
constexpr int64_t kLanes = 8;
inline VF VLoad(const float* p) { return _mm256_loadu_ps(p); }
inline void VStore(float* p, VF v) { _mm256_storeu_ps(p, v); }
inline VF VSet1(float v) { return _mm256_set1_ps(v); }
inline VF VAdd(VF a, VF b) { return _mm256_add_ps(a, b); }
inline VF VSub(VF a, VF b) { return _mm256_sub_ps(a, b); }
inline VF VMul(VF a, VF b) { return _mm256_mul_ps(a, b); }
inline VF VDiv(VF a, VF b) { return _mm256_div_ps(a, b); }
inline VF VMin(VF a, VF b) { return _mm256_min_ps(a, b); }
inline VF VMax(VF a, VF b) { return _mm256_max_ps(a, b); }
inline VF VSqrt(VF a) { return _mm256_sqrt_ps(a); }
inline VF VAbs(VF a) {
  const VF mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  return _mm256_and_ps(a, mask);
}
inline VF VFma(VF a, VF b, VF c) { return _mm256_fmadd_ps(a, b, c); }

#else  // CIT_SIMD_NEON

const char* IsaName() { return "neon"; }
using VF = float32x4_t;
constexpr int64_t kLanes = 4;
inline VF VLoad(const float* p) { return vld1q_f32(p); }
inline void VStore(float* p, VF v) { vst1q_f32(p, v); }
inline VF VSet1(float v) { return vdupq_n_f32(v); }
inline VF VAdd(VF a, VF b) { return vaddq_f32(a, b); }
inline VF VSub(VF a, VF b) { return vsubq_f32(a, b); }
inline VF VMul(VF a, VF b) { return vmulq_f32(a, b); }
inline VF VDiv(VF a, VF b) { return vdivq_f32(a, b); }
inline VF VMin(VF a, VF b) { return vminq_f32(a, b); }
inline VF VMax(VF a, VF b) { return vmaxq_f32(a, b); }
inline VF VSqrt(VF a) { return vsqrtq_f32(a); }
inline VF VAbs(VF a) { return vabsq_f32(a); }
inline VF VFma(VF a, VF b, VF c) { return vfmaq_f32(c, a, b); }

#endif

// ---- GEMM microkernel ------------------------------------------------------
// kGemmNr (32) columns = 32/kLanes vectors per row. MR is a template
// parameter so edge tiles (mr < kGemmMr) run the *same* per-row FMA chain
// as full tiles — a row's result never depends on which tile shape covered
// it, which is what makes the row partition (and hence the thread count)
// invisible in the output.
namespace {

constexpr int kRowVecs = static_cast<int>(kGemmNr / kLanes);

template <int MR>
void GemmTileImpl(const float* a, int64_t lda, const float* pack, int64_t kc,
                  float* c, int64_t ldc, int64_t nr) {
  // AVX-512 holds the whole 32-column accumulator block (2 vectors/row) in
  // registers; AVX2 and NEON rows take 4 and 8 vectors, so they are split
  // into two 16-column half-tiles to stay within the register file. The
  // half split only changes *which* registers hold a lane, never the
  // ascending-k fma chain that computes it.
  constexpr int kHalfVecs = kRowVecs >= 4 ? kRowVecs / 2 : kRowVecs;
  constexpr int64_t kHalfCols = kHalfVecs * kLanes;
  for (int64_t jh = 0; jh < kGemmNr; jh += kHalfCols) {
    if (nr <= jh) break;  // fully past the valid columns: nothing to add
    VF acc[MR][kHalfVecs];
    for (int i = 0; i < MR; ++i) {
      for (int v = 0; v < kHalfVecs; ++v) acc[i][v] = VSet1(0.0f);
    }
    for (int64_t k = 0; k < kc; ++k) {
      VF b[kHalfVecs];
      const float* bp = pack + k * kGemmNr + jh;
      for (int v = 0; v < kHalfVecs; ++v) b[v] = VLoad(bp + v * kLanes);
      for (int i = 0; i < MR; ++i) {
        const VF av = VSet1(a[i * lda + k]);
        for (int v = 0; v < kHalfVecs; ++v) {
          acc[i][v] = VFma(av, b[v], acc[i][v]);
        }
      }
    }
    const int64_t cols = nr - jh;  // valid columns in this half-tile
    if (cols >= kHalfCols) {
      for (int i = 0; i < MR; ++i) {
        float* cr = c + i * ldc + jh;
        for (int v = 0; v < kHalfVecs; ++v) {
          float* p = cr + v * kLanes;
          VStore(p, VAdd(VLoad(p), acc[i][v]));
        }
      }
    } else if (cols > 0) {
      alignas(64) float tmp[kHalfCols];
      for (int i = 0; i < MR; ++i) {
        for (int v = 0; v < kHalfVecs; ++v) {
          VStore(tmp + v * kLanes, acc[i][v]);
        }
        float* cr = c + i * ldc + jh;
        for (int64_t j = 0; j < cols; ++j) cr[j] += tmp[j];
      }
    }
  }
}

}  // namespace

void GemmTile(const float* a, int64_t lda, const float* pack, int64_t kc,
              float* c, int64_t ldc, int64_t mr, int64_t nr) {
  switch (mr) {
    case 4: GemmTileImpl<4>(a, lda, pack, kc, c, ldc, nr); break;
    case 3: GemmTileImpl<3>(a, lda, pack, kc, c, ldc, nr); break;
    case 2: GemmTileImpl<2>(a, lda, pack, kc, c, ldc, nr); break;
    case 1: GemmTileImpl<1>(a, lda, pack, kc, c, ldc, nr); break;
    default: break;  // mr in [1, kGemmMr] by construction
  }
}

// ---- Elementwise sweeps ----------------------------------------------------

namespace {

// Shared skeleton: vector body over whole blocks, scalar functor tail. The
// scalar functor must be bit-identical to one vector lane (see file
// comment), so the body/tail split is value-invisible.
template <typename VecF, typename ScalF>
inline void Sweep(float* out, int64_t n, VecF vec, ScalF scal) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) vec(i);
  for (; i < n; ++i) out[i] = scal(i);
}

}  // namespace

void Add(const float* a, const float* b, float* out, int64_t n) {
  Sweep(out, n,
        [&](int64_t i) { VStore(out + i, VAdd(VLoad(a + i), VLoad(b + i))); },
        [&](int64_t i) { return a[i] + b[i]; });
}

void Sub(const float* a, const float* b, float* out, int64_t n) {
  Sweep(out, n,
        [&](int64_t i) { VStore(out + i, VSub(VLoad(a + i), VLoad(b + i))); },
        [&](int64_t i) { return a[i] - b[i]; });
}

void Mul(const float* a, const float* b, float* out, int64_t n) {
  Sweep(out, n,
        [&](int64_t i) { VStore(out + i, VMul(VLoad(a + i), VLoad(b + i))); },
        [&](int64_t i) { return a[i] * b[i]; });
}

void Div(const float* a, const float* b, float* out, int64_t n) {
  Sweep(out, n,
        [&](int64_t i) { VStore(out + i, VDiv(VLoad(a + i), VLoad(b + i))); },
        [&](int64_t i) { return a[i] / b[i]; });
}

void AddScalar(const float* a, float v, float* out, int64_t n) {
  const VF vv = VSet1(v);
  Sweep(out, n, [&](int64_t i) { VStore(out + i, VAdd(VLoad(a + i), vv)); },
        [&](int64_t i) { return a[i] + v; });
}

void MulScalar(const float* a, float v, float* out, int64_t n) {
  const VF vv = VSet1(v);
  Sweep(out, n, [&](int64_t i) { VStore(out + i, VMul(VLoad(a + i), vv)); },
        [&](int64_t i) { return a[i] * v; });
}

void Axpy(float alpha, const float* x, float* y, int64_t n) {
  const VF va = VSet1(alpha);
  Sweep(y, n,
        [&](int64_t i) { VStore(y + i, VFma(va, VLoad(x + i), VLoad(y + i))); },
        [&](int64_t i) { return std::fmaf(alpha, x[i], y[i]); });
}

// ---- Fused elementwise -----------------------------------------------------

bool FusedChainExact(const ElemOp* ops, int count) {
  for (int k = 0; k < count; ++k) {
    switch (ops[k].kind) {
      case ElemOpKind::kRelu:
      case ElemOpKind::kSqrt:
      case ElemOpKind::kSquare:
      case ElemOpKind::kAbs:
      case ElemOpKind::kClamp:
      case ElemOpKind::kAddScalar:
      case ElemOpKind::kMulScalar:
        continue;
      default:
        return false;  // libm op: must stay on the scalar ElemApply sweep
    }
  }
  return true;
}

namespace {

// One vector application of an exact op. Operand order below mirrors the
// scalar formulas in ElemApply exactly, including NaN and signed-zero
// behavior of the min/max-based ops:
//   relu:  x > 0 ? x : 0        == Max(x, 0)
//   clamp: min(hi, max(lo, x))  == Min(hi, Max(x, lo))
// (std::max(lo, x) returns lo on ties and NaN, as does Max(x, lo); the
// outer std::min(hi, t) returns t on ties, as does Min(hi, t).)
inline VF ElemApplyVec(const ElemOp& op, VF x) {
  switch (op.kind) {
    case ElemOpKind::kRelu: return VMax(x, VSet1(0.0f));
    case ElemOpKind::kSqrt: return VSqrt(x);
    case ElemOpKind::kSquare: return VMul(x, x);
    case ElemOpKind::kAbs: return VAbs(x);
    case ElemOpKind::kClamp:
      return VMin(VSet1(op.p1), VMax(x, VSet1(op.p0)));
    case ElemOpKind::kAddScalar: return VAdd(x, VSet1(op.p0));
    case ElemOpKind::kMulScalar: return VMul(x, VSet1(op.p0));
    default: return x;  // excluded by FusedChainExact
  }
}

}  // namespace

void FusedElemwise(const float* in, float* out, int64_t n, const ElemOp* ops,
                   int count) {
  Sweep(out, n,
        [&](int64_t i) {
          VF x = VLoad(in + i);
          for (int k = 0; k < count; ++k) x = ElemApplyVec(ops[k], x);
          VStore(out + i, x);
        },
        [&](int64_t i) {
          float x = in[i];
          for (int k = 0; k < count; ++k) x = ElemApply(ops[k], x);
          return x;
        });
}

#else  // no ISA path compiled: correct scalar fallbacks, never dispatched to

bool Available() { return false; }
const char* IsaName() { return "none"; }

void GemmTile(const float* a, int64_t lda, const float* pack, int64_t kc,
              float* c, int64_t ldc, int64_t mr, int64_t nr) {
  for (int64_t i = 0; i < mr; ++i) {
    float* cr = c + i * ldc;
    const float* ar = a + i * lda;
    for (int64_t j = 0; j < nr; ++j) {
      float acc = 0.0f;
      for (int64_t k = 0; k < kc; ++k) {
        acc = std::fmaf(ar[k], pack[k * kGemmNr + j], acc);
      }
      cr[j] += acc;
    }
  }
}

void Add(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}
void Sub(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}
void Mul(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}
void Div(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] / b[i];
}
void AddScalar(const float* a, float v, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] + v;
}
void MulScalar(const float* a, float v, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * v;
}
void Axpy(float alpha, const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::fmaf(alpha, x[i], y[i]);
}
bool FusedChainExact(const ElemOp*, int) { return false; }
void FusedElemwise(const float* in, float* out, int64_t n, const ElemOp* ops,
                   int count) {
  for (int64_t i = 0; i < n; ++i) {
    float x = in[i];
    for (int k = 0; k < count; ++k) x = ElemApply(ops[k], x);
    out[i] = x;
  }
}

#endif

}  // namespace cit::math::kernels::simd
