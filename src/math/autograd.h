#ifndef CIT_MATH_AUTOGRAD_H_
#define CIT_MATH_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "math/tensor.h"

namespace cit::plan::detail {
// Trace-recorder hooks, defined in math/plan.cc. While a CompiledFn is
// recording on a thread, MakeOp/MakeOpVec ping NoteOp() for every op
// executed so the recorder can verify it saw a matching Record* call for
// each one — an op added without a recording hook then poisons the plan
// (permanent interpreted fallback) instead of replaying garbage.
extern thread_local bool t_recording;
void NoteOp();
}  // namespace cit::plan::detail

namespace cit::ag {

using math::Shape;
using math::Tensor;

// ---- Grad mode -------------------------------------------------------------
// Graph construction is controlled by a per-thread flag: while a NoGradGuard
// is live on a thread, every op returns a node-free constant Var carrying
// only its value tensor — no Node, no parents, no backward closure — so any
// module stack becomes graph-free under the guard with zero per-module
// changes. Forward numerics are untouched; the mode is purely about what is
// *retained*.

namespace detail {
inline bool& GradEnabledFlag() {
  thread_local bool enabled = true;
  return enabled;
}
}  // namespace detail

// True when ops on the calling thread build the backward graph (default).
inline bool GradEnabled() { return detail::GradEnabledFlag(); }

// Process-wide kill switch for the no-grad fast path (also CIT_NOGRAD=0 in
// the environment): when disallowed, NoGradGuard is a no-op and every
// forward builds the full graph. Exists so benches and A/B checks can
// drive the graph path through unchanged call sites.
void SetNoGradAllowed(bool allowed);
bool NoGradAllowed();

// RAII: disables graph construction on the current thread and opens the
// per-thread tensor-buffer arena (math::ArenaScope) for the same extent, so
// repeated inference forwards recycle their temporaries. Purely a
// performance mode — values are bitwise identical with or without the
// guard. Nests; the previous mode is restored on destruction. Thread-local
// by design: rollout workers building training graphs are unaffected by a
// guard on another thread.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
  math::ArenaScope arena_;
};

// One vertex of the dynamically-built computation DAG. Nodes are created by
// the op functions below and traversed in reverse topological order by
// Var::Backward(). The backward closure holds raw pointers to parent nodes;
// this is safe because `parents` keeps them alive for the node's lifetime,
// and it avoids shared_ptr reference cycles (edges only point from output
// to inputs).
struct Node {
  Tensor value;
  Tensor grad;            // allocated lazily on first accumulation
  bool requires_grad = false;
  bool has_grad = false;
  // Bumped by every Var::mutable_value() — the single funnel for parameter
  // mutation (optimizer steps, LoadParameters, checkpoint restore). Compiled
  // execution plans snapshot the version of each bound parameter and refuse
  // to replay against a mutated one (math/plan.cc re-records instead).
  uint64_t version = 0;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward_fn;  // nullptr for leaves
};

// Accumulates `g` into `n->grad` if the node participates in gradients.
void AccumGrad(Node* n, const Tensor& g);

// A handle to a DAG node: the user-facing autodiff value. Copying a Var
// copies the handle, not the tensor.
class Var {
 public:
  Var() = default;
  explicit Var(Tensor value, bool requires_grad = false);

  // A trainable leaf (requires_grad = true).
  static Var Param(Tensor value);
  // A non-differentiable constant input.
  static Var Constant(Tensor value);

  bool defined() const { return node_ != nullptr || is_const_; }
  const Tensor& value() const;
  Tensor& mutable_value();
  const Tensor& grad() const;
  // Mutable access to the accumulated gradient (requires has_grad()). Used
  // by the optimizer to rescale gradients in place; going through the
  // tensor's mutable path keeps copy-on-write storage sharing honest.
  Tensor& mutable_grad();
  bool has_grad() const { return node_ && node_->has_grad; }
  bool requires_grad() const { return node_ && node_->requires_grad; }

  const Shape& shape() const { return value().shape(); }
  int64_t numel() const { return value().numel(); }

  // Clears this node's accumulated gradient (used on parameters between
  // optimizer steps).
  void ZeroGrad();

  // Runs reverse-mode differentiation from this (scalar) output. Gradients
  // accumulate into every reachable node with requires_grad.
  void Backward();

  // A new constant leaf sharing this node's current value.
  Var Detach() const;

  // Null for node-free constants (ops evaluated under NoGradGuard).
  std::shared_ptr<Node> node() const { return node_; }

 private:
  explicit Var(std::shared_ptr<Node> node) : node_(std::move(node)) {}
  friend Var MakeOpImpl(Tensor value, std::vector<Var> inputs,
                        std::function<void(Node&)> backward_fn);

  std::shared_ptr<Node> node_;
  // Node-free representation: ops evaluated (and constants created) under
  // NoGradGuard carry only the value tensor.
  Tensor const_value_;
  bool is_const_ = false;
};

// Graph-building slow path of MakeOp (grad mode only).
Var MakeOpImpl(Tensor value, std::vector<Var> inputs,
               std::function<void(Node&)> backward_fn);

namespace detail {
// Non-owning input handle for MakeOp's braced input lists. A braced list
// of VarRefs puts plain pointers on the stack, so the no-grad fast path
// never copies a Var (a constant Var copy allocates a fresh shape vector)
// and never heap-allocates an input container.
struct VarRef {
  VarRef(const Var& v) : ptr(&v) {}  // NOLINT(runtime/explicit)
  const Var* ptr;
};
}  // namespace detail

// Builds an op node: output `value`, edges to `inputs`, and a backward
// closure. requires_grad is inherited from the inputs. Under NoGradGuard
// the inputs and closure are discarded and a node-free constant is
// returned: the closure is never converted to std::function and the
// inputs are never copied, so the no-grad path pays no type-erasure or
// container allocation.
template <typename BackwardFn>
Var MakeOp(Tensor value, std::initializer_list<detail::VarRef> inputs,
           BackwardFn&& backward_fn) {
  if (plan::detail::t_recording) plan::detail::NoteOp();
  if (!GradEnabled()) return Var::Constant(std::move(value));
  std::vector<Var> ins;
  ins.reserve(inputs.size());
  for (const detail::VarRef& r : inputs) ins.push_back(*r.ptr);
  return MakeOpImpl(
      std::move(value), std::move(ins),
      std::function<void(Node&)>(std::forward<BackwardFn>(backward_fn)));
}

// Variant for ops whose input count is only known at runtime (Concat,
// optional-bias Conv): takes the materialized vector. Call sites on hot
// forward paths should prefer the braced-list overload.
template <typename BackwardFn>
Var MakeOpVec(Tensor value, std::vector<Var> inputs,
              BackwardFn&& backward_fn) {
  if (plan::detail::t_recording) plan::detail::NoteOp();
  if (!GradEnabled()) return Var::Constant(std::move(value));
  return MakeOpImpl(
      std::move(value), std::move(inputs),
      std::function<void(Node&)>(std::forward<BackwardFn>(backward_fn)));
}

// ---- Arithmetic ------------------------------------------------------------
// Add/Sub/Mul/Div require equal shapes, with two broadcast conveniences:
// `b` may be a single-element tensor (scalar broadcast), or, for Add only,
// a 1-D tensor matching a's last dimension (bias broadcast).
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
Var Div(const Var& a, const Var& b);
Var Neg(const Var& a);
Var AddScalar(const Var& a, float v);
Var MulScalar(const Var& a, float v);

// Elementwise min/max of two same-shape tensors (subgradient: ties go to a).
Var Min(const Var& a, const Var& b);
Var Max(const Var& a, const Var& b);
// Clamp to [lo, hi]; gradient is zero outside the interval.
Var Clamp(const Var& a, float lo, float hi);

// ---- Unary -----------------------------------------------------------------
Var Exp(const Var& a);
Var Log(const Var& a);   // caller guarantees positive input
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);
Var Relu(const Var& a);
Var Sqrt(const Var& a);
Var Square(const Var& a);
Var Abs(const Var& a);

// ---- Reductions ------------------------------------------------------------
Var Sum(const Var& a);                    // -> shape [1]
Var Mean(const Var& a);                   // -> shape [1]
Var SumAxis(const Var& a, int64_t axis);  // axis removed
Var MeanAxis(const Var& a, int64_t axis);

// ---- Linear algebra --------------------------------------------------------
Var MatMul(const Var& a, const Var& b);  // [p,q] x [q,r] -> [p,r]
Var Transpose(const Var& a);             // 2-D transpose

// ---- Shape -----------------------------------------------------------------
Var Reshape(const Var& a, Shape shape);
Var Permute(const Var& a, std::vector<int64_t> perm);
Var Concat(const std::vector<Var>& parts, int64_t axis);
Var Slice(const Var& a, int64_t axis, int64_t start, int64_t len);

// ---- Softmax family (over the last axis) -----------------------------------
Var Softmax(const Var& a);
Var LogSoftmax(const Var& a);

// ---- Convolution -----------------------------------------------------------
// Causal dilated 1-D convolution: x [B, Cin, L], w [Cout, Cin, K],
// b [Cout] (may be undefined for no bias) -> [B, Cout, L]. The input is
// implicitly left-padded with (K-1)*dilation zeros so output length equals
// input length and position t only sees inputs <= t (the TCN property).
Var CausalConv1d(const Var& x, const Var& w, const Var& b, int64_t dilation);

}  // namespace cit::ag

#endif  // CIT_MATH_AUTOGRAD_H_
