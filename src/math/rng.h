#ifndef CIT_MATH_RNG_H_
#define CIT_MATH_RNG_H_

#include <cstdint>
#include <vector>

namespace cit::math {

// Deterministic pseudo-random generator (xoshiro256++ seeded via SplitMix64).
// Every stochastic component in the library takes an explicit seed so that
// experiments are exactly reproducible; std::mt19937 is avoided because its
// distributions are not portable across standard-library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Raw 64 random bits.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double Uniform();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  // Standard normal via Box-Muller (second draw cached).
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Gamma(shape, 1) via Marsaglia-Tsang; shape > 0.
  double Gamma(double shape);

  // A point uniform (alpha=1) or concentrated on the probability simplex.
  // Returns k non-negative entries summing to 1.
  std::vector<double> Dirichlet(int k, double alpha);

  // Derives an independent stream for a sub-component (e.g. per policy).
  Rng Fork();

  // Counter-split stream derivation: a generator that depends only on
  // (seed, stream, substream), not on any sequential draw order. Parallel
  // rollout collection uses Split(config.seed, step, slot) so every rollout
  // slot owns an RNG stream that is identical no matter how many threads
  // execute the collection or in which order slots run.
  static Rng Split(uint64_t seed, uint64_t stream, uint64_t substream);

  // Full generator state, exposed so trainers with a sequential RNG (DDPG)
  // can checkpoint mid-run and resume bitwise-identically.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  State SaveState() const;
  void RestoreState(const State& state);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace cit::math

#endif  // CIT_MATH_RNG_H_
