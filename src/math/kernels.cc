#include "math/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/env_config.h"
#include "math/simd.h"
#include "obs/telemetry.h"

namespace cit::math::kernels {
namespace {

ThreadPool& Pool() { return ThreadPool::Global(); }

// ---- Backend selection -----------------------------------------------------

std::atomic<Backend>& BackendSlot() {
  static std::atomic<Backend> slot = [] {
    switch (GetKernelChoice()) {
      case KernelChoice::kScalar: return Backend::kScalar;
      case KernelChoice::kSimd:
      case KernelChoice::kAuto:
        break;
    }
    return simd::Available() ? Backend::kSimd : Backend::kScalar;
  }();
  return slot;
}

inline bool UseSimd() {
  return BackendSlot().load(std::memory_order_relaxed) == Backend::kSimd;
}

// Telemetry for one GEMM-shaped call: multiply-add FLOPs plus the logical
// load/store traffic of the kernel's loop structure (what the loops
// address, not what survives the cache hierarchy). Counter-only on purpose
// — these calls are too frequent and too small to afford clock reads.
//
// For the blocked MatMul, with nJ = ceil(r/NR) column panels and
// nK = ceil(q/KC) depth blocks, one call:
//   - zero-fills C once                              (p*r stores),
//   - reads each B element once while packing        (q*r loads) and
//     writes the zero-padded panels                  (nJ*q*NR stores),
//   - streams A once per column panel               (nJ*p*q loads),
//   - read-modify-writes each C tile once per depth
//     block during accumulator write-back           (2*nK*p*r).
// The formula is the canonical single-chunk schedule: parallel runs
// re-pack B once per row chunk, so true packing traffic is (#chunks)x the
// q*r + nJ*q*NR terms, but counting the schedule-independent figure keeps
// the counter invariant across thread counts (register-tile re-reads of
// the L1-resident panel are likewise not counted). Pinned by
// tests/test_kernels.cc KernelObs.GemmBytesFormula.
inline void CountGemmBlocked([[maybe_unused]] int64_t p,
                             [[maybe_unused]] int64_t q,
                             [[maybe_unused]] int64_t r) {
  CIT_OBS_COUNT("kernels.gemm_calls", 1);
  CIT_OBS_COUNT("kernels.gemm_flops", 2 * p * q * r);
#ifndef CIT_OBS_DISABLED
  const int64_t nj = (r + kGemmNr - 1) / kGemmNr;
  const int64_t nk = (q + kGemmKc - 1) / kGemmKc;
  CIT_OBS_COUNT("kernels.gemm_bytes",
                int64_t{4} * (p * r + q * r + nj * q * kGemmNr +
                              nj * p * q + 2 * nk * p * r));
#endif
}

// MatMulTransB streams all of bT once per output row (p*q*r loads), reads
// each a row once per 4-column dot-product group plus once per tail column
// (p*q*nG loads, nG = floor(r/4) + r%4), and stores C once (p*r).
inline void CountGemmTransB([[maybe_unused]] int64_t p,
                            [[maybe_unused]] int64_t q,
                            [[maybe_unused]] int64_t r) {
  CIT_OBS_COUNT("kernels.gemm_calls", 1);
  CIT_OBS_COUNT("kernels.gemm_flops", 2 * p * q * r);
#ifndef CIT_OBS_DISABLED
  const int64_t groups = r / 4 + r % 4;
  CIT_OBS_COUNT("kernels.gemm_bytes",
                int64_t{4} * (p * q * groups + p * q * r + p * r));
#endif
}

// MatMulTransA zero-fills C (q*r stores), reads a once (p*q loads), and per
// (i, j) pair streams a b row and read-modify-writes a C row (3*p*q*r).
// The kernel skips the inner sweep when a[i,j] == 0; the counter ignores
// that data-dependent skip and reports the dense upper bound.
inline void CountGemmTransA([[maybe_unused]] int64_t p,
                            [[maybe_unused]] int64_t q,
                            [[maybe_unused]] int64_t r) {
  CIT_OBS_COUNT("kernels.gemm_calls", 1);
  CIT_OBS_COUNT("kernels.gemm_flops", 2 * p * q * r);
  CIT_OBS_COUNT("kernels.gemm_bytes",
                int64_t{4} * (q * r + p * q + 3 * p * q * r));
}

// Rows per chunk so a chunk carries at least ~2^16 flops of GEMM work.
int64_t RowGrain(int64_t flops_per_row) {
  return std::max<int64_t>(1, (1 << 16) / std::max<int64_t>(1, flops_per_row))
         + 1;
}

// ---- Blocked GEMM ----------------------------------------------------------
// Register tile: kGemmMr rows of A against a kGemmNr-wide packed panel of
// B, saxpy over k. kGemmKc limits the packed panel to ~KC*NR floats
// (L1-resident). Each output element accumulates in ascending-k order no
// matter how rows are partitioned, so the result is thread-count invariant
// under either backend.

// Per-thread packed-B panel (kGemmKc x kGemmNr floats, 64-byte aligned for
// the SIMD loads), lazily allocated on the first GEMM chunk a thread ever
// runs and reused for every one after, so the hot loop is allocation-free
// in steady state. kernels.gemm_pack_allocs counts the one-time per-thread
// allocations; tests assert it stays flat across repeated calls.
float* PackBuffer() {
  struct Panel {
    float* p = nullptr;
    ~Panel() { std::free(p); }
  };
  thread_local Panel panel;
  if (panel.p == nullptr) {
    CIT_OBS_COUNT("kernels.gemm_pack_allocs", 1);
    panel.p = static_cast<float*>(std::aligned_alloc(
        64, sizeof(float) * static_cast<size_t>(kGemmKc * kGemmNr)));
  }
  return panel.p;
}

// Scalar microkernel: c[0..mr)[0..nr) += A-rows x pack, each element one
// saxpy chain in ascending-k order. This is the bitwise reference the
// existing determinism tests pin; the SIMD twin lives in kernels_simd.cc.
void ScalarGemmTile(const float* a, int64_t lda, const float* pack,
                    int64_t kc, float* c, int64_t ldc, int64_t mr,
                    int64_t nr) {
  float acc[kGemmMr][kGemmNr];
  for (int64_t i = 0; i < mr; ++i) {
    std::memset(acc[i], 0, sizeof(float) * kGemmNr);
  }
  if (mr == kGemmMr) {
    const float* a0 = a + 0 * lda;
    const float* a1 = a + 1 * lda;
    const float* a2 = a + 2 * lda;
    const float* a3 = a + 3 * lda;
    for (int64_t k = 0; k < kc; ++k) {
      const float* bp = pack + k * kGemmNr;
      const float x0 = a0[k], x1 = a1[k], x2 = a2[k], x3 = a3[k];
      for (int64_t j = 0; j < kGemmNr; ++j) {
        const float bj = bp[j];
        acc[0][j] += x0 * bj;
        acc[1][j] += x1 * bj;
        acc[2][j] += x2 * bj;
        acc[3][j] += x3 * bj;
      }
    }
  } else {
    for (int64_t i = 0; i < mr; ++i) {
      const float* ai = a + i * lda;
      float* ac = acc[i];
      for (int64_t k = 0; k < kc; ++k) {
        const float x = ai[k];
        const float* bp = pack + k * kGemmNr;
        for (int64_t j = 0; j < kGemmNr; ++j) ac[j] += x * bp[j];
      }
    }
  }
  for (int64_t i = 0; i < mr; ++i) {
    float* cr = c + i * ldc;
    const float* ac = acc[i];
    for (int64_t j = 0; j < nr; ++j) cr[j] += ac[j];
  }
}

void GemmRowRange(const float* a, const float* b, float* c, int64_t i_lo,
                  int64_t i_hi, int64_t q, int64_t r, bool use_simd) {
  std::memset(c + i_lo * r, 0,
              sizeof(float) * static_cast<size_t>((i_hi - i_lo) * r));
  if (q == 0 || r == 0) return;
  float* pack = PackBuffer();
  for (int64_t j0 = 0; j0 < r; j0 += kGemmNr) {
    const int64_t nr = std::min<int64_t>(kGemmNr, r - j0);
    for (int64_t k0 = 0; k0 < q; k0 += kGemmKc) {
      const int64_t kc = std::min<int64_t>(kGemmKc, q - k0);
      // Pack B[k0:k0+kc, j0:j0+nr] into [kc, NR], zero-padding the tail
      // columns so the microkernel always runs the full NR width.
      for (int64_t k = 0; k < kc; ++k) {
        const float* src = b + (k0 + k) * r + j0;
        float* dst = pack + k * kGemmNr;
        int64_t j = 0;
        for (; j < nr; ++j) dst[j] = src[j];
        for (; j < kGemmNr; ++j) dst[j] = 0.0f;
      }
      for (int64_t i0 = i_lo; i0 < i_hi; i0 += kGemmMr) {
        const int64_t mr = std::min<int64_t>(kGemmMr, i_hi - i0);
        const float* atile = a + i0 * q + k0;
        float* ctile = c + i0 * r + j0;
        if (use_simd) {
          simd::GemmTile(atile, q, pack, kc, ctile, r, mr, nr);
        } else {
          ScalarGemmTile(atile, q, pack, kc, ctile, r, mr, nr);
        }
      }
    }
  }
}

}  // namespace

// ---- Backend dispatch ------------------------------------------------------

Backend ActiveBackend() {
  return BackendSlot().load(std::memory_order_relaxed);
}

Backend SetBackend(Backend b) {
  if (b == Backend::kSimd && !simd::Available()) b = Backend::kScalar;
  return BackendSlot().exchange(b, std::memory_order_relaxed);
}

bool SimdAvailable() { return simd::Available(); }

const char* SimdIsaName() { return simd::IsaName(); }

// ---- Elementwise -----------------------------------------------------------

void Fill(float* dst, float v, int64_t n) {
  std::fill(dst, dst + n, v);
}

void Copy(const float* src, float* dst, int64_t n) {
  std::memcpy(dst, src, sizeof(float) * static_cast<size_t>(n));
}

// The named elementwise kernels dispatch per backend inside the shared
// ParallelFor partition, so both backends see identical chunk boundaries.
// All ops below except Axpy are single IEEE operations per element —
// bit-identical between backends; Axpy's SIMD arm fuses the multiply-add
// (see math/simd.h).

void Add(const float* a, const float* b, float* out, int64_t n) {
  if (UseSimd()) {
    Pool().ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      simd::Add(a + lo, b + lo, out + lo, hi - lo);
    });
    return;
  }
  Map2(a, b, out, n, [](float x, float y) { return x + y; });
}

void Sub(const float* a, const float* b, float* out, int64_t n) {
  if (UseSimd()) {
    Pool().ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      simd::Sub(a + lo, b + lo, out + lo, hi - lo);
    });
    return;
  }
  Map2(a, b, out, n, [](float x, float y) { return x - y; });
}

void Mul(const float* a, const float* b, float* out, int64_t n) {
  if (UseSimd()) {
    Pool().ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      simd::Mul(a + lo, b + lo, out + lo, hi - lo);
    });
    return;
  }
  Map2(a, b, out, n, [](float x, float y) { return x * y; });
}

void Div(const float* a, const float* b, float* out, int64_t n) {
  if (UseSimd()) {
    Pool().ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      simd::Div(a + lo, b + lo, out + lo, hi - lo);
    });
    return;
  }
  Map2(a, b, out, n, [](float x, float y) { return x / y; });
}

void AddScalar(const float* a, float v, float* out, int64_t n) {
  if (UseSimd()) {
    Pool().ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      simd::AddScalar(a + lo, v, out + lo, hi - lo);
    });
    return;
  }
  Map(a, out, n, [v](float x) { return x + v; });
}

void MulScalar(const float* a, float v, float* out, int64_t n) {
  if (UseSimd()) {
    Pool().ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      simd::MulScalar(a + lo, v, out + lo, hi - lo);
    });
    return;
  }
  Map(a, out, n, [v](float x) { return x * v; });
}

void AddInto(float* dst, const float* src, int64_t n) {
  if (UseSimd()) {
    Pool().ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      simd::Add(dst + lo, src + lo, dst + lo, hi - lo);
    });
    return;
  }
  Map2(dst, src, dst, n, [](float x, float y) { return x + y; });
}

void SubInto(float* dst, const float* src, int64_t n) {
  if (UseSimd()) {
    Pool().ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      simd::Sub(dst + lo, src + lo, dst + lo, hi - lo);
    });
    return;
  }
  Map2(dst, src, dst, n, [](float x, float y) { return x - y; });
}

void ScaleInto(float* dst, float v, int64_t n) {
  if (UseSimd()) {
    Pool().ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      simd::MulScalar(dst + lo, v, dst + lo, hi - lo);
    });
    return;
  }
  Map(dst, dst, n, [v](float x) { return x * v; });
}

void Axpy(float alpha, const float* x, float* y, int64_t n) {
  if (UseSimd()) {
    Pool().ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      simd::Axpy(alpha, x + lo, y + lo, hi - lo);
    });
    return;
  }
  Map2(y, x, y, n, [alpha](float yi, float xi) { return yi + alpha * xi; });
}

void FusedElemwise(const float* in, float* out, int64_t n, const ElemOp* ops,
                   int count) {
  // Only chains made entirely of bit-exact ops may take the vector sweep;
  // anything touching libm stays on the scalar ElemApply path so fused and
  // unfused replays remain bitwise interchangeable on every backend.
  if (UseSimd() && simd::FusedChainExact(ops, count)) {
    Pool().ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      simd::FusedElemwise(in + lo, out + lo, hi - lo, ops, count);
    });
    return;
  }
  ThreadPool::Global().ParallelFor(
      0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          float x = in[i];
          for (int k = 0; k < count; ++k) x = ElemApply(ops[k], x);
          out[i] = x;
        }
      });
}

// ---- Reductions ------------------------------------------------------------

double Sum(const float* a, int64_t n) {
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) s += a[i];
  return s;
}

void SumAxis(const float* x, float* out, int64_t outer, int64_t axis_len,
             int64_t inner) {
  const int64_t grain =
      std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(
                                                   1, axis_len * inner));
  Pool().ParallelFor(0, outer, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      float* dst = out + o * inner;
      std::memset(dst, 0, sizeof(float) * static_cast<size_t>(inner));
      for (int64_t k = 0; k < axis_len; ++k) {
        const float* src = x + (o * axis_len + k) * inner;
        for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
      }
    }
  });
}

// ---- Linear algebra --------------------------------------------------------

void MatMul(const float* a, const float* b, float* c, int64_t p, int64_t q,
            int64_t r) {
  CountGemmBlocked(p, q, r);
  // The backend is latched once per call so a concurrent SetBackend can
  // never split one GEMM across implementations.
  const bool use_simd = UseSimd();
  Pool().ParallelFor(0, p, RowGrain(2 * q * r),
                     [&](int64_t lo, int64_t hi) {
                       GemmRowRange(a, b, c, lo, hi, q, r, use_simd);
                     });
}

void MatMulTransB(const float* a, const float* bT, float* c, int64_t p,
                  int64_t q, int64_t r) {
  CountGemmTransB(p, q, r);
  Pool().ParallelFor(0, p, RowGrain(2 * q * r), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* ar = a + i * q;
      float* cr = c + i * r;
      int64_t j = 0;
      // Four independent dot-product chains give the vectorizer ILP.
      for (; j + 3 < r; j += 4) {
        const float* b0 = bT + (j + 0) * q;
        const float* b1 = bT + (j + 1) * q;
        const float* b2 = bT + (j + 2) * q;
        const float* b3 = bT + (j + 3) * q;
        float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
        for (int64_t k = 0; k < q; ++k) {
          const float av = ar[k];
          s0 += av * b0[k];
          s1 += av * b1[k];
          s2 += av * b2[k];
          s3 += av * b3[k];
        }
        cr[j + 0] = s0;
        cr[j + 1] = s1;
        cr[j + 2] = s2;
        cr[j + 3] = s3;
      }
      for (; j < r; ++j) {
        const float* bj = bT + j * q;
        float s = 0.0f;
        for (int64_t k = 0; k < q; ++k) s += ar[k] * bj[k];
        cr[j] = s;
      }
    }
  });
}

void MatMulTransA(const float* a, const float* b, float* c, int64_t p,
                  int64_t q, int64_t r) {
  CountGemmTransA(p, q, r);
  // c[j, :] = sum_i a[i, j] * b[i, :]; parallel over j so each thread owns
  // disjoint output rows while scanning i in ascending order (deterministic).
  Pool().ParallelFor(0, q, RowGrain(2 * p * r), [&](int64_t lo, int64_t hi) {
    std::memset(c + lo * r, 0,
                sizeof(float) * static_cast<size_t>((hi - lo) * r));
    for (int64_t i = 0; i < p; ++i) {
      const float* br = b + i * r;
      const float* ar = a + i * q;
      for (int64_t j = lo; j < hi; ++j) {
        const float av = ar[j];
        if (av == 0.0f) continue;
        float* cr = c + j * r;
        for (int64_t l = 0; l < r; ++l) cr[l] += av * br[l];
      }
    }
  });
}

void Transpose(const float* in, float* out, int64_t rows, int64_t cols) {
  constexpr int64_t kTile = 32;
  for (int64_t r0 = 0; r0 < rows; r0 += kTile) {
    const int64_t r1 = std::min(rows, r0 + kTile);
    for (int64_t c0 = 0; c0 < cols; c0 += kTile) {
      const int64_t c1 = std::min(cols, c0 + kTile);
      for (int64_t r = r0; r < r1; ++r) {
        for (int64_t c = c0; c < c1; ++c) {
          out[c * rows + r] = in[r * cols + c];
        }
      }
    }
  }
}

// ---- Softmax family --------------------------------------------------------

void SoftmaxLastAxis(float* x, int64_t outer, int64_t n) {
  const int64_t grain =
      std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, n));
  Pool().ParallelFor(0, outer, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      float* row = x + o * n;
      float mx = row[0];
      for (int64_t i = 1; i < n; ++i) mx = std::max(mx, row[i]);
      float total = 0.0f;
      for (int64_t i = 0; i < n; ++i) {
        row[i] = std::exp(row[i] - mx);
        total += row[i];
      }
      for (int64_t i = 0; i < n; ++i) row[i] /= total;
    }
  });
}

void LogSoftmaxLastAxis(float* x, int64_t outer, int64_t n) {
  const int64_t grain =
      std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, n));
  Pool().ParallelFor(0, outer, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      float* row = x + o * n;
      float mx = row[0];
      for (int64_t i = 1; i < n; ++i) mx = std::max(mx, row[i]);
      float total = 0.0f;
      for (int64_t i = 0; i < n; ++i) total += std::exp(row[i] - mx);
      const float lse = mx + std::log(total);
      for (int64_t i = 0; i < n; ++i) row[i] -= lse;
    }
  });
}

// ---- Causal dilated 1-D convolution ----------------------------------------

namespace {

// Direct triple loop, one (batch, cout) output row at a time. Accumulation
// over (cin, tap) ascends exactly like the im2col GEMM's k dimension.
void ConvDirect(const float* x, const float* w, const float* bias, float* out,
                int64_t batch, int64_t cin, int64_t cout, int64_t len,
                int64_t k, int64_t dilation) {
  for (int64_t bi = 0; bi < batch; ++bi) {
    for (int64_t co = 0; co < cout; ++co) {
      float* orow = out + (bi * cout + co) * len;
      std::memset(orow, 0, sizeof(float) * static_cast<size_t>(len));
      for (int64_t ci = 0; ci < cin; ++ci) {
        const float* xrow = x + (bi * cin + ci) * len;
        const float* wrow = w + (co * cin + ci) * k;
        for (int64_t kk = 0; kk < k; ++kk) {
          const int64_t shift = (k - 1 - kk) * dilation;
          const float wk = wrow[kk];
          if (wk == 0.0f) continue;
          for (int64_t t = shift; t < len; ++t) {
            orow[t] += wk * xrow[t - shift];
          }
        }
      }
      if (bias != nullptr) {
        const float bv = bias[co];
        for (int64_t t = 0; t < len; ++t) orow[t] += bv;
      }
    }
  }
}

// Fused im2col + GEMM: per batch, lower the causally-shifted input into
// P:[cin*k, len] and compute out_b = W:[cout, cin*k] @ P with the blocked
// MatMul (inheriting its parallelism and determinism).
void ConvIm2col(const float* x, const float* w, const float* bias, float* out,
                int64_t batch, int64_t cin, int64_t cout, int64_t len,
                int64_t k, int64_t dilation) {
  const int64_t q = cin * k;
  std::vector<float> patch(static_cast<size_t>(q * len));
  for (int64_t bi = 0; bi < batch; ++bi) {
    for (int64_t ci = 0; ci < cin; ++ci) {
      const float* xrow = x + (bi * cin + ci) * len;
      for (int64_t kk = 0; kk < k; ++kk) {
        const int64_t shift = (k - 1 - kk) * dilation;
        float* prow = patch.data() + (ci * k + kk) * len;
        const int64_t zeros = std::min(shift, len);
        std::memset(prow, 0, sizeof(float) * static_cast<size_t>(zeros));
        if (shift < len) {
          std::memcpy(prow + shift, xrow,
                      sizeof(float) * static_cast<size_t>(len - shift));
        }
      }
    }
    float* obase = out + bi * cout * len;
    MatMul(w, patch.data(), obase, cout, q, len);
    if (bias != nullptr) {
      for (int64_t co = 0; co < cout; ++co) {
        float* orow = obase + co * len;
        const float bv = bias[co];
        for (int64_t t = 0; t < len; ++t) orow[t] += bv;
      }
    }
  }
}

}  // namespace

void CausalConv1dForward(const float* x, const float* w, const float* bias,
                         float* out, int64_t batch, int64_t cin, int64_t cout,
                         int64_t len, int64_t k, int64_t dilation) {
  // The im2col lowering costs O(cin*k*len) extra writes per batch; it pays
  // off once the GEMM on top is big enough. The gate depends only on
  // shapes, keeping the result deterministic for any thread count.
  const int64_t flops = 2 * cout * cin * k * len;
  const bool im2col = flops >= (1 << 16) && len >= 8;
  CIT_OBS_COUNT("kernels.conv_calls", 1);
  CIT_OBS_COUNT("kernels.conv_flops", batch * flops);
#ifndef CIT_OBS_DISABLED
  {
    // Logical load/store traffic of the chosen path (mirrors the loops, not
    // the cache). Both paths share S = sum_kk max(0, len - shift_kk), the
    // post-causal-pad tap coverage. Im2col, per batch: each input row is
    // re-read once per tap with the pad removed (cin*S loads), the patch
    // matrix is written exactly once (cin*k*len stores: memset pad +
    // memcpy body), and the bias add read-modify-writes the output
    // (2*cout*len) — the lowered GEMM's own traffic (including its reads
    // of the patch and of w) lands in kernels.gemm_bytes via the MatMul it
    // calls. Direct, per batch: output memset (cout*len stores), each
    // weight read once (cout*cin*k), then per (co, ci, tap) an
    // output-row read-modify-write against an input-row read
    // (3*cout*cin*S), plus the bias pass (2*cout*len); the data-dependent
    // zero-weight skip is ignored, so this is the dense upper bound.
    // Pinned by tests/test_kernels.cc KernelObs.ConvBytesFormula.
    int64_t taps = 0;  // S above
    for (int64_t kk = 0; kk < k; ++kk) {
      taps += std::max<int64_t>(0, len - (k - 1 - kk) * dilation);
    }
    const int64_t bias_traffic = bias != nullptr ? 2 * cout * len : 0;
    const int64_t per_batch =
        im2col ? cin * taps + cin * k * len + bias_traffic
               : cout * len + cout * cin * k + 3 * cout * cin * taps +
                     bias_traffic;
    CIT_OBS_COUNT("kernels.conv_bytes", int64_t{4} * batch * per_batch);
  }
#endif
  if (im2col) {
    ConvIm2col(x, w, bias, out, batch, cin, cout, len, k, dilation);
  } else {
    ConvDirect(x, w, bias, out, batch, cin, cout, len, k, dilation);
  }
}

void CausalConv1dBackward(const float* x, const float* w, const float* gout,
                          float* gx, float* gw, float* gb, int64_t batch,
                          int64_t cin, int64_t cout, int64_t len, int64_t k,
                          int64_t dilation) {
  CIT_OBS_COUNT("kernels.conv_backward_calls", 1);
  CIT_OBS_COUNT("kernels.conv_flops", 4 * batch * cout * cin * k * len);
  for (int64_t bi = 0; bi < batch; ++bi) {
    for (int64_t co = 0; co < cout; ++co) {
      const float* grow = gout + (bi * cout + co) * len;
      if (gb != nullptr) {
        float s = 0.0f;
        for (int64_t t = 0; t < len; ++t) s += grow[t];
        gb[co] += s;
      }
      for (int64_t ci = 0; ci < cin; ++ci) {
        const float* xrow = x + (bi * cin + ci) * len;
        const float* wrow = w + (co * cin + ci) * k;
        float* gxrow = gx + (bi * cin + ci) * len;
        float* gwrow = gw + (co * cin + ci) * k;
        for (int64_t kk = 0; kk < k; ++kk) {
          const int64_t shift = (k - 1 - kk) * dilation;
          const float wk = wrow[kk];
          float gwk = 0.0f;
          for (int64_t t = shift; t < len; ++t) {
            const float g = grow[t];
            gxrow[t - shift] += wk * g;
            gwk += g * xrow[t - shift];
          }
          gwrow[kk] += gwk;
        }
      }
    }
  }
}

}  // namespace cit::math::kernels
