#include "math/plan.h"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "obs/telemetry.h"

namespace cit::plan {

namespace kernels = math::kernels;
using math::Shape;

namespace {

// CIT_COMPILE=0 disables compiled replay process-wide; any other value (or
// unset) leaves it available. Same contract as CIT_NOGRAD.
bool InitialCompileAllowed() {
  const char* v = std::getenv("CIT_COMPILE");
  return !(v != nullptr && v[0] == '0' && v[1] == '\0');
}

std::atomic<bool> g_compile_allowed{InitialCompileAllowed()};

}  // namespace

bool CompileAllowed() {
  return g_compile_allowed.load(std::memory_order_relaxed);
}

void SetCompileAllowed(bool allowed) {
  g_compile_allowed.store(allowed, std::memory_order_relaxed);
}

namespace detail {
thread_local bool t_recording = false;
}  // namespace detail

namespace {

// ---- Plan data model -------------------------------------------------------

// Identity of a tensor's backing buffer during recording. Every tensor the
// recorder registers stays pinned (a COW handle is held) until recording
// ends, so a live key can never be recycled onto a different value.
struct BufKey {
  const void* storage;
  int64_t offset;
  bool operator==(const BufKey& o) const {
    return storage == o.storage && offset == o.offset;
  }
};

struct BufKeyHash {
  size_t operator()(const BufKey& k) const {
    return std::hash<const void*>()(k.storage) ^
           (static_cast<size_t>(k.offset) * 0x9e3779b97f4a7c15ULL);
  }
};

// One value in the plan. Steps reference values by slot id; ids are
// assigned in SSA order (every op output is a fresh slot).
struct Slot {
  enum Kind : uint8_t {
    kInput,  // caller-provided tensor, rebound every replay
    kParam,  // trainable leaf, bound live + revalidated by version
    kConst,  // value baked at record time (pinned COW handle)
    kInter,  // intermediate, lives in the slab at a fixed offset
    kAlias,  // zero-copy view of another slot (Reshape / contiguous Slice)
  };
  Kind kind = kInter;
  int64_t numel = 0;
  int input_index = -1;             // kInput
  std::shared_ptr<ag::Node> param;  // kParam
  uint64_t param_version = 0;       // kParam: Node::version at record time
  Tensor constant;                  // kConst
  int64_t slab_off = -1;            // kInter
  int alias_of = -1;                // kAlias (always a lower slot id)
  int64_t alias_elem_off = 0;       // kAlias
};

constexpr size_t kMaxStepInputs = 16;

struct Step {
  ReplayFn fn;                          // null for elementwise steps
  std::vector<int> ins;
  int out = -1;
  bool is_elem = false;                 // single-input elementwise, fusable
  std::vector<kernels::ElemOp> chain;   // scalar program when is_elem
  int64_t n = 0;                        // element count when is_elem
};

struct ExecPlan {
  std::vector<Slot> slots;
  std::vector<Step> steps;
  int out_slot = -1;
  Shape out_shape;
  int64_t slab_size = 0;  // floats
};

int Root(const std::vector<Slot>& slots, int id) {
  while (slots[id].kind == Slot::kAlias) id = slots[id].alias_of;
  return id;
}

// ---- Recorder --------------------------------------------------------------

struct Recorder {
  ExecPlan plan;
  std::unordered_map<BufKey, int, BufKeyHash> by_buf;
  std::unordered_map<const ag::Node*, int> by_node;
  // Pins every registered tensor for the duration of the recording so the
  // arena cannot recycle a registered buffer onto a new value (which would
  // make a by_buf key silently resolve to the wrong slot).
  std::vector<Tensor> pins;
  int64_t ops_seen = 0;      // MakeOp/MakeOpVec calls (via NoteOp)
  int64_t ops_recorded = 0;  // Record* calls
  bool failed = false;       // op the recorder cannot express (e.g. a
                             // non-view aliasing pattern)
};

thread_local Recorder* t_recorder = nullptr;

class RecorderScope {
 public:
  explicit RecorderScope(Recorder* r) {
    CIT_CHECK(t_recorder == nullptr);
    t_recorder = r;
    detail::t_recording = true;
  }
  ~RecorderScope() {
    t_recorder = nullptr;
    detail::t_recording = false;
  }
};

BufKey KeyOf(const Tensor& t) {
  return BufKey{t.storage_ptr(), t.storage_offset()};
}

int AddSlot(Recorder& r, Slot s) {
  r.plan.slots.push_back(std::move(s));
  return static_cast<int>(r.plan.slots.size()) - 1;
}

void RegisterValue(Recorder& r, const Tensor& t, int slot_id) {
  r.by_buf[KeyOf(t)] = slot_id;
  r.pins.push_back(t);
}

// Resolves an op input to a slot: a previously recorded value, a trainable
// parameter (live-bound, revalidated by version on every replay), or — for
// anything created outside the recorded region — a baked constant.
int ResolveInput(Recorder& r, const ag::Var& v) {
  const Tensor& t = v.value();
  auto it = r.by_buf.find(KeyOf(t));
  if (it != r.by_buf.end()) return it->second;
  if (std::shared_ptr<ag::Node> node = v.node();
      node != nullptr && node->requires_grad) {
    auto pit = r.by_node.find(node.get());
    if (pit != r.by_node.end()) return pit->second;
    Slot s;
    s.kind = Slot::kParam;
    s.numel = t.numel();
    s.param_version = node->version;
    s.param = std::move(node);
    const int id = AddSlot(r, std::move(s));
    r.by_node.emplace(r.plan.slots[id].param.get(), id);
    return id;
  }
  Slot s;
  s.kind = Slot::kConst;
  s.numel = t.numel();
  s.constant = t;  // COW handle: content cannot change underneath us
  const int id = AddSlot(r, std::move(s));
  RegisterValue(r, t, id);
  return id;
}

void RecordStepImpl(Recorder& r, const Tensor& out,
                    const ag::Var* const* ins, size_t nin, ReplayFn fn) {
  ++r.ops_recorded;
  if (nin > kMaxStepInputs) {
    r.failed = true;
    return;
  }
  Step st;
  st.ins.reserve(nin);
  for (size_t i = 0; i < nin; ++i) st.ins.push_back(ResolveInput(r, *ins[i]));
  Slot s;
  s.kind = Slot::kInter;
  s.numel = out.numel();
  st.out = AddSlot(r, std::move(s));
  st.fn = std::move(fn);
  RegisterValue(r, out, st.out);
  r.plan.steps.push_back(std::move(st));
}

// ---- Finalization: fusion + slab layout ------------------------------------

// Folds an elementwise step into its producer when the producer is itself
// elementwise over the same element count and its output feeds exactly this
// one consumer. The merged step keeps the producer's position (legal under
// SSA: the consumed value had no other reader) and produces the consumer's
// output; the producer's output slot goes dead and is never materialized.
int64_t FuseElemChains(ExecPlan& p) {
  std::vector<int> uses(p.slots.size(), 0);
  for (const Step& st : p.steps) {
    for (int in : st.ins) ++uses[Root(p.slots, in)];
  }
  if (p.out_slot >= 0) ++uses[Root(p.slots, p.out_slot)];

  int64_t fused = 0;
  std::vector<Step> out;
  out.reserve(p.steps.size());
  std::unordered_map<int, size_t> elem_producer;  // slot id -> index in `out`
  for (Step& st : p.steps) {
    if (st.is_elem) {
      const int r = Root(p.slots, st.ins[0]);
      auto it = elem_producer.find(r);
      if (it != elem_producer.end() && uses[r] == 1 &&
          out[it->second].n == st.n) {
        const size_t idx = it->second;
        Step& prod = out[idx];
        prod.chain.insert(prod.chain.end(), st.chain.begin(), st.chain.end());
        prod.out = st.out;
        elem_producer.erase(it);
        elem_producer.emplace(st.out, idx);
        ++fused;
        continue;
      }
    }
    out.push_back(std::move(st));
    if (out.back().is_elem) {
      elem_producer[out.back().out] = out.size() - 1;
    }
  }
  p.steps = std::move(out);
  return fused;
}

// Packs intermediates into one slab with a liveness-driven exact-size
// freelist. A step's output is placed before its dead inputs are freed, so
// an output can never alias one of its own inputs (reduction/transpose
// kernels read across indices and would corrupt on overlap).
void AssignSlab(ExecPlan& p) {
  const int num_steps = static_cast<int>(p.steps.size());
  std::vector<int> last_use(p.slots.size(), -1);
  for (int i = 0; i < num_steps; ++i) {
    for (int in : p.steps[i].ins) last_use[Root(p.slots, in)] = i;
  }
  if (p.out_slot >= 0) last_use[Root(p.slots, p.out_slot)] = num_steps;

  std::unordered_map<int64_t, std::vector<int64_t>> freelist;
  int64_t size = 0;
  for (int i = 0; i < num_steps; ++i) {
    Step& st = p.steps[i];
    Slot& o = p.slots[st.out];
    std::vector<int64_t>& fl = freelist[o.numel];
    if (!fl.empty()) {
      o.slab_off = fl.back();
      fl.pop_back();
    } else {
      o.slab_off = size;
      size += o.numel;
    }
    for (size_t k = 0; k < st.ins.size(); ++k) {
      const int r = Root(p.slots, st.ins[k]);
      bool seen = false;
      for (size_t j = 0; j < k && !seen; ++j) {
        seen = Root(p.slots, st.ins[j]) == r;
      }
      if (seen) continue;  // duplicate input: free once
      if (p.slots[r].kind == Slot::kInter && last_use[r] == i) {
        freelist[p.slots[r].numel].push_back(p.slots[r].slab_off);
      }
    }
  }
  p.slab_size = size;
}

}  // namespace

namespace detail {
void NoteOp() {
  if (t_recorder != nullptr) ++t_recorder->ops_seen;
}
}  // namespace detail

// ---- Recording hooks -------------------------------------------------------

void RecordStep(const Tensor& out, std::initializer_list<const ag::Var*> ins,
                ReplayFn fn) {
  if (Recorder* r = t_recorder) {
    RecordStepImpl(*r, out, ins.begin(), ins.size(), std::move(fn));
  }
}

void RecordStepVec(const Tensor& out, const std::vector<const ag::Var*>& ins,
                   ReplayFn fn) {
  if (Recorder* r = t_recorder) {
    RecordStepImpl(*r, out, ins.data(), ins.size(), std::move(fn));
  }
}

void RecordElem(const Tensor& out, const ag::Var& in,
                math::kernels::ElemOp op) {
  Recorder* r = t_recorder;
  if (r == nullptr) return;
  ++r->ops_recorded;
  Step st;
  st.ins.push_back(ResolveInput(*r, in));
  Slot s;
  s.kind = Slot::kInter;
  s.numel = out.numel();
  st.out = AddSlot(*r, std::move(s));
  st.is_elem = true;
  st.chain.push_back(op);
  st.n = out.numel();
  RegisterValue(*r, out, st.out);
  r->plan.steps.push_back(std::move(st));
}

void RecordAlias(const Tensor& out, const ag::Var& src) {
  Recorder* r = t_recorder;
  if (r == nullptr) return;
  ++r->ops_recorded;
  const Tensor& sv = src.value();
  if (out.storage_ptr() != sv.storage_ptr()) {
    // The op produced a view of storage the recorder cannot see through.
    r->failed = true;
    return;
  }
  Slot s;
  s.kind = Slot::kAlias;
  s.numel = out.numel();
  s.alias_of = ResolveInput(*r, src);
  s.alias_elem_off = out.storage_offset() - sv.storage_offset();
  const int id = AddSlot(*r, std::move(s));
  RegisterValue(*r, out, id);
}

// ---- CompiledFn ------------------------------------------------------------

struct CompiledFn::Impl {
  struct Entry {
    std::vector<Shape> key;
    bool valid = false;
    bool poisoned = false;  // recording failed: interpret this key forever
    ExecPlan plan;
    std::vector<float> slab;
    std::vector<const float*> ptrs;  // per-slot resolved pointers
    uint64_t last_used = 0;
  };

  std::vector<Entry> entries;
  PlanStats stats;
  uint64_t tick = 0;
  int64_t capacity = kMaxEntries;

  // Shape keys the LRU has dropped, so a later miss on the same key can be
  // attributed to the eviction (plan.misses_evicted — the thrash signal)
  // rather than a genuinely new shape (plan.misses_cold). Bounded ring:
  // remembering more keys than this only sharpens attribution of ancient
  // evictions, which is not worth unbounded growth.
  static constexpr size_t kMaxEvictedKeys = 64;
  std::vector<std::vector<Shape>> evicted_keys;

  void RememberEvicted(std::vector<Shape> key) {
    for (std::vector<Shape>& k : evicted_keys) {
      if (k == key) return;  // already remembered
    }
    if (evicted_keys.size() >= kMaxEvictedKeys) {
      evicted_keys.erase(evicted_keys.begin());
    }
    evicted_keys.push_back(std::move(key));
  }

  bool WasEvicted(const std::vector<Shape>& key) const {
    for (const std::vector<Shape>& k : evicted_keys) {
      if (k == key) return true;
    }
    return false;
  }

  // Single-owner enforcement (debug builds): the first compiled-path Run
  // pins this CompiledFn to its calling thread; a default-constructed id
  // means "unowned". Atomic so the *detection* of a cross-thread caller is
  // itself race-free — everything past the check still assumes one owner.
  std::atomic<std::thread::id> owner{std::thread::id()};

  void CheckOwner() {
#ifndef NDEBUG
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (!owner.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed) &&
        expected != self) {
      CIT_CHECK_MSG(false,
                    "plan::CompiledFn used from a second thread; a "
                    "CompiledFn (and the model replica holding it) belongs "
                    "to exactly one thread — give each worker its own "
                    "replica, or Clear() before handing it over");
    }
#endif
  }

  Entry* Find(std::initializer_list<const Tensor*> inputs) {
    for (Entry& e : entries) {
      if (e.key.size() != inputs.size()) continue;
      bool match = true;
      size_t i = 0;
      for (const Tensor* t : inputs) {
        if (t->shape() != e.key[i++]) {
          match = false;
          break;
        }
      }
      if (match) return &e;
    }
    return nullptr;
  }

  static bool Stale(const Entry& e) {
    for (const Slot& s : e.plan.slots) {
      if (s.kind == Slot::kParam && s.param->version != s.param_version) {
        return true;
      }
    }
    return false;
  }

  Tensor Replay(Entry& e, std::initializer_list<const Tensor*> inputs) {
    ExecPlan& p = e.plan;
    std::vector<const float*>& ptrs = e.ptrs;
    const Tensor* const* in = inputs.begin();
    const int num_slots = static_cast<int>(p.slots.size());
    for (int i = 0; i < num_slots; ++i) {
      const Slot& s = p.slots[i];
      switch (s.kind) {
        case Slot::kInput:
          ptrs[i] = in[s.input_index]->data();  // const overload: no detach
          break;
        case Slot::kParam:
          ptrs[i] = std::as_const(s.param->value).data();
          break;
        case Slot::kAlias:
          ptrs[i] = ptrs[s.alias_of] + s.alias_elem_off;
          break;
        case Slot::kConst:
        case Slot::kInter:
          break;  // resolved once at finalize
      }
    }
    const float* abuf[kMaxStepInputs];
    for (Step& st : p.steps) {
      for (size_t k = 0; k < st.ins.size(); ++k) abuf[k] = ptrs[st.ins[k]];
      float* out = const_cast<float*>(ptrs[st.out]);
      if (st.is_elem) {
        kernels::FusedElemwise(abuf[0], out, st.n, st.chain.data(),
                               static_cast<int>(st.chain.size()));
      } else {
        st.fn(abuf, out);
      }
    }
    Tensor result(p.out_shape);
    if (result.numel() > 0) {
      kernels::Copy(ptrs[p.out_slot], result.data(), result.numel());
    }
    return result;
  }

  Tensor RecordInto(Entry& e, std::initializer_list<const Tensor*> inputs,
                    const std::function<ag::Var()>& forward) {
    e.valid = false;
    e.plan = ExecPlan{};
    e.slab.clear();
    e.ptrs.clear();

    Recorder rec;
    int idx = 0;
    for (const Tensor* t : inputs) {
      Slot s;
      s.kind = Slot::kInput;
      s.numel = t->numel();
      s.input_index = idx++;
      const int id = AddSlot(rec, std::move(s));
      RegisterValue(rec, *t, id);
    }

    Tensor out_val;
    {
      RecorderScope scope(&rec);
      out_val = forward().value();
    }

    auto out_it = rec.by_buf.find(KeyOf(out_val));
    const bool ok = !rec.failed && rec.ops_seen == rec.ops_recorded &&
                    out_it != rec.by_buf.end();
    if (!ok) {
      // Never replayable (an op without a recording hook, or an output the
      // recorder cannot trace): interpret this shape key from now on.
      e.poisoned = true;
      CIT_OBS_COUNT("plan.poisoned", 1);
      return out_val;
    }

    ExecPlan& p = rec.plan;
    p.out_slot = out_it->second;
    p.out_shape = out_val.shape();
    const int64_t fused = FuseElemChains(p);
    stats.fused_ops += fused;
    CIT_OBS_COUNT("plan.fused_ops", fused);
    AssignSlab(p);

    e.slab.assign(static_cast<size_t>(p.slab_size), 0.0f);
    e.ptrs.assign(p.slots.size(), nullptr);
    for (size_t i = 0; i < p.slots.size(); ++i) {
      const Slot& s = p.slots[i];
      if (s.kind == Slot::kConst) {
        e.ptrs[i] = s.constant.data();
      } else if (s.kind == Slot::kInter && s.slab_off >= 0) {
        e.ptrs[i] = e.slab.data() + s.slab_off;
      }
    }
    e.plan = std::move(p);
    e.valid = true;
    return out_val;
  }
};

CompiledFn::CompiledFn() : impl_(std::make_unique<Impl>()) {}
CompiledFn::~CompiledFn() = default;
CompiledFn::CompiledFn(CompiledFn&&) noexcept = default;
CompiledFn& CompiledFn::operator=(CompiledFn&&) noexcept = default;

const PlanStats& CompiledFn::stats() const {
  impl_->stats.entries = static_cast<int64_t>(impl_->entries.size());
  return impl_->stats;
}

void CompiledFn::Clear() {
  impl_->entries.clear();
  impl_->evicted_keys.clear();
  impl_->owner.store(std::thread::id(), std::memory_order_relaxed);
}

void CompiledFn::SetCapacity(int64_t capacity) {
  impl_->capacity = capacity < 1 ? 1 : capacity;
}

Tensor CompiledFn::Run(std::initializer_list<const Tensor*> inputs,
                       const std::function<ag::Var()>& forward) {
  Impl& im = *impl_;
  // Nested Run (recording already active on this thread) stays interpreted:
  // its ops flow into the outer recording, which is exactly right.
  if (!CompileAllowed() || detail::t_recording) {
    ++im.stats.fallbacks;
    return forward().value();
  }
  im.CheckOwner();
  ++im.tick;
  Impl::Entry* e = im.Find(inputs);
  if (e != nullptr) {
    e->last_used = im.tick;
    if (e->poisoned) {
      ++im.stats.fallbacks;
      return forward().value();
    }
    if (e->valid) {
      if (Impl::Stale(*e)) {
        ++im.stats.invalidations;
        CIT_OBS_COUNT("plan.invalidations", 1);
        e->valid = false;  // fall through and re-record in place
      } else {
        ++im.stats.hits;
        CIT_OBS_COUNT("plan.hits", 1);
        return im.Replay(*e, inputs);
      }
    }
  } else {
    while (im.entries.size() >= static_cast<size_t>(im.capacity)) {
      size_t victim = 0;
      for (size_t i = 1; i < im.entries.size(); ++i) {
        if (im.entries[i].last_used < im.entries[victim].last_used) {
          victim = i;
        }
      }
      im.RememberEvicted(std::move(im.entries[victim].key));
      im.entries.erase(im.entries.begin() +
                       static_cast<ptrdiff_t>(victim));
      ++im.stats.evictions;
      CIT_OBS_COUNT("plan.evictions", 1);
    }
    im.entries.emplace_back();
    e = &im.entries.back();
    for (const Tensor* t : inputs) e->key.push_back(t->shape());
    e->last_used = im.tick;
    // Attribute the recording: a key the LRU previously dropped is a
    // re-record forced by capacity (thrash), anything else a cold compile.
    // In-place re-records after a parameter invalidation take the branch
    // above and bump only the `misses` total.
    if (im.WasEvicted(e->key)) {
      ++im.stats.misses_evicted;
      CIT_OBS_COUNT("plan.misses_evicted", 1);
    } else {
      ++im.stats.misses_cold;
      CIT_OBS_COUNT("plan.misses_cold", 1);
    }
  }
  ++im.stats.misses;
  CIT_OBS_COUNT("plan.misses", 1);
  return im.RecordInto(*e, inputs, forward);
}

}  // namespace cit::plan
