#include "math/autograd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace cit::ag {

void AccumGrad(Node* n, const Tensor& g) {
  if (n == nullptr || !n->requires_grad) return;
  if (!n->has_grad) {
    n->grad = g;
    n->has_grad = true;
  } else {
    n->grad.AddInPlace(g);
  }
}

Var::Var(Tensor value, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Var Var::Param(Tensor value) { return Var(std::move(value), true); }

Var Var::Constant(Tensor value) { return Var(std::move(value), false); }

const Tensor& Var::value() const {
  CIT_CHECK(node_ != nullptr);
  return node_->value;
}

Tensor& Var::mutable_value() {
  CIT_CHECK(node_ != nullptr);
  return node_->value;
}

const Tensor& Var::grad() const {
  CIT_CHECK(node_ != nullptr);
  CIT_CHECK_MSG(node_->has_grad, "gradient not populated; call Backward()");
  return node_->grad;
}

void Var::ZeroGrad() {
  CIT_CHECK(node_ != nullptr);
  node_->has_grad = false;
  node_->grad = Tensor();
}

void Var::Backward() {
  CIT_CHECK(node_ != nullptr);
  CIT_CHECK_MSG(node_->value.numel() == 1,
                "Backward() must start from a scalar");
  // Iterative post-order DFS to get a reverse topological order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (node_->requires_grad) {
    stack.push_back({node_.get(), 0});
    visited.insert(node_.get());
  }
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && visited.insert(p).second) {
        stack.push_back({p, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
  AccumGrad(node_.get(), Tensor::Ones(node_->value.shape()));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->has_grad) n->backward_fn(*n);
  }
}

Var Var::Detach() const { return Var::Constant(value()); }

Var MakeOp(Tensor value, std::vector<Var> inputs,
           std::function<void(Node&)> backward_fn) {
  bool requires_grad = false;
  for (const Var& v : inputs) requires_grad |= v.requires_grad();
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  if (requires_grad) {
    node->parents.reserve(inputs.size());
    for (Var& v : inputs) node->parents.push_back(v.node());
    node->backward_fn = std::move(backward_fn);
  }
  // Without requires_grad the node is a pruned leaf: no parents, no closure.
  return Var(std::move(node));
}

namespace {

enum class BroadcastKind { kSame, kScalar, kBias };

BroadcastKind ClassifyBroadcast(const Tensor& a, const Tensor& b,
                                bool allow_bias) {
  if (a.shape() == b.shape()) return BroadcastKind::kSame;
  if (b.numel() == 1) return BroadcastKind::kScalar;
  if (allow_bias && b.ndim() == 1 && a.ndim() >= 1 &&
      b.dim(0) == a.dim(-1)) {
    return BroadcastKind::kBias;
  }
  CIT_CHECK_MSG(false, "incompatible shapes for elementwise op");
  return BroadcastKind::kSame;
}

// Reduces gradient `g` (shaped like the full output) onto a bias vector of
// length `n` (the last axis), summing over all leading positions.
Tensor ReduceToBias(const Tensor& g, int64_t n) {
  Tensor out(Shape{n});
  const int64_t rows = g.numel() / n;
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = g.data() + r * n;
    for (int64_t i = 0; i < n; ++i) out[i] += src[i];
  }
  return out;
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  const BroadcastKind kind =
      ClassifyBroadcast(a.value(), b.value(), /*allow_bias=*/true);
  Tensor out = a.value();
  switch (kind) {
    case BroadcastKind::kSame:
      out.AddInPlace(b.value());
      break;
    case BroadcastKind::kScalar:
      out = out.AddScalar(b.value()[0]);
      break;
    case BroadcastKind::kBias: {
      const int64_t n = b.value().dim(0);
      const int64_t rows = out.numel() / n;
      for (int64_t r = 0; r < rows; ++r) {
        float* dst = out.data() + r * n;
        for (int64_t i = 0; i < n; ++i) dst[i] += b.value()[i];
      }
      break;
    }
  }
  return MakeOp(std::move(out), {a, b}, [kind](Node& self) {
    Node* pa = self.parents[0].get();
    Node* pb = self.parents[1].get();
    AccumGrad(pa, self.grad);
    if (!pb->requires_grad) return;
    switch (kind) {
      case BroadcastKind::kSame:
        AccumGrad(pb, self.grad);
        break;
      case BroadcastKind::kScalar:
        AccumGrad(pb, Tensor::Scalar(self.grad.Sum())
                          .Reshape(pb->value.shape()));
        break;
      case BroadcastKind::kBias:
        AccumGrad(pb, ReduceToBias(self.grad, pb->value.dim(0)));
        break;
    }
  });
}

Var Sub(const Var& a, const Var& b) {
  const BroadcastKind kind =
      ClassifyBroadcast(a.value(), b.value(), /*allow_bias=*/false);
  Tensor out = a.value();
  if (kind == BroadcastKind::kSame) {
    out.SubInPlace(b.value());
  } else {
    out = out.AddScalar(-b.value()[0]);
  }
  return MakeOp(std::move(out), {a, b}, [kind](Node& self) {
    Node* pa = self.parents[0].get();
    Node* pb = self.parents[1].get();
    AccumGrad(pa, self.grad);
    if (!pb->requires_grad) return;
    if (kind == BroadcastKind::kSame) {
      AccumGrad(pb, self.grad.MulScalar(-1.0f));
    } else {
      AccumGrad(pb, Tensor::Scalar(-self.grad.Sum())
                        .Reshape(pb->value.shape()));
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  const BroadcastKind kind =
      ClassifyBroadcast(a.value(), b.value(), /*allow_bias=*/false);
  Tensor out = (kind == BroadcastKind::kSame) ? a.value().Mul(b.value())
                                              : a.value().MulScalar(
                                                    b.value()[0]);
  return MakeOp(std::move(out), {a, b}, [kind](Node& self) {
    Node* pa = self.parents[0].get();
    Node* pb = self.parents[1].get();
    if (kind == BroadcastKind::kSame) {
      if (pa->requires_grad) AccumGrad(pa, self.grad.Mul(pb->value));
      if (pb->requires_grad) AccumGrad(pb, self.grad.Mul(pa->value));
    } else {
      if (pa->requires_grad) {
        AccumGrad(pa, self.grad.MulScalar(pb->value[0]));
      }
      if (pb->requires_grad) {
        AccumGrad(pb, Tensor::Scalar(self.grad.Mul(pa->value).Sum())
                          .Reshape(pb->value.shape()));
      }
    }
  });
}

Var Div(const Var& a, const Var& b) {
  const BroadcastKind kind =
      ClassifyBroadcast(a.value(), b.value(), /*allow_bias=*/false);
  Tensor out = (kind == BroadcastKind::kSame)
                   ? a.value().Div(b.value())
                   : a.value().MulScalar(1.0f / b.value()[0]);
  return MakeOp(std::move(out), {a, b}, [kind](Node& self) {
    Node* pa = self.parents[0].get();
    Node* pb = self.parents[1].get();
    if (kind == BroadcastKind::kSame) {
      if (pa->requires_grad) AccumGrad(pa, self.grad.Div(pb->value));
      if (pb->requires_grad) {
        // d/db (a/b) = -a / b^2
        Tensor gb = self.grad.Mul(pa->value);
        for (int64_t i = 0; i < gb.numel(); ++i) {
          const float bv = pb->value[i];
          gb[i] = -gb[i] / (bv * bv);
        }
        AccumGrad(pb, gb);
      }
    } else {
      const float bv = pb->value[0];
      if (pa->requires_grad) AccumGrad(pa, self.grad.MulScalar(1.0f / bv));
      if (pb->requires_grad) {
        const float s = self.grad.Mul(pa->value).Sum();
        AccumGrad(pb, Tensor::Scalar(-s / (bv * bv))
                          .Reshape(pb->value.shape()));
      }
    }
  });
}

Var Neg(const Var& a) { return MulScalar(a, -1.0f); }

Var AddScalar(const Var& a, float v) {
  return MakeOp(a.value().AddScalar(v), {a}, [](Node& self) {
    AccumGrad(self.parents[0].get(), self.grad);
  });
}

Var MulScalar(const Var& a, float v) {
  return MakeOp(a.value().MulScalar(v), {a}, [v](Node& self) {
    AccumGrad(self.parents[0].get(), self.grad.MulScalar(v));
  });
}

namespace {

// Shared implementation for elementwise min/max: mask is 1 where a wins.
Var MinMaxImpl(const Var& a, const Var& b, bool is_min) {
  CIT_CHECK(a.value().shape() == b.value().shape());
  const int64_t n = a.numel();
  Tensor out = a.value();
  auto mask = std::make_shared<std::vector<uint8_t>>(n);
  for (int64_t i = 0; i < n; ++i) {
    const bool a_wins = is_min ? (a.value()[i] <= b.value()[i])
                               : (a.value()[i] >= b.value()[i]);
    (*mask)[i] = a_wins ? 1 : 0;
    if (!a_wins) out[i] = b.value()[i];
  }
  return MakeOp(std::move(out), {a, b}, [mask](Node& self) {
    Node* pa = self.parents[0].get();
    Node* pb = self.parents[1].get();
    const int64_t n = self.grad.numel();
    if (pa->requires_grad) {
      Tensor ga(self.grad.shape());
      for (int64_t i = 0; i < n; ++i) {
        if ((*mask)[i]) ga[i] = self.grad[i];
      }
      AccumGrad(pa, ga);
    }
    if (pb->requires_grad) {
      Tensor gb(self.grad.shape());
      for (int64_t i = 0; i < n; ++i) {
        if (!(*mask)[i]) gb[i] = self.grad[i];
      }
      AccumGrad(pb, gb);
    }
  });
}

}  // namespace

Var Min(const Var& a, const Var& b) { return MinMaxImpl(a, b, true); }

Var Max(const Var& a, const Var& b) { return MinMaxImpl(a, b, false); }

Var Clamp(const Var& a, float lo, float hi) {
  Tensor out = a.value();
  for (int64_t i = 0; i < out.numel(); ++i) {
    out[i] = std::min(hi, std::max(lo, out[i]));
  }
  return MakeOp(std::move(out), {a}, [lo, hi](Node& self) {
    Node* pa = self.parents[0].get();
    Tensor g(self.grad.shape());
    for (int64_t i = 0; i < g.numel(); ++i) {
      const float v = pa->value[i];
      if (v > lo && v < hi) g[i] = self.grad[i];
    }
    AccumGrad(pa, g);
  });
}

namespace {

template <typename Fwd, typename Bwd>
Var UnaryOp(const Var& a, Fwd fwd, Bwd bwd_from_inout) {
  Tensor out = a.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] = fwd(out[i]);
  return MakeOp(std::move(out), {a}, [bwd_from_inout](Node& self) {
    Node* pa = self.parents[0].get();
    Tensor g(self.grad.shape());
    for (int64_t i = 0; i < g.numel(); ++i) {
      g[i] = self.grad[i] * bwd_from_inout(pa->value[i], self.value[i]);
    }
    AccumGrad(pa, g);
  });
}

}  // namespace

Var Exp(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Var Log(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Var Tanh(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Var Sigmoid(const Var& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Var Relu(const Var& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Var Sqrt(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / y; });
}

Var Square(const Var& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Var Abs(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::fabs(x); },
      [](float x, float) { return x >= 0.0f ? 1.0f : -1.0f; });
}

Var Sum(const Var& a) {
  return MakeOp(Tensor::Scalar(a.value().Sum()), {a}, [](Node& self) {
    Node* pa = self.parents[0].get();
    AccumGrad(pa, Tensor::Full(pa->value.shape(), self.grad[0]));
  });
}

Var Mean(const Var& a) {
  const float inv_n = 1.0f / static_cast<float>(a.numel());
  return MakeOp(Tensor::Scalar(a.value().Mean()), {a}, [inv_n](Node& self) {
    Node* pa = self.parents[0].get();
    AccumGrad(pa, Tensor::Full(pa->value.shape(), self.grad[0] * inv_n));
  });
}

namespace {

Var SumAxisImpl(const Var& a, int64_t axis, float scale) {
  const Tensor& x = a.value();
  int64_t ax = axis < 0 ? axis + x.ndim() : axis;
  CIT_CHECK(ax >= 0 && ax < x.ndim());
  Tensor out = x.SumAxis(ax);
  if (scale != 1.0f) out.MulScalarInPlace(scale);
  int64_t outer = 1;
  for (int64_t i = 0; i < ax; ++i) outer *= x.dim(i);
  int64_t inner = 1;
  for (int64_t i = ax + 1; i < x.ndim(); ++i) inner *= x.dim(i);
  const int64_t axis_len = x.dim(ax);
  return MakeOp(std::move(out), {a},
                [outer, inner, axis_len, scale](Node& self) {
                  Node* pa = self.parents[0].get();
                  Tensor g(pa->value.shape());
                  for (int64_t o = 0; o < outer; ++o) {
                    const float* src = self.grad.data() + o * inner;
                    for (int64_t k = 0; k < axis_len; ++k) {
                      float* dst = g.data() + (o * axis_len + k) * inner;
                      for (int64_t i = 0; i < inner; ++i) {
                        dst[i] = src[i] * scale;
                      }
                    }
                  }
                  AccumGrad(pa, g);
                });
}

}  // namespace

Var SumAxis(const Var& a, int64_t axis) { return SumAxisImpl(a, axis, 1.0f); }

Var MeanAxis(const Var& a, int64_t axis) {
  int64_t ax = axis < 0 ? axis + a.value().ndim() : axis;
  const float scale = 1.0f / static_cast<float>(a.value().dim(ax));
  return SumAxisImpl(a, ax, scale);
}

Var MatMul(const Var& a, const Var& b) {
  Tensor out = Tensor::MatMul(a.value(), b.value());
  return MakeOp(std::move(out), {a, b}, [](Node& self) {
    Node* pa = self.parents[0].get();
    Node* pb = self.parents[1].get();
    if (pa->requires_grad) {
      AccumGrad(pa, Tensor::MatMul(self.grad, pb->value.Transpose2D()));
    }
    if (pb->requires_grad) {
      AccumGrad(pb, Tensor::MatMul(pa->value.Transpose2D(), self.grad));
    }
  });
}

Var Transpose(const Var& a) {
  return MakeOp(a.value().Transpose2D(), {a}, [](Node& self) {
    AccumGrad(self.parents[0].get(), self.grad.Transpose2D());
  });
}

Var Reshape(const Var& a, Shape shape) {
  Tensor out = a.value().Reshape(std::move(shape));
  return MakeOp(std::move(out), {a}, [](Node& self) {
    Node* pa = self.parents[0].get();
    AccumGrad(pa, self.grad.Reshape(pa->value.shape()));
  });
}

namespace {

Tensor PermuteTensor(const Tensor& x, const std::vector<int64_t>& perm) {
  const int64_t nd = x.ndim();
  CIT_CHECK_EQ(static_cast<int64_t>(perm.size()), nd);
  Shape out_shape(nd);
  for (int64_t i = 0; i < nd; ++i) out_shape[i] = x.dim(perm[i]);
  Tensor out(out_shape);
  // Strides of the input.
  std::vector<int64_t> in_strides(nd, 1);
  for (int64_t i = nd - 2; i >= 0; --i) {
    in_strides[i] = in_strides[i + 1] * x.dim(i + 1);
  }
  std::vector<int64_t> idx(nd, 0);
  const int64_t n = x.numel();
  for (int64_t flat = 0; flat < n; ++flat) {
    int64_t src = 0;
    for (int64_t i = 0; i < nd; ++i) src += idx[i] * in_strides[perm[i]];
    out[flat] = x[src];
    // Advance the multi-index over the *output* shape.
    for (int64_t i = nd - 1; i >= 0; --i) {
      if (++idx[i] < out_shape[i]) break;
      idx[i] = 0;
    }
  }
  return out;
}

}  // namespace

Var Permute(const Var& a, std::vector<int64_t> perm) {
  Tensor out = PermuteTensor(a.value(), perm);
  const int64_t nd = a.value().ndim();
  std::vector<int64_t> inverse(nd);
  for (int64_t i = 0; i < nd; ++i) inverse[perm[i]] = i;
  return MakeOp(std::move(out), {a}, [inverse](Node& self) {
    AccumGrad(self.parents[0].get(), PermuteTensor(self.grad, inverse));
  });
}

Var Concat(const std::vector<Var>& parts, int64_t axis) {
  CIT_CHECK(!parts.empty());
  const Tensor& first = parts[0].value();
  int64_t ax = axis < 0 ? axis + first.ndim() : axis;
  CIT_CHECK(ax >= 0 && ax < first.ndim());
  Shape out_shape = first.shape();
  int64_t total = 0;
  for (const Var& p : parts) {
    CIT_CHECK_EQ(p.value().ndim(), first.ndim());
    for (int64_t i = 0; i < first.ndim(); ++i) {
      if (i != ax) CIT_CHECK_EQ(p.value().dim(i), first.dim(i));
    }
    total += p.value().dim(ax);
  }
  out_shape[ax] = total;
  Tensor out(out_shape);
  int64_t outer = 1;
  for (int64_t i = 0; i < ax; ++i) outer *= first.dim(i);
  int64_t inner = 1;
  for (int64_t i = ax + 1; i < first.ndim(); ++i) inner *= first.dim(i);
  std::vector<int64_t> part_lens;
  part_lens.reserve(parts.size());
  for (const Var& p : parts) part_lens.push_back(p.value().dim(ax));
  // Copy each part's rows into the right offset of the output.
  int64_t offset = 0;
  for (size_t pi = 0; pi < parts.size(); ++pi) {
    const Tensor& x = parts[pi].value();
    const int64_t len = part_lens[pi];
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = x.data() + o * len * inner;
      float* dst = out.data() + (o * total + offset) * inner;
      std::copy(src, src + len * inner, dst);
    }
    offset += len;
  }
  return MakeOp(std::move(out), parts,
                [part_lens, outer, inner, total](Node& self) {
                  int64_t offset = 0;
                  for (size_t pi = 0; pi < self.parents.size(); ++pi) {
                    Node* p = self.parents[pi].get();
                    const int64_t len = part_lens[pi];
                    if (p->requires_grad) {
                      Tensor g(p->value.shape());
                      for (int64_t o = 0; o < outer; ++o) {
                        const float* src =
                            self.grad.data() + (o * total + offset) * inner;
                        float* dst = g.data() + o * len * inner;
                        std::copy(src, src + len * inner, dst);
                      }
                      AccumGrad(p, g);
                    }
                    offset += len;
                  }
                });
}

Var Slice(const Var& a, int64_t axis, int64_t start, int64_t len) {
  const Tensor& x = a.value();
  int64_t ax = axis < 0 ? axis + x.ndim() : axis;
  Tensor out = x.Slice(ax, start, len);
  int64_t outer = 1;
  for (int64_t i = 0; i < ax; ++i) outer *= x.dim(i);
  int64_t inner = 1;
  for (int64_t i = ax + 1; i < x.ndim(); ++i) inner *= x.dim(i);
  const int64_t axis_len = x.dim(ax);
  return MakeOp(std::move(out), {a},
                [outer, inner, axis_len, start, len](Node& self) {
                  Node* pa = self.parents[0].get();
                  Tensor g(pa->value.shape());
                  for (int64_t o = 0; o < outer; ++o) {
                    const float* src = self.grad.data() + o * len * inner;
                    float* dst =
                        g.data() + (o * axis_len + start) * inner;
                    std::copy(src, src + len * inner, dst);
                  }
                  AccumGrad(pa, g);
                });
}

namespace {

// Numerically-stable softmax over the last axis of [outer, n].
Tensor SoftmaxTensor(const Tensor& x) {
  const int64_t n = x.dim(-1);
  const int64_t outer = x.numel() / n;
  Tensor out = x;
  for (int64_t o = 0; o < outer; ++o) {
    float* row = out.data() + o * n;
    float mx = row[0];
    for (int64_t i = 1; i < n; ++i) mx = std::max(mx, row[i]);
    float total = 0.0f;
    for (int64_t i = 0; i < n; ++i) {
      row[i] = std::exp(row[i] - mx);
      total += row[i];
    }
    for (int64_t i = 0; i < n; ++i) row[i] /= total;
  }
  return out;
}

}  // namespace

Var Softmax(const Var& a) {
  Tensor out = SoftmaxTensor(a.value());
  const int64_t n = a.value().dim(-1);
  return MakeOp(std::move(out), {a}, [n](Node& self) {
    Node* pa = self.parents[0].get();
    const int64_t outer = self.value.numel() / n;
    Tensor g(pa->value.shape());
    for (int64_t o = 0; o < outer; ++o) {
      const float* s = self.value.data() + o * n;
      const float* gy = self.grad.data() + o * n;
      float dot = 0.0f;
      for (int64_t i = 0; i < n; ++i) dot += gy[i] * s[i];
      float* gx = g.data() + o * n;
      for (int64_t i = 0; i < n; ++i) gx[i] = s[i] * (gy[i] - dot);
    }
    AccumGrad(pa, g);
  });
}

Var LogSoftmax(const Var& a) {
  const Tensor& x = a.value();
  const int64_t n = x.dim(-1);
  const int64_t outer = x.numel() / n;
  Tensor out = x;
  for (int64_t o = 0; o < outer; ++o) {
    float* row = out.data() + o * n;
    float mx = row[0];
    for (int64_t i = 1; i < n; ++i) mx = std::max(mx, row[i]);
    float total = 0.0f;
    for (int64_t i = 0; i < n; ++i) total += std::exp(row[i] - mx);
    const float lse = mx + std::log(total);
    for (int64_t i = 0; i < n; ++i) row[i] -= lse;
  }
  return MakeOp(std::move(out), {a}, [n](Node& self) {
    Node* pa = self.parents[0].get();
    const int64_t outer = self.value.numel() / n;
    Tensor g(pa->value.shape());
    for (int64_t o = 0; o < outer; ++o) {
      const float* y = self.value.data() + o * n;
      const float* gy = self.grad.data() + o * n;
      float total = 0.0f;
      for (int64_t i = 0; i < n; ++i) total += gy[i];
      float* gx = g.data() + o * n;
      for (int64_t i = 0; i < n; ++i) {
        gx[i] = gy[i] - std::exp(y[i]) * total;
      }
    }
    AccumGrad(pa, g);
  });
}

Var CausalConv1d(const Var& x, const Var& w, const Var& b, int64_t dilation) {
  const Tensor& xv = x.value();
  const Tensor& wv = w.value();
  CIT_CHECK_EQ(xv.ndim(), 3);
  CIT_CHECK_EQ(wv.ndim(), 3);
  const int64_t batch = xv.dim(0);
  const int64_t cin = xv.dim(1);
  const int64_t len = xv.dim(2);
  const int64_t cout = wv.dim(0);
  CIT_CHECK_EQ(wv.dim(1), cin);
  const int64_t ksize = wv.dim(2);
  CIT_CHECK_GE(dilation, 1);
  const bool has_bias = b.defined();
  if (has_bias) {
    CIT_CHECK_EQ(b.value().ndim(), 1);
    CIT_CHECK_EQ(b.value().dim(0), cout);
  }

  Tensor out(Shape{batch, cout, len});
  for (int64_t bi = 0; bi < batch; ++bi) {
    for (int64_t co = 0; co < cout; ++co) {
      float* orow = out.data() + (bi * cout + co) * len;
      if (has_bias) {
        const float bias = b.value()[co];
        for (int64_t t = 0; t < len; ++t) orow[t] = bias;
      }
      for (int64_t ci = 0; ci < cin; ++ci) {
        const float* xrow = xv.data() + (bi * cin + ci) * len;
        const float* wrow = wv.data() + (co * cin + ci) * ksize;
        for (int64_t k = 0; k < ksize; ++k) {
          // Tap k reads the sample `shift` steps in the past (causal).
          const int64_t shift = (ksize - 1 - k) * dilation;
          const float wk = wrow[k];
          if (wk == 0.0f) continue;
          for (int64_t t = shift; t < len; ++t) {
            orow[t] += wk * xrow[t - shift];
          }
        }
      }
    }
  }

  std::vector<Var> inputs = {x, w};
  if (has_bias) inputs.push_back(b);
  return MakeOp(
      std::move(out), std::move(inputs),
      [batch, cin, cout, len, ksize, dilation, has_bias](Node& self) {
        Node* px = self.parents[0].get();
        Node* pw = self.parents[1].get();
        Node* pb = has_bias ? self.parents[2].get() : nullptr;
        Tensor gx(px->value.shape());
        Tensor gw(pw->value.shape());
        Tensor gb = has_bias ? Tensor(pb->value.shape()) : Tensor();
        for (int64_t bi = 0; bi < batch; ++bi) {
          for (int64_t co = 0; co < cout; ++co) {
            const float* grow = self.grad.data() + (bi * cout + co) * len;
            if (has_bias) {
              float s = 0.0f;
              for (int64_t t = 0; t < len; ++t) s += grow[t];
              gb[co] += s;
            }
            for (int64_t ci = 0; ci < cin; ++ci) {
              const float* xrow = px->value.data() + (bi * cin + ci) * len;
              const float* wrow = pw->value.data() + (co * cin + ci) * ksize;
              float* gxrow = gx.data() + (bi * cin + ci) * len;
              float* gwrow = gw.data() + (co * cin + ci) * ksize;
              for (int64_t k = 0; k < ksize; ++k) {
                const int64_t shift = (ksize - 1 - k) * dilation;
                const float wk = wrow[k];
                float gwk = 0.0f;
                for (int64_t t = shift; t < len; ++t) {
                  const float g = grow[t];
                  gxrow[t - shift] += wk * g;
                  gwk += g * xrow[t - shift];
                }
                gwrow[k] += gwk;
              }
            }
          }
        }
        AccumGrad(px, gx);
        AccumGrad(pw, gw);
        if (has_bias) AccumGrad(pb, gb);
      });
}

}  // namespace cit::ag
