#include "math/autograd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <unordered_set>

#include "common/check.h"
#include "math/kernels.h"
#include "math/plan.h"

namespace cit::ag {

namespace kernels = math::kernels;

namespace {

// CIT_NOGRAD=0 disables the inference fast path process-wide; any other
// value (or unset) leaves it available.
bool InitialNoGradAllowed() {
  const char* v = std::getenv("CIT_NOGRAD");
  return !(v != nullptr && v[0] == '0' && v[1] == '\0');
}

std::atomic<bool> g_nograd_allowed{InitialNoGradAllowed()};

}  // namespace

void SetNoGradAllowed(bool allowed) {
  g_nograd_allowed.store(allowed, std::memory_order_relaxed);
}

bool NoGradAllowed() {
  return g_nograd_allowed.load(std::memory_order_relaxed);
}

NoGradGuard::NoGradGuard()
    : prev_(detail::GradEnabledFlag()), arena_(NoGradAllowed()) {
  if (NoGradAllowed()) detail::GradEnabledFlag() = false;
}

NoGradGuard::~NoGradGuard() { detail::GradEnabledFlag() = prev_; }

void AccumGrad(Node* n, const Tensor& g) {
  if (n == nullptr || !n->requires_grad) return;
  if (!n->has_grad) {
    n->grad = g;  // COW handle copy: shares g's storage until mutated
    n->has_grad = true;
  } else {
    n->grad.AddInPlace(g);
  }
}

namespace {

// Node fields are non-const lvalues inside backward closures, so a bare
// t.data() there would pick the mutable overload and force a needless COW
// detach. Routing reads through a const ref keeps them zero-copy.
const float* CData(const Tensor& t) { return t.data(); }

// Ensures n->grad exists (zero-filled on first touch) and returns a mutable
// pointer into it, so backward passes can accumulate region-by-region
// without materializing a separate full-size gradient first.
float* GradAccumPtr(Node* n) {
  if (!n->has_grad) {
    n->grad = Tensor(n->value.shape());
    n->has_grad = true;
  }
  return n->grad.data();
}

}  // namespace

Var::Var(Tensor value, bool requires_grad) {
  // Constants created while grads are off skip the Node entirely; trainable
  // leaves always get one (parameters must outlive any guard).
  if (!requires_grad && !GradEnabled()) {
    const_value_ = std::move(value);
    is_const_ = true;
    return;
  }
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Var Var::Param(Tensor value) { return Var(std::move(value), true); }

Var Var::Constant(Tensor value) { return Var(std::move(value), false); }

const Tensor& Var::value() const {
  CIT_CHECK(defined());
  return node_ ? node_->value : const_value_;
}

Tensor& Var::mutable_value() {
  CIT_CHECK(defined());
  if (node_ == nullptr) return const_value_;
  // Every parameter mutation funnels through here (optimizer Step,
  // CopyParameters/SoftUpdate, checkpoint restore, LoadParameters), so the
  // version bump is what keeps compiled plans from replaying stale weights.
  ++node_->version;
  return node_->value;
}

const Tensor& Var::grad() const {
  CIT_CHECK(node_ != nullptr);
  CIT_CHECK_MSG(node_->has_grad, "gradient not populated; call Backward()");
  return node_->grad;
}

Tensor& Var::mutable_grad() {
  CIT_CHECK(node_ != nullptr);
  CIT_CHECK_MSG(node_->has_grad, "gradient not populated; call Backward()");
  return node_->grad;
}

void Var::ZeroGrad() {
  CIT_CHECK(defined());
  if (node_ == nullptr) return;  // node-free constants never hold gradients
  node_->has_grad = false;
  node_->grad = Tensor();
}

void Var::Backward() {
  CIT_CHECK_MSG(node_ != nullptr,
                "Backward() on a graph-free Var: this value was computed "
                "under NoGradGuard, so no tape exists to differentiate");
  CIT_CHECK_MSG(node_->value.numel() == 1 &&
                    node_->value.shape() == Shape{1},
                "Backward() root must be a scalar of shape [1]; reduce the "
                "output with Sum()/Mean() before differentiating");
  // Iterative post-order DFS to get a reverse topological order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (node_->requires_grad) {
    stack.push_back({node_.get(), 0});
    visited.insert(node_.get());
  }
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && visited.insert(p).second) {
        stack.push_back({p, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
  AccumGrad(node_.get(), Tensor::Ones(node_->value.shape()));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn) {
      if (n->has_grad) n->backward_fn(*n);
      // The tape is single-shot: release the closure (and every tensor it
      // captured) as soon as this node has propagated, so peak memory
      // shrinks while the backward pass is still running.
      n->backward_fn = nullptr;
    }
  }
}

Var Var::Detach() const { return Var::Constant(value()); }

Var MakeOpImpl(Tensor value, std::vector<Var> inputs,
               std::function<void(Node&)> backward_fn) {
  bool requires_grad = false;
  for (const Var& v : inputs) requires_grad |= v.requires_grad();
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  if (requires_grad) {
    node->parents.reserve(inputs.size());
    for (Var& v : inputs) {
      std::shared_ptr<Node> p = v.node();
      if (p == nullptr && v.defined()) {
        // A node-free constant (produced under an earlier NoGradGuard) is
        // feeding a graph op: lift it to a constant leaf so backward
        // closures can read parents[i]->value.
        p = std::make_shared<Node>();
        p->value = v.value();
      }
      node->parents.push_back(std::move(p));
    }
    node->backward_fn = std::move(backward_fn);
  }
  // Without requires_grad the node is a pruned leaf: no parents, no closure.
  return Var(std::move(node));
}

namespace {

enum class BroadcastKind { kSame, kScalar, kBias };

BroadcastKind ClassifyBroadcast(const Tensor& a, const Tensor& b,
                                bool allow_bias) {
  if (a.shape() == b.shape()) return BroadcastKind::kSame;
  if (b.numel() == 1) return BroadcastKind::kScalar;
  if (allow_bias && b.ndim() == 1 && a.ndim() >= 1 &&
      b.dim(0) == a.dim(-1)) {
    return BroadcastKind::kBias;
  }
  CIT_CHECK_MSG(false, "incompatible shapes for elementwise op");
  return BroadcastKind::kSame;
}

// Reduces gradient `g` (shaped like the full output) onto a bias vector of
// length `n` (the last axis), summing over all leading positions.
Tensor ReduceToBias(const Tensor& g, int64_t n) {
  Tensor out(Shape{n});
  float* dst = out.data();
  const int64_t rows = g.numel() / n;
  const float* src = g.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t i = 0; i < n; ++i) dst[i] += src[r * n + i];
  }
  return out;
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  const BroadcastKind kind =
      ClassifyBroadcast(a.value(), b.value(), /*allow_bias=*/true);
  Tensor out;
  switch (kind) {
    case BroadcastKind::kSame:
      out = a.value().Add(b.value());
      break;
    case BroadcastKind::kScalar:
      out = a.value().AddScalar(b.value()[0]);
      break;
    case BroadcastKind::kBias: {
      out = Tensor(a.value().shape());
      const int64_t n = b.value().dim(0);
      const int64_t rows = out.numel() / n;
      const float* pa = a.value().data();
      const float* pb = b.value().data();
      float* po = out.data();
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t i = 0; i < n; ++i) po[r * n + i] = pa[r * n + i] + pb[i];
      }
      break;
    }
  }
  if (plan::Recording()) {
    const int64_t n = out.numel();
    switch (kind) {
      case BroadcastKind::kSame:
        plan::RecordStep(out, {&a, &b},
                         [n](const float* const* ins, float* o) {
                           kernels::Add(ins[0], ins[1], o, n);
                         });
        break;
      case BroadcastKind::kScalar:
        // The scalar operand is read at replay time, so a varying scalar
        // input replays correctly.
        plan::RecordStep(out, {&a, &b},
                         [n](const float* const* ins, float* o) {
                           kernels::AddScalar(ins[0], ins[1][0], o, n);
                         });
        break;
      case BroadcastKind::kBias: {
        const int64_t bn = b.value().dim(0);
        const int64_t rows = n / bn;
        plan::RecordStep(out, {&a, &b},
                         [rows, bn](const float* const* ins, float* o) {
                           const float* pa = ins[0];
                           const float* pb = ins[1];
                           for (int64_t r = 0; r < rows; ++r) {
                             for (int64_t i = 0; i < bn; ++i) {
                               o[r * bn + i] = pa[r * bn + i] + pb[i];
                             }
                           }
                         });
        break;
      }
    }
  }
  return MakeOp(std::move(out), {a, b}, [kind](Node& self) {
    Node* pa = self.parents[0].get();
    Node* pb = self.parents[1].get();
    AccumGrad(pa, self.grad);
    if (!pb->requires_grad) return;
    switch (kind) {
      case BroadcastKind::kSame:
        AccumGrad(pb, self.grad);
        break;
      case BroadcastKind::kScalar:
        AccumGrad(pb, Tensor::Scalar(self.grad.Sum())
                          .Reshape(pb->value.shape()));
        break;
      case BroadcastKind::kBias:
        AccumGrad(pb, ReduceToBias(self.grad, pb->value.dim(0)));
        break;
    }
  });
}

Var Sub(const Var& a, const Var& b) {
  const BroadcastKind kind =
      ClassifyBroadcast(a.value(), b.value(), /*allow_bias=*/false);
  Tensor out = (kind == BroadcastKind::kSame)
                   ? a.value().Sub(b.value())
                   : a.value().AddScalar(-b.value()[0]);
  if (plan::Recording()) {
    const int64_t n = out.numel();
    if (kind == BroadcastKind::kSame) {
      plan::RecordStep(out, {&a, &b},
                       [n](const float* const* ins, float* o) {
                         kernels::Sub(ins[0], ins[1], o, n);
                       });
    } else {
      plan::RecordStep(out, {&a, &b},
                       [n](const float* const* ins, float* o) {
                         kernels::AddScalar(ins[0], -ins[1][0], o, n);
                       });
    }
  }
  return MakeOp(std::move(out), {a, b}, [kind](Node& self) {
    Node* pa = self.parents[0].get();
    Node* pb = self.parents[1].get();
    AccumGrad(pa, self.grad);
    if (!pb->requires_grad) return;
    if (kind == BroadcastKind::kSame) {
      AccumGrad(pb, self.grad.MulScalar(-1.0f));
    } else {
      AccumGrad(pb, Tensor::Scalar(-self.grad.Sum())
                        .Reshape(pb->value.shape()));
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  const BroadcastKind kind =
      ClassifyBroadcast(a.value(), b.value(), /*allow_bias=*/false);
  Tensor out = (kind == BroadcastKind::kSame) ? a.value().Mul(b.value())
                                              : a.value().MulScalar(
                                                    b.value()[0]);
  if (plan::Recording()) {
    const int64_t n = out.numel();
    if (kind == BroadcastKind::kSame) {
      plan::RecordStep(out, {&a, &b},
                       [n](const float* const* ins, float* o) {
                         kernels::Mul(ins[0], ins[1], o, n);
                       });
    } else {
      plan::RecordStep(out, {&a, &b},
                       [n](const float* const* ins, float* o) {
                         kernels::MulScalar(ins[0], ins[1][0], o, n);
                       });
    }
  }
  return MakeOp(std::move(out), {a, b}, [kind](Node& self) {
    Node* pa = self.parents[0].get();
    Node* pb = self.parents[1].get();
    if (kind == BroadcastKind::kSame) {
      if (pa->requires_grad) AccumGrad(pa, self.grad.Mul(pb->value));
      if (pb->requires_grad) AccumGrad(pb, self.grad.Mul(pa->value));
    } else {
      if (pa->requires_grad) {
        AccumGrad(pa, self.grad.MulScalar(pb->value[0]));
      }
      if (pb->requires_grad) {
        AccumGrad(pb, Tensor::Scalar(self.grad.Mul(pa->value).Sum())
                          .Reshape(pb->value.shape()));
      }
    }
  });
}

Var Div(const Var& a, const Var& b) {
  const BroadcastKind kind =
      ClassifyBroadcast(a.value(), b.value(), /*allow_bias=*/false);
  Tensor out = (kind == BroadcastKind::kSame)
                   ? a.value().Div(b.value())
                   : a.value().MulScalar(1.0f / b.value()[0]);
  if (plan::Recording()) {
    const int64_t n = out.numel();
    if (kind == BroadcastKind::kSame) {
      plan::RecordStep(out, {&a, &b},
                       [n](const float* const* ins, float* o) {
                         kernels::Div(ins[0], ins[1], o, n);
                       });
    } else {
      plan::RecordStep(out, {&a, &b},
                       [n](const float* const* ins, float* o) {
                         kernels::MulScalar(ins[0], 1.0f / ins[1][0], o, n);
                       });
    }
  }
  return MakeOp(std::move(out), {a, b}, [kind](Node& self) {
    Node* pa = self.parents[0].get();
    Node* pb = self.parents[1].get();
    if (kind == BroadcastKind::kSame) {
      if (pa->requires_grad) AccumGrad(pa, self.grad.Div(pb->value));
      if (pb->requires_grad) {
        // d/db (a/b) = -a / b^2
        Tensor gb(pb->value.shape());
        kernels::Map3(CData(self.grad), CData(pa->value), CData(pb->value),
                      gb.data(), gb.numel(),
                      [](float g, float av, float bv) {
                        return -(g * av) / (bv * bv);
                      });
        AccumGrad(pb, gb);
      }
    } else {
      const float bv = pb->value[0];
      if (pa->requires_grad) AccumGrad(pa, self.grad.MulScalar(1.0f / bv));
      if (pb->requires_grad) {
        const float s = self.grad.Mul(pa->value).Sum();
        AccumGrad(pb, Tensor::Scalar(-s / (bv * bv))
                          .Reshape(pb->value.shape()));
      }
    }
  });
}

Var Neg(const Var& a) { return MulScalar(a, -1.0f); }

Var AddScalar(const Var& a, float v) {
  Tensor out = a.value().AddScalar(v);
  if (plan::Recording()) {
    plan::RecordElem(out, a, {kernels::ElemOpKind::kAddScalar, v});
  }
  return MakeOp(std::move(out), {a}, [](Node& self) {
    AccumGrad(self.parents[0].get(), self.grad);
  });
}

Var MulScalar(const Var& a, float v) {
  Tensor out = a.value().MulScalar(v);
  if (plan::Recording()) {
    plan::RecordElem(out, a, {kernels::ElemOpKind::kMulScalar, v});
  }
  return MakeOp(std::move(out), {a}, [v](Node& self) {
    AccumGrad(self.parents[0].get(), self.grad.MulScalar(v));
  });
}

namespace {

// Shared implementation for elementwise min/max: mask is 1 where a wins.
Var MinMaxImpl(const Var& a, const Var& b, bool is_min) {
  CIT_CHECK(a.value().shape() == b.value().shape());
  const int64_t n = a.numel();
  Tensor out(a.value().shape());
  // The winner mask only feeds the backward pass; skip it under NoGradGuard
  // (the closure below is discarded unseen there).
  auto mask = GradEnabled() ? std::make_shared<std::vector<uint8_t>>(n)
                            : nullptr;
  {
    const float* pa = a.value().data();
    const float* pb = b.value().data();
    float* po = out.data();
    for (int64_t i = 0; i < n; ++i) {
      const bool a_wins = is_min ? (pa[i] <= pb[i]) : (pa[i] >= pb[i]);
      if (mask) (*mask)[i] = a_wins ? 1 : 0;
      po[i] = a_wins ? pa[i] : pb[i];
    }
  }
  if (plan::Recording()) {
    plan::RecordStep(out, {&a, &b},
                     [n, is_min](const float* const* ins, float* o) {
                       const float* pa = ins[0];
                       const float* pb = ins[1];
                       for (int64_t i = 0; i < n; ++i) {
                         const bool a_wins =
                             is_min ? (pa[i] <= pb[i]) : (pa[i] >= pb[i]);
                         o[i] = a_wins ? pa[i] : pb[i];
                       }
                     });
  }
  return MakeOp(std::move(out), {a, b}, [mask](Node& self) {
    Node* pa = self.parents[0].get();
    Node* pb = self.parents[1].get();
    const int64_t n = self.grad.numel();
    const float* g = CData(self.grad);
    if (pa->requires_grad) {
      Tensor ga(self.grad.shape());
      float* p = ga.data();
      for (int64_t i = 0; i < n; ++i) {
        if ((*mask)[i]) p[i] = g[i];
      }
      AccumGrad(pa, ga);
    }
    if (pb->requires_grad) {
      Tensor gb(self.grad.shape());
      float* p = gb.data();
      for (int64_t i = 0; i < n; ++i) {
        if (!(*mask)[i]) p[i] = g[i];
      }
      AccumGrad(pb, gb);
    }
  });
}

}  // namespace

Var Min(const Var& a, const Var& b) { return MinMaxImpl(a, b, true); }

Var Max(const Var& a, const Var& b) { return MinMaxImpl(a, b, false); }

Var Clamp(const Var& a, float lo, float hi) {
  Tensor out(a.value().shape());
  const kernels::ElemOp op{kernels::ElemOpKind::kClamp, lo, hi};
  kernels::Map(a.value().data(), out.data(), out.numel(),
               [op](float x) { return kernels::ElemApply(op, x); });
  if (plan::Recording()) plan::RecordElem(out, a, op);
  return MakeOp(std::move(out), {a}, [lo, hi](Node& self) {
    Node* pa = self.parents[0].get();
    Tensor g(self.grad.shape());
    kernels::Map2(CData(self.grad), CData(pa->value), g.data(), g.numel(),
                  [lo, hi](float gy, float x) {
                    return (x > lo && x < hi) ? gy : 0.0f;
                  });
    AccumGrad(pa, g);
  });
}

namespace {

// The forward formula comes from kernels::ElemApply so the interpreted
// path, an unfused replay, and a fused sweep all evaluate the identical
// scalar expression.
template <typename Bwd>
Var UnaryOp(const Var& a, kernels::ElemOpKind kind, Bwd bwd_from_inout) {
  Tensor out(a.value().shape());
  const kernels::ElemOp op{kind};
  kernels::Map(a.value().data(), out.data(), out.numel(),
               [op](float x) { return kernels::ElemApply(op, x); });
  if (plan::Recording()) plan::RecordElem(out, a, op);
  return MakeOp(std::move(out), {a}, [bwd_from_inout](Node& self) {
    Node* pa = self.parents[0].get();
    Tensor g(self.grad.shape());
    kernels::Map3(CData(self.grad), CData(pa->value), CData(self.value),
                  g.data(), g.numel(),
                  [bwd_from_inout](float gy, float x, float y) {
                    return gy * bwd_from_inout(x, y);
                  });
    AccumGrad(pa, g);
  });
}

}  // namespace

Var Exp(const Var& a) {
  return UnaryOp(a, kernels::ElemOpKind::kExp,
                 [](float, float y) { return y; });
}

Var Log(const Var& a) {
#ifndef NDEBUG
  // The header promises "caller guarantees positive input"; a violation
  // would otherwise surface as a downstream NaN far from the culprit.
  // Enforced per element in debug builds only (too hot for release).
  {
    const Tensor& x = a.value();
    const float* p = x.data();
    for (int64_t i = 0; i < x.numel(); ++i) {
      CIT_DCHECK_MSG(std::isfinite(p[i]) && p[i] > 0.0f,
                     "ag::Log input must be finite and positive");
    }
  }
#endif
  return UnaryOp(a, kernels::ElemOpKind::kLog,
                 [](float x, float) { return 1.0f / x; });
}

Var Tanh(const Var& a) {
  return UnaryOp(a, kernels::ElemOpKind::kTanh,
                 [](float, float y) { return 1.0f - y * y; });
}

Var Sigmoid(const Var& a) {
  return UnaryOp(a, kernels::ElemOpKind::kSigmoid,
                 [](float, float y) { return y * (1.0f - y); });
}

Var Relu(const Var& a) {
  return UnaryOp(a, kernels::ElemOpKind::kRelu,
                 [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Var Sqrt(const Var& a) {
  return UnaryOp(a, kernels::ElemOpKind::kSqrt,
                 [](float, float y) { return 0.5f / y; });
}

Var Square(const Var& a) {
  return UnaryOp(a, kernels::ElemOpKind::kSquare,
                 [](float x, float) { return 2.0f * x; });
}

Var Abs(const Var& a) {
  return UnaryOp(a, kernels::ElemOpKind::kAbs,
                 [](float x, float) { return x >= 0.0f ? 1.0f : -1.0f; });
}

Var Sum(const Var& a) {
  Tensor out = Tensor::Scalar(a.value().Sum());
  if (plan::Recording()) {
    const int64_t n = a.numel();
    plan::RecordStep(out, {&a}, [n](const float* const* ins, float* o) {
      o[0] = static_cast<float>(kernels::Sum(ins[0], n));
    });
  }
  return MakeOp(std::move(out), {a}, [](Node& self) {
    Node* pa = self.parents[0].get();
    AccumGrad(pa, Tensor::Full(pa->value.shape(), CData(self.grad)[0]));
  });
}

Var Mean(const Var& a) {
  const float inv_n = 1.0f / static_cast<float>(a.numel());
  Tensor out = Tensor::Scalar(a.value().Mean());
  if (plan::Recording()) {
    const int64_t n = a.numel();
    plan::RecordStep(out, {&a}, [n](const float* const* ins, float* o) {
      // Same float sequence as Tensor::Mean: float(Sum) / float(n).
      o[0] = static_cast<float>(kernels::Sum(ins[0], n)) /
             static_cast<float>(n);
    });
  }
  return MakeOp(std::move(out), {a}, [inv_n](Node& self) {
    Node* pa = self.parents[0].get();
    AccumGrad(pa,
              Tensor::Full(pa->value.shape(), CData(self.grad)[0] * inv_n));
  });
}

namespace {

Var SumAxisImpl(const Var& a, int64_t axis, float scale) {
  const Tensor& x = a.value();
  int64_t ax = axis < 0 ? axis + x.ndim() : axis;
  CIT_CHECK(ax >= 0 && ax < x.ndim());
  Tensor out = x.SumAxis(ax);
  if (scale != 1.0f) out.MulScalarInPlace(scale);
  int64_t outer = 1;
  for (int64_t i = 0; i < ax; ++i) outer *= x.dim(i);
  int64_t inner = 1;
  for (int64_t i = ax + 1; i < x.ndim(); ++i) inner *= x.dim(i);
  const int64_t axis_len = x.dim(ax);
  if (plan::Recording()) {
    plan::RecordStep(out, {&a},
                     [outer, axis_len, inner,
                      scale](const float* const* ins, float* o) {
                       kernels::SumAxis(ins[0], o, outer, axis_len, inner);
                       if (scale != 1.0f) {
                         kernels::ScaleInto(o, scale, outer * inner);
                       }
                     });
  }
  return MakeOp(std::move(out), {a},
                [outer, inner, axis_len, scale](Node& self) {
                  Node* pa = self.parents[0].get();
                  Tensor g(pa->value.shape());
                  float* dst_base = g.data();
                  const float* src_base = CData(self.grad);
                  for (int64_t o = 0; o < outer; ++o) {
                    const float* src = src_base + o * inner;
                    for (int64_t k = 0; k < axis_len; ++k) {
                      float* dst = dst_base + (o * axis_len + k) * inner;
                      for (int64_t i = 0; i < inner; ++i) {
                        dst[i] = src[i] * scale;
                      }
                    }
                  }
                  AccumGrad(pa, g);
                });
}

}  // namespace

Var SumAxis(const Var& a, int64_t axis) { return SumAxisImpl(a, axis, 1.0f); }

Var MeanAxis(const Var& a, int64_t axis) {
  int64_t ax = axis < 0 ? axis + a.value().ndim() : axis;
  const float scale = 1.0f / static_cast<float>(a.value().dim(ax));
  return SumAxisImpl(a, ax, scale);
}

Var MatMul(const Var& a, const Var& b) {
  Tensor out = Tensor::MatMul(a.value(), b.value());
  if (plan::Recording()) {
    const int64_t p = a.value().dim(0);
    const int64_t q = a.value().dim(1);
    const int64_t r = b.value().dim(1);
    plan::RecordStep(out, {&a, &b},
                     [p, q, r](const float* const* ins, float* o) {
                       kernels::MatMul(ins[0], ins[1], o, p, q, r);
                     });
  }
  return MakeOp(std::move(out), {a, b}, [](Node& self) {
    Node* pa = self.parents[0].get();
    Node* pb = self.parents[1].get();
    const int64_t p = pa->value.dim(0);
    const int64_t q = pa->value.dim(1);
    const int64_t r = pb->value.dim(1);
    if (pa->requires_grad) {
      // grad_a = g @ b^T, reading b in its stored layout.
      Tensor ga(pa->value.shape());
      kernels::MatMulTransB(CData(self.grad), CData(pb->value), ga.data(),
                            p, r, q);
      AccumGrad(pa, ga);
    }
    if (pb->requires_grad) {
      // grad_b = a^T @ g, reading a in its stored layout.
      Tensor gb(pb->value.shape());
      kernels::MatMulTransA(CData(pa->value), CData(self.grad), gb.data(),
                            p, q, r);
      AccumGrad(pb, gb);
    }
  });
}

Var Transpose(const Var& a) {
  Tensor out = a.value().Transpose2D();
  if (plan::Recording()) {
    const int64_t rows = a.value().dim(0);
    const int64_t cols = a.value().dim(1);
    plan::RecordStep(out, {&a},
                     [rows, cols](const float* const* ins, float* o) {
                       kernels::Transpose(ins[0], o, rows, cols);
                     });
  }
  return MakeOp(std::move(out), {a}, [](Node& self) {
    AccumGrad(self.parents[0].get(), self.grad.Transpose2D());
  });
}

Var Reshape(const Var& a, Shape shape) {
  Tensor out = a.value().Reshape(std::move(shape));
  if (plan::Recording()) plan::RecordAlias(out, a);
  return MakeOp(std::move(out), {a}, [](Node& self) {
    Node* pa = self.parents[0].get();
    AccumGrad(pa, self.grad.Reshape(pa->value.shape()));
  });
}

namespace {

// Raw strided-copy core shared by the interpreted path and replay closures.
void PermuteRaw(const float* src, float* dst, const Shape& out_shape,
                const std::vector<int64_t>& in_strides,
                const std::vector<int64_t>& perm) {
  const int64_t nd = static_cast<int64_t>(out_shape.size());
  std::vector<int64_t> idx(nd, 0);
  int64_t n = 1;
  for (int64_t d : out_shape) n *= d;
  for (int64_t flat = 0; flat < n; ++flat) {
    int64_t s = 0;
    for (int64_t i = 0; i < nd; ++i) s += idx[i] * in_strides[perm[i]];
    dst[flat] = src[s];
    // Advance the multi-index over the *output* shape.
    for (int64_t i = nd - 1; i >= 0; --i) {
      if (++idx[i] < out_shape[i]) break;
      idx[i] = 0;
    }
  }
}

std::vector<int64_t> StridesOf(const Tensor& x) {
  const int64_t nd = x.ndim();
  std::vector<int64_t> strides(nd, 1);
  for (int64_t i = nd - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * x.dim(i + 1);
  }
  return strides;
}

Tensor PermuteTensor(const Tensor& x, const std::vector<int64_t>& perm) {
  const int64_t nd = x.ndim();
  CIT_CHECK_EQ(static_cast<int64_t>(perm.size()), nd);
  Shape out_shape(nd);
  for (int64_t i = 0; i < nd; ++i) out_shape[i] = x.dim(perm[i]);
  Tensor out(out_shape);
  PermuteRaw(x.data(), out.data(), out_shape, StridesOf(x), perm);
  return out;
}

}  // namespace

Var Permute(const Var& a, std::vector<int64_t> perm) {
  Tensor out = PermuteTensor(a.value(), perm);
  const int64_t nd = a.value().ndim();
  std::vector<int64_t> inverse(nd);
  for (int64_t i = 0; i < nd; ++i) inverse[perm[i]] = i;
  if (plan::Recording()) {
    plan::RecordStep(out, {&a},
                     [out_shape = out.shape(),
                      in_strides = StridesOf(a.value()),
                      perm](const float* const* ins, float* o) {
                       PermuteRaw(ins[0], o, out_shape, in_strides, perm);
                     });
  }
  return MakeOp(std::move(out), {a}, [inverse](Node& self) {
    AccumGrad(self.parents[0].get(), PermuteTensor(self.grad, inverse));
  });
}

Var Concat(const std::vector<Var>& parts, int64_t axis) {
  CIT_CHECK(!parts.empty());
  const Tensor& first = parts[0].value();
  int64_t ax = axis < 0 ? axis + first.ndim() : axis;
  CIT_CHECK(ax >= 0 && ax < first.ndim());
  Shape out_shape = first.shape();
  int64_t total = 0;
  for (const Var& p : parts) {
    CIT_CHECK_EQ(p.value().ndim(), first.ndim());
    for (int64_t i = 0; i < first.ndim(); ++i) {
      if (i != ax) CIT_CHECK_EQ(p.value().dim(i), first.dim(i));
    }
    total += p.value().dim(ax);
  }
  out_shape[ax] = total;
  Tensor out(out_shape);
  int64_t outer = 1;
  for (int64_t i = 0; i < ax; ++i) outer *= first.dim(i);
  int64_t inner = 1;
  for (int64_t i = ax + 1; i < first.ndim(); ++i) inner *= first.dim(i);
  std::vector<int64_t> part_lens;
  part_lens.reserve(parts.size());
  for (const Var& p : parts) part_lens.push_back(p.value().dim(ax));
  // Copy each part's rows into the right offset of the output.
  float* out_base = out.data();
  int64_t offset = 0;
  for (size_t pi = 0; pi < parts.size(); ++pi) {
    const Tensor& x = parts[pi].value();
    const int64_t len = part_lens[pi];
    const float* src = x.data();
    for (int64_t o = 0; o < outer; ++o) {
      kernels::Copy(src + o * len * inner,
                    out_base + (o * total + offset) * inner, len * inner);
    }
    offset += len;
  }
  if (plan::Recording()) {
    std::vector<const Var*> ins;
    ins.reserve(parts.size());
    for (const Var& p : parts) ins.push_back(&p);
    plan::RecordStepVec(
        out, ins,
        [part_lens, outer, inner, total](const float* const* in, float* o) {
          int64_t off = 0;
          for (size_t pi = 0; pi < part_lens.size(); ++pi) {
            const int64_t len = part_lens[pi];
            for (int64_t ot = 0; ot < outer; ++ot) {
              kernels::Copy(in[pi] + ot * len * inner,
                            o + (ot * total + off) * inner, len * inner);
            }
            off += len;
          }
        });
  }
  return MakeOpVec(std::move(out), parts,
                [part_lens, outer, inner, total](Node& self) {
                  const float* g = CData(self.grad);
                  int64_t offset = 0;
                  for (size_t pi = 0; pi < self.parents.size(); ++pi) {
                    Node* p = self.parents[pi].get();
                    const int64_t len = part_lens[pi];
                    if (p->requires_grad) {
                      // Accumulate straight into the parent's grad region —
                      // no per-part zero tensor, no second add pass.
                      float* dst = GradAccumPtr(p);
                      for (int64_t o = 0; o < outer; ++o) {
                        kernels::AddInto(
                            dst + o * len * inner,
                            g + (o * total + offset) * inner, len * inner);
                      }
                    }
                    offset += len;
                  }
                });
}

Var Slice(const Var& a, int64_t axis, int64_t start, int64_t len) {
  const Tensor& x = a.value();
  int64_t ax = axis < 0 ? axis + x.ndim() : axis;
  Tensor out = x.Slice(ax, start, len);
  int64_t outer = 1;
  for (int64_t i = 0; i < ax; ++i) outer *= x.dim(i);
  int64_t inner = 1;
  for (int64_t i = ax + 1; i < x.ndim(); ++i) inner *= x.dim(i);
  const int64_t axis_len = x.dim(ax);
  if (plan::Recording()) {
    if (out.SharesStorageWith(x)) {
      plan::RecordAlias(out, a);  // contiguous region: O(1) view
    } else {
      plan::RecordStep(out, {&a},
                       [outer, inner, axis_len, start,
                        len](const float* const* ins, float* o) {
                         const int64_t in_step = axis_len * inner;
                         const int64_t out_step = len * inner;
                         for (int64_t ot = 0; ot < outer; ++ot) {
                           kernels::Copy(ins[0] + ot * in_step + start * inner,
                                         o + ot * out_step, len * inner);
                         }
                       });
    }
  }
  return MakeOp(std::move(out), {a},
                [outer, inner, axis_len, start, len](Node& self) {
                  Node* pa = self.parents[0].get();
                  // Accumulate the slice's gradient directly into the
                  // parent's [start, start+len) region.
                  float* dst = GradAccumPtr(pa);
                  const float* src = CData(self.grad);
                  for (int64_t o = 0; o < outer; ++o) {
                    kernels::AddInto(
                        dst + (o * axis_len + start) * inner,
                        src + o * len * inner, len * inner);
                  }
                });
}

Var Softmax(const Var& a) {
  Tensor out = a.value();
  const int64_t n = a.value().dim(-1);
  kernels::SoftmaxLastAxis(out.data(), out.numel() / n, n);
  if (plan::Recording()) {
    const int64_t total = out.numel();
    plan::RecordStep(out, {&a},
                     [total, n](const float* const* ins, float* o) {
                       kernels::Copy(ins[0], o, total);
                       kernels::SoftmaxLastAxis(o, total / n, n);
                     });
  }
  return MakeOp(std::move(out), {a}, [n](Node& self) {
    Node* pa = self.parents[0].get();
    const int64_t outer = self.value.numel() / n;
    Tensor g(pa->value.shape());
    float* g_base = g.data();
    const float* s_base = CData(self.value);
    const float* gy_base = CData(self.grad);
    for (int64_t o = 0; o < outer; ++o) {
      const float* s = s_base + o * n;
      const float* gy = gy_base + o * n;
      float dot = 0.0f;
      for (int64_t i = 0; i < n; ++i) dot += gy[i] * s[i];
      float* gx = g_base + o * n;
      for (int64_t i = 0; i < n; ++i) gx[i] = s[i] * (gy[i] - dot);
    }
    AccumGrad(pa, g);
  });
}

Var LogSoftmax(const Var& a) {
  Tensor out = a.value();
  const int64_t n = a.value().dim(-1);
  kernels::LogSoftmaxLastAxis(out.data(), out.numel() / n, n);
  if (plan::Recording()) {
    const int64_t total = out.numel();
    plan::RecordStep(out, {&a},
                     [total, n](const float* const* ins, float* o) {
                       kernels::Copy(ins[0], o, total);
                       kernels::LogSoftmaxLastAxis(o, total / n, n);
                     });
  }
  return MakeOp(std::move(out), {a}, [n](Node& self) {
    Node* pa = self.parents[0].get();
    const int64_t outer = self.value.numel() / n;
    Tensor g(pa->value.shape());
    float* g_base = g.data();
    const float* y_base = CData(self.value);
    const float* gy_base = CData(self.grad);
    for (int64_t o = 0; o < outer; ++o) {
      const float* y = y_base + o * n;
      const float* gy = gy_base + o * n;
      float total = 0.0f;
      for (int64_t i = 0; i < n; ++i) total += gy[i];
      float* gx = g_base + o * n;
      for (int64_t i = 0; i < n; ++i) {
        gx[i] = gy[i] - std::exp(y[i]) * total;
      }
    }
    AccumGrad(pa, g);
  });
}

Var CausalConv1d(const Var& x, const Var& w, const Var& b, int64_t dilation) {
  const Tensor& xv = x.value();
  const Tensor& wv = w.value();
  CIT_CHECK_EQ(xv.ndim(), 3);
  CIT_CHECK_EQ(wv.ndim(), 3);
  const int64_t batch = xv.dim(0);
  const int64_t cin = xv.dim(1);
  const int64_t len = xv.dim(2);
  const int64_t cout = wv.dim(0);
  CIT_CHECK_EQ(wv.dim(1), cin);
  const int64_t ksize = wv.dim(2);
  CIT_CHECK_GE(dilation, 1);
  const bool has_bias = b.defined();
  if (has_bias) {
    CIT_CHECK_EQ(b.value().ndim(), 1);
    CIT_CHECK_EQ(b.value().dim(0), cout);
  }

  Tensor out(Shape{batch, cout, len});
  kernels::CausalConv1dForward(xv.data(), wv.data(),
                               has_bias ? b.value().data() : nullptr,
                               out.data(), batch, cin, cout, len, ksize,
                               dilation);

  if (plan::Recording()) {
    std::vector<const Var*> ins = {&x, &w};
    if (has_bias) ins.push_back(&b);
    plan::RecordStepVec(
        out, ins,
        [batch, cin, cout, len, ksize, dilation,
         has_bias](const float* const* in, float* o) {
          kernels::CausalConv1dForward(in[0], in[1],
                                       has_bias ? in[2] : nullptr, o, batch,
                                       cin, cout, len, ksize, dilation);
        });
  }
  std::vector<Var> inputs = {x, w};
  if (has_bias) inputs.push_back(b);
  return MakeOpVec(
      std::move(out), std::move(inputs),
      [batch, cin, cout, len, ksize, dilation, has_bias](Node& self) {
        Node* px = self.parents[0].get();
        Node* pw = self.parents[1].get();
        Node* pb = has_bias ? self.parents[2].get() : nullptr;
        Tensor gx(px->value.shape());
        Tensor gw(pw->value.shape());
        Tensor gb = has_bias ? Tensor(pb->value.shape()) : Tensor();
        kernels::CausalConv1dBackward(
            CData(px->value), CData(pw->value), CData(self.grad), gx.data(),
            gw.data(), has_bias ? gb.data() : nullptr, batch, cin, cout, len,
            ksize, dilation);
        AccumGrad(px, gx);
        AccumGrad(pw, gw);
        if (has_bias) AccumGrad(pb, gb);
      });
}

}  // namespace cit::ag
