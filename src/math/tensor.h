#ifndef CIT_MATH_TENSOR_H_
#define CIT_MATH_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "math/rng.h"

namespace cit::math {

using Shape = std::vector<int64_t>;

// A dense, contiguous, row-major float32 tensor. Copies are deep; moves are
// cheap. This is the sole numeric container shared by the autodiff engine,
// the NN modules and the trading environments. It intentionally has no
// views/strides: slicing materializes, which keeps every kernel a tight loop
// over contiguous memory — the right trade-off for the small networks used
// in this system.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);  // zero-filled
  Tensor(Shape shape, std::vector<float> data);

  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  static Tensor Scalar(float value);
  static Tensor Randn(Shape shape, Rng& rng, float stddev = 1.0f);
  static Tensor Uniform(Shape shape, Rng& rng, float lo, float hi);
  // 1-D tensor [0, 1, ..., n-1].
  static Tensor Arange(int64_t n);

  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int64_t i) const;
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](int64_t flat_index);
  float operator[](int64_t flat_index) const;
  // Multi-dimensional element access, e.g. t.At({i, j, k}).
  float& At(std::initializer_list<int64_t> idx);
  float At(std::initializer_list<int64_t> idx) const;

  // Value of a single-element tensor.
  float Item() const;

  // Shape manipulation (Reshape shares nothing: data is copied with the
  // tensor itself, so the result is an independent tensor).
  Tensor Reshape(Shape new_shape) const;
  // Transpose of a 2-D tensor.
  Tensor Transpose2D() const;
  // Materialized sub-tensor along `axis`: indices [start, start+len).
  Tensor Slice(int64_t axis, int64_t start, int64_t len) const;

  // Elementwise arithmetic producing new tensors. Shapes must match exactly.
  Tensor Add(const Tensor& other) const;
  Tensor Sub(const Tensor& other) const;
  Tensor Mul(const Tensor& other) const;
  Tensor Div(const Tensor& other) const;
  Tensor AddScalar(float v) const;
  Tensor MulScalar(float v) const;

  // In-place helpers used by optimizers and gradient accumulation.
  void AddInPlace(const Tensor& other);
  void SubInPlace(const Tensor& other);
  void MulScalarInPlace(float v);
  void Fill(float v);

  // Reductions.
  float Sum() const;
  float Mean() const;
  float Max() const;
  float Min() const;
  // Sum/mean over one axis (that axis is removed from the shape).
  Tensor SumAxis(int64_t axis) const;
  Tensor MeanAxis(int64_t axis) const;

  // 2-D matrix product: [p, q] x [q, r] -> [p, r].
  static Tensor MatMul(const Tensor& a, const Tensor& b);

  // Debug rendering, e.g. "Tensor[2,3]{1, 2, 3, ...}".
  std::string ToString(int64_t max_items = 8) const;

  static int64_t NumelOf(const Shape& shape);

 private:
  int64_t FlatIndex(std::initializer_list<int64_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

// True when both shape and every element match exactly.
bool TensorEquals(const Tensor& a, const Tensor& b);
// True when shapes match and elements differ by at most `atol`.
bool TensorAllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f);

}  // namespace cit::math

#endif  // CIT_MATH_TENSOR_H_
