#ifndef CIT_MATH_TENSOR_H_
#define CIT_MATH_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "math/rng.h"

namespace cit::math {

using Shape = std::vector<int64_t>;

namespace detail {
// The refcounted flat buffer behind Tensor. Multiple tensors may point into
// one Storage (copies, Reshape views, axis-0 Slice views); mutation detaches
// via copy-on-write, so sharing is never observable through the value API.
struct Storage {
  explicit Storage(int64_t n) : data(static_cast<size_t>(n), 0.0f) {}
  explicit Storage(std::vector<float> d) : data(std::move(d)) {}
  std::vector<float> data;
};

// Allocates a Storage of n zero-initialized floats. Inside an ArenaScope the
// buffer is recycled from (and eventually returned to) the calling thread's
// freelist; `zero_fill` may be false only when the caller overwrites every
// element before any read.
std::shared_ptr<Storage> NewStorage(int64_t n, bool zero_fill);
}  // namespace detail

// RAII: while at least one enabled ArenaScope is live on a thread, tensor
// buffers freed on that thread are parked in a per-thread size-bucketed
// freelist and subsequent allocations are served from it instead of the
// global allocator. ag::NoGradGuard opens one so repeated graph-free
// forwards (backtest inference, target-network evaluation) stop churning
// malloc. Reuse is invisible to the value API: a recycled buffer is
// re-zeroed wherever a fresh buffer would have been zero-initialized. The
// freelist is bounded and survives between scopes, which is what makes the
// reuse effective across per-step guards.
class ArenaScope {
 public:
  explicit ArenaScope(bool enable = true);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  bool enabled_;
};

// Number of allocations served from the calling thread's arena freelist so
// far (diagnostics/tests; code must never branch on it).
int64_t ArenaReuseCount();

// Cumulative arena efficiency counters for the calling thread: `hits` are
// allocations served from the freelist, `misses` are allocations that fell
// through to the global allocator while an ArenaScope was open, and the
// byte totals split the traffic the same way. The same numbers feed the
// obs Registry as arena.* counters when telemetry is enabled.
struct ArenaStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t reused_bytes = 0;
  int64_t fresh_bytes = 0;
};
ArenaStats ArenaStatsNow();

// A dense, contiguous, row-major float32 tensor backed by a refcounted
// Storage with copy-on-write semantics:
//
//  - Copying a Tensor is O(1): both handles share the Storage.
//  - Reshape is O(1) metadata; Slice along the outermost axis is an O(1)
//    view (an offset into the parent's Storage); other slices materialize.
//  - Any mutable access (non-const data()/operator[]/At, the *InPlace ops,
//    Fill) first detaches this handle onto its own buffer if the Storage is
//    shared, so writes never leak into other handles.
//
// Value semantics are therefore exactly those of the old deep-copy tensor;
// only the cost model changed. The numeric inner loops live in
// math/kernels.h (see DESIGN.md "Storage, COW and kernel dispatch").
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);  // zero-filled
  Tensor(Shape shape, std::vector<float> data);

  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  static Tensor Scalar(float value);
  static Tensor Randn(Shape shape, Rng& rng, float stddev = 1.0f);
  static Tensor Uniform(Shape shape, Rng& rng, float lo, float hi);
  // 1-D tensor [0, 1, ..., n-1].
  static Tensor Arange(int64_t n);

  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int64_t i) const;
  int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  // Mutable access detaches from shared Storage first (copy-on-write); take
  // mutable pointers only after all copies of this tensor have been made.
  float* data() {
    EnsureUnique();
    return storage_ ? storage_->data.data() + offset_ : nullptr;
  }
  const float* data() const {
    return storage_ ? storage_->data.data() + offset_ : nullptr;
  }

  float& operator[](int64_t flat_index);
  float operator[](int64_t flat_index) const;
  // Multi-dimensional element access, e.g. t.At({i, j, k}).
  float& At(std::initializer_list<int64_t> idx);
  float At(std::initializer_list<int64_t> idx) const;

  // Value of a single-element tensor.
  float Item() const;

  // O(1) metadata change: the result shares this tensor's Storage.
  Tensor Reshape(Shape new_shape) const;
  // Transpose of a 2-D tensor (materializes).
  Tensor Transpose2D() const;
  // Sub-tensor along `axis`: indices [start, start+len). An O(1) shared
  // view when the sliced region is contiguous (axis 0, or all outer dims
  // are 1); materializes otherwise.
  Tensor Slice(int64_t axis, int64_t start, int64_t len) const;

  // Elementwise arithmetic producing new tensors. Shapes must match exactly.
  Tensor Add(const Tensor& other) const;
  Tensor Sub(const Tensor& other) const;
  Tensor Mul(const Tensor& other) const;
  Tensor Div(const Tensor& other) const;
  Tensor AddScalar(float v) const;
  Tensor MulScalar(float v) const;

  // In-place helpers used by optimizers and gradient accumulation.
  void AddInPlace(const Tensor& other);
  void SubInPlace(const Tensor& other);
  void MulScalarInPlace(float v);
  void Fill(float v);

  // Reductions.
  float Sum() const;
  float Mean() const;
  float Max() const;
  float Min() const;
  // Sum/mean over one axis (that axis is removed from the shape).
  Tensor SumAxis(int64_t axis) const;
  Tensor MeanAxis(int64_t axis) const;

  // 2-D matrix product: [p, q] x [q, r] -> [p, r].
  static Tensor MatMul(const Tensor& a, const Tensor& b);

  // Debug rendering, e.g. "Tensor[2,3]{1, 2, 3, ...}".
  std::string ToString(int64_t max_items = 8) const;

  static int64_t NumelOf(const Shape& shape);

  // True when both handles alias the same Storage (diagnostics/tests; code
  // must never behave differently based on sharing).
  bool SharesStorageWith(const Tensor& other) const {
    return storage_ != nullptr && storage_ == other.storage_;
  }

  // Identity of the backing buffer: the Storage address and this handle's
  // element offset into it. Used as a map key by the plan recorder
  // (math/plan.cc) to connect op outputs to later op inputs; diagnostics
  // only — code must never dereference through the pointer.
  const void* storage_ptr() const { return storage_.get(); }
  int64_t storage_offset() const { return offset_; }

 private:
  Tensor(std::shared_ptr<detail::Storage> storage, int64_t offset,
         Shape shape);

  int64_t FlatIndex(std::initializer_list<int64_t> idx) const;
  // Detaches onto a private exact-size buffer unless this handle is already
  // the sole owner of its Storage.
  void EnsureUnique();

  std::shared_ptr<detail::Storage> storage_;
  int64_t offset_ = 0;
  int64_t numel_ = 0;
  Shape shape_;
};

// True when both shape and every element match exactly.
bool TensorEquals(const Tensor& a, const Tensor& b);
// True when shapes match and elements differ by at most `atol`.
bool TensorAllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f);

}  // namespace cit::math

#endif  // CIT_MATH_TENSOR_H_
