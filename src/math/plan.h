#ifndef CIT_MATH_PLAN_H_
#define CIT_MATH_PLAN_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <vector>

#include "math/autograd.h"
#include "math/kernels.h"
#include "math/tensor.h"

// Trace-and-replay compiled forward. The first time a CompiledFn runs with
// a given input-shape key it executes the wrapped forward interpreted while
// a per-thread recorder captures the op tape — kernel, input/output slots,
// parameter bindings — into an immutable ExecPlan. Finalization fuses
// adjacent single-use elementwise ops into one sweep and packs every
// intermediate into one contiguous slab at pre-computed offsets. Replays
// then run the plan directly: no Var construction, no per-op Storage
// allocation, no dynamic dispatch — just kernel calls over resolved
// pointers. Replay output is bitwise identical to the interpreted path at
// any thread count (each step invokes the same kernel, and fused chains
// evaluate the same scalar expressions; see kernels::ElemApply).
//
// Staleness: each plan snapshots the version counter of every parameter it
// binds (ag::Node::version, bumped by Var::mutable_value — the single
// funnel for optimizer steps, LoadParameters and checkpoint restore). A
// replay against any bumped parameter is refused and the plan re-records.
namespace cit::plan {

using math::Tensor;

// Process-wide kill switch for compiled replay (also CIT_COMPILE=0 in the
// environment, mirroring CIT_NOGRAD): when disallowed, CompiledFn::Run
// simply executes the wrapped forward interpreted, so A/B checks can drive
// both paths through unchanged call sites.
bool CompileAllowed();
void SetCompileAllowed(bool allowed);

namespace detail {
// Declared in math/autograd.h too (for MakeOp's NoteOp ping); defined in
// plan.cc. True while the calling thread is recording a plan.
extern thread_local bool t_recording;
void NoteOp();
}  // namespace detail

// True while the calling thread is recording: op bodies in autograd.cc
// guard their Record* calls on this so the non-recording path never builds
// a replay closure.
inline bool Recording() { return detail::t_recording; }

// A replayable kernel invocation: `ins[k]` is the resolved data pointer of
// the op's k-th input, `out` the (exclusively owned) output region.
using ReplayFn = std::function<void(const float* const* ins, float* out)>;

// ---- Recording hooks (no-ops unless the calling thread is recording) ------
// Generic op: `out` is the freshly computed output tensor, `ins` the op's
// input Vars in kernel-argument order, `fn` replays the computation.
void RecordStep(const Tensor& out, std::initializer_list<const ag::Var*> ins,
                ReplayFn fn);
// Same for ops whose input count is only known at runtime (Concat, Conv).
void RecordStepVec(const Tensor& out, const std::vector<const ag::Var*>& ins,
                   ReplayFn fn);
// Single-input elementwise op; these steps are candidates for chain fusion.
void RecordElem(const Tensor& out, const ag::Var& in, math::kernels::ElemOp op);
// Zero-copy view (Reshape, contiguous Slice): out shares src's storage.
void RecordAlias(const Tensor& out, const ag::Var& src);

// Per-CompiledFn counters (always maintained; the same events also feed the
// obs Registry as plan.* counters when telemetry is enabled).
struct PlanStats {
  int64_t hits = 0;           // replays served from a valid plan
  int64_t misses = 0;         // recordings (first run per shape key)
  // Split of `misses` by cause, so shape churn is observable: a cold miss
  // records a shape key this CompiledFn has never seen; an evicted miss
  // re-records a key the LRU previously dropped — a string of those means
  // the working set of shapes exceeds the capacity (thrash). Re-records in
  // place after a parameter-version invalidation count in `misses` (and
  // `invalidations`) but in neither split bucket, so
  //   misses == misses_cold + misses_evicted + invalidation re-records.
  int64_t misses_cold = 0;
  int64_t misses_evicted = 0;
  int64_t invalidations = 0;  // replays refused on a stale parameter version
  int64_t evictions = 0;      // LRU entries dropped at capacity
  int64_t fused_ops = 0;      // elementwise ops folded into a predecessor
  int64_t fallbacks = 0;      // interpreted runs (kill switch / poisoned key)
  int64_t entries = 0;        // live shape-key entries
};

// One compilable forward: owns a small LRU cache of ExecPlans keyed by the
// input shapes. Not thread-safe — a CompiledFn belongs to one agent and is
// driven from that agent's (already non-reentrant) DecideWeights path;
// replayed kernels still fork/join the global thread pool internally.
//
// The single-owner contract is enforced, not just documented: the first
// compiled-path Run pins the CompiledFn to the calling thread, and any
// later Run from a different thread CHECK-fails in debug builds (replays
// share one slab and one pointer table, so a cross-thread caller — e.g. a
// serving daemon misconfigured to share a model replica between workers —
// would race instead of failing loudly). Clear() releases the pin along
// with the cached plans, which is the supported way to re-home a
// CompiledFn onto another thread.
class CompiledFn {
 public:
  CompiledFn();
  ~CompiledFn();
  CompiledFn(CompiledFn&&) noexcept;
  CompiledFn& operator=(CompiledFn&&) noexcept;
  CompiledFn(const CompiledFn&) = delete;
  CompiledFn& operator=(const CompiledFn&) = delete;

  // Executes `forward` compiled. `inputs` are the tensors that vary between
  // calls (market windows, held weights, ...): the caller must build them
  // outside `forward` and have `forward` consume exactly these handles, so
  // the recorder can bind them as replay inputs rather than baking their
  // first-call values into the plan. Parameters reachable inside `forward`
  // are discovered and bound automatically. Everything else created inside
  // `forward` is captured as a constant.
  //
  // First call per shape key records (and returns the interpreted result);
  // later calls replay. With CompileAllowed() off — or when this thread is
  // already recording another plan — runs `forward` interpreted.
  Tensor Run(std::initializer_list<const Tensor*> inputs,
             const std::function<ag::Var()>& forward);

  const PlanStats& stats() const;
  // Drops every cached plan and releases the owning-thread pin (stats
  // persist). After Clear() the next Run may come from any one thread.
  void Clear();

  // LRU capacity per CompiledFn. Small on purpose: an agent sees one or two
  // live shape keys; the cap exists to bound a shape-churning caller.
  static constexpr int kMaxEntries = 8;

  // Overrides the LRU capacity for this instance (clamped to >= 1; cached
  // entries beyond the new capacity are evicted lazily on the next miss).
  // Callers with a legitimately wide shape working set — the serving
  // batcher sees one key per live batch size per policy — raise this so
  // hot plans are not churned through the default 8 slots.
  void SetCapacity(int64_t capacity);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cit::plan

#endif  // CIT_MATH_PLAN_H_
