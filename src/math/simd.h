#ifndef CIT_MATH_SIMD_H_
#define CIT_MATH_SIMD_H_

#include <cstdint>

#include "math/kernels.h"

// Compile-time ISA detection plus the explicit-SIMD kernel entry points
// implemented in kernels_simd.cc. Exactly one of CIT_SIMD_AVX512 /
// CIT_SIMD_AVX2 / CIT_SIMD_NEON is defined when the compiler was given the
// matching target flags (on x86 that means -march=native via the default
// -DCIT_NATIVE_ARCH=ON; a portable -DCIT_NATIVE_ARCH=OFF build enables
// neither AVX2 nor FMA, so no ISA path is compiled and the scalar backend
// is the only selectable one — kernels::SetBackend clamps kSimd back to
// kScalar in that build). aarch64 implies NEON unconditionally.
//
// Everything here is an internal seam of math/kernels.cc: callers go
// through the public kernels:: API, which dispatches per the active
// Backend. The functions below are serial over their ranges — parallel
// partitioning happens in kernels.cc so both backends share identical
// chunk boundaries.
//
// Determinism within the SIMD backend: every entry point computes each
// output element with a lane-position-independent formula. The FMA arms
// (GemmTile, Axpy) finish scalar tails with std::fmaf, which performs the
// same single-rounding fused multiply-add as the vector lanes, so results
// cannot depend on where a ParallelFor chunk boundary (and hence the
// vector/tail split) falls.

#if defined(__AVX512F__) && defined(__FMA__)
#define CIT_SIMD_AVX512 1
#elif defined(__AVX2__) && defined(__FMA__)
#define CIT_SIMD_AVX2 1
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define CIT_SIMD_NEON 1
#endif

namespace cit::math::kernels::simd {

// True iff an ISA path was compiled in; the scalar fallback definitions
// used otherwise are correct but never selected by the dispatcher.
bool Available();
// "avx512", "avx2", "neon", or "none".
const char* IsaName();

// GEMM register tile: c[i, j] += sum_k a[i*lda + k] * pack[k*kGemmNr + j]
// for i in [0, mr), j in [0, nr), accumulating each output element with
// one FMA chain in ascending-k order. `pack` is a 64-byte-aligned
// [kc, kGemmNr] panel zero-padded past nr, so the vector body always runs
// the full kGemmNr width and per-row numerics are identical no matter how
// many rows the tile holds (mr in [1, kGemmMr]) or which row chunk it came
// from — the thread-count-invariance argument of the scalar kernel carries
// over unchanged.
void GemmTile(const float* a, int64_t lda, const float* pack, int64_t kc,
              float* c, int64_t ldc, int64_t mr, int64_t nr);

// Elementwise sweeps over [0, n). All IEEE-exact (single add/sub/mul/div
// per element), hence bitwise identical to the scalar backend.
void Add(const float* a, const float* b, float* out, int64_t n);
void Sub(const float* a, const float* b, float* out, int64_t n);
void Mul(const float* a, const float* b, float* out, int64_t n);
void Div(const float* a, const float* b, float* out, int64_t n);
void AddScalar(const float* a, float v, float* out, int64_t n);
void MulScalar(const float* a, float v, float* out, int64_t n);

// y[i] = fma(alpha, x[i], y[i]) — the one elementwise arm that fuses, so
// it differs from the scalar backend's y + alpha*x by at most one rounding
// per element (the documented simd-vs-scalar tolerance case).
void Axpy(float alpha, const float* x, float* y, int64_t n);

// True when every op in ops[0..count) is in the bit-exact vectorizable set
// (relu/sqrt/square/abs/clamp/add-scalar/mul-scalar). Chains containing a
// libm op (exp/log/tanh/sigmoid) must take the scalar ElemApply sweep:
// vector transcendental approximations would break the fused == unfused
// bitwise identity that plan fusion relies on.
bool FusedChainExact(const ElemOp* ops, int count);
// Vectorized fused sweep; requires FusedChainExact(ops, count).
void FusedElemwise(const float* in, float* out, int64_t n, const ElemOp* ops,
                   int count);

}  // namespace cit::math::kernels::simd

#endif  // CIT_MATH_SIMD_H_
