#ifndef CIT_SIGNAL_FILTERS_H_
#define CIT_SIGNAL_FILTERS_H_

#include <cstdint>
#include <vector>

namespace cit::signal {

// Trailing simple moving average with window `w`; the first w-1 outputs use
// the partial prefix (online-learning convention used by OLMAR).
std::vector<double> SimpleMovingAverage(const std::vector<double>& x,
                                        int64_t w);

// Exponential moving average with smoothing alpha in (0, 1].
std::vector<double> ExponentialMovingAverage(const std::vector<double>& x,
                                             double alpha);

// Geometric L1-median of a set of points (Weiszfeld's algorithm), used by
// the RMR baseline's robust price estimate. `points` is [n][dim].
std::vector<double> L1Median(const std::vector<std::vector<double>>& points,
                             int64_t max_iters = 200, double tol = 1e-9);

// Pearson correlation of two equal-length vectors; 0 when degenerate.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace cit::signal

#endif  // CIT_SIGNAL_FILTERS_H_
