#include "signal/wavelet.h"

#include <cmath>

#include "common/check.h"

namespace cit::signal {
namespace {

const double kInvSqrt2 = 1.0 / std::sqrt(2.0);

// One forward Haar step: x (padded to even) -> (approx, detail).
void HaarStep(const std::vector<double>& x, std::vector<double>* approx,
              std::vector<double>* detail) {
  std::vector<double> padded = x;
  if (padded.size() % 2 != 0) padded.push_back(padded.back());
  const size_t half = padded.size() / 2;
  approx->resize(half);
  detail->resize(half);
  for (size_t i = 0; i < half; ++i) {
    const double a = padded[2 * i];
    const double b = padded[2 * i + 1];
    (*approx)[i] = (a + b) * kInvSqrt2;
    (*detail)[i] = (a - b) * kInvSqrt2;
  }
}

// One inverse Haar step, truncated to `original_len`.
std::vector<double> HaarInverseStep(const std::vector<double>& approx,
                                    const std::vector<double>& detail,
                                    int64_t original_len) {
  CIT_CHECK_EQ(approx.size(), detail.size());
  std::vector<double> x(approx.size() * 2);
  for (size_t i = 0; i < approx.size(); ++i) {
    x[2 * i] = (approx[i] + detail[i]) * kInvSqrt2;
    x[2 * i + 1] = (approx[i] - detail[i]) * kInvSqrt2;
  }
  x.resize(original_len);
  return x;
}

}  // namespace

DwtCoeffs HaarDecompose(const std::vector<double>& x, int64_t levels) {
  CIT_CHECK(!x.empty());
  CIT_CHECK_GE(levels, 1);
  DwtCoeffs coeffs;
  std::vector<double> current = x;
  for (int64_t l = 0; l < levels; ++l) {
    coeffs.level_lengths.push_back(static_cast<int64_t>(current.size()));
    std::vector<double> approx;
    std::vector<double> detail;
    HaarStep(current, &approx, &detail);
    coeffs.details.push_back(std::move(detail));
    current = std::move(approx);
    // Stop early if the signal can no longer be halved meaningfully.
    if (current.size() == 1 && l + 1 < levels) {
      break;
    }
  }
  coeffs.approx = std::move(current);
  return coeffs;
}

std::vector<double> HaarReconstruct(const DwtCoeffs& coeffs) {
  std::vector<double> current = coeffs.approx;
  for (int64_t l = coeffs.levels() - 1; l >= 0; --l) {
    current = HaarInverseStep(current, coeffs.details[l],
                              coeffs.level_lengths[l]);
  }
  return current;
}

std::vector<double> ReconstructBand(const DwtCoeffs& coeffs, int64_t band) {
  const int64_t levels = coeffs.levels();
  CIT_CHECK(band >= 0 && band <= levels);
  DwtCoeffs masked = coeffs;
  if (band == 0) {
    // Keep the approximation only.
    for (auto& d : masked.details) {
      std::fill(d.begin(), d.end(), 0.0);
    }
  } else {
    // Keep detail level L+1-band only (band 1 = coarsest details).
    const int64_t keep_level = levels - band;  // index into details
    std::fill(masked.approx.begin(), masked.approx.end(), 0.0);
    for (int64_t l = 0; l < levels; ++l) {
      if (l != keep_level) {
        std::fill(masked.details[l].begin(), masked.details[l].end(), 0.0);
      }
    }
  }
  return HaarReconstruct(masked);
}

std::vector<std::vector<double>> SplitHorizonBands(
    const std::vector<double>& x, int64_t num_bands) {
  CIT_CHECK_GE(num_bands, 1);
  if (num_bands == 1) return {x};
  const int64_t levels = num_bands - 1;
  DwtCoeffs coeffs = HaarDecompose(x, levels);
  // If the signal was too short to reach the requested depth, the effective
  // number of bands shrinks; the surplus bands are all-zero so that the
  // band-sum identity (sum of bands == original signal) always holds.
  const int64_t effective_bands = coeffs.levels() + 1;
  std::vector<std::vector<double>> bands;
  bands.reserve(num_bands);
  for (int64_t b = 0; b < num_bands; ++b) {
    if (b < effective_bands) {
      bands.push_back(ReconstructBand(coeffs, b));
    } else {
      bands.emplace_back(x.size(), 0.0);
    }
  }
  return bands;
}

std::vector<double> WaveletDenoise(const std::vector<double>& x,
                                   int64_t levels, double threshold) {
  DwtCoeffs coeffs = HaarDecompose(x, levels);
  for (auto& level : coeffs.details) {
    for (double& d : level) {
      if (std::fabs(d) < threshold) d = 0.0;
    }
  }
  return HaarReconstruct(coeffs);
}

}  // namespace cit::signal
