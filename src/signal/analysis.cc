#include "signal/analysis.h"

#include <cmath>

#include "common/check.h"
#include "signal/wavelet.h"

namespace cit::signal {

double Autocorrelation(const std::vector<double>& x, int64_t lag) {
  CIT_CHECK_GE(lag, 0);
  const int64_t n = static_cast<int64_t>(x.size());
  if (n <= lag + 1) return 0.0;
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(n);
  double num = 0.0;
  double den = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    const double d = x[t] - mean;
    den += d * d;
    if (t + lag < n) num += d * (x[t + lag] - mean);
  }
  if (den <= 0.0) return 0.0;
  return num / den;
}

double VarianceRatio(const std::vector<double>& returns, int64_t q) {
  CIT_CHECK_GE(q, 1);
  const int64_t n = static_cast<int64_t>(returns.size());
  if (n < q + 2) return 1.0;
  double mean = 0.0;
  for (double r : returns) mean += r;
  mean /= static_cast<double>(n);

  double var1 = 0.0;
  for (double r : returns) var1 += (r - mean) * (r - mean);
  var1 /= static_cast<double>(n - 1);
  if (var1 <= 0.0) return 1.0;

  // Overlapping q-period sums.
  double varq = 0.0;
  const int64_t count = n - q + 1;
  for (int64_t t = 0; t < count; ++t) {
    double sum = 0.0;
    for (int64_t i = 0; i < q; ++i) sum += returns[t + i];
    const double d = sum - static_cast<double>(q) * mean;
    varq += d * d;
  }
  varq /= static_cast<double>(count);
  return varq / (static_cast<double>(q) * var1);
}

std::vector<double> RollingVolatility(const std::vector<double>& x,
                                      int64_t w) {
  CIT_CHECK_GE(w, 2);
  std::vector<double> out(x.size(), 0.0);
  double sum = 0.0;
  double sumsq = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sum += x[i];
    sumsq += x[i] * x[i];
    if (static_cast<int64_t>(i) >= w) {
      sum -= x[i - w];
      sumsq -= x[i - w] * x[i - w];
    }
    const int64_t count =
        std::min<int64_t>(static_cast<int64_t>(i) + 1, w);
    if (count >= 2) {
      const double mean = sum / count;
      const double var =
          std::max(0.0, (sumsq - count * mean * mean) / (count - 1));
      out[i] = std::sqrt(var);
    }
  }
  return out;
}

double AnnualizedVolatility(const std::vector<double>& daily_returns,
                            double periods_per_year) {
  if (daily_returns.size() < 2) return 0.0;
  double mean = 0.0;
  for (double r : daily_returns) mean += r;
  mean /= static_cast<double>(daily_returns.size());
  double var = 0.0;
  for (double r : daily_returns) var += (r - mean) * (r - mean);
  var /= static_cast<double>(daily_returns.size() - 1);
  return std::sqrt(var * periods_per_year);
}

std::vector<double> BandEnergyFractions(const std::vector<double>& x,
                                        int64_t num_bands) {
  const auto bands = SplitHorizonBands(x, num_bands);
  std::vector<double> energy(num_bands, 0.0);
  double total = 0.0;
  for (int64_t b = 0; b < num_bands; ++b) {
    for (double v : bands[b]) energy[b] += v * v;
    total += energy[b];
  }
  if (total > 0.0) {
    for (double& e : energy) e /= total;
  }
  return energy;
}

}  // namespace cit::signal
