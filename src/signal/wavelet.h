#ifndef CIT_SIGNAL_WAVELET_H_
#define CIT_SIGNAL_WAVELET_H_

#include <cstdint>
#include <vector>

namespace cit::signal {

// Multi-level Haar discrete wavelet transform coefficients of a 1-D signal.
// `details[l]` holds d^{l+1} (level-1 details at index 0); `approx` holds the
// final approximation a^L. `level_lengths[l]` records the signal length fed
// into level l+1 so reconstruction can drop padding exactly.
struct DwtCoeffs {
  std::vector<std::vector<double>> details;
  std::vector<double> approx;
  std::vector<int64_t> level_lengths;

  int64_t levels() const { return static_cast<int64_t>(details.size()); }
};

// Decomposes `x` into `levels` levels of Haar coefficients (paper Eq. (1)
// with the Haar scaling/wavelet pair). Odd-length signals are padded by
// repeating the final sample; the padding is removed on reconstruction.
// Requires levels >= 1 and x non-empty.
DwtCoeffs HaarDecompose(const std::vector<double>& x, int64_t levels);

// Inverse transform; exact (up to float rounding) for untouched coefficients.
std::vector<double> HaarReconstruct(const DwtCoeffs& coeffs);

// Reconstructs the signal keeping only one frequency band and zeroing all
// other coefficients (the paper's mask-and-inverse-transform step):
//   band 0            -> approximation a^L only (longest horizon)
//   band b in [1, L]  -> detail d^{L+1-b} only, so increasing band index
//                        means increasingly short horizon.
std::vector<double> ReconstructBand(const DwtCoeffs& coeffs, int64_t band);

// Splits `x` into `num_bands` horizon sub-series using a (num_bands-1)-level
// Haar DWT. Element [0] is the longest-horizon (lowest-frequency) series and
// element [num_bands-1] the shortest. The bands sum to the original signal
// (linearity of the DWT), which is property-tested. num_bands == 1 returns
// {x} unchanged.
std::vector<std::vector<double>> SplitHorizonBands(
    const std::vector<double>& x, int64_t num_bands);

// Denoises by zeroing detail coefficients whose magnitude falls below
// `threshold` (hard thresholding), a standard wavelet-denoising preprocessing
// step referenced by the paper's related work.
std::vector<double> WaveletDenoise(const std::vector<double>& x,
                                   int64_t levels, double threshold);

}  // namespace cit::signal

#endif  // CIT_SIGNAL_WAVELET_H_
