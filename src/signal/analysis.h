#ifndef CIT_SIGNAL_ANALYSIS_H_
#define CIT_SIGNAL_ANALYSIS_H_

#include <cstdint>
#include <vector>

namespace cit::signal {

// Sample autocorrelation of `x` at `lag` (0 for degenerate inputs).
double Autocorrelation(const std::vector<double>& x, int64_t lag);

// Lo-MacKinlay variance ratio VR(q) = Var(q-period returns) /
// (q * Var(1-period returns)) of a *return* series. VR > 1 indicates
// positive serial correlation (momentum) at horizon q, VR < 1 indicates
// mean reversion. Used to characterize the simulator's horizon structure.
double VarianceRatio(const std::vector<double>& returns, int64_t q);

// Trailing rolling standard deviation with window `w`; warm-up entries use
// the partial prefix (minimum 2 observations, else 0).
std::vector<double> RollingVolatility(const std::vector<double>& x,
                                      int64_t w);

// Annualized realized volatility of a daily log-return series.
double AnnualizedVolatility(const std::vector<double>& daily_returns,
                            double periods_per_year = 252.0);

// Per-band energy fractions of a signal under `num_bands` horizon bands:
// element b is sum(band_b^2) / sum over all bands. Measures how the
// signal's variance distributes across horizons.
std::vector<double> BandEnergyFractions(const std::vector<double>& x,
                                        int64_t num_bands);

}  // namespace cit::signal

#endif  // CIT_SIGNAL_ANALYSIS_H_
