#include "signal/filters.h"

#include <cmath>

#include "common/check.h"

namespace cit::signal {

std::vector<double> SimpleMovingAverage(const std::vector<double>& x,
                                        int64_t w) {
  CIT_CHECK_GE(w, 1);
  std::vector<double> out(x.size());
  double running = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    running += x[i];
    if (static_cast<int64_t>(i) >= w) running -= x[i - w];
    const int64_t count =
        std::min<int64_t>(static_cast<int64_t>(i) + 1, w);
    out[i] = running / static_cast<double>(count);
  }
  return out;
}

std::vector<double> ExponentialMovingAverage(const std::vector<double>& x,
                                             double alpha) {
  CIT_CHECK(alpha > 0.0 && alpha <= 1.0);
  std::vector<double> out(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = (i == 0) ? x[0] : alpha * x[i] + (1.0 - alpha) * out[i - 1];
  }
  return out;
}

std::vector<double> L1Median(const std::vector<std::vector<double>>& points,
                             int64_t max_iters, double tol) {
  CIT_CHECK(!points.empty());
  const size_t dim = points[0].size();
  // Start at the coordinate-wise mean.
  std::vector<double> y(dim, 0.0);
  for (const auto& p : points) {
    CIT_CHECK_EQ(p.size(), dim);
    for (size_t d = 0; d < dim; ++d) y[d] += p[d];
  }
  for (size_t d = 0; d < dim; ++d) y[d] /= static_cast<double>(points.size());

  for (int64_t iter = 0; iter < max_iters; ++iter) {
    std::vector<double> next(dim, 0.0);
    double weight_sum = 0.0;
    for (const auto& p : points) {
      double dist2 = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        const double diff = p[d] - y[d];
        dist2 += diff * diff;
      }
      const double dist = std::sqrt(dist2);
      // A point coinciding with the current estimate would blow up the
      // weight; Weiszfeld's convention is to return it directly.
      if (dist < 1e-12) return p;
      const double w = 1.0 / dist;
      weight_sum += w;
      for (size_t d = 0; d < dim; ++d) next[d] += w * p[d];
    }
    double shift = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      next[d] /= weight_sum;
      shift += std::fabs(next[d] - y[d]);
    }
    y = std::move(next);
    if (shift < tol) break;
  }
  return y;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  CIT_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (n == 0) return 0.0;
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace cit::signal
