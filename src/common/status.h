#ifndef CIT_COMMON_STATUS_H_
#define CIT_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace cit {

// Error codes for fallible operations. Mirrors the RocksDB/Arrow idiom:
// library code reports recoverable failures through Status/Result rather
// than exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
};

// A lightweight status object carrying a code and a human-readable message.
// Cheap to copy in the OK case (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "<CodeName>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status, so callers can write
//   Result<Panel> r = LoadCsv(path);
//   if (!r.ok()) return r.status();
//   Panel p = std::move(r).value();
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace cit

#endif  // CIT_COMMON_STATUS_H_
