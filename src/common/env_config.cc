#include "common/env_config.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace cit {
namespace {

bool EnvFlagSet(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::strcmp(v, "0") != 0 && std::strcmp(v, "") != 0;
}

}  // namespace

RunScale GetRunScale() {
  static const RunScale kScale = [] {
    if (EnvFlagSet("CIT_FULL")) return RunScale::kFull;
    if (EnvFlagSet("CIT_FAST")) return RunScale::kFast;
    return RunScale::kDefault;
  }();
  return kScale;
}

int NumThreads() {
  static const int kThreads = [] {
    if (const char* v = std::getenv("CIT_NUM_THREADS")) {
      const int n = std::atoi(v);
      if (n >= 1) return std::min(n, 64);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return std::clamp(static_cast<int>(hw), 1, 16);
  }();
  return kThreads;
}

bool AllowOversubscribe() {
  static const bool kAllow = EnvFlagSet("CIT_OVERSUBSCRIBE");
  return kAllow;
}

KernelChoice GetKernelChoice() {
  static const KernelChoice kChoice = [] {
    const char* v = std::getenv("CIT_KERNEL");
    if (v != nullptr) {
      if (std::strcmp(v, "scalar") == 0) return KernelChoice::kScalar;
      if (std::strcmp(v, "simd") == 0) return KernelChoice::kSimd;
    }
    return KernelChoice::kAuto;
  }();
  return kChoice;
}

int ScaledSeeds() {
  switch (GetRunScale()) {
    case RunScale::kFast:
      return 1;
    case RunScale::kDefault:
      return 1;
    case RunScale::kFull:
      return 5;  // the paper averages over 5 random seeds
  }
  return 1;
}

double ScaledStepFactor() {
  switch (GetRunScale()) {
    case RunScale::kFast:
      return 0.25;
    case RunScale::kDefault:
      return 1.0;
    case RunScale::kFull:
      return 4.0;
  }
  return 1.0;
}

}  // namespace cit
