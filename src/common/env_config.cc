#include "common/env_config.h"

#include <cstdlib>
#include <cstring>

namespace cit {
namespace {

bool EnvFlagSet(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::strcmp(v, "0") != 0 && std::strcmp(v, "") != 0;
}

}  // namespace

RunScale GetRunScale() {
  static const RunScale kScale = [] {
    if (EnvFlagSet("CIT_FULL")) return RunScale::kFull;
    if (EnvFlagSet("CIT_FAST")) return RunScale::kFast;
    return RunScale::kDefault;
  }();
  return kScale;
}

int ScaledSeeds() {
  switch (GetRunScale()) {
    case RunScale::kFast:
      return 1;
    case RunScale::kDefault:
      return 1;
    case RunScale::kFull:
      return 5;  // the paper averages over 5 random seeds
  }
  return 1;
}

double ScaledStepFactor() {
  switch (GetRunScale()) {
    case RunScale::kFast:
      return 0.25;
    case RunScale::kDefault:
      return 1.0;
    case RunScale::kFull:
      return 4.0;
  }
  return 1.0;
}

}  // namespace cit
