#include "common/thread_pool.h"

#include <algorithm>

#include "common/env_config.h"
#include "obs/telemetry.h"

namespace cit {
namespace {

// True while this thread is executing a ParallelFor chunk (worker or
// caller). Nested ParallelFor calls from such a thread run serially.
thread_local bool t_in_parallel_region = false;

}  // namespace

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(NumThreads());
  return *pool;
}

namespace {
// Absolute bound on workers a pool will ever spawn.
constexpr int kHardMaxThreads = 64;

// Effective cap: hardware concurrency unless CIT_OVERSUBSCRIBE lifts the
// clamp (hardware_concurrency() may report 0 when unknown — no clamp then).
int EffectiveMaxThreads() {
  if (AllowOversubscribe()) return kHardMaxThreads;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw >= 1 ? std::min(hw, kHardMaxThreads) : kHardMaxThreads;
}
}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : max_threads_(EffectiveMaxThreads()),
      active_threads_(std::clamp(num_threads, 1, max_threads_)) {
  workers_.reserve(static_cast<size_t>(active_threads_ - 1));
  for (int i = 0; i < active_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::SetNumThreads(int n) {
  std::unique_lock<std::mutex> lock(mu_);
  active_threads_ = std::clamp(n, 1, max_threads_);
  // A freshly spawned worker just blocks on work_cv_ until a job arrives.
  while (static_cast<int>(workers_.size()) < active_threads_ - 1) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_job = 0;
  while (true) {
    const std::function<void(int64_t, int64_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && job_id_ != seen_job);
      });
      if (shutdown_) return;
      seen_job = job_id_;
      job = job_;
    }
    // Claim and run chunks until the job is exhausted.
    while (true) {
      int64_t chunk;
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (job_ != job || next_chunk_ >= num_chunks_) break;
        chunk = next_chunk_++;
      }
      const int64_t lo = job_begin_ + chunk * job_chunk_size_;
      const int64_t hi = std::min(job_end_, lo + job_chunk_size_);
      {
        CIT_OBS_SPAN("threadpool.chunk_worker");
        CIT_OBS_COUNT("threadpool.chunks_worker", 1);
        t_in_parallel_region = true;
        (*job)(lo, hi);
        t_in_parallel_region = false;
      }
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (++done_chunks_ == num_chunks_) done_cv_.notify_all();
      }
    }
  }
}

bool ThreadPool::InParallelRegion() { return t_in_parallel_region; }

void ThreadPool::ForkJoin(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<int64_t>(grain, 1);
  int threads;
  {
    std::unique_lock<std::mutex> lock(mu_);
    threads = active_threads_.load(std::memory_order_relaxed);
    // A nested call, a tiny range, or a pool already mid-job runs inline.
    if (t_in_parallel_region || threads <= 1 || n <= grain ||
        job_ != nullptr) {
      lock.unlock();
      CIT_OBS_COUNT("threadpool.inline_jobs", 1);
      body(begin, end);
      return;
    }
    const int64_t max_chunks =
        std::min<int64_t>(threads, (n + grain - 1) / grain);
    job_chunk_size_ = (n + max_chunks - 1) / max_chunks;
    num_chunks_ = (n + job_chunk_size_ - 1) / job_chunk_size_;
    job_begin_ = begin;
    job_end_ = end;
    next_chunk_ = 0;
    done_chunks_ = 0;
    job_ = &body;
    ++job_id_;
  }
  // Fork-to-join latency of the whole job; the chunk spans below break the
  // same interval down per executing thread.
  CIT_OBS_SPAN("threadpool.job");
  CIT_OBS_COUNT("threadpool.jobs", 1);
  CIT_OBS_GAUGE("threadpool.queue_depth", num_chunks_);
  work_cv_.notify_all();
  // The caller participates: claim chunks like a worker.
  while (true) {
    int64_t chunk;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (next_chunk_ >= num_chunks_) break;
      chunk = next_chunk_++;
    }
    const int64_t lo = begin + chunk * job_chunk_size_;
    const int64_t hi = std::min(end, lo + job_chunk_size_);
    {
      CIT_OBS_SPAN("threadpool.chunk_caller");
      CIT_OBS_COUNT("threadpool.chunks_caller", 1);
      t_in_parallel_region = true;
      body(lo, hi);
      t_in_parallel_region = false;
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (++done_chunks_ == num_chunks_) done_cv_.notify_all();
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return done_chunks_ == num_chunks_; });
    job_ = nullptr;
  }
}

}  // namespace cit
