#ifndef CIT_COMMON_ENV_CONFIG_H_
#define CIT_COMMON_ENV_CONFIG_H_

namespace cit {

// Experiment scale selected via environment variables:
//   CIT_FAST=1  -> smoke scale (CI-friendly, seconds per experiment)
//   default     -> reduced scale that preserves the paper's orderings
//   CIT_FULL=1  -> paper-scale asset counts, more seeds and steps
enum class RunScale { kFast, kDefault, kFull };

// Reads CIT_FAST / CIT_FULL once and caches the answer.
RunScale GetRunScale();

// Maximum threads the math kernels may use, read once from CIT_NUM_THREADS.
// Unset or invalid values fall back to the hardware concurrency (clamped to
// [1, 16]). This sizes the global ThreadPool; the active count can still be
// lowered at runtime via ThreadPool::SetNumThreads.
int NumThreads();

// True when CIT_OVERSUBSCRIBE is set: the ThreadPool then honors thread
// counts above hardware_concurrency() instead of clamping them. Off by
// default because oversubscribing a small host makes every fork/join
// strictly slower (BENCH_math.json once recorded 4-thread GEMM losing to
// 1-thread on a 1-core box); the determinism contract makes the clamp
// result-invariant. TSan runs enable it to exercise real cross-thread
// interleavings regardless of host size.
bool AllowOversubscribe();

// Kernel backend requested via CIT_KERNEL, read once: "scalar" or "simd"
// force a backend, unset (or any other value) means auto — prefer the SIMD
// backend when the build compiled an ISA path. Resolution against what the
// build actually provides happens in math/kernels.cc (a forced "simd" on a
// scalar-only build falls back to scalar).
enum class KernelChoice { kAuto, kScalar, kSimd };
KernelChoice GetKernelChoice();

// Convenience multipliers derived from the run scale.
int ScaledSeeds();           // seeds to average over (paper: 5)
double ScaledStepFactor();   // multiplier applied to training-step budgets

}  // namespace cit

#endif  // CIT_COMMON_ENV_CONFIG_H_
