#ifndef CIT_COMMON_CHECK_H_
#define CIT_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant checks for programmer errors (shape mismatches, out-of-bounds
// indices, violated preconditions). These abort: such failures are bugs, not
// recoverable conditions, and must not be silently ignored in release builds.
// Fallible operations (I/O, parsing, user-supplied config) use Status instead.

#define CIT_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CIT_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define CIT_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CIT_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Debug-only variants for per-element validation too hot for release
// builds (e.g. positivity of every ag::Log input). Compiled out under
// NDEBUG; the condition is not evaluated there.
#ifndef NDEBUG
#define CIT_DCHECK(cond) CIT_CHECK(cond)
#define CIT_DCHECK_MSG(cond, msg) CIT_CHECK_MSG(cond, msg)
#else
#define CIT_DCHECK(cond) \
  do {                   \
  } while (0)
#define CIT_DCHECK_MSG(cond, msg) \
  do {                            \
  } while (0)
#endif

#define CIT_CHECK_EQ(a, b) CIT_CHECK((a) == (b))
#define CIT_CHECK_NE(a, b) CIT_CHECK((a) != (b))
#define CIT_CHECK_LT(a, b) CIT_CHECK((a) < (b))
#define CIT_CHECK_LE(a, b) CIT_CHECK((a) <= (b))
#define CIT_CHECK_GT(a, b) CIT_CHECK((a) > (b))
#define CIT_CHECK_GE(a, b) CIT_CHECK((a) >= (b))

#endif  // CIT_COMMON_CHECK_H_
