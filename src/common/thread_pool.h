#ifndef CIT_COMMON_THREAD_POOL_H_
#define CIT_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/telemetry.h"

namespace cit {

// A small fixed-size pool used to parallelize the math kernels. Design
// constraints, in order of importance:
//
//  1. Determinism: ParallelFor partitions [begin, end) into contiguous
//     chunks whose boundaries depend only on the range and the configured
//     thread count — never on scheduling. Kernels write disjoint output
//     regions per chunk and keep each output element's reduction order
//     fixed, so results are bitwise identical for any thread count.
//  2. No work stealing, no task futures: a ParallelFor is a single fork /
//     join. The calling thread executes chunk 0 itself, worker threads run
//     the rest, and the call returns only after every chunk finished.
//  3. Re-entrancy safety: a ParallelFor issued from inside a worker (e.g.
//     a parallel kernel calling another kernel) degrades to serial
//     execution instead of deadlocking on the pool's own workers.
//
// The pool is lazily constructed on first use with NumThreads() - 1
// workers (see env_config.h; CIT_NUM_THREADS sets it). SetNumThreads()
// adjusts the active count at runtime, spawning further workers on demand
// (capped at max_threads()) — used by tests and benchmarks to compare
// thread counts inside one process.
//
// Thread counts above hardware_concurrency() are clamped: oversubscribing
// only adds contention on every fork/join (a 1-core host once measured
// 4-thread GEMM *slower* than 1-thread), and the determinism contract
// guarantees the clamp cannot change any result. Set CIT_OVERSUBSCRIBE=1
// to lift the clamp (TSan runs do, so races are exercised on any host).
class ThreadPool {
 public:
  // The process-wide pool used by the math kernels.
  static ThreadPool& Global();

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Threads usable by the next ParallelFor (>= 1, counting the caller).
  int num_threads() const { return active_threads_; }
  // Cap on SetNumThreads (not a promise that this many workers exist yet):
  // min(64, hardware_concurrency) unless CIT_OVERSUBSCRIBE lifts the
  // hardware clamp.
  int max_threads() const { return max_threads_; }
  // Clamped to [1, max_threads()]; spawns missing workers.
  void SetNumThreads(int n);

  // Runs body(chunk_begin, chunk_end) over a deterministic partition of
  // [begin, end). Ranges shorter than `grain` (or with one active thread,
  // or issued from inside another ParallelFor chunk) run inline on the
  // caller — on that path `body` is invoked directly, with no pool lock
  // and no std::function wrapping, so serial kernel dispatch costs a
  // branch rather than a mutex and a heap allocation. `body` must be safe
  // to invoke concurrently on disjoint sub-ranges.
  template <typename Body>
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const Body& body) {
    if (end <= begin) return;
    if (InParallelRegion() ||
        active_threads_.load(std::memory_order_relaxed) <= 1 ||
        end - begin <= std::max<int64_t>(grain, 1)) {
      CIT_OBS_COUNT("threadpool.inline_jobs", 1);
      body(begin, end);
      return;
    }
    ForkJoin(begin, end, grain, std::function<void(int64_t, int64_t)>(body));
  }

  // True while the calling thread is executing a ParallelFor chunk;
  // nested calls from such a thread always run inline.
  static bool InParallelRegion();

 private:
  void WorkerLoop();

  // The locked fork/join slow path. Re-checks the inline conditions under
  // the pool mutex (another thread may hold an in-flight job), then fans
  // `body` out across the workers and blocks until every chunk finished.
  void ForkJoin(int64_t begin, int64_t end, int64_t grain,
                const std::function<void(int64_t, int64_t)>& body);

  const int max_threads_;
  std::atomic<int> active_threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: job posted / exit
  std::condition_variable done_cv_;   // signals caller: all chunks done
  bool shutdown_ = false;

  // Current fork/join job. Workers claim chunk indices from next_chunk_.
  const std::function<void(int64_t, int64_t)>* job_ = nullptr;
  int64_t job_begin_ = 0;
  int64_t job_chunk_size_ = 0;
  int64_t job_end_ = 0;
  int64_t num_chunks_ = 0;
  int64_t next_chunk_ = 0;
  int64_t done_chunks_ = 0;
  uint64_t job_id_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace cit

#endif  // CIT_COMMON_THREAD_POOL_H_
