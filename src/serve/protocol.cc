#include "serve/protocol.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cit::serve {

namespace {

// Splits on runs of spaces/tabs. The grammar says single spaces; being
// lenient here costs nothing and keeps hand-typed client sessions working.
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

// Full-token strict parses: trailing junk ("12x", "1.5e") is rejected, so
// a corrupt line can never half-parse into a plausible number.
bool ParseI64(std::string_view tok, int64_t* out) {
  char buf[32];
  if (tok.empty() || tok.size() >= sizeof(buf)) return false;
  std::memcpy(buf, tok.data(), tok.size());
  buf[tok.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + tok.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

// Strict double parse. The wire grammar's numbers are the plain
// decimal/scientific spellings "%.17g" emits (plus an optional explicit
// sign) — not the full C float grammar: strtod is locale-dependent (a
// comma-decimal locale truncates "1.5" at the dot) and also accepts hex
// floats and "inf"/"nan"/"infinity" spellings the protocol never
// intended. So: a character pre-scan pins the accepted alphabet, then
// locale-independent std::from_chars must consume the whole token. Values
// outside double range ("1e309") are rejected outright.
bool ParseF64(std::string_view tok, double* out) {
  if (tok.empty() || tok.size() >= 64) return false;
  if (tok[0] == '+') tok.remove_prefix(1);  // one explicit plus is fine
  // A second sign ("++1") is malformed; from_chars rejects a leading '+'
  // itself but the strtod fallback would not, so pin it here for both.
  if (tok.empty() || tok[0] == '+') return false;
  for (const char ch : tok) {
    const bool allowed = (ch >= '0' && ch <= '9') || ch == '.' ||
                         ch == 'e' || ch == 'E' || ch == '+' || ch == '-';
    if (!allowed) return false;  // letters (inf/nan/hex), commas, ...
  }
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  const std::from_chars_result r =
      std::from_chars(tok.data(), tok.data() + tok.size(), *out);
  return r.ec == std::errc() && r.ptr == tok.data() + tok.size();
#else
  // Fallback for standard libraries without floating-point from_chars.
  // strtod's extra spellings (hex, inf/nan, locale decimal separators
  // other than '.') are all excluded by the pre-scan above, so a
  // full-token strtod over this alphabet parses exactly the intended
  // grammar (modulo a comma-decimal locale rejecting '.', which no
  // daemon deployment sets — the daemon never calls setlocale).
  char buf[64];
  std::memcpy(buf, tok.data(), tok.size());
  buf[tok.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + tok.size()) return false;
  *out = v;
  return true;
#endif
}

Request Bad(std::string code, std::string msg) {
  Request r;
  r.kind = Request::kBad;
  r.error_code = std::move(code);
  r.error = std::move(msg);
  return r;
}

}  // namespace

Request ParseRequest(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const std::vector<std::string_view> tok = Tokenize(line);
  if (tok.empty()) return Bad("proto", "empty request");

  Request r;
  if (tok[0] == "ping") {
    if (tok.size() != 1) return Bad("proto", "ping takes no arguments");
    r.kind = Request::kPing;
    return r;
  }
  if (tok[0] == "stats") {
    if (tok.size() != 1) return Bad("proto", "stats takes no arguments");
    r.kind = Request::kStats;
    return r;
  }
  if (tok[0] == "swap") {
    if (tok.size() != 2) return Bad("proto", "usage: swap <weights-path>");
    r.kind = Request::kSwap;
    r.path = std::string(tok[1]);
    return r;
  }
  if (tok[0] == "decide") {
    if (tok.size() < 3) {
      return Bad("proto", "usage: decide <rows> <cols> <prices...>");
    }
    if (!ParseI64(tok[1], &r.rows) || !ParseI64(tok[2], &r.cols) ||
        r.rows <= 0 || r.cols <= 0) {
      return Bad("proto", "rows/cols must be positive integers");
    }
    if (r.rows > kMaxCells || r.cols > kMaxCells ||
        r.rows * r.cols > kMaxCells) {
      return Bad("input", "price window exceeds the cell limit");
    }
    const size_t cells = static_cast<size_t>(r.rows * r.cols);
    if (tok.size() - 3 != cells) {
      return Bad("proto", "expected " + std::to_string(cells) +
                              " prices, got " +
                              std::to_string(tok.size() - 3));
    }
    r.prices.reserve(cells);
    for (size_t i = 3; i < tok.size(); ++i) {
      double v;
      if (!ParseF64(tok[i], &v)) {
        return Bad("proto", "unparseable price token");
      }
      // Prices feed log-relatives and normalized windows; zero, negative,
      // or non-finite values are invalid market data, not a server bug.
      if (!std::isfinite(v) || v <= 0.0) {
        return Bad("input", "prices must be finite and positive");
      }
      r.prices.push_back(v);
    }
    r.kind = Request::kDecide;
    return r;
  }
  return Bad("proto", "unknown command");
}

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

std::string FormatDecideResponse(uint64_t generation,
                                 const std::vector<double>& weights) {
  std::string out = "ok ";
  out += std::to_string(generation);
  for (double w : weights) {
    out.push_back(' ');
    AppendDouble(&out, w);
  }
  out.push_back('\n');
  return out;
}

std::string FormatError(std::string_view code, std::string_view msg) {
  std::string out = "err ";
  out += code;
  out.push_back(' ');
  for (char c : msg) out.push_back(c == '\n' || c == '\r' ? ' ' : c);
  out.push_back('\n');
  return out;
}

bool ParseDecideResponse(std::string_view line, uint64_t* generation,
                         std::vector<double>* weights) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const std::vector<std::string_view> tok = Tokenize(line);
  if (tok.size() < 2 || tok[0] != "ok") return false;
  int64_t gen;
  if (!ParseI64(tok[1], &gen) || gen < 0) return false;
  *generation = static_cast<uint64_t>(gen);
  weights->clear();
  weights->reserve(tok.size() - 2);
  for (size_t i = 2; i < tok.size(); ++i) {
    double v;
    if (!ParseF64(tok[i], &v)) return false;
    weights->push_back(v);
  }
  return true;
}

}  // namespace cit::serve
