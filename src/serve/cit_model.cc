#include "serve/cit_model.h"

#include <memory>
#include <utility>

#include "core/trader.h"
#include "market/source.h"

namespace cit::serve {

namespace {

class CitServedModel : public ServedModel {
 public:
  CitServedModel(int64_t num_assets, const core::CrossInsightConfig& config)
      : trader_(num_assets, config) {}

  int64_t num_assets() const override { return trader_.num_assets(); }
  // NormalizedWindow/HorizonBandWindows need `window` rows of history to
  // decide at the panel's last day.
  int64_t min_days() const override { return trader_.config().window; }

  Result<std::vector<double>> Decide(
      const market::PricePanel& panel) override {
    // Each request panel gets a fresh source (and monotonic source id), so
    // the source-keyed feature cache never serves a previous request's
    // features even though the panel's stack address recycles. Reset()
    // drops the held actions, making every request an independent first
    // decision.
    market::InMemorySource source(&panel);
    trader_.Reset();
    return trader_.DecideWeights(market::PanelView(&source),
                                 panel.num_days() - 1);
  }

  std::vector<Result<std::vector<double>>> DecideBatch(
      const std::vector<const market::PricePanel*>& panels) override {
    // DecideWeightsBatch is stateless by construction (uniform previous
    // actions, feature cache bypassed), so no ClearFeatureCache/Reset
    // dance is needed; each returned vector is bitwise identical to
    // Decide on that panel alone.
    std::vector<std::vector<double>> weights =
        trader_.DecideWeightsBatch(panels);
    std::vector<Result<std::vector<double>>> out;
    out.reserve(weights.size());
    for (std::vector<double>& w : weights) out.push_back(std::move(w));
    return out;
  }

  Status LoadWeights(const std::string& path) override {
    return trader_.LoadModel(path);
  }

 private:
  core::CrossInsightTrader trader_;
};

}  // namespace

ModelFactory MakeCitModelFactory(int64_t num_assets,
                                 const core::CrossInsightConfig& config,
                                 std::string initial_weights_path) {
  return [num_assets, config,
          path = std::move(initial_weights_path)]() -> std::unique_ptr<ServedModel> {
    auto model = std::make_unique<CitServedModel>(num_assets, config);
    if (!path.empty() && !model->LoadWeights(path).ok()) return nullptr;
    return model;
  };
}

}  // namespace cit::serve
