#ifndef CIT_SERVE_PROTOCOL_H_
#define CIT_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

// Wire format of the serving daemon (see DESIGN.md §10 for the grammar).
// The protocol is line-delimited ASCII over a local stream socket: one
// request per '\n'-terminated line, one response line per request, in
// order. Numbers travel as "%.17g" decimal, which round-trips IEEE-754
// doubles exactly — the property the bitwise serve-vs-library gate rests
// on. This header is pure parse/format (no I/O), so the adversarial
// request matrix can exercise it without sockets.
namespace cit::serve {

// Upper bound on rows*cols of one decide request, independent of the
// byte-length cap the server enforces: corrupt dimension fields must not
// drive allocations.
inline constexpr int64_t kMaxCells = int64_t{1} << 22;

struct Request {
  enum Kind {
    kPing,    // "ping"                      -> "ok pong <gen>"
    kStats,   // "stats"                     -> one-line registry JSON
    kDecide,  // "decide <rows> <cols> <v>*" -> "ok <gen> <w>*"
    kSwap,    // "swap <path>"               -> "ok swapped <gen>"
    kBad,     // anything else               -> "err <code> <msg>"
  };
  Kind kind = kBad;
  // kDecide: prices row-major [rows x cols], oldest day first.
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<double> prices;
  // kSwap: weights-file path.
  std::string path;
  // kBad: machine-readable code ("proto" | "input") and human detail.
  std::string error_code;
  std::string error;
};

// Parses one request line (no trailing '\n'; a trailing '\r' is
// tolerated). Never throws and never aborts: every malformed input yields
// kind == kBad with an error code — the server answers those with an err
// line instead of dropping the connection.
Request ParseRequest(std::string_view line);

// Appends "%.17g" (exact double round-trip) to `out`.
void AppendDouble(std::string* out, double v);

// "ok <gen> <w1> ... <wn>\n"
std::string FormatDecideResponse(uint64_t generation,
                                 const std::vector<double>& weights);
// "err <code> <msg>\n" (msg newlines are replaced to keep the framing).
std::string FormatError(std::string_view code, std::string_view msg);

// Parses a decide response; returns false unless the line is a
// well-formed "ok <gen> <w>*" (clients + tests).
bool ParseDecideResponse(std::string_view line, uint64_t* generation,
                         std::vector<double>* weights);

}  // namespace cit::serve

#endif  // CIT_SERVE_PROTOCOL_H_
