#ifndef CIT_SERVE_CIT_MODEL_H_
#define CIT_SERVE_CIT_MODEL_H_

#include <cstdint>
#include <string>

#include "core/config.h"
#include "serve/server.h"

namespace cit::serve {

// A ModelFactory serving the cross-insight trader: each worker gets its
// own CrossInsightTrader replica built from (num_assets, config) and, when
// `initial_weights_path` is non-empty, loaded from that weights file
// before the server starts accepting.
//
// The adapter makes serving stateless and address-safe: every Decide
// clears the per-panel feature cache (request panels are short-lived and
// their addresses recycle) and resets the held-action execution state, so
// a served decision is bitwise-identical to ClearFeatureCache() + Reset()
// + DecideWeights(panel, last_day) on a library-held trader with the same
// weights — the equivalence the serve soak test pins down.
ModelFactory MakeCitModelFactory(int64_t num_assets,
                                 const core::CrossInsightConfig& config,
                                 std::string initial_weights_path = "");

}  // namespace cit::serve

#endif  // CIT_SERVE_CIT_MODEL_H_
