#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/telemetry.h"
#include "serve/protocol.h"

namespace cit::serve {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One client connection as seen by its worker. All I/O is non-blocking;
// buffers carry whatever a partial read/write left behind.
struct Conn {
  int fd = -1;
  uint64_t id = 0;  // worker-local, never reused; keys queued batch items
  std::string in;        // bytes received, not yet consumed as lines
  std::string out;       // response bytes not yet accepted by the kernel
  size_t out_off = 0;    // how much of `out` is already sent
  bool read_closed = false;      // peer shut down its write side
  bool close_after_flush = false;  // protocol violation: drain, then drop
  bool io_dead = false;  // this round's read detected a dead peer
  short revents = 0;  // this poll round's events, stashed before any erase
  // Forward-progress deadline: armed while a partial request or pending
  // response exists, re-armed on every completed request / flushed byte.
  int64_t deadline_ms = -1;
  int64_t idle_at_ms = -1;  // drop when idle past this (-1 = never)

  // Per-connection response ordering across the batch queue: every request
  // answered out of line (a batched decide) claims a slot here in request
  // order; inline replies arriving while a slot is pending queue behind it
  // instead of overtaking. Slots drain front-to-back into `out` once ready.
  struct Slot {
    bool ready = false;
    std::string text;
  };
  std::deque<Slot> slots;

  size_t pending_out() const { return out.size() - out_off; }
};

// Appends a response in per-connection request order: directly to the
// socket buffer when nothing is pending, behind the pending slots when a
// batched decide is still in flight.
void Respond(Conn& c, std::string text) {
  if (c.slots.empty()) {
    c.out += text;
  } else {
    c.slots.push_back(Conn::Slot{true, std::move(text)});
  }
}

void DrainReadySlots(Conn& c) {
  while (!c.slots.empty() && c.slots.front().ready) {
    c.out += c.slots.front().text;
    c.slots.pop_front();
  }
}

void CloseFd(int fd) {
  int rc;
  do {
    rc = ::close(fd);
  } while (rc != 0 && errno == EINTR);
}

}  // namespace

struct Server::Impl {
  ServerConfig config;
  ModelFactory factory;

  int listen_fd = -1;
  std::vector<std::thread> workers;
  std::atomic<bool> stop{false};
  bool started = false;

  // Worker start handshake: Start() returns only after every worker built
  // its replica (factory runs on the worker thread so thread-affine state
  // — arenas, compiled-plan ownership — pins where it will be used).
  std::mutex start_mu;
  std::condition_variable start_cv;
  int workers_ready = 0;
  int workers_failed = 0;

  // Hot-swap publication: a successful "swap" validates+commits on the
  // handling worker, then publishes the path and bumps the generation.
  // Other workers notice the bump and reload lazily, serialized by
  // swap_mu so two replicas never race on reading a file being replaced.
  std::mutex swap_mu;
  std::string swap_path;
  std::atomic<uint64_t> generation{0};

  struct Worker {
    std::unique_ptr<ServedModel> replica;
    uint64_t local_gen = 0;
  };

  // One decide request parked on the worker's batch queue, keyed back to
  // its connection by id (ids are never reused, so a connection dropped
  // while its request is queued just discards the response).
  struct PendingDecide {
    uint64_t conn_id;
    market::PricePanel panel;
  };
  struct BatchState {
    std::deque<PendingDecide> queue;
    int64_t deadline_us = -1;  // flush-by time for the oldest queued item
  };

  void WorkerMain();
  bool MaybeReload(Worker& w, std::string* error);
  void HandleLine(Worker& w, Conn& c, std::string_view line, BatchState& bs);
  void HandleDecide(Worker& w, Conn& c, const Request& req, BatchState& bs);
  std::string HandleSwap(Worker& w, const Request& req);
  void FlushBatches(Worker& w, std::vector<Conn>& conns, BatchState& bs);
  void ExecuteBatch(Worker& w, std::vector<Conn>& conns, BatchState& bs);

  // Drains the socket into conn.in. Returns false if the connection died
  // (error/reset); EOF just marks read_closed.
  bool ReadInto(Conn& conn);
  // Pushes pending response bytes. Returns false if the peer is gone.
  bool FlushOut(Conn& conn);
};

Server::Server(ServerConfig config, ModelFactory factory)
    : impl_(new Impl) {
  impl_->config = std::move(config);
  impl_->factory = std::move(factory);
}

Server::~Server() { Stop(); }

Status Server::Start() {
  Impl& im = *impl_;
  if (im.started) return Status::FailedPrecondition("server already started");
  if (im.config.workers < 1) {
    return Status::InvalidArgument("server needs at least one worker");
  }
  im.config.max_batch = std::max(im.config.max_batch, 1);
  im.config.batch_window_us = std::max<int64_t>(im.config.batch_window_us, 0);
  if (!im.factory) {
    return Status::InvalidArgument("server needs a model factory");
  }

  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (im.config.socket_path.empty() ||
      im.config.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unusable socket path: \"" +
                                   im.config.socket_path + "\"");
  }
  std::memcpy(addr.sun_path, im.config.socket_path.c_str(),
              im.config.socket_path.size() + 1);

  const int fd =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  // A previous run's stale socket file would make bind fail with EADDRINUSE.
  ::unlink(im.config.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int e = errno;
    CloseFd(fd);
    return Status::IoError("bind " + im.config.socket_path + ": " +
                           std::strerror(e));
  }
  if (::listen(fd, im.config.listen_backlog) != 0) {
    const int e = errno;
    CloseFd(fd);
    ::unlink(im.config.socket_path.c_str());
    return Status::IoError(std::string("listen: ") + std::strerror(e));
  }
  im.listen_fd = fd;
  im.stop.store(false, std::memory_order_relaxed);
  im.workers_ready = 0;
  im.workers_failed = 0;

  if (im.config.enable_telemetry) obs::SetEnabled(true);

  im.workers.reserve(static_cast<size_t>(im.config.workers));
  for (int i = 0; i < im.config.workers; ++i) {
    im.workers.emplace_back([this] { impl_->WorkerMain(); });
  }
  {
    std::unique_lock<std::mutex> lock(im.start_mu);
    im.start_cv.wait(lock, [&im] {
      return im.workers_ready + im.workers_failed == im.config.workers;
    });
    if (im.workers_failed > 0) {
      lock.unlock();
      im.started = true;  // so Stop() tears everything down
      Stop();
      return Status::Internal("model factory failed on a worker thread");
    }
  }
  im.started = true;
  CIT_OBS_GAUGE("serve.workers", im.config.workers);
  return Status::OK();
}

void Server::Stop() {
  Impl& im = *impl_;
  if (!im.started) return;
  im.stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : im.workers) {
    if (t.joinable()) t.join();
  }
  im.workers.clear();
  if (im.listen_fd >= 0) {
    CloseFd(im.listen_fd);
    im.listen_fd = -1;
    ::unlink(im.config.socket_path.c_str());
  }
  im.started = false;
}

bool Server::running() const { return impl_->started; }

uint64_t Server::generation() const {
  return impl_->generation.load(std::memory_order_acquire);
}

bool Server::Impl::ReadInto(Conn& conn) {
  for (;;) {
    char buf[4096];
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<size_t>(n));
      // Keep draining; a request can span many reads.
      continue;
    }
    if (n == 0) {  // orderly shutdown of the peer's write side
      conn.read_closed = true;
      return true;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;  // ECONNRESET and friends
  }
}

bool Server::Impl::FlushOut(Conn& conn) {
  while (conn.pending_out() > 0) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_off, conn.pending_out(),
               MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      conn.out_off += static_cast<size_t>(n);
      // Any flushed byte is forward progress: re-arm the stall deadline.
      conn.deadline_ms = NowMs() + config.request_deadline_ms;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // EPIPE (suppressed signal), ECONNRESET, ...
  }
  conn.out.clear();
  conn.out_off = 0;
  return true;
}

bool Server::Impl::MaybeReload(Impl::Worker& w, std::string* error) {
  if (generation.load(std::memory_order_acquire) == w.local_gen) return true;
  std::lock_guard<std::mutex> lock(swap_mu);
  const uint64_t gen = generation.load(std::memory_order_relaxed);
  if (gen == w.local_gen) return true;
  const Status s = w.replica->LoadWeights(swap_path);
  if (!s.ok()) {
    // The replica is unchanged (the loader is validate-then-commit); keep
    // serving the old generation rather than handing out wrong weights.
    CIT_OBS_COUNT("serve.reload_errors", 1);
    *error = s.message();
    return false;
  }
  w.local_gen = gen;
  return true;
}

void Server::Impl::HandleDecide(Impl::Worker& w, Conn& c, const Request& req,
                                BatchState& bs) {
  CIT_OBS_COUNT("serve.decides", 1);
  ServedModel& model = *w.replica;
  if (req.cols != model.num_assets()) {
    CIT_OBS_COUNT("serve.input_errors", 1);
    Respond(c, FormatError("input", "model serves " +
                                        std::to_string(model.num_assets()) +
                                        " assets, request has " +
                                        std::to_string(req.cols)));
    return;
  }
  if (req.rows < model.min_days()) {
    CIT_OBS_COUNT("serve.input_errors", 1);
    Respond(c, FormatError("input", "model needs >= " +
                                        std::to_string(model.min_days()) +
                                        " days, request has " +
                                        std::to_string(req.rows)));
    return;
  }
  market::PricePanel panel(req.rows, req.cols);
  for (int64_t d = 0; d < req.rows; ++d) {
    for (int64_t a = 0; a < req.cols; ++a) {
      panel.SetClose(d, a, req.prices[static_cast<size_t>(d * req.cols + a)]);
    }
  }
  panel.set_train_end(req.rows);
  // Park the request on the batch queue; its response slot keeps later
  // inline replies on this connection from overtaking it.
  c.slots.push_back(Conn::Slot{});
  if (bs.queue.empty()) bs.deadline_us = NowUs() + config.batch_window_us;
  bs.queue.push_back(PendingDecide{c.id, std::move(panel)});
}

static Conn* FindConn(std::vector<Conn>& conns, uint64_t id) {
  for (Conn& c : conns) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

// Pops and executes one batch of up to max_batch queued decides: one
// DecideBatch forward (or the plain single-request Decide when only one
// request is pending), then de-interleaves the responses back onto each
// connection's first unanswered slot — queue order and per-connection slot
// order agree, both are request order.
void Server::Impl::ExecuteBatch(Impl::Worker& w, std::vector<Conn>& conns,
                                BatchState& bs) {
  const size_t k = std::min(bs.queue.size(),
                            static_cast<size_t>(config.max_batch));
  std::vector<PendingDecide> items;
  items.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    items.push_back(std::move(bs.queue.front()));
    bs.queue.pop_front();
  }
  CIT_OBS_HIST("serve.batch_size", k);
  std::vector<std::string> texts(k);
  std::string reload_error;
  if (!MaybeReload(w, &reload_error)) {
    for (std::string& t : texts) {
      t = FormatError("model", "weight reload failed: " + reload_error);
    }
  } else if (k == 1) {
    // Single-request fast path: the same call the unbatched daemon made.
    Result<std::vector<double>> r = w.replica->Decide(items[0].panel);
    if (!r.ok()) {
      CIT_OBS_COUNT("serve.input_errors", 1);
      texts[0] = FormatError("input", r.status().message());
    } else {
      texts[0] = FormatDecideResponse(w.local_gen, r.value());
    }
  } else {
    CIT_OBS_SPAN("serve.batch_us");
    CIT_OBS_COUNT("serve.batched_requests", k);
    std::vector<const market::PricePanel*> panels;
    panels.reserve(k);
    for (const PendingDecide& pd : items) panels.push_back(&pd.panel);
    std::vector<Result<std::vector<double>>> results =
        w.replica->DecideBatch(panels);
    for (size_t i = 0; i < k; ++i) {
      if (!results[i].ok()) {
        CIT_OBS_COUNT("serve.input_errors", 1);
        texts[i] = FormatError("input", results[i].status().message());
      } else {
        texts[i] = FormatDecideResponse(w.local_gen, results[i].value());
      }
    }
  }
  for (size_t i = 0; i < k; ++i) {
    Conn* c = FindConn(conns, items[i].conn_id);
    if (c == nullptr) continue;  // connection died while queued: discard
    for (Conn::Slot& s : c->slots) {
      if (!s.ready) {
        s.ready = true;
        s.text = std::move(texts[i]);
        break;
      }
    }
  }
}

void Server::Impl::FlushBatches(Impl::Worker& w, std::vector<Conn>& conns,
                                BatchState& bs) {
  // Full batches never wait for the window.
  while (bs.queue.size() >= static_cast<size_t>(config.max_batch)) {
    ExecuteBatch(w, conns, bs);
  }
  if (bs.queue.empty()) {
    bs.deadline_us = -1;
    return;
  }
  // A lone request never waits (low-load p50 must match the unbatched
  // daemon); a partial batch may hold on for up to batch_window_us.
  if (bs.queue.size() == 1 || NowUs() >= bs.deadline_us) {
    while (!bs.queue.empty()) ExecuteBatch(w, conns, bs);
    bs.deadline_us = -1;
  }
}

std::string Server::Impl::HandleSwap(Impl::Worker& w, const Request& req) {
  std::lock_guard<std::mutex> lock(swap_mu);
  // Validate by loading into this worker's replica; on failure nothing
  // changed anywhere and the old generation keeps serving.
  const Status s = w.replica->LoadWeights(req.path);
  if (!s.ok()) {
    CIT_OBS_COUNT("serve.swap_errors", 1);
    return FormatError("model", "swap rejected: " + s.message());
  }
  swap_path = req.path;
  const uint64_t gen =
      generation.fetch_add(1, std::memory_order_acq_rel) + 1;
  w.local_gen = gen;
  CIT_OBS_COUNT("serve.swaps", 1);
  CIT_OBS_GAUGE("serve.generation", gen);
  return "ok swapped " + std::to_string(gen) + "\n";
}

// Parses and dispatches one request line. Decides are parked on the batch
// queue (the span then covers parse+enqueue; execution is timed by
// serve.batch_us); everything else responds in place, behind any pending
// slots on the same connection so responses keep request order.
void Server::Impl::HandleLine(Impl::Worker& w, Conn& c, std::string_view line,
                              BatchState& bs) {
  CIT_OBS_SPAN("serve.request_us");
  CIT_OBS_COUNT("serve.requests", 1);
  const Request req = ParseRequest(line);
  switch (req.kind) {
    case Request::kPing: {
      std::string ignored;
      MaybeReload(w, &ignored);  // keep ping's generation fresh
      Respond(c, "ok pong " + std::to_string(w.local_gen) + "\n");
      return;
    }
    case Request::kStats:
      Respond(c, obs::Registry::Global().SnapshotJson() + "\n");
      return;
    case Request::kDecide:
      HandleDecide(w, c, req, bs);
      return;
    case Request::kSwap:
      Respond(c, HandleSwap(w, req));
      return;
    case Request::kBad:
    default:
      CIT_OBS_COUNT(req.error_code == "input" ? "serve.input_errors"
                                              : "serve.proto_errors",
                    1);
      Respond(c, FormatError(req.error_code, req.error));
      return;
  }
}

void Server::Impl::WorkerMain() {
  Worker w;
  w.replica = factory ? factory() : nullptr;
  {
    std::lock_guard<std::mutex> lock(start_mu);
    if (w.replica == nullptr) {
      ++workers_failed;
    } else {
      ++workers_ready;
    }
  }
  start_cv.notify_all();
  if (w.replica == nullptr) return;

  std::vector<Conn> conns;
  std::vector<pollfd> pfds;
  BatchState bs;
  uint64_t next_conn_id = 1;

  auto drop = [&](size_t i, const char* counter) {
    CIT_OBS_COUNT(counter, 1);
    CloseFd(conns[i].fd);
    conns.erase(conns.begin() + static_cast<ptrdiff_t>(i));
  };

  while (!stop.load(std::memory_order_relaxed)) {
    pfds.clear();
    pfds.push_back({listen_fd, POLLIN, 0});
    const int64_t now = NowMs();
    // Poll timeout: short enough to observe `stop` and the nearest
    // per-connection deadline, long enough not to spin.
    int64_t timeout = 50;
    for (const Conn& c : conns) {
      pollfd p{c.fd, 0, 0};
      if (!c.read_closed && !c.close_after_flush) p.events |= POLLIN;
      if (c.pending_out() > 0) p.events |= POLLOUT;
      pfds.push_back(p);
      for (int64_t dl : {c.deadline_ms, c.idle_at_ms}) {
        if (dl >= 0) timeout = std::min(timeout, std::max<int64_t>(dl - now, 0));
      }
    }
    if (bs.deadline_us >= 0) {
      // Wake in time to flush a waiting partial batch (round up so a
      // sub-millisecond window still sleeps at most one extra ms).
      const int64_t left_ms = (bs.deadline_us - NowUs() + 999) / 1000;
      timeout = std::min(timeout, std::max<int64_t>(left_ms, 0));
    }
    const int rc = ::poll(pfds.data(), pfds.size(), static_cast<int>(timeout));
    if (rc < 0 && errno != EINTR) break;  // poll itself failed: give up

    // Stash revents on the connections now: accepting appends to `conns`
    // and dropping erases from it, either of which would break the
    // conns[i] <-> pfds[i+1] index correspondence.
    for (size_t i = 1; i < pfds.size(); ++i) {
      conns[i - 1].revents = rc > 0 ? pfds[i].revents : 0;
    }

    // Accept everything pending; every worker polls the shared listen fd
    // and the kernel spreads wakeups across them.
    if (rc > 0 && (pfds[0].revents & POLLIN)) {
      for (;;) {
        const int cfd =
            ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (cfd < 0) {
          if (errno == EINTR) continue;
          break;  // EAGAIN: another worker won the race, or queue drained
        }
        if (config.sndbuf_bytes > 0) {
          const int v = config.sndbuf_bytes;
          ::setsockopt(cfd, SOL_SOCKET, SO_SNDBUF, &v, sizeof(v));
        }
        Conn c;
        c.fd = cfd;
        c.id = next_conn_id++;
        c.revents = POLLIN;  // probe immediately; a no-data read is cheap
        if (config.idle_timeout_ms > 0) {
          c.idle_at_ms = NowMs() + config.idle_timeout_ms;
        }
        conns.push_back(std::move(c));
        CIT_OBS_COUNT("serve.accepts", 1);
      }
    }

    // Pass A — ingest: read every readable connection and consume its
    // complete lines. Handling runs inline on this worker, on this
    // worker's replica — that is what keeps plan ownership single; decide
    // requests are parked on the batch queue instead of executing here.
    for (Conn& c : conns) {
      c.io_dead = false;
      if (c.revents & (POLLERR | POLLNVAL)) {
        c.io_dead = true;
        continue;
      }
      if ((c.revents & (POLLIN | POLLHUP)) && !c.read_closed &&
          !c.close_after_flush) {
        if (!ReadInto(c)) {
          c.io_dead = true;
          continue;
        }
      }
      while (!c.close_after_flush) {
        const size_t nl = c.in.find('\n');
        if (nl == std::string::npos) {
          if (c.in.size() > config.max_line) {
            CIT_OBS_COUNT("serve.oversized", 1);
            Respond(c, FormatError("oversized",
                                   "request line exceeds " +
                                       std::to_string(config.max_line) +
                                       " bytes"));
            c.close_after_flush = true;
            c.in.clear();
          }
          break;
        }
        std::string line = c.in.substr(0, nl);
        c.in.erase(0, nl + 1);
        if (line.size() > config.max_line) {
          CIT_OBS_COUNT("serve.oversized", 1);
          Respond(c, FormatError("oversized",
                                 "request line exceeds " +
                                     std::to_string(config.max_line) +
                                     " bytes"));
          c.close_after_flush = true;
          c.in.clear();
          break;
        }
        HandleLine(w, c, line, bs);
        // A completed request is forward progress.
        c.deadline_ms = NowMs() + config.request_deadline_ms;
      }
    }

    // Batcher: execute whatever the flush policy says is due and route the
    // responses onto each connection's pending slots.
    FlushBatches(w, conns, bs);

    // Pass B — egress and lifecycle.
    for (size_t i = 0; i < conns.size();) {
      Conn& c = conns[i];
      DrainReadySlots(c);
      bool alive = !c.io_dead;
      if (alive) alive = FlushOut(c);

      if (!alive) {
        drop(i, "serve.disconnects");
        continue;
      }
      if (c.slots.empty() && c.pending_out() == 0 && c.close_after_flush) {
        drop(i, "serve.disconnects");
        continue;
      }
      if (c.read_closed && c.in.empty() && c.slots.empty() &&
          c.pending_out() == 0) {
        drop(i, "serve.disconnects");  // clean end of session
        continue;
      }

      const int64_t t = NowMs();
      if (!c.in.empty() || c.pending_out() > 0 || !c.slots.empty()) {
        // Work pending (buffered bytes, unsent response, or a decide still
        // waiting in the batch window): stall deadline armed, idle clock
        // paused.
        if (c.deadline_ms < 0) c.deadline_ms = t + config.request_deadline_ms;
        c.idle_at_ms = -1;
        if (c.deadline_ms <= t) {
          drop(i, "serve.deadline_drops");
          continue;
        }
      } else {
        c.deadline_ms = -1;
        if (c.idle_at_ms < 0 && config.idle_timeout_ms > 0) {
          c.idle_at_ms = t + config.idle_timeout_ms;
        }
        if (c.idle_at_ms >= 0 && c.idle_at_ms <= t) {
          drop(i, "serve.idle_drops");
          continue;
        }
      }
      ++i;
    }
  }

  for (Conn& c : conns) CloseFd(c.fd);
}

}  // namespace cit::serve
