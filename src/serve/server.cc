#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/telemetry.h"
#include "serve/protocol.h"

namespace cit::serve {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One client connection as seen by its worker. All I/O is non-blocking;
// buffers carry whatever a partial read/write left behind.
struct Conn {
  int fd = -1;
  std::string in;        // bytes received, not yet consumed as lines
  std::string out;       // response bytes not yet accepted by the kernel
  size_t out_off = 0;    // how much of `out` is already sent
  bool read_closed = false;      // peer shut down its write side
  bool close_after_flush = false;  // protocol violation: drain, then drop
  short revents = 0;  // this poll round's events, stashed before any erase
  // Forward-progress deadline: armed while a partial request or pending
  // response exists, re-armed on every completed request / flushed byte.
  int64_t deadline_ms = -1;
  int64_t idle_at_ms = -1;  // drop when idle past this (-1 = never)

  size_t pending_out() const { return out.size() - out_off; }
};

void CloseFd(int fd) {
  int rc;
  do {
    rc = ::close(fd);
  } while (rc != 0 && errno == EINTR);
}

}  // namespace

struct Server::Impl {
  ServerConfig config;
  ModelFactory factory;

  int listen_fd = -1;
  std::vector<std::thread> workers;
  std::atomic<bool> stop{false};
  bool started = false;

  // Worker start handshake: Start() returns only after every worker built
  // its replica (factory runs on the worker thread so thread-affine state
  // — arenas, compiled-plan ownership — pins where it will be used).
  std::mutex start_mu;
  std::condition_variable start_cv;
  int workers_ready = 0;
  int workers_failed = 0;

  // Hot-swap publication: a successful "swap" validates+commits on the
  // handling worker, then publishes the path and bumps the generation.
  // Other workers notice the bump and reload lazily, serialized by
  // swap_mu so two replicas never race on reading a file being replaced.
  std::mutex swap_mu;
  std::string swap_path;
  std::atomic<uint64_t> generation{0};

  struct Worker {
    std::unique_ptr<ServedModel> replica;
    uint64_t local_gen = 0;
  };

  void WorkerMain();
  bool MaybeReload(Worker& w, std::string* error);
  std::string HandleLine(Worker& w, std::string_view line);
  std::string HandleDecide(Worker& w, const Request& req);
  std::string HandleSwap(Worker& w, const Request& req);

  // Drains the socket into conn.in. Returns false if the connection died
  // (error/reset); EOF just marks read_closed.
  bool ReadInto(Conn& conn);
  // Pushes pending response bytes. Returns false if the peer is gone.
  bool FlushOut(Conn& conn);
};

Server::Server(ServerConfig config, ModelFactory factory)
    : impl_(new Impl) {
  impl_->config = std::move(config);
  impl_->factory = std::move(factory);
}

Server::~Server() { Stop(); }

Status Server::Start() {
  Impl& im = *impl_;
  if (im.started) return Status::FailedPrecondition("server already started");
  if (im.config.workers < 1) {
    return Status::InvalidArgument("server needs at least one worker");
  }
  if (!im.factory) {
    return Status::InvalidArgument("server needs a model factory");
  }

  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (im.config.socket_path.empty() ||
      im.config.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unusable socket path: \"" +
                                   im.config.socket_path + "\"");
  }
  std::memcpy(addr.sun_path, im.config.socket_path.c_str(),
              im.config.socket_path.size() + 1);

  const int fd =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  // A previous run's stale socket file would make bind fail with EADDRINUSE.
  ::unlink(im.config.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int e = errno;
    CloseFd(fd);
    return Status::IoError("bind " + im.config.socket_path + ": " +
                           std::strerror(e));
  }
  if (::listen(fd, im.config.listen_backlog) != 0) {
    const int e = errno;
    CloseFd(fd);
    ::unlink(im.config.socket_path.c_str());
    return Status::IoError(std::string("listen: ") + std::strerror(e));
  }
  im.listen_fd = fd;
  im.stop.store(false, std::memory_order_relaxed);
  im.workers_ready = 0;
  im.workers_failed = 0;

  if (im.config.enable_telemetry) obs::SetEnabled(true);

  im.workers.reserve(static_cast<size_t>(im.config.workers));
  for (int i = 0; i < im.config.workers; ++i) {
    im.workers.emplace_back([this] { impl_->WorkerMain(); });
  }
  {
    std::unique_lock<std::mutex> lock(im.start_mu);
    im.start_cv.wait(lock, [&im] {
      return im.workers_ready + im.workers_failed == im.config.workers;
    });
    if (im.workers_failed > 0) {
      lock.unlock();
      im.started = true;  // so Stop() tears everything down
      Stop();
      return Status::Internal("model factory failed on a worker thread");
    }
  }
  im.started = true;
  CIT_OBS_GAUGE("serve.workers", im.config.workers);
  return Status::OK();
}

void Server::Stop() {
  Impl& im = *impl_;
  if (!im.started) return;
  im.stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : im.workers) {
    if (t.joinable()) t.join();
  }
  im.workers.clear();
  if (im.listen_fd >= 0) {
    CloseFd(im.listen_fd);
    im.listen_fd = -1;
    ::unlink(im.config.socket_path.c_str());
  }
  im.started = false;
}

bool Server::running() const { return impl_->started; }

uint64_t Server::generation() const {
  return impl_->generation.load(std::memory_order_acquire);
}

bool Server::Impl::ReadInto(Conn& conn) {
  for (;;) {
    char buf[4096];
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<size_t>(n));
      // Keep draining; a request can span many reads.
      continue;
    }
    if (n == 0) {  // orderly shutdown of the peer's write side
      conn.read_closed = true;
      return true;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;  // ECONNRESET and friends
  }
}

bool Server::Impl::FlushOut(Conn& conn) {
  while (conn.pending_out() > 0) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_off, conn.pending_out(),
               MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      conn.out_off += static_cast<size_t>(n);
      // Any flushed byte is forward progress: re-arm the stall deadline.
      conn.deadline_ms = NowMs() + config.request_deadline_ms;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // EPIPE (suppressed signal), ECONNRESET, ...
  }
  conn.out.clear();
  conn.out_off = 0;
  return true;
}

bool Server::Impl::MaybeReload(Impl::Worker& w, std::string* error) {
  if (generation.load(std::memory_order_acquire) == w.local_gen) return true;
  std::lock_guard<std::mutex> lock(swap_mu);
  const uint64_t gen = generation.load(std::memory_order_relaxed);
  if (gen == w.local_gen) return true;
  const Status s = w.replica->LoadWeights(swap_path);
  if (!s.ok()) {
    // The replica is unchanged (the loader is validate-then-commit); keep
    // serving the old generation rather than handing out wrong weights.
    CIT_OBS_COUNT("serve.reload_errors", 1);
    *error = s.message();
    return false;
  }
  w.local_gen = gen;
  return true;
}

std::string Server::Impl::HandleDecide(Impl::Worker& w, const Request& req) {
  CIT_OBS_COUNT("serve.decides", 1);
  ServedModel& model = *w.replica;
  if (req.cols != model.num_assets()) {
    CIT_OBS_COUNT("serve.input_errors", 1);
    return FormatError("input",
                       "model serves " + std::to_string(model.num_assets()) +
                           " assets, request has " + std::to_string(req.cols));
  }
  if (req.rows < model.min_days()) {
    CIT_OBS_COUNT("serve.input_errors", 1);
    return FormatError("input",
                       "model needs >= " + std::to_string(model.min_days()) +
                           " days, request has " + std::to_string(req.rows));
  }
  std::string reload_error;
  if (!MaybeReload(w, &reload_error)) {
    return FormatError("model", "weight reload failed: " + reload_error);
  }
  market::PricePanel panel(req.rows, req.cols);
  for (int64_t d = 0; d < req.rows; ++d) {
    for (int64_t a = 0; a < req.cols; ++a) {
      panel.SetClose(d, a, req.prices[static_cast<size_t>(d * req.cols + a)]);
    }
  }
  panel.set_train_end(req.rows);
  Result<std::vector<double>> r = model.Decide(panel);
  if (!r.ok()) {
    CIT_OBS_COUNT("serve.input_errors", 1);
    return FormatError("input", r.status().message());
  }
  return FormatDecideResponse(w.local_gen, r.value());
}

std::string Server::Impl::HandleSwap(Impl::Worker& w, const Request& req) {
  std::lock_guard<std::mutex> lock(swap_mu);
  // Validate by loading into this worker's replica; on failure nothing
  // changed anywhere and the old generation keeps serving.
  const Status s = w.replica->LoadWeights(req.path);
  if (!s.ok()) {
    CIT_OBS_COUNT("serve.swap_errors", 1);
    return FormatError("model", "swap rejected: " + s.message());
  }
  swap_path = req.path;
  const uint64_t gen =
      generation.fetch_add(1, std::memory_order_acq_rel) + 1;
  w.local_gen = gen;
  CIT_OBS_COUNT("serve.swaps", 1);
  CIT_OBS_GAUGE("serve.generation", gen);
  return "ok swapped " + std::to_string(gen) + "\n";
}

std::string Server::Impl::HandleLine(Impl::Worker& w, std::string_view line) {
  CIT_OBS_SPAN("serve.request_us");
  CIT_OBS_COUNT("serve.requests", 1);
  const Request req = ParseRequest(line);
  switch (req.kind) {
    case Request::kPing: {
      std::string ignored;
      MaybeReload(w, &ignored);  // keep ping's generation fresh
      return "ok pong " + std::to_string(w.local_gen) + "\n";
    }
    case Request::kStats:
      return obs::Registry::Global().SnapshotJson() + "\n";
    case Request::kDecide:
      return HandleDecide(w, req);
    case Request::kSwap:
      return HandleSwap(w, req);
    case Request::kBad:
    default:
      CIT_OBS_COUNT(req.error_code == "input" ? "serve.input_errors"
                                              : "serve.proto_errors",
                    1);
      return FormatError(req.error_code, req.error);
  }
}

void Server::Impl::WorkerMain() {
  Worker w;
  w.replica = factory ? factory() : nullptr;
  {
    std::lock_guard<std::mutex> lock(start_mu);
    if (w.replica == nullptr) {
      ++workers_failed;
    } else {
      ++workers_ready;
    }
  }
  start_cv.notify_all();
  if (w.replica == nullptr) return;

  std::vector<Conn> conns;
  std::vector<pollfd> pfds;

  auto drop = [&](size_t i, const char* counter) {
    CIT_OBS_COUNT(counter, 1);
    CloseFd(conns[i].fd);
    conns.erase(conns.begin() + static_cast<ptrdiff_t>(i));
  };

  while (!stop.load(std::memory_order_relaxed)) {
    pfds.clear();
    pfds.push_back({listen_fd, POLLIN, 0});
    const int64_t now = NowMs();
    // Poll timeout: short enough to observe `stop` and the nearest
    // per-connection deadline, long enough not to spin.
    int64_t timeout = 50;
    for (const Conn& c : conns) {
      pollfd p{c.fd, 0, 0};
      if (!c.read_closed && !c.close_after_flush) p.events |= POLLIN;
      if (c.pending_out() > 0) p.events |= POLLOUT;
      pfds.push_back(p);
      for (int64_t dl : {c.deadline_ms, c.idle_at_ms}) {
        if (dl >= 0) timeout = std::min(timeout, std::max<int64_t>(dl - now, 0));
      }
    }
    const int rc = ::poll(pfds.data(), pfds.size(), static_cast<int>(timeout));
    if (rc < 0 && errno != EINTR) break;  // poll itself failed: give up

    // Stash revents on the connections now: accepting appends to `conns`
    // and dropping erases from it, either of which would break the
    // conns[i] <-> pfds[i+1] index correspondence.
    for (size_t i = 1; i < pfds.size(); ++i) {
      conns[i - 1].revents = rc > 0 ? pfds[i].revents : 0;
    }

    // Accept everything pending; every worker polls the shared listen fd
    // and the kernel spreads wakeups across them.
    if (rc > 0 && (pfds[0].revents & POLLIN)) {
      for (;;) {
        const int cfd =
            ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (cfd < 0) {
          if (errno == EINTR) continue;
          break;  // EAGAIN: another worker won the race, or queue drained
        }
        if (config.sndbuf_bytes > 0) {
          const int v = config.sndbuf_bytes;
          ::setsockopt(cfd, SOL_SOCKET, SO_SNDBUF, &v, sizeof(v));
        }
        Conn c;
        c.fd = cfd;
        c.revents = POLLIN;  // probe immediately; a no-data read is cheap
        if (config.idle_timeout_ms > 0) {
          c.idle_at_ms = NowMs() + config.idle_timeout_ms;
        }
        conns.push_back(std::move(c));
        CIT_OBS_COUNT("serve.accepts", 1);
      }
    }

    for (size_t i = 0; i < conns.size();) {
      Conn& c = conns[i];
      bool alive = true;

      if (c.revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (c.revents & (POLLIN | POLLHUP)) && !c.read_closed &&
          !c.close_after_flush) {
        alive = ReadInto(c);
      }

      // Consume complete lines. Handling runs inline on this worker, on
      // this worker's replica — that is what keeps plan ownership single.
      while (alive && !c.close_after_flush) {
        const size_t nl = c.in.find('\n');
        if (nl == std::string::npos) {
          if (c.in.size() > config.max_line) {
            CIT_OBS_COUNT("serve.oversized", 1);
            c.out += FormatError("oversized", "request line exceeds " +
                                                  std::to_string(config.max_line) +
                                                  " bytes");
            c.close_after_flush = true;
            c.in.clear();
          }
          break;
        }
        std::string line = c.in.substr(0, nl);
        c.in.erase(0, nl + 1);
        if (line.size() > config.max_line) {
          CIT_OBS_COUNT("serve.oversized", 1);
          c.out += FormatError("oversized", "request line exceeds " +
                                                std::to_string(config.max_line) +
                                                " bytes");
          c.close_after_flush = true;
          c.in.clear();
          break;
        }
        c.out += HandleLine(w, line);
        // A completed request is forward progress.
        c.deadline_ms = NowMs() + config.request_deadline_ms;
      }

      if (alive) alive = FlushOut(c);

      if (!alive) {
        drop(i, "serve.disconnects");
        continue;
      }
      if (c.pending_out() == 0 && c.close_after_flush) {
        drop(i, "serve.disconnects");
        continue;
      }
      if (c.read_closed && c.in.empty() && c.pending_out() == 0) {
        drop(i, "serve.disconnects");  // clean end of session
        continue;
      }

      const int64_t t = NowMs();
      if (!c.in.empty() || c.pending_out() > 0) {
        // Work pending: stall deadline armed, idle clock paused.
        if (c.deadline_ms < 0) c.deadline_ms = t + config.request_deadline_ms;
        c.idle_at_ms = -1;
        if (c.deadline_ms <= t) {
          drop(i, "serve.deadline_drops");
          continue;
        }
      } else {
        c.deadline_ms = -1;
        if (c.idle_at_ms < 0 && config.idle_timeout_ms > 0) {
          c.idle_at_ms = t + config.idle_timeout_ms;
        }
        if (c.idle_at_ms >= 0 && c.idle_at_ms <= t) {
          drop(i, "serve.idle_drops");
          continue;
        }
      }
      ++i;
    }
  }

  for (Conn& c : conns) CloseFd(c.fd);
}

}  // namespace cit::serve
