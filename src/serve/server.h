#ifndef CIT_SERVE_SERVER_H_
#define CIT_SERVE_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "market/panel.h"

// The serving front-end around DecideWeights (DESIGN.md §10): a local
// Unix-socket daemon speaking the line protocol in serve/protocol.h.
//
// Threading model — the part the rest of the scaling roadmap leans on:
//   * N worker threads, each owning its own ServedModel replica,
//     constructed *on* that worker thread. Everything thread-affine in the
//     inference stack therefore lands where it is used: the per-thread
//     NoGradGuard storage arena, and the single-owner plan::CompiledFn
//     caches, which pin themselves to the first thread that runs them.
//   * Each worker multiplexes its accepted connections with poll(), so a
//     slow, silent, or half-open client can never stall the worker: socket
//     I/O is non-blocking, EINTR-safe, partial-read/write correct, and
//     SIGPIPE-immune (MSG_NOSIGNAL); a connection that makes no forward
//     progress for request_deadline_ms mid-request or mid-response is
//     dropped, and an idle one after idle_timeout_ms.
//   * Request batching: each worker coalesces the decide requests pending
//     at the end of a poll round (and, with batch_window_us > 0, across a
//     deadline-bounded window) into one ServedModel::DecideBatch forward,
//     then de-interleaves the stacked output weights back onto each
//     connection. Responses stay in per-connection request order: inline
//     replies (ping/stats/swap/errors) queue behind any still-pending
//     batched decide on the same connection.
//   * Checkpoint hot-swap: a "swap <path>" request validates the new
//     weights by loading them into the handling worker's replica (the
//     loader stages and verifies everything before committing, so a bad
//     file changes nothing), then publishes {path, generation}. Other
//     workers reload lazily before their next decision. Weight commits go
//     through Var::mutable_value(), which bumps parameter versions, so
//     each replica's stale compiled plans invalidate and re-record on
//     that replica's own thread.
//   * Every decide response carries the generation of the weights that
//     produced it, which is what makes bitwise serve-vs-library checks
//     possible across a mid-soak swap.
namespace cit::serve {

// One model replica as the server sees it. Implementations must be
// deterministic and stateless across Decide calls (two calls with equal
// panels return bitwise-equal weights, before/after unrelated calls).
class ServedModel {
 public:
  virtual ~ServedModel() = default;

  virtual int64_t num_assets() const = 0;
  // Minimum rows a decide request's price window must have.
  virtual int64_t min_days() const = 0;

  // Portfolio weights for the transition panel.last_day -> next day.
  virtual Result<std::vector<double>> Decide(
      const market::PricePanel& panel) = 0;

  // Batched decision: one result per panel, each required to be bitwise
  // identical to Decide on that panel alone. The default loops Decide —
  // correct for any model; implementations with a genuinely batched
  // forward (CrossInsightTrader::DecideWeightsBatch) override it so the
  // batcher amortizes per-op dispatch across the requests.
  virtual std::vector<Result<std::vector<double>>> DecideBatch(
      const std::vector<const market::PricePanel*>& panels) {
    std::vector<Result<std::vector<double>>> out;
    out.reserve(panels.size());
    for (const market::PricePanel* p : panels) out.push_back(Decide(*p));
    return out;
  }

  // Replaces the replica's weights from a weights file; must stage and
  // validate before committing (on error the replica is unchanged).
  virtual Status LoadWeights(const std::string& path) = 0;
};

// Builds one replica; invoked once per worker, on the worker's thread.
// Returning nullptr fails Server::Start.
using ModelFactory = std::function<std::unique_ptr<ServedModel>()>;

struct ServerConfig {
  std::string socket_path;          // AF_UNIX path (unlinked + rebound)
  int workers = 1;                  // replica-pinned worker threads
  int64_t request_deadline_ms = 2000;  // max stall mid-request/mid-response
  int64_t idle_timeout_ms = 30000;  // drop silent idle connections; 0 = keep
  size_t max_line = size_t{1} << 20;  // request-line byte cap
  int listen_backlog = 64;
  // >0: shrink each accepted connection's kernel send buffer (tests use
  // this to force the slow-reader write-deadline path quickly).
  int sndbuf_bytes = 0;
  // Request batching (per worker): decide requests land on a queue and
  // execute together through ServedModel::DecideBatch, up to max_batch per
  // forward. A lone queued request never waits — it takes the
  // single-request Decide path immediately, so p50 at low load matches the
  // unbatched daemon — and a full batch flushes at once; a partial batch
  // (2..max_batch-1 requests) may wait up to batch_window_us for more
  // arrivals before flushing. max_batch <= 1 disables batching entirely.
  int64_t batch_window_us = 0;
  int max_batch = 8;
  // Flip the obs runtime switch on at Start so the stats endpoint counts
  // (citd sets this; tests manage the flag themselves).
  bool enable_telemetry = false;
};

class Server {
 public:
  Server(ServerConfig config, ModelFactory factory);
  ~Server();  // implies Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the socket and spawns the workers; returns once every worker
  // has built its replica and is accepting (or an error, fully unwound).
  Status Start();
  // Idempotent: closes the listener, drops live connections, joins.
  void Stop();

  bool running() const;
  // Current published weights generation (0 until the first swap).
  uint64_t generation() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cit::serve

#endif  // CIT_SERVE_SERVER_H_
