#ifndef CIT_RL_GAUSSIAN_POLICY_H_
#define CIT_RL_GAUSSIAN_POLICY_H_

#include <vector>

#include "math/autograd.h"
#include "math/rng.h"

namespace cit::rl {

using ag::Var;
using math::Rng;
using math::Tensor;

// One sampled action from a Gaussian policy over R^m, mapped to the
// portfolio simplex by softmax (the paper's "translate to a vector and
// normalize into an action" step). The log-probability is computed in the
// pre-softmax space, where the density is well-defined.
struct GaussianAction {
  Tensor raw;                    // u ~ N(mean, std), shape [m]
  std::vector<double> weights;   // softmax(u), on the simplex
  Var log_prob;                  // differentiable w.r.t. mean/log_std
};

// Diagonal-Gaussian log density of `raw` under N(mean, exp(log_std)), as a
// differentiable scalar. mean and log_std must both have shape [m].
Var GaussianLogProb(const Var& mean, const Var& log_std, const Tensor& raw);

// Differentiable entropy of the diagonal Gaussian: sum(log_std) + const.
Var GaussianEntropy(const Var& log_std);

// Samples an action. When rng == nullptr the action is deterministic
// (raw = mean), which is how trained policies act at backtest time.
GaussianAction SampleGaussianSimplex(const Var& mean, const Var& log_std,
                                     Rng* rng);

// Softmax of a raw score vector as plain doubles (simplex projection used
// for action execution).
std::vector<double> SoftmaxWeights(const Tensor& raw);

// Softmax over the flat element range [begin, begin + len) of `raw`, with
// arithmetic identical to SoftmaxWeights (which delegates here), so a
// per-request block of a batch-stacked score tensor projects to bitwise
// the same weights as that request's standalone score vector.
std::vector<double> SoftmaxWeightsRange(const Tensor& raw, int64_t begin,
                                        int64_t len);

}  // namespace cit::rl

#endif  // CIT_RL_GAUSSIAN_POLICY_H_
