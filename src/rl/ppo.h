#ifndef CIT_RL_PPO_H_
#define CIT_RL_PPO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "env/backtest.h"
#include "market/source.h"
#include "math/plan.h"
#include "math/rng.h"
#include "nn/checkpoint.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "rl/config.h"
#include "rl/gaussian_policy.h"
#include "rl/rollout.h"

namespace cit::rl {

// Proximal policy optimization baseline (Schulman et al. 2017): clipped
// surrogate objective with GAE advantages over rollout segments; same
// state/action interface as A2C.
class PpoAgent : public env::TradingAgent {
 public:
  struct PpoConfig : RlTrainConfig {
    double clip = 0.2;
    int64_t epochs = 4;
  };

  PpoAgent(int64_t num_assets, const PpoConfig& config);

  std::vector<double> Train(const market::PanelView& panel,
                            int64_t curve_points = 20);
  std::vector<double> Train(const market::PricePanel& panel,
                            int64_t curve_points = 20);

  std::string name() const override { return "PPO"; }
  void Reset() override;
  using env::TradingAgent::DecideWeights;
  std::vector<double> DecideWeights(const market::PanelView& panel,
                                    int64_t day) override;

  // Full crash-safe training state (weights + Adam states + progress),
  // written atomically; driven by config.checkpoint_every / resume_from. A
  // resumed run is bitwise identical to the uninterrupted one. Loading is
  // transactional: on any error the agent is unchanged.
  Status SaveCheckpoint(const std::string& path) const;
  Status LoadCheckpoint(const std::string& path);

 private:
  // Takes `held` explicitly (rather than reading held_) so parallel
  // rollout slots can pass their own copies.
  Tensor StateTensor(const market::PanelView& panel, int64_t day,
                     const std::vector<double>& held) const;

  // Actor + critic + log_std under stable names — the checkpoint parameter
  // set.
  nn::ModuleGroup AllModules() const;

  int64_t num_assets_;
  PpoConfig config_;
  math::Rng rng_;
  std::unique_ptr<nn::Mlp> actor_;
  std::unique_ptr<nn::Mlp> critic_;
  ag::Var log_std_;
  std::unique_ptr<nn::Adam> actor_opt_;
  std::unique_ptr<nn::Adam> critic_opt_;
  std::vector<double> held_;
  TrainProgress progress_;  // in-flight training progress (checkpointed)
  // Compiled actor forward for the deterministic DecideWeights path.
  plan::CompiledFn decide_plan_;
};

}  // namespace cit::rl

#endif  // CIT_RL_PPO_H_
