#include "rl/deeptrader.h"

#include <cmath>

#include "common/check.h"
#include "rl/features.h"
#include "rl/gaussian_policy.h"

namespace cit::rl {

DeepTraderAgent::DeepTraderAgent(int64_t num_assets,
                                 const DeepTraderConfig& config)
    : num_assets_(num_assets), config_(config), rng_(config.seed) {
  conv1_ = std::make_unique<nn::CausalConv1d>(
      1, config_.conv_channels, /*kernel_size=*/3, /*dilation=*/1, rng_);
  conv2_ = std::make_unique<nn::CausalConv1d>(
      config_.conv_channels, config_.conv_channels, /*kernel_size=*/3,
      /*dilation=*/2, rng_);
  score_head_ = std::make_unique<nn::Linear>(config_.conv_channels, 1, rng_);
  market_unit_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{config_.window, config_.hidden, 1}, rng_);

  std::vector<ag::Var> params = nn::ParamVars(*conv1_);
  for (auto& v : nn::ParamVars(*conv2_)) params.push_back(v);
  for (auto& v : nn::ParamVars(*score_head_)) params.push_back(v);
  for (auto& v : nn::ParamVars(*market_unit_)) params.push_back(v);
  opt_ = std::make_unique<nn::Adam>(
      std::move(params), static_cast<float>(config_.lr), 0.9f, 0.999f,
      1e-8f, static_cast<float>(config_.weight_decay));
  Reset();
}

void DeepTraderAgent::Reset() {
  held_.assign(num_assets_, 1.0 / static_cast<double>(num_assets_));
}

ag::Var DeepTraderAgent::ScoresFromWindow(const Tensor& window) const {
  ag::Var h = ag::Relu(conv1_->Forward(ag::Var::Constant(window)));
  h = ag::Relu(conv2_->Forward(h));
  ag::Var last = ag::Reshape(
      ag::Slice(h, /*axis=*/2, config_.window - 1, 1),
      {num_assets_, config_.conv_channels});
  return ag::Reshape(score_head_->Forward(last), {num_assets_});
}

ag::Var DeepTraderAgent::AssetScores(const market::PanelView& panel,
                                     int64_t day) const {
  return ScoresFromWindow(NormalizedWindow(panel, day, config_.window));
}

Tensor DeepTraderAgent::IndexWindow(const Tensor& window) const {
  Tensor index({config_.window});
  for (int64_t k = 0; k < config_.window; ++k) {
    float acc = 0.0f;
    for (int64_t i = 0; i < num_assets_; ++i) acc += window.At({i, 0, k});
    index[k] = acc / static_cast<float>(num_assets_);
  }
  return index;
}

ag::Var DeepTraderAgent::RhoFromIndex(const Tensor& index) const {
  ag::Var logit = market_unit_->Forward(ag::Var::Constant(index));
  return ag::Sigmoid(logit);  // [1]
}

ag::Var DeepTraderAgent::MarketRho(const market::PanelView& panel,
                                   int64_t day) const {
  // Market feature: the cross-asset average normalized window (a synthetic
  // index window), the stand-in for the paper's market-condition embedding.
  return RhoFromIndex(
      IndexWindow(NormalizedWindow(panel, day, config_.window)));
}

ag::Var DeepTraderAgent::WeightsFromInputs(const Tensor& window,
                                           const Tensor& index) const {
  ag::Var scores = ScoresFromWindow(window);
  ag::Var rho = RhoFromIndex(index);
  // Temperature scaling: w = softmax(scores * (0.25 + 1.75 * rho)).
  // rho -> 1 concentrates on top-scored assets; rho -> 0 diversifies.
  ag::Var gain = ag::AddScalar(ag::MulScalar(rho, 1.75f), 0.25f);
  return ag::Softmax(ag::Mul(scores, gain));
}

ag::Var DeepTraderAgent::Weights(const market::PanelView& panel,
                                 int64_t day) const {
  Tensor window = NormalizedWindow(panel, day, config_.window);
  return WeightsFromInputs(window, IndexWindow(window));
}

double DeepTraderAgent::RiskAppetite(const market::PanelView& panel,
                                     int64_t day) const {
  ag::NoGradGuard no_grad;
  return MarketRho(panel, day).value().Item();
}

std::vector<double> DeepTraderAgent::Train(const market::PricePanel& panel,
                                           int64_t curve_points) {
  market::InMemorySource source(&panel);
  return Train(market::PanelView(&source), curve_points);
}

std::vector<double> DeepTraderAgent::Train(const market::PanelView& panel,
                                           int64_t curve_points) {
  CIT_CHECK_GT(panel.train_end(),
               config_.window + config_.segment_len + 2);
  const int64_t lo = config_.window;
  const int64_t hi = panel.train_end() - config_.segment_len - 2;
  CIT_CHECK_GT(hi, lo);

  std::vector<double> curve;
  double curve_acc = 0.0;
  int64_t curve_n = 0;
  const int64_t curve_every =
      std::max<int64_t>(1, config_.train_steps / curve_points);

  for (int64_t step = 0; step < config_.train_steps; ++step) {
    const int64_t start = lo + rng_.UniformInt(hi - lo);
    ag::Var loss = ag::Var::Constant(Tensor::Scalar(0.0f));
    double segment_reward = 0.0;
    for (int64_t t = 0; t < config_.segment_len; ++t) {
      const int64_t day = start + t;
      ag::Var w = Weights(panel, day);
      Tensor relatives({num_assets_});
      for (int64_t i = 0; i < num_assets_; ++i) {
        relatives[i] =
            static_cast<float>(panel.PriceRelative(day + 1, i));
      }
      ag::Var growth = ag::Sum(ag::Mul(w, ag::Var::Constant(relatives)));
      ag::Var log_ret = ag::Log(growth);
      // Risk-return balance: penalize squared downside moves, which pushes
      // rho down when the market unit foresees adverse conditions.
      ag::Var downside = ag::Min(log_ret,
                                 ag::Var::Constant(Tensor::Scalar(0.0f)));
      loss = ag::Sub(loss, log_ret);
      loss = ag::Add(loss,
                     ag::MulScalar(ag::Square(downside),
                                   static_cast<float>(config_.risk_coef)));
      segment_reward += log_ret.value().Item();
    }
    loss = ag::MulScalar(loss,
                         1.0f / static_cast<float>(config_.segment_len));
    opt_->ZeroGrad();
    loss.Backward();
    opt_->ClipGradNorm(5.0f);
    opt_->Step();

    curve_acc += config_.reward_scale * segment_reward /
                 static_cast<double>(config_.segment_len);
    ++curve_n;
    if ((step + 1) % curve_every == 0) {
      curve.push_back(curve_acc / static_cast<double>(curve_n));
      curve_acc = 0.0;
      curve_n = 0;
    }
  }
  Reset();
  return curve;
}

std::vector<double> DeepTraderAgent::DecideWeights(
    const market::PanelView& panel, int64_t day) {
  ag::NoGradGuard no_grad;
  Tensor window = NormalizedWindow(panel, day, config_.window);
  Tensor index = IndexWindow(window);
  Tensor w = decide_plan_.Run({&window, &index}, [&] {
    return WeightsFromInputs(window, index);
  });
  std::vector<double> weights(num_assets_);
  for (int64_t i = 0; i < num_assets_; ++i) {
    weights[i] = static_cast<double>(w[i]);
  }
  held_ = weights;
  return env::NormalizeToSimplex(std::move(weights));
}

}  // namespace cit::rl
