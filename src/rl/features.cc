#include "rl/features.h"

#include "common/check.h"
#include "signal/wavelet.h"

namespace cit::rl {

Tensor NormalizedWindow(const market::PanelView& panel, int64_t day,
                        int64_t window, float scale) {
  CIT_CHECK_GE(day, window - 1);
  CIT_CHECK_LT(day, panel.num_days());
  const int64_t m = panel.num_assets();
  Tensor out({m, 1, window});
  for (int64_t i = 0; i < m; ++i) {
    const double anchor = panel.Close(day, i);
    for (int64_t k = 0; k < window; ++k) {
      const double p = panel.Close(day - window + 1 + k, i);
      out.At({i, 0, k}) = static_cast<float>(scale * (p / anchor - 1.0));
    }
  }
  return out;
}

Tensor FlatWindow(const market::PanelView& panel, int64_t day,
                  int64_t window, float scale) {
  CIT_CHECK_GE(day, window - 1);
  const int64_t m = panel.num_assets();
  Tensor out({window * m});
  for (int64_t k = 0; k < window; ++k) {
    for (int64_t i = 0; i < m; ++i) {
      const double anchor = panel.Close(day, i);
      const double p = panel.Close(day - window + 1 + k, i);
      out[k * m + i] = static_cast<float>(scale * (p / anchor - 1.0));
    }
  }
  return out;
}

std::vector<Tensor> HorizonBandWindows(const market::PanelView& panel,
                                       int64_t day, int64_t window,
                                       int64_t num_bands, float scale) {
  CIT_CHECK_GE(day, window - 1);
  CIT_CHECK_GE(num_bands, 1);
  const int64_t m = panel.num_assets();
  std::vector<Tensor> bands;
  bands.reserve(num_bands);
  for (int64_t b = 0; b < num_bands; ++b) {
    bands.emplace_back(math::Shape{m, 1, window});
  }
  std::vector<double> series(window);
  for (int64_t i = 0; i < m; ++i) {
    const double anchor = panel.Close(day, i);
    for (int64_t k = 0; k < window; ++k) {
      const double p = panel.Close(day - window + 1 + k, i);
      series[k] = scale * (p / anchor - 1.0);
    }
    const auto split = signal::SplitHorizonBands(series, num_bands);
    for (int64_t b = 0; b < num_bands; ++b) {
      for (int64_t k = 0; k < window; ++k) {
        bands[b].At({i, 0, k}) = static_cast<float>(split[b][k]);
      }
    }
  }
  return bands;
}

Tensor OneHot(int64_t index, int64_t n) {
  CIT_CHECK(index >= 0 && index < n);
  Tensor out({n});
  out[index] = 1.0f;
  return out;
}

}  // namespace cit::rl
