#include "rl/sarl.h"

#include <cmath>

#include "common/check.h"
#include "rl/features.h"

namespace cit::rl {

SarlAgent::SarlAgent(int64_t num_assets, const RlTrainConfig& config)
    : A2cAgent(num_assets, config, /*extra_state_dim=*/num_assets) {
  predictor_ = std::make_unique<nn::Linear>(config.window, 1, rng_);
  predictor_opt_ = std::make_unique<nn::Adam>(
      nn::ParamVars(*predictor_), 1e-2f);
  predictor_steps_ = std::max<int64_t>(50, config.train_steps / 2);
}

Tensor SarlAgent::PredictMovement(const market::PanelView& panel,
                                  int64_t day) const {
  // Shared logistic predictor applied to every asset's normalized window.
  // Only the probabilities leave this function (they re-enter the policy
  // input as a constant), so the forward is graph-free even mid-rollout.
  ag::NoGradGuard no_grad;
  Tensor window = NormalizedWindow(panel, day, config_.window);  // [m,1,z]
  ag::Var flat = ag::Var::Constant(
      window.Reshape({num_assets_, config_.window}));
  ag::Var probs = ag::Sigmoid(predictor_->Forward(flat));  // [m, 1]
  return probs.value().Reshape({num_assets_});
}

Tensor SarlAgent::ExtraState(const market::PanelView& panel,
                             int64_t day) const {
  return PredictMovement(panel, day);
}

void SarlAgent::TrainPredictor(const market::PanelView& panel) {
  const int64_t lo = config_.window;
  const int64_t hi = panel.train_end() - 2;
  CIT_CHECK_GT(hi, lo);
  for (int64_t step = 0; step < predictor_steps_; ++step) {
    const int64_t day = lo + rng_.UniformInt(hi - lo);
    Tensor window = NormalizedWindow(panel, day, config_.window);
    ag::Var flat = ag::Var::Constant(
        window.Reshape({num_assets_, config_.window}));
    ag::Var probs = ag::Sigmoid(predictor_->Forward(flat));  // [m,1]
    // Binary cross-entropy against next-day up/down moves.
    Tensor labels({num_assets_, 1});
    for (int64_t i = 0; i < num_assets_; ++i) {
      labels.At({i, 0}) =
          panel.PriceRelative(day + 1, i) > 1.0 ? 1.0f : 0.0f;
    }
    ag::Var y = ag::Var::Constant(labels);
    ag::Var eps_p = ag::Clamp(probs, 1e-5f, 1.0f - 1e-5f);
    ag::Var bce = ag::Neg(ag::Mean(ag::Add(
        ag::Mul(y, ag::Log(eps_p)),
        ag::Mul(ag::AddScalar(ag::Neg(y), 1.0f),
                ag::Log(ag::AddScalar(ag::Neg(eps_p), 1.0f))))));
    predictor_opt_->ZeroGrad();
    bce.Backward();
    predictor_opt_->Step();
  }
}

std::vector<double> SarlAgent::Train(const market::PricePanel& panel,
                                     int64_t curve_points) {
  market::InMemorySource source(&panel);
  return Train(market::PanelView(&source), curve_points);
}

std::vector<double> SarlAgent::Train(const market::PanelView& panel,
                                     int64_t curve_points) {
  TrainPredictor(panel);
  return A2cAgent::Train(panel, curve_points);
}

}  // namespace cit::rl
