#ifndef CIT_RL_CONFIG_H_
#define CIT_RL_CONFIG_H_

#include <cstdint>
#include <string>

#include "obs/telemetry.h"

namespace cit::rl {

// Shared hyper-parameters of the deep-RL baseline trainers. Defaults are
// sized for the single-core CPU budget; `train_steps` is further multiplied
// by cit::ScaledStepFactor() at experiment level.
struct RlTrainConfig {
  int64_t window = 24;            // observed price-window length z
  double transaction_cost = 1e-3;
  // Prices are exogenous (actions only couple through holdings/costs), so
  // a short effective horizon is appropriate; high discounts only inject
  // future-noise variance into the advantages.
  double gamma = 0.5;
  double lr = 1e-3;
  double weight_decay = 1e-5;     // paper: 1e-5 L2 regularization
  int64_t train_steps = 300;      // optimizer updates
  int64_t rollout_len = 16;       // on-policy rollout segment length
  // Independent rollouts collected per optimizer update (gradient
  // minibatch). Collection fans out across the thread pool; results are
  // reduced in slot order, so curves are invariant to CIT_NUM_THREADS.
  int64_t rollouts_per_update = 1;
  double entropy_coef = 0.01;
  double reward_scale = 100.0;    // log returns are ~1e-3; rescale for SGD
  int64_t hidden = 32;
  uint64_t seed = 1;
  float init_log_std = -1.0f;

  // Crash-safe checkpointing (see DESIGN.md "Checkpointing"). Every
  // `checkpoint_every` updates the full training state is written
  // atomically to `checkpoint_path`; 0 disables. A non-empty `resume_from`
  // makes Train() restore that checkpoint and continue — bitwise identical
  // to the uninterrupted run, at any CIT_NUM_THREADS.
  int64_t checkpoint_every = 0;
  std::string checkpoint_path;
  std::string resume_from;

  // Telemetry for this run (see DESIGN.md "Observability"): phase timings,
  // loss/grad-norm gauges, optional trace + snapshot files. Off by default;
  // CIT_TELEMETRY / CIT_TRACE / CIT_METRICS override at runtime. Purely
  // observational — curves are bitwise identical with it on or off.
  obs::TelemetryConfig telemetry;
};

}  // namespace cit::rl

#endif  // CIT_RL_CONFIG_H_
