#include "rl/returns.h"

#include <cmath>

#include "common/check.h"

namespace cit::rl {

std::vector<double> LambdaReturns(const std::vector<double>& rewards,
                                  const std::vector<double>& values,
                                  double gamma, double lambda,
                                  int64_t n_max) {
  const int64_t len = static_cast<int64_t>(rewards.size());
  CIT_CHECK_EQ(values.size(), rewards.size() + 1);
  CIT_CHECK_GE(n_max, 1);
  // The truncated forward view collapses to a TD-error sum:
  //   y_t = V_t + sum_{l=0}^{n_max-1} (gamma*lambda)^l delta_{t+l},
  //   delta_j = r_j + gamma*V_{j+1} - V_j   (delta_j = 0 for j >= len,
  //   which encodes the bootstrap-at-trajectory-end clamping of G^(n)).
  // That sum obeys the O(T) backward recursion
  //   A_t = delta_t + gamma*lambda * A_{t+1}
  //         - (gamma*lambda)^{n_max} * delta_{t+n_max},
  // replacing the old O(T*n_max) per-timestep rebuild (equivalence is
  // brute-force-tested over random gamma/lambda/n_max in test_rl.cc).
  std::vector<double> targets(len, 0.0);
  std::vector<double> delta(len, 0.0);
  for (int64_t t = 0; t < len; ++t) {
    delta[t] = rewards[t] + gamma * values[t + 1] - values[t];
  }
  const double gl = gamma * lambda;
  // For n_max >= len the tail term never lands inside the trajectory, so
  // the (potentially denormal) power is never used.
  const double gl_tail =
      n_max < len ? std::pow(gl, static_cast<double>(n_max)) : 0.0;
  double acc = 0.0;
  for (int64_t t = len - 1; t >= 0; --t) {
    acc = delta[t] + gl * acc;
    if (t + n_max < len) acc -= gl_tail * delta[t + n_max];
    targets[t] = values[t] + acc;
  }
  return targets;
}

std::vector<double> DiscountedReturns(const std::vector<double>& rewards,
                                      double gamma, double bootstrap) {
  std::vector<double> out(rewards.size());
  double running = bootstrap;
  for (int64_t t = static_cast<int64_t>(rewards.size()) - 1; t >= 0; --t) {
    running = rewards[t] + gamma * running;
    out[t] = running;
  }
  return out;
}

std::vector<double> GaeAdvantages(const std::vector<double>& rewards,
                                  const std::vector<double>& values,
                                  double gamma, double lambda) {
  CIT_CHECK_EQ(values.size(), rewards.size() + 1);
  std::vector<double> adv(rewards.size());
  double running = 0.0;
  for (int64_t t = static_cast<int64_t>(rewards.size()) - 1; t >= 0; --t) {
    const double delta =
        rewards[t] + gamma * values[t + 1] - values[t];
    running = delta + gamma * lambda * running;
    adv[t] = running;
  }
  return adv;
}

}  // namespace cit::rl
