#include "rl/returns.h"

#include <algorithm>

#include "common/check.h"

namespace cit::rl {

std::vector<double> LambdaReturns(const std::vector<double>& rewards,
                                  const std::vector<double>& values,
                                  double gamma, double lambda,
                                  int64_t n_max) {
  const int64_t len = static_cast<int64_t>(rewards.size());
  CIT_CHECK_EQ(values.size(), rewards.size() + 1);
  CIT_CHECK_GE(n_max, 1);
  std::vector<double> targets(len, 0.0);
  for (int64_t t = 0; t < len; ++t) {
    // G^(n) built incrementally: running discounted reward sum plus
    // bootstrap at t+n (clamped to the trajectory end).
    double reward_sum = 0.0;
    double discount = 1.0;
    double mix = 0.0;
    double lambda_pow = 1.0;  // lambda^{n-1}
    for (int64_t n = 1; n <= n_max; ++n) {
      const int64_t step = t + n - 1;
      if (step < len) {
        reward_sum += discount * rewards[step];
        discount *= gamma;
      }
      const int64_t boot = std::min<int64_t>(t + n, len);
      const double g_n = reward_sum + discount * values[boot];
      if (n < n_max) {
        mix += (1.0 - lambda) * lambda_pow * g_n;
        lambda_pow *= lambda;
      } else {
        mix += lambda_pow * g_n;
      }
    }
    targets[t] = mix;
  }
  return targets;
}

std::vector<double> DiscountedReturns(const std::vector<double>& rewards,
                                      double gamma, double bootstrap) {
  std::vector<double> out(rewards.size());
  double running = bootstrap;
  for (int64_t t = static_cast<int64_t>(rewards.size()) - 1; t >= 0; --t) {
    running = rewards[t] + gamma * running;
    out[t] = running;
  }
  return out;
}

std::vector<double> GaeAdvantages(const std::vector<double>& rewards,
                                  const std::vector<double>& values,
                                  double gamma, double lambda) {
  CIT_CHECK_EQ(values.size(), rewards.size() + 1);
  std::vector<double> adv(rewards.size());
  double running = 0.0;
  for (int64_t t = static_cast<int64_t>(rewards.size()) - 1; t >= 0; --t) {
    const double delta =
        rewards[t] + gamma * values[t + 1] - values[t];
    running = delta + gamma * lambda * running;
    adv[t] = running;
  }
  return adv;
}

}  // namespace cit::rl
