#ifndef CIT_RL_A2C_H_
#define CIT_RL_A2C_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "env/backtest.h"
#include "market/source.h"
#include "math/plan.h"
#include "math/rng.h"
#include "nn/checkpoint.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "rl/config.h"
#include "rl/gaussian_policy.h"
#include "rl/rollout.h"

namespace cit::rl {

// Advantage actor-critic baseline (Mnih et al. 2016 style, synchronous):
// a Gaussian policy over pre-softmax scores with an MLP backbone on the
// flattened price window plus the previously held weights, and a state-value
// critic trained on n-step discounted returns. This is the "A2C" row of the
// paper's Tables III and IV.
class A2cAgent : public env::TradingAgent {
 public:
  A2cAgent(int64_t num_assets, const RlTrainConfig& config)
      : A2cAgent(num_assets, config, /*extra_state_dim=*/0) {}

  // Trains on the panel's training split (days < train_end). Returns the
  // average training reward per rollout (a learning-curve sample per
  // `curve_points` evenly spaced checkpoints). The PricePanel overload
  // wraps the panel in a temporary InMemorySource.
  std::vector<double> Train(const market::PanelView& panel,
                            int64_t curve_points = 20);
  std::vector<double> Train(const market::PricePanel& panel,
                            int64_t curve_points = 20);

  std::string name() const override { return "A2C"; }
  void Reset() override;
  using env::TradingAgent::DecideWeights;
  std::vector<double> DecideWeights(const market::PanelView& panel,
                                    int64_t day) override;

  // Full crash-safe training state (weights + Adam states + progress),
  // written atomically; driven by config.checkpoint_every / resume_from. A
  // resumed run is bitwise identical to the uninterrupted one. Loading is
  // transactional: on any error the agent is unchanged.
  Status SaveCheckpoint(const std::string& path) const;
  Status LoadCheckpoint(const std::string& path);

 protected:
  // Subclasses (e.g. SARL) may extend the state with `extra_state_dim`
  // additional features produced by ExtraState().
  A2cAgent(int64_t num_assets, const RlTrainConfig& config,
           int64_t extra_state_dim);

  // Extra state features appended to the flattened window + held weights;
  // must return a tensor of shape [extra_state_dim].
  virtual Tensor ExtraState(const market::PanelView& panel,
                            int64_t day) const;

  // Builds the state input from the flattened window, the given previously
  // held weights, and ExtraState(). Takes `held` explicitly (rather than
  // reading held_) so parallel rollout slots can pass their own copies.
  ag::Var PolicyInput(const market::PanelView& panel, int64_t day,
                      const std::vector<double>& held) const;

  // Actor + critic + log_std under stable names — the checkpoint parameter
  // set.
  nn::ModuleGroup AllModules() const;

  int64_t num_assets_;
  int64_t extra_state_dim_;
  RlTrainConfig config_;
  math::Rng rng_;
  std::unique_ptr<nn::Mlp> actor_;
  std::unique_ptr<nn::Mlp> critic_;
  ag::Var log_std_;
  std::unique_ptr<nn::Adam> actor_opt_;
  std::unique_ptr<nn::Adam> critic_opt_;
  std::vector<double> held_;  // previous weights (part of the state)
  TrainProgress progress_;    // in-flight training progress (checkpointed)
  // Compiled actor forward for the deterministic DecideWeights path; the
  // plan re-records itself after any parameter mutation (training steps,
  // checkpoint restore) via per-parameter version snapshots.
  plan::CompiledFn decide_plan_;
};

}  // namespace cit::rl

#endif  // CIT_RL_A2C_H_
