#include "rl/ddpg.h"

#include <cmath>

#include "common/check.h"
#include "env/portfolio_env.h"
#include "rl/features.h"
#include "rl/gaussian_policy.h"

namespace cit::rl {

DdpgAgent::DdpgAgent(int64_t num_assets, const DdpgConfig& config)
    : num_assets_(num_assets), config_(config), rng_(config.seed) {
  const int64_t state_dim = config_.window * num_assets_ + num_assets_;
  actor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{state_dim, config_.hidden, num_assets_}, rng_);
  critic_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{state_dim + num_assets_, config_.hidden, 1},
      rng_);
  target_actor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{state_dim, config_.hidden, num_assets_}, rng_);
  target_critic_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{state_dim + num_assets_, config_.hidden, 1},
      rng_);
  nn::CopyParameters(*actor_, target_actor_.get());
  nn::CopyParameters(*critic_, target_critic_.get());
  actor_opt_ = std::make_unique<nn::Adam>(
      nn::ParamVars(*actor_), static_cast<float>(config_.lr), 0.9f, 0.999f,
      1e-8f, static_cast<float>(config_.weight_decay));
  critic_opt_ = std::make_unique<nn::Adam>(
      nn::ParamVars(*critic_), static_cast<float>(config_.lr), 0.9f, 0.999f,
      1e-8f, static_cast<float>(config_.weight_decay));
  Reset();
}

void DdpgAgent::Reset() {
  held_.assign(num_assets_, 1.0 / static_cast<double>(num_assets_));
}

Tensor DdpgAgent::StateTensor(const market::PricePanel& panel,
                              int64_t day) const {
  Tensor window = FlatWindow(panel, day, config_.window);
  Tensor state({config_.window * num_assets_ + num_assets_});
  for (int64_t i = 0; i < window.numel(); ++i) state[i] = window[i];
  for (int64_t i = 0; i < num_assets_; ++i) {
    state[window.numel() + i] = static_cast<float>(held_[i]);
  }
  return state;
}

void DdpgAgent::UpdateFromReplay() {
  const int64_t size = static_cast<int64_t>(replay_.size());
  if (size < config_.batch_size) return;

  // Critic update: y = r + gamma * Q'(s', mu'(s')).
  ag::Var critic_loss = ag::Var::Constant(Tensor::Scalar(0.0f));
  std::vector<const Transition*> batch;
  batch.reserve(config_.batch_size);
  for (int64_t b = 0; b < config_.batch_size; ++b) {
    batch.push_back(&replay_[rng_.UniformInt(size)]);
  }
  for (const Transition* tr : batch) {
    ag::Var next_state = ag::Var::Constant(tr->next_state);
    ag::Var next_scores = target_actor_->Forward(next_state);
    ag::Var next_action = ag::Softmax(next_scores);
    ag::Var next_q = target_critic_->Forward(
        ag::Concat({next_state, next_action}, 0));
    const float y = static_cast<float>(tr->reward) +
                    static_cast<float>(config_.gamma) *
                        next_q.value().Item();
    ag::Var q = critic_->Forward(
        ag::Concat({ag::Var::Constant(tr->state),
                    ag::Var::Constant(tr->action)},
                   0));
    critic_loss = ag::Add(critic_loss, ag::Square(ag::AddScalar(q, -y)));
  }
  critic_loss = ag::MulScalar(
      critic_loss, 1.0f / static_cast<float>(config_.batch_size));
  critic_opt_->ZeroGrad();
  critic_loss.Backward();
  critic_opt_->ClipGradNorm(5.0f);
  critic_opt_->Step();

  // Actor update: maximize Q(s, softmax(actor(s))).
  ag::Var actor_loss = ag::Var::Constant(Tensor::Scalar(0.0f));
  for (const Transition* tr : batch) {
    ag::Var state = ag::Var::Constant(tr->state);
    ag::Var action = ag::Softmax(actor_->Forward(state));
    ag::Var q = critic_->Forward(ag::Concat({state, action}, 0));
    actor_loss = ag::Sub(actor_loss, q);
  }
  actor_loss = ag::MulScalar(
      actor_loss, 1.0f / static_cast<float>(config_.batch_size));
  actor_opt_->ZeroGrad();
  critic_opt_->ZeroGrad();  // clear grads the actor pass pushed into Q
  actor_loss.Backward();
  actor_opt_->ClipGradNorm(5.0f);
  actor_opt_->Step();

  nn::SoftUpdateParameters(*actor_, target_actor_.get(),
                           static_cast<float>(config_.tau));
  nn::SoftUpdateParameters(*critic_, target_critic_.get(),
                           static_cast<float>(config_.tau));
}

std::vector<double> DdpgAgent::Train(const market::PricePanel& panel,
                                     int64_t curve_points) {
  env::EnvConfig env_config;
  env_config.window = config_.window;
  env_config.transaction_cost = config_.transaction_cost;
  env_config.end_day = panel.train_end() - 1;
  env::PortfolioEnv env(&panel, env_config);
  env.ResetAt(env.earliest_start());
  Reset();

  std::vector<double> curve;
  double curve_acc = 0.0;
  int64_t curve_n = 0;
  const int64_t total_steps = config_.train_steps;
  const int64_t curve_every = std::max<int64_t>(1, total_steps / curve_points);

  for (int64_t step = 0; step < total_steps; ++step) {
    if (env.done()) {
      env.ResetAt(env.earliest_start() +
                  rng_.UniformInt(std::max<int64_t>(
                      1, env.end_day() - env.earliest_start() - 2)));
      Reset();
    }
    Tensor state = StateTensor(panel, env.current_day());
    ag::Var scores = actor_->Forward(ag::Var::Constant(state));
    Tensor noisy = scores.value();
    for (int64_t i = 0; i < num_assets_; ++i) {
      noisy[i] += static_cast<float>(
          rng_.Normal(0.0, config_.explore_noise));
    }
    std::vector<double> weights = SoftmaxWeights(noisy);
    const env::StepResult r = env.Step(weights);
    held_ = env.previous_weights();
    Tensor action({num_assets_});
    for (int64_t i = 0; i < num_assets_; ++i) {
      action[i] = static_cast<float>(weights[i]);
    }
    Tensor next_state = env.done() ? state
                                   : StateTensor(panel, env.current_day());
    Transition tr{std::move(state), std::move(action),
                  r.reward * config_.reward_scale, std::move(next_state)};
    if (static_cast<int64_t>(replay_.size()) < config_.replay_capacity) {
      replay_.push_back(std::move(tr));
    } else {
      replay_[replay_next_] = std::move(tr);
      replay_next_ = (replay_next_ + 1) % config_.replay_capacity;
    }
    if (step >= config_.warmup_steps) UpdateFromReplay();

    curve_acc += r.reward * config_.reward_scale;
    ++curve_n;
    if ((step + 1) % curve_every == 0) {
      curve.push_back(curve_acc / static_cast<double>(curve_n));
      curve_acc = 0.0;
      curve_n = 0;
    }
  }
  Reset();
  return curve;
}

std::vector<double> DdpgAgent::DecideWeights(const market::PricePanel& panel,
                                             int64_t day) {
  ag::Var scores = actor_->Forward(
      ag::Var::Constant(StateTensor(panel, day)));
  std::vector<double> weights = SoftmaxWeights(scores.value());
  held_ = weights;
  return weights;
}

}  // namespace cit::rl
