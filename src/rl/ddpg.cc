#include "rl/ddpg.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "env/portfolio_env.h"
#include "obs/telemetry.h"
#include "rl/features.h"
#include "rl/gaussian_policy.h"

namespace cit::rl {

DdpgAgent::DdpgAgent(int64_t num_assets, const DdpgConfig& config)
    : num_assets_(num_assets), config_(config), rng_(config.seed) {
  const int64_t state_dim = config_.window * num_assets_ + num_assets_;
  actor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{state_dim, config_.hidden, num_assets_}, rng_);
  critic_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{state_dim + num_assets_, config_.hidden, 1},
      rng_);
  target_actor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{state_dim, config_.hidden, num_assets_}, rng_);
  target_critic_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{state_dim + num_assets_, config_.hidden, 1},
      rng_);
  nn::CopyParameters(*actor_, target_actor_.get());
  nn::CopyParameters(*critic_, target_critic_.get());
  actor_opt_ = std::make_unique<nn::Adam>(
      nn::ParamVars(*actor_), static_cast<float>(config_.lr), 0.9f, 0.999f,
      1e-8f, static_cast<float>(config_.weight_decay));
  critic_opt_ = std::make_unique<nn::Adam>(
      nn::ParamVars(*critic_), static_cast<float>(config_.lr), 0.9f, 0.999f,
      1e-8f, static_cast<float>(config_.weight_decay));
  Reset();
}

void DdpgAgent::Reset() {
  held_.assign(num_assets_, 1.0 / static_cast<double>(num_assets_));
}

Tensor DdpgAgent::StateTensor(const market::PanelView& panel,
                              int64_t day) const {
  Tensor window = FlatWindow(panel, day, config_.window);
  Tensor state({config_.window * num_assets_ + num_assets_});
  for (int64_t i = 0; i < window.numel(); ++i) state[i] = window[i];
  for (int64_t i = 0; i < num_assets_; ++i) {
    state[window.numel() + i] = static_cast<float>(held_[i]);
  }
  return state;
}

void DdpgAgent::UpdateFromReplay() {
  const int64_t size = static_cast<int64_t>(replay_.size());
  if (size < config_.batch_size) return;

  // Critic update: y = r + gamma * Q'(s', mu'(s')).
  ag::Var critic_loss = ag::Var::Constant(Tensor::Scalar(0.0f));
  std::vector<const Transition*> batch;
  batch.reserve(config_.batch_size);
  for (int64_t b = 0; b < config_.batch_size; ++b) {
    batch.push_back(&replay_[rng_.UniformInt(size)]);
  }
  for (const Transition* tr : batch) {
    float y;
    {
      // Target-network bootstrap: consumed as a number, never
      // differentiated — run it graph-free.
      ag::NoGradGuard no_grad;
      ag::Var next_state = ag::Var::Constant(tr->next_state);
      ag::Var next_scores = target_actor_->Forward(next_state);
      ag::Var next_action = ag::Softmax(next_scores);
      ag::Var next_q = target_critic_->Forward(
          ag::Concat({next_state, next_action}, 0));
      y = static_cast<float>(tr->reward) +
          static_cast<float>(config_.gamma) * next_q.value().Item();
    }
    ag::Var q = critic_->Forward(
        ag::Concat({ag::Var::Constant(tr->state),
                    ag::Var::Constant(tr->action)},
                   0));
    critic_loss = ag::Add(critic_loss, ag::Square(ag::AddScalar(q, -y)));
  }
  critic_loss = ag::MulScalar(
      critic_loss, 1.0f / static_cast<float>(config_.batch_size));
  critic_opt_->ZeroGrad();
  critic_loss.Backward();
  CIT_OBS_GAUGE("train.critic_loss", critic_loss.value().Item());
  [[maybe_unused]] const float critic_gn = critic_opt_->ClipGradNorm(5.0f);
  CIT_OBS_GAUGE("train.critic_grad_norm", critic_gn);
  critic_opt_->Step();

  // Actor update: maximize Q(s, softmax(actor(s))).
  ag::Var actor_loss = ag::Var::Constant(Tensor::Scalar(0.0f));
  for (const Transition* tr : batch) {
    ag::Var state = ag::Var::Constant(tr->state);
    ag::Var action = ag::Softmax(actor_->Forward(state));
    ag::Var q = critic_->Forward(ag::Concat({state, action}, 0));
    actor_loss = ag::Sub(actor_loss, q);
  }
  actor_loss = ag::MulScalar(
      actor_loss, 1.0f / static_cast<float>(config_.batch_size));
  actor_opt_->ZeroGrad();
  critic_opt_->ZeroGrad();  // clear grads the actor pass pushed into Q
  actor_loss.Backward();
  CIT_OBS_GAUGE("train.actor_loss", actor_loss.value().Item());
  [[maybe_unused]] const float actor_gn = actor_opt_->ClipGradNorm(5.0f);
  CIT_OBS_GAUGE("train.actor_grad_norm", actor_gn);
  actor_opt_->Step();

  nn::SoftUpdateParameters(*actor_, target_actor_.get(),
                           static_cast<float>(config_.tau));
  nn::SoftUpdateParameters(*critic_, target_critic_.get(),
                           static_cast<float>(config_.tau));
}

std::vector<double> DdpgAgent::Train(const market::PricePanel& panel,
                                     int64_t curve_points) {
  market::InMemorySource source(&panel);
  return Train(market::PanelView(&source), curve_points);
}

std::vector<double> DdpgAgent::Train(const market::PanelView& panel,
                                     int64_t curve_points) {
  env::EnvConfig env_config;
  env_config.window = config_.window;
  env_config.transaction_cost = config_.transaction_cost;
  env_config.end_day = panel.train_end() - 1;
  env::PortfolioEnv env(panel, env_config);
  env.ResetAt(env.earliest_start());
  Reset();

  const int64_t total_steps = config_.train_steps;
  const int64_t curve_every = std::max<int64_t>(1, total_steps / curve_points);

  // Resuming restores weights (incl. target nets), Adam moments, the
  // sequential RNG, the replay buffer, held_, and progress_; the env is
  // put back exactly where the checkpointed run stood, so the continuation
  // is bitwise identical to an uninterrupted run.
  if (!config_.resume_from.empty()) {
    const Status resume = LoadCheckpoint(config_.resume_from);
    CIT_CHECK_MSG(resume.ok(), resume.message().c_str());
    if (has_env_cursor_) {
      const Status cursor = env.RestoreCursor(env_cursor_);
      CIT_CHECK_MSG(cursor.ok(), cursor.message().c_str());
    }
  } else {
    progress_ = {};
    has_env_cursor_ = false;
  }

  // Observational only: phase spans, loss/grad-norm gauges, optional
  // trace/snapshot files; the curve is bitwise identical either way.
  obs::TelemetrySession telemetry(config_.telemetry);

  for (int64_t step = progress_.next_update; step < total_steps; ++step) {
    CIT_OBS_SPAN("train.update");
    if (env.done()) {
      env.ResetAt(env.earliest_start() +
                  rng_.UniformInt(std::max<int64_t>(
                      1, env.end_day() - env.earliest_start() - 2)));
      Reset();
    }
    env::StepResult r;
    {
    CIT_OBS_SPAN("train.rollout");  // acting + replay insert
    Tensor state = StateTensor(panel, env.current_day());
    Tensor noisy;
    {
      // Acting is forward-only; the graph for the actor update is rebuilt
      // later from the replay batch.
      ag::NoGradGuard no_grad;
      noisy = actor_->Forward(ag::Var::Constant(state)).value();
    }
    for (int64_t i = 0; i < num_assets_; ++i) {
      noisy[i] += static_cast<float>(
          rng_.Normal(0.0, config_.explore_noise));
    }
    std::vector<double> weights = SoftmaxWeights(noisy);
    r = env.Step(weights);
    held_ = env.previous_weights();
    Tensor action({num_assets_});
    for (int64_t i = 0; i < num_assets_; ++i) {
      action[i] = static_cast<float>(weights[i]);
    }
    Tensor next_state = env.done() ? state
                                   : StateTensor(panel, env.current_day());
    Transition tr{std::move(state), std::move(action),
                  r.reward * config_.reward_scale, std::move(next_state)};
    if (static_cast<int64_t>(replay_.size()) < config_.replay_capacity) {
      replay_.push_back(std::move(tr));
    } else {
      replay_[replay_next_] = std::move(tr);
      replay_next_ = (replay_next_ + 1) % config_.replay_capacity;
    }
    }
    if (step >= config_.warmup_steps) {
      CIT_OBS_SPAN("train.replay_update");
      UpdateFromReplay();
    }

    CIT_OBS_GAUGE("train.reward", r.reward * config_.reward_scale);
    progress_.curve_acc += r.reward * config_.reward_scale;
    ++progress_.curve_n;
    if ((step + 1) % curve_every == 0) {
      progress_.curve.push_back(progress_.curve_acc /
                                static_cast<double>(progress_.curve_n));
      progress_.curve_acc = 0.0;
      progress_.curve_n = 0;
    }
    progress_.next_update = step + 1;
    env_cursor_ = env.Cursor();
    has_env_cursor_ = true;
    if (config_.checkpoint_every > 0 && !config_.checkpoint_path.empty() &&
        (step + 1) % config_.checkpoint_every == 0) {
      CIT_OBS_SPAN("train.checkpoint");
      const Status saved = SaveCheckpoint(config_.checkpoint_path);
      CIT_CHECK_MSG(saved.ok(), saved.message().c_str());
    }
    telemetry.Tick(step);
  }
  std::vector<double> curve = std::move(progress_.curve);
  progress_ = {};
  has_env_cursor_ = false;
  Reset();
  return curve;
}

nn::ModuleGroup DdpgAgent::AllModules() const {
  nn::ModuleGroup group;
  group.Add("actor.", actor_.get());
  group.Add("critic.", critic_.get());
  group.Add("target_actor.", target_actor_.get());
  group.Add("target_critic.", target_critic_.get());
  return group;
}

nn::CheckpointMeta DdpgAgent::Meta() const {
  nn::CheckpointMeta meta;
  meta.trainer = name();
  meta.num_assets = num_assets_;
  meta.seed = config_.seed;
  meta.arch_tag = config_.hidden;
  return meta;
}

Status DdpgAgent::SaveCheckpoint(const std::string& path) const {
  nn::ModuleGroup all = AllModules();
  TrainerCheckpointParts parts;
  parts.meta = Meta();
  parts.modules = &all;
  parts.opt_actor = actor_opt_.get();
  parts.opt_critic = critic_opt_.get();
  // SaveTrainerCheckpoint only reads through the non-const pointers.
  parts.progress = const_cast<TrainProgress*>(&progress_);
  return SaveTrainerCheckpoint(parts, path, [&](nn::CheckpointWriter* w) {
    {
      nn::ByteWriter b;
      const math::Rng::State rs = rng_.SaveState();
      for (uint64_t word : rs.s) b.U64(word);
      b.U8(rs.has_cached_normal ? 1 : 0);
      b.F64(rs.cached_normal);
      w->AddSection("rng", b.Take());
    }
    {
      nn::ByteWriter b;
      b.U64(replay_.size());
      b.U64(static_cast<uint64_t>(replay_next_));
      for (const Transition& tr : replay_) {
        b.TensorPayload(tr.state);
        b.TensorPayload(tr.action);
        b.F64(tr.reward);
        b.TensorPayload(tr.next_state);
      }
      w->AddSection("replay", b.Take());
    }
    {
      nn::ByteWriter b;
      b.U8(has_env_cursor_ ? 1 : 0);
      b.I64(env_cursor_.day);
      b.F64(env_cursor_.wealth);
      b.DoubleVec(env_cursor_.held);
      b.DoubleVec(held_);
      w->AddSection("env", b.Take());
    }
  });
}

Status DdpgAgent::LoadCheckpoint(const std::string& path) {
  nn::ModuleGroup all = AllModules();
  TrainerCheckpointParts parts;
  parts.meta = Meta();
  parts.modules = &all;
  parts.opt_actor = actor_opt_.get();
  parts.opt_critic = critic_opt_.get();
  parts.progress = &progress_;

  // Trainer-specific state is staged here by the parse callback and only
  // committed after every section of the checkpoint validated.
  math::Rng::State rng_state;
  std::vector<Transition> replay;
  int64_t replay_next = 0;
  env::PortfolioEnv::EnvCursor cursor;
  bool has_cursor = false;
  std::vector<double> held;
  const int64_t state_dim = config_.window * num_assets_ + num_assets_;

  auto finite = [](const Tensor& t) {
    for (int64_t j = 0; j < t.numel(); ++j) {
      if (!std::isfinite(t[j])) return false;
    }
    return true;
  };

  const Status status = LoadTrainerCheckpoint(
      parts, path, [&](const nn::CheckpointReader& ckpt) -> Status {
        {
          auto section = ckpt.Section("rng");
          if (!section.ok()) return section.status();
          nn::ByteReader b = section.value();
          for (uint64_t& word : rng_state.s) word = b.U64();
          const uint8_t cached = b.U8();
          rng_state.cached_normal = b.F64();
          if (!b.ok() || !b.AtEnd() || cached > 1 ||
              (cached == 1 && !std::isfinite(rng_state.cached_normal))) {
            return Status::InvalidArgument("corrupt rng section");
          }
          rng_state.has_cached_normal = cached == 1;
        }
        {
          auto section = ckpt.Section("replay");
          if (!section.ok()) return section.status();
          nn::ByteReader b = section.value();
          const uint64_t size = b.U64();
          const uint64_t next = b.U64();
          if (!b.ok() ||
              size > static_cast<uint64_t>(config_.replay_capacity) ||
              next > size ||
              next >= static_cast<uint64_t>(config_.replay_capacity)) {
            return Status::InvalidArgument("corrupt replay header");
          }
          replay.reserve(size);
          for (uint64_t i = 0; i < size; ++i) {
            Transition tr;
            tr.state = b.TensorPayload();
            tr.action = b.TensorPayload();
            tr.reward = b.F64();
            tr.next_state = b.TensorPayload();
            if (!b.ok() || tr.state.numel() != state_dim ||
                tr.action.numel() != num_assets_ ||
                tr.next_state.numel() != state_dim ||
                !std::isfinite(tr.reward) || !finite(tr.state) ||
                !finite(tr.action) || !finite(tr.next_state)) {
              return Status::InvalidArgument("corrupt replay transition");
            }
            replay.push_back(std::move(tr));
          }
          if (!b.AtEnd()) {
            return Status::InvalidArgument(
                "trailing bytes in replay section");
          }
          replay_next = static_cast<int64_t>(next);
        }
        {
          auto section = ckpt.Section("env");
          if (!section.ok()) return section.status();
          nn::ByteReader b = section.value();
          const uint8_t flag = b.U8();
          cursor.day = b.I64();
          cursor.wealth = b.F64();
          cursor.held = b.DoubleVec();
          held = b.DoubleVec();
          if (!b.ok() || !b.AtEnd() || flag > 1 ||
              static_cast<int64_t>(held.size()) != num_assets_ ||
              !env::IsValidPortfolio(held)) {
            return Status::InvalidArgument("corrupt env section");
          }
          if (flag == 1 &&
              (static_cast<int64_t>(cursor.held.size()) != num_assets_ ||
               !env::IsValidPortfolio(cursor.held) ||
               !std::isfinite(cursor.wealth) || cursor.wealth <= 0.0)) {
            return Status::InvalidArgument("corrupt env cursor");
          }
          has_cursor = flag == 1;
        }
        return Status::OK();
      });
  if (!status.ok()) return status;

  rng_.RestoreState(rng_state);
  replay_ = std::move(replay);
  replay_next_ = replay_next;
  env_cursor_ = std::move(cursor);
  has_env_cursor_ = has_cursor;
  held_ = std::move(held);
  return Status::OK();
}

std::vector<double> DdpgAgent::DecideWeights(const market::PanelView& panel,
                                             int64_t day) {
  ag::NoGradGuard no_grad;
  Tensor state = StateTensor(panel, day);
  Tensor scores = decide_plan_.Run({&state}, [&] {
    return actor_->Forward(ag::Var::Constant(state));
  });
  std::vector<double> weights = SoftmaxWeights(scores);
  held_ = weights;
  return weights;
}

}  // namespace cit::rl
