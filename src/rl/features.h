#ifndef CIT_RL_FEATURES_H_
#define CIT_RL_FEATURES_H_

#include <cstdint>
#include <vector>

#include "market/source.h"
#include "math/tensor.h"

namespace cit::rl {

using math::Tensor;

// Normalized trailing price window ending at `day`:
//   v(i, k) = p_i(day - z + 1 + k) / p_i(day) - 1, scaled by `scale`.
// Returned as [num_assets, 1, window] (assets = conv batch, 1 channel) —
// the layout consumed by Tcn/Gru backbones. Requires day >= window - 1.
Tensor NormalizedWindow(const market::PanelView& panel, int64_t day,
                        int64_t window, float scale = 10.0f);

// Same window flattened to [window * num_assets] (time-major) for MLP
// baselines.
Tensor FlatWindow(const market::PanelView& panel, int64_t day,
                  int64_t window, float scale = 10.0f);

// Splits the normalized window of every asset into `num_bands` horizon
// sub-series with the Haar DWT (paper Sec. IV-A). Returns num_bands tensors
// of shape [num_assets, 1, window]; element 0 is the longest horizon.
// The bands of each asset sum to its original normalized window.
std::vector<Tensor> HorizonBandWindows(const market::PanelView& panel,
                                       int64_t day, int64_t window,
                                       int64_t num_bands,
                                       float scale = 10.0f);

// One-hot encoding of a policy id as a [n] tensor.
Tensor OneHot(int64_t index, int64_t n);

}  // namespace cit::rl

#endif  // CIT_RL_FEATURES_H_
