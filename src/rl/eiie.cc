#include "rl/eiie.h"

#include <cmath>

#include "common/check.h"
#include "rl/features.h"
#include "rl/gaussian_policy.h"

namespace cit::rl {

EiieAgent::EiieAgent(int64_t num_assets, const EiieConfig& config)
    : num_assets_(num_assets), config_(config), rng_(config.seed) {
  conv1_ = std::make_unique<nn::CausalConv1d>(
      1, config_.conv_channels, /*kernel_size=*/3, /*dilation=*/1, rng_);
  conv2_ = std::make_unique<nn::CausalConv1d>(
      config_.conv_channels, config_.conv_channels, /*kernel_size=*/3,
      /*dilation=*/2, rng_);
  head_ = std::make_unique<nn::Linear>(config_.conv_channels + 1, 1, rng_);

  std::vector<ag::Var> params = nn::ParamVars(*conv1_);
  for (auto& v : nn::ParamVars(*conv2_)) params.push_back(v);
  for (auto& v : nn::ParamVars(*head_)) params.push_back(v);
  opt_ = std::make_unique<nn::Adam>(
      std::move(params), static_cast<float>(config_.lr), 0.9f, 0.999f,
      1e-8f, static_cast<float>(config_.weight_decay));
  Reset();
}

void EiieAgent::Reset() {
  held_.assign(num_assets_, 1.0 / static_cast<double>(num_assets_));
}

ag::Var EiieAgent::Scores(const market::PanelView& panel, int64_t day,
                          const ag::Var& prev_weights) const {
  return ScoresFromWindow(NormalizedWindow(panel, day, config_.window),
                          prev_weights);
}

ag::Var EiieAgent::ScoresFromWindow(const Tensor& window,
                                    const ag::Var& prev_weights) const {
  ag::Var h = ag::Relu(conv1_->Forward(ag::Var::Constant(window)));
  h = ag::Relu(conv2_->Forward(h));
  // Final time step of each asset: [m, channels].
  ag::Var last = ag::Reshape(
      ag::Slice(h, /*axis=*/2, config_.window - 1, 1),
      {num_assets_, config_.conv_channels});
  // Append the previously held weight per asset (PVM feature).
  ag::Var prev_col = ag::Reshape(prev_weights, {num_assets_, 1});
  ag::Var features = ag::Concat({last, prev_col}, /*axis=*/1);
  return ag::Reshape(head_->Forward(features), {num_assets_});
}

std::vector<double> EiieAgent::Train(const market::PricePanel& panel,
                                     int64_t curve_points) {
  market::InMemorySource source(&panel);
  return Train(market::PanelView(&source), curve_points);
}

std::vector<double> EiieAgent::Train(const market::PanelView& panel,
                                     int64_t curve_points) {
  CIT_CHECK_GT(panel.train_end(),
               config_.window + config_.segment_len + 2);
  const int64_t lo = config_.window;
  const int64_t hi = panel.train_end() - config_.segment_len - 2;
  CIT_CHECK_GT(hi, lo);

  std::vector<double> curve;
  double curve_acc = 0.0;
  int64_t curve_n = 0;
  const int64_t curve_every =
      std::max<int64_t>(1, config_.train_steps / curve_points);
  const float cost = static_cast<float>(config_.transaction_cost);

  for (int64_t step = 0; step < config_.train_steps; ++step) {
    const int64_t start = lo + rng_.UniformInt(hi - lo);
    ag::Var prev = ag::Var::Constant(
        Tensor::Full({num_assets_},
                     1.0f / static_cast<float>(num_assets_)));
    ag::Var loss = ag::Var::Constant(Tensor::Scalar(0.0f));
    double segment_reward = 0.0;
    for (int64_t t = 0; t < config_.segment_len; ++t) {
      const int64_t day = start + t;
      ag::Var w = ag::Softmax(Scores(panel, day, prev));
      Tensor relatives({num_assets_});
      for (int64_t i = 0; i < num_assets_; ++i) {
        relatives[i] =
            static_cast<float>(panel.PriceRelative(day + 1, i));
      }
      ag::Var growth = ag::Sum(ag::Mul(w, ag::Var::Constant(relatives)));
      ag::Var turnover = ag::Sum(ag::Abs(ag::Sub(w, prev)));
      ag::Var log_ret = ag::Sub(ag::Log(growth),
                                ag::MulScalar(turnover, cost));
      loss = ag::Sub(loss, log_ret);
      segment_reward += log_ret.value().Item();
      prev = w;  // differentiable chain through the segment
    }
    loss = ag::MulScalar(loss,
                         1.0f / static_cast<float>(config_.segment_len));
    opt_->ZeroGrad();
    loss.Backward();
    opt_->ClipGradNorm(5.0f);
    opt_->Step();

    curve_acc += config_.reward_scale * segment_reward /
                 static_cast<double>(config_.segment_len);
    ++curve_n;
    if ((step + 1) % curve_every == 0) {
      curve.push_back(curve_acc / static_cast<double>(curve_n));
      curve_acc = 0.0;
      curve_n = 0;
    }
  }
  Reset();
  return curve;
}

std::vector<double> EiieAgent::DecideWeights(const market::PanelView& panel,
                                             int64_t day) {
  ag::NoGradGuard no_grad;
  Tensor window = NormalizedWindow(panel, day, config_.window);
  Tensor prev({num_assets_});
  for (int64_t i = 0; i < num_assets_; ++i) {
    prev[i] = static_cast<float>(held_[i]);
  }
  Tensor scores = decide_plan_.Run({&window, &prev}, [&] {
    return ScoresFromWindow(window, ag::Var::Constant(prev));
  });
  std::vector<double> weights = SoftmaxWeights(scores);
  held_ = weights;
  return weights;
}

}  // namespace cit::rl
