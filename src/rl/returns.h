#ifndef CIT_RL_RETURNS_H_
#define CIT_RL_RETURNS_H_

#include <cstdint>
#include <vector>

namespace cit::rl {

// Mixture of n-step returns (paper Eq. (6)-(7), the TD(lambda) forward view
// truncated at n_max):
//   G_t^(n)    = sum_{l=1..n} gamma^{l-1} r_{t+l-1} + gamma^n V_{t+n}
//   y_t^lambda = (1-lambda) sum_{n=1..n_max-1} lambda^{n-1} G_t^(n)
//                + lambda^{n_max-1} G_t^(n_max)
// `rewards` has length L; `values` has length L+1 (critic estimates for the
// states visited, including the bootstrap state after the last reward).
// Returns targets y_0..y_{L-1}. Beyond the trajectory end the recursion
// bootstraps with the final value. Computed as the equivalent O(L) backward
// recursion over TD errors (not the literal O(L*n_max) forward view above).
std::vector<double> LambdaReturns(const std::vector<double>& rewards,
                                  const std::vector<double>& values,
                                  double gamma, double lambda,
                                  int64_t n_max);

// Plain discounted returns with terminal bootstrap value.
std::vector<double> DiscountedReturns(const std::vector<double>& rewards,
                                      double gamma, double bootstrap);

// Generalized advantage estimation (Schulman et al. 2016), used by the PPO
// baseline. `values` has length rewards.size()+1.
std::vector<double> GaeAdvantages(const std::vector<double>& rewards,
                                  const std::vector<double>& values,
                                  double gamma, double lambda);

}  // namespace cit::rl

#endif  // CIT_RL_RETURNS_H_
