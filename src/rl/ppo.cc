#include "rl/ppo.h"

#include <cmath>

#include "common/check.h"
#include "env/portfolio_env.h"
#include "obs/telemetry.h"
#include "rl/features.h"
#include "rl/returns.h"
#include "rl/rollout.h"

namespace cit::rl {

PpoAgent::PpoAgent(int64_t num_assets, const PpoConfig& config)
    : num_assets_(num_assets), config_(config), rng_(config.seed) {
  const int64_t input = config_.window * num_assets_ + num_assets_;
  actor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{input, config_.hidden, num_assets_}, rng_);
  critic_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{input, config_.hidden, 1}, rng_);
  log_std_ = ag::Var::Param(
      Tensor::Full({num_assets_}, config_.init_log_std));
  std::vector<ag::Var> actor_params = nn::ParamVars(*actor_);
  actor_params.push_back(log_std_);
  actor_opt_ = std::make_unique<nn::Adam>(
      std::move(actor_params), static_cast<float>(config_.lr), 0.9f, 0.999f,
      1e-8f, static_cast<float>(config_.weight_decay));
  critic_opt_ = std::make_unique<nn::Adam>(
      nn::ParamVars(*critic_), static_cast<float>(config_.lr), 0.9f, 0.999f,
      1e-8f, static_cast<float>(config_.weight_decay));
  Reset();
}

void PpoAgent::Reset() {
  held_.assign(num_assets_, 1.0 / static_cast<double>(num_assets_));
}

Tensor PpoAgent::StateTensor(const market::PanelView& panel, int64_t day,
                             const std::vector<double>& held) const {
  Tensor window = FlatWindow(panel, day, config_.window);
  Tensor state({config_.window * num_assets_ + num_assets_});
  for (int64_t i = 0; i < window.numel(); ++i) state[i] = window[i];
  for (int64_t i = 0; i < num_assets_; ++i) {
    state[window.numel() + i] = static_cast<float>(held[i]);
  }
  return state;
}

std::vector<double> PpoAgent::Train(const market::PricePanel& panel,
                                    int64_t curve_points) {
  market::InMemorySource source(&panel);
  return Train(market::PanelView(&source), curve_points);
}

std::vector<double> PpoAgent::Train(const market::PanelView& panel,
                                    int64_t curve_points) {
  CIT_CHECK_GT(panel.train_end(), config_.window + config_.rollout_len + 2);
  env::EnvConfig env_config;
  env_config.window = config_.window;
  env_config.transaction_cost = config_.transaction_cost;
  env_config.end_day = panel.train_end() - 1;
  env::PortfolioEnv env(panel, env_config);

  const int64_t curve_every =
      std::max<int64_t>(1, config_.train_steps / curve_points);
  const int64_t num_slots =
      std::max<int64_t>(1, config_.rollouts_per_update);
  // Each slot's stream is Split(seed, step, slot): trajectories are a pure
  // function of (params, step, slot), independent of worker scheduling.
  RolloutRunner runner(config_.seed, num_slots);

  // Resuming restores weights, Adam moments, and progress_; counter-split
  // streams make the continuation bitwise identical to an uninterrupted
  // run.
  if (!config_.resume_from.empty()) {
    const Status resume = LoadCheckpoint(config_.resume_from);
    CIT_CHECK_MSG(resume.ok(), resume.message().c_str());
  } else {
    progress_ = {};
  }
  runner.set_next_step(progress_.next_update);

  // Observational only: phase spans, loss/grad-norm gauges, optional
  // trace/snapshot files; the curve is bitwise identical either way.
  obs::TelemetrySession telemetry(config_.telemetry);

  // One slot's frozen (old-policy) rollout statistics; the surrogate
  // epochs below re-walk slots serially in slot order.
  struct SlotData {
    std::vector<Tensor> states;
    std::vector<Tensor> raw_actions;
    std::vector<double> old_log_probs;
    std::vector<double> rewards;
    std::vector<double> adv;
    std::vector<double> targets;
  };

  while (runner.next_step() < config_.train_steps) {
    CIT_OBS_SPAN("train.update");
    const int64_t step = runner.next_step();
    const int64_t lo = env.earliest_start();
    const int64_t hi = env.end_day() - config_.rollout_len - 1;
    std::vector<SlotData> slots(num_slots);

    {
    CIT_OBS_SPAN("train.rollout");
    runner.Collect([&](int64_t slot, math::Rng& rng) {
      // PPO freezes the old policy's statistics as plain numbers and
      // rebuilds the graph in the surrogate epochs, so the entire
      // collection pass is graph-free (guard is per worker thread).
      ag::NoGradGuard no_grad;
      SlotData& sd = slots[slot];
      env::PortfolioEnv senv = env.CloneAt(
          lo + rng.UniformInt(std::max<int64_t>(1, hi - lo)));
      std::vector<double> held(num_assets_,
                               1.0 / static_cast<double>(num_assets_));
      std::vector<double> values;
      for (int64_t t = 0; t < config_.rollout_len && !senv.done(); ++t) {
        Tensor state = StateTensor(panel, senv.current_day(), held);
        ag::Var input = ag::Var::Constant(state);
        ag::Var mean = actor_->Forward(input);
        GaussianAction action = SampleGaussianSimplex(mean, log_std_, &rng);
        values.push_back(critic_->Forward(input).value().Item());
        sd.states.push_back(std::move(state));
        sd.raw_actions.push_back(action.raw);
        sd.old_log_probs.push_back(action.log_prob.value().Item());
        const env::StepResult r = senv.Step(action.weights);
        sd.rewards.push_back(r.reward * config_.reward_scale);
        held = senv.previous_weights();
      }
      double bootstrap = 0.0;
      if (!senv.done()) {
        bootstrap =
            critic_
                ->Forward(ag::Var::Constant(
                    StateTensor(panel, senv.current_day(), held)))
                .value()
                .Item();
      }
      values.push_back(bootstrap);
      sd.adv = GaeAdvantages(sd.rewards, values, config_.gamma, 0.95);
      sd.targets.resize(sd.adv.size());
      for (size_t t = 0; t < sd.adv.size(); ++t) {
        sd.targets[t] = sd.adv[t] + values[t];
      }
    });
    }

    int64_t total_steps = 0;
    for (const SlotData& sd : slots) {
      total_steps += static_cast<int64_t>(sd.states.size());
    }
    if (total_steps == 0) {
      progress_.next_update = step + 1;
      continue;
    }

    // Clipped-surrogate epochs over all collected segments; per-slot
    // gradients accumulate in slot order, one optimizer step per epoch.
    for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
      CIT_OBS_SPAN("train.update_epoch");
      actor_opt_->ZeroGrad();
      critic_opt_->ZeroGrad();
      for (const SlotData& sd : slots) {
        if (sd.states.empty()) continue;
        ag::Var loss = ag::Var::Constant(Tensor::Scalar(0.0f));
        for (size_t t = 0; t < sd.states.size(); ++t) {
          ag::Var input = ag::Var::Constant(sd.states[t]);
          ag::Var mean = actor_->Forward(input);
          ag::Var logp = GaussianLogProb(mean, log_std_, sd.raw_actions[t]);
          ag::Var ratio = ag::Exp(ag::AddScalar(
              logp, -static_cast<float>(sd.old_log_probs[t])));
          const float a = static_cast<float>(sd.adv[t]);
          ag::Var surr1 = ag::MulScalar(ratio, a);
          ag::Var surr2 = ag::MulScalar(
              ag::Clamp(ratio, 1.0f - static_cast<float>(config_.clip),
                        1.0f + static_cast<float>(config_.clip)),
              a);
          loss = ag::Sub(loss, ag::Min(surr1, surr2));
          loss = ag::Sub(loss,
                         ag::MulScalar(GaussianEntropy(log_std_),
                                       static_cast<float>(
                                           config_.entropy_coef)));
          ag::Var v = critic_->Forward(input);
          ag::Var err = ag::AddScalar(v, -static_cast<float>(sd.targets[t]));
          loss = ag::Add(loss, ag::MulScalar(ag::Square(err), 0.5f));
        }
        loss = ag::MulScalar(loss, 1.0f / static_cast<float>(total_steps));
        loss.Backward();
        CIT_OBS_GAUGE("train.loss", loss.value().Item());
      }
      [[maybe_unused]] const float actor_gn = actor_opt_->ClipGradNorm(5.0f);
      [[maybe_unused]] const float critic_gn =
          critic_opt_->ClipGradNorm(5.0f);
      CIT_OBS_GAUGE("train.actor_grad_norm", actor_gn);
      CIT_OBS_GAUGE("train.critic_grad_norm", critic_gn);
      actor_opt_->Step();
      critic_opt_->Step();
    }

    double step_reward = 0.0;
    for (const SlotData& sd : slots) {
      double mean_reward = 0.0;
      for (double r : sd.rewards) mean_reward += r;
      if (!sd.rewards.empty()) {
        step_reward += mean_reward / static_cast<double>(sd.rewards.size());
      }
    }
    CIT_OBS_GAUGE("train.reward",
                  step_reward / static_cast<double>(num_slots));
    progress_.curve_acc += step_reward / static_cast<double>(num_slots);
    ++progress_.curve_n;
    if ((step + 1) % curve_every == 0) {
      progress_.curve.push_back(progress_.curve_acc /
                                static_cast<double>(progress_.curve_n));
      progress_.curve_acc = 0.0;
      progress_.curve_n = 0;
    }
    progress_.next_update = step + 1;
    if (config_.checkpoint_every > 0 && !config_.checkpoint_path.empty() &&
        (step + 1) % config_.checkpoint_every == 0) {
      CIT_OBS_SPAN("train.checkpoint");
      const Status saved = SaveCheckpoint(config_.checkpoint_path);
      CIT_CHECK_MSG(saved.ok(), saved.message().c_str());
    }
    telemetry.Tick(step);
  }
  std::vector<double> curve = std::move(progress_.curve);
  progress_ = {};
  Reset();
  return curve;
}

nn::ModuleGroup PpoAgent::AllModules() const {
  nn::ModuleGroup group;
  group.Add("actor.", actor_.get());
  group.Add("critic.", critic_.get());
  group.AddVar("log_std", log_std_);
  return group;
}

Status PpoAgent::SaveCheckpoint(const std::string& path) const {
  nn::ModuleGroup all = AllModules();
  TrainerCheckpointParts parts;
  parts.meta.trainer = name();
  parts.meta.num_assets = num_assets_;
  parts.meta.seed = config_.seed;
  parts.meta.arch_tag = config_.hidden;
  parts.modules = &all;
  parts.opt_actor = actor_opt_.get();
  parts.opt_critic = critic_opt_.get();
  // SaveTrainerCheckpoint only reads through the non-const pointers.
  parts.progress = const_cast<TrainProgress*>(&progress_);
  return SaveTrainerCheckpoint(parts, path);
}

Status PpoAgent::LoadCheckpoint(const std::string& path) {
  nn::ModuleGroup all = AllModules();
  TrainerCheckpointParts parts;
  parts.meta.trainer = name();
  parts.meta.num_assets = num_assets_;
  parts.meta.seed = config_.seed;
  parts.meta.arch_tag = config_.hidden;
  parts.modules = &all;
  parts.opt_actor = actor_opt_.get();
  parts.opt_critic = critic_opt_.get();
  parts.progress = &progress_;
  return LoadTrainerCheckpoint(parts, path);
}

std::vector<double> PpoAgent::DecideWeights(const market::PanelView& panel,
                                            int64_t day) {
  ag::NoGradGuard no_grad;
  Tensor state = StateTensor(panel, day, held_);
  Tensor mean = decide_plan_.Run({&state}, [&] {
    return actor_->Forward(ag::Var::Constant(state));
  });
  // Deterministic action: softmax of the Gaussian mean (what
  // SampleGaussianSimplex returns for rng == nullptr).
  held_ = SoftmaxWeights(mean);
  return held_;
}

}  // namespace cit::rl
