#ifndef CIT_RL_DDPG_H_
#define CIT_RL_DDPG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "env/backtest.h"
#include "env/portfolio_env.h"
#include "market/source.h"
#include "math/plan.h"
#include "math/rng.h"
#include "nn/checkpoint.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "rl/config.h"
#include "rl/gaussian_policy.h"
#include "rl/rollout.h"

namespace cit::rl {

// Deep deterministic policy gradient baseline (Lillicrap et al. 2016).
// The deterministic actor outputs pre-softmax scores mapped onto the
// simplex; exploration adds Gaussian noise to the scores. The critic is
// Q(s, a) over the concatenated state and executed weights, trained from a
// uniform replay buffer with soft-updated target networks.
class DdpgAgent : public env::TradingAgent {
 public:
  struct DdpgConfig : RlTrainConfig {
    int64_t replay_capacity = 4096;
    int64_t batch_size = 32;
    int64_t warmup_steps = 64;
    double tau = 0.01;            // target-network soft update rate
    double explore_noise = 0.3;   // stddev of score-space noise
  };

  DdpgAgent(int64_t num_assets, const DdpgConfig& config);

  std::vector<double> Train(const market::PanelView& panel,
                            int64_t curve_points = 20);
  std::vector<double> Train(const market::PricePanel& panel,
                            int64_t curve_points = 20);

  std::string name() const override { return "DDPG"; }
  void Reset() override;
  using env::TradingAgent::DecideWeights;
  std::vector<double> DecideWeights(const market::PanelView& panel,
                                    int64_t day) override;

  // Full crash-safe training state, written atomically; driven by
  // config.checkpoint_every / resume_from. On top of the shared sections
  // (weights incl. target nets, both Adam states, progress) DDPG
  // checkpoints its sequential RNG, the replay buffer, the env cursor, and
  // the held weights, so a resumed run is bitwise identical to the
  // uninterrupted one. Loading is transactional: on any error the agent is
  // unchanged.
  Status SaveCheckpoint(const std::string& path) const;
  Status LoadCheckpoint(const std::string& path);

 private:
  struct Transition {
    Tensor state;
    Tensor action;  // executed weights [m]
    double reward;
    Tensor next_state;
  };

  Tensor StateTensor(const market::PanelView& panel, int64_t day) const;
  void UpdateFromReplay();

  // All four networks under stable names — the checkpoint parameter set.
  // Target networks are included: soft updates make them distinct state.
  nn::ModuleGroup AllModules() const;
  nn::CheckpointMeta Meta() const;

  int64_t num_assets_;
  DdpgConfig config_;
  math::Rng rng_;
  std::unique_ptr<nn::Mlp> actor_;
  std::unique_ptr<nn::Mlp> critic_;
  std::unique_ptr<nn::Mlp> target_actor_;
  std::unique_ptr<nn::Mlp> target_critic_;
  std::unique_ptr<nn::Adam> actor_opt_;
  std::unique_ptr<nn::Adam> critic_opt_;
  std::vector<Transition> replay_;
  int64_t replay_next_ = 0;
  std::vector<double> held_;
  TrainProgress progress_;  // in-flight training progress (checkpointed)
  // Where Train's env stood after the last completed update; restored on
  // resume so the episode continues mid-stream.
  env::PortfolioEnv::EnvCursor env_cursor_;
  bool has_env_cursor_ = false;
  // Compiled actor forward for the deterministic DecideWeights path.
  plan::CompiledFn decide_plan_;
};

}  // namespace cit::rl

#endif  // CIT_RL_DDPG_H_
