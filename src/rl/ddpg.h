#ifndef CIT_RL_DDPG_H_
#define CIT_RL_DDPG_H_

#include <memory>
#include <string>
#include <vector>

#include "env/backtest.h"
#include "market/panel.h"
#include "math/rng.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "rl/config.h"
#include "rl/gaussian_policy.h"

namespace cit::rl {

// Deep deterministic policy gradient baseline (Lillicrap et al. 2016).
// The deterministic actor outputs pre-softmax scores mapped onto the
// simplex; exploration adds Gaussian noise to the scores. The critic is
// Q(s, a) over the concatenated state and executed weights, trained from a
// uniform replay buffer with soft-updated target networks.
class DdpgAgent : public env::TradingAgent {
 public:
  struct DdpgConfig : RlTrainConfig {
    int64_t replay_capacity = 4096;
    int64_t batch_size = 32;
    int64_t warmup_steps = 64;
    double tau = 0.01;            // target-network soft update rate
    double explore_noise = 0.3;   // stddev of score-space noise
  };

  DdpgAgent(int64_t num_assets, const DdpgConfig& config);

  std::vector<double> Train(const market::PricePanel& panel,
                            int64_t curve_points = 20);

  std::string name() const override { return "DDPG"; }
  void Reset() override;
  std::vector<double> DecideWeights(const market::PricePanel& panel,
                                    int64_t day) override;

 private:
  struct Transition {
    Tensor state;
    Tensor action;  // executed weights [m]
    double reward;
    Tensor next_state;
  };

  Tensor StateTensor(const market::PricePanel& panel, int64_t day) const;
  void UpdateFromReplay();

  int64_t num_assets_;
  DdpgConfig config_;
  math::Rng rng_;
  std::unique_ptr<nn::Mlp> actor_;
  std::unique_ptr<nn::Mlp> critic_;
  std::unique_ptr<nn::Mlp> target_actor_;
  std::unique_ptr<nn::Mlp> target_critic_;
  std::unique_ptr<nn::Adam> actor_opt_;
  std::unique_ptr<nn::Adam> critic_opt_;
  std::vector<Transition> replay_;
  int64_t replay_next_ = 0;
  std::vector<double> held_;
};

}  // namespace cit::rl

#endif  // CIT_RL_DDPG_H_
