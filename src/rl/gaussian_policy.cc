#include "rl/gaussian_policy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cit::rl {

namespace {
const float kHalfLog2Pi = 0.9189385332f;  // 0.5 * log(2*pi)

// exp(log_std) underflows to exactly 0 in float once log_std < ~-87.3 (and
// overflows to +Inf above ~88.7); the z-score below then divides by zero
// and a collapsed log-std emits an Inf log-prob whose backward pass NaNs
// every policy gradient. Clamp log_std BEFORE exponentiating: clamping the
// std after Exp still backprops through the overflowed Exp node, whose
// local gradient is the stored Inf output, so the Clamp's zero incoming
// gradient turns into 0 * Inf = NaN. On [kMinLogStd, kMaxLogStd] — any
// realistic spread — the clamp is the identity with unit gradient, so
// training curves are bitwise unchanged.
const float kMinLogStd = -13.815511f;  // log(1e-6)
const float kMaxLogStd = 13.815511f;   // log(1e6)
}  // namespace

Var GaussianLogProb(const Var& mean, const Var& log_std, const Tensor& raw) {
  CIT_CHECK(mean.shape() == log_std.shape());
  CIT_CHECK(mean.shape() == raw.shape());
  const int64_t m = mean.numel();
  Var u = Var::Constant(raw);
  // The clamped log-std is used both for the scale and the normalizer so
  // the density integrates to one for the distribution actually sampled.
  Var ls = ag::Clamp(log_std, kMinLogStd, kMaxLogStd);
  Var std = ag::Exp(ls);
  Var z = ag::Div(ag::Sub(u, mean), std);
  // logp = -0.5 z^2 - log_std - 0.5 log(2 pi), summed over dimensions.
  Var per_dim = ag::Add(ag::MulScalar(ag::Square(z), 0.5f), ls);
  return ag::AddScalar(ag::Neg(ag::Sum(per_dim)),
                       -kHalfLog2Pi * static_cast<float>(m));
}

Var GaussianEntropy(const Var& log_std) {
  const int64_t m = log_std.numel();
  return ag::AddScalar(ag::Sum(log_std),
                       (0.5f + kHalfLog2Pi) * static_cast<float>(m));
}

std::vector<double> SoftmaxWeightsRange(const Tensor& raw, int64_t begin,
                                        int64_t len) {
  std::vector<double> w(len);
  double mx = raw[begin];
  for (int64_t i = 1; i < len; ++i) mx = std::max<double>(mx, raw[begin + i]);
  double total = 0.0;
  for (int64_t i = 0; i < len; ++i) {
    w[i] = std::exp(static_cast<double>(raw[begin + i]) - mx);
    total += w[i];
  }
  for (double& v : w) v /= total;
  return w;
}

std::vector<double> SoftmaxWeights(const Tensor& raw) {
  return SoftmaxWeightsRange(raw, 0, raw.numel());
}

GaussianAction SampleGaussianSimplex(const Var& mean, const Var& log_std,
                                     Rng* rng) {
  GaussianAction action;
  const int64_t m = mean.numel();
  Tensor raw = mean.value();
  if (rng != nullptr) {
    for (int64_t i = 0; i < m; ++i) {
      // Same clamp as GaussianLogProb so the sampling distribution matches
      // the density the log-prob scores it with.
      const float std = std::exp(
          std::clamp(log_std.value()[i], kMinLogStd, kMaxLogStd));
      raw[i] += std * static_cast<float>(rng->Normal());
    }
  }
  action.raw = raw;
  action.weights = SoftmaxWeights(raw);
  action.log_prob = GaussianLogProb(mean, log_std, raw);
  return action;
}

}  // namespace cit::rl
