#ifndef CIT_RL_SARL_H_
#define CIT_RL_SARL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "rl/a2c.h"

namespace cit::rl {

// State-augmented RL baseline in the spirit of SARL (Ye et al. 2020): the
// trading policy's state is augmented with per-asset movement predictions
// from an auxiliary encoder. The paper's SARL learns the encoder from price
// and news; with no news feed available, our encoder is a logistic
// up/down-movement predictor pre-trained on the price windows of the
// training split (DESIGN.md documents the substitution). The policy itself
// is the same actor-critic as A2C over the augmented state.
class SarlAgent : public A2cAgent {
 public:
  SarlAgent(int64_t num_assets, const RlTrainConfig& config);

  std::string name() const override { return "SARL"; }

  // Pre-trains the movement predictor, then runs A2C training.
  std::vector<double> Train(const market::PanelView& panel,
                            int64_t curve_points = 20);
  std::vector<double> Train(const market::PricePanel& panel,
                            int64_t curve_points = 20);

  // Exposed for tests: predicted up-probabilities for all assets at `day`.
  Tensor PredictMovement(const market::PanelView& panel, int64_t day) const;

 protected:
  Tensor ExtraState(const market::PanelView& panel,
                    int64_t day) const override;

 private:
  void TrainPredictor(const market::PanelView& panel);

  std::unique_ptr<nn::Linear> predictor_;  // [window] -> 1 logit, shared
  std::unique_ptr<nn::Adam> predictor_opt_;
  int64_t predictor_steps_;
};

}  // namespace cit::rl

#endif  // CIT_RL_SARL_H_
