#ifndef CIT_RL_ROLLOUT_H_
#define CIT_RL_ROLLOUT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "math/rng.h"
#include "nn/checkpoint.h"
#include "nn/optimizer.h"

namespace cit::rl {

// Deterministic parallel rollout collection.
//
// Every on-policy trainer in this repo spends most of its wall time
// collecting rollouts: stepping a PortfolioEnv while running policy
// forward passes to sample actions. The rollouts of one update are
// mutually independent — they read frozen parameters and an immutable
// price panel — so a RolloutRunner schedules the K slots of an update
// onto the global ThreadPool and lets each slot fill its own storage.
//
// The determinism contract mirrors the kernel layer's: results are
// bitwise identical for any CIT_NUM_THREADS. Three rules deliver it:
//
//  1. Per-slot RNG streams are counter-split, not sequential: slot j of
//     update `step` draws from Rng::Split(seed, step, slot), a stream
//     that depends only on those integers — never on which thread runs
//     the slot or in which order slots finish.
//  2. A slot writes only its own storage (its env clone, its autograd
//     tape, its record vectors). Shared inputs (panel, parameters,
//     feature caches) are read-only or internally synchronized.
//  3. Consumers walk the slots in index order after Collect returns —
//     in particular, per-rollout losses are backpropagated and their
//     gradients accumulated in fixed slot order on the calling thread.
//
// Nested parallelism is already handled by the pool: math kernels invoked
// from inside a slot detect the surrounding parallel region and run
// serially, and every kernel is bitwise thread-count-invariant, so a slot
// computes the same floats whether its inner kernels ran parallel (K=1 or
// a 1-thread pool) or inline under a busy pool.
class RolloutRunner {
 public:
  // `seed` is the trainer's config seed; `num_slots` is K, the number of
  // independent rollouts collected per update.
  RolloutRunner(uint64_t seed, int64_t num_slots);

  int64_t num_slots() const { return num_slots_; }

  // Runs body(slot, rng) for every slot in [0, num_slots) on the global
  // ThreadPool, where rng == Rng::Split(seed, step, slot). Returns after
  // every slot finished. `body` must only write per-slot storage.
  void Collect(int64_t step,
               const std::function<void(int64_t, math::Rng&)>& body) const;

  // Parallel sweep over the slots without an RNG stream — used for
  // forward-only recomputation phases (e.g. re-estimating Q-values after
  // a critic update). Same write-isolation contract as Collect.
  void ForEachSlot(const std::function<void(int64_t)>& body) const;

  // Update counter for resumable training. Because the per-slot streams are
  // counter-split on (seed, step, slot), the entire RNG state of an
  // interrupted run is captured by the next update index alone: restore it
  // with set_next_step() and collection continues on exactly the streams an
  // uninterrupted run would have used.
  int64_t next_step() const { return next_step_; }
  void set_next_step(int64_t step) { next_step_ = step; }

  // Stateful form of Collect: uses next_step() as the update index, then
  // advances it.
  void Collect(const std::function<void(int64_t, math::Rng&)>& body);

 private:
  uint64_t seed_;
  int64_t num_slots_;
  int64_t next_step_ = 0;
};

// Mutable progress of a training loop, checkpointed alongside parameters
// and optimizer state: the next update index plus the partially-filled
// learning-curve accumulators. Restoring it and set_next_step() is all a
// counter-split trainer needs to continue a killed run bitwise-identically.
struct TrainProgress {
  int64_t next_update = 0;
  std::vector<double> curve;
  double curve_acc = 0.0;
  int64_t curve_n = 0;
};

void AppendTrainProgress(const TrainProgress& progress, nn::ByteWriter* out);
// Parses into `*out` (overwriting it) with validation; on error `*out` is
// unspecified — parse into a temporary when transactionality matters.
Status ParseTrainProgress(nn::ByteReader* in, TrainProgress* out);

// The checkpoint sections every trainer shares: identity meta, the flat
// parameter blob, two optimizer states, and training progress. All members
// are borrowed; they must outlive the Save/Load call.
struct TrainerCheckpointParts {
  nn::CheckpointMeta meta;
  const nn::Module* modules = nullptr;
  nn::Optimizer* opt_actor = nullptr;
  nn::Optimizer* opt_critic = nullptr;
  TrainProgress* progress = nullptr;
};

// Writes the shared sections (plus any trainer-specific ones added by
// `extra`) atomically to `path`.
Status SaveTrainerCheckpoint(
    const TrainerCheckpointParts& parts, const std::string& path,
    const std::function<void(nn::CheckpointWriter*)>& extra = nullptr);

// Transactional load: every section — including `parse_extra`, which must
// only parse trainer-specific sections into caller-owned staging — is
// validated before anything is committed, so a corrupt or mismatched
// checkpoint leaves the trainer untouched. Callers commit their extra
// staged state only after this returns OK.
Status LoadTrainerCheckpoint(
    const TrainerCheckpointParts& parts, const std::string& path,
    const std::function<Status(const nn::CheckpointReader&)>& parse_extra =
        nullptr);

}  // namespace cit::rl

#endif  // CIT_RL_ROLLOUT_H_
