#ifndef CIT_RL_ROLLOUT_H_
#define CIT_RL_ROLLOUT_H_

#include <cstdint>
#include <functional>

#include "math/rng.h"

namespace cit::rl {

// Deterministic parallel rollout collection.
//
// Every on-policy trainer in this repo spends most of its wall time
// collecting rollouts: stepping a PortfolioEnv while running policy
// forward passes to sample actions. The rollouts of one update are
// mutually independent — they read frozen parameters and an immutable
// price panel — so a RolloutRunner schedules the K slots of an update
// onto the global ThreadPool and lets each slot fill its own storage.
//
// The determinism contract mirrors the kernel layer's: results are
// bitwise identical for any CIT_NUM_THREADS. Three rules deliver it:
//
//  1. Per-slot RNG streams are counter-split, not sequential: slot j of
//     update `step` draws from Rng::Split(seed, step, slot), a stream
//     that depends only on those integers — never on which thread runs
//     the slot or in which order slots finish.
//  2. A slot writes only its own storage (its env clone, its autograd
//     tape, its record vectors). Shared inputs (panel, parameters,
//     feature caches) are read-only or internally synchronized.
//  3. Consumers walk the slots in index order after Collect returns —
//     in particular, per-rollout losses are backpropagated and their
//     gradients accumulated in fixed slot order on the calling thread.
//
// Nested parallelism is already handled by the pool: math kernels invoked
// from inside a slot detect the surrounding parallel region and run
// serially, and every kernel is bitwise thread-count-invariant, so a slot
// computes the same floats whether its inner kernels ran parallel (K=1 or
// a 1-thread pool) or inline under a busy pool.
class RolloutRunner {
 public:
  // `seed` is the trainer's config seed; `num_slots` is K, the number of
  // independent rollouts collected per update.
  RolloutRunner(uint64_t seed, int64_t num_slots);

  int64_t num_slots() const { return num_slots_; }

  // Runs body(slot, rng) for every slot in [0, num_slots) on the global
  // ThreadPool, where rng == Rng::Split(seed, step, slot). Returns after
  // every slot finished. `body` must only write per-slot storage.
  void Collect(int64_t step,
               const std::function<void(int64_t, math::Rng&)>& body) const;

  // Parallel sweep over the slots without an RNG stream — used for
  // forward-only recomputation phases (e.g. re-estimating Q-values after
  // a critic update). Same write-isolation contract as Collect.
  void ForEachSlot(const std::function<void(int64_t)>& body) const;

 private:
  uint64_t seed_;
  int64_t num_slots_;
};

}  // namespace cit::rl

#endif  // CIT_RL_ROLLOUT_H_
