#ifndef CIT_RL_EIIE_H_
#define CIT_RL_EIIE_H_

#include <memory>
#include <string>
#include <vector>

#include "env/backtest.h"
#include "market/source.h"
#include "math/plan.h"
#include "math/rng.h"
#include "nn/conv.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "rl/config.h"
#include "rl/gaussian_policy.h"

namespace cit::rl {

// Ensemble of identical independent evaluators (Jiang et al. 2017). Each
// asset is scored by the same convolutional evaluator over its own price
// window, with the previously held weight as an extra feature (the
// portfolio-vector-memory idea); scores are softmax-normalized into
// weights. Training maximizes the cost-adjusted log return directly over
// random consecutive segments — the original paper's "direct policy
// gradient through the differentiable reward".
class EiieAgent : public env::TradingAgent {
 public:
  struct EiieConfig : RlTrainConfig {
    int64_t conv_channels = 6;
    int64_t segment_len = 8;
  };

  EiieAgent(int64_t num_assets, const EiieConfig& config);

  std::vector<double> Train(const market::PanelView& panel,
                            int64_t curve_points = 20);
  std::vector<double> Train(const market::PricePanel& panel,
                            int64_t curve_points = 20);

  std::string name() const override { return "EIIE"; }
  void Reset() override;
  using env::TradingAgent::DecideWeights;
  std::vector<double> DecideWeights(const market::PanelView& panel,
                                    int64_t day) override;

 private:
  // Scores for all assets given the window and previous weights (Var [m]).
  ag::Var Scores(const market::PanelView& panel, int64_t day,
                 const ag::Var& prev_weights) const;

  // Same scores with the normalized window already materialized, so
  // DecideWeights can bind it as a varying input of the compiled plan.
  ag::Var ScoresFromWindow(const Tensor& window,
                           const ag::Var& prev_weights) const;

  int64_t num_assets_;
  EiieConfig config_;
  math::Rng rng_;
  std::unique_ptr<nn::CausalConv1d> conv1_;
  std::unique_ptr<nn::CausalConv1d> conv2_;
  std::unique_ptr<nn::Linear> head_;  // shared per-asset scorer
  std::unique_ptr<nn::Adam> opt_;
  std::vector<double> held_;
  // Compiled scorer forward for the deterministic DecideWeights path.
  plan::CompiledFn decide_plan_;
};

}  // namespace cit::rl

#endif  // CIT_RL_EIIE_H_
