#include "rl/rollout.h"

#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/telemetry.h"

namespace cit::rl {

RolloutRunner::RolloutRunner(uint64_t seed, int64_t num_slots)
    : seed_(seed), num_slots_(num_slots) {
  CIT_CHECK_GE(num_slots, 1);
}

void RolloutRunner::Collect(
    int64_t step,
    const std::function<void(int64_t, math::Rng&)>& body) const {
  ThreadPool::Global().ParallelFor(
      0, num_slots_, /*grain=*/1, [&](int64_t lo, int64_t hi) {
        for (int64_t slot = lo; slot < hi; ++slot) {
          // Per-slot wall time; together with env.step_us this splits a
          // rollout into env-step vs forward-pass cost.
          CIT_OBS_SPAN("rollout.slot");
          CIT_OBS_COUNT("rollout.slots", 1);
          math::Rng rng = math::Rng::Split(
              seed_, static_cast<uint64_t>(step), static_cast<uint64_t>(slot));
          body(slot, rng);
        }
      });
}

void RolloutRunner::ForEachSlot(
    const std::function<void(int64_t)>& body) const {
  ThreadPool::Global().ParallelFor(
      0, num_slots_, /*grain=*/1, [&](int64_t lo, int64_t hi) {
        for (int64_t slot = lo; slot < hi; ++slot) body(slot);
      });
}

void RolloutRunner::Collect(
    const std::function<void(int64_t, math::Rng&)>& body) {
  Collect(next_step_, body);
  ++next_step_;
}

void AppendTrainProgress(const TrainProgress& progress, nn::ByteWriter* out) {
  out->I64(progress.next_update);
  out->DoubleVec(progress.curve);
  out->F64(progress.curve_acc);
  out->I64(progress.curve_n);
}

Status ParseTrainProgress(nn::ByteReader* in, TrainProgress* out) {
  out->next_update = in->I64();
  out->curve = in->DoubleVec();
  out->curve_acc = in->F64();
  out->curve_n = in->I64();
  if (!in->ok() || out->next_update < 0 || out->curve_n < 0) {
    return Status::InvalidArgument("corrupt training progress section");
  }
  return Status::OK();
}

Status SaveTrainerCheckpoint(
    const TrainerCheckpointParts& parts, const std::string& path,
    const std::function<void(nn::CheckpointWriter*)>& extra) {
  CIT_CHECK(parts.modules && parts.opt_actor && parts.opt_critic &&
            parts.progress);
  nn::CheckpointWriter writer;
  {
    nn::ByteWriter b;
    nn::AppendMeta(parts.meta, &b);
    writer.AddSection("meta", b.Take());
  }
  {
    nn::ByteWriter b;
    nn::AppendModuleParameters(*parts.modules, &b);
    writer.AddSection("params", b.Take());
  }
  {
    nn::ByteWriter b;
    parts.opt_actor->SaveState(&b);
    writer.AddSection("opt_actor", b.Take());
  }
  {
    nn::ByteWriter b;
    parts.opt_critic->SaveState(&b);
    writer.AddSection("opt_critic", b.Take());
  }
  {
    nn::ByteWriter b;
    AppendTrainProgress(*parts.progress, &b);
    writer.AddSection("progress", b.Take());
  }
  if (extra) extra(&writer);
  return writer.WriteAtomic(path);
}

Status LoadTrainerCheckpoint(
    const TrainerCheckpointParts& parts, const std::string& path,
    const std::function<Status(const nn::CheckpointReader&)>& parse_extra) {
  CIT_CHECK(parts.modules && parts.opt_actor && parts.opt_critic &&
            parts.progress);
  auto opened = nn::CheckpointReader::Open(path);
  if (!opened.ok()) return opened.status();
  const nn::CheckpointReader& ckpt = opened.value();

  auto meta_r = ckpt.Section("meta");
  if (!meta_r.ok()) return meta_r.status();
  nn::ByteReader meta = meta_r.value();
  if (Status s = nn::ValidateMeta(&meta, parts.meta); !s.ok()) return s;

  // Stage every section before committing anything.
  auto params_r = ckpt.Section("params");
  if (!params_r.ok()) return params_r.status();
  nn::ByteReader params = params_r.value();
  std::vector<math::Tensor> staged_params;
  if (Status s = nn::ParseParameters(&params, *parts.modules, &staged_params);
      !s.ok()) {
    return s;
  }
  if (!params.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in params section");
  }

  nn::Optimizer::StagedState actor_state, critic_state;
  auto opt_a_r = ckpt.Section("opt_actor");
  if (!opt_a_r.ok()) return opt_a_r.status();
  nn::ByteReader opt_a = opt_a_r.value();
  if (Status s = parts.opt_actor->ParseState(&opt_a, &actor_state); !s.ok()) {
    return s;
  }
  auto opt_c_r = ckpt.Section("opt_critic");
  if (!opt_c_r.ok()) return opt_c_r.status();
  nn::ByteReader opt_c = opt_c_r.value();
  if (Status s = parts.opt_critic->ParseState(&opt_c, &critic_state);
      !s.ok()) {
    return s;
  }

  auto progress_r = ckpt.Section("progress");
  if (!progress_r.ok()) return progress_r.status();
  nn::ByteReader progress_bytes = progress_r.value();
  TrainProgress progress;
  if (Status s = ParseTrainProgress(&progress_bytes, &progress); !s.ok()) {
    return s;
  }

  if (parse_extra) {
    if (Status s = parse_extra(ckpt); !s.ok()) return s;
  }

  nn::CommitParameters(std::move(staged_params), *parts.modules);
  parts.opt_actor->CommitState(std::move(actor_state));
  parts.opt_critic->CommitState(std::move(critic_state));
  *parts.progress = std::move(progress);
  return Status::OK();
}

}  // namespace cit::rl
