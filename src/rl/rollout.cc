#include "rl/rollout.h"

#include "common/check.h"
#include "common/thread_pool.h"

namespace cit::rl {

RolloutRunner::RolloutRunner(uint64_t seed, int64_t num_slots)
    : seed_(seed), num_slots_(num_slots) {
  CIT_CHECK_GE(num_slots, 1);
}

void RolloutRunner::Collect(
    int64_t step,
    const std::function<void(int64_t, math::Rng&)>& body) const {
  ThreadPool::Global().ParallelFor(
      0, num_slots_, /*grain=*/1, [&](int64_t lo, int64_t hi) {
        for (int64_t slot = lo; slot < hi; ++slot) {
          math::Rng rng = math::Rng::Split(
              seed_, static_cast<uint64_t>(step), static_cast<uint64_t>(slot));
          body(slot, rng);
        }
      });
}

void RolloutRunner::ForEachSlot(
    const std::function<void(int64_t)>& body) const {
  ThreadPool::Global().ParallelFor(
      0, num_slots_, /*grain=*/1, [&](int64_t lo, int64_t hi) {
        for (int64_t slot = lo; slot < hi; ++slot) body(slot);
      });
}

}  // namespace cit::rl
