#include "rl/a2c.h"

#include <cmath>

#include "common/check.h"
#include "env/portfolio_env.h"
#include "obs/telemetry.h"
#include "rl/features.h"
#include "rl/returns.h"
#include "rl/rollout.h"

namespace cit::rl {

A2cAgent::A2cAgent(int64_t num_assets, const RlTrainConfig& config,
                   int64_t extra_state_dim)
    : num_assets_(num_assets),
      extra_state_dim_(extra_state_dim),
      config_(config),
      rng_(config.seed) {
  const int64_t input =
      config_.window * num_assets_ + num_assets_ + extra_state_dim_;
  actor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{input, config_.hidden, num_assets_}, rng_);
  critic_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{input, config_.hidden, 1}, rng_);
  log_std_ = ag::Var::Param(
      Tensor::Full({num_assets_}, config_.init_log_std));

  std::vector<ag::Var> actor_params = nn::ParamVars(*actor_);
  actor_params.push_back(log_std_);
  actor_opt_ = std::make_unique<nn::Adam>(
      std::move(actor_params), static_cast<float>(config_.lr), 0.9f, 0.999f,
      1e-8f, static_cast<float>(config_.weight_decay));
  critic_opt_ = std::make_unique<nn::Adam>(
      nn::ParamVars(*critic_), static_cast<float>(config_.lr), 0.9f, 0.999f,
      1e-8f, static_cast<float>(config_.weight_decay));
  Reset();
}

void A2cAgent::Reset() {
  held_.assign(num_assets_, 1.0 / static_cast<double>(num_assets_));
}

Tensor A2cAgent::ExtraState(const market::PanelView&, int64_t) const {
  return Tensor();
}

ag::Var A2cAgent::PolicyInput(const market::PanelView& panel, int64_t day,
                              const std::vector<double>& held) const {
  Tensor window = FlatWindow(panel, day, config_.window);
  Tensor prev({num_assets_});
  for (int64_t i = 0; i < num_assets_; ++i) {
    prev[i] = static_cast<float>(held[i]);
  }
  std::vector<ag::Var> parts = {ag::Var::Constant(window),
                                ag::Var::Constant(prev)};
  if (extra_state_dim_ > 0) {
    Tensor extra = ExtraState(panel, day);
    CIT_CHECK_EQ(extra.numel(), extra_state_dim_);
    parts.push_back(ag::Var::Constant(extra));
  }
  return ag::Concat(parts, /*axis=*/0);
}

std::vector<double> A2cAgent::Train(const market::PricePanel& panel,
                                    int64_t curve_points) {
  market::InMemorySource source(&panel);
  return Train(market::PanelView(&source), curve_points);
}

std::vector<double> A2cAgent::Train(const market::PanelView& panel,
                                    int64_t curve_points) {
  CIT_CHECK_GT(panel.train_end(), config_.window + config_.rollout_len + 2);
  env::EnvConfig env_config;
  env_config.window = config_.window;
  env_config.transaction_cost = config_.transaction_cost;
  env_config.end_day = panel.train_end() - 1;
  env::PortfolioEnv env(panel, env_config);

  const int64_t curve_every =
      std::max<int64_t>(1, config_.train_steps / curve_points);
  const int64_t num_slots =
      std::max<int64_t>(1, config_.rollouts_per_update);
  // Each slot's stream is Split(seed, step, slot): trajectories are a pure
  // function of (params, step, slot), independent of worker scheduling.
  RolloutRunner runner(config_.seed, num_slots);

  // Resuming restores weights, Adam moments, and progress_; counter-split
  // streams make the continuation bitwise identical to an uninterrupted
  // run.
  if (!config_.resume_from.empty()) {
    const Status resume = LoadCheckpoint(config_.resume_from);
    CIT_CHECK_MSG(resume.ok(), resume.message().c_str());
  } else {
    progress_ = {};
  }
  runner.set_next_step(progress_.next_update);

  // Observational only: phase spans, loss/grad-norm gauges, optional
  // trace/snapshot files; the curve is bitwise identical either way.
  obs::TelemetrySession telemetry(config_.telemetry);

  // Everything one rollout slot collects; graphs are retained and reduced
  // serially in slot order after the parallel phase.
  struct SlotData {
    std::vector<ag::Var> log_probs;
    std::vector<ag::Var> values;
    std::vector<ag::Var> entropies;
    std::vector<double> rewards;
    std::vector<double> targets;
  };

  while (runner.next_step() < config_.train_steps) {
    CIT_OBS_SPAN("train.update");
    const int64_t step = runner.next_step();
    // Random segment start within the training range, per slot.
    const int64_t lo = env.earliest_start();
    const int64_t hi = env.end_day() - config_.rollout_len - 1;
    std::vector<SlotData> slots(num_slots);

    {
    CIT_OBS_SPAN("train.rollout");
    runner.Collect([&](int64_t slot, math::Rng& rng) {
      SlotData& sd = slots[slot];
      env::PortfolioEnv senv = env.CloneAt(
          lo + rng.UniformInt(std::max<int64_t>(1, hi - lo)));
      std::vector<double> held(num_assets_,
                               1.0 / static_cast<double>(num_assets_));
      for (int64_t t = 0; t < config_.rollout_len && !senv.done(); ++t) {
        ag::Var input = PolicyInput(panel, senv.current_day(), held);
        ag::Var mean = actor_->Forward(input);
        GaussianAction action = SampleGaussianSimplex(mean, log_std_, &rng);
        sd.values.push_back(critic_->Forward(input));
        sd.log_probs.push_back(action.log_prob);
        sd.entropies.push_back(GaussianEntropy(log_std_));
        const env::StepResult r = senv.Step(action.weights);
        sd.rewards.push_back(r.reward * config_.reward_scale);
        held = senv.previous_weights();
      }
      // Bootstrap value of the final state: a detached scalar, so the
      // critic forward runs graph-free (thread-local guard — the worker's
      // taped forwards above are unaffected).
      double bootstrap = 0.0;
      if (!senv.done()) {
        ag::NoGradGuard no_grad;
        ag::Var input = PolicyInput(panel, senv.current_day(), held);
        bootstrap = critic_->Forward(input).value().Item();
      }
      sd.targets = DiscountedReturns(sd.rewards, config_.gamma, bootstrap);
    });
    }

    // Losses: policy gradient with advantage (target - V), value MSE.
    // Per-slot gradients accumulate in slot order; one optimizer step.
    {
    CIT_OBS_SPAN("train.update_losses");
    actor_opt_->ZeroGrad();
    critic_opt_->ZeroGrad();
    for (SlotData& sd : slots) {
      if (sd.rewards.empty()) continue;
      ag::Var policy_loss = ag::Var::Constant(Tensor::Scalar(0.0f));
      ag::Var value_loss = ag::Var::Constant(Tensor::Scalar(0.0f));
      for (size_t t = 0; t < sd.rewards.size(); ++t) {
        const float advantage = static_cast<float>(sd.targets[t]) -
                                sd.values[t].value().Item();
        policy_loss = ag::Sub(
            policy_loss, ag::MulScalar(sd.log_probs[t], advantage));
        policy_loss = ag::Sub(
            policy_loss, ag::MulScalar(sd.entropies[t],
                                       static_cast<float>(
                                           config_.entropy_coef)));
        ag::Var err = ag::AddScalar(sd.values[t],
                                    -static_cast<float>(sd.targets[t]));
        value_loss = ag::Add(value_loss, ag::Square(err));
      }
      const float inv_len =
          1.0f / static_cast<float>(sd.rewards.size() * num_slots);
      ag::Var total = ag::Add(ag::MulScalar(policy_loss, inv_len),
                              ag::MulScalar(value_loss, inv_len));
      total.Backward();
      CIT_OBS_GAUGE("train.actor_loss", policy_loss.value().Item());
      CIT_OBS_GAUGE("train.critic_loss", value_loss.value().Item());
    }
    [[maybe_unused]] const float actor_gn = actor_opt_->ClipGradNorm(5.0f);
    [[maybe_unused]] const float critic_gn = critic_opt_->ClipGradNorm(5.0f);
    CIT_OBS_GAUGE("train.actor_grad_norm", actor_gn);
    CIT_OBS_GAUGE("train.critic_grad_norm", critic_gn);
    actor_opt_->Step();
    critic_opt_->Step();
    }

    double step_reward = 0.0;
    for (const SlotData& sd : slots) {
      double mean_reward = 0.0;
      for (double r : sd.rewards) mean_reward += r;
      if (!sd.rewards.empty()) {
        step_reward += mean_reward / static_cast<double>(sd.rewards.size());
      }
    }
    CIT_OBS_GAUGE("train.reward",
                  step_reward / static_cast<double>(num_slots));
    progress_.curve_acc += step_reward / static_cast<double>(num_slots);
    ++progress_.curve_n;
    if ((step + 1) % curve_every == 0) {
      progress_.curve.push_back(progress_.curve_acc /
                                static_cast<double>(progress_.curve_n));
      progress_.curve_acc = 0.0;
      progress_.curve_n = 0;
    }
    progress_.next_update = step + 1;
    if (config_.checkpoint_every > 0 && !config_.checkpoint_path.empty() &&
        (step + 1) % config_.checkpoint_every == 0) {
      CIT_OBS_SPAN("train.checkpoint");
      const Status saved = SaveCheckpoint(config_.checkpoint_path);
      CIT_CHECK_MSG(saved.ok(), saved.message().c_str());
    }
    telemetry.Tick(step);
  }
  std::vector<double> curve = std::move(progress_.curve);
  progress_ = {};
  Reset();
  return curve;
}

nn::ModuleGroup A2cAgent::AllModules() const {
  nn::ModuleGroup group;
  group.Add("actor.", actor_.get());
  group.Add("critic.", critic_.get());
  group.AddVar("log_std", log_std_);
  return group;
}

Status A2cAgent::SaveCheckpoint(const std::string& path) const {
  nn::ModuleGroup all = AllModules();
  TrainerCheckpointParts parts;
  parts.meta.trainer = name();
  parts.meta.num_assets = num_assets_;
  parts.meta.seed = config_.seed;
  parts.meta.arch_tag = config_.hidden;
  parts.modules = &all;
  parts.opt_actor = actor_opt_.get();
  parts.opt_critic = critic_opt_.get();
  // SaveTrainerCheckpoint only reads through the non-const pointers.
  parts.progress = const_cast<TrainProgress*>(&progress_);
  return SaveTrainerCheckpoint(parts, path);
}

Status A2cAgent::LoadCheckpoint(const std::string& path) {
  nn::ModuleGroup all = AllModules();
  TrainerCheckpointParts parts;
  parts.meta.trainer = name();
  parts.meta.num_assets = num_assets_;
  parts.meta.seed = config_.seed;
  parts.meta.arch_tag = config_.hidden;
  parts.modules = &all;
  parts.opt_actor = actor_opt_.get();
  parts.opt_critic = critic_opt_.get();
  parts.progress = &progress_;
  return LoadTrainerCheckpoint(parts, path);
}

std::vector<double> A2cAgent::DecideWeights(const market::PanelView& panel,
                                            int64_t day) {
  ag::NoGradGuard no_grad;
  // The state parts are built here (not inside the compiled forward) so
  // the plan binds them as varying inputs; SARL's movement predictor runs
  // interpreted as part of ExtraState, outside the compiled region.
  Tensor window = FlatWindow(panel, day, config_.window);
  Tensor prev({num_assets_});
  for (int64_t i = 0; i < num_assets_; ++i) {
    prev[i] = static_cast<float>(held_[i]);
  }
  auto forward = [&](const Tensor* extra) {
    std::vector<ag::Var> parts = {ag::Var::Constant(window),
                                  ag::Var::Constant(prev)};
    if (extra != nullptr) parts.push_back(ag::Var::Constant(*extra));
    return actor_->Forward(ag::Concat(parts, /*axis=*/0));
  };
  Tensor mean;
  if (extra_state_dim_ > 0) {
    Tensor extra = ExtraState(panel, day);
    CIT_CHECK_EQ(extra.numel(), extra_state_dim_);
    mean = decide_plan_.Run({&window, &prev, &extra},
                            [&] { return forward(&extra); });
  } else {
    mean = decide_plan_.Run({&window, &prev},
                            [&] { return forward(nullptr); });
  }
  // Deterministic action: softmax of the Gaussian mean (what
  // SampleGaussianSimplex returns for rng == nullptr).
  held_ = SoftmaxWeights(mean);
  return held_;
}

}  // namespace cit::rl
