#include "rl/a2c.h"

#include <cmath>

#include "common/check.h"
#include "env/portfolio_env.h"
#include "rl/features.h"
#include "rl/returns.h"

namespace cit::rl {

A2cAgent::A2cAgent(int64_t num_assets, const RlTrainConfig& config,
                   int64_t extra_state_dim)
    : num_assets_(num_assets),
      extra_state_dim_(extra_state_dim),
      config_(config),
      rng_(config.seed) {
  const int64_t input =
      config_.window * num_assets_ + num_assets_ + extra_state_dim_;
  actor_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{input, config_.hidden, num_assets_}, rng_);
  critic_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{input, config_.hidden, 1}, rng_);
  log_std_ = ag::Var::Param(
      Tensor::Full({num_assets_}, config_.init_log_std));

  std::vector<ag::Var> actor_params = nn::ParamVars(*actor_);
  actor_params.push_back(log_std_);
  actor_opt_ = std::make_unique<nn::Adam>(
      std::move(actor_params), static_cast<float>(config_.lr), 0.9f, 0.999f,
      1e-8f, static_cast<float>(config_.weight_decay));
  critic_opt_ = std::make_unique<nn::Adam>(
      nn::ParamVars(*critic_), static_cast<float>(config_.lr), 0.9f, 0.999f,
      1e-8f, static_cast<float>(config_.weight_decay));
  Reset();
}

void A2cAgent::Reset() {
  held_.assign(num_assets_, 1.0 / static_cast<double>(num_assets_));
}

Tensor A2cAgent::ExtraState(const market::PricePanel&, int64_t) const {
  return Tensor();
}

ag::Var A2cAgent::PolicyInput(const market::PricePanel& panel,
                              int64_t day) const {
  Tensor window = FlatWindow(panel, day, config_.window);
  Tensor prev({num_assets_});
  for (int64_t i = 0; i < num_assets_; ++i) {
    prev[i] = static_cast<float>(held_[i]);
  }
  std::vector<ag::Var> parts = {ag::Var::Constant(window),
                                ag::Var::Constant(prev)};
  if (extra_state_dim_ > 0) {
    Tensor extra = ExtraState(panel, day);
    CIT_CHECK_EQ(extra.numel(), extra_state_dim_);
    parts.push_back(ag::Var::Constant(extra));
  }
  return ag::Concat(parts, /*axis=*/0);
}

std::vector<double> A2cAgent::Train(const market::PricePanel& panel,
                                    int64_t curve_points) {
  CIT_CHECK_GT(panel.train_end(), config_.window + config_.rollout_len + 2);
  env::EnvConfig env_config;
  env_config.window = config_.window;
  env_config.transaction_cost = config_.transaction_cost;
  env_config.end_day = panel.train_end() - 1;
  env::PortfolioEnv env(&panel, env_config);

  std::vector<double> curve;
  double curve_acc = 0.0;
  int64_t curve_n = 0;
  const int64_t curve_every =
      std::max<int64_t>(1, config_.train_steps / curve_points);

  for (int64_t step = 0; step < config_.train_steps; ++step) {
    // Random segment start within the training range.
    const int64_t lo = env.earliest_start();
    const int64_t hi = env.end_day() - config_.rollout_len - 1;
    env.ResetAt(lo + rng_.UniformInt(std::max<int64_t>(1, hi - lo)));
    Reset();

    std::vector<ag::Var> log_probs;
    std::vector<ag::Var> values;
    std::vector<ag::Var> entropies;
    std::vector<double> rewards;
    for (int64_t t = 0; t < config_.rollout_len && !env.done(); ++t) {
      ag::Var input = PolicyInput(panel, env.current_day());
      ag::Var mean = actor_->Forward(input);
      GaussianAction action = SampleGaussianSimplex(mean, log_std_, &rng_);
      values.push_back(critic_->Forward(input));
      log_probs.push_back(action.log_prob);
      entropies.push_back(GaussianEntropy(log_std_));
      const env::StepResult r = env.Step(action.weights);
      rewards.push_back(r.reward * config_.reward_scale);
      held_ = env.previous_weights();
    }
    // Bootstrap value of the final state.
    double bootstrap = 0.0;
    if (!env.done()) {
      ag::Var input = PolicyInput(panel, env.current_day());
      bootstrap = critic_->Forward(input).value().Item();
    }
    const std::vector<double> targets =
        DiscountedReturns(rewards, config_.gamma, bootstrap);

    // Losses: policy gradient with advantage (target - V), value MSE.
    ag::Var policy_loss = ag::Var::Constant(Tensor::Scalar(0.0f));
    ag::Var value_loss = ag::Var::Constant(Tensor::Scalar(0.0f));
    for (size_t t = 0; t < rewards.size(); ++t) {
      const float advantage = static_cast<float>(targets[t]) -
                              values[t].value().Item();
      policy_loss = ag::Sub(
          policy_loss, ag::MulScalar(log_probs[t], advantage));
      policy_loss = ag::Sub(
          policy_loss, ag::MulScalar(entropies[t],
                                     static_cast<float>(
                                         config_.entropy_coef)));
      ag::Var err = ag::AddScalar(values[t],
                                  -static_cast<float>(targets[t]));
      value_loss = ag::Add(value_loss, ag::Square(err));
    }
    const float inv_len = 1.0f / static_cast<float>(rewards.size());
    ag::Var total = ag::Add(ag::MulScalar(policy_loss, inv_len),
                            ag::MulScalar(value_loss, inv_len));
    actor_opt_->ZeroGrad();
    critic_opt_->ZeroGrad();
    total.Backward();
    actor_opt_->ClipGradNorm(5.0f);
    critic_opt_->ClipGradNorm(5.0f);
    actor_opt_->Step();
    critic_opt_->Step();

    double mean_reward = 0.0;
    for (double r : rewards) mean_reward += r;
    curve_acc += mean_reward / static_cast<double>(rewards.size());
    ++curve_n;
    if ((step + 1) % curve_every == 0) {
      curve.push_back(curve_acc / static_cast<double>(curve_n));
      curve_acc = 0.0;
      curve_n = 0;
    }
  }
  Reset();
  return curve;
}

std::vector<double> A2cAgent::DecideWeights(const market::PricePanel& panel,
                                            int64_t day) {
  ag::Var input = PolicyInput(panel, day);
  ag::Var mean = actor_->Forward(input);
  GaussianAction action =
      SampleGaussianSimplex(mean, log_std_, /*rng=*/nullptr);
  held_ = action.weights;
  return action.weights;
}

}  // namespace cit::rl
