#ifndef CIT_RL_DEEPTRADER_H_
#define CIT_RL_DEEPTRADER_H_

#include <memory>
#include <string>
#include <vector>

#include "env/backtest.h"
#include "market/source.h"
#include "math/plan.h"
#include "math/rng.h"
#include "nn/conv.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "rl/config.h"
#include "rl/gaussian_policy.h"

namespace cit::rl {

// DeepTrader-style baseline (Wang et al. 2021): an asset scoring unit (a
// dilated-convolution encoder per asset) produces cross-sectional scores,
// and a market scoring unit maps market-level features to a risk appetite
// rho in (0,1) conditioning how aggressively the portfolio concentrates.
// The original allocates a short side from 1-rho; in this long-only
// reproduction rho instead scales the softmax temperature (bearish market
// -> flatter, more diversified portfolio), and training maximizes the
// risk-penalized log return (DESIGN.md documents the substitution).
class DeepTraderAgent : public env::TradingAgent {
 public:
  struct DeepTraderConfig : RlTrainConfig {
    int64_t conv_channels = 6;
    int64_t segment_len = 8;
    double risk_coef = 4.0;  // weight of the downside penalty
  };

  DeepTraderAgent(int64_t num_assets, const DeepTraderConfig& config);

  std::vector<double> Train(const market::PanelView& panel,
                            int64_t curve_points = 20);
  std::vector<double> Train(const market::PricePanel& panel,
                            int64_t curve_points = 20);

  std::string name() const override { return "DeepTrader"; }
  void Reset() override;
  using env::TradingAgent::DecideWeights;
  std::vector<double> DecideWeights(const market::PanelView& panel,
                                    int64_t day) override;

  // Exposed for tests/diagnostics: the market unit's risk appetite at day.
  double RiskAppetite(const market::PanelView& panel, int64_t day) const;

 private:
  ag::Var AssetScores(const market::PanelView& panel, int64_t day) const;
  ag::Var MarketRho(const market::PanelView& panel, int64_t day) const;
  ag::Var Weights(const market::PanelView& panel, int64_t day) const;

  // The cross-asset average of a normalized [m, 1, z] window: the
  // synthetic index window feeding the market scoring unit.
  Tensor IndexWindow(const Tensor& window) const;
  // Forward from pre-built feature tensors, so DecideWeights can bind
  // them as varying inputs of the compiled plan.
  ag::Var ScoresFromWindow(const Tensor& window) const;
  ag::Var RhoFromIndex(const Tensor& index) const;
  ag::Var WeightsFromInputs(const Tensor& window, const Tensor& index) const;

  int64_t num_assets_;
  DeepTraderConfig config_;
  math::Rng rng_;
  std::unique_ptr<nn::CausalConv1d> conv1_;
  std::unique_ptr<nn::CausalConv1d> conv2_;
  std::unique_ptr<nn::Linear> score_head_;
  std::unique_ptr<nn::Mlp> market_unit_;
  std::unique_ptr<nn::Adam> opt_;
  std::vector<double> held_;
  // Compiled forward for the deterministic DecideWeights path.
  plan::CompiledFn decide_plan_;
};

}  // namespace cit::rl

#endif  // CIT_RL_DEEPTRADER_H_
