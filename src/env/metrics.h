#ifndef CIT_ENV_METRICS_H_
#define CIT_ENV_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cit::env {

// The paper's three evaluation metrics plus the quantities they derive from.
// Computed from a wealth curve S_0..S_T (S_0 typically 1.0).
struct PerformanceMetrics {
  double accumulative_return = 0.0;  // AR = S_T / S_0 - 1          (Eq. 11)
  double sharpe_ratio = 0.0;         // SR = E(r)/sigma(r), annualized
  double calmar_ratio = 0.0;         // CR = annualized return / MDD
  double max_drawdown = 0.0;         // MDD = max_{t<s} (S_t - S_s)/S_t
  double annualized_return = 0.0;
  double annualized_vol = 0.0;

  std::string ToString() const;
};

// Trading days per year used for annualization.
inline constexpr double kTradingDaysPerYear = 252.0;

// Shortest horizon (in trading days) annualization extrapolates from.
// Curves shorter than this are treated as one month long, bounding the
// annualization exponent at ~12 instead of up to 252 (see ComputeMetrics).
inline constexpr double kMinAnnualizationDays = 21.0;

// Daily simple returns r_t = S_t/S_{t-1} - 1 of a wealth curve.
std::vector<double> DailyReturns(const std::vector<double>& wealth);

// Maximum drawdown of a wealth curve, in [0, 1].
double MaxDrawdown(const std::vector<double>& wealth);

// Computes all metrics from a wealth curve with at least two points.
PerformanceMetrics ComputeMetrics(const std::vector<double>& wealth);

}  // namespace cit::env

#endif  // CIT_ENV_METRICS_H_
