#include "env/portfolio_env.h"

#include <cmath>

#include "common/check.h"
#include "obs/telemetry.h"

namespace cit::env {

bool IsValidPortfolio(const std::vector<double>& w, double tol) {
  double total = 0.0;
  for (double v : w) {
    if (v < -tol || !std::isfinite(v)) return false;
    total += v;
  }
  return std::fabs(total - 1.0) <= tol;
}

std::vector<double> NormalizeToSimplex(std::vector<double> w) {
  double total = 0.0;
  for (double& v : w) {
    if (!std::isfinite(v) || v < 0.0) v = 0.0;
    total += v;
  }
  // The finite check covers huge entries whose sum overflows to infinity.
  if (total <= 1e-12 || !std::isfinite(total)) {
    const double u = 1.0 / static_cast<double>(w.size());
    for (double& v : w) v = u;
  } else {
    for (double& v : w) v /= total;
  }
  return w;
}

PortfolioEnv::PortfolioEnv(market::PanelView view, EnvConfig config)
    : view_(view), config_(config) {
  CIT_CHECK(view_.valid());
  InitRange();
}

PortfolioEnv::PortfolioEnv(const market::PricePanel* panel, EnvConfig config)
    : config_(config) {
  CIT_CHECK(panel != nullptr);
  owned_source_ = std::make_shared<market::InMemorySource>(panel);
  view_ = market::PanelView(owned_source_.get());
  InitRange();
}

void PortfolioEnv::InitRange() {
  CIT_CHECK_GE(config_.window, 2);
  start_day_ =
      config_.start_day >= 0 ? config_.start_day : config_.window;
  end_day_ = config_.end_day >= 0 ? config_.end_day : view_.num_days() - 1;
  CIT_CHECK_GE(start_day_, config_.window);
  CIT_CHECK_LT(start_day_, end_day_);
  CIT_CHECK_LE(end_day_, view_.num_days() - 1);
  Reset();
}

void PortfolioEnv::Reset() { ResetAt(start_day_); }

void PortfolioEnv::ResetAt(int64_t day) {
  CIT_CHECK_GE(day, config_.window);
  CIT_CHECK_LT(day, end_day_);
  day_ = day;
  wealth_ = 1.0;
  // The paper initializes portfolios with the average assignment.
  held_.assign(view_.num_assets(),
               1.0 / static_cast<double>(view_.num_assets()));
}

PortfolioEnv PortfolioEnv::CloneAt(int64_t day) const {
  PortfolioEnv clone = *this;
  clone.ResetAt(day);
  return clone;
}

PortfolioEnv::EnvCursor PortfolioEnv::Cursor() const {
  EnvCursor cursor;
  cursor.day = day_;
  cursor.wealth = wealth_;
  cursor.held = held_;
  return cursor;
}

Status PortfolioEnv::RestoreCursor(const EnvCursor& cursor) {
  // day == end_day_ is allowed: that is the done() state.
  if (cursor.day < config_.window || cursor.day > end_day_) {
    return Status::InvalidArgument("env cursor day out of range");
  }
  if (!std::isfinite(cursor.wealth) || cursor.wealth <= 0.0) {
    return Status::InvalidArgument("env cursor wealth must be positive");
  }
  if (static_cast<int64_t>(cursor.held.size()) != view_.num_assets() ||
      !IsValidPortfolio(cursor.held)) {
    return Status::InvalidArgument("env cursor holdings are not a portfolio");
  }
  day_ = cursor.day;
  wealth_ = cursor.wealth;
  held_ = cursor.held;
  return Status::OK();
}

StepResult PortfolioEnv::Step(const std::vector<double>& weights) {
  CIT_OBS_SPAN("env.step");
  CIT_OBS_COUNT("env.steps", 1);
  CIT_CHECK(!done());
  CIT_CHECK_EQ(static_cast<int64_t>(weights.size()), view_.num_assets());
  CIT_CHECK_MSG(IsValidPortfolio(weights), "action must lie on the simplex");

  // Proportional cost on the rebalancing turnover from current (drifted)
  // holdings to the target weights. Liquidity-hole scenarios widen the
  // cost through the view; the guard keeps plain sources bitwise
  // identical to the pre-data-plane arithmetic (no spurious `* 1.0`).
  double turnover = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    turnover += std::fabs(weights[i] - held_[i]);
  }
  double tc = config_.transaction_cost;
  const double cost_mult = view_.CostMultiplier(day_);
  if (cost_mult != 1.0) tc *= cost_mult;
  const double cost_factor = 1.0 - tc * turnover;

  // Gross growth over day_ -> day_+1 under the target weights.
  const int64_t next = day_ + 1;
  double growth = 0.0;
  std::vector<double> drifted(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    const double rel = view_.PriceRelative(next, static_cast<int64_t>(i));
    drifted[i] = weights[i] * rel;
    growth += drifted[i];
  }
  CIT_CHECK_GT(growth, 0.0);
  for (double& v : drifted) v /= growth;

  const double net = growth * cost_factor;
  wealth_ *= net;
  held_ = std::move(drifted);
  day_ = next;

  StepResult result;
  result.portfolio_return = growth;
  result.cost = 1.0 - cost_factor;
  result.turnover = turnover;
  result.reward = std::log(net);
  result.done = done();
  return result;
}

std::vector<double> PortfolioEnv::PriceWindow() const {
  const int64_t z = config_.window;
  const int64_t m = view_.num_assets();
  std::vector<double> out(z * m);
  for (int64_t k = 0; k < z; ++k) {
    const int64_t day = day_ - z + 1 + k;
    for (int64_t i = 0; i < m; ++i) {
      out[k * m + i] = view_.Close(day, i);
    }
  }
  return out;
}

std::vector<double> PortfolioEnv::RelativeWindow() const {
  const int64_t z = config_.window;
  const int64_t m = view_.num_assets();
  std::vector<double> out(z * m);
  for (int64_t k = 0; k < z; ++k) {
    const int64_t day = day_ - z + 1 + k;
    for (int64_t i = 0; i < m; ++i) {
      out[k * m + i] = view_.PriceRelative(day, i);
    }
  }
  return out;
}

}  // namespace cit::env
