#ifndef CIT_ENV_SWEEP_H_
#define CIT_ENV_SWEEP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "env/backtest.h"
#include "env/metrics.h"
#include "market/scenario.h"
#include "market/source.h"

namespace cit::env {

// ---------------------------------------------------------------------------
// Cross-scenario robustness sweep (DESIGN.md §11). Fans the cross product
// (scenario stack × agent × seed) over the global ThreadPool, backtesting
// each cell on a fresh ScenarioSource decorating one shared base source,
// and aggregates a per-agent robustness report. Cells land in
// preallocated slots indexed by their cross-product position, and every
// cell is fully independent (own agent instance, own scenario source, own
// view), so the report is bitwise identical for any CIT_NUM_THREADS.
// ---------------------------------------------------------------------------

// One agent column of the sweep: a display name plus a factory producing
// a fresh agent for a given seed. The factory is called once per
// (scenario, seed) cell, possibly from several threads at once — it must
// be callable concurrently and must not share mutable state between the
// agents it returns.
struct SweepAgentSpec {
  std::string name;
  std::function<std::unique_ptr<TradingAgent>(uint64_t seed)> factory;
};

struct SweepConfig {
  std::vector<uint64_t> seeds = {0};
  int64_t window = 32;             // RunTestBacktest decision window
  double transaction_cost = 1e-3;  // base proportional cost
};

// Outcome of one (scenario, agent, seed) backtest.
struct SweepCell {
  std::string scenario;  // canonical stack text; "baseline" = no transforms
  std::string agent;
  uint64_t seed = 0;
  PerformanceMetrics metrics;
  double final_wealth = 1.0;
  double turnover = 0.0;
  int64_t repaired_steps = 0;
};

// Per-agent aggregation across every scenario and seed: the robustness
// view (how bad does it get, how does the typical run look).
struct SweepAgentSummary {
  std::string agent;
  double worst_ar = 0.0;        // min accumulative return over cells
  double median_ar = 0.0;
  double worst_max_drawdown = 0.0;  // max MDD over cells
  double median_sharpe = 0.0;
};

struct SweepReport {
  std::string panel_name;
  int64_t num_days = 0;
  int64_t num_assets = 0;
  int64_t train_end = 0;
  std::vector<std::string> scenarios;  // canonical labels, sweep order
  std::vector<SweepCell> cells;        // scenario-major, then agent, seed
  std::vector<SweepAgentSummary> summaries;  // agent order of the spec list

  // Serializes under schema "cit.sweep.v1"; doubles are printed with
  // %.17g, so equal reports produce byte-equal JSON.
  std::string ToJson() const;
};

// Runs the full sweep. `scenario_stacks` are ParseScenarioStack inputs;
// the empty string denotes the untransformed baseline. `base` is borrowed,
// must outlive the call, and is read concurrently (sources are
// thread-safe by contract). Errors (unknown preset, bad parameter, empty
// agent list) are reported before any backtest runs.
Result<SweepReport> RunSweep(market::PanelSource* base,
                             const std::vector<std::string>& scenario_stacks,
                             const std::vector<SweepAgentSpec>& agents,
                             const SweepConfig& config);

}  // namespace cit::env

#endif  // CIT_ENV_SWEEP_H_
