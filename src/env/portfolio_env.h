#ifndef CIT_ENV_PORTFOLIO_ENV_H_
#define CIT_ENV_PORTFOLIO_ENV_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "market/panel.h"
#include "market/source.h"

namespace cit::env {

// Environment parameters of the portfolio-management MDP (paper Sec. III).
struct EnvConfig {
  int64_t window = 32;              // length z of the observed price window
  double transaction_cost = 1e-3;   // proportional cost on turnover
  int64_t start_day = -1;           // -1: first day with a full window
  int64_t end_day = -1;             // -1: last day of the panel
};

// Result of one environment transition.
struct StepResult {
  double reward = 0.0;          // log of the net portfolio growth
  double portfolio_return = 0.0;  // gross growth ratio a^T x_t
  double cost = 0.0;            // transaction cost paid this step
  double turnover = 0.0;        // sum_i |w_i - held_i| rebalanced this step
  bool done = false;
};

// The portfolio-management MDP over a fixed price panel. State: the trailing
// window of closing prices per asset (plus, by convention, the previously
// executed weights available via previous_weights()). Action: a point on the
// m-simplex (portfolio weights, long-only, fully invested). Reward: the log
// return of the portfolio value net of proportional transaction costs
// (r_t = log(a_t . x_t) in the paper, extended with costs). The market is
// exogenous: actions do not move prices (s_{t+1} ~ Z(s_t)).
//
// Prices are read through a market::PanelView, so the same env runs over
// in-memory panels, streamed CSVs, on-demand simulators, and scenario
// stacks (DESIGN.md §11). Scenario sources may widen the transaction cost
// on specific days via the view's CostMultiplier.
class PortfolioEnv {
 public:
  // The source behind `view` must outlive the env and all its clones.
  PortfolioEnv(market::PanelView view, EnvConfig config);

  // Compatibility: wraps `panel` in an internally-owned InMemorySource
  // (shared across clones). The panel must outlive the env, exactly as
  // before the data-plane refactor.
  PortfolioEnv(const market::PricePanel* panel, EnvConfig config);

  // Moves to `start_day` (or the default) and resets wealth and weights.
  void Reset();
  // Resets to a specific day within [earliest_start, end_day).
  void ResetAt(int64_t day);

  // An independent copy of this env reset at `day`. The price data is
  // shared (sources are immutable), all mutable state is private to the
  // clone — this is how parallel rollout collection gives every slot its
  // own env. The clone's view keeps a private chunk ring, so clones on
  // different threads never share view state.
  PortfolioEnv CloneAt(int64_t day) const;

  // Executes target weights for the transition day -> day+1. `weights` must
  // be non-negative and sum to ~1 (checked).
  StepResult Step(const std::vector<double>& weights);

  int64_t current_day() const { return day_; }
  double wealth() const { return wealth_; }
  bool done() const { return day_ >= end_day_; }

  // Weights executed at the previous step, drifted by realized returns
  // (what the portfolio currently holds before rebalancing).
  const std::vector<double>& previous_weights() const { return held_; }

  // Snapshot of the mutable MDP state, sufficient to recreate this env's
  // position exactly (the panel and config are reconstructed by the owner).
  // Used by trainer checkpoints.
  struct EnvCursor {
    int64_t day = 0;
    double wealth = 1.0;
    std::vector<double> held;
  };
  EnvCursor Cursor() const;
  // Restores a cursor, validating day range and holdings size/feasibility;
  // on error the env is unchanged.
  Status RestoreCursor(const EnvCursor& cursor);

  // The trailing close-price window ending at the current day, as a
  // [window * num_assets] row-major (time, asset) vector.
  std::vector<double> PriceWindow() const;

  // Trailing price-relative window (p_t/p_{t-1}), same layout.
  std::vector<double> RelativeWindow() const;

  int64_t num_assets() const { return view_.num_assets(); }
  int64_t window() const { return config_.window; }
  int64_t earliest_start() const { return config_.window; }
  int64_t end_day() const { return end_day_; }

  const market::PanelView& view() const { return view_; }

 private:
  void InitRange();

  market::PanelView view_;
  // Set only by the PricePanel* compatibility constructor; shared by
  // clones so the wrapping source lives as long as any env using it.
  std::shared_ptr<market::PanelSource> owned_source_;
  EnvConfig config_;
  int64_t start_day_;
  int64_t end_day_;
  int64_t day_ = 0;
  double wealth_ = 1.0;
  std::vector<double> held_;  // current (drifted) holdings as weights
};

// Checks simplex feasibility: non-negative, sums to 1 within `tol`.
bool IsValidPortfolio(const std::vector<double>& w, double tol = 1e-4);

// Projects arbitrary non-negative scores onto the simplex by normalization;
// falls back to uniform when the sum is degenerate.
std::vector<double> NormalizeToSimplex(std::vector<double> w);

}  // namespace cit::env

#endif  // CIT_ENV_PORTFOLIO_ENV_H_
