#include "env/sweep.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"

namespace cit::env {
namespace {

// %.17g round-trips IEEE doubles exactly, so byte-equal reports <=>
// equal results.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double Median(std::vector<double> values) {
  CIT_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace

std::string SweepReport::ToJson() const {
  std::string out = "{\n";
  out += "  \"schema\": \"cit.sweep.v1\",\n";
  out += "  \"panel\": \"" + JsonEscape(panel_name) + "\",\n";
  out += "  \"num_days\": " + std::to_string(num_days) + ",\n";
  out += "  \"num_assets\": " + std::to_string(num_assets) + ",\n";
  out += "  \"train_end\": " + std::to_string(train_end) + ",\n";
  out += "  \"scenarios\": [";
  for (size_t i = 0; i < scenarios.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(scenarios[i]) + "\"";
  }
  out += "],\n";
  out += "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& c = cells[i];
    out += "    {\"scenario\": \"" + JsonEscape(c.scenario) + "\", ";
    out += "\"agent\": \"" + JsonEscape(c.agent) + "\", ";
    out += "\"seed\": " + std::to_string(c.seed) + ", ";
    out += "\"ar\": " + FormatDouble(c.metrics.accumulative_return) + ", ";
    out += "\"sharpe\": " + FormatDouble(c.metrics.sharpe_ratio) + ", ";
    out += "\"calmar\": " + FormatDouble(c.metrics.calmar_ratio) + ", ";
    out += "\"max_drawdown\": " + FormatDouble(c.metrics.max_drawdown) +
           ", ";
    out += "\"final_wealth\": " + FormatDouble(c.final_wealth) + ", ";
    out += "\"turnover\": " + FormatDouble(c.turnover) + ", ";
    out += "\"repaired_steps\": " + std::to_string(c.repaired_steps) + "}";
    out += i + 1 < cells.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"summary\": [\n";
  for (size_t i = 0; i < summaries.size(); ++i) {
    const SweepAgentSummary& s = summaries[i];
    out += "    {\"agent\": \"" + JsonEscape(s.agent) + "\", ";
    out += "\"worst_ar\": " + FormatDouble(s.worst_ar) + ", ";
    out += "\"median_ar\": " + FormatDouble(s.median_ar) + ", ";
    out += "\"worst_max_drawdown\": " + FormatDouble(s.worst_max_drawdown) +
           ", ";
    out += "\"median_sharpe\": " + FormatDouble(s.median_sharpe) + "}";
    out += i + 1 < summaries.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

Result<SweepReport> RunSweep(
    market::PanelSource* base,
    const std::vector<std::string>& scenario_stacks,
    const std::vector<SweepAgentSpec>& agents, const SweepConfig& config) {
  if (base == nullptr) {
    return Status::InvalidArgument("sweep: base source is null");
  }
  if (agents.empty()) {
    return Status::InvalidArgument("sweep: no agents");
  }
  if (scenario_stacks.empty()) {
    return Status::InvalidArgument("sweep: no scenarios");
  }
  if (config.seeds.empty()) {
    return Status::InvalidArgument("sweep: no seeds");
  }
  for (const SweepAgentSpec& spec : agents) {
    if (!spec.factory) {
      return Status::InvalidArgument("sweep: agent '" + spec.name +
                                     "' has no factory");
    }
  }

  // Parse and validate every stack up front so a typo in scenario 7 fails
  // the sweep before scenario 1 burns cycles.
  std::vector<std::vector<market::ScenarioSpec>> stacks;
  std::vector<std::string> labels;
  stacks.reserve(scenario_stacks.size());
  for (const std::string& text : scenario_stacks) {
    auto parsed = market::ParseScenarioStack(text);
    if (!parsed.ok()) return parsed.status();
    std::vector<market::ScenarioSpec> stack = std::move(parsed).value();
    // Instantiate once here to validate parameters; per-cell sources
    // re-instantiate their own copies.
    for (const market::ScenarioSpec& spec : stack) {
      auto t = market::MakeScenarioTransform(spec);
      if (!t.ok()) return t.status();
    }
    labels.push_back(stack.empty() ? "baseline"
                                   : market::FormatScenarioStack(stack));
    stacks.push_back(std::move(stack));
  }

  const int64_t num_scenarios = static_cast<int64_t>(stacks.size());
  const int64_t num_agents = static_cast<int64_t>(agents.size());
  const int64_t num_seeds = static_cast<int64_t>(config.seeds.size());
  const int64_t num_cells = num_scenarios * num_agents * num_seeds;

  SweepReport report;
  report.panel_name = base->meta().name;
  report.num_days = base->meta().num_days;
  report.num_assets = base->meta().num_assets;
  report.train_end = base->meta().train_end;
  report.scenarios = labels;
  report.cells.resize(static_cast<size_t>(num_cells));

  // One task per cell, grain 1: cells are coarse (a full backtest), so
  // per-chunk overhead is noise and small sweeps still spread over the
  // pool. Each cell writes only its own preallocated slot; slot index is
  // a pure function of the cell coordinates, never of scheduling.
  ThreadPool::Global().ParallelFor(
      0, num_cells, /*grain=*/1, [&](int64_t lo, int64_t hi) {
        for (int64_t cell = lo; cell < hi; ++cell) {
          const int64_t s = cell / (num_agents * num_seeds);
          const int64_t a = (cell / num_seeds) % num_agents;
          const int64_t r = cell % num_seeds;
          const uint64_t seed = config.seeds[static_cast<size_t>(r)];

          // Fresh decorated source per cell: scenario state (memoized
          // anchors, materialized chunks) stays cell-private, and each
          // cell's agent sees a distinct source id.
          std::unique_ptr<market::ScenarioSource> scenario;
          market::PanelView view;
          if (stacks[static_cast<size_t>(s)].empty()) {
            view = market::PanelView(base);
          } else {
            auto made = market::ScenarioSource::Make(
                base, stacks[static_cast<size_t>(s)]);
            // Stacks were validated above; a failure here means the
            // registry changed mid-sweep.
            CIT_CHECK_MSG(made.ok(), made.status().message().c_str());
            scenario = std::move(made).value();
            view = market::PanelView(scenario.get());
          }

          std::unique_ptr<TradingAgent> agent =
              agents[static_cast<size_t>(a)].factory(seed);
          CIT_CHECK_MSG(agent != nullptr, "sweep: factory returned null");

          const BacktestResult result = RunTestBacktest(
              *agent, view, config.window, config.transaction_cost);

          SweepCell& out = report.cells[static_cast<size_t>(cell)];
          out.scenario = labels[static_cast<size_t>(s)];
          out.agent = agents[static_cast<size_t>(a)].name;
          out.seed = seed;
          out.metrics = result.metrics;
          out.final_wealth = result.wealth.back();
          out.turnover = result.turnover;
          out.repaired_steps = result.repaired_steps;
        }
      });

  // Serial aggregation in agent order over deterministic cells.
  for (int64_t a = 0; a < num_agents; ++a) {
    std::vector<double> ars, sharpes;
    SweepAgentSummary summary;
    summary.agent = agents[static_cast<size_t>(a)].name;
    bool first = true;
    for (int64_t s = 0; s < num_scenarios; ++s) {
      for (int64_t r = 0; r < num_seeds; ++r) {
        const int64_t cell = (s * num_agents + a) * num_seeds + r;
        const SweepCell& c = report.cells[static_cast<size_t>(cell)];
        ars.push_back(c.metrics.accumulative_return);
        sharpes.push_back(c.metrics.sharpe_ratio);
        if (first || c.metrics.accumulative_return < summary.worst_ar) {
          summary.worst_ar = c.metrics.accumulative_return;
        }
        if (first || c.metrics.max_drawdown > summary.worst_max_drawdown) {
          summary.worst_max_drawdown = c.metrics.max_drawdown;
        }
        first = false;
      }
    }
    summary.median_ar = Median(ars);
    summary.median_sharpe = Median(sharpes);
    report.summaries.push_back(std::move(summary));
  }
  return report;
}

}  // namespace cit::env
