#ifndef CIT_ENV_BACKTEST_H_
#define CIT_ENV_BACKTEST_H_

#include <string>
#include <vector>

#include "env/metrics.h"
#include "env/portfolio_env.h"
#include "market/panel.h"
#include "market/source.h"

namespace cit::env {

// Common interface for anything that can trade: online-learning strategies,
// RL agents, and the cross-insight trader all implement it, so one
// backtester serves the entire evaluation section of the paper.
class TradingAgent {
 public:
  virtual ~TradingAgent() = default;

  virtual std::string name() const = 0;

  // Called once before a pass over data; clears internal state.
  virtual void Reset() {}

  // Returns target weights (a simplex point of size panel.num_assets())
  // for the transition day -> day+1. Implementations must only read panel
  // data at days <= day (no lookahead); tests enforce this for baselines.
  // The view's source must outlive the call.
  virtual std::vector<double> DecideWeights(const market::PanelView& panel,
                                            int64_t day) = 0;

  // Convenience for callers holding a bare panel: wraps it in a temporary
  // InMemorySource. Implementations that cache by source id see a fresh
  // id per call, so this path never hits (or pollutes) cross-call caches.
  // Derived classes re-expose it with
  //   using env::TradingAgent::DecideWeights;
  std::vector<double> DecideWeights(const market::PricePanel& panel,
                                    int64_t day);
};

// Outcome of one backtest pass.
struct BacktestResult {
  std::string agent_name;
  std::vector<double> wealth;          // S_0..S_T, S_0 = 1
  std::vector<double> daily_returns;   // length T
  std::vector<int64_t> days;           // panel day index per step
  PerformanceMetrics metrics;
  // Steps whose agent action was off the simplex (NaN, negative, or not
  // summing to 1) and was repaired via NormalizeToSimplex before execution.
  // 0 for a well-behaved agent; a non-zero count flags a defective policy
  // without killing the whole comparison run it is part of.
  int64_t repaired_steps = 0;
  // Total rebalancing turnover sum_t sum_i |w_ti - held_ti| executed over
  // the run — the quantity transaction costs are charged on.
  double turnover = 0.0;
};

// Runs `agent` through the env's day range and records the wealth curve.
// Off-simplex agent actions are projected back via NormalizeToSimplex and
// counted in BacktestResult::repaired_steps rather than aborting the run.
// The view's source must outlive the call; a PricePanel argument is
// wrapped in a temporary InMemorySource (bitwise identical to the
// pre-data-plane path).
BacktestResult RunBacktest(TradingAgent& agent,
                           const market::PanelView& view,
                           const EnvConfig& config);
BacktestResult RunBacktest(TradingAgent& agent,
                           const market::PricePanel& panel,
                           const EnvConfig& config);

// Convenience: backtests over the panel's test split (days >= train_end).
BacktestResult RunTestBacktest(TradingAgent& agent,
                               const market::PanelView& view,
                               int64_t window = 32,
                               double transaction_cost = 1e-3);
BacktestResult RunTestBacktest(TradingAgent& agent,
                               const market::PricePanel& panel,
                               int64_t window = 32,
                               double transaction_cost = 1e-3);

}  // namespace cit::env

#endif  // CIT_ENV_BACKTEST_H_
